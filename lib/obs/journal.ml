module Trace = Ise_telemetry.Trace
module Json = Ise_telemetry.Json

type meta = (string * string) list

(* %-escape anything that would break line/token structure.  The set
   is small on purpose: journals are mostly ints and short names, and
   the escaped form stays grep-able. *)
let must_escape c =
  match c with ' ' | '=' | '%' | '\n' | '\r' | '\t' -> true | _ -> false

let escape s =
  if String.exists must_escape s then (
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if must_escape c then Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c))
        else Buffer.add_char b c)
      s;
    Buffer.contents b)
  else s

let unescape s =
  if not (String.contains s '%') then s
  else (
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      let c = s.[!i] in
      if c = '%' && !i + 2 < n then (
        (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
        | Some code -> Buffer.add_char b (Char.chr (code land 0xff))
        | None -> Buffer.add_char b c);
        i := !i + 3)
      else (
        Buffer.add_char b c;
        incr i)
    done;
    Buffer.contents b)

let phase_letter = function
  | Trace.Span_begin -> "B"
  | Trace.Span_end -> "E"
  | Trace.Instant -> "i"
  | Trace.Counter_sample -> "C"

let phase_of_letter = function
  | "B" -> Some Trace.Span_begin
  | "E" -> Some Trace.Span_end
  | "i" -> Some Trace.Instant
  | "C" -> Some Trace.Counter_sample
  | _ -> None

let encode_value (v : Json.t) =
  match v with
  | Json.Int i -> "i" ^ string_of_int i
  | Json.Float f -> "f" ^ Printf.sprintf "%h" f
  | Json.String s -> "s" ^ escape s
  | Json.Bool b -> if b then "b1" else "b0"
  | Json.Null -> "n"
  | (Json.List _ | Json.Obj _) as j -> "j" ^ escape (Json.to_string j)

let decode_value s =
  if s = "" then Error "empty value"
  else
    let payload = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'i' -> (
        match int_of_string_opt payload with
        | Some i -> Ok (Json.Int i)
        | None -> Error ("bad int " ^ payload))
    | 'f' -> (
        match float_of_string_opt payload with
        | Some f -> Ok (Json.Float f)
        | None -> Error ("bad float " ^ payload))
    | 's' -> Ok (Json.String (unescape payload))
    | 'b' -> Ok (Json.Bool (payload = "1"))
    | 'n' -> Ok Json.Null
    | 'j' -> Json.of_string (unescape payload)
    | c -> Error (Printf.sprintf "unknown value tag %c" c)

let encode_event (e : Trace.event) =
  let b = Buffer.create 64 in
  Buffer.add_string b (string_of_int e.ev_ts);
  Buffer.add_char b ' ';
  Buffer.add_string b (string_of_int e.ev_tid);
  Buffer.add_char b ' ';
  Buffer.add_string b (phase_letter e.ev_ph);
  Buffer.add_char b ' ';
  Buffer.add_string b (escape e.ev_cat);
  Buffer.add_char b ' ';
  Buffer.add_string b (escape e.ev_name);
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ' ';
      Buffer.add_string b (escape k);
      Buffer.add_char b '=';
      Buffer.add_string b (encode_value v))
    e.ev_args;
  Buffer.contents b

let split_ws s = String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let decode_event line =
  match split_ws line with
  | ts :: tid :: ph :: cat :: name :: args -> (
      match
        (int_of_string_opt ts, int_of_string_opt tid, phase_of_letter ph)
      with
      | Some ev_ts, Some ev_tid, Some ev_ph ->
          let rec decode_args acc = function
            | [] -> Ok (List.rev acc)
            | tok :: rest -> (
                match String.index_opt tok '=' with
                | None -> Error ("argument without '=': " ^ tok)
                | Some i -> (
                    let k = unescape (String.sub tok 0 i) in
                    let v = String.sub tok (i + 1) (String.length tok - i - 1) in
                    match decode_value v with
                    | Ok v -> decode_args ((k, v) :: acc) rest
                    | Error e -> Error e))
          in
          Result.map
            (fun ev_args ->
              {
                Trace.ev_name = unescape name;
                ev_cat = unescape cat;
                ev_ph;
                ev_ts;
                ev_tid;
                ev_args;
              })
            (decode_args [] args)
      | _ -> Error ("bad event prefix: " ^ line))
  | _ -> Error ("short event line: " ^ line)

let magic = "#ise-journal"
let version = "v1"

let header meta =
  let b = Buffer.create 64 in
  Buffer.add_string b magic;
  Buffer.add_char b ' ';
  Buffer.add_string b version;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ' ';
      Buffer.add_string b (escape k);
      Buffer.add_char b '=';
      Buffer.add_string b (escape v))
    meta;
  Buffer.contents b

let parse_header line =
  match split_ws line with
  | m :: v :: pairs when m = magic ->
      if v <> version then Error ("unsupported journal version " ^ v)
      else
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | tok :: rest -> (
              match String.index_opt tok '=' with
              | None -> Error ("bad header token: " ^ tok)
              | Some i ->
                  let k = unescape (String.sub tok 0 i) in
                  let v =
                    unescape (String.sub tok (i + 1) (String.length tok - i - 1))
                  in
                  go ((k, v) :: acc) rest)
        in
        go [] pairs
  | _ -> Error "not an ise journal (missing #ise-journal header)"

type parsed = {
  j_meta : meta;
  j_events : Ise_telemetry.Trace.event list;
  j_corrupt : string list;
}

let render meta events =
  let b = Buffer.create 1024 in
  Buffer.add_string b (header meta);
  Buffer.add_char b '\n';
  List.iter
    (fun e ->
      Buffer.add_string b (encode_event e);
      Buffer.add_char b '\n')
    events;
  Buffer.contents b

let parse text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | [] -> Error "empty journal"
  | hd :: rest -> (
      match parse_header hd with
      | Error e -> Error e
      | Ok j_meta ->
          let events = ref [] and corrupt = ref [] in
          List.iter
            (fun line ->
              let line = String.trim line in
              if line <> "" && not (String.length line > 0 && line.[0] = '#')
              then
                match decode_event line with
                | Ok e -> events := e :: !events
                | Error _ -> corrupt := line :: !corrupt)
            rest;
          Ok
            {
              j_meta;
              j_events = List.rev !events;
              j_corrupt = List.rev !corrupt;
            })

let load path =
  match
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s
    with Sys_error _ | End_of_file -> None
  with
  | None -> Error ("cannot read " ^ path)
  | Some text -> parse text
