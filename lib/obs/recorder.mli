(** Flight recorder: an always-on bounded journal of structured
    events, cheap enough to leave enabled and dumped only when
    something goes wrong.

    A recorder is a bounded {!Ise_telemetry.Trace} ring plus journal
    metadata, and optionally a {e spill} file: when given, every event
    is also encoded and flushed to disk line-by-line, so the journal
    tail survives the recording process being killed ([SIGKILL],
    watchdog timeout) — the supervisor reads the spill file back with
    {!Journal.load}.

    A process-global recorder serves call sites that have no channel
    to thread a handle through (forked pool workers, CLI crash
    handlers); library code records into it via {!note} /
    {!observe_machine}, which are no-ops while it is disabled. *)

type t

val create :
  ?capacity:int -> ?spill:string -> ?meta:Journal.meta -> unit -> t
(** [capacity] (default [4096]) must be a positive power of two.
    [spill], when given, is truncated and the header written
    immediately. *)

val meta : t -> Journal.meta
val set_meta : t -> string -> string -> unit
(** Adds or replaces one header key. *)

val record : t -> Ise_telemetry.Trace.event -> unit

val instant :
  t ->
  ?cat:string ->
  ?args:(string * Ise_telemetry.Json.t) list ->
  name:string ->
  tid:int ->
  int ->
  unit

val events : t -> Ise_telemetry.Trace.event list
(** Oldest first (post-eviction). *)

val recorded : t -> int
val dropped : t -> int

val dump : t -> string
(** Full journal text (header + ring contents). *)

val dump_to : t -> string -> unit

val tail_lines : ?limit:int -> t -> string list
(** The newest [limit] (default [64]) encoded event lines, oldest
    first — for embedding in human-facing snapshots. *)

val crash_dump : ?dir:string -> ?keep:int -> t -> string option
(** Dump the journal to [dir/crash-<run_id>-<pid>.jnl] (default dir
    [".ise"], created if missing), so concurrent crashing processes
    never overwrite each other's dumps, then prune the directory's
    [crash-*.jnl] files oldest-first (by mtime) down to [keep]
    (default 16).  Returns the written path, or [None] if the dump
    itself failed — a crash handler must never raise. *)

val close : t -> unit
(** Flushes and closes the spill channel, if any.  The ring stays
    readable. *)

val observe_machine : t -> Ise_sim.Machine.t -> unit
(** Mirrors every {!Ise_core.Contract.event} the machine emits into
    the journal as an instant event ([DETECT]/[PUT]/[GET]/[APPLY]/
    [RESOLVE]/[RESUME]/[TERMINATE], [tid] = core, [ts] = cycle, args
    [seq]/[addr]/[data]) — the same stream the chaos watchdog
    observes, which is what makes offline/online cross-checks
    meaningful. *)

val event_of_contract : Ise_core.Contract.event -> Ise_telemetry.Trace.event

(** {1 Process-global recorder} *)

val enable : ?capacity:int -> ?spill:string -> ?meta:Journal.meta -> unit -> t
val disable : unit -> unit
(** Closes the spill channel and drops the global recorder. *)

val global : unit -> t option

val note :
  ?cat:string ->
  ?args:(string * Ise_telemetry.Json.t) list ->
  string ->
  unit
(** Records an instant on the global recorder (no-op when disabled).
    Timestamps are a per-recorder monotonic note counter — notes live
    in wall-ordering, not the simulator cycle domain. *)

val observe_machine_global : Ise_sim.Machine.t -> unit
(** {!observe_machine} on the global recorder, if enabled. *)
