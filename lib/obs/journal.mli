(** Compact line codec for flight-recorder journals.

    A journal is a plain-text artifact built to survive crashes: a
    header line carrying run metadata, then one event per line, each
    line flushed independently, so a journal truncated mid-line by a
    [SIGKILL] still parses up to the last complete event.

    Format (version 1):

    {v
    #ise-journal v1 run_id=ab12 git_rev=f00 profile=storm
    184 2 i ise DETECT
    190 2 i ise PUT seq=i0 addr=i4096 data=i17
    v}

    Event lines are [ts tid ph cat name k=v ...] where [ph] is one of
    [B]/[E]/[i]/[C] (Chrome trace-event phases) and argument values
    are typed by a one-letter prefix: [i] int, [f] float, [s] string,
    [b] bool, [n] null, [j] nested JSON.  Strings are %-escaped so a
    line never contains a raw space, [=], [%], or newline inside a
    token. *)

type meta = (string * string) list

val escape : string -> string
val unescape : string -> string

val encode_event : Ise_telemetry.Trace.event -> string
(** One line, no trailing newline. *)

val decode_event : string -> (Ise_telemetry.Trace.event, string) result

val header : meta -> string
(** The [#ise-journal v1 ...] line, no trailing newline. *)

val parse_header : string -> (meta, string) result

type parsed = {
  j_meta : meta;
  j_events : Ise_telemetry.Trace.event list;  (** oldest first *)
  j_corrupt : string list;
      (** lines that failed to decode — a truncated tail is data, not
          an error *)
}

val render : meta -> Ise_telemetry.Trace.event list -> string
val parse : string -> (parsed, string) result
(** [Error] only when the header is missing or unreadable. *)

val load : string -> (parsed, string) result
(** Reads and {!parse}s a journal file. *)
