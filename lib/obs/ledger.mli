(** Cross-run regression ledger: newline-JSON run records plus a
    thresholded metric differ for CI perf gating.

    Each bench/campaign/chaos run can append one {!record} — git rev,
    seed, config digest, flat metric snapshot — to a ledger file
    ([.ise/ledger.jsonl] locally, [BENCH_history.jsonl] committed).
    {!compare_records} diffs two metric snapshots with per-metric
    noise thresholds and classifies every metric as improved, neutral,
    or regressed; the overall verdict gates CI.

    Threshold semantics: for relative delta [d = (new - base)/|base|]
    and threshold [thr], a metric regresses only when it moves {e
    strictly} beyond the threshold in its bad direction — a delta
    exactly at the threshold is neutral (noise bands are inclusive).
    Metrics whose direction cannot be inferred from the name, and
    wall-clock timings (machine-dependent), are informational: shown,
    never gating.  NaN or zero baselines make a metric incomparable
    rather than regressed, and a metric missing from one side is
    reported as missing — visible, not gating — so a renamed metric
    cannot silently pass {e or} spuriously fail the gate. *)

type record = {
  l_run_id : string;
  l_git_rev : string;
  l_kind : string;  (** ["bench"], ["fuzz"], ["chaos"] *)
  l_label : string;  (** e.g. bench section list *)
  l_seed : int;
  l_config : string;  (** digest of the run configuration *)
  l_time : float;  (** unix epoch seconds *)
  l_metrics : (string * float) list;
}

val make :
  ?run_id:string ->
  ?git_rev:string ->
  ?config:string ->
  ?time:float ->
  kind:string ->
  label:string ->
  seed:int ->
  (string * float) list ->
  record
(** Defaults: {!Runinfo.run_id}/{!Runinfo.git_rev}, config [""], time
    [Unix.gettimeofday ()]. *)

val to_json : record -> Ise_telemetry.Json.t
val of_json : Ise_telemetry.Json.t -> (record, string) result

val append : path:string -> record -> unit
(** Creates parent directory and file as needed; one compact JSON
    object per line. *)

val load : path:string -> (record list, string) result
(** Oldest first; blank lines skipped; a corrupt line is an [Error]. *)

val last : ?kind:string -> ?label:string -> record list -> record option

(** {1 Comparison} *)

type direction = Lower_better | Higher_better | Informational

val direction_of : string -> direction
(** Inferred from the metric name ([cycles], [violations], [_ms] →
    lower-better; [speedup], [throughput], [ipc] → higher-better;
    wall-clock and unknown names → informational). *)

type verdict =
  | Improved
  | Neutral
  | Regressed
  | Missing_base  (** metric only in the new record *)
  | Missing_new  (** metric only in the base record *)
  | Incomparable  (** NaN, or zero baseline with nonzero new value *)

type delta = {
  d_name : string;
  d_dir : direction;
  d_base : float option;
  d_new : float option;
  d_rel : float option;  (** relative delta, when computable *)
  d_verdict : verdict;
}

type comparison = {
  c_base : record;
  c_new : record;
  c_deltas : delta list;  (** sorted by metric name *)
}

val compare_records :
  ?threshold:float ->
  ?thresholds:(string * float) list ->
  base:record ->
  record ->
  comparison
(** [compare_records ~base cand].  [threshold] (default [0.02] — the
    gated metrics are deterministic cycle counts) is the default
    relative noise band; [thresholds] overrides it per metric name. *)

val regressed : comparison -> bool
val improved : comparison -> bool
val counts : comparison -> int * int * int
(** (improved, neutral-ish, regressed). *)

val comparison_text : comparison -> string
val comparison_md : comparison -> string
val comparison_json : comparison -> Ise_telemetry.Json.t

(** {1 Metric flattening} *)

val flatten_json : ?prefix:string -> Ise_telemetry.Json.t -> (string * float) list
(** Numeric leaves of a JSON document as slash-joined paths —
    [{"fig5": {"sc": {"cycles": 10}}}] yields [("fig5/sc/cycles",
    10.)].  Booleans count as 0/1; strings and nulls are skipped. *)
