(** Identity of the current process run, for joining artifacts.

    Every JSON artifact the tools emit (telemetry snapshots, trace
    files, BENCH sections, ledger records, journals) carries the same
    [run_id]/[git_rev] pair, so a trace file found in CI can be joined
    back to the ledger entry and the commit that produced it. *)

val run_id : unit -> string
(** Stable within the process.  Honors [ISE_RUN_ID] when set (CI and
    tests use it for reproducible artifacts); otherwise derived from
    pid and wall clock at first use. *)

val git_rev : unit -> string
(** Short commit hash of the working tree, or ["unknown"] outside a
    git checkout.  Cached after the first call. *)

val stamp : unit -> (string * Ise_telemetry.Json.t) list
(** [[("run_id", ...); ("git_rev", ...)]] — splice into the top level
    of emitted JSON objects. *)

val stamp_meta : unit -> (string * string) list
(** Same pair as string key/values, for journal headers. *)
