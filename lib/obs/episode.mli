(** Offline episode post-mortem: reconstructs per-fault episode
    timelines from a journal or Chrome-trace file and re-validates the
    Table 5 lifecycle (DETECT → PUT → GET → apply → RESOLVE → RESUME).

    This is a {e third}, independent implementation of the contract —
    alongside [Ise_core.Contract.check] (trace predicate) and
    [Ise_chaos.Watchdog] (online monitor) — written against the paper
    table, not against either of those modules, precisely so the three
    can be cross-checked against each other in tests.  Rule names
    deliberately match the watchdog's ([lost-store], [get-order], ...)
    so verdicts are comparable; offline-only anomalies get their own
    names ([stuck-episode], [retry-storm], [orphan-event]). *)

type kind = Detect | Put | Get | Apply | Resolve | Resume | Terminate

type ev = {
  e_kind : kind;
  e_core : int;
  e_cycle : int;
  e_seq : int option;  (** store-buffer sequence number, when known *)
  e_addr : int option;
  e_data : int option;
}

val kind_name : kind -> string

(** {1 Event extraction} *)

val of_trace_events : Ise_telemetry.Trace.event list -> ev list
(** Keeps only lifecycle instants ([DETECT]/[PUT]/...); other trace
    events (spans, counters) pass through unharmed as [None]-field
    noise filters.  Order is preserved. *)

val of_chrome_json : Ise_telemetry.Json.t -> (ev list, string) result
(** From a [to_chrome_json]/[--trace-out] document. *)

val of_journal : Journal.parsed -> ev list

(** {1 Analysis} *)

type anomaly = {
  a_rule : string;
  a_core : int;
  a_cycle : int;
  a_detail : string;
}

type episode = {
  ep_id : int;  (** global, in detection order *)
  ep_core : int;
  ep_detect : int;  (** cycle *)
  ep_end : int option;  (** RESUME/TERMINATE cycle; [None] = stuck *)
  ep_terminated : bool;
  ep_puts : int;
  ep_gets : int;
  ep_applies : int;
  ep_first_put : int option;
  ep_last_put : int option;
  ep_first_get : int option;
  ep_last_get : int option;
  ep_first_apply : int option;
  ep_last_apply : int option;
  ep_resolve : int option;
}

(** Per-phase latency breakdown, all in cycles.  [None] when the
    bounding events are absent. *)
type phases = {
  ph_detect_to_drain : int option;  (** DETECT → first PUT *)
  ph_drain : int option;  (** first PUT → last PUT *)
  ph_get_loop : int option;  (** first GET → last GET *)
  ph_apply : int option;  (** first APPLY → last APPLY *)
  ph_resume : int option;  (** RESOLVE → RESUME *)
  ph_total : int option;  (** DETECT → RESUME/TERMINATE *)
}

val phases_of : episode -> phases

type analysis = {
  an_events : int;
  an_cores : int;
  an_episodes : episode list;  (** detection order *)
  an_anomalies : anomaly list;
}

val analyze :
  ?ordered_interface:bool ->
  ?ordered_apply:bool ->
  ?retry_threshold:int ->
  ev list ->
  analysis
(** [ordered_interface] (default [true]): GETs must replay PUT order
    per core (same-stream protocol).  [ordered_apply] (default
    [true]): applies must follow GET order (Table 5 requires this only
    under PC).  [retry_threshold] (default [4]): more GETs than this
    for one store flags [retry-storm]. *)

val clean : analysis -> bool
(** No anomalies. *)

val rules : analysis -> string list
(** Sorted, de-duplicated anomaly rule names. *)

val slowest : ?top:int -> analysis -> episode list

(** {1 Reports} *)

val report_text : ?top:int -> analysis -> string
val report_md : ?top:int -> analysis -> string
val report_json : ?top:int -> analysis -> Ise_telemetry.Json.t
(** All three include per-core rollups and the top-N slowest
    episodes; [report_json] embeds the {!Runinfo.stamp}. *)
