module Json = Ise_telemetry.Json
module Trace = Ise_telemetry.Trace

type input = { in_file : string; in_doc : Json.t }

type file_info = {
  sf_file : string;
  sf_role : string;
  sf_pid : int;
  sf_offset_us : int;
  sf_events : int;
}

(* ------------------------------------------------------------------ *)
(* accessors over raw Chrome trace-event objects                       *)

let obj_assoc = function Json.Obj kvs -> kvs | _ -> []
let str_field k ev = Option.bind (Json.member k ev) Json.to_str
let int_field k ev = Option.bind (Json.member k ev) Json.to_int

let args_of ev =
  match Json.member "args" ev with Some (Json.Obj kvs) -> kvs | _ -> []

let arg_str k ev = Option.bind (List.assoc_opt k (args_of ev)) Json.to_str
let span_id_of ev = arg_str Trace.ctx_key_span ev
let parent_of ev = arg_str Trace.ctx_key_parent ev

let events_of doc =
  match Option.bind (Json.member "traceEvents" doc) Json.to_list with
  | Some evs -> evs
  | None -> []

let role_of doc =
  match Option.bind (Json.member "role" doc) Json.to_str with
  | Some r -> r
  | None -> "worker"

(* ------------------------------------------------------------------ *)
(* stitching                                                           *)

(* Deterministic input order: supervisor files first, then by
   filename.  The Chrome pid of each process is its index in this
   order, so the same set of files always stitches to the same
   bytes. *)
let order_inputs inputs =
  List.sort
    (fun a b ->
      let rank i = if role_of i.in_doc = "supervisor" then 0 else 1 in
      match compare (rank a) (rank b) with
      | 0 -> compare a.in_file b.in_file
      | c -> c)
    inputs

(* Per-process clock-offset normalization, anchored on dispatch /
   receive pairs: the supervisor's dispatch span begin and the
   worker's "receive" instant bracket one one-way message.  For each
   matched pair, [receive_ts - dispatch_ts] = clock skew + wire
   latency; the minimum over all pairs is the tightest skew bound the
   trace itself offers (the classic one-way NTP argument).  Worker
   timestamps are shifted by that offset, so the fastest observed
   dispatch lands exactly on its dispatch span and everything else
   stays causally after it. *)
let offset_for ~dispatch_ts events =
  List.fold_left
    (fun acc ev ->
      match (str_field "name" ev, parent_of ev) with
      | Some "receive", Some parent -> (
        match (Hashtbl.find_opt dispatch_ts parent, int_field "ts" ev) with
        | Some dts, Some rts ->
          let d = rts - dts in
          (match acc with Some m when m <= d -> acc | _ -> Some d)
        | _ -> acc)
      | _ -> acc)
    None events
  |> Option.value ~default:0

let stitch inputs =
  let inputs = order_inputs inputs in
  (* pass 1: every span id defined anywhere, and the begin timestamp
     of every supervisor dispatch span *)
  let known_spans = Hashtbl.create 256 in
  let dispatch_ts = Hashtbl.create 64 in
  List.iter
    (fun i ->
      let sup = role_of i.in_doc = "supervisor" in
      List.iter
        (fun ev ->
          match span_id_of ev with
          | None -> ()
          | Some id ->
            Hashtbl.replace known_spans id ();
            if sup && str_field "ph" ev = Some "B" then
              match int_field "ts" ev with
              | Some ts ->
                (* keep the earliest begin for a (re-used) span id *)
                (match Hashtbl.find_opt dispatch_ts id with
                 | Some old when old <= ts -> ()
                 | _ -> Hashtbl.replace dispatch_ts id ts)
              | None -> ())
        (events_of i.in_doc))
    inputs;
  (* pass 2: shift, re-pid, tag orphans *)
  let infos = ref [] in
  let out = ref [] in
  List.iteri
    (fun pid i ->
      let role = role_of i.in_doc in
      let events = events_of i.in_doc in
      let offset =
        if role = "supervisor" then 0 else offset_for ~dispatch_ts events
      in
      infos :=
        { sf_file = Filename.basename i.in_file; sf_role = role;
          sf_pid = pid; sf_offset_us = offset;
          sf_events = List.length events }
        :: !infos;
      List.iteri
        (fun seq ev ->
          let ts =
            match int_field "ts" ev with Some t -> t - offset | None -> 0
          in
          let orphan =
            match parent_of ev with
            | Some p -> not (Hashtbl.mem known_spans p)
            | None -> false
          in
          let fields =
            List.map
              (fun (k, v) ->
                match k with
                | "ts" -> (k, Json.Int ts)
                | "pid" -> (k, Json.Int pid)
                | "args" when orphan ->
                  (k, Json.Obj (obj_assoc v @ [ ("orphan", Json.Bool true) ]))
                | _ -> (k, v))
              (obj_assoc ev)
          in
          out := (ts, pid, seq, Json.Obj fields) :: !out)
        events)
    inputs;
  let infos = List.rev !infos in
  (* deterministic final order: normalized timestamp, then process,
     then each file's own event order *)
  let sorted =
    List.sort
      (fun (ts1, p1, s1, _) (ts2, p2, s2, _) ->
        match compare ts1 ts2 with
        | 0 -> ( match compare p1 p2 with 0 -> compare s1 s2 | c -> c)
        | c -> c)
      !out
  in
  let name_meta info =
    Json.Obj
      [ ("name", Json.String "process_name"); ("ph", Json.String "M");
        ("pid", Json.Int info.sf_pid);
        ( "args",
          Json.Obj
            [ ( "name",
                Json.String
                  (Printf.sprintf "%s (%s)" info.sf_role info.sf_file) ) ] )
      ]
  in
  let stitch_meta =
    Json.List
      (List.map
         (fun f ->
           Json.Obj
             [ ("file", Json.String f.sf_file);
               ("role", Json.String f.sf_role); ("pid", Json.Int f.sf_pid);
               ("offset_us", Json.Int f.sf_offset_us);
               ("events", Json.Int f.sf_events) ])
         infos)
  in
  ( Json.Obj
      [ ("stitch", stitch_meta);
        ( "traceEvents",
          Json.List
            (List.map name_meta infos
            @ List.map (fun (_, _, _, ev) -> ev) sorted) );
        ("displayTimeUnit", Json.String "ms") ],
    infos )

let load_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | Ok doc -> Ok { in_file = path; in_doc = doc }
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let stitch_files paths =
  let rec load acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      match load_file p with
      | Ok i -> load (i :: acc) rest
      | Error e -> Error e)
  in
  match load [] paths with
  | Error e -> Error e
  | Ok inputs -> Ok (stitch inputs)

