let run_id_cell = ref None

let run_id () =
  match !run_id_cell with
  | Some id -> id
  | None ->
      let id =
        match Sys.getenv_opt "ISE_RUN_ID" with
        | Some id when id <> "" -> id
        | _ ->
            let t = Unix.gettimeofday () in
            let pid = Unix.getpid () in
            Printf.sprintf "%08x%04x"
              (int_of_float (Float.rem t 4294967296.0))
              (pid land 0xffff)
      in
      run_id_cell := Some id;
      id

let git_rev_cell = ref None

let git_rev () =
  match !git_rev_cell with
  | Some rev -> rev
  | None ->
      let rev =
        try
          let ic =
            Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
          in
          let line = try input_line ic with End_of_file -> "" in
          let status = Unix.close_process_in ic in
          match status with
          | Unix.WEXITED 0 when line <> "" -> line
          | _ -> "unknown"
        with _ -> "unknown"
      in
      git_rev_cell := Some rev;
      rev

let stamp () =
  [
    ("run_id", Ise_telemetry.Json.String (run_id ()));
    ("git_rev", Ise_telemetry.Json.String (git_rev ()));
  ]

let stamp_meta () = [ ("run_id", run_id ()); ("git_rev", git_rev ()) ]
