module Trace = Ise_telemetry.Trace
module Json = Ise_telemetry.Json
module Stats = Ise_util.Stats

type kind = Detect | Put | Get | Apply | Resolve | Resume | Terminate

type ev = {
  e_kind : kind;
  e_core : int;
  e_cycle : int;
  e_seq : int option;
  e_addr : int option;
  e_data : int option;
}

let kind_name = function
  | Detect -> "DETECT"
  | Put -> "PUT"
  | Get -> "GET"
  | Apply -> "APPLY"
  | Resolve -> "RESOLVE"
  | Resume -> "RESUME"
  | Terminate -> "TERMINATE"

let kind_of_name = function
  | "DETECT" -> Some Detect
  | "PUT" -> Some Put
  | "GET" -> Some Get
  | "APPLY" -> Some Apply
  | "RESOLVE" -> Some Resolve
  | "RESUME" -> Some Resume
  | "TERMINATE" -> Some Terminate
  | _ -> None

let int_arg args k =
  match List.assoc_opt k args with Some v -> Json.to_int v | None -> None

let of_trace_events events =
  List.filter_map
    (fun (e : Trace.event) ->
      match e.ev_ph with
      | Trace.Instant -> (
          match kind_of_name e.ev_name with
          | None -> None
          | Some e_kind ->
              Some
                {
                  e_kind;
                  e_core = e.ev_tid;
                  e_cycle = e.ev_ts;
                  e_seq = int_arg e.ev_args "seq";
                  e_addr = int_arg e.ev_args "addr";
                  e_data = int_arg e.ev_args "data";
                })
      | _ -> None)
    events

let of_chrome_json json =
  match Json.member "traceEvents" json with
  | None -> Error "no traceEvents key (not a Chrome trace document)"
  | Some evs -> (
      match Json.to_list evs with
      | None -> Error "traceEvents is not a list"
      | Some items ->
          let get_str k o = Option.bind (Json.member k o) Json.to_str in
          (* numeric fields may round-trip as Float; accept both *)
          let get_int k o =
            Option.map int_of_float
              (Option.bind (Json.member k o) Json.to_float)
          in
          Ok
            (List.filter_map
               (fun item ->
                 match (get_str "ph" item, get_str "name" item) with
                 | Some "i", Some name -> (
                     match kind_of_name name with
                     | None -> None
                     | Some e_kind ->
                         let args =
                           Option.value ~default:Json.Null
                             (Json.member "args" item)
                         in
                         Some
                           {
                             e_kind;
                             e_core =
                               Option.value ~default:0 (get_int "tid" item);
                             e_cycle =
                               Option.value ~default:0 (get_int "ts" item);
                             e_seq = get_int "seq" args;
                             e_addr = get_int "addr" args;
                             e_data = get_int "data" args;
                           })
                 | _ -> None)
               items))

let of_journal (p : Journal.parsed) = of_trace_events p.j_events

type anomaly = {
  a_rule : string;
  a_core : int;
  a_cycle : int;
  a_detail : string;
}

type episode = {
  ep_id : int;
  ep_core : int;
  ep_detect : int;
  ep_end : int option;
  ep_terminated : bool;
  ep_puts : int;
  ep_gets : int;
  ep_applies : int;
  ep_first_put : int option;
  ep_last_put : int option;
  ep_first_get : int option;
  ep_last_get : int option;
  ep_first_apply : int option;
  ep_last_apply : int option;
  ep_resolve : int option;
}

type phases = {
  ph_detect_to_drain : int option;
  ph_drain : int option;
  ph_get_loop : int option;
  ph_apply : int option;
  ph_resume : int option;
  ph_total : int option;
}

let phases_of ep =
  let sub a b = match (a, b) with Some a, Some b -> Some (a - b) | _ -> None in
  {
    ph_detect_to_drain = sub ep.ep_first_put (Some ep.ep_detect);
    ph_drain = sub ep.ep_last_put ep.ep_first_put;
    ph_get_loop = sub ep.ep_last_get ep.ep_first_get;
    ph_apply = sub ep.ep_last_apply ep.ep_first_apply;
    ph_resume = sub ep.ep_end ep.ep_resolve;
    ph_total = sub ep.ep_end (Some ep.ep_detect);
  }

type analysis = {
  an_events : int;
  an_cores : int;
  an_episodes : episode list;
  an_anomalies : anomaly list;
}

(* Mutable in-flight episode; frozen into an [episode] at close. *)
type open_ep = {
  oe_id : int;
  oe_core : int;
  oe_detect : int;
  mutable oe_puts : int;
  mutable oe_gets : int;
  mutable oe_applies : int;
  mutable oe_first_put : int option;
  mutable oe_last_put : int option;
  mutable oe_first_get : int option;
  mutable oe_last_get : int option;
  mutable oe_first_apply : int option;
  mutable oe_last_apply : int option;
  mutable oe_resolve : int option;
  mutable oe_get_counts : (int * int) list;  (* key -> GET attempts *)
}

type cstate = {
  core : int;
  mutable open_ep : open_ep option;
  mutable pending_puts : ev list;  (* not yet GET, oldest first *)
  mutable pending_gets : ev list;  (* not yet APPLY, in GET order *)
  mutable last_seq : int;
  mutable resolved : bool;
  mutable terminated : bool;
}

(* Two lifecycle events denote the same store when their sequence
   numbers agree; journals always carry [seq], Chrome traces from
   older builds may only carry [addr], so fall back to it. *)
let same_store a b =
  match (a.e_seq, b.e_seq) with
  | Some x, Some y -> x = y
  | _ -> (
      match (a.e_addr, b.e_addr) with Some x, Some y -> x = y | _ -> false)

let store_key e =
  match e.e_seq with
  | Some s -> s
  | None -> ( match e.e_addr with Some a -> a | None -> -1)

let pp_store e =
  let f name = function Some v -> Printf.sprintf " %s=%d" name v | None -> "" in
  let fx name = function
    | Some v -> Printf.sprintf " %s=0x%x" name v
    | None -> ""
  in
  String.trim
    (Printf.sprintf "%s%s%s" (f "seq" e.e_seq) (fx "addr" e.e_addr)
       (f "data" e.e_data))

let remove_first_store e l =
  let rec go acc = function
    | [] -> None
    | x :: rest ->
        if same_store x e then Some (List.rev_append acc rest)
        else go (x :: acc) rest
  in
  go [] l

let analyze ?(ordered_interface = true) ?(ordered_apply = true)
    ?(retry_threshold = 4) evs =
  let max_core =
    List.fold_left (fun m e -> max m e.e_core) (-1) evs
  in
  let ncores = max_core + 1 in
  let cores =
    Array.init ncores (fun core ->
        { core; open_ep = None; pending_puts = []; pending_gets = [];
          last_seq = -1; resolved = false; terminated = false })
  in
  let anomalies = ref [] and episodes = ref [] and next_id = ref 0 in
  let flag ~core ~cycle rule detail =
    anomalies :=
      { a_rule = rule; a_core = core; a_cycle = cycle; a_detail = detail }
      :: !anomalies
  in
  let close_ep c ~cycle ~terminated =
    match c.open_ep with
    | None -> ()
    | Some oe ->
        episodes :=
          {
            ep_id = oe.oe_id;
            ep_core = oe.oe_core;
            ep_detect = oe.oe_detect;
            ep_end = Some cycle;
            ep_terminated = terminated;
            ep_puts = oe.oe_puts;
            ep_gets = oe.oe_gets;
            ep_applies = oe.oe_applies;
            ep_first_put = oe.oe_first_put;
            ep_last_put = oe.oe_last_put;
            ep_first_get = oe.oe_first_get;
            ep_last_get = oe.oe_last_get;
            ep_first_apply = oe.oe_first_apply;
            ep_last_apply = oe.oe_last_apply;
            ep_resolve = oe.oe_resolve;
          }
          :: !episodes;
        c.open_ep <- None
  in
  let touch first last cycle =
    (match !first with None -> first := Some cycle | Some _ -> ());
    last := Some cycle
  in
  List.iter
    (fun e ->
      if e.e_core < 0 || e.e_core >= ncores then
        flag ~core:e.e_core ~cycle:e.e_cycle "bad-core"
          (Printf.sprintf "event on core %d" e.e_core)
      else begin
        let c = cores.(e.e_core) in
        let flag rule detail = flag ~core:e.e_core ~cycle:e.e_cycle rule detail in
        if c.terminated then
          flag "after-terminate"
            (Printf.sprintf "core %d emitted %s after TERMINATE" e.e_core
               (kind_name e.e_kind))
        else
          match e.e_kind with
          | Detect ->
              (* a DETECT inside an open episode extends it (nested
                 faults drain into the same handler invocation) *)
              if c.open_ep = None then begin
                let oe =
                  { oe_id = !next_id; oe_core = e.e_core;
                    oe_detect = e.e_cycle; oe_puts = 0; oe_gets = 0;
                    oe_applies = 0; oe_first_put = None; oe_last_put = None;
                    oe_first_get = None; oe_last_get = None;
                    oe_first_apply = None; oe_last_apply = None;
                    oe_resolve = None; oe_get_counts = [] }
                in
                incr next_id;
                c.open_ep <- Some oe
              end;
              c.resolved <- false
          | Put ->
              (match c.open_ep with
              | None ->
                  flag "orphan-event"
                    (Printf.sprintf "core %d PUT %s outside any episode"
                       e.e_core (pp_store e))
              | Some oe ->
                  oe.oe_puts <- oe.oe_puts + 1;
                  let first = ref oe.oe_first_put and last = ref oe.oe_last_put in
                  touch first last e.e_cycle;
                  oe.oe_first_put <- !first;
                  oe.oe_last_put <- !last);
              (match e.e_seq with
              | Some seq ->
                  if ordered_interface && seq <= c.last_seq then
                    flag "put-order"
                      (Printf.sprintf "core %d PUT seq %d after seq %d"
                         e.e_core seq c.last_seq);
                  c.last_seq <- max c.last_seq seq
              | None -> ());
              c.pending_puts <- c.pending_puts @ [ e ]
          | Get ->
              (match c.open_ep with
              | None ->
                  flag "orphan-event"
                    (Printf.sprintf "core %d GET %s outside any episode"
                       e.e_core (pp_store e))
              | Some oe ->
                  oe.oe_gets <- oe.oe_gets + 1;
                  let first = ref oe.oe_first_get and last = ref oe.oe_last_get in
                  touch first last e.e_cycle;
                  oe.oe_first_get <- !first;
                  oe.oe_last_get <- !last;
                  let key = store_key e in
                  let n =
                    1 + Option.value ~default:0 (List.assoc_opt key oe.oe_get_counts)
                  in
                  oe.oe_get_counts <-
                    (key, n) :: List.remove_assoc key oe.oe_get_counts;
                  if n = retry_threshold + 1 then
                    flag "retry-storm"
                      (Printf.sprintf "core %d GET %s retried %d times"
                         e.e_core (pp_store e) n));
              (match c.pending_puts with
              | oldest :: rest when ordered_interface ->
                  if same_store oldest e then begin
                    c.pending_puts <- rest;
                    c.pending_gets <- c.pending_gets @ [ e ]
                  end
                  else (
                    match remove_first_store e c.pending_puts with
                    | Some rest' ->
                        flag "get-order"
                          (Printf.sprintf
                             "core %d GET %s but oldest PUT is %s" e.e_core
                             (pp_store e) (pp_store oldest));
                        c.pending_puts <- rest';
                        c.pending_gets <- c.pending_gets @ [ e ]
                    | None ->
                        flag "get-unknown"
                          (Printf.sprintf "core %d GET %s never PUT" e.e_core
                             (pp_store e)))
              | _ -> (
                  match remove_first_store e c.pending_puts with
                  | Some rest ->
                      c.pending_puts <- rest;
                      c.pending_gets <- c.pending_gets @ [ e ]
                  | None ->
                      flag "get-unknown"
                        (Printf.sprintf "core %d GET %s never PUT" e.e_core
                           (pp_store e))))
          | Apply ->
              (match c.open_ep with
              | None ->
                  flag "orphan-event"
                    (Printf.sprintf "core %d APPLY %s outside any episode"
                       e.e_core (pp_store e))
              | Some oe ->
                  oe.oe_applies <- oe.oe_applies + 1;
                  let first = ref oe.oe_first_apply
                  and last = ref oe.oe_last_apply in
                  touch first last e.e_cycle;
                  oe.oe_first_apply <- !first;
                  oe.oe_last_apply <- !last);
              (match c.pending_gets with
              | oldest :: rest when ordered_apply ->
                  if same_store oldest e then c.pending_gets <- rest
                  else (
                    match remove_first_store e c.pending_gets with
                    | Some rest' ->
                        flag "apply-order"
                          (Printf.sprintf
                             "core %d APPLY %s but oldest GET is %s" e.e_core
                             (pp_store e) (pp_store oldest));
                        c.pending_gets <- rest'
                    | None ->
                        flag "apply-unknown"
                          (Printf.sprintf
                             "core %d APPLY %s never retrieved (or applied \
                              twice)"
                             e.e_core (pp_store e)))
              | _ -> (
                  match remove_first_store e c.pending_gets with
                  | Some rest -> c.pending_gets <- rest
                  | None ->
                      flag "apply-unknown"
                        (Printf.sprintf
                           "core %d APPLY %s never retrieved (or applied \
                            twice)"
                           e.e_core (pp_store e))))
          | Resolve ->
              (match c.open_ep with
              | None ->
                  flag "orphan-event"
                    (Printf.sprintf "core %d RESOLVE outside any episode"
                       e.e_core)
              | Some oe -> oe.oe_resolve <- Some e.e_cycle);
              if c.pending_puts <> [] then
                flag "lost-store"
                  (Printf.sprintf
                     "core %d RESOLVE with %d stores never retrieved (%s)"
                     e.e_core
                     (List.length c.pending_puts)
                     (String.concat "; " (List.map pp_store c.pending_puts)));
              if c.pending_gets <> [] then
                flag "lost-store"
                  (Printf.sprintf
                     "core %d RESOLVE with %d stores never applied (%s)"
                     e.e_core
                     (List.length c.pending_gets)
                     (String.concat "; " (List.map pp_store c.pending_gets)));
              c.resolved <- true
          | Resume ->
              if c.open_ep <> None && not c.resolved then
                flag "resume-before-resolve"
                  (Printf.sprintf "core %d RESUME without RESOLVE" e.e_core);
              close_ep c ~cycle:e.e_cycle ~terminated:false;
              c.resolved <- false
          | Terminate ->
              close_ep c ~cycle:e.e_cycle ~terminated:true;
              c.terminated <- true;
              c.pending_puts <- [];
              c.pending_gets <- []
      end)
    evs;
  (* end of journal *)
  Array.iter
    (fun c ->
      (match c.open_ep with
      | Some oe ->
          flag ~core:c.core ~cycle:oe.oe_detect "stuck-episode"
            (Printf.sprintf
               "core %d episode #%d detected at cycle %d never resumed"
               c.core oe.oe_id oe.oe_detect);
          episodes :=
            {
              ep_id = oe.oe_id;
              ep_core = oe.oe_core;
              ep_detect = oe.oe_detect;
              ep_end = None;
              ep_terminated = false;
              ep_puts = oe.oe_puts;
              ep_gets = oe.oe_gets;
              ep_applies = oe.oe_applies;
              ep_first_put = oe.oe_first_put;
              ep_last_put = oe.oe_last_put;
              ep_first_get = oe.oe_first_get;
              ep_last_get = oe.oe_last_get;
              ep_first_apply = oe.oe_first_apply;
              ep_last_apply = oe.oe_last_apply;
              ep_resolve = oe.oe_resolve;
            }
            :: !episodes;
          c.open_ep <- None
      | None -> ());
      if not c.terminated then begin
        if c.pending_puts <> [] then
          flag ~core:c.core ~cycle:(-1) "lost-store-at-exit"
            (Printf.sprintf "core %d ended with %d stores never retrieved (%s)"
               c.core
               (List.length c.pending_puts)
               (String.concat "; " (List.map pp_store c.pending_puts)));
        if c.pending_gets <> [] then
          flag ~core:c.core ~cycle:(-1) "lost-store-at-exit"
            (Printf.sprintf "core %d ended with %d stores never applied (%s)"
               c.core
               (List.length c.pending_gets)
               (String.concat "; " (List.map pp_store c.pending_gets)))
      end)
    cores;
  let episodes =
    List.sort (fun a b -> compare a.ep_id b.ep_id) !episodes
  in
  {
    an_events = List.length evs;
    an_cores = ncores;
    an_episodes = episodes;
    an_anomalies = List.rev !anomalies;
  }

let clean a = a.an_anomalies = []

let rules a =
  List.sort_uniq compare (List.map (fun v -> v.a_rule) a.an_anomalies)

let total_of ep =
  match (phases_of ep).ph_total with Some t -> t | None -> max_int
(* stuck episodes sort as slowest *)

let slowest ?(top = 5) a =
  let sorted =
    List.sort (fun x y -> compare (total_of y) (total_of x)) a.an_episodes
  in
  List.filteri (fun i _ -> i < top) sorted

(* Per-core rollup: episode counts and total-latency stats. *)
type rollup = {
  ru_core : int;
  ru_episodes : int;
  ru_terminated : int;
  ru_stuck : int;
  ru_puts : int;
  ru_gets : int;
  ru_applies : int;
  ru_total : Stats.t;  (* cycles, completed episodes only *)
}

let rollups a =
  List.init a.an_cores (fun core ->
      let eps = List.filter (fun e -> e.ep_core = core) a.an_episodes in
      let total = Stats.create () in
      List.iter
        (fun e ->
          match (phases_of e).ph_total with
          | Some t -> Stats.add_int total t
          | None -> ())
        eps;
      {
        ru_core = core;
        ru_episodes = List.length eps;
        ru_terminated =
          List.length (List.filter (fun e -> e.ep_terminated) eps);
        ru_stuck = List.length (List.filter (fun e -> e.ep_end = None) eps);
        ru_puts = List.fold_left (fun s e -> s + e.ep_puts) 0 eps;
        ru_gets = List.fold_left (fun s e -> s + e.ep_gets) 0 eps;
        ru_applies = List.fold_left (fun s e -> s + e.ep_applies) 0 eps;
        ru_total = total;
      })

let opt_str = function Some v -> string_of_int v | None -> "-"

let pp_phases b ep =
  let p = phases_of ep in
  Buffer.add_string b
    (Printf.sprintf
       "total=%s detect_to_drain=%s drain=%s get_loop=%s apply=%s resume=%s"
       (opt_str p.ph_total)
       (opt_str p.ph_detect_to_drain)
       (opt_str p.ph_drain) (opt_str p.ph_get_loop) (opt_str p.ph_apply)
       (opt_str p.ph_resume))

let report_text ?(top = 5) a =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "episode report: %d lifecycle events, %d cores, %d episodes, %d \
        anomalies\n"
       a.an_events a.an_cores
       (List.length a.an_episodes)
       (List.length a.an_anomalies));
  if a.an_anomalies <> [] then begin
    Buffer.add_string b "\nanomalies:\n";
    List.iter
      (fun v ->
        Buffer.add_string b
          (Printf.sprintf "  [%s@%d] %s\n" v.a_rule v.a_cycle v.a_detail))
      a.an_anomalies
  end;
  Buffer.add_string b "\nper-core rollup:\n";
  List.iter
    (fun r ->
      let lat =
        if Stats.count r.ru_total = 0 then "no completed episodes"
        else
          Printf.sprintf "total mean %.1f p90 %.1f max %.0f cycles"
            (Stats.mean r.ru_total)
            (Stats.percentile r.ru_total 90.)
            (Stats.max_value r.ru_total)
      in
      Buffer.add_string b
        (Printf.sprintf
           "  core %d: %d episodes (%d terminated, %d stuck), %s; puts %d \
            gets %d applies %d\n"
           r.ru_core r.ru_episodes r.ru_terminated r.ru_stuck lat r.ru_puts
           r.ru_gets r.ru_applies))
    (rollups a);
  let slow = slowest ~top a in
  if slow <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "\nslowest %d episodes:\n" (List.length slow));
    List.iter
      (fun ep ->
        Buffer.add_string b
          (Printf.sprintf "  #%d core %d detect@%d%s " ep.ep_id ep.ep_core
             ep.ep_detect
             (if ep.ep_end = None then " [STUCK]"
              else if ep.ep_terminated then " [TERMINATED]"
              else ""));
        pp_phases b ep;
        Buffer.add_char b '\n')
      slow
  end;
  Buffer.contents b

let report_md ?(top = 5) a =
  let b = Buffer.create 1024 in
  Buffer.add_string b "## Episode report\n\n";
  Buffer.add_string b
    (Printf.sprintf
       "%d lifecycle events · %d cores · %d episodes · **%d anomalies**\n\n"
       a.an_events a.an_cores
       (List.length a.an_episodes)
       (List.length a.an_anomalies));
  if a.an_anomalies <> [] then begin
    Buffer.add_string b "### Anomalies\n\n| rule | core | cycle | detail |\n|---|---|---|---|\n";
    List.iter
      (fun v ->
        Buffer.add_string b
          (Printf.sprintf "| `%s` | %d | %d | %s |\n" v.a_rule v.a_core
             v.a_cycle v.a_detail))
      a.an_anomalies;
    Buffer.add_char b '\n'
  end;
  Buffer.add_string b
    "### Per-core rollup\n\n\
     | core | episodes | terminated | stuck | mean total | p90 total | puts \
     | gets | applies |\n\
     |---|---|---|---|---|---|---|---|---|\n";
  List.iter
    (fun r ->
      let mean, p90 =
        if Stats.count r.ru_total = 0 then ("-", "-")
        else
          ( Printf.sprintf "%.1f" (Stats.mean r.ru_total),
            Printf.sprintf "%.1f" (Stats.percentile r.ru_total 90.) )
      in
      Buffer.add_string b
        (Printf.sprintf "| %d | %d | %d | %d | %s | %s | %d | %d | %d |\n"
           r.ru_core r.ru_episodes r.ru_terminated r.ru_stuck mean p90
           r.ru_puts r.ru_gets r.ru_applies))
    (rollups a);
  let slow = slowest ~top a in
  if slow <> [] then begin
    Buffer.add_string b
      "\n### Slowest episodes\n\n\
       | # | core | detect | total | detect→drain | drain | GET loop | \
       apply | resume |\n\
       |---|---|---|---|---|---|---|---|---|\n";
    List.iter
      (fun ep ->
        let p = phases_of ep in
        Buffer.add_string b
          (Printf.sprintf "| %d | %d | %d | %s | %s | %s | %s | %s | %s |\n"
             ep.ep_id ep.ep_core ep.ep_detect
             (opt_str p.ph_total)
             (opt_str p.ph_detect_to_drain)
             (opt_str p.ph_drain) (opt_str p.ph_get_loop) (opt_str p.ph_apply)
             (opt_str p.ph_resume)))
      slow
  end;
  Buffer.contents b

let opt_json = function Some v -> Json.Int v | None -> Json.Null

let episode_json ep =
  let p = phases_of ep in
  Json.Obj
    [
      ("id", Json.Int ep.ep_id);
      ("core", Json.Int ep.ep_core);
      ("detect", Json.Int ep.ep_detect);
      ("end", opt_json ep.ep_end);
      ("terminated", Json.Bool ep.ep_terminated);
      ("puts", Json.Int ep.ep_puts);
      ("gets", Json.Int ep.ep_gets);
      ("applies", Json.Int ep.ep_applies);
      ( "phases",
        Json.Obj
          [
            ("detect_to_drain", opt_json p.ph_detect_to_drain);
            ("drain", opt_json p.ph_drain);
            ("get_loop", opt_json p.ph_get_loop);
            ("apply", opt_json p.ph_apply);
            ("resume", opt_json p.ph_resume);
            ("total", opt_json p.ph_total);
          ] );
    ]

let report_json ?(top = 5) a =
  Json.Obj
    (Runinfo.stamp ()
    @ [
        ("events", Json.Int a.an_events);
        ("cores", Json.Int a.an_cores);
        ("episode_count", Json.Int (List.length a.an_episodes));
        ("anomaly_count", Json.Int (List.length a.an_anomalies));
        ("rules", Json.List (List.map (fun r -> Json.String r) (rules a)));
        ( "anomalies",
          Json.List
            (List.map
               (fun v ->
                 Json.Obj
                   [
                     ("rule", Json.String v.a_rule);
                     ("core", Json.Int v.a_core);
                     ("cycle", Json.Int v.a_cycle);
                     ("detail", Json.String v.a_detail);
                   ])
               a.an_anomalies) );
        ( "rollup",
          Json.List
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("core", Json.Int r.ru_core);
                     ("episodes", Json.Int r.ru_episodes);
                     ("terminated", Json.Int r.ru_terminated);
                     ("stuck", Json.Int r.ru_stuck);
                     ("puts", Json.Int r.ru_puts);
                     ("gets", Json.Int r.ru_gets);
                     ("applies", Json.Int r.ru_applies);
                     ( "total_mean",
                       if Stats.count r.ru_total = 0 then Json.Null
                       else Json.Float (Stats.mean r.ru_total) );
                     ( "total_p90",
                       if Stats.count r.ru_total = 0 then Json.Null
                       else Json.Float (Stats.percentile r.ru_total 90.) );
                   ])
               (rollups a)) );
        ("slowest", Json.List (List.map episode_json (slowest ~top a)));
      ])
