module Json = Ise_telemetry.Json

type record = {
  l_run_id : string;
  l_git_rev : string;
  l_kind : string;
  l_label : string;
  l_seed : int;
  l_config : string;
  l_time : float;
  l_metrics : (string * float) list;
}

let make ?run_id ?git_rev ?(config = "") ?time ~kind ~label ~seed metrics =
  {
    l_run_id = (match run_id with Some r -> r | None -> Runinfo.run_id ());
    l_git_rev = (match git_rev with Some r -> r | None -> Runinfo.git_rev ());
    l_kind = kind;
    l_label = label;
    l_seed = seed;
    l_config = config;
    l_time = (match time with Some t -> t | None -> Unix.gettimeofday ());
    l_metrics = metrics;
  }

let to_json r =
  Json.Obj
    [
      ("run_id", Json.String r.l_run_id);
      ("git_rev", Json.String r.l_git_rev);
      ("kind", Json.String r.l_kind);
      ("label", Json.String r.l_label);
      ("seed", Json.Int r.l_seed);
      ("config", Json.String r.l_config);
      ("time", Json.Float r.l_time);
      ( "metrics",
        Json.Obj
          (List.map
             (fun (k, v) ->
               ( k,
                 if Float.is_integer v && Float.abs v < 1e15 then
                   Json.Int (int_of_float v)
                 else Json.Float v ))
             r.l_metrics) );
    ]

let of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let num k = Option.bind (Json.member k j) Json.to_float in
  match (str "kind", Json.member "metrics" j) with
  | None, _ -> Error "record missing \"kind\""
  | _, None -> Error "record missing \"metrics\""
  | Some kind, Some (Json.Obj fields) ->
      let metrics =
        List.filter_map
          (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v))
          fields
      in
      Ok
        {
          l_run_id = Option.value ~default:"" (str "run_id");
          l_git_rev = Option.value ~default:"unknown" (str "git_rev");
          l_kind = kind;
          l_label = Option.value ~default:"" (str "label");
          l_seed =
            int_of_float (Option.value ~default:0.0 (num "seed"));
          l_config = Option.value ~default:"" (str "config");
          l_time = Option.value ~default:0.0 (num "time");
          l_metrics = metrics;
        }
  | Some _, Some _ -> Error "record \"metrics\" is not an object"

let mkdir_for path =
  let dir = Filename.dirname path in
  if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let append ~path r =
  mkdir_for path;
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  output_string oc (Json.to_string (to_json r));
  output_char oc '\n';
  close_out oc

let load ~path =
  match
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s
    with Sys_error _ | End_of_file -> None
  with
  | None -> Error ("cannot read " ^ path)
  | Some text ->
      let lines = String.split_on_char '\n' text in
      let rec go acc i = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
            let line = String.trim line in
            if line = "" then go acc (i + 1) rest
            else (
              match Json.of_string line with
              | Error e ->
                  Error (Printf.sprintf "%s:%d: bad JSON: %s" path i e)
              | Ok j -> (
                  match of_json j with
                  | Error e ->
                      Error (Printf.sprintf "%s:%d: bad record: %s" path i e)
                  | Ok r -> go (r :: acc) (i + 1) rest))
      in
      go [] 1 lines

let last ?kind ?label records =
  let matches r =
    (match kind with Some k -> r.l_kind = k | None -> true)
    && match label with Some l -> r.l_label = l | None -> true
  in
  List.fold_left
    (fun acc r -> if matches r then Some r else acc)
    None records

(* Comparison *)

type direction = Lower_better | Higher_better | Informational

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let ends_with ~suffix s =
  let ns = String.length s and nf = String.length suffix in
  ns >= nf && String.sub s (ns - nf) nf = suffix

let direction_of name =
  let n = String.lowercase_ascii name in
  (* wall-clock is machine-dependent: report, never gate *)
  if contains n "wall" || contains n "detected" then Informational
  else if
    contains n "cycle" || contains n "violation" || contains n "failure"
    || contains n "mismatch" || contains n "anomal" || contains n "dropped"
    || contains n "stall" || ends_with ~suffix:"_ms" n
    || contains n "latency" || contains n "occupancy"
  then Lower_better
  else if
    contains n "speedup" || contains n "throughput" || contains n "ipc"
    || contains n "retired" || contains n "relative"
  then Higher_better
  else Informational

type verdict =
  | Improved
  | Neutral
  | Regressed
  | Missing_base
  | Missing_new
  | Incomparable

type delta = {
  d_name : string;
  d_dir : direction;
  d_base : float option;
  d_new : float option;
  d_rel : float option;
  d_verdict : verdict;
}

type comparison = {
  c_base : record;
  c_new : record;
  c_deltas : delta list;
}

let classify ~dir ~thr ~base ~cand =
  if Float.is_nan base || Float.is_nan cand then (None, Incomparable)
  else if base = 0.0 then
    if cand = 0.0 then (Some 0.0, Neutral) else (None, Incomparable)
  else
    let rel = (cand -. base) /. Float.abs base in
    let v =
      match dir with
      | Informational -> Neutral
      | Lower_better ->
          if rel > thr then Regressed
          else if rel < -.thr then Improved
          else Neutral
      | Higher_better ->
          if rel < -.thr then Regressed
          else if rel > thr then Improved
          else Neutral
    in
    (Some rel, v)

let compare_records ?(threshold = 0.02) ?(thresholds = []) ~base cand =
  let names =
    List.sort_uniq compare
      (List.map fst base.l_metrics @ List.map fst cand.l_metrics)
  in
  let deltas =
    List.map
      (fun name ->
        let b = List.assoc_opt name base.l_metrics
        and n = List.assoc_opt name cand.l_metrics in
        let dir = direction_of name in
        let thr =
          Option.value ~default:threshold (List.assoc_opt name thresholds)
        in
        let rel, verdict =
          match (b, n) with
          | None, Some _ -> (None, Missing_base)
          | Some _, None -> (None, Missing_new)
          | None, None -> (None, Incomparable)
          | Some b, Some n -> classify ~dir ~thr ~base:b ~cand:n
        in
        {
          d_name = name;
          d_dir = dir;
          d_base = b;
          d_new = n;
          d_rel = rel;
          d_verdict = verdict;
        })
      names
  in
  { c_base = base; c_new = cand; c_deltas = deltas }

let regressed c = List.exists (fun d -> d.d_verdict = Regressed) c.c_deltas
let improved c = List.exists (fun d -> d.d_verdict = Improved) c.c_deltas

let counts c =
  List.fold_left
    (fun (i, n, r) d ->
      match d.d_verdict with
      | Improved -> (i + 1, n, r)
      | Regressed -> (i, n, r + 1)
      | _ -> (i, n + 1, r))
    (0, 0, 0) c.c_deltas

let verdict_name = function
  | Improved -> "improved"
  | Neutral -> "neutral"
  | Regressed -> "REGRESSED"
  | Missing_base -> "new-metric"
  | Missing_new -> "missing"
  | Incomparable -> "incomparable"

let dir_glyph = function
  | Lower_better -> "<"
  | Higher_better -> ">"
  | Informational -> "."

let opt_num = function Some f -> Printf.sprintf "%.4g" f | None -> "-"
let opt_pct = function
  | Some f -> Printf.sprintf "%+.1f%%" (100.0 *. f)
  | None -> "-"

let overall c =
  if regressed c then "REGRESSED" else if improved c then "improved" else "neutral"

let header_line c =
  Printf.sprintf "compare %s/%s (%s, seed %d) -> %s/%s (%s, seed %d): %s"
    c.c_base.l_kind c.c_base.l_label c.c_base.l_git_rev c.c_base.l_seed
    c.c_new.l_kind c.c_new.l_label c.c_new.l_git_rev c.c_new.l_seed
    (overall c)

let comparison_text c =
  let b = Buffer.create 1024 in
  Buffer.add_string b (header_line c);
  Buffer.add_char b '\n';
  let i, n, r = counts c in
  Buffer.add_string b
    (Printf.sprintf "  %d improved, %d neutral, %d regressed\n" i n r);
  List.iter
    (fun d ->
      if d.d_verdict <> Neutral || d.d_dir <> Informational then
        Buffer.add_string b
          (Printf.sprintf "  %-12s %s %-40s %10s -> %-10s %8s\n"
             (verdict_name d.d_verdict)
             (dir_glyph d.d_dir) d.d_name (opt_num d.d_base) (opt_num d.d_new)
             (opt_pct d.d_rel)))
    c.c_deltas;
  Buffer.contents b

let comparison_md c =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "## Perf comparison — **%s**\n\n" (overall c));
  Buffer.add_string b
    (Printf.sprintf "base `%s` (%s) → new `%s` (%s)\n\n" c.c_base.l_git_rev
       c.c_base.l_label c.c_new.l_git_rev c.c_new.l_label);
  Buffer.add_string b
    "| metric | dir | base | new | Δ | verdict |\n|---|---|---|---|---|---|\n";
  List.iter
    (fun d ->
      Buffer.add_string b
        (Printf.sprintf "| `%s` | %s | %s | %s | %s | %s |\n" d.d_name
           (dir_glyph d.d_dir) (opt_num d.d_base) (opt_num d.d_new)
           (opt_pct d.d_rel)
           (verdict_name d.d_verdict)))
    c.c_deltas;
  Buffer.contents b

let opt_json = function
  | Some f ->
      if Float.is_nan f then Json.Null
      else if Float.is_integer f && Float.abs f < 1e15 then
        Json.Int (int_of_float f)
      else Json.Float f
  | None -> Json.Null

let comparison_json c =
  let i, n, r = counts c in
  Json.Obj
    (Runinfo.stamp ()
    @ [
        ("overall", Json.String (overall c));
        ("base_rev", Json.String c.c_base.l_git_rev);
        ("new_rev", Json.String c.c_new.l_git_rev);
        ("improved", Json.Int i);
        ("neutral", Json.Int n);
        ("regressed", Json.Int r);
        ( "deltas",
          Json.List
            (List.map
               (fun d ->
                 Json.Obj
                   [
                     ("name", Json.String d.d_name);
                     ("base", opt_json d.d_base);
                     ("new", opt_json d.d_new);
                     ("rel", opt_json d.d_rel);
                     ("verdict", Json.String (verdict_name d.d_verdict));
                   ])
               c.c_deltas) );
      ])

let flatten_json ?(prefix = "") json =
  let acc = ref [] in
  let join p k = if p = "" then k else p ^ "/" ^ k in
  let rec go p (j : Json.t) =
    match j with
    | Json.Int i -> acc := (p, float_of_int i) :: !acc
    | Json.Float f -> acc := (p, f) :: !acc
    | Json.Bool b -> acc := (p, if b then 1.0 else 0.0) :: !acc
    | Json.Null | Json.String _ -> ()
    | Json.Obj fields -> List.iter (fun (k, v) -> go (join p k) v) fields
    | Json.List items -> List.iteri (fun i v -> go (join p (string_of_int i)) v) items
  in
  go prefix json;
  List.rev !acc
