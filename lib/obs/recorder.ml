module Trace = Ise_telemetry.Trace
module Json = Ise_telemetry.Json
module Contract = Ise_core.Contract
module Fault = Ise_core.Fault

type t = {
  trace : Trace.t;
  mutable rmeta : Journal.meta;
  mutable spill : out_channel option;
  mutable notes : int;  (* monotonic ts for out-of-cycle-domain notes *)
}

let create ?(capacity = 4096) ?spill ?(meta = []) () =
  let spill_chan =
    match spill with
    | None -> None
    | Some path ->
        let oc = open_out_bin path in
        output_string oc (Journal.header meta);
        output_char oc '\n';
        flush oc;
        Some oc
  in
  {
    trace = Trace.create ~ring_capacity:capacity ();
    rmeta = meta;
    spill = spill_chan;
    notes = 0;
  }

let meta t = t.rmeta

let set_meta t k v =
  t.rmeta <- (k, v) :: List.remove_assoc k t.rmeta

let spill_line t line =
  match t.spill with
  | None -> ()
  | Some oc ->
      (* one write + flush per event: the whole point is that the tail
         survives a SIGKILL mid-run *)
      output_string oc line;
      output_char oc '\n';
      flush oc

let record t (e : Trace.event) =
  (match e.ev_ph with
  | Trace.Span_begin ->
      Trace.span_begin t.trace ~cat:e.ev_cat ~args:e.ev_args ~name:e.ev_name
        ~tid:e.ev_tid e.ev_ts
  | Trace.Span_end ->
      Trace.span_end t.trace ~cat:e.ev_cat ~args:e.ev_args ~name:e.ev_name
        ~tid:e.ev_tid e.ev_ts
  | Trace.Instant ->
      Trace.instant t.trace ~cat:e.ev_cat ~args:e.ev_args ~name:e.ev_name
        ~tid:e.ev_tid e.ev_ts
  | Trace.Counter_sample ->
      let value =
        match List.assoc_opt "value" e.ev_args with
        | Some v -> Option.value ~default:0.0 (Json.to_float v)
        | None -> 0.0
      in
      Trace.counter t.trace ~name:e.ev_name ~value e.ev_ts);
  spill_line t (Journal.encode_event e)

let instant t ?(cat = "ise") ?(args = []) ~name ~tid ts =
  record t
    { Trace.ev_name = name; ev_cat = cat; ev_ph = Trace.Instant; ev_ts = ts;
      ev_tid = tid; ev_args = args }

let events t = Trace.events t.trace
let recorded t = Trace.recorded t.trace
let dropped t = Trace.dropped t.trace

let dump t = Journal.render t.rmeta (events t)

let dump_to t path =
  let oc = open_out_bin path in
  output_string oc (dump t);
  close_out oc

let tail_lines ?(limit = 64) t =
  let evs = events t in
  let n = List.length evs in
  let evs = if n > limit then List.filteri (fun i _ -> i >= n - limit) evs else evs in
  List.map Journal.encode_event evs

(* Crash journals are stamped with run id + pid so concurrent crashing
   CLIs cannot clobber each other, and pruned oldest-first so a
   crash-looping script cannot fill the disk. *)
let crash_dump ?(dir = ".ise") ?(keep = 16) t =
  try
    (try Unix.mkdir dir 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let path =
      Filename.concat dir
        (Printf.sprintf "crash-%s-%d.jnl" (Runinfo.run_id ()) (Unix.getpid ()))
    in
    dump_to t path;
    let is_crash_jnl f =
      String.length f > 6
      && String.sub f 0 6 = "crash-"
      && Filename.check_suffix f ".jnl"
    in
    let stamped =
      Sys.readdir dir |> Array.to_list
      |> List.filter is_crash_jnl
      |> List.filter_map (fun f ->
             let p = Filename.concat dir f in
             match Unix.stat p with
             | st -> Some (st.Unix.st_mtime, p)
             | exception Unix.Unix_error _ -> None)
      |> List.sort compare  (* oldest first; path breaks mtime ties *)
    in
    let excess = List.length stamped - max 1 keep in
    if excess > 0 then
      List.iteri
        (fun i (_, p) ->
          if i < excess && p <> path then
            try Sys.remove p with Sys_error _ -> ())
        stamped;
    Some path
  with Sys_error _ | Unix.Unix_error _ -> None

let close t =
  match t.spill with
  | None -> ()
  | Some oc ->
      (try flush oc with Sys_error _ -> ());
      (try close_out oc with Sys_error _ -> ());
      t.spill <- None

let event_of_contract (ev : Contract.event) : Trace.event =
  let record_args (r : Fault.record) =
    [
      ("seq", Json.Int r.seq);
      ("addr", Json.Int r.addr);
      ("data", Json.Int r.data);
    ]
  in
  let mk name core cycle args =
    { Trace.ev_name = name; ev_cat = "ise"; ev_ph = Trace.Instant;
      ev_ts = cycle; ev_tid = core; ev_args = args }
  in
  match ev with
  | Contract.Detect { core; cycle } -> mk "DETECT" core cycle []
  | Contract.Put { core; cycle; record } ->
      mk "PUT" core cycle (record_args record)
  | Contract.Get { core; cycle; record } ->
      mk "GET" core cycle (record_args record)
  | Contract.Apply { core; cycle; record } ->
      mk "APPLY" core cycle (record_args record)
  | Contract.Resolve { core; cycle } -> mk "RESOLVE" core cycle []
  | Contract.Resume { core; cycle } -> mk "RESUME" core cycle []
  | Contract.Terminate { core; cycle } -> mk "TERMINATE" core cycle []

let observe_machine t machine =
  Ise_sim.Machine.add_observer machine (fun ev ->
      record t (event_of_contract ev))

(* Process-global recorder *)

let global_cell : t option ref = ref None

let enable ?capacity ?spill ?meta () =
  (match !global_cell with Some old -> close old | None -> ());
  let t = create ?capacity ?spill ?meta () in
  global_cell := Some t;
  t

let disable () =
  (match !global_cell with Some t -> close t | None -> ());
  global_cell := None

let global () = !global_cell

let note ?cat ?args name =
  match !global_cell with
  | None -> ()
  | Some t ->
      t.notes <- t.notes + 1;
      instant t ?cat ?args ~name ~tid:0 t.notes

let observe_machine_global machine =
  match !global_cell with None -> () | Some t -> observe_machine t machine
