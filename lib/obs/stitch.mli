(** Cross-process trace stitching: merge per-process Chrome trace
    files (one supervisor, N workers) into a single fleet-wide
    Perfetto timeline.

    Each fabric process writes its own trace in its own clock domain
    (wall-clock µs of its host).  Stitching does three things:

    - {b pid assignment}: inputs are ordered deterministically
      (supervisor-role files first, then by filename) and each gets
      that index as its Chrome [pid], plus a [process_name] metadata
      event, so Perfetto shows one lane per process;
    - {b clock-offset normalization}: for every worker file, the
      offset is the minimum of [receive_ts - dispatch_ts] over all
      matched dispatch/receive anchor pairs (a supervisor dispatch
      span begin and the worker's ["receive"] instant whose
      [parent_span_id] names it).  That minimum bounds clock skew from
      above by one wire latency — the one-way NTP argument — and
      subtracting it puts every worker event causally after its
      dispatch;
    - {b orphan tagging}: an event whose [parent_span_id] resolves to
      no span in any input gets ["orphan": true] in its args instead
      of being dropped — a parent lost to a SIGKILLed process is
      evidence, not noise.

    Output is deterministic for fixed inputs: stable input order,
    stable event sort ([normalized ts], [pid], per-file sequence). *)

type input = { in_file : string; in_doc : Ise_telemetry.Json.t }

type file_info = {
  sf_file : string;  (** basename *)
  sf_role : string;  (** ["supervisor"] or ["worker"] *)
  sf_pid : int;  (** assigned Chrome pid *)
  sf_offset_us : int;  (** subtracted from every timestamp *)
  sf_events : int;
}

val stitch : input list -> Ise_telemetry.Json.t * file_info list
(** Merge the inputs into one Chrome trace document (top-level
    [stitch] key records the per-file table). *)

val load_file : string -> (input, string) result

val stitch_files :
  string list -> (Ise_telemetry.Json.t * file_info list, string) result
(** {!load_file} each path, then {!stitch}. *)
