(** Deterministic merge: fold per-shard fabric results into the exact
    report a single-host [jobs = 1] run would produce.

    The argument is three invariants deep:

    + the test stream is a pure function of the spec
      ({!Ise_fuzz.Campaign.tests_of_spec}), so every worker checked
      the same tests the supervisor regenerates here;
    + {!Plan.partition} tiles [[0, count)] contiguously in shard
      order, and {!Ise_fuzz.Campaign.check_range} emits failures in
      global check order, so concatenating shard results in shard
      index order reproduces the sequential raw-failure stream
      regardless of which worker computed what, in what order, or how
      many times;
    + shrinking, logging, and artifact construction happen only here,
      via {!Ise_fuzz.Campaign.report_of_raw} — the same code path as a
      local run.

    Hence report, corpus entries, and ledger metrics are byte-identical
    to the single-host run — asserted by the fabric tier-1 tests and
    [bench fabric]. *)

open Ise_fuzz

type merged = {
  m_report : Campaign.report;
  m_entries : Corpus.entry list;
      (** corpus artifacts of every failure, in discovery order —
          what [ise fabric run] saves under [--corpus] *)
}

val merge :
  ?log:(string -> unit) ->
  Campaign.spec ->
  ranges:(int * int) array ->
  outcomes:Supervisor.shard_outcome array ->
  merged
(** Fold fuzz shard outcomes (in shard order) through the campaign
    finalizer.  Lost shards contribute their test count to
    [r_lost_tests] and a [LOST] log line, mirroring lost pool shards.
    @raise Invalid_argument on a chaos payload. *)

val merge_chaos :
  ?log:(string -> unit) ->
  ranges:(int * int) array ->
  outcomes:Supervisor.shard_outcome array ->
  unit ->
  Ise_chaos.Chaos_run.report array * int
(** Concatenate chaos shard reports in shard order — global trial
    order, exactly the stream a sequential [ise chaos run] produces —
    plus the number of lost trials.
    @raise Invalid_argument on a fuzz payload. *)

val ledger_record :
  ?run_id:string -> ?git_rev:string -> ?time:float -> ?label:string ->
  Campaign.spec -> Campaign.report -> Ise_obs.Ledger.record
(** The exact record [ise fuzz run --ledger] appends (kind ["fuzz"],
    same config string and metrics), so fabric runs land in
    [BENCH_history.jsonl] comparably; pin [run_id]/[time] to make the
    comparison literal byte equality. *)
