(** Deterministic wire-fault injection for the fabric: the network
    counterpart of {!Ise_chaos.Plane}.

    A seeded injector decides, per frame and per fresh connection,
    whether to drop, delay, duplicate, reorder, or corrupt traffic,
    reset the connection, or stall a new connection before its first
    byte.  Every fault category draws from its own split PRNG stream
    (SplitMix64, same discipline as [Plane]), so enabling one class
    never perturbs another's schedule and a [(seed, profile)] pair
    replays the same fault pattern against the same traffic.

    The injector is interposed as an {e fd proxy}: a process (or an
    in-process loop, for tests) that listens on one Unix socket,
    connects on to the real worker, peels {!Ise_pool.Codec} frames off
    each direction, and forwards them through the fault schedule.
    Injecting at frame granularity above a reliable byte stream — not
    at the OS packet layer — keeps the faults deterministic and
    portable, and every fault lands on a protocol-meaningful boundary:
    exactly the failure surface [Supervisor] claims to survive.

    Byte corruption flips payload bytes only, leaving framing intact:
    the corruption must be caught by {!Wire}'s digest envelope (the
    hard case), not by the frame parser. *)

(** {1 Profiles} *)

type profile = {
  name : string;
  doc : string;
  drop_pct : int;  (** drop a frame outright *)
  delay_pct : int;  (** hold a frame (and the frames behind it) *)
  delay_ms_max : int;
  dup_pct : int;  (** deliver a frame twice *)
  reorder_pct : int;  (** a frame swaps places with the next one *)
  corrupt_pct : int;  (** flip payload bytes, framing intact *)
  corrupt_bytes_max : int;
  reset_pct : int;  (** close both sides mid-stream *)
  stall_pct : int;  (** freeze a fresh connection (handshake stall) *)
  stall_ms : int;
}

val calm : profile
(** Everything off — proves the proxy itself is transparent. *)

val drop : profile
val delay : profile
val dup : profile
val reorder : profile
val corrupt : profile
val reset : profile
val stall : profile

val storm : profile
(** Every fault class at once — the soak profile. *)

val all : profile list
(** The single-fault profiles plus {!storm} (not {!calm}). *)

val named : string -> profile option

(** {1 Frame mutation generators}

    Shared with the codec-hostility property tests: ways to damage an
    encoded frame. *)

module Mutate : sig
  type kind =
    | Flip  (** XOR random bytes anywhere in the frame *)
    | Truncate
    | Extend  (** append garbage *)
    | Skew_version  (** randomize the Codec version byte *)
    | Skew_proto  (** randomize the protocol byte *)
    | Oversize  (** claim a multi-gigabyte payload length *)

  val apply : Ise_util.Rng.t -> kind -> string -> string
  val mutate : Ise_util.Rng.t -> string -> string
  (** [apply] with a random kind. *)

  val corrupt_payload : Ise_util.Rng.t -> max_bytes:int -> string -> string
  (** Flip 1..[max_bytes] bytes strictly inside the payload region, so
      the frame still parses but the payload is damaged. *)
end

(** {1 The injector} *)

type t

val create : seed:int -> profile:profile -> t
val profile : t -> profile

val counts : t -> (string * int) list
(** Injection counters ([netchaos/drops], [netchaos/dups], …), the
    {!Ise_chaos.Plane.counts} idiom. *)

type action =
  | Pass
  | Drop
  | Delay of float  (** seconds *)
  | Duplicate
  | Reorder
  | Corrupt of string  (** the mutated frame bytes to forward instead *)
  | Reset

val frame_action : t -> string -> action
(** Decide the fate of one encoded frame.  First category hit wins;
    counters are bumped. *)

val conn_stall : t -> float option
(** Decide whether a fresh connection stalls, and for how long. *)

(** {1 The fd proxy} *)

type proxy

val create_proxy :
  ?max_payload:int -> ?log:(string -> unit) -> listen:string ->
  upstream:string -> t -> proxy
(** Bind [listen] (replacing any stale socket) and forward every
    accepted connection to [upstream] through the injector. *)

val proxy_step : proxy -> unit
(** One select round (≤ 20 ms): accept, read, inject, release due
    frames.  For in-process use by tests that need the proxy and the
    supervisor in one thread of control. *)

val run_proxy : proxy -> unit
(** Loop {!proxy_step} until {!stop_proxy}; then close every pair and
    unlink the listening socket. *)

val stop_proxy : proxy -> unit

val spawn :
  ?max_payload:int -> ?log:(string -> unit) -> listen:string ->
  upstream:string -> seed:int -> profile:profile -> unit -> int
(** Fork a proxy child ([run_proxy] with SIGTERM/SIGINT wired to a
    clean stop); returns its pid. *)

val stop_spawned : int -> unit
(** SIGTERM, wait briefly, escalate to SIGKILL, reap. *)
