open Ise_fuzz
module Codec = Ise_pool.Codec

type liveness = {
  connect_retries : int;
  handshake_timeout_s : float;
  max_attempts : int;
  dispatch_timeout_s : float;
  heartbeat_s : float;
  miss_budget : int;
  rejoin_backoff_s : float;
}

let default_liveness = {
  connect_retries = 40;
  handshake_timeout_s = 5.0;
  max_attempts = 3;
  dispatch_timeout_s = 30.0;
  heartbeat_s = 2.0;
  miss_budget = 3;
  rejoin_backoff_s = 1.0;
}

(* Observability plane (all off by default).  Strictly read-only with
   respect to results: streaming, tracing and status snapshots change
   what the supervisor *records*, never what it dispatches, retries, or
   merges — the result path stays byte-identical with everything on. *)
type observe = {
  stream : bool;
      (* set [j_stream] on jobs to v3 workers and absorb their
         Telemetry frames *)
  metrics : Ise_telemetry.Registry.t option;
      (* live aggregate sink for absorbed worker deltas + the
         supervisor's own fabric/* counters *)
  trace : Ise_telemetry.Trace.t option;
      (* dispatch spans, wall-clock µs domain *)
  trace_id : string;  (* campaign trace id; shipped in [j_ctx] *)
  status_out : string option;  (* periodic status JSON snapshot path *)
  status_period_s : float;
  on_status : Ise_telemetry.Json.t -> unit;  (* e.g. the [ise top] renderer *)
}

let default_observe = {
  stream = false;
  metrics = None;
  trace = None;
  trace_id = "";
  status_out = None;
  status_period_s = 0.5;
  on_status = ignore;
}

type config = {
  workers : string list;
  window : int;
  shards : int option;
  straggler_factor : float;
  straggler_floor : float;
  liveness : liveness;
  require_workers : int;
  max_payload : int;
  store : Ise_serve.Store.t option;
  await_rejoin_s : float;
  observe : observe;
  on_shard_done : int -> unit;
  log : string -> unit;
}

let default_config ~workers = {
  workers;
  window = 2;
  shards = None;
  straggler_factor = 4.0;
  straggler_floor = 0.5;
  liveness = default_liveness;
  require_workers = 0;
  max_payload = 64 * 1024 * 1024;
  store = None;
  await_rejoin_s = 0.0;
  observe = default_observe;
  on_shard_done = ignore;
  log = ignore;
}

exception Insufficient_workers of { wanted : int; got : int }

type shard_outcome =
  | Shard_ok of Wire.shard_payload
  | Shard_lost of string

type stats = {
  f_workers : int;
  f_shards : int;
  f_dispatched : int;
  f_redispatched : int;
  f_store_hits : int;
  f_inline : int;
  f_worker_losses : int;
  f_rejoins : int;
  f_pings : int;
  f_hb_losses : int;
  f_telemetry_frames : int;
  f_wall_s : float;
}

(* one connected worker *)
type wstate = {
  w_id : int;
  w_path : string;
  w_fd : Unix.file_descr;
  w_proto : int;  (* negotiated protocol for this connection *)
  mutable w_buf : Bytes.t;
  mutable w_len : int;
  mutable w_inflight : (int * float) list;  (* shard, dispatch time *)
  mutable w_dead : bool;
  mutable w_hb_out : int;  (* pings sent and not yet answered by any frame *)
  mutable w_last_ping : float;
  mutable w_refreshes : int;  (* consecutive same-worker re-dispatches *)
  mutable w_done : int;  (* shards this worker completed first *)
  mutable w_draining : bool;  (* sent Shutting_down; loss imminent *)
  mutable w_tele : int;  (* Telemetry frames received *)
}

let set_handshake_timeout fd s =
  try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let connect_worker cfg campaign ~retries id path =
  let rec attempt left =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.set_close_on_exec fd;
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Some fd
    | exception
        Unix.Unix_error
          ((Unix.ENOENT | Unix.ECONNREFUSED | Unix.EAGAIN), _, _)
      when left > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      ignore (Unix.select [] [] [] 0.05);
      attempt (left - 1)
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None
  in
  match attempt retries with
  | None ->
    cfg.log (Printf.sprintf "worker %d (%s): connect failed" id path);
    None
  | Some fd ->
    let fail msg =
      cfg.log (Printf.sprintf "worker %d (%s): %s" id path msg);
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None
    in
    (* a handshake must not hang on a stalled wire or a half-dead peer:
       bound each synchronous read, then return to untimed reads (the
       main loop is select-driven) *)
    if cfg.liveness.handshake_timeout_s > 0. then
      set_handshake_timeout fd cfg.liveness.handshake_timeout_s;
    let read_hs () =
      match Wire.read_response ~max_payload:cfg.max_payload fd with
      | r -> r
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ->
        Stdlib.Error "handshake timed out"
      | exception Unix.Unix_error (e, _, _) ->
        (* e.g. ECONNRESET from a faulted wire: a failed handshake,
           not a supervisor crash *)
        Stdlib.Error ("handshake read: " ^ Unix.error_message e)
    in
    (try
       Wire.write_request ~proto:Wire.hello_proto fd
         (Wire.Hello
            { proto = Wire.version; git_rev = Ise_obs.Runinfo.git_rev () })
     with Unix.Unix_error _ | Sys_error _ -> ());
    match read_hs () with
    | Stdlib.Error msg -> fail ("handshake failed: " ^ msg)
    | Stdlib.Ok (Wire.Error (kind, msg)) ->
      fail (Printf.sprintf "handshake rejected: %s (%s)"
              (Ise_serve.Framed.err_name kind) msg)
    | Stdlib.Ok (Wire.Hello_ok { proto = wproto; pid; _ }) ->
      let proto = min Wire.version wproto in
      if proto < Wire.min_version then
        fail (Printf.sprintf "worker speaks unsupported protocol v%d" wproto)
      else begin
        (try Wire.write_request ~proto fd (Wire.Set_spec campaign)
         with Unix.Unix_error _ | Sys_error _ -> ());
        let rec await_spec_ok skips =
          match read_hs () with
          | Stdlib.Ok Wire.Spec_ok ->
            set_handshake_timeout fd 0.;
            cfg.log
              (Printf.sprintf "worker %d (%s): connected, pid %d, proto v%d"
                 id path pid proto);
            Some
              { w_id = id; w_path = path; w_fd = fd; w_proto = proto;
                w_buf = Bytes.create 65536; w_len = 0; w_inflight = [];
                w_dead = false; w_hb_out = 0; w_last_ping = 0.;
                w_refreshes = 0; w_done = 0; w_draining = false;
                w_tele = 0 }
          | Stdlib.Ok (Wire.Hello_ok _) when skips > 0 ->
            (* a wire-level duplicate of the Hello_ok already consumed
               (netchaos dup, or a retransmitting relay): skip it
               rather than failing the handshake *)
            await_spec_ok (skips - 1)
          | Stdlib.Ok (Wire.Error (kind, msg)) ->
            fail (Printf.sprintf "spec rejected: %s (%s)"
                    (Ise_serve.Framed.err_name kind) msg)
          | Stdlib.Ok _ -> fail "unexpected response to Set_spec"
          | Stdlib.Error msg -> fail ("Set_spec failed: " ^ msg)
        in
        await_spec_ok 3
      end
    | Stdlib.Ok _ -> fail "unexpected response to Hello"

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

let run cfg campaign =
  let t0 = Unix.gettimeofday () in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let lv = cfg.liveness in
  let obs = cfg.observe in
  let count = Wire.campaign_count campaign in
  let nshards_req =
    match cfg.shards with
    | Some n -> max 1 n
    | None -> max 1 (4 * max 1 (List.length cfg.workers))
  in
  let ranges =
    if count = 0 then [||] else Plan.partition ~count ~shards:nshards_req
  in
  let nshards = Array.length ranges in
  let results : shard_outcome option array = Array.make nshards None in
  let attempts = Array.make nshards 0 in
  let dispatched_once = Array.make nshards false in
  let queued = Array.make nshards false in
  let pending = Queue.create () in
  let dispatched = ref 0 and redispatched = ref 0 and store_hits = ref 0 in
  let inline_runs = ref 0 and worker_losses = ref 0 in
  let pings = ref 0 and hb_losses = ref 0 in
  let tele_frames = ref 0 in
  (* open dispatch spans, keyed (worker id, shard) *)
  let dspans : (int * int, string) Hashtbl.t = Hashtbl.create 64 in
  let dspan_name sh = Printf.sprintf "dispatch shard %d" sh in
  let dspan_end w sh =
    match (obs.trace, Hashtbl.find_opt dspans (w.w_id, sh)) with
    | Some tr, Some span_id ->
      Hashtbl.remove dspans (w.w_id, sh);
      Ise_telemetry.Trace.span_end tr ~cat:"fabric"
        ~ctx:
          { Ise_telemetry.Trace.trace_id = obs.trace_id; span_id;
            parent_span_id = None }
        ~name:(dspan_name sh) ~tid:w.w_id (now_us ())
    | _ -> ()
  in
  let unfinished = ref nshards in
  let record sh payload =
    if results.(sh) = None then begin
      results.(sh) <- Some (Shard_ok payload);
      decr unfinished;
      (match cfg.store with
       | Some store ->
         let lo, hi = ranges.(sh) in
         Ise_serve.Store.add store (Wire.shard_key campaign ~lo ~hi)
           (Wire.shard_payload_to_string payload)
       | None -> ());
      cfg.on_shard_done sh
    end
  in
  (* store pre-pass: a shard already computed — by an earlier run or a
     re-dispatched duplicate of this one — never hits a worker *)
  (match cfg.store with
   | None -> ()
   | Some store ->
     Array.iteri
       (fun sh (lo, hi) ->
         match
           Option.bind
             (Ise_serve.Store.find store (Wire.shard_key campaign ~lo ~hi))
             Wire.shard_payload_of_string
         with
         | Some payload ->
           incr store_hits;
           record sh payload
         | None -> ())
       ranges);
  let enqueue sh =
    if results.(sh) = None && not queued.(sh) then begin
      queued.(sh) <- true;
      Queue.add sh pending
    end
  in
  Array.iteri (fun sh _ -> enqueue sh) ranges;
  let registry = Registry.create cfg.workers in
  let workers = ref [] in  (* every wstate ever admitted, dead included *)
  let next_id = ref 0 in
  let live () = List.filter (fun w -> not w.w_dead) !workers in
  let add_worker ~retries path =
    (* a handshake can fail transiently (wire faults, a worker still
       starting up): during the patient initial pass, retry the whole
       connect+handshake a few times before writing the path off —
       rejoin probes (retries = 0) stay single-shot so they cannot
       stall the dispatch loop *)
    let attempts = if retries > 0 then 3 else 1 in
    let rec admit k =
      match connect_worker cfg campaign ~retries !next_id path with
      | Some w ->
        incr next_id;
        workers := !workers @ [ w ];
        Registry.mark_alive registry path;
        true
      | None when k > 1 ->
        ignore (Unix.select [] [] [] 0.1);
        admit (k - 1)
      | None ->
        Registry.mark_down registry path ~now:(Unix.gettimeofday ());
        false
    in
    admit attempts
  in
  if !unfinished > 0 then
    List.iter
      (fun p -> ignore (add_worker ~retries:lv.connect_retries p))
      cfg.workers;
  let initial_workers = !next_id in
  if
    !unfinished > 0 && cfg.require_workers > 0
    && initial_workers < cfg.require_workers
  then begin
    List.iter
      (fun w -> try Unix.close w.w_fd with Unix.Unix_error _ -> ())
      (live ());
    raise
      (Insufficient_workers
         { wanted = cfg.require_workers; got = initial_workers })
  end;
  let ewma = Plan.ewma_create () in
  let inflight_count sh =
    List.fold_left
      (fun acc w ->
        if (not w.w_dead) && List.mem_assoc sh w.w_inflight then acc + 1
        else acc)
      0 !workers
  in
  let worker_lost w reason =
    if not w.w_dead then begin
      w.w_dead <- true;
      incr worker_losses;
      Registry.mark_down registry w.w_path ~now:(Unix.gettimeofday ());
      (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
      cfg.log
        (Printf.sprintf "worker %d (%s) lost: %s" w.w_id w.w_path reason);
      let inflight = w.w_inflight in
      w.w_inflight <- [];
      List.iter
        (fun (sh, _) ->
          if results.(sh) = None && inflight_count sh = 0 then enqueue sh)
        inflight
    end
  in
  let dispatch_to w sh ~redispatch =
    let lo, hi = ranges.(sh) in
    (* every dispatch (duplicates included) opens its own span; the
       worker parents its shard span under whichever dispatch reached
       it, so a stitched timeline shows exactly which attempt won *)
    let span_id = Printf.sprintf "d-%d-%d-w%d" sh attempts.(sh) w.w_id in
    let j_ctx =
      if obs.trace <> None && w.w_proto >= 3 then Some (obs.trace_id, span_id)
      else None
    in
    let j_stream = obs.stream && w.w_proto >= 3 in
    (* the span must begin BEFORE the frame hits the socket: the
       worker's "receive" instant is the stitcher's clock anchor, and
       it must never precede its dispatch anchor on a shared clock *)
    (match obs.trace with
     | Some tr ->
       Hashtbl.replace dspans (w.w_id, sh) span_id;
       Ise_telemetry.Trace.span_begin tr ~cat:"fabric"
         ~args:
           [ ("worker", Ise_telemetry.Json.Int w.w_id);
             ("lo", Ise_telemetry.Json.Int lo);
             ("hi", Ise_telemetry.Json.Int hi);
             ("attempt", Ise_telemetry.Json.Int attempts.(sh)) ]
         ~ctx:
           { Ise_telemetry.Trace.trace_id = obs.trace_id; span_id;
             parent_span_id = None }
         ~name:(dspan_name sh) ~tid:w.w_id (now_us ())
     | None -> ());
    match
      Wire.write_request ~proto:w.w_proto w.w_fd
        (Wire.Run { j_shard = sh; j_lo = lo; j_hi = hi; j_ctx; j_stream })
    with
    | () ->
      incr dispatched;
      if redispatch || dispatched_once.(sh) then begin
        incr redispatched;
        cfg.log
          (Printf.sprintf "re-dispatch shard %d (units %d-%d) to worker %d"
             sh lo (hi - 1) w.w_id)
      end;
      dispatched_once.(sh) <- true;
      attempts.(sh) <- attempts.(sh) + 1;
      w.w_inflight <- (sh, Unix.gettimeofday ()) :: w.w_inflight;
      true
    | exception (Unix.Unix_error _ | Sys_error _) ->
      dspan_end w sh;  (* the job never left: close the span *)
      worker_lost w "write failed";
      false
  in
  let dispatch_pending () =
    let progress = ref true in
    while !progress && not (Queue.is_empty pending) do
      progress := false;
      (* least-loaded live worker with window room *)
      let target =
        List.fold_left
          (fun best w ->
            if List.length w.w_inflight >= cfg.window then best
            else
              match best with
              | Some b
                when List.length b.w_inflight <= List.length w.w_inflight ->
                best
              | _ -> Some w)
          None (live ())
      in
      match target with
      | None -> ()
      | Some w ->
        let sh = Queue.pop pending in
        queued.(sh) <- false;
        if results.(sh) = None then begin
          if dispatch_to w sh ~redispatch:false then progress := true
          else enqueue sh
        end
        else progress := true
    done
  in
  let handle_response w (resp : Wire.response) =
    match resp with
    | Wire.Shard_done sr ->
      let sh = sr.Wire.sr_shard in
      if sh < 0 || sh >= nshards then worker_lost w "bogus shard id"
      else if ranges.(sh) <> (sr.Wire.sr_lo, sr.Wire.sr_hi) then
        (* a corrupted-but-decodable Run can only have come from a v1
           (digest-free) connection; the echoed range exposes it *)
        worker_lost w
          (Printf.sprintf "shard %d result range [%d, %d) does not match"
             sh sr.Wire.sr_lo sr.Wire.sr_hi)
      else begin
        (match List.assoc_opt sh w.w_inflight with
         | Some td ->
           Plan.observe ewma (Unix.gettimeofday () -. td);
           w.w_inflight <- List.remove_assoc sh w.w_inflight
         | None -> ());
        dspan_end w sh;
        if results.(sh) = None then w.w_done <- w.w_done + 1;
        (* first result wins; a duplicate from a straggler is dropped *)
        record sh sr.Wire.sr_payload
      end
    | Wire.Shard_failed { shard = sh; reason } ->
      if sh < 0 || sh >= nshards then worker_lost w "bogus shard id"
      else begin
        w.w_inflight <- List.remove_assoc sh w.w_inflight;
        dspan_end w sh;
        cfg.log
          (Printf.sprintf "shard %d failed on worker %d: %s" sh w.w_id
             reason);
        if results.(sh) = None && inflight_count sh = 0 then begin
          if attempts.(sh) < lv.max_attempts then enqueue sh
          else begin
            results.(sh) <- Some (Shard_lost reason);
            decr unfinished;
            cfg.on_shard_done sh
          end
        end
      end
    | Wire.Pong _ -> ()  (* any inbound frame already cleared w_hb_out *)
    | Wire.Error (kind, msg) ->
      (* the worker closes the connection after a typed error *)
      worker_lost w
        (Printf.sprintf "error frame: %s (%s)"
           (Ise_serve.Framed.err_name kind) msg)
    | Wire.Telemetry tu ->
      (* observability-only: folded into the live aggregate registry,
         never consulted by dispatch or merge *)
      w.w_tele <- w.w_tele + 1;
      incr tele_frames;
      ignore tu.Wire.tu_seq;
      (match obs.metrics with
       | Some reg -> Ise_telemetry.Registry.absorb reg tu.Wire.tu_metrics
       | None -> ())
    | Wire.Shutting_down ->
      w.w_draining <- true;
      worker_lost w "shutting down"
    | Wire.Hello_ok _ | Wire.Spec_ok | Wire.Worker_stats _ -> ()
  in
  let read_chunk = Bytes.create 65536 in
  let handle_readable w =
    match Unix.read w.w_fd read_chunk 0 (Bytes.length read_chunk) with
    | 0 -> worker_lost w "eof"
    | n ->
      (* bytes mean the worker is alive (clear heartbeat debt), but
         only a frame that *decodes* clears the refresh budget *)
      w.w_hb_out <- 0;
      if w.w_len + n > Bytes.length w.w_buf then begin
        let cap = max (w.w_len + n) (2 * Bytes.length w.w_buf) in
        let bigger = Bytes.create cap in
        Bytes.blit w.w_buf 0 bigger 0 w.w_len;
        w.w_buf <- bigger
      end;
      Bytes.blit read_chunk 0 w.w_buf w.w_len n;
      w.w_len <- w.w_len + n;
      let continue = ref true in
      while !continue && not w.w_dead do
        match
          Codec.decode ~max_payload:cfg.max_payload w.w_buf ~pos:0
            ~len:w.w_len
        with
        | Codec.Need_more -> continue := false
        | Codec.Corrupt e ->
          worker_lost w ("corrupt frame: " ^ Codec.error_to_string e)
        | Codec.Frame { payload; proto; consumed } ->
          Bytes.blit w.w_buf consumed w.w_buf 0 (w.w_len - consumed);
          w.w_len <- w.w_len - consumed;
          if proto < Wire.min_version || proto > Wire.version then
            worker_lost w (Printf.sprintf "bad protocol byte %d" proto)
          else begin
            match (Wire.decode_payload ~proto payload : Wire.response option)
            with
            | Some resp ->
              w.w_refreshes <- 0;
              handle_response w resp
            | None ->
              (* a well-formed frame whose sealed payload failed its
                 digest: corruption in transit, stream still in sync
                 (the codec validated magic/version/length). The
                 worker is healthy — it computed and memoized the
                 result — so re-request its in-flight work on the
                 same connection instead of tearing it down, bounded
                 by the same refresh budget as straggler refreshes *)
              if w.w_refreshes > lv.miss_budget then begin
                incr hb_losses;
                worker_lost w "undecodable responses beyond refresh budget"
              end
              else begin
                w.w_refreshes <- w.w_refreshes + 1;
                cfg.log
                  (Printf.sprintf
                     "worker %d (%s): corrupted response payload; \
                      re-queueing in-flight shards"
                     w.w_id w.w_path);
                (* back to the pending queue, not straight back to [w]:
                   the scheduler can then place the shard on a healthier
                   path, and a worker death mid-redispatch cannot orphan
                   a shard (the queue is the single source of truth) *)
                let inflight = w.w_inflight in
                w.w_inflight <- [];
                List.iter
                  (fun (sh, _) ->
                    if results.(sh) = None && inflight_count sh = 0 then
                      enqueue sh)
                  inflight
              end
          end
      done
    | exception
        Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      worker_lost w "connection reset"
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let redispatch_stragglers () =
    let dl_straggler =
      Plan.deadline ~factor:cfg.straggler_factor ~floor:cfg.straggler_floor
        ewma
    in
    let dl_timeout =
      if lv.dispatch_timeout_s > 0. then lv.dispatch_timeout_s else infinity
    in
    let dl = min dl_straggler dl_timeout in
    if dl < infinity then begin
      let now = Unix.gettimeofday () in
      List.iter
        (fun w ->
          List.iter
            (fun (sh, td) ->
              if (not w.w_dead) && results.(sh) = None && now -. td > dl
              then begin
                (* duplicate to a peer only while this is the sole
                   in-flight copy — but never exempt a duplicated shard
                   from the absolute timeout below: under wire faults
                   *every* copy's result can be lost, and a shard whose
                   holders all wait on each other would deadlock the
                   campaign *)
                let peer =
                  if inflight_count sh > 1 then None
                  else
                    List.find_opt
                      (fun p ->
                        p != w
                        && List.length p.w_inflight < cfg.window
                        && not (List.mem_assoc sh p.w_inflight))
                      (live ())
                in
                match peer with
                | Some p -> ignore (dispatch_to p sh ~redispatch:true)
                | None ->
                  if now -. td > dl_timeout then begin
                    (* no peer to duplicate to and the absolute timeout
                       passed: the Run frame (or its result) may have
                       been lost on the wire — resend to the same
                       worker, unless it has stopped answering
                       entirely *)
                    if w.w_refreshes > lv.miss_budget then begin
                      incr hb_losses;
                      worker_lost w
                        (Printf.sprintf
                           "unresponsive: %d re-dispatches unanswered"
                           w.w_refreshes)
                    end
                    else begin
                      w.w_refreshes <- w.w_refreshes + 1;
                      w.w_inflight <- List.remove_assoc sh w.w_inflight;
                      ignore (dispatch_to w sh ~redispatch:true)
                    end
                  end
              end)
            w.w_inflight)
        (live ())
    end
  in
  let heartbeats () =
    if lv.heartbeat_s > 0. then begin
      let now = Unix.gettimeofday () in
      List.iter
        (fun w ->
          (* ping only idle v2 workers: a worker crunching a shard is
             single-threaded and legitimately silent — in-flight work
             is policed by dispatch_timeout_s instead *)
          if (not w.w_dead) && w.w_proto >= 2 && w.w_inflight = [] then begin
            if w.w_hb_out > lv.miss_budget then begin
              incr hb_losses;
              worker_lost w
                (Printf.sprintf "heartbeat: %d ping(s) unanswered"
                   w.w_hb_out)
            end
            else if now -. w.w_last_ping >= lv.heartbeat_s then begin
              match
                Wire.write_request ~proto:w.w_proto w.w_fd (Wire.Ping !pings)
              with
              | () ->
                incr pings;
                w.w_hb_out <- w.w_hb_out + 1;
                w.w_last_ping <- now
              | exception (Unix.Unix_error _ | Sys_error _) ->
                worker_lost w "write failed (ping)"
            end
          end)
        (live ())
    end
  in
  let rejoin_probes () =
    (* one probe per loop iteration, backoff-gated per path: a probe
       blocks for at most the handshake timeout, so probing is rationed *)
    if !unfinished > 0 then
      match
        Registry.due registry ~now:(Unix.gettimeofday ())
          ~backoff:lv.rejoin_backoff_s
      with
      | [] -> ()
      | path :: _ -> ignore (add_worker ~retries:0 path)
  in
  (* live status snapshots: schema [ise-fabric-status/v1], consumed by
     [ise top] and validated in tier-1 tests.  Built only when a sink
     is configured, written atomically (tmp + rename) so a concurrent
     reader never sees a torn document. *)
  let status_enabled = obs.status_out <> None || obs.metrics <> None in
  let status_json () =
    let module J = Ise_telemetry.Json in
    let now = Unix.gettimeofday () in
    let elapsed = now -. t0 in
    let done_ = nshards - !unfinished in
    let rate = if elapsed > 0. then float_of_int done_ /. elapsed else 0. in
    let eta =
      if !unfinished = 0 then 0.
      else if rate > 0. then float_of_int !unfinished /. rate
      else -1.
    in
    (* mirror the supervisor's own counters into the aggregate
       registry so one scrape shows the whole campaign *)
    (match obs.metrics with
     | Some reg ->
       let setc n v =
         Ise_telemetry.Registry.set_counter
           (Ise_telemetry.Registry.counter reg n) v
       in
       setc "fabric/shards" nshards;
       setc "fabric/done" done_;
       setc "fabric/dispatched" !dispatched;
       setc "fabric/redispatched" !redispatched;
       setc "fabric/store_hits" !store_hits;
       setc "fabric/worker_losses" !worker_losses;
       setc "fabric/rejoins" (Registry.rejoins registry);
       setc "fabric/pings" !pings;
       setc "fabric/hb_losses" !hb_losses;
       setc "fabric/telemetry_frames" !tele_frames;
       Ise_telemetry.Registry.set
         (Ise_telemetry.Registry.gauge reg "fabric/shards_per_s")
         rate
     | None -> ());
    let worker_json w =
      let state =
        if w.w_draining then "draining"
        else if w.w_dead then "down"
        else "up"
      in
      J.Obj
        [ ("id", J.Int w.w_id); ("path", J.String w.w_path);
          ("proto", J.Int w.w_proto); ("state", J.String state);
          ("inflight", J.Int (List.length w.w_inflight));
          ("done", J.Int w.w_done);
          ("telemetry_frames", J.Int w.w_tele) ]
    in
    J.Obj
      ([ ("schema", J.String "ise-fabric-status/v1");
         ("run_id", J.String (Ise_obs.Runinfo.run_id ()));
         ("ts_us", J.Int (now_us ()));
         ("shards", J.Int nshards); ("done", J.Int done_);
         ("wall_s", J.Float elapsed);
         ("shards_per_s", J.Float rate);
         ("eta_s", J.Float eta);
         ("ewma_ms", J.Float (Plan.mean ewma *. 1e3));
         ( "counters",
           J.Obj
             [ ("dispatched", J.Int !dispatched);
               ("redispatched", J.Int !redispatched);
               ("store_hits", J.Int !store_hits);
               ("inline", J.Int !inline_runs);
               ("worker_losses", J.Int !worker_losses);
               ("rejoins", J.Int (Registry.rejoins registry));
               ("pings", J.Int !pings);
               ("hb_losses", J.Int !hb_losses);
               ("telemetry_frames", J.Int !tele_frames) ] );
         ("workers", J.List (List.map worker_json !workers)) ]
      @
      match obs.metrics with
      | Some reg -> [ ("metrics", Ise_telemetry.Registry.to_json reg) ]
      | None -> [])
  in
  let emit_status () =
    if status_enabled then begin
      let doc = status_json () in
      (match obs.status_out with
       | Some path ->
         let tmp = path ^ ".tmp" in
         (try
            let oc = open_out_bin tmp in
            output_string oc (Ise_telemetry.Json.to_string doc);
            output_char oc '\n';
            close_out oc;
            Sys.rename tmp path
          with Sys_error _ -> ())
       | None -> ());
      obs.on_status doc
    end
  in
  let last_status = ref 0. in
  let maybe_status () =
    if status_enabled then begin
      let now = Unix.gettimeofday () in
      if now -. !last_status >= obs.status_period_s then begin
        last_status := now;
        emit_status ()
      end
    end
  in
  (* main loop: dispatch, multiplex, watch stragglers and liveness,
     re-admit returning workers *)
  let revive_budget = ref 3 in
  let rec drive () =
    while !unfinished > 0 && live () <> [] do
      dispatch_pending ();
      let fds = List.map (fun w -> w.w_fd) (live ()) in
      if fds <> [] then begin
        (match Unix.select fds [] [] 0.05 with
         | readable, _, _ ->
           List.iter
             (fun fd ->
               match List.find_opt (fun w -> w.w_fd = fd) (live ()) with
               | Some w -> handle_readable w
               | None -> ())
             readable
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        redispatch_stragglers ();
        heartbeats ();
        rejoin_probes ();
        maybe_status ()
      end
    done;
    (* every worker is down: sweep all Down paths once (backoff
       ignored) before giving up on the fabric — bounded so a fabric
       that keeps dying cannot livelock the campaign *)
    if !unfinished > 0 && !revive_budget > 0 then begin
      decr revive_budget;
      if List.exists (fun p -> add_worker ~retries:0 p) (Registry.down registry)
      then drive ()
    end
  in
  drive ();
  (* no workers left (or none ever connected): finish inline so the
     campaign always completes — dead fabric degrades to single-host *)
  if !unfinished > 0 then begin
    let tests =
      lazy
        (match campaign with
         | Wire.Fuzz spec -> Campaign.tests_of_spec spec
         | Wire.Chaos _ -> [||])
    in
    let check_inline lo hi =
      match campaign with
      | Wire.Fuzz spec ->
        Wire.Fuzz_raw
          (Campaign.check_range spec ~tests:(Lazy.force tests) ~lo ~hi)
      | Wire.Chaos cs ->
        Wire.Chaos_reports (Ise_chaos.Chaos_run.check_range cs ~lo ~hi)
    in
    Array.iteri
      (fun sh (lo, hi) ->
        if results.(sh) = None then begin
          incr inline_runs;
          cfg.log
            (Printf.sprintf "running shard %d (units %d-%d) inline" sh lo
               (hi - 1));
          match check_inline lo hi with
          | payload -> record sh payload
          | exception e ->
            results.(sh) <- Some (Shard_lost (Printexc.to_string e));
            decr unfinished;
            cfg.on_shard_done sh
        end)
      ranges
  end;
  (* bounded rejoin barrier: a soak that kills and restarts a worker
     wants the rejoin path exercised even when the campaign drains
     before any probe lands — under heavy wire faults the single-shot
     probes can be starved for the whole (short) campaign.  Keep
     probing the Down paths until one rejoins or the grace expires;
     results are already complete, so this only extends wall clock. *)
  if cfg.await_rejoin_s > 0.0 && Registry.rejoins registry = 0
     && Registry.down registry <> []
  then begin
    let deadline = Unix.gettimeofday () +. cfg.await_rejoin_s in
    cfg.log
      (Printf.sprintf "awaiting a rejoin for up to %.0fs" cfg.await_rejoin_s);
    while Registry.rejoins registry = 0 && Unix.gettimeofday () < deadline do
      match
        Registry.due registry ~now:(Unix.gettimeofday ())
          ~backoff:lv.rejoin_backoff_s
      with
      | [] -> ignore (Unix.select [] [] [] 0.05)
      | path :: _ -> ignore (add_worker ~retries:0 path)
    done
  end;
  (* trailing telemetry: a worker sends its last delta right after its
     final Shard_done, which usually lands after the drive loop has
     already drained — sweep the sockets briefly so the aggregate
     registry sees every shard.  Results are complete; this is
     read-only and bounded. *)
  if obs.stream && !tele_frames > 0 then begin
    let deadline = Unix.gettimeofday () +. 0.25 in
    let continue = ref true in
    while !continue && Unix.gettimeofday () < deadline do
      match List.map (fun w -> w.w_fd) (live ()) with
      | [] -> continue := false
      | fds -> (
        match Unix.select fds [] [] 0.05 with
        | [], _, _ -> continue := false
        | readable, _, _ ->
          List.iter
            (fun fd ->
              match List.find_opt (fun w -> w.w_fd = fd) (live ()) with
              | Some w -> handle_readable w
              | None -> ())
            readable
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    done
  end;
  List.iter
    (fun w ->
      if not w.w_dead then begin
        w.w_dead <- true;
        (try Unix.close w.w_fd with Unix.Unix_error _ -> ())
      end)
    !workers;
  emit_status ();
  let outcomes =
    Array.map
      (function Some o -> o | None -> Shard_lost "unreachable")
      results
  in
  ( ranges,
    outcomes,
    {
      f_workers = !next_id;
      f_shards = nshards;
      f_dispatched = !dispatched;
      f_redispatched = !redispatched;
      f_store_hits = !store_hits;
      f_inline = !inline_runs;
      f_worker_losses = !worker_losses;
      f_rejoins = Registry.rejoins registry;
      f_pings = !pings;
      f_hb_losses = !hb_losses;
      f_telemetry_frames = !tele_frames;
      f_wall_s = Unix.gettimeofday () -. t0;
    } )
