open Ise_fuzz
module Codec = Ise_pool.Codec

type config = {
  workers : string list;
  window : int;
  shards : int option;
  straggler_factor : float;
  straggler_floor : float;
  max_attempts : int;
  connect_retries : int;
  max_payload : int;
  store : Ise_serve.Store.t option;
  on_shard_done : int -> unit;
  log : string -> unit;
}

let default_config ~workers = {
  workers;
  window = 2;
  shards = None;
  straggler_factor = 4.0;
  straggler_floor = 0.5;
  max_attempts = 3;
  connect_retries = 40;
  max_payload = 64 * 1024 * 1024;
  store = None;
  on_shard_done = ignore;
  log = ignore;
}

type shard_outcome =
  | Shard_ok of Campaign.raw_failure list
  | Shard_lost of string

type stats = {
  f_workers : int;
  f_shards : int;
  f_dispatched : int;
  f_redispatched : int;
  f_store_hits : int;
  f_inline : int;
  f_worker_losses : int;
  f_wall_s : float;
}

(* one connected worker *)
type wstate = {
  w_id : int;
  w_path : string;
  w_fd : Unix.file_descr;
  mutable w_buf : Bytes.t;
  mutable w_len : int;
  mutable w_inflight : (int * float) list;  (* shard, dispatch time *)
  mutable w_dead : bool;
}

let connect_worker cfg spec id path =
  let rec attempt left =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.set_close_on_exec fd;
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Some fd
    | exception
        Unix.Unix_error
          ((Unix.ENOENT | Unix.ECONNREFUSED | Unix.EAGAIN), _, _)
      when left > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      ignore (Unix.select [] [] [] 0.05);
      attempt (left - 1)
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None
  in
  match attempt cfg.connect_retries with
  | None ->
    cfg.log (Printf.sprintf "worker %d (%s): connect failed" id path);
    None
  | Some fd ->
    let fail msg =
      cfg.log (Printf.sprintf "worker %d (%s): %s" id path msg);
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None
    in
    (try
       Wire.write_request fd
         (Wire.Hello
            { proto = Wire.version; git_rev = Ise_obs.Runinfo.git_rev () })
     with Unix.Unix_error _ | Sys_error _ -> ());
    match Wire.read_response ~max_payload:cfg.max_payload fd with
    | Stdlib.Error msg -> fail ("handshake failed: " ^ msg)
    | Stdlib.Ok (Wire.Error (kind, msg)) ->
      fail (Printf.sprintf "handshake rejected: %s (%s)"
              (Ise_serve.Framed.err_name kind) msg)
    | Stdlib.Ok (Wire.Hello_ok { pid; _ }) -> (
      (try Wire.write_request fd (Wire.Set_spec spec)
       with Unix.Unix_error _ | Sys_error _ -> ());
      match Wire.read_response ~max_payload:cfg.max_payload fd with
      | Stdlib.Ok Wire.Spec_ok ->
        cfg.log (Printf.sprintf "worker %d (%s): connected, pid %d" id path
                   pid);
        Some
          { w_id = id; w_path = path; w_fd = fd; w_buf = Bytes.create 65536;
            w_len = 0; w_inflight = []; w_dead = false }
      | Stdlib.Ok _ -> fail "unexpected response to Set_spec"
      | Stdlib.Error msg -> fail ("Set_spec failed: " ^ msg))
    | Stdlib.Ok _ -> fail "unexpected response to Hello"

let run cfg spec =
  let t0 = Unix.gettimeofday () in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let count = spec.Campaign.s_count in
  let nshards_req =
    match cfg.shards with
    | Some n -> max 1 n
    | None -> max 1 (4 * max 1 (List.length cfg.workers))
  in
  let ranges =
    if count = 0 then [||] else Plan.partition ~count ~shards:nshards_req
  in
  let nshards = Array.length ranges in
  let results : shard_outcome option array = Array.make nshards None in
  let attempts = Array.make nshards 0 in
  let dispatched_once = Array.make nshards false in
  let queued = Array.make nshards false in
  let pending = Queue.create () in
  let dispatched = ref 0 and redispatched = ref 0 and store_hits = ref 0 in
  let inline_runs = ref 0 and worker_losses = ref 0 in
  let unfinished = ref nshards in
  let record sh raws =
    if results.(sh) = None then begin
      results.(sh) <- Some (Shard_ok raws);
      decr unfinished;
      (match cfg.store with
       | Some store ->
         let lo, hi = ranges.(sh) in
         Ise_serve.Store.add store (Wire.shard_key spec ~lo ~hi)
           (Wire.shard_payload_to_string raws)
       | None -> ());
      cfg.on_shard_done sh
    end
  in
  (* store pre-pass: a shard already computed — by an earlier run or a
     re-dispatched duplicate of this one — never hits a worker *)
  (match cfg.store with
   | None -> ()
   | Some store ->
     Array.iteri
       (fun sh (lo, hi) ->
         match
           Option.bind
             (Ise_serve.Store.find store (Wire.shard_key spec ~lo ~hi))
             Wire.shard_payload_of_string
         with
         | Some raws ->
           incr store_hits;
           record sh raws
         | None -> ())
       ranges);
  let enqueue sh =
    if results.(sh) = None && not queued.(sh) then begin
      queued.(sh) <- true;
      Queue.add sh pending
    end
  in
  Array.iteri (fun sh _ -> enqueue sh) ranges;
  let workers =
    if !unfinished = 0 then []
    else
      List.mapi (fun id path -> connect_worker cfg spec id path) cfg.workers
      |> List.filter_map Fun.id
  in
  let nworkers = List.length workers in
  let ewma = Plan.ewma_create () in
  let live () = List.filter (fun w -> not w.w_dead) workers in
  let inflight_count sh =
    List.fold_left
      (fun acc w ->
        if (not w.w_dead) && List.mem_assoc sh w.w_inflight then acc + 1
        else acc)
      0 workers
  in
  let worker_lost w reason =
    if not w.w_dead then begin
      w.w_dead <- true;
      incr worker_losses;
      (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
      cfg.log
        (Printf.sprintf "worker %d (%s) lost: %s" w.w_id w.w_path reason);
      let inflight = w.w_inflight in
      w.w_inflight <- [];
      List.iter
        (fun (sh, _) ->
          if results.(sh) = None && inflight_count sh = 0 then enqueue sh)
        inflight
    end
  in
  let dispatch_to w sh ~redispatch =
    let lo, hi = ranges.(sh) in
    match
      Wire.write_request w.w_fd (Wire.Run { j_shard = sh; j_lo = lo; j_hi = hi })
    with
    | () ->
      incr dispatched;
      if redispatch || dispatched_once.(sh) then begin
        incr redispatched;
        cfg.log
          (Printf.sprintf "re-dispatch shard %d (tests %d-%d) to worker %d"
             sh lo (hi - 1) w.w_id)
      end;
      dispatched_once.(sh) <- true;
      attempts.(sh) <- attempts.(sh) + 1;
      w.w_inflight <- (sh, Unix.gettimeofday ()) :: w.w_inflight;
      true
    | exception (Unix.Unix_error _ | Sys_error _) ->
      worker_lost w "write failed";
      false
  in
  let dispatch_pending () =
    let progress = ref true in
    while !progress && not (Queue.is_empty pending) do
      progress := false;
      (* least-loaded live worker with window room *)
      let target =
        List.fold_left
          (fun best w ->
            if List.length w.w_inflight >= cfg.window then best
            else
              match best with
              | Some b
                when List.length b.w_inflight <= List.length w.w_inflight ->
                best
              | _ -> Some w)
          None (live ())
      in
      match target with
      | None -> ()
      | Some w ->
        let sh = Queue.pop pending in
        queued.(sh) <- false;
        if results.(sh) = None then begin
          if dispatch_to w sh ~redispatch:false then progress := true
          else enqueue sh
        end
        else progress := true
    done
  in
  let handle_response w (resp : Wire.response) =
    match resp with
    | Wire.Shard_done sr ->
      let sh = sr.Wire.sr_shard in
      if sh < 0 || sh >= nshards then worker_lost w "bogus shard id"
      else begin
        (match List.assoc_opt sh w.w_inflight with
         | Some td ->
           Plan.observe ewma (Unix.gettimeofday () -. td);
           w.w_inflight <- List.remove_assoc sh w.w_inflight
         | None -> ());
        (* first result wins; a duplicate from a straggler is dropped *)
        record sh sr.Wire.sr_raw
      end
    | Wire.Shard_failed { shard = sh; reason } ->
      if sh < 0 || sh >= nshards then worker_lost w "bogus shard id"
      else begin
        w.w_inflight <- List.remove_assoc sh w.w_inflight;
        cfg.log
          (Printf.sprintf "shard %d failed on worker %d: %s" sh w.w_id
             reason);
        if results.(sh) = None && inflight_count sh = 0 then begin
          if attempts.(sh) < cfg.max_attempts then enqueue sh
          else begin
            results.(sh) <- Some (Shard_lost reason);
            decr unfinished;
            cfg.on_shard_done sh
          end
        end
      end
    | Wire.Error (kind, msg) ->
      (* the worker closes the connection after a typed error *)
      worker_lost w
        (Printf.sprintf "error frame: %s (%s)"
           (Ise_serve.Framed.err_name kind) msg)
    | Wire.Shutting_down -> worker_lost w "shutting down"
    | Wire.Hello_ok _ | Wire.Spec_ok | Wire.Worker_stats _ -> ()
  in
  let read_chunk = Bytes.create 65536 in
  let handle_readable w =
    match Unix.read w.w_fd read_chunk 0 (Bytes.length read_chunk) with
    | 0 -> worker_lost w "eof"
    | n ->
      if w.w_len + n > Bytes.length w.w_buf then begin
        let cap = max (w.w_len + n) (2 * Bytes.length w.w_buf) in
        let bigger = Bytes.create cap in
        Bytes.blit w.w_buf 0 bigger 0 w.w_len;
        w.w_buf <- bigger
      end;
      Bytes.blit read_chunk 0 w.w_buf w.w_len n;
      w.w_len <- w.w_len + n;
      let continue = ref true in
      while !continue && not w.w_dead do
        match
          Codec.decode ~max_payload:cfg.max_payload w.w_buf ~pos:0
            ~len:w.w_len
        with
        | Codec.Need_more -> continue := false
        | Codec.Corrupt e ->
          worker_lost w ("corrupt frame: " ^ Codec.error_to_string e)
        | Codec.Frame { payload; proto; consumed } ->
          Bytes.blit w.w_buf consumed w.w_buf 0 (w.w_len - consumed);
          w.w_len <- w.w_len - consumed;
          if proto <> Wire.version then
            worker_lost w (Printf.sprintf "bad protocol byte %d" proto)
          else begin
            match (Codec.unmarshal payload : Wire.response) with
            | resp -> handle_response w resp
            | exception _ -> worker_lost w "undecodable response"
          end
      done
    | exception
        Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      worker_lost w "connection reset"
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let redispatch_stragglers () =
    let dl =
      Plan.deadline ~factor:cfg.straggler_factor ~floor:cfg.straggler_floor
        ewma
    in
    if dl < infinity then begin
      let now = Unix.gettimeofday () in
      List.iter
        (fun w ->
          List.iter
            (fun (sh, td) ->
              if
                results.(sh) = None
                && now -. td > dl
                && inflight_count sh <= 1
              then begin
                let peer =
                  List.find_opt
                    (fun p ->
                      p != w
                      && List.length p.w_inflight < cfg.window
                      && not (List.mem_assoc sh p.w_inflight))
                    (live ())
                in
                match peer with
                | Some p -> ignore (dispatch_to p sh ~redispatch:true)
                | None -> ()
              end)
            w.w_inflight)
        (live ())
    end
  in
  (* main loop: dispatch, multiplex, watch for stragglers *)
  while !unfinished > 0 && live () <> [] do
    dispatch_pending ();
    let fds = List.map (fun w -> w.w_fd) (live ()) in
    if fds <> [] then begin
      (match Unix.select fds [] [] 0.05 with
       | readable, _, _ ->
         List.iter
           (fun fd ->
             match List.find_opt (fun w -> w.w_fd = fd) (live ()) with
             | Some w -> handle_readable w
             | None -> ())
           readable
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      redispatch_stragglers ()
    end
  done;
  (* no workers left (or none ever connected): finish inline so the
     campaign always completes — dead fabric degrades to single-host *)
  if !unfinished > 0 then begin
    let tests = lazy (Campaign.tests_of_spec spec) in
    Array.iteri
      (fun sh (lo, hi) ->
        if results.(sh) = None then begin
          incr inline_runs;
          cfg.log
            (Printf.sprintf "running shard %d (tests %d-%d) inline" sh lo
               (hi - 1));
          match Campaign.check_range spec ~tests:(Lazy.force tests) ~lo ~hi with
          | raws -> record sh raws
          | exception e ->
            results.(sh) <- Some (Shard_lost (Printexc.to_string e));
            decr unfinished;
            cfg.on_shard_done sh
        end)
      ranges
  end;
  List.iter
    (fun w ->
      if not w.w_dead then begin
        w.w_dead <- true;
        (try Unix.close w.w_fd with Unix.Unix_error _ -> ())
      end)
    workers;
  let outcomes =
    Array.map
      (function Some o -> o | None -> Shard_lost "unreachable")
      results
  in
  ( ranges,
    outcomes,
    {
      f_workers = nworkers;
      f_shards = nshards;
      f_dispatched = !dispatched;
      f_redispatched = !redispatched;
      f_store_hits = !store_hits;
      f_inline = !inline_runs;
      f_worker_losses = !worker_losses;
      f_wall_s = Unix.gettimeofday () -. t0;
    } )
