(** The fabric supervisor: partitions a campaign into shard ranges,
    dispatches them across workers, and survives everything.

    Dispatch discipline:

    - each worker holds at most [window] shards in flight;
    - a completed shard feeds the {!Plan.ewma} of shard wall-clock,
      and any shard in flight longer than the EWMA deadline is
      {e duplicated} to an idle worker — first result wins, the
      late duplicate is dropped;
    - a worker that vanishes (EOF, reset, typed error frame) has its
      in-flight shards re-queued for the survivors;
    - a shard whose checks {e fail} (worker-side exception) is retried
      up to [max_attempts] times, then reported {!Shard_lost};
    - when a [store] is given, every shard is looked up before
      dispatch ({!Wire.shard_key}) and written through on completion,
      so repeated or re-dispatched shards hit the store;
    - if every worker dies — or none ever connects — the remaining
      shards run inline in the supervisor: a dead fabric degrades to a
      single-host run instead of hanging.

    The supervisor never shrinks, logs failures, or builds reports —
    it only collects raw per-shard results, in an array indexed by
    shard.  {!Merge.merge} folds them in shard order, which is what
    makes the fabric output byte-identical to a local run. *)

open Ise_fuzz

type config = {
  workers : string list;  (** worker socket paths *)
  window : int;  (** max shards in flight per worker *)
  shards : int option;  (** shard count; default [4 × workers] *)
  straggler_factor : float;  (** deadline = factor × EWMA mean *)
  straggler_floor : float;  (** minimum deadline, seconds *)
  max_attempts : int;  (** dispatch attempts before {!Shard_lost} *)
  connect_retries : int;  (** 50 ms connect retries per worker *)
  max_payload : int;
  store : Ise_serve.Store.t option;  (** shard-result cache *)
  on_shard_done : int -> unit;
      (** fired once per shard on first completion (tests use it to
          kill workers mid-campaign) *)
  log : string -> unit;
}

val default_config : workers:string list -> config
(** window 2, shards [4 × workers], straggler factor 4.0 / floor
    0.5 s, 3 attempts, 40 connect retries, 64 MiB payloads, no store,
    silent. *)

type shard_outcome =
  | Shard_ok of Campaign.raw_failure list
  | Shard_lost of string
      (** every attempt failed, even inline — mirrors a lost pool
          shard: the merge counts its tests in [r_lost_tests] *)

type stats = {
  f_workers : int;  (** workers that completed the handshake *)
  f_shards : int;
  f_dispatched : int;  (** Run frames sent, duplicates included *)
  f_redispatched : int;  (** straggler/loss re-dispatches *)
  f_store_hits : int;  (** shards answered by the store pre-pass *)
  f_inline : int;  (** shards computed in the supervisor *)
  f_worker_losses : int;
  f_wall_s : float;
}

val run :
  config -> Campaign.spec -> (int * int) array * shard_outcome array * stats
(** Execute the campaign across the fabric.  Returns the shard ranges
    (from {!Plan.partition}), one outcome per shard in shard order,
    and dispatch statistics.  Always returns: worker loss degrades to
    re-dispatch, then to inline execution. *)
