(** The fabric supervisor: partitions a campaign into shard ranges,
    dispatches them across workers, and survives everything.

    Dispatch discipline:

    - each worker holds at most [window] shards in flight;
    - a completed shard feeds the {!Plan.ewma} of shard wall-clock,
      and any shard in flight longer than the EWMA deadline (or the
      absolute [dispatch_timeout_s]) is {e duplicated} to an idle
      worker — first result wins, the late duplicate is dropped;
    - a worker that vanishes (EOF, reset, typed error frame, exhausted
      heartbeat budget) has its in-flight shards re-queued for the
      survivors, and its socket path goes {e Down} in the
      {!Registry} — the supervisor keeps probing Down paths
      (backoff-gated) and {e re-admits} a worker that comes back
      mid-campaign;
    - idle workers on v2 connections are pinged every [heartbeat_s];
      more than [miss_budget] unanswered pings marks the worker lost.
      Busy workers are legitimately silent (the worker loop is
      single-threaded), so in-flight shards are policed by
      [dispatch_timeout_s] instead;
    - a shard whose checks {e fail} (worker-side exception) is retried
      up to [max_attempts] times, then reported {!Shard_lost};
    - when a [store] is given, every shard is looked up before
      dispatch ({!Wire.shard_key}) and written through on completion,
      so repeated or re-dispatched shards hit the store;
    - if every worker dies — or none ever connects — the remaining
      shards run inline in the supervisor: a dead fabric degrades to a
      single-host run instead of hanging.  Set [require_workers] to
      make a thin fabric an {e error} instead
      ({!Insufficient_workers}).

    The supervisor never shrinks, logs failures, or builds reports —
    it only collects raw per-shard results, in an array indexed by
    shard.  {!Merge.merge} / {!Merge.merge_chaos} fold them in shard
    order, which is what makes the fabric output byte-identical to a
    local run. *)

(** Everything time-and-failure related, in one place. *)
type liveness = {
  connect_retries : int;  (** 50 ms connect retries per worker *)
  handshake_timeout_s : float;  (** per-read bound during handshake *)
  max_attempts : int;  (** dispatch attempts before {!Shard_lost} *)
  dispatch_timeout_s : float;
      (** absolute in-flight bound; past it a shard is duplicated to a
          peer, or resent to the same worker when no peer has room *)
  heartbeat_s : float;  (** idle-worker ping interval; 0 disables *)
  miss_budget : int;  (** unanswered pings tolerated before loss *)
  rejoin_backoff_s : float;  (** min delay between probes of a Down path *)
}

val default_liveness : liveness
(** 40 connect retries, 5 s handshake timeout, 3 attempts, 30 s
    dispatch timeout, 2 s heartbeats with budget 3, 1 s rejoin
    backoff. *)

(** The observability plane, all off by default.  Strictly read-only
    with respect to results: streaming, tracing and status snapshots
    change what the supervisor {e records}, never what it dispatches,
    retries or merges — campaign output stays byte-identical with
    everything enabled. *)
type observe = {
  stream : bool;
      (** set [j_stream] on jobs to ≥ v3 workers and absorb the
          {!Wire.Telemetry} frames they send back *)
  metrics : Ise_telemetry.Registry.t option;
      (** live aggregate sink: absorbed worker deltas plus the
          supervisor's own [fabric/*] counters *)
  trace : Ise_telemetry.Trace.t option;
      (** dispatch spans (wall-clock µs).  When set, ≥ v3 workers
          receive a [j_ctx] and parent their shard spans under the
          dispatch span — the raw material for [ise trace stitch] *)
  trace_id : string;  (** campaign trace id shipped in every [j_ctx] *)
  status_out : string option;
      (** path for the periodic [ise-fabric-status/v1] JSON snapshot,
          written atomically (tmp + rename) every [status_period_s]
          and once more after the campaign drains *)
  status_period_s : float;
  on_status : Ise_telemetry.Json.t -> unit;
      (** in-process status consumer (the [--top] renderer); fired on
          the same cadence as [status_out] *)
}

val default_observe : observe
(** No streaming, no sinks, 0.5 s status period. *)

type config = {
  workers : string list;  (** worker socket paths *)
  window : int;  (** max shards in flight per worker *)
  shards : int option;  (** shard count; default [4 × workers] *)
  straggler_factor : float;  (** deadline = factor × EWMA mean *)
  straggler_floor : float;  (** minimum deadline, seconds *)
  liveness : liveness;
  require_workers : int;
      (** if > 0, raise {!Insufficient_workers} when fewer workers
          complete the initial handshake — instead of silently
          degrading to inline *)
  max_payload : int;
  store : Ise_serve.Store.t option;  (** shard-result cache *)
  await_rejoin_s : float;
      (** if > 0 and a worker was lost but none rejoined by the time
          the campaign drains, keep probing Down paths for up to this
          many seconds before returning — soak runs use it so the
          rejoin assertion cannot race a short campaign.  Results are
          unaffected; only wall clock extends.  Default 0 (off). *)
  observe : observe;
  on_shard_done : int -> unit;
      (** fired once per shard on first completion (tests use it to
          kill workers mid-campaign) *)
  log : string -> unit;
}

val default_config : workers:string list -> config
(** window 2, shards [4 × workers], straggler factor 4.0 / floor
    0.5 s, {!default_liveness}, no required minimum, 64 MiB payloads,
    no store, silent. *)

exception Insufficient_workers of { wanted : int; got : int }

type shard_outcome =
  | Shard_ok of Wire.shard_payload
  | Shard_lost of string
      (** every attempt failed, even inline — mirrors a lost pool
          shard: the merge counts its tests in [r_lost_tests] *)

type stats = {
  f_workers : int;  (** handshakes completed, rejoins included *)
  f_shards : int;
  f_dispatched : int;  (** Run frames sent, duplicates included *)
  f_redispatched : int;  (** straggler/loss re-dispatches *)
  f_store_hits : int;  (** shards answered by the store pre-pass *)
  f_inline : int;  (** shards computed in the supervisor *)
  f_worker_losses : int;
  f_rejoins : int;  (** Down paths re-admitted mid-campaign *)
  f_pings : int;  (** heartbeat pings sent *)
  f_hb_losses : int;  (** losses declared by heartbeat/unresponsiveness *)
  f_telemetry_frames : int;  (** {!Wire.Telemetry} frames absorbed *)
  f_wall_s : float;
}

val run :
  config -> Wire.campaign -> (int * int) array * shard_outcome array * stats
(** Execute the campaign across the fabric.  Returns the shard ranges
    (from {!Plan.partition}), one outcome per shard in shard order,
    and dispatch statistics.  Always returns: worker loss degrades to
    re-dispatch, then rejoin, then inline execution.  The only
    exception is {!Insufficient_workers}, raised before any dispatch
    when [require_workers] is unmet. *)
