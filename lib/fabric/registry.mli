(** The supervisor's worker registry: per-socket-path liveness state
    that turns worker loss into something {e recoverable}.

    Every configured worker path is tracked as [Never] (no successful
    handshake yet), [Alive] (a connection is up), or [Down] (connect
    failed, or an established worker was lost).  While a campaign
    runs, the supervisor periodically re-probes [Down] paths — gated
    by a per-path backoff — and a successful probe {e re-admits} the
    worker mid-campaign.  A re-admission of a path that was [Down]
    counts as a rejoin, whether the worker came back (restarted after
    SIGKILL) or showed up for the first time (started late): loss
    degrades, then recovers, instead of ratcheting down to inline. *)

type t

val create : string list -> t
(** One entry per distinct path, all [Never]. *)

val mark_alive : t -> string -> unit
(** Handshake completed.  [Down → Alive] increments {!rejoins}. *)

val mark_down : t -> string -> now:float -> unit
(** Connect/probe failed or the worker was lost; stamps the attempt
    time that {!due}'s backoff is measured from. *)

val due : t -> now:float -> backoff:float -> string list
(** [Down] paths whose last attempt is at least [backoff] seconds
    old — the paths worth probing this loop iteration. *)

val down : t -> string list
(** All [Down] paths, backoff ignored — the final "anyone at all?"
    sweep before degrading to inline. *)

val rejoins : t -> int
