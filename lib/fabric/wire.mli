(** The fabric wire protocol: supervisor↔worker messages and shard
    cache keys.

    Same stack and discipline as {!Ise_serve.Proto}: versioned
    {!Ise_pool.Codec} frames whose protocol byte carries {!version},
    [Marshal]ed payloads (safe because supervisor and workers are the
    same [ise] executable image), a mandatory {!Hello} handshake, and
    typed {!Ise_serve.Framed.err_kind} error frames for anything
    malformed.

    A connection carries one campaign: the supervisor sends
    {!Set_spec} once — the full {!Ise_fuzz.Campaign.spec}, from which
    the worker re-derives the test stream — and then streams {!Run}
    jobs that name only shard {e ranges}.  Shipping the spec once and
    ranges thereafter keeps per-shard frames tiny regardless of
    campaign size. *)

open Ise_fuzz

val version : int
(** Fabric protocol version, carried in the Codec protocol byte and in
    {!Hello}. *)

type job = {
  j_shard : int;  (** shard index, echoed back in the result *)
  j_lo : int;  (** global test range [j_lo, j_hi) *)
  j_hi : int;
}

type request =
  | Hello of { proto : int; git_rev : string }
      (** mandatory first request of every connection *)
  | Set_spec of Campaign.spec
      (** the campaign; must precede any {!Run} *)
  | Run of job
  | Worker_stats_req
  | Shutdown  (** ask the worker to drain and exit *)

type shard_result = {
  sr_shard : int;
  sr_lo : int;
  sr_hi : int;
  sr_raw : Campaign.raw_failure list;  (** in global check order *)
}

type worker_stats = {
  ws_pid : int;
  ws_jobs : int;
  ws_shards_run : int;
  ws_uptime_s : float;
}

type response =
  | Hello_ok of { proto : int; git_rev : string; pid : int }
  | Spec_ok
  | Shard_done of shard_result
  | Shard_failed of { shard : int; reason : string }
      (** the shard's checks raised or its pool lost workers; the
          supervisor re-dispatches *)
  | Worker_stats of worker_stats
  | Shutting_down
  | Error of Ise_serve.Framed.err_kind * string
      (** typed error frame; the worker closes the connection after
          sending one *)

(** {1 Framed I/O} *)

val write_request : Unix.file_descr -> request -> unit
val write_response : Unix.file_descr -> response -> unit

val read_response :
  ?max_payload:int -> Unix.file_descr -> (response, string) result
(** Blocking read of one response frame. *)

(** {1 Shard cache keys} *)

val spec_fp : Campaign.spec -> string
(** Fingerprint of the whole campaign description (params, counts,
    variants, seed) — the "what program" half of a shard key. *)

val shard_key : Campaign.spec -> lo:int -> hi:int -> string
(** {!Ise_serve.Store} key of one shard's raw-failure list: spec
    fingerprint × (seed, range) under the ["fuzz-shard"] domain of
    {!Ise_serve.Cache.config_fp}, so {!Ise_serve.Cache.store_abi} and
    the enumeration-engine epoch invalidate shard results exactly like
    litmus and replay results. *)

val shard_payload_to_string : Campaign.raw_failure list -> string
val shard_payload_of_string : string -> Campaign.raw_failure list option
(** [None] if the payload does not decode. *)
