(** The fabric wire protocol: supervisor↔worker messages and shard
    cache keys.

    Same stack and discipline as {!Ise_serve.Proto}: versioned
    {!Ise_pool.Codec} frames, [Marshal]ed payloads (safe because
    supervisor and workers are the same [ise] executable image), a
    mandatory {!Hello} handshake, and typed {!Ise_serve.Framed.err_kind}
    error frames for anything malformed.

    {b Versioning.}  v1 (PR 8) payloads are bare marshal; v2 payloads
    carry a leading MD5 digest of the marshalled value, and v2 adds
    {!Ping}/{!Pong} liveness frames and chaos campaigns.  v3 adds the
    observability plane: trace context and a streaming flag on
    {!job}, and unsolicited {!Telemetry} delta-snapshot frames from
    the worker.  {!Hello} and {!Hello_ok} always travel at v1 framing
    ({!hello_proto}) so the handshake itself needs no negotiation;
    each side advertises the highest version it speaks and the
    connection proceeds at the minimum of the two.  A supervisor never
    sends {!Ping} or a context-carrying job (or any other
    higher-version construct) on a connection negotiated below it —
    old workers still speak, they just don't stream.

    A connection carries one campaign: the supervisor sends
    {!Set_spec} once — the full {!campaign} description, from which
    the worker re-derives the test/trial stream — and then streams
    {!Run} jobs that name only shard {e ranges}.  Shipping the spec
    once and ranges thereafter keeps per-shard frames tiny regardless
    of campaign size. *)

open Ise_fuzz

val version : int
(** Highest fabric protocol version this build speaks (3). *)

val min_version : int
(** Lowest version still accepted (1). *)

val hello_proto : int
(** The framing version of Hello/Hello_ok frames (= {!min_version}). *)

(** {1 Campaigns} *)

type campaign =
  | Fuzz of Campaign.spec
  | Chaos of Ise_chaos.Chaos_run.spec

val campaign_count : campaign -> int
(** Tests (fuzz) or trials (chaos) — the unit {!Plan.partition}
    shards. *)

val campaign_seed : campaign -> int

(** {1 Messages} *)

type job = {
  j_shard : int;  (** shard index, echoed back in the result *)
  j_lo : int;  (** global test/trial range [j_lo, j_hi) *)
  j_hi : int;
  j_ctx : (string * string) option;
      (** v3: [(trace_id, dispatch_span_id)] — the worker parents its
          shard span under the supervisor's dispatch span.  [None] on
          connections below v3 or when tracing is off *)
  j_stream : bool;
      (** v3: ask the worker to follow Shard_done / Pong with a
          {!Telemetry} delta-snapshot.  Never set below v3 *)
}

val plain_job : shard:int -> lo:int -> hi:int -> job
(** A job with no observability fields set — what a v1/v2 supervisor
    would have sent. *)

type request =
  | Hello of { proto : int; git_rev : string }
      (** mandatory first request of every connection; [proto] is the
          highest version the supervisor speaks *)
  | Set_spec of campaign  (** the campaign; must precede any {!Run} *)
  | Run of job
  | Ping of int
      (** v2 liveness probe; the worker echoes the token in {!Pong}.
          Sent only on connections negotiated at ≥ 2 *)
  | Worker_stats_req
  | Shutdown  (** ask the worker to drain and exit *)

type shard_payload =
  | Fuzz_raw of Campaign.raw_failure list  (** in global check order *)
  | Chaos_reports of Ise_chaos.Chaos_run.report list
      (** in global trial order *)

type shard_result = {
  sr_shard : int;
  sr_lo : int;
  sr_hi : int;
  sr_payload : shard_payload;
}

type worker_stats = {
  ws_pid : int;
  ws_jobs : int;
  ws_proto : int;  (** highest version the worker speaks *)
  ws_shards_run : int;
  ws_pings : int;  (** pings answered *)
  ws_uptime_s : float;
}

type telemetry_update = {
  tu_pid : int;  (** sender's pid, for per-worker attribution *)
  tu_seq : int;  (** per-worker monotonic sequence number *)
  tu_metrics : Ise_telemetry.Registry.drained;
      (** delta since the worker's previous drain *)
}

type response =
  | Hello_ok of { proto : int; git_rev : string; pid : int }
      (** [proto] is the negotiated version: min(worker's, peer's) *)
  | Spec_ok
  | Pong of int
  | Shard_done of shard_result
  | Shard_failed of { shard : int; reason : string }
      (** the shard's checks raised or its pool lost workers; the
          supervisor re-dispatches *)
  | Worker_stats of worker_stats
  | Telemetry of telemetry_update
      (** v3: unsolicited delta-snapshot, sent after Shard_done/Pong
          when the campaign streams.  Observability-only — the
          supervisor folds it into live aggregates and it never
          touches the result path *)
  | Shutting_down
  | Error of Ise_serve.Framed.err_kind * string
      (** typed error frame; the worker closes the connection after
          sending one *)

(** {1 Payload envelopes} *)

val encode_payload : proto:int -> 'a -> string
(** At [proto >= 2]: MD5-of-marshal prefix + marshal, so any payload
    corruption is {e guaranteed} to decode as [None] rather than
    silently yielding a plausible wrong value.  At v1: bare marshal. *)

val decode_payload : proto:int -> string -> 'a option

(** {1 Framed I/O} *)

val write_request : ?proto:int -> Unix.file_descr -> request -> unit
val write_response : ?proto:int -> Unix.file_descr -> response -> unit
(** [proto] defaults to {!version}; pass the connection's negotiated
    version after a handshake. *)

val read_response :
  ?max_payload:int -> Unix.file_descr -> (response, string) result
(** Blocking read of one response frame; the frame's own protocol byte
    selects the payload envelope. *)

(** {1 Shard cache keys} *)

val spec_fp : Campaign.spec -> string
(** Fingerprint of a fuzz campaign description (params, counts,
    variants, seed) — the "what program" half of a shard key. *)

val campaign_fp : campaign -> string

val shard_key : campaign -> lo:int -> hi:int -> string
(** {!Ise_serve.Store} key of one shard's payload: campaign
    fingerprint × (seed, range) under the ["fuzz-shard"] /
    ["chaos-shard"] domain of {!Ise_serve.Cache.config_fp}, so
    {!Ise_serve.Cache.store_abi} and the enumeration-engine epoch
    invalidate shard results exactly like litmus and replay results. *)

val shard_payload_to_string : shard_payload -> string
val shard_payload_of_string : string -> shard_payload option
(** [None] if the payload does not decode (digest-checked). *)
