(** Single-host fabric simulation: N "remote" workers as forked
    daemons on local sockets — optionally behind per-worker
    {!Netchaos} fault-injecting proxies.

    This is what keeps the fabric tier-1 testable — the supervisor,
    wire protocol, straggler re-dispatch, heartbeat/rejoin, and merge
    run exactly as they would across machines, but every worker is a
    local child whose pid the test can {!kill} mid-campaign (and
    {!restart}, to exercise rejoin). *)

val available : bool
(** [Ise_pool.Pool.fork_available] — tests and bench skip the
    simulation where fork does not exist. *)

type t

val start :
  ?jobs:int ->
  ?log:(string -> unit) ->
  ?proto:int ->
  ?netchaos:int * Netchaos.profile ->
  ?trace_dir:string ->
  dir:string ->
  n:int ->
  unit ->
  t
(** Fork [n] worker daemons listening on [dir/worker<k>.sock], each
    with a pool of [jobs] (default 1) speaking fabric versions up to
    [proto] (default {!Wire.version}; pass 1 to simulate a fleet of
    old workers).  With [netchaos = (seed, profile)], each worker
    instead listens on [dir/worker<k>.real.sock] and a forked
    {!Netchaos.spawn} proxy serves [dir/worker<k>.sock] in front of
    it, seeded deterministically per worker ([seed + 7919·k]).  With
    [trace_dir], worker [k] writes its shard-span trace to
    [trace_dir/worker<k>.trace.json] (created if missing) after every
    traced shard — readable even after {!stop}'s SIGKILL.  The
    children [_exit]; the parent keeps their pids.
    @raise Invalid_argument when fork is unavailable or [n <= 0]. *)

val sockets : t -> string list
(** In worker order — feed straight into
    {!Supervisor.config.workers}.  With netchaos these are the proxy
    sockets: every supervisor byte crosses the hostile wire. *)

val pids : t -> int list
(** Worker pids (not proxies), current after any {!restart}. *)

val kill : t -> int -> unit
(** SIGKILL worker [k] and reap it — the kill-mid-campaign test. *)

val restart : t -> int -> unit
(** Fork a fresh worker [k] on its original socket and block (≤ 5 s)
    until it accepts.  The predecessor was SIGKILLed, so the fresh
    daemon probe-replaces the stale socket file on startup; a
    supervisor's rejoin probe then re-admits it mid-campaign. *)

val stop : t -> unit
(** SIGTERM+SIGKILL and reap every worker, stop the proxies, remove
    the sockets.  Idempotent with {!kill}. *)
