(** Single-host fabric simulation: N "remote" workers as forked
    daemons on local sockets.

    This is what keeps the fabric tier-1 testable — the supervisor,
    wire protocol, straggler re-dispatch, and merge run exactly as
    they would across machines, but every worker is a local child
    whose pid the test can {!kill} mid-campaign. *)

val available : bool
(** [Ise_pool.Pool.fork_available] — tests and bench skip the
    simulation where fork does not exist. *)

type t

val start : ?jobs:int -> ?log:(string -> unit) -> dir:string -> n:int -> unit -> t
(** Fork [n] worker daemons listening on [dir/worker<k>.sock], each
    with a pool of [jobs] (default 1).  The children [_exit]; the
    parent keeps their pids.
    @raise Invalid_argument when fork is unavailable or [n <= 0]. *)

val sockets : t -> string list
(** In worker order — feed straight into
    {!Supervisor.config.workers}. *)

val pids : t -> int list

val kill : t -> int -> unit
(** SIGKILL worker [k] and reap it — the kill-mid-campaign test. *)

val stop : t -> unit
(** SIGTERM+SIGKILL and reap every worker, removing the sockets.
    Idempotent with {!kill}. *)
