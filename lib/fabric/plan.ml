(* ------------------------------------------------------------------ *)
(* shard partitioning                                                  *)

let shard_range ~count ~shards i =
  if shards <= 0 then invalid_arg "Plan.shard_range: shards must be positive";
  if count < 0 then invalid_arg "Plan.shard_range: negative count";
  if i < 0 || i >= shards then invalid_arg "Plan.shard_range: index out of range";
  (i * count / shards, (i + 1) * count / shards)

let partition ~count ~shards =
  if shards <= 0 then invalid_arg "Plan.partition: shards must be positive";
  if count < 0 then invalid_arg "Plan.partition: negative count";
  if count = 0 then [||]
  else
    let k = min shards count in
    Array.init k (fun i -> shard_range ~count ~shards:k i)

let parse_shard str =
  let fail () = Error (Printf.sprintf "bad shard spec %S: want k/N with 1 <= k <= N, e.g. 2/4" str) in
  match String.index_opt str '/' with
  | None -> fail ()
  | Some i -> (
    let k = int_of_string_opt (String.sub str 0 i) in
    let n =
      int_of_string_opt (String.sub str (i + 1) (String.length str - i - 1))
    in
    match (k, n) with
    | Some k, Some n when n >= 1 && k >= 1 && k <= n -> Ok (k - 1, n)
    | _ -> fail ())

(* ------------------------------------------------------------------ *)
(* straggler deadlines                                                 *)

type ewma = {
  alpha : float;
  mutable mean : float;
  mutable samples : int;
}

let ewma_create ?(alpha = 0.3) () = { alpha; mean = 0.0; samples = 0 }

let observe e x =
  e.samples <- e.samples + 1;
  if e.samples = 1 then e.mean <- x
  else e.mean <- e.mean +. (e.alpha *. (x -. e.mean))

let mean e = e.mean
let samples e = e.samples

let deadline ?(factor = 4.0) ?(floor = 0.5) e =
  if e.samples = 0 then infinity else Float.max floor (factor *. e.mean)
