open Ise_fuzz

type merged = {
  m_report : Campaign.report;
  m_entries : Corpus.entry list;
}

let merge ?(log = fun (_ : string) -> ()) spec ~ranges ~outcomes =
  if Array.length ranges <> Array.length outcomes then
    invalid_arg "Merge.merge: ranges/outcomes length mismatch";
  let tests = Campaign.tests_of_spec spec in
  let lost = ref 0 in
  let raws = ref [] in
  (* shard order = global test order: the partition is contiguous and
     ascending, so this concatenation is exactly the raw-failure
     stream a sequential run would produce *)
  Array.iteri
    (fun sh outcome ->
      let lo, hi = ranges.(sh) in
      match outcome with
      | Supervisor.Shard_ok (Wire.Fuzz_raw rs) ->
        raws := List.rev_append rs !raws
      | Supervisor.Shard_ok (Wire.Chaos_reports _) ->
        invalid_arg "Merge.merge: chaos payload in a fuzz campaign"
      | Supervisor.Shard_lost reason ->
        lost := !lost + (hi - lo);
        log
          (Printf.sprintf "LOST shard %d (tests %d-%d): %s" sh lo (hi - 1)
             reason))
    outcomes;
  let report =
    Campaign.report_of_raw ~log spec ~tests ~lost:!lost (List.rev !raws)
  in
  {
    m_report = report;
    m_entries =
      List.map
        (Campaign.entry_of_failure ~seed:spec.Campaign.s_seed)
        report.Campaign.r_failures;
  }

let merge_chaos ?(log = fun (_ : string) -> ()) ~ranges ~outcomes () =
  if Array.length ranges <> Array.length outcomes then
    invalid_arg "Merge.merge_chaos: ranges/outcomes length mismatch";
  let lost = ref 0 in
  let reports = ref [] in
  (* same contiguity argument as [merge]: shard order = global trial
     order, so the concatenation is the report stream a sequential
     chaos run would print *)
  Array.iteri
    (fun sh outcome ->
      let lo, hi = ranges.(sh) in
      match outcome with
      | Supervisor.Shard_ok (Wire.Chaos_reports rs) ->
        reports := List.rev_append rs !reports
      | Supervisor.Shard_ok (Wire.Fuzz_raw _) ->
        invalid_arg "Merge.merge_chaos: fuzz payload in a chaos campaign"
      | Supervisor.Shard_lost reason ->
        lost := !lost + (hi - lo);
        log
          (Printf.sprintf "LOST shard %d (trials %d-%d): %s" sh lo (hi - 1)
             reason))
    outcomes;
  (Array.of_list (List.rev !reports), !lost)

let ledger_record ?run_id ?git_rev ?time ?(label = "fabric")
    (spec : Campaign.spec) (r : Campaign.report) =
  (* field-for-field the record `ise fuzz run` appends, so fabric and
     single-host runs are comparable (and, with pinned run_id/time,
     byte-identical) in BENCH_history.jsonl *)
  Ise_obs.Ledger.make ?run_id ?git_rev ?time ~kind:"fuzz" ~label
    ~seed:spec.Campaign.s_seed
    ~config:
      (Printf.sprintf "count=%d seeds_per_test=%d jobs-independent"
         spec.Campaign.s_count spec.Campaign.s_seeds_per_test)
    [ ("tests", float_of_int r.Campaign.r_tests);
      ("checks", float_of_int r.Campaign.r_checks);
      ("failures", float_of_int (List.length r.Campaign.r_failures));
      ("lost_tests", float_of_int r.Campaign.r_lost_tests) ]
