(** The [ise fabric worker] daemon: executes shard-range jobs for a
    fabric supervisor.

    Built on {!Ise_serve.Framed}, so it has the same connection
    discipline as [ise serve]: Hello-first handshake, typed error
    frames for malformed/oversized/version-skewed traffic,
    SIGTERM/SIGINT drain that unlinks the socket, and stale-socket
    replacement on startup.  A misbehaving supervisor — or a hostile
    wire — can never wedge or crash the worker: every mutated frame
    {!Ise_fabric.Netchaos.Mutate} can produce decodes to a typed
    error, an error frame, or a clean close.

    Protocol: the worker speaks fabric versions
    [{!Wire.min_version}..proto].  A Hello advertising a lower version
    negotiates the connection down (so a v2 worker still serves a v1
    supervisor); [proto = 1] in the config caps the worker at v1 —
    tests use it to {e be} the old worker.  {!Wire.Ping} is answered
    with {!Wire.Pong} only on connections negotiated at ≥ 2.  On
    connections negotiated at ≥ 3, a job with [j_stream] set switches
    the worker into streaming mode: after every Shard_done (and after
    every Pong while idle) it sends one {!Wire.Telemetry} frame
    carrying the delta of its metrics registry since the previous
    drain — shards done, shard wall-clock histogram, pings, and the
    per-pool-worker job-latency histograms from {!Ise_pool.Pool}.

    Work model: {!Wire.Set_spec} installs the campaign — fuzz
    ({!Ise_fuzz.Campaign.check_range}) or chaos
    ({!Ise_chaos.Chaos_run.check_range}); each {!Wire.Run} job names a
    global unit range, fanned out over a persistent {!Ise_pool.Pool}
    of [jobs] forked processes in contiguous sub-ranges (results
    concatenated in order), or run inline when [jobs <= 1].  The fuzz
    test stream is regenerated from the spec and memoized per spec
    fingerprint, so only ranges cross the wire.  Raw results go back
    unshrunk and unlogged: shrinking, reporting and merging are the
    supervisor's (deterministic) job. *)

type config = {
  socket_path : string;
  jobs : int;  (** pool fan-out inside this worker; [<= 1] inline *)
  proto : int;  (** highest fabric version to speak (tests set 1) *)
  max_payload : int;
  trace_out : string option;
      (** Chrome trace file for this worker's shard spans (wall-clock
          µs domain), rewritten atomically after every traced shard —
          a SIGKILLed worker still leaves its last-completed-shard
          trace for [ise trace stitch].  Spans are only emitted for
          jobs that carry a {!Wire.job.j_ctx}, so the file stays an
          empty skeleton unless a v3 supervisor traces the campaign *)
  log : string -> unit;
}

val default_config : socket_path:string -> config
(** [jobs = 1], [proto = Wire.version], 64 MiB max payload, no trace
    file, silent. *)

type t

val create : config -> t
(** Binds and listens (replacing a dead predecessor's stale socket,
    refusing to steal a live one), and prespawns the pool when
    [jobs > 1]. *)

val request_drain : t -> unit
val install_signal_handlers : t -> unit
val stats : t -> Wire.worker_stats

val serve_forever : t -> unit
val run : config -> unit
(** [create] + {!install_signal_handlers} + {!serve_forever}. *)
