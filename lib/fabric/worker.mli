(** The [ise fabric worker] daemon: executes shard-range jobs for a
    fabric supervisor.

    Built on {!Ise_serve.Framed}, so it has the same connection
    discipline as [ise serve]: Hello-first handshake, typed error
    frames for malformed/oversized/version-skewed traffic, and
    SIGTERM/SIGINT drain.  A misbehaving supervisor can never wedge or
    crash the worker.

    Work model: {!Wire.Set_spec} installs the campaign; each
    {!Wire.Run} job names a global test range, which the worker checks
    with {!Ise_fuzz.Campaign.check_range} — fanned out over a
    persistent {!Ise_pool.Pool} of [jobs] forked processes in
    contiguous sub-ranges (results concatenated in order), or inline
    when [jobs <= 1].  The test stream is regenerated from the spec
    and memoized per spec fingerprint, so only ranges cross the wire.
    Raw failures go back unshrunk and unlogged: shrinking and
    reporting are the supervisor's (deterministic) job. *)

type config = {
  socket_path : string;
  jobs : int;  (** pool fan-out inside this worker; [<= 1] inline *)
  max_payload : int;
  log : string -> unit;
}

val default_config : socket_path:string -> config
(** [jobs = 1], 64 MiB max payload, silent log. *)

type t

val create : config -> t
(** Binds and listens (removing a stale socket file first), and
    prespawns the pool when [jobs > 1]. *)

val request_drain : t -> unit
val install_signal_handlers : t -> unit
val stats : t -> Wire.worker_stats

val serve_forever : t -> unit
val run : config -> unit
(** [create] + {!install_signal_handlers} + {!serve_forever}. *)
