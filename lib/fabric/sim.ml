let available = Ise_pool.Pool.fork_available

type t = {
  dir : string;
  jobs : int;
  proto : int;
  trace_dir : string option;
  log : (string -> unit) option;
  wpids : int array;  (* worker pids; restart replaces entries *)
  real : string array;  (* sockets the workers themselves listen on *)
  public : string array;  (* what the supervisor connects to *)
  proxies : int array;  (* netchaos proxy pids; empty without netchaos *)
}

let fork_worker ~jobs ~proto ~log ?trace_out sock =
  match Unix.fork () with
  | 0 ->
    (* the child is a worker daemon and nothing else: any exit path
       must be _exit, so the parent's at_exit machinery (alcotest,
       telemetry flushes) never runs twice *)
    (try
       let cfg =
         { (Worker.default_config ~socket_path:sock) with
           jobs;
           proto;
           trace_out;
           log = (match log with Some l -> l | None -> ignore);
         }
       in
       Worker.run cfg
     with _ -> ());
    Unix._exit 0
  | pid -> pid

(* block until the worker accepts — a restarted worker must first
   probe-and-replace its SIGKILLed predecessor's stale socket *)
let wait_ready sock =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec loop () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < deadline then begin
        ignore (Unix.select [] [] [] 0.05);
        loop ()
      end
  in
  loop ()

let trace_path trace_dir k =
  Option.map
    (fun d -> Filename.concat d (Printf.sprintf "worker%d.trace.json" k))
    trace_dir

let start ?(jobs = 1) ?log ?(proto = Wire.version) ?netchaos ?trace_dir ~dir
    ~n () =
  if not available then
    invalid_arg "Sim.start: fork is not available on this platform";
  if n <= 0 then invalid_arg "Sim.start: need at least one worker";
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let public =
    Array.init n (fun k -> Filename.concat dir (Printf.sprintf "worker%d.sock" k))
  in
  let real =
    match netchaos with
    | None -> public
    | Some _ ->
      Array.init n (fun k ->
          Filename.concat dir (Printf.sprintf "worker%d.real.sock" k))
  in
  Array.iter
    (fun s -> try Unix.unlink s with Unix.Unix_error _ -> ())
    (Array.append public real);
  (match trace_dir with
   | None -> ()
   | Some d -> (
     try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()));
  let wpids =
    Array.mapi
      (fun k sock ->
        fork_worker ~jobs ~proto ~log ?trace_out:(trace_path trace_dir k) sock)
      real
  in
  let proxies =
    match netchaos with
    | None -> [||]
    | Some (seed, profile) ->
      Array.init n (fun k ->
          Netchaos.spawn ?log ~listen:public.(k) ~upstream:real.(k)
            ~seed:(seed + (7919 * k)) ~profile ())
  in
  { dir; jobs; proto; trace_dir; log; wpids; real; public; proxies }

let sockets t = Array.to_list t.public
let pids t = Array.to_list t.wpids

let reap pid =
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let kill t k =
  if k < 0 || k >= Array.length t.wpids then invalid_arg "Sim.kill";
  (try Unix.kill t.wpids.(k) Sys.sigkill with Unix.Unix_error _ -> ());
  reap t.wpids.(k)

let restart t k =
  if k < 0 || k >= Array.length t.wpids then invalid_arg "Sim.restart";
  t.wpids.(k) <-
    fork_worker ~jobs:t.jobs ~proto:t.proto ~log:t.log
      ?trace_out:(trace_path t.trace_dir k)
      t.real.(k);
  wait_ready t.real.(k)

let stop t =
  Array.iter
    (fun pid ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      reap pid)
    t.wpids;
  Array.iter Netchaos.stop_spawned t.proxies;
  Array.iter
    (fun s -> try Unix.unlink s with Unix.Unix_error _ -> ())
    (Array.append t.public t.real)
