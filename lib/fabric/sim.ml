let available = Ise_pool.Pool.fork_available

type t = {
  dir : string;
  procs : (int * string) array;  (* pid, socket path *)
}

let start ?(jobs = 1) ?log ~dir ~n () =
  if not available then
    invalid_arg "Sim.start: fork is not available on this platform";
  if n <= 0 then invalid_arg "Sim.start: need at least one worker";
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let procs =
    Array.init n (fun k ->
        let sock = Filename.concat dir (Printf.sprintf "worker%d.sock" k) in
        (try Unix.unlink sock with Unix.Unix_error _ -> ());
        match Unix.fork () with
        | 0 ->
          (* the child is a worker daemon and nothing else: any exit
             path must be _exit, so the parent's at_exit machinery
             (alcotest, telemetry flushes) never runs twice *)
          (try
             let cfg =
               { (Worker.default_config ~socket_path:sock) with
                 jobs;
                 log = (match log with Some l -> l | None -> ignore);
               }
             in
             Worker.run cfg
           with _ -> ());
          Unix._exit 0
        | pid -> (pid, sock))
  in
  { dir; procs }

let sockets t = Array.to_list (Array.map snd t.procs)
let pids t = Array.to_list (Array.map fst t.procs)

let reap pid =
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let kill t k =
  if k < 0 || k >= Array.length t.procs then invalid_arg "Sim.kill";
  let pid, _ = t.procs.(k) in
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  reap pid

let stop t =
  Array.iter
    (fun (pid, sock) ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      reap pid;
      try Unix.unlink sock with Unix.Unix_error _ -> ())
    t.procs
