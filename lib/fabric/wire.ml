open Ise_fuzz
module Codec = Ise_pool.Codec

let version = 3
let min_version = 1

type campaign =
  | Fuzz of Campaign.spec
  | Chaos of Ise_chaos.Chaos_run.spec

let campaign_count = function
  | Fuzz s -> s.Campaign.s_count
  | Chaos cs -> cs.Ise_chaos.Chaos_run.cs_trials

let campaign_seed = function
  | Fuzz s -> s.Campaign.s_seed
  | Chaos cs -> cs.Ise_chaos.Chaos_run.cs_seed

type job = {
  j_shard : int;
  j_lo : int;
  j_hi : int;
  (* v3 observability fields.  Marshal is structural and every fabric
     endpoint is the same executable image, so older-*protocol* peers
     still decode them — they just never act on them: a supervisor
     only sets them on connections negotiated at >= 3. *)
  j_ctx : (string * string) option;
      (* (trace_id, dispatch span id): the worker parents its shard
         span under the supervisor's dispatch span *)
  j_stream : bool;  (* stream Telemetry frames after this shard *)
}

let plain_job ~shard ~lo ~hi =
  { j_shard = shard; j_lo = lo; j_hi = hi; j_ctx = None; j_stream = false }

type request =
  | Hello of { proto : int; git_rev : string }
  | Set_spec of campaign
  | Run of job
  | Ping of int
  | Worker_stats_req
  | Shutdown

type shard_payload =
  | Fuzz_raw of Campaign.raw_failure list
  | Chaos_reports of Ise_chaos.Chaos_run.report list

type shard_result = {
  sr_shard : int;
  sr_lo : int;
  sr_hi : int;
  sr_payload : shard_payload;
}

type worker_stats = {
  ws_pid : int;
  ws_jobs : int;
  ws_proto : int;
  ws_shards_run : int;
  ws_pings : int;
  ws_uptime_s : float;
}

type telemetry_update = {
  tu_pid : int;
  tu_seq : int;
  tu_metrics : Ise_telemetry.Registry.drained;
}

type response =
  | Hello_ok of { proto : int; git_rev : string; pid : int }
  | Spec_ok
  | Pong of int
  | Shard_done of shard_result
  | Shard_failed of { shard : int; reason : string }
  | Worker_stats of worker_stats
  | Telemetry of telemetry_update
  | Shutting_down
  | Error of Ise_serve.Framed.err_kind * string

(* ------------------------------------------------------------------ *)
(* payload envelopes                                                   *)

(* v2 payloads carry a leading MD5 of the marshalled value: Marshal has
   no integrity check of its own, and a wire-corrupted payload that
   still unmarshals (flipped bytes inside an int field) would silently
   poison the merge.  With the digest, corruption of any payload byte
   is *guaranteed* to surface as a typed decode failure, which the
   fault-handling paths (worker error frames, supervisor worker_lost +
   re-dispatch) then absorb.  v1 payloads are bare marshal — kept so a
   v2 endpoint still speaks to v1 peers after Hello negotiation. *)

let seal v =
  let m = Codec.marshal v in
  Digest.string m ^ m

let unseal s =
  if String.length s < 16 then None
  else
    let d = String.sub s 0 16 in
    let body = String.sub s 16 (String.length s - 16) in
    if not (String.equal (Digest.string body) d) then None
    else match Codec.unmarshal body with
      | v -> Some v
      | exception _ -> None

let encode_payload ~proto v =
  if proto >= 2 then seal v else Codec.marshal v

(* v1 payloads (and the hello exchange, which always travels at v1)
   have no digest — decode them through the structural validator so a
   wire-corrupted stream surfaces as [None] instead of crashing the
   runtime's intern loop. *)
let decode_payload ~proto s =
  if proto >= 2 then unseal s else Codec.unmarshal_opt s

(* ------------------------------------------------------------------ *)
(* framed I/O                                                          *)

(* Hello/Hello_ok always travel at v1 framing — the lowest version any
   peer speaks — so negotiation itself never needs negotiating.  The
   agreed version governs every frame after the handshake. *)
let hello_proto = 1

let write_request ?(proto = version) fd (req : request) =
  Codec.write_frame ~proto fd (encode_payload ~proto (req : request))

let write_response ?(proto = version) fd (resp : response) =
  Codec.write_frame ~proto fd (encode_payload ~proto (resp : response))

let read_response ?max_payload fd =
  match Codec.read_frame_ext ?max_payload fd with
  | Stdlib.Error `Eof -> Stdlib.Error "connection closed by worker"
  | Stdlib.Error (`Corrupt e) ->
    Stdlib.Error ("corrupt response frame: " ^ Codec.error_to_string e)
  | Stdlib.Ok (proto, payload) ->
    if proto < min_version || proto > version then
      Stdlib.Error
        (Printf.sprintf
           "protocol mismatch: worker speaks v%d, we speak v%d..v%d" proto
           min_version version)
    else begin
      match (decode_payload ~proto payload : response option) with
      | Some resp -> Stdlib.Ok resp
      | None -> Stdlib.Error "undecodable response payload"
    end

(* ------------------------------------------------------------------ *)
(* shard cache keys and payloads                                       *)

let spec_fp (s : Campaign.spec) =
  Digest.to_hex (Digest.string (Marshal.to_string s []))

let campaign_fp = function
  | Fuzz s -> spec_fp s
  | Chaos cs -> Digest.to_hex (Digest.string (Marshal.to_string cs []))

let campaign_domain = function
  | Fuzz _ -> "fuzz-shard"
  | Chaos _ -> "chaos-shard"

let shard_key c ~lo ~hi =
  Ise_serve.Store.key ~test_fp:(campaign_fp c)
    ~cfg_fp:
      (Ise_serve.Cache.config_fp ~domain:(campaign_domain c)
         [ string_of_int (campaign_seed c);
           string_of_int lo;
           string_of_int hi ])

let shard_payload_to_string (p : shard_payload) = seal p

let shard_payload_of_string str : shard_payload option = unseal str
