open Ise_fuzz

let version = 1

type job = { j_shard : int; j_lo : int; j_hi : int }

type request =
  | Hello of { proto : int; git_rev : string }
  | Set_spec of Campaign.spec
  | Run of job
  | Worker_stats_req
  | Shutdown

type shard_result = {
  sr_shard : int;
  sr_lo : int;
  sr_hi : int;
  sr_raw : Campaign.raw_failure list;
}

type worker_stats = {
  ws_pid : int;
  ws_jobs : int;
  ws_shards_run : int;
  ws_uptime_s : float;
}

type response =
  | Hello_ok of { proto : int; git_rev : string; pid : int }
  | Spec_ok
  | Shard_done of shard_result
  | Shard_failed of { shard : int; reason : string }
  | Worker_stats of worker_stats
  | Shutting_down
  | Error of Ise_serve.Framed.err_kind * string

(* ------------------------------------------------------------------ *)
(* framed I/O                                                          *)

let write_request fd (req : request) =
  Ise_pool.Codec.write_frame ~proto:version fd (Ise_pool.Codec.marshal req)

let write_response fd (resp : response) =
  Ise_pool.Codec.write_frame ~proto:version fd (Ise_pool.Codec.marshal resp)

let read_response ?max_payload fd =
  match Ise_pool.Codec.read_frame_ext ?max_payload fd with
  | Stdlib.Error `Eof -> Stdlib.Error "connection closed by worker"
  | Stdlib.Error (`Corrupt e) ->
    Stdlib.Error
      ("corrupt response frame: " ^ Ise_pool.Codec.error_to_string e)
  | Stdlib.Ok (proto, payload) ->
    if proto <> version then
      Stdlib.Error
        (Printf.sprintf "protocol mismatch: worker speaks v%d, we speak v%d"
           proto version)
    else begin
      match (Ise_pool.Codec.unmarshal payload : response) with
      | resp -> Stdlib.Ok resp
      | exception _ -> Stdlib.Error "undecodable response payload"
    end

(* ------------------------------------------------------------------ *)
(* shard cache keys and payloads                                       *)

let spec_fp (s : Campaign.spec) =
  Digest.to_hex (Digest.string (Marshal.to_string s []))

let shard_key (s : Campaign.spec) ~lo ~hi =
  Ise_serve.Store.key ~test_fp:(spec_fp s)
    ~cfg_fp:
      (Ise_serve.Cache.config_fp ~domain:"fuzz-shard"
         [ string_of_int s.Campaign.s_seed;
           string_of_int lo;
           string_of_int hi ])

let shard_payload_to_string (raws : Campaign.raw_failure list) =
  Ise_pool.Codec.marshal raws

let shard_payload_of_string str =
  match (Ise_pool.Codec.unmarshal str : Campaign.raw_failure list) with
  | raws -> Some raws
  | exception _ -> None
