type status = Never | Alive | Down

type entry = {
  e_path : string;
  mutable e_status : status;
  mutable e_last_attempt : float;
}

type t = {
  entries : entry list;
  mutable rejoins : int;
}

let create paths =
  let seen = Hashtbl.create 8 in
  let entries =
    List.filter_map
      (fun p ->
        if Hashtbl.mem seen p then None
        else begin
          Hashtbl.add seen p ();
          Some { e_path = p; e_status = Never; e_last_attempt = neg_infinity }
        end)
      paths
  in
  { entries; rejoins = 0 }

let find t path = List.find_opt (fun e -> e.e_path = path) t.entries

let mark_alive t path =
  match find t path with
  | None -> ()
  | Some e ->
    if e.e_status = Down then t.rejoins <- t.rejoins + 1;
    e.e_status <- Alive

let mark_down t path ~now =
  match find t path with
  | None -> ()
  | Some e ->
    e.e_status <- Down;
    e.e_last_attempt <- now

let due t ~now ~backoff =
  List.filter_map
    (fun e ->
      if e.e_status = Down && now -. e.e_last_attempt >= backoff then
        Some e.e_path
      else None)
    t.entries

let rejoins t = t.rejoins

let down t =
  List.filter_map
    (fun e -> if e.e_status = Down then Some e.e_path else None)
    t.entries
