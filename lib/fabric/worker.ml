open Ise_fuzz
module Framed = Ise_serve.Framed
module Trace = Ise_telemetry.Trace
module Registry = Ise_telemetry.Registry
module Json = Ise_telemetry.Json

type config = {
  socket_path : string;
  jobs : int;
  proto : int;
  max_payload : int;
  trace_out : string option;
  log : string -> unit;
}

let default_config ~socket_path = {
  socket_path;
  jobs = 1;
  proto = Wire.version;
  max_payload = 64 * 1024 * 1024;
  trace_out = None;
  log = ignore;
}

(* Pool jobs carry the campaign, so the pool's function is fixed at
   creation and the workers can be prespawned before any campaign
   arrives.  Each process (the daemon and every forked pool worker)
   memoizes the regenerated fuzz test stream per spec fingerprint: a
   campaign's generation cost is paid once per process, not once per
   shard.  Chaos campaigns need no memo — trials are self-contained. *)
let memo : (string * Ise_litmus.Lit_test.t array) option ref = ref None

let tests_for spec =
  let fp = Wire.spec_fp spec in
  match !memo with
  | Some (fp', tests) when fp' = fp -> tests
  | _ ->
    let tests = Campaign.tests_of_spec spec in
    memo := Some (fp, tests);
    tests

(* The trace context rides the pool's Codec job frames too, so a
   forked pool worker can attribute its work to the campaign's
   distributed trace (via the flight recorder, when one is enabled —
   a no-op otherwise). *)
type pool_job = {
  pj_campaign : Wire.campaign;
  pj_lo : int;
  pj_hi : int;
  pj_ctx : (string * string) option;  (* (trace_id, parent span id) *)
}

let check { pj_campaign = c; pj_lo = lo; pj_hi = hi; pj_ctx } :
    Wire.shard_payload =
  (match pj_ctx with
   | None -> ()
   | Some (trace_id, parent) ->
     Ise_obs.Recorder.note ~cat:"fabric"
       ~args:
         [ (Trace.ctx_key_trace, Json.String trace_id);
           (Trace.ctx_key_parent, Json.String parent);
           ("lo", Json.Int lo); ("hi", Json.Int hi) ]
       "pool-subrange");
  match c with
  | Wire.Fuzz spec ->
    Wire.Fuzz_raw (Campaign.check_range spec ~tests:(tests_for spec) ~lo ~hi)
  | Wire.Chaos cs ->
    Wire.Chaos_reports (Ise_chaos.Chaos_run.check_range cs ~lo ~hi)

let concat_payloads (ps : Wire.shard_payload list) : Wire.shard_payload =
  match ps with
  | Wire.Chaos_reports _ :: _ ->
    Wire.Chaos_reports
      (List.concat_map
         (function Wire.Chaos_reports rs -> rs | Wire.Fuzz_raw _ -> [])
         ps)
  | _ ->
    Wire.Fuzz_raw
      (List.concat_map
         (function Wire.Fuzz_raw rs -> rs | Wire.Chaos_reports _ -> [])
         ps)

type t = {
  cfg : config;
  framed : Framed.t;
  started : float;
  pool : (pool_job, Wire.shard_payload) Ise_pool.Pool.t option;
  registry : Registry.t;  (* drained into Telemetry frames *)
  trace : Trace.t;  (* wall-clock µs shard spans, written to trace_out *)
  pool_sink : Ise_telemetry.Sink.t;
      (* shares [registry]; its trace is a throwaway — pool spans use
         relative timestamps and would pollute the stitched timeline *)
  mutable stream : bool;  (* a v3 supervisor asked for Telemetry frames *)
  mutable tele_seq : int;
  mutable campaign : Wire.campaign option;
  mutable shards_run : int;
  mutable pings : int;
  mutable errors : int;
}

let create cfg =
  let framed = Framed.create ~socket_path:cfg.socket_path () in
  (* fork the pool before any supervisor connects, so pool workers
     inherit a pristine address space (no connection fds) *)
  let pool =
    if cfg.jobs > 1 && Ise_pool.Pool.fork_available then begin
      let p = Ise_pool.Pool.create ~jobs:cfg.jobs check in
      Ise_pool.Pool.prespawn p;
      Some p
    end
    else None
  in
  let registry = Registry.create () in
  {
    cfg;
    framed;
    started = Unix.gettimeofday ();
    pool;
    registry;
    trace = Trace.create ();
    pool_sink = { Ise_telemetry.Sink.registry; trace = Trace.create () };
    stream = false;
    tele_seq = 0;
    campaign = None;
    shards_run = 0;
    pings = 0;
    errors = 0;
  }

let request_drain t = Framed.request_drain t.framed
let install_signal_handlers t = Framed.install_signal_handlers t.framed

let stats t = {
  Wire.ws_pid = Unix.getpid ();
  ws_jobs = t.cfg.jobs;
  ws_proto = t.cfg.proto;
  ws_shards_run = t.shards_run;
  ws_pings = t.pings;
  ws_uptime_s = Unix.gettimeofday () -. t.started;
}

let send_at t conn ~proto resp =
  try Wire.write_response ~proto (Framed.fd conn) resp
  with Unix.Unix_error _ | Sys_error _ -> Framed.close_conn t.framed conn

(* responses travel at the connection's negotiated version *)
let send t conn resp = send_at t conn ~proto:(Framed.proto conn) resp

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

(* Atomic (tmp + rename) so a reader — or the stitcher — never sees a
   torn file, and written after *every* shard because a simulated
   worker dies by SIGKILL: the last drain is not guaranteed to run. *)
let flush_trace t =
  match t.cfg.trace_out with
  | None -> ()
  | Some path ->
    let doc =
      Trace.to_chrome_json
        ~meta:
          (("role", Json.String "worker")
           :: ("pid", Json.Int (Unix.getpid ()))
           :: Ise_obs.Runinfo.stamp ())
        t.trace
    in
    let tmp = path ^ ".tmp" in
    (try
       let oc = open_out_bin tmp in
       output_string oc (Json.to_string doc);
       close_out oc;
       Sys.rename tmp path
     with Sys_error _ -> ())

(* Delta-snapshot frame: everything the registry accumulated since the
   previous drain.  Observability-only — losing one (dead supervisor,
   faulted wire) loses a little visibility, never a result. *)
let send_telemetry t conn =
  if t.stream && Framed.proto conn >= 3 then begin
    let d = Registry.drain t.registry in
    if d <> [] then begin
      t.tele_seq <- t.tele_seq + 1;
      send t conn
        (Wire.Telemetry
           { tu_pid = Unix.getpid (); tu_seq = t.tele_seq; tu_metrics = d })
    end
  end

let send_error t conn kind msg =
  t.errors <- t.errors + 1;
  t.cfg.log (Printf.sprintf "error to supervisor: %s (%s)"
               (Framed.err_name kind) msg);
  (try
     Wire.write_response ~proto:(Framed.proto conn) (Framed.fd conn)
       (Wire.Error (kind, msg))
   with Unix.Unix_error _ | Sys_error _ -> ());
  Framed.close_conn t.framed conn

(* One shard: fan [lo, hi) out over the persistent pool in contiguous
   sub-ranges (results concatenated in order keep global check order),
   or run inline when the pool is disabled.  Any sub-range failure
   fails the whole shard — the supervisor's re-dispatch handles it. *)
let run_shard t campaign (j : Wire.job) =
  (* Shard span, parented under the supervisor's dispatch span when the
     job carries a context.  The "receive" instant is the stitcher's
     clock anchor: its (wall-clock) timestamp pairs with the dispatch
     span's begin on the supervisor side. *)
  let ctx =
    match j.Wire.j_ctx with
    | None -> None
    | Some (trace_id, dispatch_span) ->
      let span_id =
        Printf.sprintf "w%d-s%d-%d" (Unix.getpid ()) j.Wire.j_shard
          t.shards_run
      in
      Some
        { Trace.trace_id; span_id; parent_span_id = Some dispatch_span }
  in
  let span_name = Printf.sprintf "shard %d" j.Wire.j_shard in
  (match ctx with
   | None -> ()
   | Some c ->
     let now = now_us () in
     Trace.instant t.trace ~cat:"fabric" ~ctx:c ~name:"receive" ~tid:0 now;
     Trace.span_begin t.trace ~cat:"fabric"
       ~args:[ ("lo", Json.Int j.Wire.j_lo); ("hi", Json.Int j.Wire.j_hi) ]
       ~ctx:c ~name:span_name ~tid:0 now);
  let started = Unix.gettimeofday () in
  let sub_results =
    match t.pool with
    | Some pool when j.Wire.j_hi - j.Wire.j_lo > 1 ->
      let parts =
        Plan.partition ~count:(j.Wire.j_hi - j.Wire.j_lo) ~shards:t.cfg.jobs
      in
      let pj_ctx =
        Option.map (fun c -> (c.Trace.trace_id, c.Trace.span_id)) ctx
      in
      let pjobs =
        Array.map
          (fun (a, b) ->
            { pj_campaign = campaign; pj_lo = j.Wire.j_lo + a;
              pj_hi = j.Wire.j_lo + b; pj_ctx })
          parts
      in
      let telemetry = if t.stream then Some t.pool_sink else None in
      let outcomes, _stats = Ise_pool.Pool.run ?telemetry pool pjobs in
      Array.to_list outcomes
      |> List.map (function
           | Ise_pool.Pool.Done payload -> Ok payload
           | Ise_pool.Pool.Failed err ->
             Error (Ise_pool.Pool.error_to_string err)
           | Ise_pool.Pool.Split _ -> assert false (* no bisect here *))
    | _ -> (
      match
        check
          { pj_campaign = campaign; pj_lo = j.Wire.j_lo; pj_hi = j.Wire.j_hi;
            pj_ctx = None }
      with
      | payload -> [ Ok payload ]
      | exception e -> [ Error (Printexc.to_string e) ])
  in
  let elapsed_ms = (Unix.gettimeofday () -. started) *. 1e3 in
  (match ctx with
   | None -> ()
   | Some c ->
     Trace.span_end t.trace ~cat:"fabric" ~ctx:c ~name:span_name ~tid:0
       (now_us ());
     flush_trace t);
  match
    List.find_map (function Error r -> Some r | Ok _ -> None) sub_results
  with
  | Some reason -> Wire.Shard_failed { shard = j.Wire.j_shard; reason }
  | None ->
    let payload =
      concat_payloads
        (List.filter_map (function Ok p -> Some p | Error _ -> None)
           sub_results)
    in
    t.shards_run <- t.shards_run + 1;
    Registry.incr (Registry.counter t.registry "fabric/worker/shards_done");
    Ise_util.Stats.add
      (Registry.histogram t.registry "fabric/worker/shard_ms")
      elapsed_ms;
    Wire.Shard_done
      { sr_shard = j.Wire.j_shard; sr_lo = j.Wire.j_lo; sr_hi = j.Wire.j_hi;
        sr_payload = payload }

let handle_request t conn (req : Wire.request) =
  match req with
  | Wire.Hello { proto = peer; git_rev = _ } ->
    let negotiated = min t.cfg.proto peer in
    if negotiated < Wire.min_version then
      send_error t conn Framed.Unsupported_proto
        (Printf.sprintf
           "worker speaks fabric protocol v%d..v%d, peer sent v%d"
           Wire.min_version t.cfg.proto peer)
    else begin
      Framed.mark_hello conn;
      (* Hello_ok itself travels at the pre-negotiation framing; every
         frame after it at the agreed version *)
      send_at t conn ~proto:Wire.hello_proto
        (Wire.Hello_ok
           { proto = negotiated; git_rev = Ise_obs.Runinfo.git_rev ();
             pid = Unix.getpid () });
      Framed.set_proto conn negotiated
    end
  | _ when not (Framed.hello_done conn) ->
    send_error t conn Framed.Bad_request "first request must be Hello"
  | Wire.Set_spec campaign -> (
    (* regenerating the stream / resolving the profiles validates the
       campaign's parameters before any Run is accepted *)
    let validated =
      match campaign with
      | Wire.Fuzz spec -> (
        match tests_for spec with
        | _tests ->
          Ok
            (Printf.sprintf "fuzz spec set: seed %d, %d tests"
               spec.Campaign.s_seed spec.Campaign.s_count)
        | exception e -> Error ("spec rejected: " ^ Printexc.to_string e))
      | Wire.Chaos cs -> (
        match Ise_chaos.Chaos_run.spec_profiles cs with
        | Ok _ ->
          Ok
            (Printf.sprintf "chaos spec set: seed %d, %d trials"
               cs.Ise_chaos.Chaos_run.cs_seed
               cs.Ise_chaos.Chaos_run.cs_trials)
        | Error msg -> Error ("spec rejected: " ^ msg))
    in
    match validated with
    | Ok msg ->
      t.campaign <- Some campaign;
      t.cfg.log msg;
      send t conn Wire.Spec_ok
    | Error msg -> send_error t conn Framed.Bad_request msg)
  | Wire.Ping token ->
    if Framed.proto conn >= 2 then begin
      t.pings <- t.pings + 1;
      Registry.incr (Registry.counter t.registry "fabric/worker/pings");
      send t conn (Wire.Pong token);
      (* an idle streaming worker piggybacks its deltas on heartbeats *)
      send_telemetry t conn
    end
    else
      send_error t conn Framed.Bad_request
        "Ping requires a connection negotiated at protocol v2"
  | Wire.Run j -> (
    match t.campaign with
    | None ->
      send_error t conn Framed.Bad_request "Run before Set_spec"
    | Some campaign ->
      let count = Wire.campaign_count campaign in
      if j.Wire.j_lo < 0 || j.Wire.j_hi > count || j.Wire.j_lo > j.Wire.j_hi
      then
        send_error t conn Framed.Bad_request
          (Printf.sprintf "shard range [%d, %d) outside [0, %d)"
             j.Wire.j_lo j.Wire.j_hi count)
      else begin
        t.cfg.log
          (Printf.sprintf "shard %d: units [%d, %d)" j.Wire.j_shard
             j.Wire.j_lo j.Wire.j_hi);
        if j.Wire.j_stream && Framed.proto conn >= 3 then t.stream <- true;
        match run_shard t campaign j with
        | resp ->
          send t conn resp;
          send_telemetry t conn
        | exception e ->
          send_error t conn Framed.Internal (Printexc.to_string e)
      end)
  | Wire.Worker_stats_req -> send t conn (Wire.Worker_stats (stats t))
  | Wire.Shutdown ->
    send t conn Wire.Shutting_down;
    t.cfg.log "shutdown requested by supervisor";
    request_drain t

let serve_forever t =
  t.cfg.log (Printf.sprintf "fabric worker on %s (pid %d, jobs %d, proto v%d)"
               t.cfg.socket_path (Unix.getpid ()) t.cfg.jobs t.cfg.proto);
  Framed.serve t.framed ~proto:t.cfg.proto ~min_proto:Wire.min_version
    ~max_payload:t.cfg.max_payload
    ~error:(fun conn kind msg -> send_error t conn kind msg)
    ~request:(fun conn payload ->
      (* the frame's own protocol byte selects the payload envelope —
         a v1 supervisor's bare marshal and a v2 supervisor's sealed
         payload are both understood *)
      match
        (Wire.decode_payload ~proto:(Framed.frame_proto conn) payload
          : Wire.request option)
      with
      | Some req -> handle_request t conn req
      | None ->
        send_error t conn Framed.Malformed_frame
          "request payload does not decode")
    ~on_drained:(fun () ->
      Option.iter Ise_pool.Pool.close t.pool;
      flush_trace t;
      t.cfg.log "drained; bye")

let run cfg =
  let t = create cfg in
  install_signal_handlers t;
  serve_forever t
