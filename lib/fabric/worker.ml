open Ise_fuzz
module Framed = Ise_serve.Framed

type config = {
  socket_path : string;
  jobs : int;
  max_payload : int;
  log : string -> unit;
}

let default_config ~socket_path = {
  socket_path;
  jobs = 1;
  max_payload = 64 * 1024 * 1024;
  log = ignore;
}

(* Pool jobs carry the spec, so the pool's function is fixed at
   creation and the workers can be prespawned before any campaign
   arrives.  Each process (the daemon and every forked pool worker)
   memoizes the regenerated test stream per spec fingerprint: a
   campaign's generation cost is paid once per process, not once per
   shard. *)
let memo : (string * Ise_litmus.Lit_test.t array) option ref = ref None

let tests_for spec =
  let fp = Wire.spec_fp spec in
  match !memo with
  | Some (fp', tests) when fp' = fp -> tests
  | _ ->
    let tests = Campaign.tests_of_spec spec in
    memo := Some (fp, tests);
    tests

let check (spec, lo, hi) =
  Campaign.check_range spec ~tests:(tests_for spec) ~lo ~hi

type t = {
  cfg : config;
  framed : Framed.t;
  started : float;
  pool :
    (Campaign.spec * int * int, Campaign.raw_failure list) Ise_pool.Pool.t
      option;
  mutable spec : Campaign.spec option;
  mutable shards_run : int;
  mutable errors : int;
}

let create cfg =
  let framed = Framed.create ~socket_path:cfg.socket_path () in
  (* fork the pool before any supervisor connects, so pool workers
     inherit a pristine address space (no connection fds) *)
  let pool =
    if cfg.jobs > 1 && Ise_pool.Pool.fork_available then begin
      let p = Ise_pool.Pool.create ~jobs:cfg.jobs check in
      Ise_pool.Pool.prespawn p;
      Some p
    end
    else None
  in
  {
    cfg;
    framed;
    started = Unix.gettimeofday ();
    pool;
    spec = None;
    shards_run = 0;
    errors = 0;
  }

let request_drain t = Framed.request_drain t.framed
let install_signal_handlers t = Framed.install_signal_handlers t.framed

let stats t = {
  Wire.ws_pid = Unix.getpid ();
  ws_jobs = t.cfg.jobs;
  ws_shards_run = t.shards_run;
  ws_uptime_s = Unix.gettimeofday () -. t.started;
}

let send_error t conn kind msg =
  t.errors <- t.errors + 1;
  t.cfg.log (Printf.sprintf "error to supervisor: %s (%s)"
               (Framed.err_name kind) msg);
  (try Wire.write_response (Framed.fd conn) (Wire.Error (kind, msg))
   with Unix.Unix_error _ | Sys_error _ -> ());
  Framed.close_conn t.framed conn

let send t conn resp =
  try Wire.write_response (Framed.fd conn) resp
  with Unix.Unix_error _ | Sys_error _ -> Framed.close_conn t.framed conn

(* One shard: fan [lo, hi) out over the persistent pool in contiguous
   sub-ranges (results concatenated in order keep global check order),
   or run inline when the pool is disabled.  Any sub-range failure
   fails the whole shard — the supervisor's re-dispatch handles it. *)
let run_shard t spec (j : Wire.job) =
  let sub_results =
    match t.pool with
    | Some pool when j.Wire.j_hi - j.Wire.j_lo > 1 ->
      let parts =
        Plan.partition ~count:(j.Wire.j_hi - j.Wire.j_lo) ~shards:t.cfg.jobs
      in
      let pjobs =
        Array.map (fun (a, b) -> (spec, j.Wire.j_lo + a, j.Wire.j_lo + b)) parts
      in
      let outcomes, _stats = Ise_pool.Pool.run pool pjobs in
      Array.to_list outcomes
      |> List.map (function
           | Ise_pool.Pool.Done raws -> Ok raws
           | Ise_pool.Pool.Failed err ->
             Error (Ise_pool.Pool.error_to_string err)
           | Ise_pool.Pool.Split _ -> assert false (* no bisect here *))
    | _ -> (
      match check (spec, j.Wire.j_lo, j.Wire.j_hi) with
      | raws -> [ Ok raws ]
      | exception e -> [ Error (Printexc.to_string e) ])
  in
  match
    List.find_map (function Error r -> Some r | Ok _ -> None) sub_results
  with
  | Some reason -> Wire.Shard_failed { shard = j.Wire.j_shard; reason }
  | None ->
    let raws =
      List.concat_map (function Ok r -> r | Error _ -> []) sub_results
    in
    t.shards_run <- t.shards_run + 1;
    Wire.Shard_done
      { sr_shard = j.Wire.j_shard; sr_lo = j.Wire.j_lo; sr_hi = j.Wire.j_hi;
        sr_raw = raws }

let handle_request t conn (req : Wire.request) =
  match req with
  | Wire.Hello { proto; git_rev = _ } ->
    if proto <> Wire.version then
      send_error t conn Framed.Unsupported_proto
        (Printf.sprintf "worker speaks fabric protocol v%d, peer sent v%d"
           Wire.version proto)
    else begin
      Framed.mark_hello conn;
      send t conn
        (Wire.Hello_ok
           { proto = Wire.version; git_rev = Ise_obs.Runinfo.git_rev ();
             pid = Unix.getpid () })
    end
  | _ when not (Framed.hello_done conn) ->
    send_error t conn Framed.Bad_request "first request must be Hello"
  | Wire.Set_spec spec -> (
    (* regenerating the stream validates the spec's generator params *)
    match tests_for spec with
    | _tests ->
      t.spec <- Some spec;
      t.cfg.log
        (Printf.sprintf "spec set: seed %d, %d tests" spec.Campaign.s_seed
           spec.Campaign.s_count);
      send t conn Wire.Spec_ok
    | exception e ->
      send_error t conn Framed.Bad_request
        ("spec rejected: " ^ Printexc.to_string e))
  | Wire.Run j -> (
    match t.spec with
    | None ->
      send_error t conn Framed.Bad_request "Run before Set_spec"
    | Some spec ->
      if j.Wire.j_lo < 0 || j.Wire.j_hi > spec.Campaign.s_count
         || j.Wire.j_lo > j.Wire.j_hi
      then
        send_error t conn Framed.Bad_request
          (Printf.sprintf "shard range [%d, %d) outside [0, %d)"
             j.Wire.j_lo j.Wire.j_hi spec.Campaign.s_count)
      else begin
        t.cfg.log
          (Printf.sprintf "shard %d: tests [%d, %d)" j.Wire.j_shard
             j.Wire.j_lo j.Wire.j_hi);
        match run_shard t spec j with
        | resp -> send t conn resp
        | exception e ->
          send_error t conn Framed.Internal (Printexc.to_string e)
      end)
  | Wire.Worker_stats_req -> send t conn (Wire.Worker_stats (stats t))
  | Wire.Shutdown ->
    send t conn Wire.Shutting_down;
    t.cfg.log "shutdown requested by supervisor";
    request_drain t

let serve_forever t =
  t.cfg.log (Printf.sprintf "fabric worker on %s (pid %d, jobs %d)"
               t.cfg.socket_path (Unix.getpid ()) t.cfg.jobs);
  Framed.serve t.framed ~proto:Wire.version ~max_payload:t.cfg.max_payload
    ~error:(fun conn kind msg -> send_error t conn kind msg)
    ~request:(fun conn payload ->
      match (Ise_pool.Codec.unmarshal payload : Wire.request) with
      | req -> handle_request t conn req
      | exception _ ->
        send_error t conn Framed.Malformed_frame
          "request payload does not decode")
    ~on_drained:(fun () ->
      Option.iter Ise_pool.Pool.close t.pool;
      t.cfg.log "drained; bye")

let run cfg =
  let t = create cfg in
  install_signal_handlers t;
  serve_forever t
