open Ise_util
module Codec = Ise_pool.Codec

(* ------------------------------------------------------------------ *)
(* profiles                                                            *)

type profile = {
  name : string;
  doc : string;
  drop_pct : int;
  delay_pct : int;
  delay_ms_max : int;
  dup_pct : int;
  reorder_pct : int;
  corrupt_pct : int;
  corrupt_bytes_max : int;
  reset_pct : int;
  stall_pct : int;
  stall_ms : int;
}

let calm =
  {
    name = "calm";
    doc = "no injection at all (proxy plumbing baseline)";
    drop_pct = 0;
    delay_pct = 0;
    delay_ms_max = 0;
    dup_pct = 0;
    reorder_pct = 0;
    corrupt_pct = 0;
    corrupt_bytes_max = 0;
    reset_pct = 0;
    stall_pct = 0;
    stall_ms = 0;
  }

let drop = { calm with name = "drop"; doc = "frames vanish"; drop_pct = 8 }

let delay =
  { calm with
    name = "delay";
    doc = "frames held up to 40 ms (head-of-line, order kept)";
    delay_pct = 30;
    delay_ms_max = 40 }

let dup =
  { calm with
    name = "dup";
    doc = "frames delivered twice";
    dup_pct = 20 }

let reorder =
  { calm with
    name = "reorder";
    doc = "a frame swaps places with the next one";
    reorder_pct = 25 }

let corrupt =
  { calm with
    name = "corrupt";
    doc = "payload bytes flipped (framing left intact)";
    corrupt_pct = 6;
    corrupt_bytes_max = 4 }

let reset =
  { calm with
    name = "reset";
    doc = "connections torn down mid-stream";
    reset_pct = 3 }

let stall =
  { calm with
    name = "stall";
    doc = "fresh connections frozen before their first byte";
    stall_pct = 35;
    stall_ms = 900 }

let storm =
  {
    name = "storm";
    doc = "every wire fault at once";
    drop_pct = 5;
    delay_pct = 15;
    delay_ms_max = 25;
    dup_pct = 8;
    reorder_pct = 10;
    corrupt_pct = 3;
    corrupt_bytes_max = 4;
    reset_pct = 2;
    stall_pct = 15;
    stall_ms = 700;
  }

let all = [ drop; delay; dup; reorder; corrupt; reset; stall; storm ]
let named n = List.find_opt (fun p -> p.name = n) (calm :: all)

(* ------------------------------------------------------------------ *)
(* frame mutation generators (shared with the codec-hostility tests)   *)

module Mutate = struct
  type kind = Flip | Truncate | Extend | Skew_version | Skew_proto | Oversize

  let kinds = [| Flip; Truncate; Extend; Skew_version; Skew_proto; Oversize |]

  let flip_bytes rng ~lo s n =
    let b = Bytes.of_string s in
    let len = Bytes.length b in
    if len > lo then
      for _ = 1 to n do
        let i = lo + Rng.int rng (len - lo) in
        Bytes.set b i
          (Char.chr (Char.code (Bytes.get b i) lxor (1 + Rng.int rng 255)))
      done;
    Bytes.to_string b

  (* Flip payload bytes only: the frame still parses, so corruption is
     caught by the payload layer (Wire's digest envelope), not by
     framing — the nastier case. *)
  let corrupt_payload rng ~max_bytes frame =
    flip_bytes rng ~lo:Codec.header_bytes frame (1 + Rng.int rng (max 1 max_bytes))

  let apply rng kind frame =
    let len = String.length frame in
    match kind with
    | Flip -> flip_bytes rng ~lo:0 frame (1 + Rng.int rng 4)
    | Truncate -> String.sub frame 0 (Rng.int rng (max 1 len))
    | Extend -> frame ^ String.init (1 + Rng.int rng 32)
                          (fun _ -> Char.chr (Rng.int rng 256))
    | Skew_version ->
      if len < 5 then frame
      else begin
        let b = Bytes.of_string frame in
        Bytes.set b 4 (Char.chr (Rng.int rng 256));
        Bytes.to_string b
      end
    | Skew_proto ->
      if len < 6 then frame
      else begin
        let b = Bytes.of_string frame in
        Bytes.set b 5 (Char.chr (Rng.int rng 256));
        Bytes.to_string b
      end
    | Oversize ->
      (* claim an absurd payload length *)
      if len < Codec.header_bytes then frame
      else begin
        let b = Bytes.of_string frame in
        Bytes.set b 6 '\x7f';
        Bytes.set b 7 (Char.chr (Rng.int rng 256));
        Bytes.to_string b
      end

  let mutate rng frame = apply rng (Rng.choose rng kinds) frame
end

(* ------------------------------------------------------------------ *)
(* the injector                                                        *)

type t = {
  pf : profile;
  rng_drop : Rng.t;
  rng_delay : Rng.t;
  rng_dup : Rng.t;
  rng_reorder : Rng.t;
  rng_corrupt : Rng.t;
  rng_reset : Rng.t;
  rng_stall : Rng.t;
  mutable frames : int;
  mutable drops : int;
  mutable delays : int;
  mutable dups : int;
  mutable reorders : int;
  mutable corruptions : int;
  mutable resets : int;
  mutable stalls : int;
  mutable conns : int;
}

let create ~seed ~profile =
  let root = Rng.create seed in
  {
    pf = profile;
    rng_drop = Rng.split root;
    rng_delay = Rng.split root;
    rng_dup = Rng.split root;
    rng_reorder = Rng.split root;
    rng_corrupt = Rng.split root;
    rng_reset = Rng.split root;
    rng_stall = Rng.split root;
    frames = 0;
    drops = 0;
    delays = 0;
    dups = 0;
    reorders = 0;
    corruptions = 0;
    resets = 0;
    stalls = 0;
    conns = 0;
  }

let profile t = t.pf

let counts t =
  [ ("netchaos/conns", t.conns);
    ("netchaos/frames", t.frames);
    ("netchaos/drops", t.drops);
    ("netchaos/delays", t.delays);
    ("netchaos/dups", t.dups);
    ("netchaos/reorders", t.reorders);
    ("netchaos/corruptions", t.corruptions);
    ("netchaos/resets", t.resets);
    ("netchaos/stalls", t.stalls) ]

let hit rng pct = pct > 0 && Rng.int rng 100 < pct

type action =
  | Pass
  | Drop
  | Delay of float  (* seconds *)
  | Duplicate
  | Reorder
  | Corrupt of string  (* mutated frame bytes *)
  | Reset

(* One decision per frame, first category hit wins — same shape as
   Ise_chaos.Plane: every category draws from its own split stream, so
   enabling one fault class never perturbs another's schedule. *)
let frame_action t frame =
  t.frames <- t.frames + 1;
  if hit t.rng_reset t.pf.reset_pct then begin
    t.resets <- t.resets + 1;
    Reset
  end
  else if hit t.rng_drop t.pf.drop_pct then begin
    t.drops <- t.drops + 1;
    Drop
  end
  else if hit t.rng_corrupt t.pf.corrupt_pct then begin
    t.corruptions <- t.corruptions + 1;
    Corrupt
      (Mutate.corrupt_payload t.rng_corrupt
         ~max_bytes:t.pf.corrupt_bytes_max frame)
  end
  else if hit t.rng_dup t.pf.dup_pct then begin
    t.dups <- t.dups + 1;
    Duplicate
  end
  else if hit t.rng_reorder t.pf.reorder_pct then begin
    t.reorders <- t.reorders + 1;
    Reorder
  end
  else if hit t.rng_delay t.pf.delay_pct then begin
    t.delays <- t.delays + 1;
    Delay (float_of_int (1 + Rng.int t.rng_delay (max 1 t.pf.delay_ms_max))
           /. 1000.)
  end
  else Pass

let conn_stall t =
  t.conns <- t.conns + 1;
  if hit t.rng_stall t.pf.stall_pct then begin
    t.stalls <- t.stalls + 1;
    Some (float_of_int t.pf.stall_ms /. 1000.)
  end
  else None

(* ------------------------------------------------------------------ *)
(* the fd proxy                                                        *)

(* One direction of one proxied connection: raw bytes in, frames
   peeled, per-frame actions applied, released in queue order. *)
type dir = {
  d_from : Unix.file_descr;
  d_to : Unix.file_descr;
  mutable d_buf : Bytes.t;
  mutable d_len : int;
  mutable d_out : (float * string) list;  (* release time, frame bytes *)
  mutable d_held : (float * string) option;  (* reorder victim + deadline *)
  mutable d_raw : bool;  (* unparseable stream: forward verbatim *)
  mutable d_eof : bool;
}

type pair = {
  p_a : dir;  (* client -> upstream *)
  p_b : dir;  (* upstream -> client *)
  mutable p_stalled_until : float;
  mutable p_dead : bool;
}

type proxy = {
  nc : t;
  listen_fd : Unix.file_descr;
  listen_path : string;
  upstream_path : string;
  max_payload : int;
  log : string -> unit;
  mutable pairs : pair list;
  mutable stop : bool;
}

let create_proxy ?(max_payload = Codec.default_max_payload)
    ?(log = fun (_ : string) -> ()) ~listen ~upstream nc =
  (try Unix.unlink listen with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec fd;
  Unix.bind fd (Unix.ADDR_UNIX listen);
  Unix.listen fd 16;
  { nc; listen_fd = fd; listen_path = listen; upstream_path = upstream;
    max_payload; log; pairs = []; stop = false }

let close_pair px pair =
  if not pair.p_dead then begin
    pair.p_dead <- true;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ pair.p_a.d_from; pair.p_a.d_to ];
    px.pairs <- List.filter (fun p -> p != pair) px.pairs
  end

let enqueue d now frame =
  d.d_out <- d.d_out @ [ (now, frame) ]

(* Apply the injector's verdict for one parsed frame. *)
let apply_action px pair d now frame =
  (* a held reorder victim is released right after the frame that
     overtook it *)
  let release_held () =
    match d.d_held with
    | Some (_, held) ->
      d.d_held <- None;
      enqueue d now held
    | None -> ()
  in
  match frame_action px.nc frame with
  | Pass ->
    enqueue d now frame;
    release_held ()
  | Drop -> release_held ()
  | Delay s ->
    enqueue d (now +. s) frame;
    release_held ()
  | Duplicate ->
    enqueue d now frame;
    enqueue d now frame;
    release_held ()
  | Corrupt bytes ->
    enqueue d now bytes;
    release_held ()
  | Reorder -> (
    (* hold this frame until the next one passes it — or for 50 ms,
       whichever comes first, so a lone frame is only delayed *)
    match d.d_held with
    | Some (_, held) ->
      (* two reorders back to back: swap the two held frames *)
      d.d_held <- None;
      enqueue d now frame;
      enqueue d now held
    | None -> d.d_held <- Some (now +. 0.05, frame))
  | Reset -> close_pair px pair

let pump_frames px pair d now =
  if d.d_raw then begin
    (* stream stopped parsing (shouldn't happen with our endpoints):
       forward verbatim, no injection *)
    if d.d_len > 0 then begin
      enqueue d now (Bytes.sub_string d.d_buf 0 d.d_len);
      d.d_len <- 0
    end
  end
  else begin
    let continue = ref true in
    while !continue && not pair.p_dead do
      match Codec.decode ~max_payload:px.max_payload d.d_buf ~pos:0 ~len:d.d_len with
      | Codec.Need_more -> continue := false
      | Codec.Corrupt _ -> d.d_raw <- true; continue := false
      | Codec.Frame { consumed; _ } ->
        let frame = Bytes.sub_string d.d_buf 0 consumed in
        Bytes.blit d.d_buf consumed d.d_buf 0 (d.d_len - consumed);
        d.d_len <- d.d_len - consumed;
        apply_action px pair d now frame
    done
  end

let proxy_chunk = Bytes.create 65536

let dir_readable px pair d now =
  match Unix.read d.d_from proxy_chunk 0 (Bytes.length proxy_chunk) with
  | 0 ->
    d.d_eof <- true;
    pump_frames px pair d now;
    (* flush what we owe, then half-close; tear down when both sides
       are done *)
    if d.d_out = [] && d.d_held = None then begin
      (try Unix.shutdown d.d_to Unix.SHUTDOWN_SEND
       with Unix.Unix_error _ -> ())
    end;
    if pair.p_a.d_eof && pair.p_b.d_eof then close_pair px pair
  | n ->
    if d.d_len + n > Bytes.length d.d_buf then begin
      let cap = max (d.d_len + n) (2 * Bytes.length d.d_buf) in
      let bigger = Bytes.create cap in
      Bytes.blit d.d_buf 0 bigger 0 d.d_len;
      d.d_buf <- bigger
    end;
    Bytes.blit proxy_chunk 0 d.d_buf d.d_len n;
    d.d_len <- d.d_len + n;
    pump_frames px pair d now
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    close_pair px pair
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write_substring fd s !off (n - !off) in
    off := !off + w
  done

let flush_dir px pair d now =
  (* overdue reorder victim with nothing overtaking it: release *)
  (match d.d_held with
   | Some (deadline, held) when now >= deadline ->
     d.d_held <- None;
     enqueue d now held
   | _ -> ());
  let continue = ref true in
  while !continue && not pair.p_dead do
    match d.d_out with
    | (release, frame) :: rest when release <= now -> (
      match write_all d.d_to frame with
      | () -> d.d_out <- rest
      | exception (Unix.Unix_error _ | Sys_error _) -> close_pair px pair)
    | _ -> continue := false
  done;
  if (not pair.p_dead) && d.d_eof && d.d_out = [] && d.d_held = None then
    (try Unix.shutdown d.d_to Unix.SHUTDOWN_SEND
     with Unix.Unix_error _ -> ())

let accept_conn px now =
  match Unix.accept px.listen_fd with
  | client, _ -> (
    Unix.set_close_on_exec client;
    let up = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.set_close_on_exec up;
    match Unix.connect up (Unix.ADDR_UNIX px.upstream_path) with
    | () ->
      let dir from_ to_ =
        { d_from = from_; d_to = to_; d_buf = Bytes.create 8192; d_len = 0;
          d_out = []; d_held = None; d_raw = false; d_eof = false }
      in
      let stalled_until =
        match conn_stall px.nc with
        | Some s ->
          px.log (Printf.sprintf "stalling new connection for %.0f ms"
                    (s *. 1000.));
          now +. s
        | None -> 0.
      in
      px.pairs <-
        { p_a = dir client up; p_b = dir up client;
          p_stalled_until = stalled_until; p_dead = false }
        :: px.pairs
    | exception Unix.Unix_error _ ->
      px.log "upstream connect failed; dropping client";
      (try Unix.close client with Unix.Unix_error _ -> ());
      (try Unix.close up with Unix.Unix_error _ -> ()))
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let proxy_step px =
  let now = Unix.gettimeofday () in
  let read_fds =
    px.listen_fd
    :: List.concat_map
         (fun pair ->
           if pair.p_dead || now < pair.p_stalled_until then []
           else
             (if pair.p_a.d_eof then [] else [ pair.p_a.d_from ])
             @ if pair.p_b.d_eof then [] else [ pair.p_b.d_from ])
         px.pairs
  in
  (match Unix.select read_fds [] [] 0.02 with
   | readable, _, _ ->
     let now = Unix.gettimeofday () in
     List.iter
       (fun fd ->
         if fd = px.listen_fd then accept_conn px now
         else
           List.iter
             (fun pair ->
               if not pair.p_dead then begin
                 if fd = pair.p_a.d_from && not pair.p_a.d_eof then
                   dir_readable px pair pair.p_a now
                 else if fd = pair.p_b.d_from && not pair.p_b.d_eof then
                   dir_readable px pair pair.p_b now
               end)
             px.pairs)
       readable
   | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  let now = Unix.gettimeofday () in
  List.iter
    (fun pair ->
      if (not pair.p_dead) && now >= pair.p_stalled_until then begin
        flush_dir px pair pair.p_a now;
        if not pair.p_dead then flush_dir px pair pair.p_b now
      end)
    px.pairs

let stop_proxy px = px.stop <- true

let run_proxy px =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  px.log
    (Printf.sprintf "netchaos proxy %s -> %s (profile %s)" px.listen_path
       px.upstream_path px.nc.pf.name);
  while not px.stop do
    proxy_step px
  done;
  List.iter (fun pair -> close_pair px pair) px.pairs;
  (try Unix.close px.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink px.listen_path with Unix.Unix_error _ -> ())

let spawn ?max_payload ?log ~listen ~upstream ~seed ~profile () =
  match Unix.fork () with
  | 0 ->
    (* proxy child: any exit path must be _exit so the parent's at_exit
       machinery never runs twice *)
    (try
       let px =
         create_proxy ?max_payload ?log ~listen ~upstream
           (create ~seed ~profile)
       in
       let stop = Sys.Signal_handle (fun _ -> stop_proxy px) in
       Sys.set_signal Sys.sigterm stop;
       Sys.set_signal Sys.sigint stop;
       run_proxy px
     with _ -> ());
    Unix._exit 0
  | pid -> pid

let stop_spawned pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      end
      else begin
        ignore (Unix.select [] [] [] 0.01);
        wait ()
      end
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  wait ()
