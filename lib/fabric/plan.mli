(** Campaign partitioning and straggler deadlines.

    The partition is the load-balanced contiguous one: shard [i] of
    [N] covers global test indices [[i*count/N, (i+1)*count/N)], so
    shard sizes differ by at most one, the ranges tile [[0, count)] in
    order, and concatenating per-shard results in shard index order
    reproduces global test order — the property the deterministic
    merge rests on. *)

val shard_range : count:int -> shards:int -> int -> int * int
(** [shard_range ~count ~shards i] is shard [i]'s (0-based) global
    range [(lo, hi)]; may be empty when [shards > count].
    @raise Invalid_argument on a bad index or counts. *)

val partition : count:int -> shards:int -> (int * int) array
(** All shard ranges in order, with [shards] clamped to [count] so no
    range is empty ([[||]] when [count = 0]). *)

val parse_shard : string -> (int * int, string) result
(** Parse a CLI ["k/N"] shard spec (1-based, as printed by CI
    matrices) into 0-based [(k-1, n)]. *)

(** {1 Straggler deadlines}

    An exponentially-weighted moving average of observed shard
    wall-clock seconds, in the spirit of {!Ise_fuzz.Campaign}'s [`Auto]
    sizing pilot: the supervisor feeds it every completed shard's
    latency and re-dispatches any shard in flight longer than
    {!deadline}. *)

type ewma

val ewma_create : ?alpha:float -> unit -> ewma
(** [alpha] (default 0.3) weights the newest sample. *)

val observe : ewma -> float -> unit
val mean : ewma -> float
val samples : ewma -> int

val deadline : ?factor:float -> ?floor:float -> ewma -> float
(** [factor] (default 4.0) × the EWMA mean, at least [floor] (default
    0.5 s); [infinity] before the first observation, so nothing is
    ever re-dispatched on zero evidence. *)
