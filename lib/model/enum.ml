let epoch = 2

(* ------------------------------------------------------------------ *)
(* Reference enumerator (seed semantics)                               *)
(*                                                                     *)
(* Enumerate-then-check: build every (rf, co) candidate eagerly and    *)
(* let the caller filter by the consistency axiom.  Kept verbatim as   *)
(* the executable oracle for the fast path below — the oracle tests    *)
(* in test/test_model.ml assert [search] agrees with it on outcome     *)
(* sets and consistent counts for the whole litmus library.            *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

(* Cartesian product of a list of choice lists, as a lazy sequence. *)
let rec product : 'a list list -> 'a list Seq.t = function
  | [] -> Seq.return []
  | choices :: rest ->
    Seq.concat_map
      (fun tail -> Seq.map (fun c -> c :: tail) (List.to_seq choices))
      (product rest)

let candidates (graph : Event.graph) =
  let events = graph.Event.events in
  let n = Array.length events in
  let reads =
    Array.to_list events |> List.filter Event.is_read |> List.map (fun e -> e.Event.id)
  in
  let writes_for rd =
    Array.to_list events
    |> List.filter (fun w -> Event.is_write w && Event.same_loc w events.(rd))
    |> List.map (fun w -> w.Event.id)
  in
  let locs = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      if Event.is_write e && not (Event.is_init e) then
        match e.Event.loc with
        | Some l ->
          Hashtbl.replace locs l (e.Event.id :: (try Hashtbl.find locs l with Not_found -> []))
        | None -> ())
    events;
  let init_of_loc l =
    let found = ref (-1) in
    Array.iter
      (fun e ->
        if Event.is_init e && e.Event.loc = Some l then found := e.Event.id)
      events;
    !found
  in
  let loc_orders =
    Hashtbl.fold
      (fun l ws acc -> (init_of_loc l, permutations ws) :: acc)
      locs []
  in
  let rf_choices = product (List.map writes_for reads) in
  let co_choices = product (List.map snd loc_orders) in
  let inits = List.map fst loc_orders in
  Seq.concat_map
    (fun rf_assignment ->
      let rf = Array.make n (-1) in
      List.iter2 (fun rd w -> rf.(rd) <- w) reads rf_assignment;
      Seq.filter_map
        (fun co_assignment ->
          let co = Rel.create n in
          List.iter2
            (fun init order ->
              (* init is co-before everything; then the permutation
                 order, with all transitive pairs added. *)
              let chain = if init >= 0 then init :: order else order in
              let rec pairs = function
                | [] -> ()
                | x :: rest ->
                  List.iter (fun y -> Rel.add co x y) rest;
                  pairs rest
              in
              pairs chain)
            inits co_assignment;
          Exec.make graph ~rf ~co)
        co_choices)
    rf_choices

let count graph = Seq.fold_left (fun acc _ -> acc + 1) 0 (candidates graph)

(* ------------------------------------------------------------------ *)
(* Incremental reachability                                            *)
(*                                                                     *)
(* The transitive closure of an acyclic, monotonically growing edge    *)
(* set, as packed bitset rows.  [add_edge u v] refuses edges that      *)
(* would close a cycle (leaving the structure untouched) and otherwise *)
(* folds v's reachability into u's and every predecessor of u's — an   *)
(* O(n · words) update instead of a full closure recomputation.        *)
(* Backtracking snapshots/restores the whole row array; candidate      *)
(* graphs are a couple dozen events, so a snapshot is a handful of     *)
(* words.                                                              *)

module Reach = struct
  let bits = Sys.int_size

  type t = { n : int; words : int; rows : int array }

  let create n =
    let words = if n = 0 then 0 else ((n - 1) / bits) + 1 in
    { n; words; rows = Array.make (n * words) 0 }

  let mem t i j =
    t.rows.((i * t.words) + (j / bits)) land (1 lsl (j mod bits)) <> 0

  (* Add u -> v; false (and no change) if it would close a cycle. *)
  let add_edge t u v =
    if u = v || mem t v u then false
    else if mem t u v then true
    else begin
      let bv = v * t.words in
      let vw = v / bits and vbit = 1 lsl (v mod bits) in
      for i = 0 to t.n - 1 do
        if i = u || mem t i u then begin
          let bi = i * t.words in
          for w = 0 to t.words - 1 do
            Array.unsafe_set t.rows (bi + w)
              (Array.unsafe_get t.rows (bi + w)
              lor Array.unsafe_get t.rows (bv + w))
          done;
          t.rows.(bi + vw) <- t.rows.(bi + vw) lor vbit
        end
      done;
      true
    end

  (* Seed from a relation; false if the relation is already cyclic. *)
  let add_rel t rel =
    let ok = ref true in
    Rel.iter (fun a b -> if not (add_edge t a b) then ok := false) rel;
    !ok

  let snapshot t = Array.copy t.rows
  let restore t s = Array.blit s 0 t.rows 0 (Array.length s)
end

(* ------------------------------------------------------------------ *)
(* Fast path: backtracking search with pruning and symmetry reduction  *)

type stats = {
  group_order : int;  (* |G|: program automorphisms found *)
  rf_explored : int;  (* complete rf assignments surviving pruning *)
  leaves : int;  (* co-complete candidates reached (pre leader check) *)
  pruned_cycle : int;  (* choice subtrees cut by incremental reachability *)
  pruned_symmetry : int;  (* assignments cut by the lex-leader check *)
  consistent : int;  (* consistent candidates, orbit-multiplied *)
}

let search ?(symmetry = true) ?(faulting = []) cfg threads =
  let graph = Event.compile ~faulting threads in
  let events = graph.Event.events in
  let n = Array.length events in
  let stats =
    ref
      {
        group_order = 1;
        rf_explored = 0;
        leaves = 0;
        pruned_cycle = 0;
        pruned_symmetry = 0;
        consistent = 0;
      }
  in
  let bump f = stats := f !stats in
  (* choice structure, all in deterministic (ascending id) order *)
  let reads =
    Array.of_list
      (Array.to_list events |> List.filter Event.is_read
      |> List.map (fun e -> e.Event.id))
  in
  let writes_for =
    Array.map
      (fun rd ->
        Array.to_list events
        |> List.filter (fun w -> Event.is_write w && Event.same_loc w events.(rd))
        |> List.map (fun w -> w.Event.id))
      reads
  in
  let locs =
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun e ->
        if Event.is_write e && not (Event.is_init e) then
          match e.Event.loc with
          | Some l ->
            Hashtbl.replace tbl l
              ((try Hashtbl.find tbl l with Not_found -> []) @ [ e.Event.id ])
          | None -> ())
      events;
    Hashtbl.fold (fun l ws acc -> (l, ws) :: acc) tbl []
    |> List.sort compare |> Array.of_list
  in
  let nlocs_used = Array.length locs in
  let init_of =
    Array.map
      (fun (l, _) ->
        let found = ref (-1) in
        Array.iter
          (fun e ->
            if Event.is_init e && e.Event.loc = Some l then found := e.Event.id)
          events;
        !found)
      locs
  in
  (* symmetry group *)
  let autos = if symmetry then Symm.automorphisms threads graph else [] in
  let nontrivial = List.filter (fun a -> not (Symm.is_identity a)) autos in
  let group_order = max 1 (List.length autos) in
  bump (fun s -> { s with group_order });
  (* per-automorphism inverse location maps, for the co leader check *)
  let inv_loc =
    List.map
      (fun (a : Symm.t) ->
        let inv = Array.make (Array.length a.Symm.map_loc) 0 in
        Array.iteri (fun l l' -> inv.(l') <- l) a.Symm.map_loc;
        (a, inv))
      nontrivial
  in
  (* loc value -> index in [locs] *)
  let loc_index = Hashtbl.create 8 in
  Array.iteri (fun i (l, _) -> Hashtbl.replace loc_index l i) locs;
  (* search state *)
  let ghb = Reach.create n and coloc = Reach.create n in
  let rf = Array.make n (-1) in
  let readers = Array.make n [] in
  (* chains.(li): the chosen coherence prefix for location li, newest
     first, non-init writes only *)
  let chains = Array.make (max 1 nlocs_used) [] in
  let outcomes = ref Outcome.Set.empty in
  let sc_model = cfg.Axiom.model = Axiom.Sc in
  (* π·rf vs rf, lexicographically over reads in ascending id order:
     (π·rf)(r) = perm(rf(perm⁻¹ r)). *)
  let compare_rf (a : Symm.t) =
    let rec go k =
      if k >= Array.length reads then 0
      else
        let rd = reads.(k) in
        let c = compare a.Symm.perm.(rf.(a.Symm.inv.(rd))) rf.(rd) in
        if c <> 0 then c else go (k + 1)
    in
    go 0
  in
  (* π·co vs co over the per-location chains, locations ascending:
     (π·co)'s chain at location l is perm applied to the chain at
     λ⁻¹(l).  Chains are stored newest first; compare in chosen
     (oldest-first) order. *)
  let compare_co ((a : Symm.t), inv_loc) =
    let rec go li =
      if li >= nlocs_used then 0
      else
        let l, _ = locs.(li) in
        let li' = Hashtbl.find loc_index inv_loc.(l) in
        let c =
          List.compare compare
            (List.rev_map (fun w -> a.Symm.perm.(w)) chains.(li'))
            (List.rev chains.(li))
        in
        if c <> 0 then c else go (li + 1)
    in
    go 0
  in
  let leaf rf_stab =
    bump (fun s -> { s with leaves = s.leaves + 1 });
    if List.exists (fun a -> compare_co a < 0) rf_stab then
      bump (fun s -> { s with pruned_symmetry = s.pruned_symmetry + 1 })
    else begin
      let stab_size =
        1 + List.length (List.filter (fun a -> compare_co a = 0) rf_stab)
      in
      let orbit = group_order / stab_size in
      let co = Rel.create n in
      Array.iteri
        (fun li (_, _) ->
          let chain =
            let c = List.rev chains.(li) in
            if init_of.(li) >= 0 then init_of.(li) :: c else c
          in
          let rec pairs = function
            | [] -> ()
            | x :: rest ->
              List.iter (fun y -> Rel.add co x y) rest;
              pairs rest
          in
          pairs chain)
        locs;
      match Exec.make graph ~rf:(Array.copy rf) ~co with
      | None -> ()
      | Some ex ->
        let o = Exec.outcome ex in
        bump (fun s -> { s with consistent = s.consistent + orbit });
        outcomes := Outcome.Set.add o !outcomes;
        List.iter
          (fun a -> outcomes := Outcome.Set.add (Symm.apply_outcome a o) !outcomes)
          nontrivial
    end
  in
  (* coherence stage: per location, append remaining writes one at a
     time; each append adds co edges from the whole prefix (and init)
     plus fr edges from every read of the prefix, into both
     reachability structures.  A refused edge prunes the subtree. *)
  let rec co_loc li rf_stab =
    if li >= nlocs_used then leaf rf_stab
    else
      let _, ws = locs.(li) in
      extend li ws rf_stab
  and extend li remaining rf_stab =
    if remaining = [] then co_loc (li + 1) rf_stab
    else
      List.iter
        (fun w ->
          let s1 = Reach.snapshot ghb and s2 = Reach.snapshot coloc in
          let ok = ref true in
          let edge a b =
            if !ok then
              if not (Reach.add_edge coloc a b && Reach.add_edge ghb a b) then
                ok := false
          in
          let prefix = chains.(li) in
          if init_of.(li) >= 0 then edge init_of.(li) w;
          List.iter
            (fun c ->
              edge c w;
              List.iter (fun rd -> edge rd w) readers.(c))
            prefix;
          if init_of.(li) >= 0 then
            List.iter (fun rd -> edge rd w) readers.(init_of.(li));
          if !ok then begin
            chains.(li) <- w :: chains.(li);
            extend li (List.filter (fun x -> x <> w) remaining) rf_stab;
            chains.(li) <- List.tl chains.(li)
          end
          else bump (fun s -> { s with pruned_cycle = s.pruned_cycle + 1 });
          Reach.restore ghb s1;
          Reach.restore coloc s2)
        remaining
  in
  let rf_complete () =
    if List.exists (fun a -> compare_rf a < 0) nontrivial then
      bump (fun s -> { s with pruned_symmetry = s.pruned_symmetry + 1 })
    else begin
      bump (fun s -> { s with rf_explored = s.rf_explored + 1 });
      let rf_stab =
        List.filter (fun (a, _) -> compare_rf a = 0) inv_loc
      in
      co_loc 0 rf_stab
    end
  in
  let rec rf_stage k =
    if k >= Array.length reads then rf_complete ()
    else
      let rd = reads.(k) in
      List.iter
        (fun w ->
          let s1 = Reach.snapshot ghb and s2 = Reach.snapshot coloc in
          let ok =
            Reach.add_edge coloc w rd
            && ((not (sc_model || events.(w).Event.tid <> events.(rd).Event.tid))
               || Reach.add_edge ghb w rd)
          in
          if ok then begin
            rf.(rd) <- w;
            readers.(w) <- rd :: readers.(w);
            rf_stage (k + 1);
            readers.(w) <- List.tl readers.(w);
            rf.(rd) <- -1
          end
          else bump (fun s -> { s with pruned_cycle = s.pruned_cycle + 1 });
          Reach.restore ghb s1;
          Reach.restore coloc s2)
        writes_for.(k)
  in
  (* static base: po-loc for coherence, ppo (+ fences, for PC/WC) for
     happens-before.  Both are acyclic for compiled programs; if a
     hostile graph ever makes the base cyclic, no candidate can be
     consistent, which the early return encodes. *)
  if
    Reach.add_rel coloc (Exec.po_loc_g graph)
    && Reach.add_rel ghb (Axiom.ghb_base_g cfg graph)
  then rf_stage 0;
  (!outcomes, !stats)
