type t = { n : int; m : Bytes.t }

let idx t a b = (a * t.n) + b

let create n =
  if n < 0 then invalid_arg "Rel.create";
  { n; m = Bytes.make (n * n) '\000' }

let size t = t.n

let check t a b =
  if a < 0 || a >= t.n || b < 0 || b >= t.n then invalid_arg "Rel: out of range"

let add t a b =
  check t a b;
  Bytes.set t.m (idx t a b) '\001'

let mem t a b =
  check t a b;
  Bytes.get t.m (idx t a b) <> '\000'

let same_size a b = if a.n <> b.n then invalid_arg "Rel: size mismatch"

let map2 f a b =
  same_size a b;
  let r = create a.n in
  for i = 0 to Bytes.length a.m - 1 do
    if f (Bytes.get a.m i <> '\000') (Bytes.get b.m i <> '\000') then
      Bytes.set r.m i '\001'
  done;
  r

let union a b = map2 ( || ) a b
let inter a b = map2 ( && ) a b
let diff a b = map2 (fun x y -> x && not y) a b

let compose a b =
  same_size a b;
  let r = create a.n in
  for i = 0 to a.n - 1 do
    for k = 0 to a.n - 1 do
      if mem a i k then
        for j = 0 to a.n - 1 do
          if mem b k j then add r i j
        done
    done
  done;
  r

let inverse a =
  let r = create a.n in
  for i = 0 to a.n - 1 do
    for j = 0 to a.n - 1 do
      if mem a i j then add r j i
    done
  done;
  r

let copy a = { n = a.n; m = Bytes.copy a.m }

let transitive_closure a =
  (* Floyd-Warshall reachability. *)
  let r = copy a in
  for k = 0 to r.n - 1 do
    for i = 0 to r.n - 1 do
      if mem r i k then
        for j = 0 to r.n - 1 do
          if mem r k j then add r i j
        done
    done
  done;
  r

let is_acyclic a =
  let c = transitive_closure a in
  let rec loop i = if i >= c.n then true else if mem c i i then false else loop (i + 1) in
  loop 0

let cycle_witness a =
  let c = transitive_closure a in
  let rec find i = if i >= c.n then None else if mem c i i then Some i else find (i + 1) in
  match find 0 with
  | None -> None
  | Some start ->
    (* Reconstruct a path start -> ... -> start through direct edges. *)
    let visited = Array.make a.n false in
    let rec dfs node path =
      if node = start && path <> [] then Some (List.rev (start :: path))
      else if visited.(node) && node <> start then None
      else begin
        visited.(node) <- true;
        let rec try_succ j =
          if j >= a.n then None
          else if mem a node j && (j = start || not visited.(j)) then
            match dfs j (node :: path) with
            | Some p -> Some p
            | None -> try_succ (j + 1)
          else try_succ (j + 1)
        in
        try_succ 0
      end
    in
    dfs start []

let of_list n pairs =
  let r = create n in
  List.iter (fun (a, b) -> add r a b) pairs;
  r

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    for j = t.n - 1 downto 0 do
      if mem t i j then acc := (i, j) :: !acc
    done
  done;
  !acc

let filter p t =
  let r = create t.n in
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      if mem t i j && p i j then add r i j
    done
  done;
  r

let cardinal t =
  let c = ref 0 in
  Bytes.iter (fun ch -> if ch <> '\000' then incr c) t.m;
  !c

let equal a b = a.n = b.n && Bytes.equal a.m b.m

let iter f t =
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      if mem t i j then f i j
    done
  done

let topological_order t =
  let indegree = Array.make t.n 0 in
  iter (fun _ j -> indegree.(j) <- indegree.(j) + 1) t;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indegree;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order := i :: !order;
    incr count;
    for j = 0 to t.n - 1 do
      if mem t i j then begin
        indegree.(j) <- indegree.(j) - 1;
        if indegree.(j) = 0 then Queue.add j queue
      end
    done
  done;
  if !count = t.n then Some (List.rev !order) else None
