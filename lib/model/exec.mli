(** Candidate executions: an event graph together with a reads-from
    map and a per-location coherence order, plus the derived
    from-read relation and computed event values. *)

open Types

type t = {
  graph : Event.graph;
  rf : int array;
      (** [rf.(r)] is the write event a read [r] reads from; [-1] for
          non-read events. *)
  co : Rel.t;  (** coherence: total order per location over writes *)
  values : value array;
      (** [values.(e)]: stored value for writes, read value for reads *)
}

val rf_rel : t -> Rel.t
(** Reads-from as a relation (write → read). *)

val rfe : t -> Rel.t
(** External reads-from: write and read on different threads. *)

val rfi : t -> Rel.t
(** Internal reads-from: same thread. *)

val fr : t -> Rel.t
(** From-read: read → every write coherence-after the one it read. *)

val po_loc : t -> Rel.t
(** Program order restricted to same-location memory accesses. *)

val fence_order : t -> Rel.t
(** Pairs of memory events separated by a fence in program order. *)

val po_loc_g : Event.graph -> Rel.t
val fence_order_g : Event.graph -> Rel.t
(** Graph-level variants of {!po_loc}/{!fence_order}: both relations
    depend only on the event graph, not on any rf/co choice, so the
    enumerator computes them once per program before exploring
    candidates. *)

val make : Event.graph -> rf:int array -> co:Rel.t -> t option
(** Computes event values from [rf]; [None] when the value assignment
    has no fixpoint (a causal cycle through data) or when RMW
    atomicity is violated. *)

val outcome : t -> Outcome.t
(** Final registers (last po-write of each register per thread) and
    final memory (coherence-maximal write per location). *)

val pp : Format.formatter -> t -> unit
