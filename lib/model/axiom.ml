type model = Sc | Pc | Wc
type fault_mode = Precise | Same_stream | Split_stream
type config = { model : model; faults : fault_mode }

let sc = { model = Sc; faults = Precise }
let pc = { model = Pc; faults = Precise }
let wc = { model = Wc; faults = Precise }
let rvwmo = wc
let with_faults faults cfg = { cfg with faults }

let name cfg =
  let base = match cfg.model with Sc -> "SC" | Pc -> "PC" | Wc -> "WC" in
  match cfg.faults with
  | Precise -> base
  | Same_stream -> base ^ "+same-stream"
  | Split_stream -> base ^ "+split-stream"

(* ppo and fence order depend only on the event graph (event kinds,
   program order, dependencies, faulting marks) — never on the rf/co
   choice — so all of the following are graph-level; the [Exec.t]
   wrappers below keep the historical signatures.  The enumerator
   relies on this staticness to compute the happens-before base once
   per program and only add rf/co/fr edges incrementally. *)

let memory_po_g (graph : Event.graph) =
  let events = graph.Event.events in
  Rel.filter
    (fun a b ->
      (not (Event.is_fence events.(a))) && not (Event.is_fence events.(b)))
    graph.Event.po

let rmw_pairs_g (graph : Event.graph) =
  let events = graph.Event.events in
  let r = Rel.create (Array.length events) in
  Array.iter
    (fun e ->
      if Event.is_read e then
        match e.Event.rmw_partner with
        | Some wr -> Rel.add r e.Event.id wr
        | None -> ())
    events;
  r

(* Split-stream relaxation: a faulting store's OS application happens
   after younger non-faulting operations of the same thread have
   completed, so those program-order edges disappear (unless to the
   same location, which the store buffer coalesces / forwards). *)
let split_relax_g (graph : Event.graph) rel =
  let events = graph.Event.events in
  Rel.filter
    (fun a b ->
      let ea = events.(a) and eb = events.(b) in
      not
        (Event.is_write ea && ea.Event.faulting
        && (not eb.Event.faulting)
        && not (Event.same_loc ea eb)))
    rel

let fuzz_unsound_strict_ppo = ref false

let ppo_g cfg (graph : Event.graph) =
  let events = graph.Event.events in
  let po_mem = memory_po_g graph in
  let base =
    match cfg.model with
    | _ when !fuzz_unsound_strict_ppo ->
      (* injected oracle bug (see the mli): keep full program order, so
         store-buffer relaxations the machine legally exhibits become
         forbidden *)
      po_mem
    | Sc -> po_mem
    | Pc ->
      (* the store buffer relaxes store→load order *)
      Rel.filter
        (fun a b ->
          not (Event.is_write events.(a) && Event.is_read events.(b)))
        po_mem
    | Wc ->
      let same_loc =
        Rel.filter (fun a b -> Event.same_loc events.(a) events.(b)) po_mem
      in
      let deps =
        Rel.union graph.Event.addr_dep
          (Rel.union graph.Event.data_dep
             (Rel.filter
                (fun _ b -> Event.is_write events.(b))
                graph.Event.ctrl_dep))
      in
      Rel.union same_loc (Rel.union deps (rmw_pairs_g graph))
  in
  match cfg.faults with
  | Precise | Same_stream -> base
  | Split_stream -> split_relax_g graph base

let ppo cfg (ex : Exec.t) = ppo_g cfg ex.Exec.graph

(* The static part of global happens-before: everything except the
   rf/co/fr edges contributed by a particular candidate. *)
let ghb_base_g cfg graph =
  match cfg.model with
  | Sc -> ppo_g cfg graph
  | Pc | Wc -> Rel.union (ppo_g cfg graph) (Exec.fence_order_g graph)

let ghb cfg ex =
  let com w = Rel.union w (Rel.union ex.Exec.co (Exec.fr ex)) in
  match cfg.model with
  | Sc ->
    (* SC orders everything, including internal reads-from. *)
    Rel.union (ppo cfg ex) (com (Exec.rf_rel ex))
  | Pc | Wc ->
    Rel.union (ppo cfg ex)
      (Rel.union (Exec.fence_order ex) (com (Exec.rfe ex)))

let sc_per_loc ex =
  let com =
    Rel.union (Exec.rf_rel ex) (Rel.union ex.Exec.co (Exec.fr ex))
  in
  Rel.is_acyclic (Rel.union (Exec.po_loc ex) com)

let consistent cfg ex = sc_per_loc ex && Rel.is_acyclic (ghb cfg ex)
