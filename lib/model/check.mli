(** Top-level model checking: the allowed-outcome set of a program
    under a configuration, plus model-comparison helpers used for the
    paper's proofs-by-enumeration (§4.6). *)

open Types

val allowed :
  ?faulting:(tid * int) list -> Axiom.config -> Instr.t list array ->
  Outcome.Set.t
(** All final outcomes of consistent executions.  [faulting] marks
    stores (by thread id and program-order index) as generating
    imprecise exceptions; it only affects configurations whose fault
    mode is [Split_stream].  Computed by the pruned, symmetry-reduced
    engine ({!Enum.search}); observationally identical to
    {!allowed_ref}. *)

val allowed_ref :
  ?faulting:(tid * int) list -> Axiom.config -> Instr.t list array ->
  Outcome.Set.t
(** Reference implementation of {!allowed} via the seed
    enumerate-then-check loop ({!Enum.candidates}); the oracle the
    fast path is differentially tested against. *)

val allowed_with_stats :
  ?faulting:(tid * int) list -> Axiom.config -> Instr.t list array ->
  Outcome.Set.t * int * int
(** Outcomes plus (candidate count, consistent count), via the
    reference enumerator — the total candidate count is only visible
    to the exhaustive walk. *)

val equivalent :
  ?faulting:(tid * int) list -> Axiom.config -> Axiom.config ->
  Instr.t list array -> bool
(** Same allowed-outcome sets on this program. *)

val subset :
  ?faulting:(tid * int) list -> Axiom.config -> Axiom.config ->
  Instr.t list array -> bool
(** [subset a b prog]: allowed(a) ⊆ allowed(b). *)

val extra_outcomes :
  ?faulting:(tid * int) list -> Axiom.config -> Axiom.config ->
  Instr.t list array -> Outcome.t list
(** Outcomes allowed by the first configuration but not the second. *)

(** {1 Explanations} *)

type verdict =
  | Allowed_by of string
      (** a consistent candidate execution produces the outcome; the
          payload renders it *)
  | Forbidden_cycle of string list
      (** every candidate with this outcome is inconsistent; the
          payload is a happens-before cycle (one event per line) from a
          representative candidate — the reason the model says no *)
  | Unreachable
      (** no candidate execution, consistent or not, produces the
          outcome (e.g. values that no store writes) *)

val explain :
  ?faulting:(tid * int) list -> Axiom.config -> Instr.t list array ->
  Outcome.t -> verdict
(** Why an outcome is allowed or forbidden under the configuration —
    the herd-style answer to "which cycle forbids this?". *)
