(* Packed bitset rows: row [i] of the adjacency matrix lives in
   [words_per_row] native ints starting at [i * words_per_row], one bit
   per column.  Row-level operations (union, intersection, compose,
   closure) are word-parallel, which is what makes the enumerator's
   per-candidate consistency checks cheap.  The seed dense-matrix
   implementation survives verbatim as [Rel_ref]; test/test_rel.ml
   asserts this module agrees with it operation by operation. *)

type t = { n : int; words : int; m : int array }

let bits = Sys.int_size

let create n =
  if n < 0 then invalid_arg "Rel.create";
  let words = if n = 0 then 0 else ((n - 1) / bits) + 1 in
  { n; words; m = Array.make (n * words) 0 }

let size t = t.n

let check t a b =
  if a < 0 || a >= t.n || b < 0 || b >= t.n then invalid_arg "Rel: out of range"

let add t a b =
  check t a b;
  let w = (a * t.words) + (b / bits) in
  t.m.(w) <- t.m.(w) lor (1 lsl (b mod bits))

let mem t a b =
  check t a b;
  t.m.((a * t.words) + (b / bits)) land (1 lsl (b mod bits)) <> 0

let same_size a b = if a.n <> b.n then invalid_arg "Rel: size mismatch"

let map2 f a b =
  same_size a b;
  let r = create a.n in
  for i = 0 to Array.length a.m - 1 do
    r.m.(i) <- f a.m.(i) b.m.(i)
  done;
  r

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

(* Fold over the set bits of row [a] in ascending column order. *)
let iter_row t a f =
  let base = a * t.words in
  for w = 0 to t.words - 1 do
    let word = ref (Array.unsafe_get t.m (base + w)) in
    while !word <> 0 do
      let bit = !word land - !word in
      (* count trailing zeros of the isolated lowest bit *)
      let j = ref 0 in
      let x = ref bit in
      if !x land 0xFFFFFFFF = 0 then begin j := !j + 32; x := !x lsr 32 end;
      if !x land 0xFFFF = 0 then begin j := !j + 16; x := !x lsr 16 end;
      if !x land 0xFF = 0 then begin j := !j + 8; x := !x lsr 8 end;
      if !x land 0xF = 0 then begin j := !j + 4; x := !x lsr 4 end;
      if !x land 0x3 = 0 then begin j := !j + 2; x := !x lsr 2 end;
      if !x land 0x1 = 0 then j := !j + 1;
      f ((w * bits) + !j);
      word := !word land lnot bit
    done
  done

(* r_row(i) |= src_row(k), word-parallel. *)
let or_row_into dst i src k =
  let db = i * dst.words and sb = k * src.words in
  for w = 0 to dst.words - 1 do
    Array.unsafe_set dst.m (db + w)
      (Array.unsafe_get dst.m (db + w) lor Array.unsafe_get src.m (sb + w))
  done

let compose a b =
  same_size a b;
  let r = create a.n in
  for i = 0 to a.n - 1 do
    iter_row a i (fun k -> or_row_into r i b k)
  done;
  r

let inverse a =
  let r = create a.n in
  for i = 0 to a.n - 1 do
    iter_row a i (fun j -> add r j i)
  done;
  r

let copy a = { a with m = Array.copy a.m }

let transitive_closure a =
  (* Floyd-Warshall with word-parallel row merges: if i reaches k, fold
     k's row into i's. *)
  let r = copy a in
  for k = 0 to r.n - 1 do
    let kw = k / bits and kbit = 1 lsl (k mod bits) in
    for i = 0 to r.n - 1 do
      if r.m.((i * r.words) + kw) land kbit <> 0 then or_row_into r i r k
    done
  done;
  r

(* Acyclicity via iterative three-colour DFS — no closure needed. *)
let is_acyclic a =
  let state = Array.make a.n 0 in (* 0 white, 1 on stack, 2 done *)
  let has_cycle = ref false in
  let rec visit i =
    if not !has_cycle then begin
      state.(i) <- 1;
      iter_row a i (fun j ->
          if state.(j) = 1 then has_cycle := true
          else if state.(j) = 0 then visit j);
      state.(i) <- 2
    end
  in
  (try
     for i = 0 to a.n - 1 do
       if state.(i) = 0 then visit i;
       if !has_cycle then raise Exit
     done
   with Exit -> ());
  not !has_cycle

let cycle_witness a =
  (* DFS keeping the grey path; on a back edge j -> grey node, the path
     segment from j's occurrence is a cycle.  Returned as
     [e1; …; ek; e1] with every consecutive pair a direct edge. *)
  let state = Array.make a.n 0 in
  let found = ref None in
  let rec visit i path =
    if !found = None then begin
      state.(i) <- 1;
      iter_row a i (fun j ->
          if !found = None then begin
            if state.(j) = 1 then begin
              (* path is i :: ... :: j :: ..., newest first *)
              let rec take acc = function
                | [] -> acc
                | x :: rest ->
                  if x = j then x :: acc else take (x :: acc) rest
              in
              let cyc = take [ j ] (i :: path) in
              found := Some cyc
            end
            else if state.(j) = 0 then visit j (i :: path)
          end);
      state.(i) <- 2
    end
  in
  (try
     for i = 0 to a.n - 1 do
       if state.(i) = 0 then visit i [];
       if !found <> None then raise Exit
     done
   with Exit -> ());
  !found

let of_list n pairs =
  let r = create n in
  List.iter (fun (a, b) -> add r a b) pairs;
  r

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    let row = ref [] in
    iter_row t i (fun j -> row := (i, j) :: !row);
    acc := List.rev_append !row !acc
  done;
  !acc

let filter p t =
  let r = create t.n in
  for i = 0 to t.n - 1 do
    iter_row t i (fun j -> if p i j then add r i j)
  done;
  r

let cardinal t =
  let c = ref 0 in
  let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
  Array.iter (fun w -> c := !c + popcount w) t.m;
  !c

let equal a b = a.n = b.n && a.m = b.m

let iter f t =
  for i = 0 to t.n - 1 do
    iter_row t i (fun j -> f i j)
  done

let topological_order t =
  (* Kahn's algorithm, queue seeded in index order — matches Rel_ref
     output exactly, which tests depend on. *)
  let indegree = Array.make t.n 0 in
  iter (fun _ j -> indegree.(j) <- indegree.(j) + 1) t;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indegree;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order := i :: !order;
    incr count;
    iter_row t i (fun j ->
        indegree.(j) <- indegree.(j) - 1;
        if indegree.(j) = 0 then Queue.add j queue)
  done;
  if !count = t.n then Some (List.rev !order) else None
