open Types

let allowed_with_stats ?(faulting : (tid * int) list = []) cfg threads =
  let graph = Event.compile ~faulting threads in
  let total = ref 0 in
  let consistent = ref 0 in
  let outcomes =
    Seq.fold_left
      (fun acc ex ->
        incr total;
        if Axiom.consistent cfg ex then begin
          incr consistent;
          Outcome.Set.add (Exec.outcome ex) acc
        end
        else acc)
      Outcome.Set.empty (Enum.candidates graph)
  in
  (outcomes, !total, !consistent)

(* The hot path: campaigns, litmus verdicts and subset/equivalence
   queries all funnel through [allowed], so it runs the pruned,
   symmetry-reduced engine.  [allowed_with_stats] (above) deliberately
   stays on the reference enumerator — it reports the total candidate
   count, which only the exhaustive walk sees — and doubles as the
   oracle the fast path is tested against. *)
let allowed ?faulting cfg threads = fst (Enum.search ?faulting cfg threads)

let allowed_ref ?faulting cfg threads =
  let o, _, _ = allowed_with_stats ?faulting cfg threads in
  o

let equivalent ?faulting a b threads =
  Outcome.Set.equal (allowed ?faulting a threads) (allowed ?faulting b threads)

let subset ?faulting a b threads =
  Outcome.Set.subset (allowed ?faulting a threads) (allowed ?faulting b threads)

let extra_outcomes ?faulting a b threads =
  Outcome.Set.elements
    (Outcome.Set.diff (allowed ?faulting a threads) (allowed ?faulting b threads))

type verdict =
  | Allowed_by of string
  | Forbidden_cycle of string list
  | Unreachable

let explain ?(faulting = []) cfg threads target =
  let graph = Event.compile ~faulting threads in
  let matching =
    Seq.filter
      (fun ex -> Outcome.equal (Exec.outcome ex) target)
      (Enum.candidates graph)
  in
  let first_inconsistent = ref None in
  let consistent_one =
    Seq.fold_left
      (fun acc ex ->
        match acc with
        | Some _ -> acc
        | None ->
          if Axiom.consistent cfg ex then Some ex
          else begin
            if !first_inconsistent = None then first_inconsistent := Some ex;
            None
          end)
      None matching
  in
  match (consistent_one, !first_inconsistent) with
  | Some ex, _ -> Allowed_by (Format.asprintf "%a" Exec.pp ex)
  | None, Some ex ->
    (* find the relation whose cycle forbids this candidate *)
    let events = ex.Exec.graph.Event.events in
    let name_of id = Format.asprintf "%a" Event.pp events.(id) in
    let from_rel rel =
      Option.map (List.map name_of) (Rel.cycle_witness rel)
    in
    let ghb_cycle = from_rel (Axiom.ghb cfg ex) in
    let coherence_cycle =
      from_rel
        (Rel.union (Exec.po_loc ex)
           (Rel.union (Exec.rf_rel ex) (Rel.union ex.Exec.co (Exec.fr ex))))
    in
    (match (ghb_cycle, coherence_cycle) with
     | Some c, _ | None, Some c -> Forbidden_cycle c
     | None, None -> Forbidden_cycle [ "(no single-candidate cycle found)" ])
  | None, None -> Unreachable
