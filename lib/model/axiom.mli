(** Consistency axioms: SC, PC (= TSO, §4.2), and WC, each optionally
    extended with imprecise store exceptions (§4.5-4.6).

    Every model requires SC-per-location (coherence) and RMW
    atomicity, and differs in the global-happens-before relation:

    - SC:  acyclic(po ∪ rf ∪ co ∪ fr)
    - PC:  acyclic(ppo ∪ fence ∪ rfe ∪ co ∪ fr) with
           ppo = po minus store→load pairs (the store buffer)
    - WC:  acyclic(ppo ∪ fence ∪ rfe ∪ co ∪ fr) with
           ppo = same-location po ∪ address/data deps ∪
                 control deps to stores ∪ AMO pairs

    The WC instance with dependency orders corresponds to the
    RVWMO-style model the paper's prototype targets ({!rvwmo} is an
    alias for it).

    Fault modes model how retired faulting stores reach memory:
    - [Precise]: no store ever faults post-retirement (base model);
    - [Same_stream]: faulting and younger non-faulting stores all
      travel through the architectural interface in store-buffer order
      (§4.6) — provably the same allowed outcomes as the base model;
    - [Split_stream]: non-faulting stores drain directly while faulting
      stores are applied later by the OS (§4.5) — relaxes the
      store→store order from a faulting store to younger non-faulting
      stores of the same thread, which is observable under PC. *)

type model = Sc | Pc | Wc

type fault_mode = Precise | Same_stream | Split_stream

type config = { model : model; faults : fault_mode }

val sc : config
val pc : config
val wc : config
val rvwmo : config
(** The RVWMO-like instance used for litmus checking (alias of {!wc}). *)

val with_faults : fault_mode -> config -> config
val name : config -> string

val fuzz_unsound_strict_ppo : bool ref
(** Deliberate bug injection for the differential fuzz harness's
    self-test ([false] by default; never set outside tests).  When set,
    {!ppo} keeps the full program order under every model — removing
    exactly the store→load relaxation PC's and WC's store buffers are
    allowed — so the axiomatic oracle wrongly forbids store-buffering
    outcomes the machine legitimately exhibits.  A sound harness must
    report observed ⊄ allowed and shrink the counterexample to the
    classic 2-thread SB shape. *)

val ppo : config -> Exec.t -> Rel.t
(** Preserved program order under the configuration. *)

val ppo_g : config -> Event.graph -> Rel.t
(** Graph-level {!ppo}: preserved program order depends only on the
    event graph, never on the candidate's rf/co choice. *)

val ghb_base_g : config -> Event.graph -> Rel.t
(** The static part of {!ghb}: [ppo] (plus fence order for PC/WC).
    A candidate's full ghb is this base unioned with its rf (SC) or
    rfe (PC/WC) edges, co, and fr — which is exactly the decomposition
    the incremental enumerator exploits. *)

val ghb : config -> Exec.t -> Rel.t
(** Global happens-before whose acyclicity defines consistency. *)

val sc_per_loc : Exec.t -> bool
(** Coherence: acyclic(po-loc ∪ rf ∪ co ∪ fr). *)

val consistent : config -> Exec.t -> bool
(** Full consistency judgement for a candidate execution. *)
