open Types

type t = {
  graph : Event.graph;
  rf : int array;
  co : Rel.t;
  values : value array;
}

let n_events t = Array.length t.graph.Event.events

let rf_rel t =
  let r = Rel.create (n_events t) in
  Array.iteri (fun rd w -> if w >= 0 then Rel.add r w rd) t.rf;
  r

let rfe t =
  let events = t.graph.Event.events in
  Rel.filter (fun w rd -> events.(w).Event.tid <> events.(rd).Event.tid) (rf_rel t)

let rfi t =
  let events = t.graph.Event.events in
  Rel.filter (fun w rd -> events.(w).Event.tid = events.(rd).Event.tid) (rf_rel t)

let fr t =
  let events = t.graph.Event.events in
  let n = n_events t in
  let r = Rel.create n in
  Array.iteri
    (fun rd w0 ->
      if w0 >= 0 then
        for w' = 0 to n - 1 do
          if w' <> w0
             && Event.is_write events.(w')
             && Event.same_loc events.(w0) events.(w')
             && Rel.mem t.co w0 w'
          then Rel.add r rd w'
        done)
    t.rf;
  (* Reads from a write w0: also fr to writes co-after w0 only; reads
     from init handled because init writes participate in co. *)
  r

let po_loc_g (graph : Event.graph) =
  let events = graph.Event.events in
  Rel.filter
    (fun a b -> Event.same_loc events.(a) events.(b))
    graph.Event.po

let po_loc t = po_loc_g t.graph

let fence_order_g (graph : Event.graph) =
  let events = graph.Event.events in
  let po = graph.Event.po in
  let n = Array.length events in
  let r = Rel.create n in
  Array.iter
    (fun f ->
      if Event.is_fence f then
        for a = 0 to n - 1 do
          if Rel.mem po a f.Event.id && not (Event.is_fence events.(a)) then
            for b = 0 to n - 1 do
              if Rel.mem po f.Event.id b && not (Event.is_fence events.(b))
              then Rel.add r a b
            done
        done)
    events;
  r

let fence_order t = fence_order_g t.graph

(* Compute the value of every event by fixpoint over rf and data
   sources.  Returns None if some value never settles (a cycle). *)
let compute_values (graph : Event.graph) rf =
  let events = graph.Event.events in
  let n = Array.length events in
  let values = Array.make n 0 in
  let known = Array.make n false in
  (* The load (if any) feeding a Store_reg through data_dep. *)
  let data_src = Array.make n (-1) in
  Rel.iter (fun l w -> data_src.(w) <- l) graph.Event.data_dep;
  let progress = ref true in
  let passes = ref 0 in
  while !progress && !passes <= n + 1 do
    progress := false;
    incr passes;
    Array.iter
      (fun e ->
        let open Event in
        if not known.(e.id) then begin
          let resolved v =
            values.(e.id) <- v;
            known.(e.id) <- true;
            progress := true
          in
          match e.dir with
          | F -> resolved 0
          | R ->
            let w = rf.(e.id) in
            if w >= 0 && known.(w) then resolved values.(w)
            else if w < 0 then resolved 0
          | W -> (
            match e.wsrc with
            | Some (Const v) -> resolved v
            | Some (Amo_swap v) -> resolved v
            | Some (Amo_fetch_add v) -> (
              match e.rmw_partner with
              | Some rd when known.(rd) -> resolved (values.(rd) + v)
              | _ -> ())
            | Some (Of_reg _) ->
              let src = data_src.(e.id) in
              if src < 0 then resolved 0
              else if known.(src) then resolved values.(src)
            | None -> resolved 0)
        end)
      events
  done;
  if Array.for_all (fun k -> k) known then Some values else None

(* RMW atomicity: the write of an AMO must be coherence-immediately
   after the write its read observed. *)
let atomic_ok (graph : Event.graph) rf co =
  let events = graph.Event.events in
  let n = Array.length events in
  let ok = ref true in
  Array.iter
    (fun e ->
      let open Event in
      if is_read e then
        match e.rmw_partner with
        | None -> ()
        | Some wr ->
          let w0 = rf.(e.id) in
          if w0 = wr then ok := false
          else if w0 >= 0 then begin
            if not (Rel.mem co w0 wr) then ok := false;
            for w' = 0 to n - 1 do
              if w' <> w0 && w' <> wr
                 && Event.is_write events.(w')
                 && Event.same_loc events.(w') events.(wr)
                 && Rel.mem co w0 w' && Rel.mem co w' wr
              then ok := false
            done
          end)
    events;
  !ok

let make graph ~rf ~co =
  if not (atomic_ok graph rf co) then None
  else
    match compute_values graph rf with
    | None -> None
    | Some values -> Some { graph; rf; co; values }

let outcome t =
  let events = t.graph.Event.events in
  (* Final register values: the po-latest read defining each register. *)
  let best : (tid * reg, int (* po slot *) * value) Hashtbl.t =
    Hashtbl.create 8
  in
  Array.iteri
    (fun i e ->
      let open Event in
      match e.dst with
      | Some r when e.tid >= 0 ->
        let key = (e.tid, r) in
        let slot = (e.po_index * 2) + if is_write e then 1 else 0 in
        let v = t.values.(i) in
        (match Hashtbl.find_opt best key with
         | Some (s, _) when s > slot -> ()
         | _ -> Hashtbl.replace best key (slot, v))
      | _ -> ())
    events;
  let regs = Hashtbl.fold (fun k (_, v) acc -> (k, v) :: acc) best [] in
  (* Final memory: coherence-maximal write per location. *)
  let mem = ref [] in
  Array.iteri
    (fun i e ->
      let open Event in
      if is_write e then
        match e.loc with
        | Some l ->
          let is_max = ref true in
          Array.iteri
            (fun j e' ->
              if j <> i && Event.is_write e' && Event.same_loc e e'
                 && Rel.mem t.co i j
              then is_max := false)
            events;
          if !is_max then mem := (l, t.values.(i)) :: !mem
        | None -> ())
    events;
  Outcome.make ~regs ~mem:!mem

let pp ppf t =
  let events = t.graph.Event.events in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i e ->
      Format.fprintf ppf "%a = %d" Event.pp e t.values.(i);
      if Event.is_read e && t.rf.(i) >= 0 then
        Format.fprintf ppf "  (rf <- e%d)" t.rf.(i);
      Format.fprintf ppf "@,")
    events;
  Format.fprintf ppf "@]"
