open Types

(* A program automorphism: a thread permutation σ together with a
   location permutation λ (over the used locations) and per-thread
   register bijections ρ_t, such that renaming thread t's program by
   (λ, ρ_t) yields thread σ(t)'s program verbatim — same instruction
   shapes, same constants, same faulting marks.  Such a renaming
   induces a permutation of compiled event ids that preserves every
   static relation (po, deps, fence order, ppo), so it maps candidate
   executions to candidate executions with the same consistency
   verdict: the enumerator explores one lex-least representative per
   orbit and multiplies counts/outcomes back (cf. the canonical-form
   machinery in Lit_test, which quotients single tests by the same
   renamings). *)

type t = {
  perm : int array;  (* event id -> event id *)
  inv : int array;  (* inverse of [perm] *)
  map_tid : int array;  (* σ *)
  map_loc : int array;  (* λ, indexed by loc; identity off the used set *)
  map_reg : (tid * reg, reg) Hashtbl.t;  (* ρ_t, keyed by (t, r) *)
}

let is_identity a = Array.for_all (fun i -> a.perm.(i) = i) a.inv

(* All permutations of [0 .. k-1], identity first, lexicographic. *)
let all_perms k =
  let rec go avail =
    if avail = [] then [ [] ]
    else
      List.concat_map
        (fun x ->
          List.map (fun p -> x :: p) (go (List.filter (fun y -> y <> x) avail)))
        avail
  in
  List.map Array.of_list (go (List.init k (fun i -> i)))

(* Try to infer the unique (λ, ρ) making σ an automorphism of the
   instruction streams: walk thread t against thread σ(t) position by
   position, unifying location and register operands greedily.  Any
   valid (λ, ρ) must satisfy exactly these first-occurrence equations,
   so failure here means no automorphism extends σ. *)
let infer_renaming threads (sigma : int array) =
  let exception No in
  let lam : (loc, loc) Hashtbl.t = Hashtbl.create 8 in
  let lam_inv : (loc, loc) Hashtbl.t = Hashtbl.create 8 in
  let rho : (tid * reg, reg) Hashtbl.t = Hashtbl.create 8 in
  let rho_inv : (tid * reg, reg) Hashtbl.t = Hashtbl.create 8 in
  let bind_loc x x' =
    (match Hashtbl.find_opt lam x with
     | Some y -> if y <> x' then raise No
     | None ->
       (match Hashtbl.find_opt lam_inv x' with
        | Some _ -> raise No
        | None ->
          Hashtbl.replace lam x x';
          Hashtbl.replace lam_inv x' x))
  in
  let bind_reg t r r' =
    let u = sigma.(t) in
    (match Hashtbl.find_opt rho (t, r) with
     | Some s -> if s <> r' then raise No
     | None ->
       (match Hashtbl.find_opt rho_inv (u, r') with
        | Some _ -> raise No
        | None ->
          Hashtbl.replace rho (t, r) r';
          Hashtbl.replace rho_inv (u, r') r))
  in
  let instr t a b =
    match (a, b) with
    | Instr.Load (r, x), Instr.Load (r', x') ->
      bind_loc x x';
      bind_reg t r r'
    | Instr.Load_dep (r, x, d), Instr.Load_dep (r', x', d') ->
      bind_loc x x';
      bind_reg t r r';
      bind_reg t d d'
    | Instr.Store (x, v), Instr.Store (x', v') ->
      if v <> v' then raise No;
      bind_loc x x'
    | Instr.Store_reg (x, r), Instr.Store_reg (x', r') ->
      bind_loc x x';
      bind_reg t r r'
    | Instr.Store_dep (x, v, d), Instr.Store_dep (x', v', d') ->
      if v <> v' then raise No;
      bind_loc x x';
      bind_reg t d d'
    | Instr.Fence, Instr.Fence -> ()
    | Instr.Ctrl r, Instr.Ctrl r' -> bind_reg t r r'
    | Instr.Amo (r, x, v), Instr.Amo (r', x', v') ->
      if v <> v' then raise No;
      bind_loc x x';
      bind_reg t r r'
    | Instr.Amo_add (r, x, v), Instr.Amo_add (r', x', v') ->
      if v <> v' then raise No;
      bind_loc x x';
      bind_reg t r r'
    | _ -> raise No
  in
  try
    Array.iteri
      (fun t instrs ->
        let instrs' = threads.(sigma.(t)) in
        if List.length instrs <> List.length instrs' then raise No;
        List.iter2 (instr t) instrs instrs')
      threads;
    Some (lam, rho)
  with No -> None

(* Build the induced event-id permutation from (σ, λ) against the
   compiled graph: init writes are ordered by ascending location, so
   the init for loc l maps to the init for λ(l); thread events occupy
   contiguous id blocks in thread order, so block t maps offset-wise
   onto block σ(t). *)
let event_perm (graph : Event.graph) sigma map_loc =
  let events = graph.Event.events in
  let n = Array.length events in
  let init_of : (loc, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      if Event.is_init e then
        match e.Event.loc with
        | Some l -> Hashtbl.replace init_of l e.Event.id
        | None -> ())
    events;
  let offset = Array.make (graph.Event.nthreads + 1) max_int in
  Array.iter
    (fun e ->
      if e.Event.tid >= 0 then
        offset.(e.Event.tid) <- min offset.(e.Event.tid) e.Event.id)
    events;
  let perm = Array.make n (-1) in
  try
    Array.iter
      (fun e ->
        let open Event in
        if is_init e then
          match e.loc with
          | Some l -> perm.(e.id) <- Hashtbl.find init_of map_loc.(l)
          | None -> raise Not_found
        else perm.(e.id) <- offset.(sigma.(e.tid)) + (e.id - offset.(e.tid)))
      events;
    Some perm
  with Not_found -> None

(* Full structural verification that [perm] is an automorphism of the
   compiled graph: event attributes carry over under (λ, ρ) and every
   static relation is preserved.  The inference above should guarantee
   this; verifying keeps a subtle compile-layout change from silently
   producing wrong orbits (the caller falls back to the trivial group
   if anything fails). *)
let verify (graph : Event.graph) perm map_loc rho =
  let events = graph.Event.events in
  let ok = ref true in
  Array.iter
    (fun e ->
      let open Event in
      let e' = events.(perm.(e.id)) in
      if e'.dir <> e.dir || e'.faulting <> e.faulting then ok := false;
      (match (e.loc, e'.loc) with
       | Some l, Some l' -> if map_loc.(l) <> l' then ok := false
       | None, None -> ()
       | _ -> ok := false);
      (match (e.dst, e'.dst) with
       | Some r, Some r' ->
         if e.tid >= 0 && Hashtbl.find_opt rho (e.tid, r) <> Some r' then
           ok := false
       | None, None -> ()
       | _ -> ok := false);
      (match (e.wsrc, e'.wsrc) with
       | Some (Const v), Some (Const v')
       | Some (Amo_swap v), Some (Amo_swap v')
       | Some (Amo_fetch_add v), Some (Amo_fetch_add v') ->
         if v <> v' then ok := false
       | Some (Of_reg r), Some (Of_reg r') ->
         if e.tid >= 0 && Hashtbl.find_opt rho (e.tid, r) <> Some r' then
           ok := false
       | None, None -> ()
       | _ -> ok := false);
      (match (e.rmw_partner, e'.rmw_partner) with
       | Some p, Some p' -> if perm.(p) <> p' then ok := false
       | None, None -> ()
       | _ -> ok := false))
    events;
  let rel_preserved r =
    Rel.iter (fun a b -> if not (Rel.mem r perm.(a) perm.(b)) then ok := false) r
  in
  rel_preserved graph.Event.po;
  rel_preserved graph.Event.addr_dep;
  rel_preserved graph.Event.data_dep;
  rel_preserved graph.Event.ctrl_dep;
  !ok

let identity (graph : Event.graph) =
  let n = Array.length graph.Event.events in
  let nlocs = max 1 graph.Event.nlocs in
  {
    perm = Array.init n (fun i -> i);
    inv = Array.init n (fun i -> i);
    map_tid = Array.init (max 1 graph.Event.nthreads) (fun i -> i);
    map_loc = Array.init nlocs (fun i -> i);
    map_reg = Hashtbl.create 1;
  }

let automorphisms threads (graph : Event.graph) =
  let nthreads = Array.length threads in
  let nlocs = max 1 graph.Event.nlocs in
  let disagreement = ref false in
  let autos =
    List.filter_map
      (fun sigma ->
        match infer_renaming threads sigma with
        | None -> None
        | Some (lam, rho) ->
          let map_loc = Array.init nlocs (fun i -> i) in
          Hashtbl.iter (fun l l' -> map_loc.(l) <- l') lam;
          (match event_perm graph sigma map_loc with
           | None ->
             disagreement := true;
             None
           | Some perm ->
             if not (verify graph perm map_loc rho) then begin
               disagreement := true;
               None
             end
             else begin
               let inv = Array.make (Array.length perm) 0 in
               Array.iteri (fun i j -> inv.(j) <- i) perm;
               Some { perm; inv; map_tid = sigma; map_loc; map_reg = rho }
             end))
      (all_perms nthreads)
  in
  (* The defining checks are closed under composition and inverse, so
     the surviving set is the full automorphism group.  If inference
     and event-level verification ever disagree (e.g. a compile-layout
     change), the group property is in doubt: fall back to the trivial
     group, which costs speed but never soundness. *)
  match autos with
  | a :: _ when is_identity a && not !disagreement -> autos
  | _ -> [ identity graph ]

let apply_outcome a (o : Outcome.t) =
  let regs =
    List.map
      (fun ((t, r), v) ->
        let r' =
          match Hashtbl.find_opt a.map_reg (t, r) with Some r' -> r' | None -> r
        in
        ((a.map_tid.(t), r'), v))
      o.Outcome.regs
  in
  let mem = List.map (fun (l, v) -> (a.map_loc.(l), v)) o.Outcome.mem in
  Outcome.make ~regs ~mem
