(** Program automorphisms for symmetry reduction.

    An automorphism is a thread permutation σ plus a location
    permutation λ and per-thread register bijections ρ_t under which
    the program's instruction streams are literally invariant (same
    shapes, same constants, same faulting marks).  It induces a
    permutation of compiled event ids preserving every static relation
    (po, dependencies, fence order, and hence ppo), so it acts on
    candidate executions: π·(rf, co) is a candidate with the same
    consistency verdict whose outcome is the (σ, λ, ρ)-renaming of the
    original's.  The enumerator ({!Enum.search}) explores one
    lexicographically least representative per orbit and multiplies
    counts and outcome sets back — exact, not approximate, which
    [test/test_model.ml]'s oracle suite checks against the seed
    enumerator.

    This is the same renaming quotient {!Lit_test.canonical_form} uses
    to deduplicate whole litmus tests; here it is applied within a
    single test's candidate space. *)

open Types

type t = {
  perm : int array;  (** event id permutation (w.r.t. a compiled graph) *)
  inv : int array;  (** inverse of [perm] *)
  map_tid : int array;  (** σ *)
  map_loc : int array;  (** λ, indexed by location; identity off the used set *)
  map_reg : (tid * reg, reg) Hashtbl.t;  (** ρ_t, keyed by [(t, r)] *)
}

val automorphisms : Instr.t list array -> Event.graph -> t list
(** The full automorphism group of the program (identity first,
    deterministic order).  The [graph] must be the result of
    [Event.compile] on exactly these threads (with whatever faulting
    set was used — faulting marks are part of the invariance check).
    Falls back to the trivial group if internal cross-checks fail, so
    the result is always safe to quotient by. *)

val is_identity : t -> bool

val apply_outcome : t -> Outcome.t -> Outcome.t
(** The outcome of π·ex given the outcome of ex: register keys map by
    (σ, ρ), memory keys by λ, values unchanged. *)
