(** Reference implementation of {!Rel}: the seed's dense boolean-matrix
    relations, kept verbatim as the executable oracle for the packed
    bitset rewrite.  Used only by tests ([test/test_rel.ml]) — clarity
    over asymptotics, by design. *)

type t

val create : int -> t
(** Empty relation over [n] elements. *)

val size : t -> int
val add : t -> int -> int -> unit
val mem : t -> int -> int -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val compose : t -> t -> t
(** [compose r s] is [{(a,c) | ∃b. r(a,b) ∧ s(b,c)}]. *)

val inverse : t -> t
val transitive_closure : t -> t
val is_acyclic : t -> bool
(** True when the relation's transitive closure is irreflexive. *)

val cycle_witness : t -> int list option
(** A cycle [e1; e2; …; e1] when one exists, for error messages. *)

val of_list : int -> (int * int) list -> t
val to_list : t -> (int * int) list
val filter : (int -> int -> bool) -> t -> t
val cardinal : t -> int
val copy : t -> t
val equal : t -> t -> bool
val iter : (int -> int -> unit) -> t -> unit

val topological_order : t -> int list option
(** A linear extension of the relation, or [None] if cyclic. *)
