(** Enumeration of candidate executions.

    Two engines share this module:

    {b Reference} ({!candidates}/{!count}): the seed's
    enumerate-then-check loop.  For every read it tries every
    same-location write (including the init write) as a reads-from
    source, and for every location every linearisation of the
    location's writes as the coherence order; candidates that violate
    value well-formedness or RMW atomicity are dropped by
    {!Exec.make}.  Exhaustive, simple, and retained as the executable
    oracle.

    {b Fast} ({!search}): a backtracking enumerator over the same
    (rf, co) choice space that maintains incremental transitive
    reachability for both consistency obligations (coherence-per-
    location and global happens-before) across choice points — each
    added rf/co/fr edge is an O(changed-edges) update, and any edge
    that would close a cycle prunes the whole subtree before it fans
    out.  With [~symmetry] (default) it additionally quotients the
    space by the program's automorphism group ({!Symm}): only the
    lexicographically least assignment per orbit is explored, and
    counts/outcome sets are multiplied back, exactly.
    [test/test_model.ml]'s oracle suite proves both engines yield
    identical consistent-outcome sets and counts across the litmus
    library, corpus and all models. *)

open Types

val epoch : int
(** Version of the enumeration engine, bumped on any change that could
    alter which outcomes are enumerated or how verdicts are computed
    (1 = seed enumerate-then-check; 2 = pruned symmetry-reduced
    backtracking).  Folded into the serve daemon's cache fingerprints
    ({!Ise_serve.Proto}), so results cached under an older engine miss
    rather than masquerade as current. *)

val candidates : Event.graph -> Exec.t Seq.t
(** All well-formed candidate executions (not yet filtered by any
    consistency axiom). *)

val count : Event.graph -> int
(** Number of well-formed candidates (forces the sequence). *)

(** {1 Fast path} *)

type stats = {
  group_order : int;  (** |G|: program automorphisms found *)
  rf_explored : int;  (** complete rf assignments surviving pruning *)
  leaves : int;  (** co-complete candidates reached (pre leader check) *)
  pruned_cycle : int;  (** choice subtrees cut by incremental reachability *)
  pruned_symmetry : int;  (** assignments cut by the lex-leader check *)
  consistent : int;  (** consistent candidates, orbit-multiplied *)
}

val search :
  ?symmetry:bool ->
  ?faulting:(tid * int) list ->
  Axiom.config ->
  Instr.t list array ->
  Outcome.Set.t * stats
(** The set of outcomes of consistent executions of the program under
    the configuration, computed by the pruned (and, by default,
    symmetry-reduced) backtracking enumerator.  Equal to filtering
    {!candidates} by {!Axiom.consistent} — the oracle tests hold the
    two engines to that contract; [stats.consistent] likewise equals
    the reference consistent-candidate count. *)
