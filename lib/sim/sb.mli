(** The store buffer: retired stores awaiting completion (§2.2).

    The reordering source of the whole study.  Under PC the buffer
    drains strictly in FIFO order, one outstanding store at a time;
    under WC any waiting entry may drain, several concurrently, and
    same-word stores coalesce.  Same-address ordering is always
    preserved (an entry never drains while an older entry to the same
    word is outstanding), and loads forward from the newest same-word
    entry. *)

type status =
  | Waiting  (** retired, not yet sent to the memory system *)
  | Inflight  (** drain transaction outstanding *)
  | Faulted of Ise_core.Fault.code  (** drain denied: imprecise exception *)

type entry = {
  seq : int;  (** retirement order *)
  e_addr : int;
  mutable e_data : int;
  mutable e_mask : int;
  mutable status : status;
}

type t

val create : capacity:int -> mode:Ise_model.Axiom.model -> t
val capacity : t -> int
val length : t -> int
val is_empty : t -> bool
val is_full : t -> bool
val inflight : t -> int
val has_fault : t -> bool
val entries : t -> entry list
(** Oldest first. *)

val push : t -> seq:int -> addr:int -> data:int -> mask:int -> bool
(** Inserts (coalescing under WC when a waiting same-word entry
    exists).  Returns [false] when full. *)

val drainable : t -> max_inflight:int -> entry list
(** Entries that may be sent to the memory system this cycle, given
    the consistency mode and the concurrency budget. *)

val mark_inflight : t -> entry -> unit
val complete : t -> entry -> unit
(** Removes a drained entry. *)

val mark_faulted : t -> entry -> Ise_core.Fault.code -> unit

val forward : t -> addr:int -> int option
(** Newest same-word entry's data, if any (store→load forwarding). *)

val take_all : t -> entry list
(** Removes and returns everything, oldest first — the
    exception-drain path. *)

val completed : t -> int
(** Stores drained to memory over the buffer's lifetime. *)

val occupancy_watermark : t -> int
val inflight_watermark : t -> int
