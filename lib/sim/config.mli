(** System parameters (Table 2) and experiment variants (Table 3).

    The default configuration mirrors the paper's QFlex setup: 16
    4-wide out-of-order cores with 128-entry ROBs and 32-entry store
    buffers, 64 KiB 4-way L1D (2-cycle), 1 MiB/tile 16-way L2
    (6-cycle), directory MESI over a 4×4 mesh with 3-cycle hops, and
    80-cycle memory. *)

type fsb_overflow =
  | Fsb_fatal
      (** treat overflow as a sizing bug and abort the run — the seed
          behaviour, correct while the FSB is sized to the store buffer *)
  | Fsb_stall
      (** backpressure: the FSBC re-attempts the append after a short
          stall, and the OS handler is invoked early so its GETs free
          ring entries while the drain is still in progress *)
  | Fsb_degrade
      (** drop-to-precise degradation: the record is withheld from the
          FSB and re-executed as an ordinary store after the handler
          resumes the core (a smaller batch per episode, never a lost
          store) *)

type t = {
  ncores : int;
  mesh_width : int;  (** tiles are a [mesh_width × mesh_width] grid *)
  dispatch_width : int;
  retire_width : int;
  rob_entries : int;
  sb_entries : int;
  l1_sets : int;
  l1_ways : int;
  l1_latency : int;
  l2_sets : int;  (** per tile *)
  l2_ways : int;
  l2_latency : int;
  block_bits : int;  (** 6 = 64-byte blocks *)
  noc_hop_latency : int;
  dram_load_latency : int;
  dram_store_latency : int;
      (** equal to load latency by default; the Table 3 skew study
          multiplies it *)
  consistency : Ise_model.Axiom.model;
  sc_speculative_loads : bool;
      (** timing-only knob for the SC baseline: loads issue out of
          order under ROB-contained speculation (no squash modelling —
          not for litmus runs) *)
  sc_store_issue_window : int;
      (** how far from the ROB head an SC store may start its memory
          transaction (1 = issue at head only; the ROB depth =
          unconstrained early issue) *)
  protocol_mode : Ise_core.Protocol.mode;
  sb_max_inflight : int;
      (** concurrent store-buffer drains (1 under PC order, more under
          WC / ASO checkpointing) *)
  fsb_entries : int;
  fsb_overflow : fsb_overflow;
      (** what the FSBC does when an append finds the FSB full *)
  fsbc_drain_cost : int;  (** cycles per faulting store drained to the FSB *)
  pipeline_flush_cost : int;
  page_bits : int;  (** 12 = 4 KiB pages *)
  einject_base : int;  (** base address of the EInject-reserved region *)
  einject_pages : int;
}

val default : t

val with_consistency : Ise_model.Axiom.model -> t -> t
val with_2x_memory : t -> t
(** Table 3 column: both load and store memory latency doubled. *)

val with_4x_store_skew : t -> t
(** Table 3 column: stores take 4× the load latency to complete. *)

val sb_inflight_for : Ise_model.Axiom.model -> int -> int
(** Drain concurrency appropriate for a model given the SB size. *)

val tile_of_core : t -> int -> int * int
(** Mesh coordinates of a core's tile. *)

val bank_of_block : t -> int -> int
(** Home L2 tile of a block (address-interleaved). *)

val hops : t -> int -> int -> int
(** Manhattan distance between two tiles' indices. *)

val pp : Format.formatter -> t -> unit
(** Renders the Table 2 parameter listing. *)
