(** The multicore machine: cores, memory hierarchy, EInject device,
    per-core FSBs, and the interface-operation trace.

    The OS is injected as hooks (see {!Ise_os.Handler} for the
    reference implementation), keeping the hardware model free of
    policy.  Every interface operation (DETECT/PUT/GET/APPLY/RESOLVE/
    RESUME) is traced so runs can be validated against the Table 5
    contract. *)

type hooks = {
  on_imprecise : int -> unit;
      (** imprecise store exception on a core: the FSB holds the
          faulting (and, same-stream, the clean) stores; the handler
          must eventually resume the core *)
  on_precise :
    core:int -> addr:int -> code:Ise_core.Fault.code -> retry:(unit -> unit)
    -> unit;
}

type t

val create : ?cfg:Config.t -> programs:Sim_instr.stream array -> unit -> t
(** One program per core; missing cores idle. *)

val set_hooks : t -> hooks -> unit
val cfg : t -> Config.t
val engine : t -> Engine.t
val mem : t -> Memsys.t
val einject : t -> Einject.t
val core : t -> int -> Core.t
val ncores : t -> int

val trace_event : t -> Ise_core.Contract.event -> unit
(** Used by cores and the OS to record interface operations. *)

val add_observer : t -> (Ise_core.Contract.event -> unit) -> unit
(** Registers a callback invoked on every interface operation as it
    happens, before trace recording — independent of
    {!set_trace_enabled} and the trace ring's capacity.  The chaos
    watchdog ({!Ise_chaos.Watchdog}) attaches this way so its
    invariants hold even on runs too long to record. *)

val set_trace_enabled : t -> bool -> unit

val run : ?max_cycles:int -> t -> unit
(** Runs to completion (every core done or terminated).
    @raise Failure on deadlock or when [max_cycles] is exceeded. *)

val cycles : t -> int
val total_retired : t -> int

val trace : t -> Ise_core.Contract.event list
(** Interface operations in global observation order. *)

val check_contract : t -> (unit, Ise_core.Contract.violation) result

val enable_timer_interrupts : t -> period:int -> handler_cycles:int -> unit
(** Fires a timer interrupt on every live core each [period] cycles;
    deliveries landing during exception handling are counted as
    deferred (the IE bit masks them). *)

val interrupts_taken : t -> int
val interrupts_deferred : t -> int

(** {1 Telemetry}

    Optional and off by default: without {!attach_telemetry} the
    machine performs no telemetry work. *)

val attach_telemetry : ?sample_period:int -> t -> Ise_telemetry.Sink.t -> unit
(** Wires the sink into every core, registers periodic probe sources
    (per-core FSB/SB/ROB occupancy, L1/L2 miss rates, NoC hop cycles)
    sampled every [sample_period] cycles (default 200), and starts
    emitting trace events.  Sampling is read-only, so an instrumented
    run takes exactly the same cycles as an uninstrumented one.  Call
    before {!run}. *)

val telemetry : t -> Ise_telemetry.Sink.t option

val record_final_stats : t -> unit
(** Mirrors end-of-run component statistics (retired counts, cache
    hits/misses, FSB totals, ...) into the sink's registry as absolute
    counters.  No-op without telemetry. *)

val read_word : t -> int -> int
(** Final memory value (oracle read). *)

val write_word : t -> int -> int -> unit
(** Pre-run memory initialisation. *)
