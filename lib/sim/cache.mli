(** Set-associative cache tag array with MESI states and LRU
    replacement.

    Caches are the simulator's timing model: the global word store in
    {!Memsys} is the single value oracle, and cache/directory state
    determines latency.  Entries are keyed by block number
    (address [lsr] block bits). *)

type state = Invalid | Shared | Exclusive | Modified

type t

val create : sets:int -> ways:int -> unit -> t

val lookup : t -> int -> state option
(** [lookup t block] returns the block's state if present (touches
    LRU), [None] on miss.  Records hit/miss statistics. *)

val probe : t -> int -> state option
(** Like {!lookup} but without LRU touch or statistics — used by the
    directory to inspect remote caches. *)

val insert : t -> int -> state -> int option
(** Installs a block, returning the evicted block number if a valid
    entry had to be replaced. *)

val set_state : t -> int -> state -> unit
(** Changes the state of a present block (no-op if absent). *)

val invalidate : t -> int -> unit

val hits : t -> int
val misses : t -> int
val accesses : t -> int

val miss_rate : t -> float
(** [misses / (hits + misses)]; [0.] before any access. *)

val evictions : t -> int
val occupancy : t -> int
val state_to_string : state -> string
