type hooks = {
  on_imprecise : int -> unit;
  on_precise :
    core:int -> addr:int -> code:Ise_core.Fault.code -> retry:(unit -> unit)
    -> unit;
}

type t = {
  cfg : Config.t;
  engine : Engine.t;
  einj : Einject.t;
  memsys : Memsys.t;
  mutable cores : Core.t array;
  mutable hooks : hooks option;
  mutable trace_rev : Ise_core.Contract.event list;
  mutable trace_enabled : bool;
  mutable trace_len : int;
  trace_limit : int;
  mutable interrupts_taken : int;
  mutable interrupts_deferred : int;
  mutable telemetry : Ise_telemetry.Sink.t option;
  mutable probe : Ise_telemetry.Probe.t option;
  mutable observers : (Ise_core.Contract.event -> unit) list;
}

let trace_event t ev =
  (* observers (the chaos watchdog) see every event, even when trace
     recording is disabled or the ring is full *)
  List.iter (fun f -> f ev) t.observers;
  if t.trace_enabled && t.trace_len < t.trace_limit then begin
    t.trace_rev <- ev :: t.trace_rev;
    t.trace_len <- t.trace_len + 1
  end

let add_observer t f = t.observers <- t.observers @ [ f ]

let create ?(cfg = Config.default) ~programs () =
  let engine = Engine.create () in
  let einj =
    Einject.create ~base:cfg.Config.einject_base ~pages:cfg.Config.einject_pages
      ~page_bits:cfg.Config.page_bits
  in
  let memsys = Memsys.create cfg engine einj in
  let t =
    { cfg; engine; einj; memsys; cores = [||]; hooks = None; trace_rev = [];
      trace_enabled = true; trace_len = 0; trace_limit = 1_000_000;
      interrupts_taken = 0; interrupts_deferred = 0; telemetry = None;
      probe = None; observers = [] }
  in
  let env : Core.env =
    {
      trace = (fun ev -> trace_event t ev);
      on_imprecise =
        (fun core ->
          match t.hooks with
          | Some h -> h.on_imprecise core
          | None -> failwith "Machine: no OS hooks installed");
      on_precise =
        (fun ~core ~addr ~code ~retry ->
          match t.hooks with
          | Some h -> h.on_precise ~core ~addr ~code ~retry
          | None -> failwith "Machine: no OS hooks installed");
    }
  in
  let n = Array.length programs in
  if n > cfg.Config.ncores then invalid_arg "Machine.create: too many programs";
  t.cores <-
    Array.init n (fun i ->
        Core.create cfg engine memsys env ~id:i ~program:programs.(i));
  t

let set_hooks t h = t.hooks <- Some h
let cfg t = t.cfg
let engine t = t.engine
let mem t = t.memsys
let einject t = t.einj
let core t i = t.cores.(i)
let ncores t = Array.length t.cores
let set_trace_enabled t b = t.trace_enabled <- b

let all_done t = Array.for_all Core.is_done t.cores

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

let telemetry t = t.telemetry

let attach_telemetry ?(sample_period = 200) t sink =
  if sample_period <= 0 then
    invalid_arg "Machine.attach_telemetry: sample_period must be positive";
  t.telemetry <- Some sink;
  Array.iter (fun c -> Core.set_telemetry c sink) t.cores;
  let registry = Ise_telemetry.Sink.registry sink in
  let trace = Ise_telemetry.Sink.trace sink in
  let probe =
    Ise_telemetry.Probe.create ~trace ~registry ~period:sample_period ()
  in
  Array.iteri
    (fun i c ->
      let pfx = Printf.sprintf "core%d" i in
      Ise_telemetry.Probe.add_source probe (pfx ^ "/fsb/occupancy") (fun () ->
          float_of_int (Ise_core.Fsb.pending (Core.fsb c)));
      Ise_telemetry.Probe.add_source probe (pfx ^ "/sb/occupancy") (fun () ->
          float_of_int (Core.sb_occupancy c));
      Ise_telemetry.Probe.add_source probe (pfx ^ "/rob/occupancy") (fun () ->
          float_of_int (Core.rob_occupancy c)))
    t.cores;
  Ise_telemetry.Probe.add_source probe "mem/l1/miss_rate" (fun () ->
      Memsys.l1_miss_rate t.memsys);
  Ise_telemetry.Probe.add_source probe "mem/l2/miss_rate" (fun () ->
      Memsys.l2_miss_rate t.memsys);
  Ise_telemetry.Probe.add_source probe "mem/noc/hop_cycles" (fun () ->
      float_of_int (Memsys.noc_hop_cycles t.memsys));
  t.probe <- Some probe;
  (* The sampling tick only reads state, so the extra wake-ups cannot
     change what any core does at any cycle: a telemetry-on run takes
     exactly the same number of cycles as a telemetry-off run. *)
  let rec tick () =
    if not (all_done t) then begin
      Ise_telemetry.Probe.sample probe ~now:(Engine.now t.engine);
      Engine.schedule_in t.engine sample_period tick
    end
  in
  Engine.schedule_in t.engine sample_period tick

let record_final_stats t =
  match t.telemetry with
  | None -> ()
  | Some sink ->
    let r = Ise_telemetry.Sink.registry sink in
    let set name v =
      Ise_telemetry.Registry.(set_counter (counter r name) v)
    in
    let setf name v = Ise_telemetry.Registry.(set (gauge r name) v) in
    set "machine/cycles" (Engine.now t.engine);
    set "machine/interrupts/taken" t.interrupts_taken;
    set "machine/interrupts/deferred" t.interrupts_deferred;
    Array.iteri
      (fun i c ->
        let pfx = Printf.sprintf "core%d" i in
        let s = Core.stats c in
        set (pfx ^ "/retired") s.Core.retired;
        set (pfx ^ "/loads") s.Core.loads;
        set (pfx ^ "/stores") s.Core.stores;
        set (pfx ^ "/fences") s.Core.fences;
        set (pfx ^ "/ise/imprecise_exceptions") s.Core.imprecise_exceptions;
        set (pfx ^ "/ise/faulting_stores") s.Core.faulting_stores;
        set (pfx ^ "/ise/precise_exceptions") s.Core.precise_exceptions;
        set (pfx ^ "/ise/drain_uarch_cycles") s.Core.drain_uarch_cycles;
        set (pfx ^ "/sb/full_stalls") s.Core.sb_full_stalls;
        set (pfx ^ "/rob/full_stalls") s.Core.rob_full_stalls;
        set (pfx ^ "/fsb/overflow_stalls") s.Core.fsb_overflow_stalls;
        set (pfx ^ "/fsb/overflow_drops") s.Core.fsb_overflow_drops;
        let fsb = Core.fsb c in
        set (pfx ^ "/fsb/appended") (Ise_core.Fsb.total_appended fsb);
        set (pfx ^ "/fsb/drained") (Ise_core.Fsb.total_drained fsb);
        set (pfx ^ "/fsb/high_watermark") (Ise_core.Fsb.high_watermark fsb))
      t.cores;
    set "mem/l1/hits" (Memsys.l1_hits t.memsys);
    set "mem/l1/misses" (Memsys.l1_misses t.memsys);
    set "mem/l2/hits" (Memsys.l2_hits t.memsys);
    set "mem/l2/misses" (Memsys.l2_misses t.memsys);
    set "mem/dram/accesses" (Memsys.dram_accesses t.memsys);
    set "mem/denials" (Memsys.denials t.memsys);
    set "mem/invalidations" (Memsys.invalidations t.memsys);
    set "mem/noc/total_hop_cycles" (Memsys.noc_hop_cycles t.memsys);
    setf "mem/l1/final_miss_rate" (Memsys.l1_miss_rate t.memsys);
    setf "mem/l2/final_miss_rate" (Memsys.l2_miss_rate t.memsys)

let run ?(max_cycles = 50_000_000) t =
  if t.hooks = None then failwith "Machine.run: no OS hooks installed";
  let rec loop () =
    if all_done t then ()
    else if Engine.now t.engine > max_cycles then
      failwith
        (Printf.sprintf "Machine.run: exceeded %d cycles (livelock?)" max_cycles)
    else begin
      ignore (Engine.run_due t.engine);
      let progress = ref false in
      Array.iter (fun c -> if Core.step c then progress := true) t.cores;
      if all_done t then ()
      else if !progress then begin
        Engine.advance t.engine;
        loop ()
      end
      else if Engine.skip_to_next_event t.engine then loop ()
      else if Engine.pending t.engine > 0 then begin
        (* events due this very cycle were scheduled during core
           stepping: run them before advancing *)
        Engine.advance t.engine;
        loop ()
      end
      else
        failwith
          (Printf.sprintf "Machine.run: deadlock at cycle %d"
             (Engine.now t.engine))
    end
  in
  loop ()

let cycles t = Engine.now t.engine

let total_retired t =
  Array.fold_left (fun acc c -> acc + (Core.stats c).Core.retired) 0 t.cores

let trace t = List.rev t.trace_rev

let check_contract t =
  let ordered_apply = t.cfg.Config.consistency <> Ise_model.Axiom.Wc in
  Ise_core.Contract.check ~ordered_apply ~ncores:(Array.length t.cores)
    (trace t)

(* Periodic timer interrupts on every core, like the OS activity the
   paper's workloads run under (§6.5). *)
let enable_timer_interrupts t ~period ~handler_cycles =
  let note name core =
    match t.telemetry with
    | None -> ()
    | Some sink ->
      Ise_telemetry.Trace.instant
        (Ise_telemetry.Sink.trace sink)
        ~cat:"irq" ~name ~tid:(Core.id core) (Engine.now t.engine)
  in
  let rec tick () =
    Array.iter
      (fun core ->
        if not (Core.is_done core) then
          if Core.interrupt core ~handler_cycles then begin
            t.interrupts_taken <- t.interrupts_taken + 1;
            note "timer_interrupt" core
          end
          else begin
            t.interrupts_deferred <- t.interrupts_deferred + 1;
            note "timer_interrupt_deferred" core
          end)
      t.cores;
    if not (all_done t) then Engine.schedule_in t.engine period tick
  in
  Engine.schedule_in t.engine period tick

let interrupts_taken t = t.interrupts_taken
let interrupts_deferred t = t.interrupts_deferred

let read_word t addr = Memsys.peek t.memsys addr
let write_word t addr v = Memsys.poke t.memsys addr v
