type status =
  | Waiting
  | Inflight
  | Faulted of Ise_core.Fault.code

type entry = {
  seq : int;
  e_addr : int;
  mutable e_data : int;
  mutable e_mask : int;
  mutable status : status;
}

type t = {
  cap : int;
  mode : Ise_model.Axiom.model;
  mutable items : entry list;  (* oldest first *)
  mutable n_inflight : int;
  mutable n_completed : int;
  mutable occ_watermark : int;
  mutable infl_watermark : int;
}

let create ~capacity ~mode =
  { cap = capacity; mode; items = []; n_inflight = 0; n_completed = 0;
    occ_watermark = 0; infl_watermark = 0 }

let capacity t = t.cap
let length t = List.length t.items
let is_empty t = t.items = []
let is_full t = length t >= t.cap
let inflight t = t.n_inflight

let has_fault t =
  List.exists (fun e -> match e.status with Faulted _ -> true | _ -> false)
    t.items

let entries t = t.items

let word addr = addr lsr 3

let merge_data old_data old_mask data mask =
  let d = ref old_data and m = old_mask lor mask in
  for byte = 0 to 7 do
    if mask land (1 lsl byte) <> 0 then begin
      let shift = byte * 8 in
      let keep = lnot (0xFF lsl shift) in
      d := (!d land keep) lor (data land (0xFF lsl shift))
    end
  done;
  (!d, m)

let push t ~seq ~addr ~data ~mask =
  let coalesced =
    match t.mode with
    | Ise_model.Axiom.Wc ->
      (* coalesce into a waiting same-word entry; safe under WC since
         no inter-address order is required *)
      (match
         List.find_opt
           (fun e -> word e.e_addr = word addr && e.status = Waiting)
           t.items
       with
       | Some e ->
         let d, m = merge_data e.e_data e.e_mask data mask in
         e.e_data <- d;
         e.e_mask <- m;
         true
       | None -> false)
    | Ise_model.Axiom.Sc | Ise_model.Axiom.Pc -> false
  in
  if coalesced then true
  else if is_full t then false
  else begin
    t.items <-
      t.items @ [ { seq; e_addr = addr; e_data = data; e_mask = mask;
                    status = Waiting } ];
    t.occ_watermark <- max t.occ_watermark (length t);
    true
  end

let older_same_word_outstanding t entry =
  List.exists
    (fun e ->
      e.seq < entry.seq && word e.e_addr = word entry.e_addr
      && e.status <> Waiting)
    t.items

let drainable t ~max_inflight =
  if t.n_inflight >= max_inflight then []
  else
    match t.mode with
    | Ise_model.Axiom.Pc | Ise_model.Axiom.Sc ->
      (* strict FIFO, one at a time *)
      (match t.items with
       | e :: _ when e.status = Waiting && t.n_inflight = 0 -> [ e ]
       | _ -> [])
    | Ise_model.Axiom.Wc ->
      let budget = max_inflight - t.n_inflight in
      let rec pick acc n = function
        | [] -> List.rev acc
        | _ when n = 0 -> List.rev acc
        | e :: rest ->
          if e.status = Waiting && not (older_same_word_outstanding t e) then
            pick (e :: acc) (n - 1) rest
          else pick acc n rest
      in
      pick [] budget t.items

let mark_inflight t e =
  e.status <- Inflight;
  t.n_inflight <- t.n_inflight + 1;
  t.infl_watermark <- max t.infl_watermark t.n_inflight

let complete t e =
  if e.status = Inflight then t.n_inflight <- t.n_inflight - 1;
  t.n_completed <- t.n_completed + 1;
  t.items <- List.filter (fun x -> x.seq <> e.seq) t.items

let mark_faulted t e code =
  if e.status = Inflight then t.n_inflight <- t.n_inflight - 1;
  e.status <- Faulted code

let forward t ~addr =
  let w = word addr in
  let rec newest acc = function
    | [] -> acc
    | e :: rest ->
      if word e.e_addr = w then newest (Some e) rest else newest acc rest
  in
  match newest None t.items with
  | Some e -> Some e.e_data
  | None -> None

let take_all t =
  let all = t.items in
  t.items <- [];
  t.n_inflight <- 0;
  all

let completed t = t.n_completed
let occupancy_watermark t = t.occ_watermark
let inflight_watermark t = t.infl_watermark
