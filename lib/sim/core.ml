type env = {
  trace : Ise_core.Contract.event -> unit;
  on_imprecise : int -> unit;
  on_precise :
    core:int -> addr:int -> code:Ise_core.Fault.code -> retry:(unit -> unit)
    -> unit;
}

type stats = {
  mutable retired : int;
  mutable loads : int;
  mutable stores : int;
  mutable fences : int;
  mutable imprecise_exceptions : int;
  mutable faulting_stores : int;
  mutable precise_exceptions : int;
  mutable drain_uarch_cycles : int;
  mutable sb_full_stalls : int;
  mutable rob_full_stalls : int;
  mutable fsb_overflow_stalls : int;
  mutable fsb_overflow_drops : int;
}

let fresh_stats () =
  { retired = 0; loads = 0; stores = 0; fences = 0; imprecise_exceptions = 0;
    faulting_stores = 0; precise_exceptions = 0; drain_uarch_cycles = 0;
    sb_full_stalls = 0; rob_full_stalls = 0; fsb_overflow_stalls = 0;
    fsb_overflow_drops = 0 }

(* Chaos plane hooks (see {!Ise_chaos}): consulted by the FSBC on each
   append.  [None] — the default — costs one option match. *)
type chaos_hooks = {
  ch_put_delay : unit -> int;
  ch_backpressure : unit -> bool;
}

type rstatus = Waiting | Executing | Done

type rob_entry = {
  r_seq : int;  (* == ROB position, monotonic *)
  instr : Sim_instr.t;
  mutable r_status : rstatus;
  mutable r_value : int;
  mutable r_addr : int;  (* resolved effective address; -1 unknown *)
  mutable r_data : int;
  mutable ready_at : int;  (* Nop completion cycle *)
  mutable prefetched : bool;  (* SC: exclusive prefetch sent *)
  (* renamed source operands: producer ROB seq, or -1 = committed
     register file.  Captured at dispatch so dependencies always point
     backwards even when architectural registers are reused. *)
  a_dep : int;  (* address dependency *)
  d_dep : int;  (* data dependency *)
  c_dep : int;  (* control (branch) dependency *)
}

type phase =
  | Running
  | Paused  (* an interrupt handler is executing (IE set) *)
  | Waiting_drains
  | Draining_fsb
  | In_handler
  | Terminated

(* Telemetry handles, resolved once at attach time so hot paths touch
   plain mutable cells instead of the registry's hash table.  [None]
   (the default) costs one option match per site and no allocation. *)
type tel = {
  t_sink : Ise_telemetry.Sink.t;
  t_drained : Ise_telemetry.Registry.counter;
  t_drain_faults : Ise_telemetry.Registry.counter;
  t_episodes : Ise_telemetry.Registry.counter;
  t_flushes : Ise_telemetry.Registry.counter;
}

let nregs = 64

type t = {
  cfg : Config.t;
  engine : Engine.t;
  mem : Memsys.t;
  env : env;
  core_id : int;
  stream : Sim_instr.stream;
  mutable stream_done : bool;
  mutable replay : Sim_instr.t list;
  regs : int array;
  producers : int array;
  rob : rob_entry option array;
  mutable rob_head : int;
  mutable rob_tail : int;
  sb : Sb.t;
  fsb_ : Ise_core.Fsb.t;
  mutable phase : phase;
  stats : stats;
  mutable progress : bool;
  mutable tel : tel option;
  mutable chaos : chaos_hooks option;
  mutable handler_invoked : bool;
      (* the OS hook has been called for the current episode (possibly
         early, under FSB-overflow stall backpressure) *)
  mutable overflow_replay : Ise_core.Fault.record list;
      (* records withheld from a full FSB under [Fsb_degrade]; they
         re-execute as ordinary stores after the handler resumes *)
  degraded_words : (int, unit) Hashtbl.t;
      (* word addresses with a withheld record this episode: later
         same-word records must degrade too, else the handler's S_OS
         apply of a newer write would be overwritten by the replayed
         older one (per-location order) *)
}

let create cfg engine mem env ~id ~program =
  {
    cfg;
    engine;
    mem;
    env;
    core_id = id;
    stream = program;
    stream_done = false;
    replay = [];
    regs = Array.make nregs 0;
    producers = Array.make nregs (-1);
    rob = Array.make cfg.Config.rob_entries None;
    rob_head = 0;
    rob_tail = 0;
    sb = Sb.create ~capacity:cfg.Config.sb_entries ~mode:cfg.Config.consistency;
    fsb_ =
      Ise_core.Fsb.create ~entries:cfg.Config.fsb_entries
        ~base:(0x7000_0000 + (id * 4096)) ();
    phase = Running;
    stats = fresh_stats ();
    progress = false;
    tel = None;
    chaos = None;
    handler_invoked = false;
    overflow_replay = [];
    degraded_words = Hashtbl.create 8;
  }

let id t = t.core_id
let fsb t = t.fsb_
let stats t = t.stats
let set_chaos t c = t.chaos <- c

let in_exception_drain t =
  match t.phase with
  | Waiting_drains | Draining_fsb -> true
  | Running | Paused | In_handler | Terminated -> false

let phase_name t =
  match t.phase with
  | Running -> "running"
  | Paused -> "paused"
  | Waiting_drains -> "waiting-drains"
  | Draining_fsb -> "draining-fsb"
  | In_handler -> "in-handler"
  | Terminated -> "terminated"
let reg t r = t.regs.(r)
let sb_occupancy t = Sb.length t.sb
let sb_occupancy_watermark t = Sb.occupancy_watermark t.sb
let sb_inflight_watermark t = Sb.inflight_watermark t.sb

let set_telemetry t sink =
  let registry = Ise_telemetry.Sink.registry sink in
  let name s = Printf.sprintf "core%d/%s" t.core_id s in
  t.tel <-
    Some
      { t_sink = sink;
        t_drained = Ise_telemetry.Registry.counter registry (name "sb/drained");
        t_drain_faults =
          Ise_telemetry.Registry.counter registry (name "sb/drain_faults");
        t_episodes =
          Ise_telemetry.Registry.counter registry (name "ise/episodes");
        t_flushes =
          Ise_telemetry.Registry.counter registry (name "rob/flushes") }

let rob_count t = t.rob_tail - t.rob_head
let rob_occupancy = rob_count

let slot t seq = seq mod Array.length t.rob

let get_entry t seq =
  if seq < t.rob_head || seq >= t.rob_tail then None
  else t.rob.(slot t seq)

let entry_live t (e : rob_entry) =
  match get_entry t e.r_seq with Some e' -> e' == e | None -> false

(* ------------------------------------------------------------------ *)
(* Register dataflow (renamed at dispatch)                             *)

(* A producer seq is ready when it has completed or already retired
   (its value is then in the committed register file). *)
let dep_ready t seq =
  seq < 0
  ||
  match get_entry t seq with
  | Some e -> e.r_status = Done
  | None -> true

let dep_value t seq ~reg_fallback =
  if seq < 0 then t.regs.(reg_fallback)
  else
    match get_entry t seq with
    | Some e -> e.r_value
    | None -> t.regs.(reg_fallback)

let addr_ready t (e : rob_entry) (a : Sim_instr.addr_expr) =
  if dep_ready t e.a_dep then Some a.base else None

let data_ready t (e : rob_entry) = function
  | Sim_instr.Imm v -> Some v
  | Sim_instr.From_reg r ->
    if dep_ready t e.d_dep then Some (dep_value t e.d_dep ~reg_fallback:r)
    else None

(* ------------------------------------------------------------------ *)
(* Retirement                                                          *)

let word addr = addr lsr 3

let commit t e =
  (match e.instr with
   | Sim_instr.Ld { dst; _ } | Sim_instr.Amo { dst; _ } ->
     t.regs.(dst) <- e.r_value;
     if t.producers.(dst) = e.r_seq then t.producers.(dst) <- -1
   | _ -> ());
  (match e.instr with
   | Sim_instr.Ld _ -> t.stats.loads <- t.stats.loads + 1
   | Sim_instr.St _ -> t.stats.stores <- t.stats.stores + 1
   | Sim_instr.Fence -> t.stats.fences <- t.stats.fences + 1
   | _ -> ());
  t.rob.(slot t e.r_seq) <- None;
  t.rob_head <- t.rob_head + 1;
  t.stats.retired <- t.stats.retired + 1;
  t.progress <- true

let retire t =
  let sc = t.cfg.Config.consistency = Ise_model.Axiom.Sc in
  let rec loop n =
    if n >= t.cfg.Config.retire_width then ()
    else
      match get_entry t t.rob_head with
      | None -> ()
      | Some e -> (
        match e.instr with
        | Sim_instr.Fence ->
          if Sb.is_empty t.sb && Sb.inflight t.sb = 0 then begin
            e.r_status <- Done;
            commit t e;
            loop (n + 1)
          end
        | Sim_instr.St _ when not sc ->
          if e.r_status = Done then begin
            if Sb.push t.sb ~seq:e.r_seq ~addr:e.r_addr ~data:e.r_data
                 ~mask:0xFF
            then begin
              commit t e;
              loop (n + 1)
            end
            else t.stats.sb_full_stalls <- t.stats.sb_full_stalls + 1
          end
        | _ ->
          if e.r_status = Done then begin
            commit t e;
            loop (n + 1)
          end)
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Imprecise exception flow (§5.3)                                     *)

let record_of_sb_entry t (e : Sb.entry) =
  let code =
    match e.Sb.status with Sb.Faulted c -> c | _ -> Ise_core.Fault.No_exception
  in
  { Ise_core.Fault.core = t.core_id; seq = e.Sb.seq; addr = e.Sb.e_addr;
    data = e.Sb.e_data; byte_mask = e.Sb.e_mask; code }

(* Flush the pipeline: unretired instructions go back to the replay
   queue (they re-execute after the handler), renames are reset. *)
let flush_pipeline t =
  (match t.tel with
   | None -> ()
   | Some tel -> Ise_telemetry.Registry.incr tel.t_flushes);
  let replayed = ref [] in
  for seq = t.rob_tail - 1 downto t.rob_head do
    match t.rob.(slot t seq) with
    | Some e ->
      replayed := e.instr :: !replayed;
      t.rob.(slot t seq) <- None
    | None -> ()
  done;
  t.replay <- !replayed @ t.replay;
  t.rob_head <- t.rob_tail;
  Array.fill t.producers 0 nregs (-1)

let flush_and_invoke_handler t ~drain_cycles =
  (match t.tel with
   | None -> ()
   | Some tel ->
     let tr = Ise_telemetry.Sink.trace tel.t_sink in
     let now = Engine.now t.engine in
     Ise_telemetry.Trace.span_end tr ~cat:"ise" ~name:"fsb_drain"
       ~tid:t.core_id now;
     Ise_telemetry.Trace.instant tr ~cat:"ise" ~name:"pipeline_flush"
       ~tid:t.core_id now);
  flush_pipeline t;
  t.stats.drain_uarch_cycles <-
    t.stats.drain_uarch_cycles + drain_cycles + t.cfg.Config.pipeline_flush_cost;
  t.phase <- In_handler;
  if not t.handler_invoked then begin
    t.handler_invoked <- true;
    Engine.schedule_in t.engine t.cfg.Config.pipeline_flush_cost (fun () ->
        if t.phase <> Terminated then t.env.on_imprecise t.core_id)
  end

(* Under [Fsb_stall] a full FSB invokes the handler before the drain
   completes: its GETs free ring entries so the stalled FSBC can make
   progress.  The handler polls until the drain finishes. *)
let invoke_handler_early t =
  if not t.handler_invoked then begin
    t.handler_invoked <- true;
    Engine.schedule_in t.engine 1 (fun () ->
        if t.phase <> Terminated then t.env.on_imprecise t.core_id)
  end

(* A store dropped-to-precise re-executes after resume as an ordinary
   store with the record's payload. *)
let sim_instr_of_record (r : Ise_core.Fault.record) =
  Sim_instr.St
    { addr = Sim_instr.addr r.Ise_core.Fault.addr;
      data = Sim_instr.Imm r.Ise_core.Fault.data }

let start_fsb_drain t =
  t.phase <- Draining_fsb;
  (match t.tel with
   | None -> ()
   | Some tel ->
     Ise_telemetry.Trace.span_begin
       (Ise_telemetry.Sink.trace tel.t_sink)
       ~cat:"ise" ~name:"fsb_drain" ~tid:t.core_id (Engine.now t.engine));
  let entries = Sb.take_all t.sb in
  let tagged =
    List.map
      (fun (e : Sb.entry) ->
        let faulting =
          match e.Sb.status with Sb.Faulted _ -> true | _ -> false
        in
        { Ise_core.Protocol.payload = e; faulting })
      entries
  in
  let routing = Ise_core.Protocol.route t.cfg.Config.protocol_mode tagged in
  let drain_cost = t.cfg.Config.fsbc_drain_cost in
  let remaining =
    ref
      (List.length routing.Ise_core.Protocol.to_fsb
       + List.length routing.Ise_core.Protocol.to_memory)
  in
  let drain_cycles = ref 0 in
  let finish_if_ready () =
    if !remaining = 0 && t.phase = Draining_fsb then
      flush_and_invoke_handler t ~drain_cycles:!drain_cycles
  in
  let trace_put record =
    t.env.trace
      (Ise_core.Contract.Put
         { core = t.core_id; cycle = Engine.now t.engine; record });
    match t.tel with
    | None -> ()
    | Some tel ->
      Ise_telemetry.Trace.instant
        (Ise_telemetry.Sink.trace tel.t_sink)
        ~cat:"ise" ~name:"PUT" ~tid:t.core_id
        ~args:
          [ ("seq", Ise_telemetry.Json.Int record.Ise_core.Fault.seq);
            ("addr", Ise_telemetry.Json.Int record.Ise_core.Fault.addr) ]
        (Engine.now t.engine)
  in
  (* Append one record, honouring chaos backpressure and the configured
     overflow policy; [k] continues once the record is disposed of
     (appended, or withheld under [Fsb_degrade]). *)
  let put_record record k =
    let degrade () =
      t.stats.fsb_overflow_drops <- t.stats.fsb_overflow_drops + 1;
      Hashtbl.replace t.degraded_words (record.Ise_core.Fault.addr lsr 3) ();
      t.overflow_replay <- t.overflow_replay @ [ record ];
      remaining := !remaining - 1;
      finish_if_ready ();
      k ()
    in
    let rec attempt () =
      if t.phase = Terminated then ()
      else if
        Hashtbl.length t.degraded_words > 0
        && Hashtbl.mem t.degraded_words (record.Ise_core.Fault.addr lsr 3)
      then degrade ()
      else
        let forced =
          match t.chaos with Some c -> c.ch_backpressure () | None -> false
        in
        if (not forced) && Ise_core.Fsb.fsbc_append t.fsb_ record then begin
          trace_put record;
          drain_cycles := !drain_cycles + drain_cost;
          remaining := !remaining - 1;
          finish_if_ready ();
          k ()
        end
        else if forced then begin
          (* transient FSBC-port backpressure: the plane bounds it, so
             plain retry converges without anything being freed *)
          t.stats.fsb_overflow_stalls <- t.stats.fsb_overflow_stalls + 1;
          retry ()
        end
        else begin
          match t.cfg.Config.fsb_overflow with
          | Config.Fsb_fatal ->
            failwith "FSB overflow: sized below the store buffer"
          | Config.Fsb_stall ->
            (* genuine overflow: stall this append and invoke the
               handler early — its GETs free ring entries mid-drain *)
            t.stats.fsb_overflow_stalls <- t.stats.fsb_overflow_stalls + 1;
            invoke_handler_early t;
            retry ()
          | Config.Fsb_degrade -> degrade ()
        end
    and retry () =
      let backoff = max 1 (drain_cost * 4) in
      drain_cycles := !drain_cycles + backoff;
      Engine.schedule_in t.engine backoff attempt
    in
    attempt ()
  in
  let chaos_put_delay () =
    match t.chaos with Some c -> c.ch_put_delay () | None -> 0
  in
  (* The FSBC writes the routed entries to the FSB as a sequential
     chain, one per drain slot: each append starts only when its
     predecessor has been disposed of, so per-record chaos delays and
     overflow stalls cannot reorder the PUT stream (interface rule 1) *)
  let rec append_chain = function
    | [] -> ()
    | (e : Sb.entry) :: rest ->
      Engine.schedule_in t.engine (drain_cost + chaos_put_delay ()) (fun () ->
          if t.phase <> Terminated then
            put_record (record_of_sb_entry t e) (fun () -> append_chain rest))
  in
  append_chain routing.Ise_core.Protocol.to_fsb;
  (* Split stream: clean stores drain directly to memory, in FIFO
     order; any of them may fault in turn and joins the FSB late —
     the ordering hazard of §4.5. *)
  let rec drain_to_memory = function
    | [] -> ()
    | (e : Sb.entry) :: rest ->
      Memsys.request t.mem ~core:t.core_id ~addr:e.Sb.e_addr
        (Memsys.Write { data = e.Sb.e_data; mask = e.Sb.e_mask })
        (fun result ->
          if t.phase = Terminated then ()
          else
            match result with
            | Memsys.Value _ ->
              remaining := !remaining - 1;
              finish_if_ready ();
              drain_to_memory rest
            | Memsys.Denied code ->
              t.stats.faulting_stores <- t.stats.faulting_stores + 1;
              let record =
                { (record_of_sb_entry t e) with Ise_core.Fault.code }
              in
              put_record record (fun () -> drain_to_memory rest))
  in
  if !remaining = 0 then
    Engine.schedule_in t.engine 1 (fun () -> finish_if_ready ())
  else drain_to_memory routing.Ise_core.Protocol.to_memory

let begin_exception_episode t =
  t.phase <- Waiting_drains;
  t.stats.imprecise_exceptions <- t.stats.imprecise_exceptions + 1;
  (match t.tel with
   | None -> ()
   | Some tel ->
     Ise_telemetry.Registry.incr tel.t_episodes;
     let tr = Ise_telemetry.Sink.trace tel.t_sink in
     let now = Engine.now t.engine in
     Ise_telemetry.Trace.instant tr ~cat:"ise" ~name:"DETECT" ~tid:t.core_id
       now;
     Ise_telemetry.Trace.span_begin tr ~cat:"ise" ~name:"episode"
       ~tid:t.core_id now);
  t.env.trace
    (Ise_core.Contract.Detect { core = t.core_id; cycle = Engine.now t.engine })

(* Leaving a paused state (interrupt handler return, precise-fault
   retry): an imprecise exception detected meanwhile starts now. *)
let unpause t =
  if t.phase = Paused then
    if Sb.has_fault t.sb then begin_exception_episode t
    else t.phase <- Running

let on_drain_response t (entry : Sb.entry) result =
  match result with
  | Memsys.Value _ ->
    (match t.tel with
     | None -> ()
     | Some tel ->
       Ise_telemetry.Registry.incr tel.t_drained;
       Ise_telemetry.Trace.instant
         (Ise_telemetry.Sink.trace tel.t_sink)
         ~cat:"sb" ~name:"store_drain" ~tid:t.core_id
         ~args:[ ("addr", Ise_telemetry.Json.Int entry.Sb.e_addr) ]
         (Engine.now t.engine));
    Sb.complete t.sb entry
  | Memsys.Denied code ->
    (match t.tel with
     | None -> ()
     | Some tel ->
       Ise_telemetry.Registry.incr tel.t_drain_faults;
       Ise_telemetry.Trace.instant
         (Ise_telemetry.Sink.trace tel.t_sink)
         ~cat:"sb" ~name:"store_fault" ~tid:t.core_id
         ~args:[ ("addr", Ise_telemetry.Json.Int entry.Sb.e_addr) ]
         (Engine.now t.engine));
    Sb.mark_faulted t.sb entry code;
    t.stats.faulting_stores <- t.stats.faulting_stores + 1;
    (* while an interrupt handler executes (IE set), the detection is
       deferred: the episode starts when the handler returns (§5.3) *)
    if t.phase = Running then begin_exception_episode t

let drain_sb t =
  let picks = Sb.drainable t.sb ~max_inflight:t.cfg.Config.sb_max_inflight in
  List.iter
    (fun (entry : Sb.entry) ->
      Sb.mark_inflight t.sb entry;
      t.progress <- true;
      Memsys.request t.mem ~core:t.core_id ~addr:entry.Sb.e_addr
        (Memsys.Write { data = entry.Sb.e_data; mask = entry.Sb.e_mask })
        (fun result -> on_drain_response t entry result))
    picks

(* ------------------------------------------------------------------ *)
(* Issue                                                               *)

(* A precise exception flushes the pipeline (the faulting instruction
   and everything younger re-execute from the replay queue) and stalls
   the core for the handler's duration.  If an imprecise store
   exception was detected meanwhile, it takes priority at unpause
   (§5.3). *)
let take_precise_fault t ~addr ~code =
  t.stats.precise_exceptions <- t.stats.precise_exceptions + 1;
  flush_pipeline t;
  if t.phase = Running then t.phase <- Paused;
  t.env.on_precise ~core:t.core_id ~addr ~code ~retry:(fun () -> unpause t)

let forward_from_rob t (load : rob_entry) =
  (* nearest older store to the same word: forward if resolved; block
     if unresolved (conservative memory disambiguation) *)
  let rec scan seq =
    if seq < t.rob_head then `Miss
    else
      match t.rob.(slot t seq) with
      | Some e -> (
        match e.instr with
        | Sim_instr.St _ ->
          if e.r_addr < 0 then `Block  (* unresolved store address *)
          else if word e.r_addr = word load.r_addr then
            (* resolved same-word store: forward its data whether or
               not the write has reached memory yet *)
            `Forward e.r_data
          else scan (seq - 1)
        | Sim_instr.Amo _ when e.r_status <> Done -> `Block
        | Sim_instr.Amo _ ->
          (* a completed AMO's write is already in memory *)
          scan (seq - 1)
        | _ -> scan (seq - 1))
      | None -> scan (seq - 1)
  in
  scan (load.r_seq - 1)

let issue_load t (e : rob_entry) =
  e.r_status <- Executing;
  t.progress <- true;
  match forward_from_rob t e with
  | `Forward v ->
    Engine.schedule_in t.engine t.cfg.Config.l1_latency (fun () ->
        if entry_live t e then begin
          e.r_value <- v;
          e.r_status <- Done
        end)
  | `Block -> e.r_status <- Waiting  (* retry next cycle *)
  | `Miss -> (
    match Sb.forward t.sb ~addr:e.r_addr with
    | Some v ->
      Engine.schedule_in t.engine t.cfg.Config.l1_latency (fun () ->
          if entry_live t e then begin
            e.r_value <- v;
            e.r_status <- Done
          end)
    | None ->
      let send () =
        Memsys.request t.mem ~core:t.core_id ~addr:e.r_addr Memsys.Read
          (fun result ->
            if entry_live t e then
              match result with
              | Memsys.Value v ->
                e.r_value <- v;
                e.r_status <- Done
              | Memsys.Denied code ->
                take_precise_fault t ~addr:e.r_addr ~code)
      in
      send ())

let issue_amo t (e : rob_entry) op =
  e.r_status <- Executing;
  t.progress <- true;
  let send () =
    Memsys.request t.mem ~core:t.core_id ~addr:e.r_addr (Memsys.Atomic op)
      (fun result ->
        if entry_live t e then
          match result with
          | Memsys.Value old ->
            e.r_value <- old;
            e.r_status <- Done
          | Memsys.Denied code ->
            take_precise_fault t ~addr:e.r_addr ~code)
  in
  send ()

let issue_sc_store t (e : rob_entry) =
  e.r_status <- Executing;
  t.progress <- true;
  let send () =
    Memsys.request t.mem ~core:t.core_id ~addr:e.r_addr
      (Memsys.Write { data = e.r_data; mask = 0xFF })
      (fun result ->
        if entry_live t e then
          match result with
          | Memsys.Value _ -> e.r_status <- Done
          | Memsys.Denied code ->
            (* without a store buffer the fault is precise (§2.3) *)
            take_precise_fault t ~addr:e.r_addr ~code)
  in
  send ()

let issue t =
  let sc = t.cfg.Config.consistency = Ise_model.Axiom.Sc in
  let pc = t.cfg.Config.consistency = Ise_model.Axiom.Pc in
  let now = Engine.now t.engine in
  let all_older_done = ref true in
  let older_loadlike_done = ref true in
  let older_unresolved_store = ref false in
  let older_store_unissued = ref false in
  let fence_pending = ref false in
  (* same-word tracking for WC po-loc: word -> oldest incomplete access *)
  let incomplete_words = Hashtbl.create 8 in
  let blocked = ref false in
  let seq = ref t.rob_head in
  while (not !blocked) && !seq < t.rob_tail do
    (match t.rob.(slot t !seq) with
     | None -> ()
     | Some e ->
       let is_head = e.r_seq = t.rob_head in
       (* try to make progress on this entry *)
       (match (e.instr, e.r_status) with
        | Sim_instr.Nop _, Waiting ->
          if now >= e.ready_at then begin
            e.r_status <- Done;
            t.progress <- true
          end
        | Sim_instr.Ctrl _, Waiting ->
          if dep_ready t e.c_dep then begin
            e.r_status <- Done;
            t.progress <- true
          end
        | Sim_instr.St { addr; data }, Waiting -> (
          match (addr_ready t e addr, data_ready t e data) with
          | Some a, Some d ->
            e.r_addr <- a;
            e.r_data <- d;
            if sc then begin
              (* SC without a store buffer: an exclusive prefetch warms
                 the block as soon as the address resolves, and the
                 write itself performs at the ROB head, so every store
                 pays a short commit-time latency (§2.3) *)
              if (not e.prefetched)
                 && e.r_seq - t.rob_head < t.cfg.Config.sc_store_issue_window
              then begin
                e.prefetched <- true;
                Memsys.request t.mem ~core:t.core_id ~addr:a
                  Memsys.Prefetch_exclusive (fun _ -> ())
              end;
              if is_head && (not !fence_pending) && not !older_store_unissued
              then issue_sc_store t e
            end
            else begin
              e.r_status <- Done;
              t.progress <- true
            end
          | _ -> ())
        | Sim_instr.St _, Done when sc && is_head ->
          ()  (* impossible: SC stores are Done only after completion *)
        | Sim_instr.Ld { addr; _ }, Waiting -> (
          match addr_ready t e addr with
          | Some a ->
            e.r_addr <- a;
            let word_blocked = Hashtbl.mem incomplete_words (word a) in
            let eligible =
              (not !fence_pending)
              && (not word_blocked)
              && (if sc then
                    if t.cfg.Config.sc_speculative_loads then
                      not !older_unresolved_store
                    else !all_older_done
                  else if pc then
                    !older_loadlike_done && not !older_unresolved_store
                  else not !older_unresolved_store)
            in
            if eligible then issue_load t e
          | None -> ())
        | Sim_instr.Amo { addr; op; _ }, Waiting -> (
          match addr_ready t e addr with
          | Some a ->
            e.r_addr <- a;
            if is_head && Sb.is_empty t.sb && Sb.inflight t.sb = 0 then
              issue_amo t e op
          | None -> ())
        | _ -> ());
       (* update ordering context from this entry's (possibly new) state *)
       (match e.instr with
        | Sim_instr.Ctrl _ when e.r_status <> Done ->
          (* no branch speculation: nothing younger issues *)
          blocked := true
        | Sim_instr.Fence when e.r_status <> Done -> fence_pending := true
        | Sim_instr.St _ ->
          (* unresolved store addresses block younger loads (no memory
             disambiguation speculation); resolved stores are handled
             by ROB/SB forwarding *)
          if e.r_addr < 0 then older_unresolved_store := true;
          if e.r_status = Waiting then older_store_unissued := true
        | Sim_instr.Ld _ | Sim_instr.Amo _ ->
          if e.r_status <> Done then begin
            older_loadlike_done := false;
            (* same-word load-load order (CoRR); an address-dependent
               older load with an unknown address cannot block younger
               loads by word, which is acceptable because dependent
               loads are ordered by their dependency anyway *)
            if e.r_addr >= 0 then
              Hashtbl.replace incomplete_words (word e.r_addr) ()
          end
        | _ -> ());
       if e.r_status <> Done then all_older_done := false);
    incr seq
  done

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

let next_instr t =
  match t.replay with
  | i :: rest ->
    t.replay <- rest;
    Some i
  | [] ->
    if t.stream_done then None
    else (
      match t.stream () with
      | Some i -> Some i
      | None ->
        t.stream_done <- true;
        None)

let dispatch t =
  let dispatched = ref 0 in
  let stop = ref false in
  while (not !stop) && !dispatched < t.cfg.Config.dispatch_width do
    if rob_count t >= t.cfg.Config.rob_entries then begin
      t.stats.rob_full_stalls <- t.stats.rob_full_stalls + 1;
      stop := true
    end
    else
      match next_instr t with
      | None -> stop := true
      | Some instr ->
        let producer r = t.producers.(r) in
        let a_dep, d_dep, c_dep =
          match instr with
          | Sim_instr.Ld { addr; _ } | Sim_instr.Amo { addr; _ } ->
            ((match addr.Sim_instr.dep with Some r -> producer r | None -> -1),
             -1, -1)
          | Sim_instr.St { addr; data } ->
            ((match addr.Sim_instr.dep with Some r -> producer r | None -> -1),
             (match data with
              | Sim_instr.From_reg r -> producer r
              | Sim_instr.Imm _ -> -1),
             -1)
          | Sim_instr.Ctrl r -> (-1, -1, producer r)
          | Sim_instr.Fence | Sim_instr.Nop _ -> (-1, -1, -1)
        in
        let e =
          { r_seq = t.rob_tail; instr; r_status = Waiting; r_value = 0;
            r_addr = -1; r_data = 0; ready_at = 0; prefetched = false;
            a_dep; d_dep; c_dep }
        in
        (match instr with
         | Sim_instr.Nop n ->
           e.ready_at <- Engine.now t.engine + max 1 n;
           (* wake the machine when the nop completes *)
           Engine.schedule_in t.engine (max 1 n) (fun () -> ())
         | Sim_instr.Ld { dst; _ } | Sim_instr.Amo { dst; _ } ->
           t.producers.(dst) <- e.r_seq
         | _ -> ());
        t.rob.(slot t e.r_seq) <- Some e;
        t.rob_tail <- t.rob_tail + 1;
        incr dispatched;
        t.progress <- true
  done

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)

let step t =
  t.progress <- false;
  (match t.phase with
   | Running ->
     retire t;
     issue t;
     drain_sb t;
     dispatch t
   | Paused ->
     (* the interrupt handler runs; retired stores keep draining in
        the background — no store-buffer drain is required to take an
        interrupt (§5.3) *)
     drain_sb t
   | Waiting_drains ->
     if Sb.inflight t.sb = 0 then begin
       start_fsb_drain t;
       t.progress <- true
     end
   | Draining_fsb | In_handler | Terminated -> ());
  t.progress

let is_done t =
  match t.phase with
  | Terminated -> true
  | Running ->
    t.stream_done && t.replay = [] && rob_count t = 0 && Sb.is_empty t.sb
    && Sb.inflight t.sb = 0
  | _ -> false

(* Interrupt delivery: only a Running core accepts an interrupt (the
   IE bit is set during exception handling and while another handler
   runs).  Returns whether the interrupt was taken. *)
let interrupt t ~handler_cycles =
  match t.phase with
  | Running ->
    t.phase <- Paused;
    Engine.schedule_in t.engine (max 1 handler_cycles) (fun () ->
        (* exceptions detected while the interrupt handler ran are
           taken now, in order, before user execution resumes *)
        unpause t);
    true
  | Paused | Waiting_drains | Draining_fsb | In_handler | Terminated -> false

let is_terminated t = t.phase = Terminated

let in_episode t =
  match t.phase with
  | Waiting_drains | Draining_fsb | In_handler -> true
  | Running | Paused | Terminated -> false

let terminate t =
  (match t.tel with
   | None -> ()
   | Some tel when in_episode t ->
     let tr = Ise_telemetry.Sink.trace tel.t_sink in
     let now = Engine.now t.engine in
     Ise_telemetry.Trace.instant tr ~cat:"ise" ~name:"TERMINATE"
       ~tid:t.core_id now;
     Ise_telemetry.Trace.span_end tr ~cat:"ise" ~name:"episode" ~tid:t.core_id
       now
   | Some _ -> ());
  t.env.trace
    (Ise_core.Contract.Terminate
       { core = t.core_id; cycle = Engine.now t.engine });
  t.phase <- Terminated;
  t.handler_invoked <- false;
  t.overflow_replay <- [];
  Hashtbl.reset t.degraded_words;
  t.replay <- [];
  t.stream_done <- true;
  ignore (Sb.take_all t.sb);
  for seqn = t.rob_head to t.rob_tail - 1 do
    t.rob.(slot t seqn) <- None
  done;
  t.rob_head <- t.rob_tail

let resume t =
  if t.phase <> Terminated then begin
    (match t.tel with
     | None -> ()
     | Some tel when in_episode t ->
       let tr = Ise_telemetry.Sink.trace tel.t_sink in
       let now = Engine.now t.engine in
       Ise_telemetry.Trace.instant tr ~cat:"ise" ~name:"RESUME" ~tid:t.core_id
         now;
       Ise_telemetry.Trace.span_end tr ~cat:"ise" ~name:"episode"
         ~tid:t.core_id now
     | Some _ -> ());
    t.env.trace
      (Ise_core.Contract.Resume
         { core = t.core_id; cycle = Engine.now t.engine });
    t.handler_invoked <- false;
    (* dropped-to-precise stores re-execute first: they are older than
       anything the pipeline flush put back in the replay queue *)
    (match t.overflow_replay with
     | [] -> ()
     | dropped ->
       t.replay <- List.map sim_instr_of_record dropped @ t.replay;
       t.overflow_replay <- [];
       Hashtbl.reset t.degraded_words);
    t.phase <- Running
  end
