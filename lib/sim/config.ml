type fsb_overflow =
  | Fsb_fatal
  | Fsb_stall
  | Fsb_degrade

type t = {
  ncores : int;
  mesh_width : int;
  dispatch_width : int;
  retire_width : int;
  rob_entries : int;
  sb_entries : int;
  l1_sets : int;
  l1_ways : int;
  l1_latency : int;
  l2_sets : int;
  l2_ways : int;
  l2_latency : int;
  block_bits : int;
  noc_hop_latency : int;
  dram_load_latency : int;
  dram_store_latency : int;
  consistency : Ise_model.Axiom.model;
  sc_speculative_loads : bool;
  sc_store_issue_window : int;
  protocol_mode : Ise_core.Protocol.mode;
  sb_max_inflight : int;
  fsb_entries : int;
  fsb_overflow : fsb_overflow;
  fsbc_drain_cost : int;
  pipeline_flush_cost : int;
  page_bits : int;
  einject_base : int;
  einject_pages : int;
}

let default =
  {
    ncores = 16;
    mesh_width = 4;
    dispatch_width = 4;
    retire_width = 4;
    rob_entries = 128;
    sb_entries = 32;
    (* 64 KiB, 4-way, 64-byte blocks -> 256 sets *)
    l1_sets = 256;
    l1_ways = 4;
    l1_latency = 2;
    (* 1 MiB per tile, 16-way -> 1024 sets *)
    l2_sets = 1024;
    l2_ways = 16;
    l2_latency = 6;
    block_bits = 6;
    noc_hop_latency = 3;
    dram_load_latency = 80;
    dram_store_latency = 80;
    consistency = Ise_model.Axiom.Wc;
    sc_speculative_loads = false;
    sc_store_issue_window = 48;
    protocol_mode = Ise_core.Protocol.Same_stream;
    sb_max_inflight = 32;
    fsb_entries = 32;
    fsb_overflow = Fsb_fatal;
    fsbc_drain_cost = 4;
    pipeline_flush_cost = 14;
    page_bits = 12;
    einject_base = 0x4000_0000;
    einject_pages = 1 lsl 18;  (* a 1 GiB reserved region *)
  }

let with_consistency model t =
  let sb_max_inflight =
    match model with Ise_model.Axiom.Pc -> 1 | _ -> t.sb_max_inflight
  in
  { t with consistency = model; sb_max_inflight }

let with_2x_memory t =
  { t with
    dram_load_latency = t.dram_load_latency * 2;
    dram_store_latency = t.dram_store_latency * 2 }

let with_4x_store_skew t =
  { t with dram_store_latency = t.dram_load_latency * 4 }

let sb_inflight_for model sb_entries =
  match model with Ise_model.Axiom.Pc -> 1 | _ -> sb_entries

let ntiles t = t.mesh_width * t.mesh_width

let tile_of_core t core =
  let tile = core mod ntiles t in
  (tile mod t.mesh_width, tile / t.mesh_width)

let bank_of_block t block = block mod ntiles t

let hops t tile_a tile_b =
  let xa = tile_a mod t.mesh_width and ya = tile_a / t.mesh_width in
  let xb = tile_b mod t.mesh_width and yb = tile_b / t.mesh_width in
  abs (xa - xb) + abs (ya - yb)

let pp ppf t =
  let model =
    match t.consistency with
    | Ise_model.Axiom.Sc -> "SC"
    | Ise_model.Axiom.Pc -> "PC"
    | Ise_model.Axiom.Wc -> "WC"
  in
  Format.fprintf ppf
    "@[<v>Core         %d-wide OoO, %s, %d-entry ROB, %d-entry SB, %d cores@,\
     L1D          %d KiB %d-way, %d-byte blocks, %d-cycle latency@,\
     L2           %d KiB/tile, %d-way, %d-cycle access@,\
     Coherence    directory-based MESI@,\
     Interconnect %dx%d 2D mesh, %d cycles/hop@,\
     Memory       %d-cycle load / %d-cycle store access latency@]"
    t.dispatch_width model t.rob_entries t.sb_entries t.ncores
    (t.l1_sets * t.l1_ways * (1 lsl t.block_bits) / 1024)
    t.l1_ways (1 lsl t.block_bits) t.l1_latency
    (t.l2_sets * t.l2_ways * (1 lsl t.block_bits) / 1024)
    t.l2_ways t.l2_latency t.mesh_width t.mesh_width t.noc_hop_latency
    t.dram_load_latency t.dram_store_latency
