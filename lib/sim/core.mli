(** An out-of-order core: dispatch → issue → in-order retirement, with
    a store buffer, the FSB/FSBC extension, and the imprecise
    store-exception flow of §5.3.

    Consistency modes (Table 2's WC system, plus the SC and PC
    comparison points of §2.3/§3):
    - SC: stores issue to memory when oldest in the ROB and complete
      before retiring (no store buffer) — store faults are precise;
    - PC: retired stores drain FIFO, one outstanding at a time; loads
      issue in order among themselves (conservative TSO);
    - WC: retired stores drain concurrently and coalesce; loads issue
      when their dependencies resolve (same-address order kept).

    On an imprecise store exception the core stops dispatch, waits for
    outstanding drains, routes the store-buffer contents per the
    protocol mode (same-stream: everything to the FSB; split-stream:
    clean stores to memory), flushes the pipeline, and invokes the OS
    hook.  Unretired instructions replay after the handler resumes the
    core. *)

type env = {
  trace : Ise_core.Contract.event -> unit;
  on_imprecise : int -> unit;
      (** invoked (core id) once the FSB is populated and the pipeline
          is flushed; the handler must eventually call {!resume} *)
  on_precise :
    core:int -> addr:int -> code:Ise_core.Fault.code -> retry:(unit -> unit)
    -> unit;
      (** invoked for faults on loads/AMOs (and SC stores), which are
          precise; the handler resolves and calls [retry] *)
}

type stats = {
  mutable retired : int;
  mutable loads : int;
  mutable stores : int;
  mutable fences : int;
  mutable imprecise_exceptions : int;
  mutable faulting_stores : int;
  mutable precise_exceptions : int;
  mutable drain_uarch_cycles : int;
      (** FSBC drain + pipeline-flush cycles (Figure 5's µarch part) *)
  mutable sb_full_stalls : int;
  mutable rob_full_stalls : int;
  mutable fsb_overflow_stalls : int;
      (** appends that found the FSB full (or chaos backpressure) and
          stalled under [Fsb_stall] *)
  mutable fsb_overflow_drops : int;
      (** records withheld from a full FSB under [Fsb_degrade] and
          re-executed as ordinary stores after resume *)
}

type t

val create :
  Config.t -> Engine.t -> Memsys.t -> env -> id:int ->
  program:Sim_instr.stream -> t

val id : t -> int
val step : t -> bool
(** One cycle; returns whether any pipeline activity happened. *)

val is_done : t -> bool
(** Program exhausted, pipeline and store buffer empty, no handler in
    flight. *)

val is_terminated : t -> bool
val terminate : t -> unit
(** Irrecoverable fault: discard all state and stop the core. *)

val resume : t -> unit
(** OS handler completion: restart dispatch (traces [Resume]). *)

val interrupt : t -> handler_cycles:int -> bool
(** Delivers an asynchronous interrupt: the core pauses for
    [handler_cycles] while retired stores keep draining in the
    background; an imprecise store exception detected meanwhile is
    deferred until the interrupt handler returns (the IE-bit
    serialisation of §5.3).  Returns [false] — the caller should queue
    the delivery — when the core cannot take interrupts (IE set). *)

val fsb : t -> Ise_core.Fsb.t
val stats : t -> stats
val reg : t -> int -> int
(** Architectural register value (committed state). *)

val sb_occupancy_watermark : t -> int
val sb_inflight_watermark : t -> int

(** {1 Chaos hooks}

    Consulted by the FSBC on each append when a fault-injection plane
    is attached ({!Ise_chaos} installs one); absent by default. *)

type chaos_hooks = {
  ch_put_delay : unit -> int;
      (** extra cycles before an FSBC append starts (a slow drain slot) *)
  ch_backpressure : unit -> bool;
      (** transient append-port backpressure: the append retries after a
          short stall.  The plane must bound consecutive [true]s so the
          retry always converges. *)
}

val set_chaos : t -> chaos_hooks option -> unit

val in_exception_drain : t -> bool
(** The core is between DETECT and the pipeline flush: waiting for
    outstanding drains or moving store-buffer contents to the FSB.  An
    early-invoked handler (FSB-overflow stall) polls this to know when
    the PUT stream is complete. *)

val phase_name : t -> string
(** Lower-case phase label for diagnostics and watchdog snapshots. *)

(** {1 Telemetry} *)

val set_telemetry : t -> Ise_telemetry.Sink.t -> unit
(** Registers this core's counters ([core<id>/sb/drained],
    [core<id>/sb/drain_faults], [core<id>/ise/episodes],
    [core<id>/rob/flushes]) and starts emitting trace spans/instants
    for exception episodes.  When never called the core performs no
    telemetry work beyond a single [option] check per site. *)

val sb_occupancy : t -> int
val rob_occupancy : t -> int
(** Instantaneous occupancies, for periodic probes. *)
