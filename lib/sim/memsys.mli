(** The memory hierarchy: per-core L1D, address-interleaved L2 banks
    with a MESI directory, a 2D-mesh interconnect timing model, DRAM,
    and the EInject device.

    Design: a single global word store is the value oracle — values
    are read and written atomically at a transaction's completion
    instant, and transactions to the same block are serialised
    (MSHR-style), which gives per-location coherence by construction.
    The cache and directory state exists to produce realistic
    latencies (hits, invalidations, remote-owner fetches, memory
    accesses) and statistics.

    Transactions that miss the LLC and target a faulting EInject page
    are denied: the response carries a bus-error code and no state is
    installed — exactly the paper's §6.2 device behaviour. *)

type amo = Swap of int | Add of int

type kind =
  | Read
  | Write of { data : int; mask : int }
  | Atomic of amo
  | Prefetch_exclusive
      (** warms the block into the requester's L1 in Modified state
          without writing data; denials are reported but harmless
          (prefetches are hints) *)

type result =
  | Value of int
      (** read data for loads/AMOs (the {e old} value for AMOs); [0]
          for writes *)
  | Denied of Ise_core.Fault.code

type t

type interceptor = {
  int_name : string;
  check : addr:int -> write:bool -> Ise_core.Fault.code option;
      (** runs when a transaction misses the LLC and reaches memory;
          returning a code denies the transaction *)
  extra_latency : addr:int -> int;
      (** added to every memory access in the interceptor's domain
          (e.g. a page-table walk) *)
}

val create : Config.t -> Engine.t -> Einject.t -> t
(** The EInject device is installed as the first memory-side
    interceptor. *)

val add_interceptor : t -> interceptor -> unit
(** Registers another memory-side component that can deny transactions
    (a Midgard-style late translation, an accelerator, …).
    Interceptors are consulted in registration order; the first denial
    wins. *)

(** {1 Chaos perturbation}

    An optional fault-injection plane consulted on every transaction
    ({!Ise_chaos} installs one).  Unlike interceptors — which model
    architectural components and run only when a transaction reaches
    memory — the perturbation sees every request and models transport
    trouble: NoC contention delays, transient denials that a retry
    survives, duplicated mesh messages. *)

type perturb = {
  pb_delay : core:int -> addr:int -> write:bool -> int;
      (** extra cycles added to the transaction's latency *)
  pb_deny : core:int -> addr:int -> write:bool -> Ise_core.Fault.code option;
      (** transiently deny the transaction (consulted only when no
          architectural denial already applies); the plane must bound
          per-address denials so bounded retry always succeeds *)
  pb_duplicate : core:int -> addr:int -> bool;
      (** deliver a store twice; only plain writes are duplicated (the
          re-apply of the same masked bytes is idempotent) *)
}

val set_perturb : t -> perturb option -> unit
(** Installs (or clears) the perturbation plane.  [None] — the default —
    is free on the hot path. *)

val request :
  t -> core:int -> addr:int -> kind -> (result -> unit) -> unit
(** Starts a transaction; the callback fires at the completion cycle.
    Same-block transactions are serialised in arrival order. *)

val peek : t -> int -> int
(** Oracle read of the 8-byte word containing the address (no timing,
    no state change) — for result extraction after a run. *)

val poke : t -> int -> int -> unit
(** Oracle write — for initialising memory before a run. *)

val einject : t -> Einject.t
val flush_caches : t -> unit

(** {1 Statistics} *)

val l1_hits : t -> int
val l1_misses : t -> int
val l2_hits : t -> int
val l2_misses : t -> int
val dram_accesses : t -> int
val denials : t -> int
val invalidations : t -> int

val noc_hop_cycles : t -> int
(** Cumulative mesh-hop cycles charged to transactions — the NoC
    traffic proxy sampled by the telemetry probes. *)

val l1_miss_rate : t -> float
val l2_miss_rate : t -> float
(** Aggregate across all L1s / L2 banks; [0.] before any access. *)
