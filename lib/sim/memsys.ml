open Ise_util

type amo = Swap of int | Add of int

type kind =
  | Read
  | Write of { data : int; mask : int }
  | Atomic of amo
  | Prefetch_exclusive

type result =
  | Value of int
  | Denied of Ise_core.Fault.code

type dir_entry = {
  sharers : Bitset.t;
  mutable owner : int option;  (* core holding the block Modified *)
}

type pending = {
  p_core : int;
  p_addr : int;
  p_kind : kind;
  p_k : result -> unit;
}

type interceptor = {
  int_name : string;
  check : addr:int -> write:bool -> Ise_core.Fault.code option;
  extra_latency : addr:int -> int;
}

type perturb = {
  pb_delay : core:int -> addr:int -> write:bool -> int;
  pb_deny : core:int -> addr:int -> write:bool -> Ise_core.Fault.code option;
  pb_duplicate : core:int -> addr:int -> bool;
}

type t = {
  cfg : Config.t;
  engine : Engine.t;
  einj : Einject.t;
  mutable interceptors : interceptor list;
  data : (int, int) Hashtbl.t;  (* word index -> value *)
  l1 : Cache.t array;
  l2 : Cache.t array;
  dir : (int, dir_entry) Hashtbl.t;
  busy : (int, pending Queue.t) Hashtbl.t;
  mutable dram_accesses : int;
  mutable invalidations : int;
  mutable noc_hop_cycles : int;
  mutable perturb : perturb option;
}

let einject_interceptor einj =
  {
    int_name = "einject";
    check =
      (fun ~addr ~write:_ ->
        if Einject.is_faulting einj addr then begin
          Einject.record_denial einj;
          Some Ise_core.Fault.Bus_error
        end
        else None);
    extra_latency = (fun ~addr:_ -> 0);
  }

let create cfg engine einj =
  {
    cfg;
    engine;
    einj;
    interceptors = [ einject_interceptor einj ];
    data = Hashtbl.create 4096;
    l1 = Array.init cfg.Config.ncores (fun _ ->
        Cache.create ~sets:cfg.Config.l1_sets ~ways:cfg.Config.l1_ways ());
    l2 = Array.init (cfg.Config.mesh_width * cfg.Config.mesh_width) (fun _ ->
        Cache.create ~sets:cfg.Config.l2_sets ~ways:cfg.Config.l2_ways ());
    dir = Hashtbl.create 4096;
    busy = Hashtbl.create 64;
    dram_accesses = 0;
    invalidations = 0;
    noc_hop_cycles = 0;
    perturb = None;
  }

let add_interceptor t i = t.interceptors <- t.interceptors @ [ i ]
let set_perturb t p = t.perturb <- p

let einject t = t.einj

let block_of t addr = addr lsr t.cfg.Config.block_bits
let word_of addr = addr lsr 3

let dir_entry t block =
  match Hashtbl.find_opt t.dir block with
  | Some e -> e
  | None ->
    let e = { sharers = Bitset.create t.cfg.Config.ncores; owner = None } in
    Hashtbl.replace t.dir block e;
    e

let ntiles t = t.cfg.Config.mesh_width * t.cfg.Config.mesh_width
let tile_of_core t core = core mod ntiles t

let hop_latency t a b =
  let l = Config.hops t.cfg a b * t.cfg.Config.noc_hop_latency in
  t.noc_hop_cycles <- t.noc_hop_cycles + l;
  l

(* Merge store data into the oracle under a byte mask. *)
let merge_word old data mask =
  let result = ref old in
  for byte = 0 to 7 do
    if mask land (1 lsl byte) <> 0 then begin
      let shift = byte * 8 in
      let keep = lnot (0xFF lsl shift) in
      result := (!result land keep) lor (data land (0xFF lsl shift))
    end
  done;
  !result

let oracle_read t addr =
  match Hashtbl.find_opt t.data (word_of addr) with Some v -> v | None -> 0

let oracle_write t addr data mask =
  let w = word_of addr in
  let old = match Hashtbl.find_opt t.data w with Some v -> v | None -> 0 in
  Hashtbl.replace t.data w (merge_word old data mask)

let peek = oracle_read
let poke t addr v = Hashtbl.replace t.data (word_of addr) v

let is_write_kind = function
  | Read -> false
  | Write _ | Atomic _ | Prefetch_exclusive -> true

(* Evicting a block from an L1 must be reflected in the directory. *)
let l1_insert t core block state =
  match Cache.insert t.l1.(core) block state with
  | None -> ()
  | Some evicted ->
    let e = dir_entry t evicted in
    Bitset.clear e.sharers core;
    if e.owner = Some core then e.owner <- None

(* Compute the latency of a transaction and mutate cache/directory
   state.  Returns (latency, denial). *)
let walk t core addr kind =
  let cfg = t.cfg in
  let block = block_of t addr in
  let write = is_write_kind kind in
  let l1 = t.l1.(core) in
  match Cache.lookup l1 block with
  | Some Cache.Modified -> (cfg.Config.l1_latency, None)
  | Some Cache.Exclusive ->
    if write then Cache.set_state l1 block Cache.Modified;
    (cfg.Config.l1_latency, None)
  | Some Cache.Shared when not write -> (cfg.Config.l1_latency, None)
  | l1_state ->
    (* L1 miss, or a write that needs an upgrade from Shared. *)
    let lat = ref cfg.Config.l1_latency in
    let my_tile = tile_of_core t core in
    let bank = Config.bank_of_block cfg block in
    lat := !lat + (2 * hop_latency t my_tile bank) + cfg.Config.l2_latency;
    let e = dir_entry t block in
    (* A remote modified owner must supply / surrender the block. *)
    (match e.owner with
     | Some owner when owner <> core ->
       lat := !lat + (2 * hop_latency t bank (tile_of_core t owner))
              + cfg.Config.l1_latency;
       if write then begin
         Cache.invalidate t.l1.(owner) block;
         Bitset.clear e.sharers owner;
         t.invalidations <- t.invalidations + 1
       end
       else begin
         Cache.set_state t.l1.(owner) block Cache.Shared;
         Bitset.set e.sharers owner
       end;
       e.owner <- None;
       (* the dirty block now lives in L2 *)
       ignore (Cache.insert t.l2.(bank) block Cache.Modified)
     | _ -> ());
    (* A write invalidates all other sharers; latency is the farthest. *)
    if write then begin
      let worst = ref 0 in
      let invalidated = ref [] in
      Bitset.iter
        (fun s ->
          if s <> core then begin
            Cache.invalidate t.l1.(s) block;
            t.invalidations <- t.invalidations + 1;
            worst := max !worst (2 * hop_latency t bank (tile_of_core t s));
            invalidated := s :: !invalidated
          end)
        e.sharers;
      lat := !lat + !worst;
      List.iter (Bitset.clear e.sharers) !invalidated
    end;
    (* L2 lookup; miss goes to memory, where the memory-side
       interceptors (EInject, Midgard, …) stand guard. *)
    let denied = ref false in
    let denial_code = ref Ise_core.Fault.Bus_error in
    (match Cache.lookup t.l2.(bank) block with
     | Some _ -> ()
     | None ->
       t.dram_accesses <- t.dram_accesses + 1;
       let denial =
         List.fold_left
           (fun acc i ->
             match acc with
             | Some _ -> acc
             | None ->
               lat := !lat + i.extra_latency ~addr;
               i.check ~addr ~write)
           None t.interceptors
       in
       (match denial with
        | Some code ->
          (* the component terminates the transaction with a small,
             fixed response latency — the memory row is never
             accessed *)
          lat := !lat + 10;
          denied := true;
          denial_code := code
        | None ->
          lat := !lat
                 + (if write then cfg.Config.dram_store_latency
                    else cfg.Config.dram_load_latency);
          ignore (Cache.insert t.l2.(bank) block Cache.Shared)));
    if not !denied then begin
      (* install in the requester's L1 and update the directory *)
      let new_state =
        if write then Cache.Modified
        else if Bitset.is_empty e.sharers && e.owner = None then Cache.Exclusive
        else Cache.Shared
      in
      (match l1_state with
       | Some _ -> Cache.set_state l1 block new_state
       | None -> l1_insert t core block new_state);
      if write then begin
        e.owner <- Some core;
        Bitset.clear_all e.sharers;
        Bitset.set e.sharers core
      end
      else Bitset.set e.sharers core
    end;
    (!lat, if !denied then Some !denial_code else None)

let rec start t { p_core = core; p_addr = addr; p_kind = kind; p_k = k } =
  let block = block_of t addr in
  let latency, denial = walk t core addr kind in
  (* Chaos plane (when attached): NoC delay, transient denial, message
     duplication.  The decisions are drawn from the plane's own seeded
     streams, so a perturbed run is a pure function of (seed, program). *)
  let latency, denial, duplicate =
    match t.perturb with
    | None -> (latency, denial, false)
    | Some pb ->
      let write = is_write_kind kind in
      let latency = latency + pb.pb_delay ~core ~addr ~write in
      let denial =
        match denial with Some _ -> denial | None -> pb.pb_deny ~core ~addr ~write
      in
      (* only plain stores are duplicated: re-delivering the same masked
         bytes is idempotent, while a duplicated AMO would double-apply *)
      let duplicate =
        denial = None
        && (match kind with Write _ -> pb.pb_duplicate ~core ~addr | _ -> false)
      in
      (latency, denial, duplicate)
  in
  Engine.schedule_in t.engine latency (fun () ->
      let result =
        match denial with
        | Some code -> Denied code
        | None ->
          match kind with
          | Read -> Value (oracle_read t addr)
          | Write { data; mask } ->
            oracle_write t addr data mask;
            (* duplicated NoC delivery: the write effect lands twice at
               the same instant — idempotent, but the second delivery is
               real traffic and is counted by the plane *)
            if duplicate then oracle_write t addr data mask;
            Value 0
          | Prefetch_exclusive -> Value 0
          | Atomic amo ->
            let old = oracle_read t addr in
            let updated =
              match amo with Swap v -> v | Add v -> old + v
            in
            oracle_write t addr updated 0xFF;
            Value old
      in
      k result;
      (* release the block: start the next queued transaction *)
      match Hashtbl.find_opt t.busy block with
      | None -> ()
      | Some q ->
        if Queue.is_empty q then Hashtbl.remove t.busy block
        else start t (Queue.pop q))

let request t ~core ~addr kind k =
  let block = block_of t addr in
  let p = { p_core = core; p_addr = addr; p_kind = kind; p_k = k } in
  match Hashtbl.find_opt t.busy block with
  | Some q -> Queue.add p q
  | None ->
    Hashtbl.replace t.busy block (Queue.create ());
    start t p

let flush_caches t =
  (* simplest correct flush: drop all directory state and rebuild caches *)
  Hashtbl.reset t.dir;
  Array.iteri
    (fun i _ ->
      t.l1.(i) <-
        Cache.create ~sets:t.cfg.Config.l1_sets ~ways:t.cfg.Config.l1_ways ())
    t.l1;
  Array.iteri
    (fun i _ ->
      t.l2.(i) <-
        Cache.create ~sets:t.cfg.Config.l2_sets ~ways:t.cfg.Config.l2_ways ())
    t.l2

let sum f arr = Array.fold_left (fun acc c -> acc + f c) 0 arr
let l1_hits t = sum Cache.hits t.l1
let l1_misses t = sum Cache.misses t.l1
let l2_hits t = sum Cache.hits t.l2
let l2_misses t = sum Cache.misses t.l2
let dram_accesses t = t.dram_accesses
let denials t = Einject.injections t.einj
let invalidations t = t.invalidations
let noc_hop_cycles t = t.noc_hop_cycles

let rate misses hits =
  let n = misses + hits in
  if n = 0 then 0. else float_of_int misses /. float_of_int n

let l1_miss_rate t = rate (l1_misses t) (l1_hits t)
let l2_miss_rate t = rate (l2_misses t) (l2_hits t)
