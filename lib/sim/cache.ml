type state = Invalid | Shared | Exclusive | Modified

type line = {
  mutable tag : int;  (* block number, -1 when invalid *)
  mutable state : state;
  mutable lru : int;  (* larger = more recent *)
}

(* Rows (one per set) are allocated on first install: a litmus-scale
   run touches a handful of sets, so eagerly building sets*ways line
   records made [create] — and hence [Machine.create], called once per
   seed per test — the hot path of the whole litmus bench.  An empty
   row behaves exactly like a row of Invalid lines. *)
type t = {
  sets : int;
  ways : int;
  rows : line array array;  (* rows.(s) is [||] until first insert *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~sets ~ways () =
  {
    sets;
    ways;
    rows = Array.make sets [||];
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let set_of t block = block mod t.sets

let row t s =
  let r = t.rows.(s) in
  if Array.length r > 0 then r
  else begin
    let r = Array.init t.ways (fun _ -> { tag = -1; state = Invalid; lru = 0 }) in
    t.rows.(s) <- r;
    r
  end

let find_line t block =
  let r = t.rows.(set_of t block) in
  let rec loop w =
    if w >= Array.length r then None
    else
      let line = r.(w) in
      if line.tag = block && line.state <> Invalid then Some line else loop (w + 1)
  in
  loop 0

let lookup t block =
  t.tick <- t.tick + 1;
  match find_line t block with
  | Some line ->
    line.lru <- t.tick;
    t.hits <- t.hits + 1;
    Some line.state
  | None ->
    t.misses <- t.misses + 1;
    None

let probe t block =
  match find_line t block with Some line -> Some line.state | None -> None

let insert t block state =
  t.tick <- t.tick + 1;
  match find_line t block with
  | Some line ->
    line.state <- state;
    line.lru <- t.tick;
    None
  | None ->
    let r = row t (set_of t block) in
    (* choose an invalid way, else the LRU way *)
    let victim = ref r.(0) in
    for w = 0 to t.ways - 1 do
      let line = r.(w) in
      if line.state = Invalid && !victim.state <> Invalid then victim := line
      else if line.state <> Invalid && !victim.state <> Invalid
              && line.lru < !victim.lru
      then victim := line
    done;
    let evicted =
      if !victim.state <> Invalid then begin
        t.evictions <- t.evictions + 1;
        Some !victim.tag
      end
      else None
    in
    !victim.tag <- block;
    !victim.state <- state;
    !victim.lru <- t.tick;
    evicted

let set_state t block state =
  match find_line t block with
  | Some line ->
    if state = Invalid then begin
      line.state <- Invalid;
      line.tag <- -1
    end
    else line.state <- state
  | None -> ()

let invalidate t block =
  match find_line t block with
  | Some line ->
    line.state <- Invalid;
    line.tag <- -1
  | None -> ()

let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

let miss_rate t =
  let n = accesses t in
  if n = 0 then 0. else float_of_int t.misses /. float_of_int n
let evictions t = t.evictions

let occupancy t =
  Array.fold_left
    (fun acc r ->
      Array.fold_left
        (fun acc line -> if line.state <> Invalid then acc + 1 else acc)
        acc r)
    0 t.rows

let state_to_string = function
  | Invalid -> "I"
  | Shared -> "S"
  | Exclusive -> "E"
  | Modified -> "M"
