(** Small string-keyed LRU cache — the in-memory front of the result
    {!Store}.

    Capacity is a handful of hundreds of entries, so eviction scans
    for the least-recently-used key instead of maintaining a linked
    list; [find]/[add] stay O(1) amortised and the structure stays
    trivially correct. *)

type 'a t

val create : cap:int -> 'a t
(** [cap <= 0] disables the cache (every [find] misses, [add] is a
    no-op). *)

val find : 'a t -> string -> 'a option
(** Refreshes the entry's recency on a hit. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts or replaces; evicts the least-recently-used entry when the
    cache is full. *)

val length : 'a t -> int
val cap : 'a t -> int

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
