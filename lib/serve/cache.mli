(** Small string-keyed LRU cache — the in-memory front of the result
    {!Store}.

    Capacity is a handful of hundreds of entries, so eviction scans
    for the least-recently-used key instead of maintaining a linked
    list; [find]/[add] stay O(1) amortised and the structure stays
    trivially correct.

    This module also owns the {e one} place cache keys are derived:
    every store key in the system — litmus batches, corpus replays,
    fuzz-campaign shards — builds its configuration fingerprint with
    {!config_fp}, so the invalidation discipline ({!store_abi} and the
    enumeration-engine epoch) cannot silently diverge between call
    sites. *)

(** {1 Cache-key construction} *)

val store_abi : int
(** Result-store compatibility epoch.  Bump whenever the {e meaning or
    rendering} of any stored result changes — new summary-line format,
    new pass criterion, simulator semantic fix — so stale entries
    become unreachable instead of wrong. *)

val config_fp : ?enum_epoch:int -> domain:string -> string list -> string
(** [config_fp ~domain parts] is the configuration fingerprint
    [digest (domain | store_abi | enum_epoch | parts...)].  [domain]
    namespaces the key family (["litmus"], ["replay"],
    ["fuzz-shard"]); {!store_abi} and the enumeration-engine epoch
    (default {!Ise_model.Enum.epoch}) ride in every key so either bump
    invalidates the whole store.  [?enum_epoch] exists for
    epoch-invalidation tests that must reconstruct the key a previous
    engine would have used. *)

(** {1 LRU} *)

type 'a t

val create : cap:int -> 'a t
(** [cap <= 0] disables the cache (every [find] misses, [add] is a
    no-op). *)

val find : 'a t -> string -> 'a option
(** Refreshes the entry's recency on a hit. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts or replaces; evicts the least-recently-used entry when the
    cache is full. *)

val length : 'a t -> int
val cap : 'a t -> int

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
