(** Client side of the serve protocol: connect, Hello-negotiate, and
    issue synchronous requests. *)

type t

val connect :
  ?proto:int -> ?retries:int -> string -> (t, string) result
(** Connect to the daemon's Unix socket at the given path and perform
    the mandatory Hello exchange.  [proto] (default {!Proto.version})
    exists so tests can present an unsupported version; [retries]
    (default 0) re-attempts the [connect] with 100 ms backoff while
    the daemon is still starting up.  On [Error] the descriptor is
    closed. *)

val rpc : t -> Proto.request -> (Proto.response, string) result
(** One request, one response.  A typed [Error] frame from the daemon
    comes back as [Ok (Proto.Error _)] — the transport worked; the
    daemon will close the connection after it. *)

val close : t -> unit

(** {1 Conveniences} *)

val litmus :
  t ->
  tests:Ise_litmus.Lit_test.t list ->
  params:Proto.run_params ->
  (Proto.litmus_reply list, string) result

val server_stats : t -> (Proto.server_stats, string) result

val metrics : t -> (string, string) result
(** Prometheus text-format dump of the daemon's counters and store
    view. *)

val shutdown : t -> (unit, string) result
(** Asks the daemon to drain and exit. *)
