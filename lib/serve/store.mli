(** Content-addressed result store.

    One entry per (canonical test hash, configuration fingerprint) key
    — see {!Proto.litmus_key} — holding the opaque result payload the
    daemon would otherwise recompute.  Entries live one-per-file under
    a store directory, written atomically (temp file + rename), with a
    versioned header and an integrity checksum:

    {v
    ise-store v1
    key <key>
    len <payload bytes>
    md5 <hex digest of the payload>
    <payload>
    v}

    The read path follows the torn-tail philosophy of
    {!Ise_obs.Journal}: a corrupt entry — bad magic, unknown version,
    mangled header, short payload, checksum mismatch — is {e counted
    and skipped} (a miss that the next [add] overwrites), never fatal.
    A small LRU {!Cache} fronts the disk so a hot working set never
    touches the filesystem. *)

type t

val open_ : ?mem_entries:int -> dir:string -> unit -> t
(** Creates [dir] if needed.  [mem_entries] (default 512) sizes the
    in-memory LRU front; [0] disables it. *)

val dir : t -> string

val key : test_fp:string -> cfg_fp:string -> string
(** The store key: both fingerprints joined — safe as a file name. *)

val entry_path : dir:string -> string -> string
(** Where [key]'s entry lives on disk (exposed for tests and gc). *)

val find : t -> string -> string option
(** Memory front first, then disk (promoting a disk hit into memory).
    Corrupt disk entries count in {!counters} and return [None]. *)

val add : t -> string -> string -> unit
(** Atomic write-through: temp file + rename, then the memory front.
    I/O errors (disk full, unwritable dir) degrade to cache-off — the
    failure is counted, never raised. *)

type counters = {
  c_mem_hits : int;
  c_disk_hits : int;
  c_misses : int;
  c_writes : int;
  c_corrupt_skipped : int;  (** disk entries rejected by validation *)
  c_write_errors : int;
  c_mem_evictions : int;
}

val counters : t -> counters

(** {1 Offline inspection — [ise store stats] / [ise store gc]} *)

type disk_stats = {
  ds_entries : int;  (** valid entries *)
  ds_bytes : int;  (** total size of valid entry files *)
  ds_corrupt : int;
}

val scan : string -> disk_stats
(** Validates every entry under a store directory. *)

type gc_stats = {
  gc_kept : int;
  gc_deleted : int;  (** valid entries evicted by the bounds *)
  gc_corrupt_deleted : int;
  gc_bytes_freed : int;
}

val gc : ?max_entries:int -> ?max_bytes:int -> string -> gc_stats
(** Deletes corrupt entries, then the oldest (by mtime) valid entries
    until at most [max_entries] remain totalling at most [max_bytes].
    Omitted bounds are unlimited. *)
