(** The serve wire protocol: request/response payloads and cache keys.

    Frames are {!Ise_pool.Codec} v2 frames whose protocol byte carries
    {!version}; payloads are [Marshal]ed values of the types below —
    safe for the same reason the pool's pipes are: daemon and client
    are the same [ise] executable image.  Two guards keep that
    assumption honest:

    - the Codec protocol byte is checked on {e every} frame before the
      payload is unmarshalled, so a frame from an incompatible peer is
      answered with a typed {!err_kind} frame, never mis-decoded;
    - the first request on a connection must be {!Hello}, carrying the
      client's protocol version and git revision; the daemon rejects a
      version mismatch with [Unsupported_proto] before any payload of
      a newer shape could reach [Marshal].

    Cache keys pair {!Ise_litmus.Lit_test.fingerprint} (what program)
    with a configuration fingerprint (how it was run): machine
    configuration, run parameters, {!store_abi}, and the
    enumeration-engine epoch {!Ise_model.Enum.epoch}.  [store_abi]
    must be bumped whenever the {e meaning or rendering} of a stored
    result changes — new summary-line format, new pass criterion,
    simulator semantic fix; the engine epoch is bumped by
    [Ise_model.Enum] itself when the enumerator changes — either bump
    makes stale entries unreachable instead of wrong.  The git
    revision is deliberately {e not} part of the key: rebuilding the
    tree must not empty the cache. *)

open Ise_litmus

val version : int
(** Application-protocol version, carried in the Codec protocol byte
    and in {!Hello}. *)

val store_abi : int
(** Result-store compatibility epoch (see above for the bump rule). *)

(** {1 Run parameters and cache keys} *)

type run_params = {
  seeds : int;
  inject_faults : bool;
  timer_interrupts : bool;
  model : Ise_model.Axiom.model;
}

val default_params : run_params
(** [ise litmus] defaults: 20 seeds, faults injected, no timer, WC. *)

val cfg_of_params : run_params -> Ise_sim.Config.t

val litmus_key : Lit_test.t -> run_params -> string
(** [(test fingerprint, config fingerprint)] joined — the result-store
    key of a litmus run. *)

val litmus_key_at : enum_epoch:int -> Lit_test.t -> run_params -> string
(** {!litmus_key} with an explicit engine epoch in place of
    {!Ise_model.Enum.epoch} — lets the epoch-invalidation test build
    the key a {e previous} engine would have used and prove an
    epoch bump makes old entries miss. *)

val replay_key : Ise_fuzz.Corpus.entry -> seeds:int -> string
(** Store key of a corpus-entry replay: test fingerprint × (variant,
    expectation, seeds, {!store_abi}, engine epoch). *)

(** {1 Cached payload} *)

type litmus_payload = { lp_line : string; lp_pass : bool }
(** What the store holds per litmus run: the canonical
    {!Lit_run.summary_line} rendering and the CLI pass bit
    ([pass && contract_ok]). *)

val litmus_payload_to_string : litmus_payload -> string
val litmus_payload_of_string : string -> litmus_payload option
(** [None] if the payload does not decode (defence in depth — the
    store checksum already rejects torn entries). *)

val replay_payload_to_string : (unit, string) result -> string
val replay_payload_of_string : string -> (unit, string) result option

(** {1 Requests} *)

type request =
  | Hello of { proto : int; git_rev : string }
      (** mandatory first request of every connection *)
  | Litmus of { tests : Lit_test.t list; params : run_params }
  | Fuzz_replay of { entry : Ise_fuzz.Corpus.entry; seeds : int }
  | Stats_req
  | Metrics_req
      (** v2: ask for a Prometheus text-format dump of the daemon's
          metrics — the scrapable face of {!server_stats} *)
  | Shutdown  (** ask the daemon to drain and exit *)

(** {1 Responses} *)

type litmus_reply = {
  r_line : string;  (** byte-identical to a cold [ise litmus -j 1] line *)
  r_pass : bool;
  r_cached : bool;
}

type store_view = {
  v_mem_hits : int;
  v_disk_hits : int;
  v_misses : int;
  v_writes : int;
  v_corrupt_skipped : int;
  v_mem_evictions : int;
}

type server_stats = {
  ss_pid : int;
  ss_uptime_s : float;
  ss_git_rev : string;
  ss_connections : int;  (** accepted over the daemon's lifetime *)
  ss_requests : int;
  ss_litmus_runs : int;  (** cold runs actually executed *)
  ss_replays : int;  (** cold corpus replays executed *)
  ss_errors : int;  (** typed error frames sent *)
  ss_store : store_view option;  (** [None] when caching is disabled *)
}

type err_kind = Framed.err_kind =
  | Unsupported_proto
  | Bad_request  (** well-formed frame, invalid at this point (no Hello…) *)
  | Frame_too_large
  | Malformed_frame  (** framing or payload did not decode *)
  | Internal
      (** shared with every framed daemon — see {!Framed.err_kind} *)

val err_name : err_kind -> string

type response =
  | Hello_ok of { proto : int; git_rev : string }
  | Litmus_done of litmus_reply list  (** in request order *)
  | Replay_done of { result : (unit, string) result; cached : bool }
  | Stats of server_stats
  | Metrics of string
      (** v2: Prometheus text exposition
          ({!Ise_telemetry.Registry.to_prometheus}) of the daemon's
          counters and store view *)
  | Shutting_down
  | Error of err_kind * string
      (** typed error frame; the daemon closes the connection after
          sending one *)

(** {1 Framed I/O} *)

val write_request : Unix.file_descr -> request -> unit
val write_response : Unix.file_descr -> response -> unit

val read_response :
  ?max_payload:int ->
  Unix.file_descr ->
  (response, string) result
(** Blocking read of one response frame; [Error] describes EOF,
    corruption, or a protocol-byte mismatch. *)
