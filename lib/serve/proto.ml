open Ise_litmus

(* v2 adds Metrics_req / Metrics (Prometheus text exposition).  The
   handshake is strict equality, and daemon and client ship in the
   same executable image, so the bump is safe: there is no mixed-
   version serve deployment to stay compatible with. *)
let version = 2
let store_abi = Cache.store_abi

(* ------------------------------------------------------------------ *)
(* run parameters and cache keys                                       *)

type run_params = {
  seeds : int;
  inject_faults : bool;
  timer_interrupts : bool;
  model : Ise_model.Axiom.model;
}

let default_params = {
  seeds = 20;
  inject_faults = true;
  timer_interrupts = false;
  model = Ise_model.Axiom.Wc;
}

let cfg_of_params p =
  Ise_sim.Config.with_consistency p.model Ise_sim.Config.default

let model_name = function
  | Ise_model.Axiom.Sc -> "sc"
  | Ise_model.Axiom.Pc -> "pc"
  | Ise_model.Axiom.Wc -> "wc"

(* The config fingerprint digests everything that changes what a run
   means: the store ABI epoch, the enumeration-engine epoch (a result
   computed by an older engine must miss, not masquerade as current),
   the full machine configuration (via Marshal — any Config.t field
   change invalidates), and the run parameters.  git_rev is
   deliberately excluded. *)
let config_fp_at ~enum_epoch p =
  let cfg = cfg_of_params p in
  Cache.config_fp ~enum_epoch ~domain:"litmus"
    [ Digest.to_hex (Digest.string (Marshal.to_string cfg []));
      string_of_int p.seeds;
      string_of_bool p.inject_faults;
      string_of_bool p.timer_interrupts;
      model_name p.model ]

let litmus_key_at ~enum_epoch test params =
  Store.key ~test_fp:(Lit_test.fingerprint test)
    ~cfg_fp:(config_fp_at ~enum_epoch params)

let litmus_key test params =
  litmus_key_at ~enum_epoch:Ise_model.Enum.epoch test params

let replay_key entry ~seeds =
  let open Ise_fuzz.Corpus in
  let cfg_fp =
    Cache.config_fp ~domain:"replay"
      [ entry.e_variant;
        (match entry.e_expect with
         | Must_pass -> "pass"
         | Must_fail -> "fail");
        entry.e_kind;
        string_of_int seeds ]
  in
  Store.key ~test_fp:(Lit_test.fingerprint entry.e_test) ~cfg_fp

(* ------------------------------------------------------------------ *)
(* cached payloads                                                     *)

type litmus_payload = { lp_line : string; lp_pass : bool }

let litmus_payload_to_string (p : litmus_payload) =
  Ise_pool.Codec.marshal p

let litmus_payload_of_string s =
  match (Ise_pool.Codec.unmarshal s : litmus_payload) with
  | p -> Some p
  | exception _ -> None

let replay_payload_to_string (r : (unit, string) result) =
  Ise_pool.Codec.marshal r

let replay_payload_of_string s =
  match (Ise_pool.Codec.unmarshal s : (unit, string) result) with
  | r -> Some r
  | exception _ -> None

(* ------------------------------------------------------------------ *)
(* messages                                                            *)

type request =
  | Hello of { proto : int; git_rev : string }
  | Litmus of { tests : Lit_test.t list; params : run_params }
  | Fuzz_replay of { entry : Ise_fuzz.Corpus.entry; seeds : int }
  | Stats_req
  | Metrics_req
  | Shutdown

type litmus_reply = { r_line : string; r_pass : bool; r_cached : bool }

type store_view = {
  v_mem_hits : int;
  v_disk_hits : int;
  v_misses : int;
  v_writes : int;
  v_corrupt_skipped : int;
  v_mem_evictions : int;
}

type server_stats = {
  ss_pid : int;
  ss_uptime_s : float;
  ss_git_rev : string;
  ss_connections : int;
  ss_requests : int;
  ss_litmus_runs : int;
  ss_replays : int;
  ss_errors : int;
  ss_store : store_view option;
}

type err_kind = Framed.err_kind =
  | Unsupported_proto
  | Bad_request
  | Frame_too_large
  | Malformed_frame
  | Internal

let err_name = Framed.err_name

type response =
  | Hello_ok of { proto : int; git_rev : string }
  | Litmus_done of litmus_reply list
  | Replay_done of { result : (unit, string) result; cached : bool }
  | Stats of server_stats
  | Metrics of string
  | Shutting_down
  | Error of err_kind * string

(* ------------------------------------------------------------------ *)
(* framed I/O                                                          *)

let write_request fd (req : request) =
  Ise_pool.Codec.write_frame ~proto:version fd (Ise_pool.Codec.marshal req)

let write_response fd (resp : response) =
  Ise_pool.Codec.write_frame ~proto:version fd (Ise_pool.Codec.marshal resp)

let read_response ?max_payload fd =
  match Ise_pool.Codec.read_frame_ext ?max_payload fd with
  | Stdlib.Error `Eof -> Stdlib.Error "connection closed by daemon"
  | Stdlib.Error (`Corrupt e) ->
    Stdlib.Error
      ("corrupt response frame: " ^ Ise_pool.Codec.error_to_string e)
  | Stdlib.Ok (proto, payload) ->
    if proto <> version then
      Stdlib.Error
        (Printf.sprintf "protocol mismatch: daemon speaks v%d, we speak v%d"
           proto version)
    else begin
      match (Ise_pool.Codec.unmarshal payload : response) with
      | resp -> Stdlib.Ok resp
      | exception _ -> Stdlib.Error "undecodable response payload"
    end
