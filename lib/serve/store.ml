let magic = "ise-store"
let format_version = 1

type t = {
  dir : string;
  mem : string Cache.t;
  mutable disk_hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable corrupt_skipped : int;
  mutable write_errors : int;
}

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?(mem_entries = 512) ~dir () =
  mkdir_p dir;
  {
    dir;
    mem = Cache.create ~cap:mem_entries;
    disk_hits = 0;
    misses = 0;
    writes = 0;
    corrupt_skipped = 0;
    write_errors = 0;
  }

let dir t = t.dir
let key ~test_fp ~cfg_fp = test_fp ^ "-" ^ cfg_fp
let entry_path ~dir key = Filename.concat dir (key ^ ".rec")

(* ------------------------------------------------------------------ *)
(* entry format                                                        *)

let encode_entry key payload =
  Printf.sprintf "%s v%d\nkey %s\nlen %d\nmd5 %s\n%s" magic format_version
    key (String.length payload)
    (Digest.to_hex (Digest.string payload))
    payload

(* Validates one entry file; [None] on any corruption (never raises on
   malformed content — only I/O errors escape, and callers treat those
   as corruption too). *)
let read_entry path key =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  match
    let line () = try Some (input_line ic) with End_of_file -> None in
    let field name l =
      let prefix = name ^ " " in
      let pl = String.length prefix in
      if String.length l > pl && String.sub l 0 pl = prefix then
        Some (String.sub l pl (String.length l - pl))
      else None
    in
    let ( let* ) = Option.bind in
    let* l0 = line () in
    let* () =
      if l0 = Printf.sprintf "%s v%d" magic format_version then Some ()
      else None
    in
    let* k = Option.bind (line ()) (field "key") in
    let* () = if k = key then Some () else None in
    let* len = Option.bind (Option.bind (line ()) (field "len"))
                 int_of_string_opt in
    let* md5 = Option.bind (line ()) (field "md5") in
    let* payload =
      try Some (really_input_string ic len) with End_of_file -> None
    in
    if Digest.to_hex (Digest.string payload) = md5 then Some payload
    else None
  with
  | some_payload -> some_payload
  | exception _ -> None

let find t key =
  match Cache.find t.mem key with
  | Some payload -> payload |> Option.some
  | None ->
    let path = entry_path ~dir:t.dir key in
    if not (Sys.file_exists path) then begin
      t.misses <- t.misses + 1;
      None
    end
    else begin
      match read_entry path key with
      | Some payload ->
        t.disk_hits <- t.disk_hits + 1;
        Cache.add t.mem key payload;
        Some payload
      | None | (exception Sys_error _) ->
        t.corrupt_skipped <- t.corrupt_skipped + 1;
        t.misses <- t.misses + 1;
        None
    end

let add t key payload =
  (match
     let path = entry_path ~dir:t.dir key in
     let tmp =
       Filename.concat t.dir
         (Printf.sprintf ".tmp.%d.%s" (Unix.getpid ()) key)
     in
     let oc = open_out_bin tmp in
     output_string oc (encode_entry key payload);
     close_out oc;
     Sys.rename tmp path
   with
  | () -> t.writes <- t.writes + 1
  | exception (Sys_error _ | Unix.Unix_error _) ->
    t.write_errors <- t.write_errors + 1);
  Cache.add t.mem key payload

type counters = {
  c_mem_hits : int;
  c_disk_hits : int;
  c_misses : int;
  c_writes : int;
  c_corrupt_skipped : int;
  c_write_errors : int;
  c_mem_evictions : int;
}

let counters t = {
  c_mem_hits = Cache.hits t.mem;
  c_disk_hits = t.disk_hits;
  c_misses = t.misses;
  c_writes = t.writes;
  c_corrupt_skipped = t.corrupt_skipped;
  c_write_errors = t.write_errors;
  c_mem_evictions = Cache.evictions t.mem;
}

(* ------------------------------------------------------------------ *)
(* offline scan / gc                                                   *)

let entry_files dir =
  match Sys.readdir dir with
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".rec")
    |> List.sort compare
    |> List.map (fun f -> (Filename.chop_suffix f ".rec", Filename.concat dir f))
  | exception Sys_error _ -> []

type disk_stats = { ds_entries : int; ds_bytes : int; ds_corrupt : int }

let scan dir =
  List.fold_left
    (fun acc (key, path) ->
      match read_entry path key with
      | Some _ ->
        let bytes =
          try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0
        in
        { acc with ds_entries = acc.ds_entries + 1;
                   ds_bytes = acc.ds_bytes + bytes }
      | None | (exception Sys_error _) ->
        { acc with ds_corrupt = acc.ds_corrupt + 1 })
    { ds_entries = 0; ds_bytes = 0; ds_corrupt = 0 }
    (entry_files dir)

type gc_stats = {
  gc_kept : int;
  gc_deleted : int;
  gc_corrupt_deleted : int;
  gc_bytes_freed : int;
}

let gc ?max_entries ?max_bytes dir =
  let stats =
    ref { gc_kept = 0; gc_deleted = 0; gc_corrupt_deleted = 0;
          gc_bytes_freed = 0 }
  in
  let remove path size ~corrupt =
    (try Sys.remove path with Sys_error _ -> ());
    stats :=
      if corrupt then
        { !stats with gc_corrupt_deleted = !stats.gc_corrupt_deleted + 1;
                      gc_bytes_freed = !stats.gc_bytes_freed + size }
      else
        { !stats with gc_deleted = !stats.gc_deleted + 1;
                      gc_bytes_freed = !stats.gc_bytes_freed + size }
  in
  let valid =
    List.filter_map
      (fun (key, path) ->
        let size, mtime =
          try
            let st = Unix.stat path in
            (st.Unix.st_size, st.Unix.st_mtime)
          with Unix.Unix_error _ -> (0, 0.)
        in
        match read_entry path key with
        | Some _ -> Some (path, size, mtime)
        | None | (exception Sys_error _) ->
          remove path size ~corrupt:true;
          None)
      (entry_files dir)
  in
  (* oldest first, so the keep-set is the newest entries *)
  let by_age = List.sort (fun (_, _, a) (_, _, b) -> compare a b) valid in
  let total_bytes = List.fold_left (fun a (_, s, _) -> a + s) 0 valid in
  let over_entries n =
    match max_entries with Some m -> n > m | None -> false
  in
  let over_bytes b = match max_bytes with Some m -> b > m | None -> false in
  let n = ref (List.length valid) and bytes = ref total_bytes in
  List.iter
    (fun (path, size, _) ->
      if over_entries !n || over_bytes !bytes then begin
        remove path size ~corrupt:false;
        decr n;
        bytes := !bytes - size
      end)
    by_age;
  { !stats with gc_kept = !n }
