type t = { fd : Unix.file_descr }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rpc t req =
  match Proto.write_request t.fd req with
  | () -> Proto.read_response t.fd
  | exception Unix.Unix_error (e, _, _) ->
    Error ("cannot reach daemon: " ^ Unix.error_message e)

let connect ?(proto = Proto.version) ?(retries = 0) path =
  let rec attempt n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.set_close_on_exec fd;
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if n > 0 then begin
        (* daemon may still be starting up *)
        ignore (Unix.select [] [] [] 0.1);
        attempt (n - 1)
      end
      else
        Error
          (Printf.sprintf "cannot connect to %s: %s" path
             (Unix.error_message e))
  in
  match attempt retries with
  | Error _ as e -> e
  | Ok t -> (
    match
      rpc t (Proto.Hello { proto; git_rev = Ise_obs.Runinfo.git_rev () })
    with
    | Ok (Proto.Hello_ok _) -> Ok t
    | Ok (Proto.Error (kind, msg)) ->
      close t;
      Error (Printf.sprintf "daemon refused hello: %s (%s)"
               (Proto.err_name kind) msg)
    | Ok _ ->
      close t;
      Error "daemon sent an unexpected hello response"
    | Error msg ->
      close t;
      Error msg)

let litmus t ~tests ~params =
  match rpc t (Proto.Litmus { tests; params }) with
  | Ok (Proto.Litmus_done replies) -> Ok replies
  | Ok (Proto.Error (kind, msg)) ->
    Error (Printf.sprintf "%s (%s)" (Proto.err_name kind) msg)
  | Ok _ -> Error "unexpected response to litmus request"
  | Error _ as e -> e

let server_stats t =
  match rpc t Proto.Stats_req with
  | Ok (Proto.Stats s) -> Ok s
  | Ok (Proto.Error (kind, msg)) ->
    Error (Printf.sprintf "%s (%s)" (Proto.err_name kind) msg)
  | Ok _ -> Error "unexpected response to stats request"
  | Error _ as e -> e

let metrics t =
  match rpc t Proto.Metrics_req with
  | Ok (Proto.Metrics text) -> Ok text
  | Ok (Proto.Error (kind, msg)) ->
    Error (Printf.sprintf "%s (%s)" (Proto.err_name kind) msg)
  | Ok _ -> Error "unexpected response to metrics request"
  | Error _ as e -> e

let shutdown t =
  match rpc t Proto.Shutdown with
  | Ok Proto.Shutting_down -> Ok ()
  | Ok (Proto.Error (kind, msg)) ->
    Error (Printf.sprintf "%s (%s)" (Proto.err_name kind) msg)
  | Ok _ -> Error "unexpected response to shutdown request"
  | Error _ as e -> e
