(* ------------------------------------------------------------------ *)
(* cache-key construction                                              *)

let store_abi = 1

let config_fp ?(enum_epoch = Ise_model.Enum.epoch) ~domain parts =
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          (domain :: string_of_int store_abi :: string_of_int enum_epoch
           :: parts)))

(* ------------------------------------------------------------------ *)
(* LRU                                                                 *)

type 'a entry = { value : 'a; mutable used : int }

type 'a t = {
  cap : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable tick : int;  (* monotonic recency stamp *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~cap = {
  cap;
  tbl = Hashtbl.create (max 16 cap);
  tick = 0;
  hits = 0;
  misses = 0;
  evictions = 0;
}

let touch t e =
  t.tick <- t.tick + 1;
  e.used <- t.tick

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    t.hits <- t.hits + 1;
    touch t e;
    Some e.value
  | None ->
    t.misses <- t.misses + 1;
    None

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, u) when u <= e.used -> ()
      | _ -> victim := Some (k, e.used))
    t.tbl;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1
  | None -> ()

let add t key value =
  if t.cap > 0 then begin
    if not (Hashtbl.mem t.tbl key) && Hashtbl.length t.tbl >= t.cap then
      evict_lru t;
    let e = { value; used = 0 } in
    touch t e;
    Hashtbl.replace t.tbl key e
  end

let length t = Hashtbl.length t.tbl
let cap t = t.cap
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
