(** The [ise serve] daemon: a long-lived ISE service over a Unix
    domain socket.

    One resident supervisor process owns the litmus library, the
    enumerator caches warmed by previous requests, and the result
    {!Store}; batch requests fan out over {!Ise_pool.Pool} workers
    forked {e from that hot process}, so every worker inherits the
    warmed state at fork time instead of paying process start-up and
    cold caches per request — the daemon's whole reason to exist.

    Concurrency model: a [select] loop multiplexes the listening
    socket and all client connections; frames are peeled off
    per-connection buffers as they complete, and each request is
    handled synchronously (parallelism lives {e inside} a request, in
    the pool fan-out — requests from concurrent clients interleave at
    frame granularity, which keeps responses trivially ordered per
    connection).

    Protocol discipline (see {!Proto}): the first frame of every
    connection must be [Hello]; any framing error, oversized frame,
    protocol-version mismatch, or undecodable payload is answered with
    a typed [Error] frame and the connection is closed — a misbehaving
    client can never wedge or crash the daemon.

    [SIGTERM]/[SIGINT] request a drain: the current request finishes,
    every connection is closed, the socket file is removed, and
    {!serve_forever} returns. *)

type config = {
  socket_path : string;
  store_dir : string option;  (** [None] disables result caching *)
  jobs : int;  (** pool workers for batch fan-out; [<= 1] in-process *)
  mem_entries : int;  (** store's in-memory LRU capacity *)
  max_payload : int;  (** request frames above this are rejected *)
  log : string -> unit;
}

val default_config : socket_path:string -> config
(** No store, [jobs = 1], 512 memory entries, 16 MiB max payload,
    silent log. *)

type t

val create : config -> t
(** Binds and listens (removing a stale socket file first).  Raises
    [Unix.Unix_error] if the path is unusable. *)

val store : t -> Store.t option
val stats : t -> Proto.server_stats

val request_drain : t -> unit
(** Async-signal-safe: sets the drain flag the serve loop checks. *)

val install_signal_handlers : t -> unit
(** [SIGTERM]/[SIGINT] → {!request_drain}; [SIGPIPE] ignored (a client
    vanishing mid-write must not kill the daemon). *)

val serve_forever : t -> unit
(** Runs until a drain is requested, then closes everything and
    removes the socket file. *)

val run : config -> unit
(** [create] + {!install_signal_handlers} + {!serve_forever}. *)
