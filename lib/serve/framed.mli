(** Generic framed Unix-socket server loop, shared by every daemon in
    the tree ([ise serve], [ise fabric worker]).

    A daemon built on this module gets the full connection discipline
    of {!Server} for free: a select loop over a listening socket and
    its accepted connections, per-connection growable receive buffers,
    streaming {!Ise_pool.Codec} frame peeling, and the typed-error
    mapping for everything that can go wrong {e below} the payload —
    oversized frames, unknown Codec versions, garbage bytes, and
    protocol-byte mismatches.  The caller supplies only the payload
    layer: how to decode a request, how to render a typed error frame,
    and what a Hello means ({!hello_done}/{!mark_hello} carry the
    "first request must be Hello" state).

    The error callback owns the response: it must send its protocol's
    typed error frame and close the connection (via {!close_conn}), so
    a malformed peer can never desynchronise the stream. *)

(** {1 Typed error kinds}

    One set of kinds for every framed protocol; each daemon renders
    them into its own error response constructor. *)

type err_kind =
  | Unsupported_proto
  | Bad_request  (** well-formed frame, invalid at this point (no Hello…) *)
  | Frame_too_large
  | Malformed_frame  (** framing or payload did not decode *)
  | Internal

val err_name : err_kind -> string

(** {1 Connections} *)

type conn

val fd : conn -> Unix.file_descr
val closed : conn -> bool

val hello_done : conn -> bool
(** Has this connection completed its protocol handshake?  Starts
    [false]; the caller's request handler flips it with
    {!mark_hello}. *)

val mark_hello : conn -> unit

val proto : conn -> int
(** The connection's negotiated protocol version.  Starts at the
    server's [proto]; a protocol that negotiates down during its Hello
    records the agreed version with {!set_proto} and renders every
    later response at that version. *)

val set_proto : conn -> int -> unit

val frame_proto : conn -> int
(** Protocol byte of the frame currently being delivered to the
    [request] callback — self-describing payload encodings (a v1 peer
    and a v2 peer marshal differently) dispatch on this. *)

(** {1 The server} *)

type t

val create : socket_path:string -> unit -> t
(** Binds and listens.  An existing socket file is probe-connected
    first: a live daemon answers the probe and [create] raises
    [Unix.Unix_error (EADDRINUSE, _, _)] instead of stealing its
    address; a dead predecessor's socket (connect refused — the owner
    was SIGKILLed before it could unlink) is silently replaced.
    @raise Unix.Unix_error on a live owner or bind/listen failure. *)

val connections : t -> int
(** Accepted over the server's lifetime. *)

val draining : t -> bool
val request_drain : t -> unit

val install_signal_handlers : t -> unit
(** SIGTERM/SIGINT request a drain; SIGPIPE is ignored (a dying client
    must not kill the daemon mid-write).  Draining unlinks the socket,
    so a signalled daemon never leaves a stale file behind. *)

val close_conn : t -> conn -> unit

val serve :
  ?min_proto:int ->
  ?tick:(unit -> unit) ->
  t ->
  proto:int ->
  max_payload:int ->
  error:(conn -> err_kind -> string -> unit) ->
  request:(conn -> string -> unit) ->
  on_drained:(unit -> unit) ->
  unit
(** Run the select loop until {!request_drain}.  Inbound frames must
    carry a Codec protocol byte in [[min_proto, proto]] (default:
    exactly [proto]) — the range is what lets a daemon keep speaking
    to older peers; {!frame_proto} exposes each frame's byte to the
    handler.  [max_payload] bounds one frame.  [request conn payload]
    receives each well-framed payload (still marshalled — the caller
    decodes, and reports its own decode failures through its error
    path); [error conn kind msg] receives every framing-layer failure.
    [tick] runs once per loop iteration (at least every second) — the
    heartbeat/housekeeping hook.  On drain: every connection is
    closed, [on_drained] runs (close pools, log), then the listening
    socket is closed and unlinked. *)
