module Codec = Ise_pool.Codec

type err_kind =
  | Unsupported_proto
  | Bad_request
  | Frame_too_large
  | Malformed_frame
  | Internal

let err_name = function
  | Unsupported_proto -> "unsupported-proto"
  | Bad_request -> "bad-request"
  | Frame_too_large -> "frame-too-large"
  | Malformed_frame -> "malformed-frame"
  | Internal -> "internal"

type conn = {
  c_fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable len : int;  (* valid bytes at the front of [buf] *)
  mutable hello_done : bool;
  mutable closed : bool;
  mutable c_proto : int;  (* negotiated protocol for this connection *)
  mutable c_frame_proto : int;  (* protocol byte of the frame in [request] *)
}

let fd c = c.c_fd
let closed c = c.closed
let hello_done c = c.hello_done
let mark_hello c = c.hello_done <- true
let proto c = c.c_proto
let set_proto c p = c.c_proto <- p
let frame_proto c = c.c_frame_proto

type t = {
  socket_path : string;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  mutable draining : bool;
  mutable connections : int;
}

(* Stale-socket hygiene: an existing socket file may belong to a live
   daemon (a probe connect succeeds — refuse to steal its address) or
   to a dead predecessor that never got to unlink (SIGKILL, power loss
   — the probe is refused, so replacing the file is safe). *)
let probe_stale socket_path =
  if Sys.file_exists socket_path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX socket_path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", socket_path));
    try Unix.unlink socket_path with Unix.Unix_error _ -> ()
  end

let create ~socket_path () =
  probe_stale socket_path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec fd;
  Unix.bind fd (Unix.ADDR_UNIX socket_path);
  Unix.listen fd 16;
  { socket_path; listen_fd = fd; conns = []; draining = false;
    connections = 0 }

let connections t = t.connections
let draining t = t.draining
let request_drain t = t.draining <- true

let install_signal_handlers t =
  let drain = Sys.Signal_handle (fun _ -> request_drain t) in
  Sys.set_signal Sys.sigterm drain;
  Sys.set_signal Sys.sigint drain;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ())

let close_conn t conn =
  if not conn.closed then begin
    conn.closed <- true;
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c -> c != conn) t.conns
  end

(* Peel complete frames off the connection buffer; stop on Need_more,
   hand anything corrupt to [error] as a typed kind (the callback sends
   the error frame and closes the connection). *)
let drain_frames conn ~proto ~min_proto ~max_payload ~error ~request =
  let continue = ref true in
  while !continue && not conn.closed do
    match Codec.decode ~max_payload conn.buf ~pos:0 ~len:conn.len with
    | Codec.Need_more -> continue := false
    | Codec.Corrupt (Codec.Oversized n) ->
      error conn Frame_too_large
        (Printf.sprintf "claimed payload of %d bytes exceeds the %d-byte cap"
           n max_payload)
    | Codec.Corrupt (Codec.Unsupported_version v) ->
      error conn Unsupported_proto
        (Printf.sprintf "unsupported frame version %d" v)
    | Codec.Corrupt e ->
      error conn Malformed_frame (Codec.error_to_string e)
    | Codec.Frame { payload; proto = got; consumed } ->
      Bytes.blit conn.buf consumed conn.buf 0 (conn.len - consumed);
      conn.len <- conn.len - consumed;
      if got < min_proto || got > proto then
        error conn Unsupported_proto
          (Printf.sprintf "frame protocol byte %d, daemon speaks v%d..v%d"
             got min_proto proto)
      else begin
        conn.c_frame_proto <- got;
        request conn payload
      end
  done

let read_chunk = Bytes.create 65536

let handle_readable t conn ~proto ~min_proto ~max_payload ~error ~request =
  match Unix.read conn.c_fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 -> close_conn t conn (* clean EOF *)
  | n ->
    if conn.len + n > Bytes.length conn.buf then begin
      let cap = max (conn.len + n) (2 * Bytes.length conn.buf) in
      let bigger = Bytes.create cap in
      Bytes.blit conn.buf 0 bigger 0 conn.len;
      conn.buf <- bigger
    end;
    Bytes.blit read_chunk 0 conn.buf conn.len n;
    conn.len <- conn.len + n;
    drain_frames conn ~proto ~min_proto ~max_payload ~error ~request
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    close_conn t conn
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let accept t ~proto =
  match Unix.accept t.listen_fd with
  | fd, _ ->
    Unix.set_close_on_exec fd;
    t.connections <- t.connections + 1;
    t.conns <-
      { c_fd = fd; buf = Bytes.create 4096; len = 0; hello_done = false;
        closed = false; c_proto = proto; c_frame_proto = proto }
      :: t.conns
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let serve ?min_proto ?(tick = fun () -> ()) t ~proto ~max_payload ~error
    ~request ~on_drained =
  let min_proto = match min_proto with Some p -> p | None -> proto in
  while not t.draining do
    let fds = t.listen_fd :: List.map (fun c -> c.c_fd) t.conns in
    (match Unix.select fds [] [] 1.0 with
     | readable, _, _ ->
       List.iter
         (fun fd ->
           if t.draining then ()
           else if fd = t.listen_fd then accept t ~proto
           else
             match List.find_opt (fun c -> c.c_fd = fd) t.conns with
             | Some conn ->
               handle_readable t conn ~proto ~min_proto ~max_payload ~error
                 ~request
             | None -> ())
         readable
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    if not t.draining then tick ()
  done;
  List.iter (fun c -> close_conn t c) t.conns;
  on_drained ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ())
