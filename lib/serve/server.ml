open Ise_litmus

type config = {
  socket_path : string;
  store_dir : string option;
  jobs : int;
  mem_entries : int;
  max_payload : int;
  log : string -> unit;
}

let default_config ~socket_path = {
  socket_path;
  store_dir = None;
  jobs = 1;
  mem_entries = 512;
  max_payload = 16 * 1024 * 1024;
  log = ignore;
}

type t = {
  cfg : config;
  framed : Framed.t;
  store : Store.t option;
  started : float;
  (* persistent worker pool shared by every litmus request: forked
     lazily at the first parallel batch, then reused — the fork cost is
     paid once per daemon, not once per request.  The job carries its
     params because the pool's function is fixed at creation. *)
  mutable pool :
    (Proto.run_params * Lit_test.t, Proto.litmus_payload) Ise_pool.Pool.t
      option;
  mutable requests : int;
  mutable litmus_runs : int;
  mutable replays : int;
  mutable errors : int;
}

(* one litmus run, the cold path — identical to `ise litmus -j 1` *)
let run_litmus params test =
  let r =
    Lit_run.run ~seeds:params.Proto.seeds
      ~inject_faults:params.Proto.inject_faults
      ~timer_interrupts:params.Proto.timer_interrupts
      ~cfg:(Proto.cfg_of_params params) test
  in
  {
    Proto.lp_line = Lit_run.summary_line r;
    lp_pass = r.Lit_run.pass && r.Lit_run.contract_ok;
  }

let create cfg =
  let framed = Framed.create ~socket_path:cfg.socket_path () in
  let store =
    Option.map
      (fun dir -> Store.open_ ~mem_entries:cfg.mem_entries ~dir ())
      cfg.store_dir
  in
  (* fork the workers before any client connects, so they inherit a
     pristine address space (no connection fds) *)
  let pool =
    if cfg.jobs > 1 && Ise_pool.Pool.fork_available then begin
      let p =
        Ise_pool.Pool.create ~jobs:cfg.jobs (fun (params, test) ->
            run_litmus params test)
      in
      Ise_pool.Pool.prespawn p;
      Some p
    end
    else None
  in
  {
    cfg;
    framed;
    store;
    started = Unix.gettimeofday ();
    pool;
    requests = 0;
    litmus_runs = 0;
    replays = 0;
    errors = 0;
  }

let store t = t.store

let store_view t =
  Option.map
    (fun s ->
      let c = Store.counters s in
      {
        Proto.v_mem_hits = c.Store.c_mem_hits;
        v_disk_hits = c.Store.c_disk_hits;
        v_misses = c.Store.c_misses;
        v_writes = c.Store.c_writes;
        v_corrupt_skipped = c.Store.c_corrupt_skipped;
        v_mem_evictions = c.Store.c_mem_evictions;
      })
    t.store

let stats t = {
  Proto.ss_pid = Unix.getpid ();
  ss_uptime_s = Unix.gettimeofday () -. t.started;
  ss_git_rev = Ise_obs.Runinfo.git_rev ();
  ss_connections = Framed.connections t.framed;
  ss_requests = t.requests;
  ss_litmus_runs = t.litmus_runs;
  ss_replays = t.replays;
  ss_errors = t.errors;
  ss_store = store_view t;
}

(* Prometheus exposition: the daemon's lifetime counters and store
   view rendered through a throwaway registry, so the text format and
   name sanitization live in exactly one place
   (Ise_telemetry.Registry.to_prometheus). *)
let metrics_text t =
  let reg = Ise_telemetry.Registry.create () in
  let setc n v =
    Ise_telemetry.Registry.set_counter (Ise_telemetry.Registry.counter reg n) v
  in
  let setg n v =
    Ise_telemetry.Registry.set (Ise_telemetry.Registry.gauge reg n) v
  in
  setg "serve/uptime_s" (Unix.gettimeofday () -. t.started);
  setc "serve/connections" (Framed.connections t.framed);
  setc "serve/requests" t.requests;
  setc "serve/litmus_runs" t.litmus_runs;
  setc "serve/replays" t.replays;
  setc "serve/errors" t.errors;
  (match store_view t with
   | None -> ()
   | Some v ->
     setc "serve/store/mem_hits" v.Proto.v_mem_hits;
     setc "serve/store/disk_hits" v.Proto.v_disk_hits;
     setc "serve/store/misses" v.Proto.v_misses;
     setc "serve/store/writes" v.Proto.v_writes;
     setc "serve/store/corrupt_skipped" v.Proto.v_corrupt_skipped;
     setc "serve/store/mem_evictions" v.Proto.v_mem_evictions);
  Ise_telemetry.Registry.to_prometheus reg

let request_drain t = Framed.request_drain t.framed
let install_signal_handlers t = Framed.install_signal_handlers t.framed

(* ------------------------------------------------------------------ *)
(* request handling                                                    *)

let handle_litmus t tests params =
  let lookup test =
    match t.store with
    | None -> Error (test, None)
    | Some store ->
      let key = Proto.litmus_key test params in
      (match Option.bind (Store.find store key)
               Proto.litmus_payload_of_string with
      | Some p ->
        Ok { Proto.r_line = p.Proto.lp_line; r_pass = p.Proto.lp_pass;
             r_cached = true }
      | None -> Error (test, Some key))
  in
  let slots = List.map lookup tests in
  let misses =
    List.filter_map (function Error tk -> Some tk | Ok _ -> None) slots
  in
  (* (payload, cacheable): pool failures are transient, never cached *)
  let computed =
    let run (test, _) = run_litmus params test in
    let n = List.length misses in
    t.litmus_runs <- t.litmus_runs + n;
    if n > 1 && t.cfg.jobs > 1 && Ise_pool.Pool.fork_available then begin
      let pool =
        match t.pool with
        | Some p -> p
        | None ->
          let p =
            Ise_pool.Pool.create ~jobs:t.cfg.jobs
              (fun (params, test) -> run_litmus params test)
          in
          t.pool <- Some p;
          p
      in
      let arr = Array.of_list (List.map (fun (test, _) -> (params, test)) misses) in
      let outcomes, _stats = Ise_pool.Pool.run pool arr in
      List.map2
        (fun (test, _) outcome ->
          match outcome with
          | Ise_pool.Pool.Done p -> (p, true)
          | Ise_pool.Pool.Failed err ->
            ( {
                Proto.lp_line =
                  Printf.sprintf "%-16s POOL FAILURE: %s" test.Lit_test.name
                    (Ise_pool.Pool.error_to_string err);
                lp_pass = false;
              },
              false )
          | Ise_pool.Pool.Split _ -> assert false (* no bisect here *))
        misses (Array.to_list outcomes)
    end
    else List.map (fun m -> (run m, true)) misses
  in
  List.iter2
    (fun (_, key) ((p : Proto.litmus_payload), cacheable) ->
      match t.store, key with
      | Some store, Some key when cacheable ->
        Store.add store key (Proto.litmus_payload_to_string p)
      | _ -> ())
    misses computed;
  (* stitch cached and computed replies back into request order *)
  let rest = ref computed in
  List.map
    (function
      | Ok reply -> reply
      | Error _ ->
        let p, _ = List.hd !rest in
        rest := List.tl !rest;
        { Proto.r_line = p.Proto.lp_line; r_pass = p.Proto.lp_pass;
          r_cached = false })
    slots

let handle_replay t entry seeds =
  let cached =
    match t.store with
    | None -> None
    | Some store ->
      Option.bind
        (Store.find store (Proto.replay_key entry ~seeds))
        Proto.replay_payload_of_string
  in
  match cached with
  | Some result -> (result, true)
  | None ->
    t.replays <- t.replays + 1;
    let result = Ise_fuzz.Campaign.replay ~seeds entry in
    Option.iter
      (fun store ->
        Store.add store (Proto.replay_key entry ~seeds)
          (Proto.replay_payload_to_string result))
      t.store;
    (result, false)

(* ------------------------------------------------------------------ *)
(* connection plumbing (the generic loop lives in Framed)              *)

let send_error t conn kind msg =
  t.errors <- t.errors + 1;
  t.cfg.log (Printf.sprintf "error to client: %s (%s)"
               (Proto.err_name kind) msg);
  (try Proto.write_response (Framed.fd conn) (Proto.Error (kind, msg))
   with Unix.Unix_error _ | Sys_error _ -> ());
  Framed.close_conn t.framed conn

let send t conn resp =
  try Proto.write_response (Framed.fd conn) resp
  with Unix.Unix_error _ | Sys_error _ -> Framed.close_conn t.framed conn

let handle_request t conn (req : Proto.request) =
  t.requests <- t.requests + 1;
  match req with
  | Proto.Hello { proto; git_rev = _ } ->
    if proto <> Proto.version then
      send_error t conn Proto.Unsupported_proto
        (Printf.sprintf "daemon speaks protocol v%d, client sent v%d"
           Proto.version proto)
    else begin
      Framed.mark_hello conn;
      send t conn
        (Proto.Hello_ok
           { proto = Proto.version; git_rev = Ise_obs.Runinfo.git_rev () })
    end
  | _ when not (Framed.hello_done conn) ->
    send_error t conn Proto.Bad_request "first request must be Hello"
  | Proto.Litmus { tests; params } -> (
    match handle_litmus t tests params with
    | replies -> send t conn (Proto.Litmus_done replies)
    | exception e ->
      send_error t conn Proto.Internal (Printexc.to_string e))
  | Proto.Fuzz_replay { entry; seeds } -> (
    match handle_replay t entry seeds with
    | result, cached -> send t conn (Proto.Replay_done { result; cached })
    | exception e ->
      send_error t conn Proto.Internal (Printexc.to_string e))
  | Proto.Stats_req -> send t conn (Proto.Stats (stats t))
  | Proto.Metrics_req -> send t conn (Proto.Metrics (metrics_text t))
  | Proto.Shutdown ->
    send t conn Proto.Shutting_down;
    t.cfg.log "shutdown requested by client";
    request_drain t

let serve_forever t =
  t.cfg.log (Printf.sprintf "listening on %s (pid %d)" t.cfg.socket_path
               (Unix.getpid ()));
  Framed.serve t.framed ~proto:Proto.version ~max_payload:t.cfg.max_payload
    ~error:(fun conn kind msg -> send_error t conn kind msg)
    ~request:(fun conn payload ->
      match (Ise_pool.Codec.unmarshal payload : Proto.request) with
      | req -> handle_request t conn req
      | exception _ ->
        send_error t conn Proto.Malformed_frame
          "request payload does not decode")
    ~on_drained:(fun () ->
      (match t.pool with
       | Some p ->
         Ise_pool.Pool.close p;
         t.pool <- None
       | None -> ());
      t.cfg.log "drained; bye")

let run cfg =
  let t = create cfg in
  install_signal_handlers t;
  serve_forever t
