(** The contract among the cores, the architectural interface, and the
    OS (Table 5), as a checkable predicate over execution traces.

    Every operational run of the machine emits a trace of interface
    operations; this module verifies:

    1. {b Cores} supply faulting stores to the interface in the serial
       order dictated by the store buffer (per-core [Put] sequence
       numbers are increasing).
    2. {b Interface} supplies faulting stores to the OS in the order
       received ([Get] order equals [Put] order, per core).
    3. {b OS}: the program resumes only after exception handling
       ([Resume] after [Resolve]); all retrieved faulting stores are
       applied before resolving; and they are applied in interface
       order. *)

type event =
  | Detect of { core : int; cycle : int }
  | Put of { core : int; cycle : int; record : Fault.record }
  | Get of { core : int; cycle : int; record : Fault.record }
  | Apply of { core : int; cycle : int; record : Fault.record }
  | Resolve of { core : int; cycle : int }
  | Resume of { core : int; cycle : int }
  | Terminate of { core : int; cycle : int }
      (** irrecoverable fault: the application is terminated and its
          outstanding faulting stores are discarded (§4.1) *)

val pp_event : Format.formatter -> event -> unit

type violation = {
  rule : string;
  detail : string;
}

val check :
  ?ordered_apply:bool -> ncores:int -> event list -> (unit, violation) result
(** Checks the whole trace (events in global observation order)
    against the contract.  [ordered_apply] (default [true]) enforces
    rule 3's apply-in-interface-order clause, which Table 5 requires
    only for PC — pass [false] for WC machines, whose OS may apply
    faulting stores in any order. *)

val check_exn : ?ordered_apply:bool -> ncores:int -> event list -> unit
(** @raise Failure with a descriptive message on violation. *)
