(** Faulting Store Buffer (§5.2): the backing storage of the
    architectural interface between the microarchitecture and the OS.

    A per-core ring buffer, conceptually located in pinned main
    memory, exposed through four system registers:

    - [base] and [mask]: the OS-configured location/size of the ring;
    - [tail]: written by the FSBC, the position of the next drain;
    - [head]: written by the OS, the position of the oldest unread
      faulting store.

    Order among faulting stores is encoded by their relative positions
    (FIFO).  [head = tail] means all faulting stores have been
    retrieved. *)

type t

val create : ?entries:int -> base:int -> unit -> t
(** [entries] defaults to 32, matching the store buffer size of
    Table 2 ("the FSB is sized according to the number of store buffer
    entries").
    @raise Invalid_argument unless [entries] is a positive power of
    two — the hardware masks the ring index, so any other size would
    silently alias slots. *)

val entries : t -> int

val capacity : t -> int
(** Alias of {!entries}: the number of slots in the ring.  The buffer
    overflows when {!pending}[ = capacity]; see {!fsbc_append} for the
    producer-side contract at that point. *)

(** {1 System-register view} *)

val base : t -> int
val mask : t -> int
val head : t -> int
val tail : t -> int

(** {1 FSBC side (producer)} *)

val fsbc_append : t -> Fault.record -> bool
(** Writes a faulting store at the tail and increments the tail
    pointer.

    {b Overflow behaviour}: when the ring is full ([{!is_full} t]),
    the append returns [false] and changes {e nothing} — no slot is
    overwritten, no pointer moves, no statistic is updated.  The FSBC
    must then apply one of the machine's overflow policies: stall the
    drain until the OS frees entries (head advances), or degrade the
    record to a replayed precise store.  Silently dropping the record
    would lose a faulting store, which the Table 5 contract (and the
    chaos watchdog) treats as a machine-level invariant violation. *)

val is_full : t -> bool
(** [true] exactly when {!pending}[ = ]{!capacity}: the next
    {!fsbc_append} will refuse. *)

(** {1 OS side (consumer)} *)

val os_peek : t -> Fault.record option
(** The record at the head pointer, if any. *)

val os_advance : t -> unit
(** Marks the head record as read. @raise Failure if empty. *)

val os_drain_all : t -> Fault.record list
(** GET loop: peek/advance until [head = tail]; returns the records in
    interface (FIFO) order. *)

val pending : t -> int
val is_empty : t -> bool

(** {1 Statistics} *)

val total_appended : t -> int

val total_drained : t -> int
(** Records retrieved by the OS over the buffer's lifetime. *)

val high_watermark : t -> int
(** Maximum simultaneous occupancy observed. *)
