(** Faulting Store Buffer (§5.2): the backing storage of the
    architectural interface between the microarchitecture and the OS.

    A per-core ring buffer, conceptually located in pinned main
    memory, exposed through four system registers:

    - [base] and [mask]: the OS-configured location/size of the ring;
    - [tail]: written by the FSBC, the position of the next drain;
    - [head]: written by the OS, the position of the oldest unread
      faulting store.

    Order among faulting stores is encoded by their relative positions
    (FIFO).  [head = tail] means all faulting stores have been
    retrieved. *)

type t

val create : ?entries:int -> base:int -> unit -> t
(** [entries] defaults to 32, matching the store buffer size of
    Table 2 ("the FSB is sized according to the number of store buffer
    entries").  Must be a power of two. *)

val entries : t -> int

(** {1 System-register view} *)

val base : t -> int
val mask : t -> int
val head : t -> int
val tail : t -> int

(** {1 FSBC side (producer)} *)

val fsbc_append : t -> Fault.record -> bool
(** Writes a faulting store at the tail and increments the tail
    pointer.  Returns [false] (and does nothing) if the ring is full —
    the FSBC must stall the drain in that case. *)

val is_full : t -> bool

(** {1 OS side (consumer)} *)

val os_peek : t -> Fault.record option
(** The record at the head pointer, if any. *)

val os_advance : t -> unit
(** Marks the head record as read. @raise Failure if empty. *)

val os_drain_all : t -> Fault.record list
(** GET loop: peek/advance until [head = tail]; returns the records in
    interface (FIFO) order. *)

val pending : t -> int
val is_empty : t -> bool

(** {1 Statistics} *)

val total_appended : t -> int

val total_drained : t -> int
(** Records retrieved by the OS over the buffer's lifetime. *)

val high_watermark : t -> int
(** Maximum simultaneous occupancy observed. *)
