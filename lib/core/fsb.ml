open Ise_util

type t = {
  ring : Fault.record Ring_buffer.t;
  base_addr : int;
  mutable appended : int;
  mutable drained : int;
  mutable watermark : int;
}

let create ?(entries = 32) ~base () =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Fsb.create: entries must be a positive power of two";
  { ring = Ring_buffer.create ~capacity:entries; base_addr = base;
    appended = 0; drained = 0; watermark = 0 }

let entries t = Ring_buffer.capacity t.ring
let capacity = entries
let base t = t.base_addr
let mask t = Ring_buffer.capacity t.ring - 1
let head t = Ring_buffer.head t.ring
let tail t = Ring_buffer.tail t.ring
let is_full t = Ring_buffer.is_full t.ring
let is_empty t = Ring_buffer.is_empty t.ring
let pending t = Ring_buffer.length t.ring

let fsbc_append t record =
  if is_full t then false
  else begin
    Ring_buffer.push t.ring record;
    t.appended <- t.appended + 1;
    t.watermark <- max t.watermark (pending t);
    true
  end

let os_peek t = Ring_buffer.peek t.ring

let os_advance t =
  if is_empty t then failwith "Fsb.os_advance: head has caught up with tail";
  ignore (Ring_buffer.pop t.ring);
  t.drained <- t.drained + 1

let os_drain_all t =
  let rec loop acc =
    match os_peek t with
    | None -> List.rev acc
    | Some r ->
      os_advance t;
      loop (r :: acc)
  in
  loop []

let total_appended t = t.appended
let total_drained t = t.drained
let high_watermark t = t.watermark
