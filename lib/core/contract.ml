type event =
  | Detect of { core : int; cycle : int }
  | Put of { core : int; cycle : int; record : Fault.record }
  | Get of { core : int; cycle : int; record : Fault.record }
  | Apply of { core : int; cycle : int; record : Fault.record }
  | Resolve of { core : int; cycle : int }
  | Resume of { core : int; cycle : int }
  | Terminate of { core : int; cycle : int }

let pp_event ppf = function
  | Detect e -> Format.fprintf ppf "DETECT(core=%d)@%d" e.core e.cycle
  | Put e ->
    Format.fprintf ppf "PUT(core=%d, %a)@%d" e.core Fault.pp_record e.record
      e.cycle
  | Get e ->
    Format.fprintf ppf "GET(core=%d, %a)@%d" e.core Fault.pp_record e.record
      e.cycle
  | Apply e ->
    Format.fprintf ppf "APPLY(core=%d, %a)@%d" e.core Fault.pp_record e.record
      e.cycle
  | Resolve e -> Format.fprintf ppf "RESOLVE(core=%d)@%d" e.core e.cycle
  | Resume e -> Format.fprintf ppf "RESUME(core=%d)@%d" e.core e.cycle
  | Terminate e -> Format.fprintf ppf "TERMINATE(core=%d)@%d" e.core e.cycle

type violation = {
  rule : string;
  detail : string;
}

let fail rule fmt = Format.kasprintf (fun detail -> Error { rule; detail }) fmt

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* Rule 1: per-core PUT sequence numbers strictly increase. *)
let check_put_order ~ncores trace =
  let last = Array.make ncores min_int in
  List.fold_left
    (fun acc ev ->
      let* () = acc in
      match ev with
      | Put { core; record; _ } ->
        if record.Fault.seq <= last.(core) then
          fail "cores-supply-in-sb-order"
            "core %d PUT seq %d after seq %d" core record.Fault.seq last.(core)
        else begin
          last.(core) <- record.Fault.seq;
          Ok ()
        end
      | _ -> Ok ())
    (Ok ()) trace

(* Rule 2: per-core GET order equals PUT order (FIFO interface). *)
let check_fifo ~ncores trace =
  let puts = Array.make ncores [] and gets = Array.make ncores [] in
  List.iter
    (function
      | Put { core; record; _ } -> puts.(core) <- record :: puts.(core)
      | Get { core; record; _ } -> gets.(core) <- record :: gets.(core)
      | _ -> ())
    trace;
  let rec is_prefix got put =
    match (got, put) with
    | [], _ -> true
    | g :: gs, p :: ps when g = p -> is_prefix gs ps
    | _ -> false
  in
  let rec loop core =
    if core >= ncores then Ok ()
    else
      let put = List.rev puts.(core) and got = List.rev gets.(core) in
      if not (is_prefix got put) then
        fail "interface-fifo" "core %d GET order diverges from PUT order" core
      else loop (core + 1)
  in
  loop 0

(* Rule 3a: everything a handler GETs is applied before its RESOLVE.
   Rule 3b: applications happen in GET (interface) order.
   Rule 3c: RESUME only after RESOLVE. *)
let check_os ~ordered_apply ~ncores trace =
  let outstanding = Array.make ncores [] in
  (* records got but not yet applied, in order *)
  let resolved = Array.make ncores true in
  (* no handler in flight *)
  List.fold_left
    (fun acc ev ->
      let* () = acc in
      match ev with
      | Detect { core; _ } ->
        resolved.(core) <- false;
        Ok ()
      | Get { core; record; _ } ->
        outstanding.(core) <- outstanding.(core) @ [ record ];
        Ok ()
      | Apply { core; record; _ } -> (
        match outstanding.(core) with
        | r :: rest when r = record ->
          outstanding.(core) <- rest;
          Ok ()
        | r :: _ when ordered_apply ->
          fail "os-apply-in-interface-order"
            "core %d applied %s but interface order expects %s" core
            (Format.asprintf "%a" Fault.pp_record record)
            (Format.asprintf "%a" Fault.pp_record r)
        | (_ :: _) as pending ->
          (* WC: any retrieved-but-unapplied store may be applied *)
          if List.mem record pending then begin
            outstanding.(core) <-
              List.filter (fun x -> x <> record) pending;
            Ok ()
          end
          else
            fail "os-apply-all" "core %d applied a store it never retrieved"
              core
        | [] ->
          fail "os-apply-in-interface-order"
            "core %d applied a store it never retrieved" core)
      | Resolve { core; _ } ->
        if outstanding.(core) <> [] then
          fail "os-apply-all-before-resolve"
            "core %d resolved with %d unapplied faulting stores" core
            (List.length outstanding.(core))
        else begin
          resolved.(core) <- true;
          Ok ()
        end
      | Resume { core; _ } ->
        if not resolved.(core) then
          fail "os-resume-after-resolve" "core %d resumed before RESOLVE" core
        else Ok ()
      | Terminate { core; _ } ->
        (* §4.1: an irrecoverable fault terminates the application; its
           retrieved-but-unapplied faulting stores are discarded *)
        outstanding.(core) <- [];
        resolved.(core) <- true;
        Ok ()
      | Put _ -> Ok ())
    (Ok ()) trace

let check ?(ordered_apply = true) ~ncores trace =
  let* () = check_put_order ~ncores trace in
  let* () = check_fifo ~ncores trace in
  check_os ~ordered_apply ~ncores trace

let check_exn ?ordered_apply ~ncores trace =
  match check ?ordered_apply ~ncores trace with
  | Ok () -> ()
  | Error v -> failwith (Printf.sprintf "contract violation [%s]: %s" v.rule v.detail)
