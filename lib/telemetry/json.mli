(** Minimal JSON: just enough to emit Chrome trace-event files and
    machine-readable benchmark reports, and to parse them back in
    tests — the toolchain has no JSON package and the container cannot
    install one.

    Numbers are kept as either [Int] or [Float]; the printer never
    emits [nan]/[inf] (they become [null], which keeps every emitted
    document standard-compliant). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read. *)

val of_string : string -> (t, string) result
(** Strict parser for the subset above.  Accepts any standard JSON
    document; integers without [.]/[e] parse as [Int], everything else
    numeric as [Float]. *)

(** {1 Accessors} (total: return [None] on shape mismatch) *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int]. *)

val to_str : t -> string option
