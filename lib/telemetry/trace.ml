open Ise_util

type phase =
  | Span_begin
  | Span_end
  | Instant
  | Counter_sample

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : phase;
  ev_ts : int;
  ev_tid : int;
  ev_args : (string * Json.t) list;
}

(* ------------------------------------------------------------------ *)
(* distributed trace context                                           *)

(* The context rides in [ev_args] rather than in dedicated record
   fields: both serializers (the journal line codec and the Chrome
   JSON emitter) round-trip args generically, so a context survives
   every existing export/import path — and events without one cost
   nothing. *)

type ctx = {
  trace_id : string;
  span_id : string;
  parent_span_id : string option;
}

let ctx_key_trace = "trace_id"
let ctx_key_span = "span_id"
let ctx_key_parent = "parent_span_id"

let ctx_args c =
  (ctx_key_trace, Json.String c.trace_id)
  :: (ctx_key_span, Json.String c.span_id)
  ::
  (match c.parent_span_id with
   | None -> []
   | Some p -> [ (ctx_key_parent, Json.String p) ])

let with_ctx ?ctx args =
  match ctx with None -> args | Some c -> args @ ctx_args c

let ctx_of_args args =
  let str k = Option.bind (List.assoc_opt k args) Json.to_str in
  match (str ctx_key_trace, str ctx_key_span) with
  | Some trace_id, Some span_id ->
    Some { trace_id; span_id; parent_span_id = str ctx_key_parent }
  | _ -> None

let ctx_of_event ev = ctx_of_args ev.ev_args

type t = {
  ring : event Ring_buffer.t option;
  mutable events_rev : event list;  (* unbounded mode *)
  mutable n_recorded : int;
  mutable n_dropped : int;
}

let create ?ring_capacity () =
  let ring =
    match ring_capacity with
    | None -> None
    | Some cap -> Some (Ring_buffer.create ~capacity:cap)
  in
  { ring; events_rev = []; n_recorded = 0; n_dropped = 0 }

let emit t ev =
  t.n_recorded <- t.n_recorded + 1;
  match t.ring with
  | Some rb ->
    if Ring_buffer.is_full rb then begin
      ignore (Ring_buffer.pop rb);
      t.n_dropped <- t.n_dropped + 1
    end;
    Ring_buffer.push rb ev
  | None -> t.events_rev <- ev :: t.events_rev

let span_begin t ?(cat = "") ?(args = []) ?ctx ~name ~tid ts =
  emit t
    { ev_name = name; ev_cat = cat; ev_ph = Span_begin; ev_ts = ts;
      ev_tid = tid; ev_args = with_ctx ?ctx args }

let span_end t ?(cat = "") ?(args = []) ?ctx ~name ~tid ts =
  emit t
    { ev_name = name; ev_cat = cat; ev_ph = Span_end; ev_ts = ts; ev_tid = tid;
      ev_args = with_ctx ?ctx args }

let instant t ?(cat = "") ?(args = []) ?ctx ~name ~tid ts =
  emit t
    { ev_name = name; ev_cat = cat; ev_ph = Instant; ev_ts = ts; ev_tid = tid;
      ev_args = with_ctx ?ctx args }

let counter t ~name ~value ts =
  emit t
    { ev_name = name; ev_cat = "counter"; ev_ph = Counter_sample; ev_ts = ts;
      ev_tid = 0; ev_args = [ ("value", Json.Float value) ] }

let events t =
  match t.ring with
  | Some rb -> Ring_buffer.to_list rb
  | None -> List.rev t.events_rev

let length t =
  match t.ring with
  | Some rb -> Ring_buffer.length rb
  | None -> List.length t.events_rev

let recorded t = t.n_recorded
let dropped t = t.n_dropped

let clear t =
  (match t.ring with Some rb -> Ring_buffer.clear rb | None -> ());
  t.events_rev <- [];
  t.n_recorded <- 0;
  t.n_dropped <- 0

let phase_letter = function
  | Span_begin -> "B"
  | Span_end -> "E"
  | Instant -> "i"
  | Counter_sample -> "C"

let event_to_json ?(pid = 0) ev =
  let base =
    [ ("name", Json.String ev.ev_name);
      ("cat", Json.String (if ev.ev_cat = "" then "ise" else ev.ev_cat));
      ("ph", Json.String (phase_letter ev.ev_ph));
      ("ts", Json.Int ev.ev_ts); ("pid", Json.Int pid);
      ("tid", Json.Int ev.ev_tid) ]
  in
  let scope =
    (* instant events need a scope; "t" = thread *)
    match ev.ev_ph with Instant -> [ ("s", Json.String "t") ] | _ -> []
  in
  let args =
    match ev.ev_args with [] -> [] | a -> [ ("args", Json.Obj a) ]
  in
  Json.Obj (base @ scope @ args)

let to_chrome_json ?(meta = []) ?pid t =
  Json.Obj
    (meta
    @ [ ("traceEvents", Json.List (List.map (event_to_json ?pid) (events t)));
        ("displayTimeUnit", Json.String "ms") ])
