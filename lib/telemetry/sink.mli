(** The attachable telemetry bundle: one metrics registry plus one
    trace recorder.

    Components hold a [Sink.t option], [None] by default — telemetry
    is strictly opt-in, and a disabled hot path is a single [match] on
    the option, with zero allocation.  See {!Ise_sim.Machine} for the
    wiring ([attach_telemetry]). *)

type t = {
  registry : Registry.t;
  trace : Trace.t;
}

val create : ?trace_capacity:int -> unit -> t
(** [trace_capacity] bounds the trace to a ring of that many events
    (power of two); omitted means unbounded. *)

val registry : t -> Registry.t
val trace : t -> Trace.t
