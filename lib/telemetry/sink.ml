type t = {
  registry : Registry.t;
  trace : Trace.t;
}

let create ?trace_capacity () =
  { registry = Registry.create ();
    trace = Trace.create ?ring_capacity:trace_capacity () }

let registry t = t.registry
let trace t = t.trace
