type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    (* "%.12g" prints integral floats without a decimal point, which
       would parse back as Int — keep the float shape *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let rec emit ~indent ~level b v =
  let nl pad =
    if indent then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (2 * pad) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        nl (level + 1);
        emit ~indent ~level:(level + 1) b item)
      items;
    nl level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char b ',';
        nl (level + 1);
        escape_string b k;
        Buffer.add_char b ':';
        if indent then Buffer.add_char b ' ';
        emit ~indent ~level:(level + 1) b item)
      fields;
    nl level;
    Buffer.add_char b '}'

let render ~indent v =
  let b = Buffer.create 256 in
  emit ~indent ~level:0 b v;
  Buffer.contents b

let to_string v = render ~indent:false v
let to_string_pretty v = render ~indent:true v

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.text
    && (match c.text.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    if c.pos >= String.length c.text then fail c "unterminated string";
    let ch = c.text.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents b
    | '\\' ->
      (if c.pos >= String.length c.text then fail c "unterminated escape";
       let e = c.text.[c.pos] in
       c.pos <- c.pos + 1;
       match e with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'n' -> Buffer.add_char b '\n'
       | 't' -> Buffer.add_char b '\t'
       | 'r' -> Buffer.add_char b '\r'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'u' ->
         if c.pos + 4 > String.length c.text then fail c "bad \\u escape";
         let hex = String.sub c.text c.pos 4 in
         c.pos <- c.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex)
           with _ -> fail c "bad \\u escape"
         in
         (* ASCII passes through; anything wider becomes '?' — the
            emitter never produces non-ASCII escapes *)
         Buffer.add_char b (if code < 0x80 then Char.chr code else '?')
       | _ -> fail c "bad escape");
      loop ()
    | c -> Buffer.add_char b c; loop ()
  in
  loop ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.text && is_num_char c.text.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.text start (c.pos - start) in
  let is_float =
    String.contains s '.' || String.contains s 'e' || String.contains s 'E'
  in
  if is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
    expect c '[';
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    expect c '{';
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some _ -> parse_number c

let of_string s =
  let c = { text = s; pos = 0 } in
  try
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage" else Ok v
  with Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
