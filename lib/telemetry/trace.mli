(** Structured trace recorder with Chrome trace-event export.

    Records begin/end spans, instant events, and counter samples in
    the simulator's cycle domain, and renders them as a Chrome
    trace-event JSON document ([{"traceEvents": [...]}]) loadable in
    Perfetto ([ui.perfetto.dev]) or [chrome://tracing].  Cycles are
    written to the [ts] field (the viewers display them as
    microseconds; only relative magnitudes matter).

    Two storage modes:
    - unbounded (default): every event is kept;
    - bounded: a ring of the most recent [ring_capacity] events
      (reusing {!Ise_util.Ring_buffer}), so tracing an arbitrarily
      long run stays O(capacity) memory — the number of evicted
      events is reported by {!dropped}. *)

type phase =
  | Span_begin  (** Chrome ["B"] *)
  | Span_end  (** Chrome ["E"] *)
  | Instant  (** Chrome ["i"] *)
  | Counter_sample  (** Chrome ["C"] *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : phase;
  ev_ts : int;  (** cycle *)
  ev_tid : int;  (** core id (0 for machine-level events) *)
  ev_args : (string * Json.t) list;
}

(** {1 Distributed trace context}

    A context identifies a span across process boundaries: the
    supervisor opens a dispatch span, ships the ids over the wire, and
    the worker parents its own spans under them.  The context rides in
    [ev_args] (keys [trace_id] / [span_id] / [parent_span_id]), so it
    survives every existing serializer — the journal line codec and
    the Chrome JSON emitter both round-trip args generically. *)

type ctx = {
  trace_id : string;  (** one id per campaign/run *)
  span_id : string;  (** this span *)
  parent_span_id : string option;  (** the remote parent, if any *)
}

val ctx_key_trace : string
val ctx_key_span : string
val ctx_key_parent : string
(** The [ev_args] keys a context occupies ([trace_id] / [span_id] /
    [parent_span_id]). *)

val ctx_args : ctx -> (string * Json.t) list
(** The arg-list encoding of a context. *)

val ctx_of_args : (string * Json.t) list -> ctx option
(** Inverse of {!ctx_args}; [None] when no context is present. *)

val ctx_of_event : event -> ctx option

type t

val create : ?ring_capacity:int -> unit -> t
(** [ring_capacity], when given, must be a positive power of two and
    enables the bounded mode. *)

val span_begin :
  t -> ?cat:string -> ?args:(string * Json.t) list -> ?ctx:ctx ->
  name:string -> tid:int -> int -> unit
(** The trailing [int] is the cycle timestamp (likewise below).
    [ctx], when given, is appended to [args] via {!ctx_args}. *)

val span_end :
  t -> ?cat:string -> ?args:(string * Json.t) list -> ?ctx:ctx ->
  name:string -> tid:int -> int -> unit

val instant :
  t -> ?cat:string -> ?args:(string * Json.t) list -> ?ctx:ctx ->
  name:string -> tid:int -> int -> unit

val counter : t -> name:string -> value:float -> int -> unit
(** Emits a Chrome counter-track sample ([ph = "C"], [args = {"value":
    v}]); Perfetto renders each name as its own counter track. *)

val events : t -> event list
(** Oldest first (post-eviction in bounded mode). *)

val length : t -> int
val recorded : t -> int
(** Total events ever emitted, including evicted ones. *)

val dropped : t -> int
val clear : t -> unit

val event_to_json : ?pid:int -> event -> Json.t
(** One Chrome trace-event object.  [pid] defaults to 0; the stitcher
    assigns one pid per source process. *)

val to_chrome_json : ?meta:(string * Json.t) list -> ?pid:int -> t -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}].  [meta]
    key/values (e.g. a run id / git rev stamp) are spliced into the
    top-level object ahead of [traceEvents]; Chrome/Perfetto ignore
    unknown keys. *)
