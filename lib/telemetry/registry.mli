(** Metrics registry: named counters, gauges, and histograms.

    Names are hierarchical slash-separated paths
    ([core0/fsb/occupancy], [mem/l1/miss_rate], ...).  Registration is
    idempotent — asking for an existing name of the same kind returns
    the same handle, so instrumentation sites can register lazily —
    but re-registering a name as a different kind raises
    [Invalid_argument] (a name collision is a bug, not data).

    Handles ([counter], [gauge], histogram) are plain mutable cells:
    updating one is a single store, no hashing, no allocation — cheap
    enough for per-event instrumentation on simulator hot paths.
    Histograms reuse {!Ise_util.Stats}. *)

type t

type counter
type gauge

val create : unit -> t

(** {1 Registration} *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> Ise_util.Stats.t

(** {1 Updates} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set_counter : counter -> int -> unit
(** For end-of-run absolute values mirrored from component stats. *)

val value : counter -> int
val set : gauge -> float -> unit
val get : gauge -> float

(** {1 Snapshot} *)

type summary = {
  s_count : int;
  s_mean : float;
  s_min : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_max : float;
}

type snap =
  | Snap_counter of int
  | Snap_gauge of float
  | Snap_histogram of summary

val snapshot : t -> (string * snap) list
(** Point-in-time view, sorted by name (hierarchical paths group
    naturally). *)

val reset : t -> unit
(** Zeroes counters and gauges and clears histograms; handles stay
    valid. *)

(** {1 Delta snapshots}

    The streaming-telemetry building blocks: a worker periodically
    {!drain}s its registry (read-and-reset for counters and
    histograms; gauges are absolute and left in place) and ships the
    delta; the supervisor {!absorb}s each delta into its own registry.
    Because histogram deltas carry raw samples, absorbed percentiles
    are exact, not a merge of summaries. *)

type dvalue =
  | D_counter of int  (** increments since the previous drain *)
  | D_gauge of float  (** absolute *)
  | D_histogram of float array  (** raw samples since the previous drain *)

type drained = (string * dvalue) list
(** Sorted by name; zero counters and empty histograms are omitted. *)

val drain : t -> drained
val absorb : t -> drained -> unit

val find_histogram : t -> string -> Ise_util.Stats.t option
(** The raw accumulator behind a registered histogram, if any — for
    quantiles beyond the fixed {!summary} set (e.g. p999). *)

(** {1 Emitters} *)

val pp_text : Format.formatter -> t -> unit
val to_csv : t -> string
(** Header [name,kind,value,count,mean,min,p50,p90,p99,max]; counters
    and gauges leave the histogram columns empty. *)

val to_json : t -> Json.t

val to_prometheus : t -> string
(** Prometheus text exposition (format 0.0.4).  Names are prefixed
    [ise_] and sanitized to [\[a-zA-Z0-9_:\]]; counters and gauges map
    directly, histograms render as summaries with quantiles 0.5 / 0.9
    / 0.99 / 0.999 plus [_sum] and [_count]. *)
