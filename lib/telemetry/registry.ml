type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Ise_util.Stats.t

type t = { metrics : (string, metric) Hashtbl.t }

let create () = { metrics = Hashtbl.create 64 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let collision name existing wanted =
  invalid_arg
    (Printf.sprintf "Registry: %S already registered as a %s, wanted a %s" name
       (kind_name existing) wanted)

let counter t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Counter c) -> c
  | Some m -> collision name m "counter"
  | None ->
    let c = { c_value = 0 } in
    Hashtbl.replace t.metrics name (Counter c);
    c

let gauge t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Gauge g) -> g
  | Some m -> collision name m "gauge"
  | None ->
    let g = { g_value = 0. } in
    Hashtbl.replace t.metrics name (Gauge g);
    g

let histogram t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Histogram h) -> h
  | Some m -> collision name m "histogram"
  | None ->
    let h = Ise_util.Stats.create () in
    Hashtbl.replace t.metrics name (Histogram h);
    h

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let set_counter c v = c.c_value <- v
let value c = c.c_value
let set g v = g.g_value <- v
let get g = g.g_value

type summary = {
  s_count : int;
  s_mean : float;
  s_min : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_max : float;
}

type snap =
  | Snap_counter of int
  | Snap_gauge of float
  | Snap_histogram of summary

let summarise h =
  let open Ise_util.Stats in
  { s_count = count h; s_mean = mean h; s_min = min_value h;
    s_p50 = percentile h 50.; s_p90 = percentile h 90.;
    s_p99 = percentile h 99.; s_max = max_value h }

let snapshot t =
  Hashtbl.fold
    (fun name m acc ->
      let s =
        match m with
        | Counter c -> Snap_counter c.c_value
        | Gauge g -> Snap_gauge g.g_value
        | Histogram h -> Snap_histogram (summarise h)
      in
      (name, s) :: acc)
    t.metrics []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.
      | Histogram h -> Ise_util.Stats.clear h)
    t.metrics

(* ------------------------------------------------------------------ *)
(* Delta snapshots                                                     *)

(* Counters and histograms drain (read-and-reset) so successive drains
   ship only what happened since the last one; gauges are absolute and
   are left in place.  The receiver [absorb]s deltas into its own
   registry, accumulating counters and re-adding raw histogram samples
   — which is what makes supervisor-side percentiles exact rather than
   a merge of per-worker summaries. *)

type dvalue =
  | D_counter of int
  | D_gauge of float
  | D_histogram of float array

type drained = (string * dvalue) list

let drain t =
  let out =
    Hashtbl.fold
      (fun name m acc ->
        match m with
        | Counter c ->
          if c.c_value = 0 then acc
          else begin
            let v = c.c_value in
            c.c_value <- 0;
            (name, D_counter v) :: acc
          end
        | Gauge g -> (name, D_gauge g.g_value) :: acc
        | Histogram h ->
          if Ise_util.Stats.count h = 0 then acc
          else begin
            let s = Ise_util.Stats.samples h in
            Ise_util.Stats.clear h;
            (name, D_histogram s) :: acc
          end)
      t.metrics []
  in
  List.sort (fun (a, _) (b, _) -> compare a b) out

let absorb t d =
  List.iter
    (fun (name, v) ->
      match v with
      | D_counter n -> add (counter t name) n
      | D_gauge g -> set (gauge t name) g
      | D_histogram s ->
        let h = histogram t name in
        Array.iter (Ise_util.Stats.add h) s)
    d

let find_histogram t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Histogram h) -> Some h
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Emitters                                                            *)

let pp_text ppf t =
  let snaps = snapshot t in
  let width =
    List.fold_left (fun w (n, _) -> max w (String.length n)) 0 snaps
  in
  List.iter
    (fun (name, s) ->
      match s with
      | Snap_counter v -> Format.fprintf ppf "%-*s %d@." width name v
      | Snap_gauge v -> Format.fprintf ppf "%-*s %g@." width name v
      | Snap_histogram h ->
        Format.fprintf ppf
          "%-*s n=%d mean=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f@."
          width name h.s_count h.s_mean h.s_min h.s_p50 h.s_p90 h.s_p99 h.s_max)
    snaps

let to_csv t =
  let b = Buffer.create 256 in
  Buffer.add_string b "name,kind,value,count,mean,min,p50,p90,p99,max\n";
  List.iter
    (fun (name, s) ->
      match s with
      | Snap_counter v ->
        Buffer.add_string b (Printf.sprintf "%s,counter,%d,,,,,,,\n" name v)
      | Snap_gauge v ->
        Buffer.add_string b (Printf.sprintf "%s,gauge,%g,,,,,,,\n" name v)
      | Snap_histogram h ->
        Buffer.add_string b
          (Printf.sprintf "%s,histogram,,%d,%g,%g,%g,%g,%g,%g\n" name h.s_count
             h.s_mean h.s_min h.s_p50 h.s_p90 h.s_p99 h.s_max))
    (snapshot t);
  Buffer.contents b

(* Prometheus text exposition format 0.0.4.  Hierarchical slash names
   become underscore names under an [ise_] prefix; histograms render
   as summaries (quantile series + _sum + _count) computed from the
   raw samples, so p999 is available to scrapers even though the
   internal [summary] record stops at p99. *)
let prom_name name =
  let b = Buffer.create (String.length name + 4) in
  Buffer.add_string b "ise_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prom_float f =
  if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_prometheus t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, s) ->
      let pn = prom_name name in
      match s with
      | Snap_counter v ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" pn);
        Buffer.add_string b (Printf.sprintf "%s %d\n" pn v)
      | Snap_gauge v ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" pn);
        Buffer.add_string b (Printf.sprintf "%s %s\n" pn (prom_float v))
      | Snap_histogram _ ->
        (match find_histogram t name with
        | None -> ()
        | Some h ->
          let open Ise_util.Stats in
          Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" pn);
          List.iter
            (fun q ->
              Buffer.add_string b
                (Printf.sprintf "%s{quantile=\"%g\"} %s\n" pn (q /. 100.)
                   (prom_float (percentile h q))))
            [ 50.; 90.; 99.; 99.9 ];
          Buffer.add_string b
            (Printf.sprintf "%s_sum %s\n" pn (prom_float (total h)));
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" pn (count h))))
    (snapshot t);
  Buffer.contents b

let to_json t =
  let field (name, s) =
    let v =
      match s with
      | Snap_counter v -> Json.Int v
      | Snap_gauge v -> Json.Float v
      | Snap_histogram h ->
        Json.Obj
          [ ("count", Json.Int h.s_count); ("mean", Json.Float h.s_mean);
            ("min", Json.Float h.s_min); ("p50", Json.Float h.s_p50);
            ("p90", Json.Float h.s_p90); ("p99", Json.Float h.s_p99);
            ("max", Json.Float h.s_max) ]
    in
    (name, v)
  in
  Json.Obj (List.map field (snapshot t))
