(** Cycle-domain probes: periodic sampling of component state.

    A probe bundles a set of named read-only sources (occupancies,
    miss rates, cumulative counters).  The owner of the clock — the
    simulator engine — calls {!sample} every [period] cycles; each
    sample lands in a same-named histogram in the registry (giving
    end-of-run occupancy distributions) and, when a trace is attached,
    as a Chrome counter-track event (giving the timeseries in
    Perfetto).

    Sources must be pure reads: sampling must never perturb the
    simulation, so that telemetry-on and telemetry-off runs take
    exactly the same number of cycles. *)

type t

val create :
  ?trace:Trace.t -> registry:Registry.t -> period:int -> unit -> t
(** [period] must be positive. *)

val add_source : t -> string -> (unit -> float) -> unit
(** Registers the histogram [name] in the registry immediately. *)

val sample : t -> now:int -> unit
val period : t -> int
val samples_taken : t -> int
