type source = {
  s_name : string;
  s_read : unit -> float;
  s_hist : Ise_util.Stats.t;
}

type t = {
  registry : Registry.t;
  trace : Trace.t option;
  p_period : int;
  mutable sources : source list;  (* reverse registration order *)
  mutable n_samples : int;
}

let create ?trace ~registry ~period () =
  if period <= 0 then invalid_arg "Probe.create: period must be positive";
  { registry; trace; p_period = period; sources = []; n_samples = 0 }

let add_source t name read =
  let hist = Registry.histogram t.registry name in
  t.sources <- { s_name = name; s_read = read; s_hist = hist } :: t.sources

let sample t ~now =
  t.n_samples <- t.n_samples + 1;
  List.iter
    (fun s ->
      let v = s.s_read () in
      Ise_util.Stats.add s.s_hist v;
      match t.trace with
      | Some tr -> Trace.counter tr ~name:s.s_name ~value:v now
      | None -> ())
    t.sources

let period t = t.p_period
let samples_taken t = t.n_samples
