type t = {
  mutable samples : float array;
  mutable size : int;
  (* sorted copy of the live region, built lazily on the first
     percentile query and reused until the next mutation *)
  mutable sorted_cache : float array;
  mutable cache_valid : bool;
}

let create () =
  { samples = [||]; size = 0; sorted_cache = [||]; cache_valid = false }

let add t x =
  if t.size >= Array.length t.samples then begin
    let ncap = max 64 (2 * Array.length t.samples) in
    let ns = Array.make ncap 0. in
    Array.blit t.samples 0 ns 0 t.size;
    t.samples <- ns
  end;
  t.samples.(t.size) <- x;
  t.size <- t.size + 1;
  t.cache_valid <- false

let add_int t x = add t (float_of_int x)
let count t = t.size

let clear t =
  t.size <- 0;
  t.cache_valid <- false

let total t =
  let s = ref 0. in
  for i = 0 to t.size - 1 do
    s := !s +. t.samples.(i)
  done;
  !s

let mean t = if t.size = 0 then nan else total t /. float_of_int t.size

let variance t =
  if t.size < 2 then 0.
  else begin
    let m = mean t in
    let s = ref 0. in
    for i = 0 to t.size - 1 do
      let d = t.samples.(i) -. m in
      s := !s +. (d *. d)
    done;
    !s /. float_of_int (t.size - 1)
  end

let stddev t = sqrt (variance t)

let fold_range f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.samples.(i)
  done;
  !acc

let min_value t = if t.size = 0 then nan else fold_range min infinity t
let max_value t = if t.size = 0 then nan else fold_range max neg_infinity t

let ensure_sorted t =
  if not t.cache_valid then begin
    let sub = Array.sub t.samples 0 t.size in
    Array.sort compare sub;
    t.sorted_cache <- sub;
    t.cache_valid <- true
  end

let percentile t p =
  if t.size = 0 then nan
  else begin
    ensure_sorted t;
    let p = if p < 0. then 0. else if p > 100. then 100. else p in
    (* interpolate between ranks: rank p sits at index p/100*(n-1) of
       the sorted samples; a fractional index blends its neighbours.
       Nearest-rank (the previous behaviour) biases small-sample tail
       percentiles — p99 of 100 samples was simply the maximum. *)
    let rank = p /. 100. *. float_of_int (t.size - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then t.sorted_cache.(lo)
    else
      let frac = rank -. float_of_int lo in
      t.sorted_cache.(lo)
      +. (frac *. (t.sorted_cache.(hi) -. t.sorted_cache.(lo)))
  end

let samples t = Array.sub t.samples 0 t.size

let merge a b =
  let t = create () in
  for i = 0 to a.size - 1 do
    add t a.samples.(i)
  done;
  for i = 0 to b.size - 1 do
    add t b.samples.(i)
  done;
  t

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p99=%.2f max=%.2f"
    (count t) (mean t) (stddev t) (min_value t) (percentile t 50.)
    (percentile t 99.) (max_value t)
