(** Streaming statistics accumulator.

    Collects samples and reports count, mean, variance, min, max, and
    percentiles.  Percentiles require retaining the samples; the
    accumulator keeps them all, which is fine at simulation scale. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
val variance : t -> float
val stddev : t -> float
val min_value : t -> float
val max_value : t -> float

val clear : t -> unit
(** Forget all samples (the handle stays usable). *)

val percentile : t -> float -> float
(** [percentile t p] with [p] clamped to [\[0,100\]]: linear
    interpolation between the two nearest ranks of the sorted samples
    (so [percentile t 50.] of [{1,2,3,4}] is [2.5], not [3]).  The
    sorted order is cached and reused across queries until the next
    [add].  Returns [nan] when empty. *)

val samples : t -> float array
(** Copy of the recorded samples, in insertion order.  Used by the
    telemetry delta-snapshot machinery to ship raw samples across
    processes so the receiver can compute exact percentiles. *)

val merge : t -> t -> t
(** Combine two accumulators into a fresh one. *)

val pp : Format.formatter -> t -> unit
