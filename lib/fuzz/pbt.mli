(** Dependency-free property-based-testing core.

    The harness needs three things qcheck also provides — generators,
    properties, and shrinking — but built on {!Ise_util.Rng} so a
    campaign is a pure function of its integer seed: the same seed
    replays the same generated cases, the same failures, and the same
    shrink sequences on any machine.  Everything below is deliberately
    small; the litmus-specific shrinker lives in {!Shrink}.

    A property fails when it returns [false] {e or} raises; the raised
    message is preserved in the failure report. *)

type 'a gen = Ise_util.Rng.t -> 'a
(** Generators consume a splittable RNG and are otherwise pure. *)

type 'a shrinker = 'a -> 'a Seq.t
(** Strictly-smaller candidates, most aggressive first.  Every
    candidate must be smaller under some well-founded measure, so the
    greedy minimization loop terminates. *)

type 'a arb = {
  gen : 'a gen;
  shrink : 'a shrinker;
  pp : Format.formatter -> 'a -> unit;
}
(** A generator bundled with how to shrink and print its values. *)

val make :
  ?shrink:'a shrinker -> ?pp:(Format.formatter -> 'a -> unit) -> 'a gen ->
  'a arb
(** Defaults: no shrinking, opaque printer. *)

(** {1 Generators} *)

val return : 'a -> 'a gen
val map : ('a -> 'b) -> 'a gen -> 'b gen
val int_range : int -> int -> int gen
(** [int_range lo hi] is uniform on the inclusive range. *)

val bool : bool gen
val oneof : 'a gen list -> 'a gen
val choose : 'a list -> 'a gen
(** Uniform pick from a non-empty list. *)

val frequency : (int * 'a gen) list -> 'a gen
(** Weighted pick; weights must be positive. *)

val pair : 'a gen -> 'b gen -> ('a * 'b) gen
val list_of : ?min:int -> max:int -> 'a gen -> 'a list gen
(** Length uniform in [min..max] (default [min] 0). *)

(** {1 Shrinkers} *)

val shrink_nothing : 'a shrinker
val shrink_int : int shrinker
(** Halves towards 0 (then decrements), preserving sign. *)

val shrink_list : ?elt:'a shrinker -> 'a list shrinker
(** Drops chunks (halves first, then single elements), then shrinks
    elements in place with [elt]. *)

val shrink_pair : 'a shrinker -> 'b shrinker -> ('a * 'b) shrinker

(** {1 Running properties} *)

type 'a failure = {
  fail_seed : int;  (** root seed of the run that failed *)
  fail_index : int;  (** 0-based index of the failing case *)
  fail_case : 'a;  (** as generated *)
  fail_shrunk : 'a;  (** after greedy minimization *)
  fail_shrink_steps : int;  (** accepted shrink steps *)
  fail_error : string option;  (** exception message, if the property raised *)
}

type 'a outcome =
  | Passed of int  (** number of cases run *)
  | Failed of 'a failure

val minimize :
  ?max_evals:int -> 'a shrinker -> ('a -> bool) -> 'a -> 'a * int
(** [minimize shrink still_fails x] greedily walks to a local minimum:
    repeatedly takes the first candidate for which [still_fails] holds.
    Returns the minimum and the number of accepted steps (0 when [x] is
    already minimal).  [still_fails x] is assumed; [max_evals]
    (default 10_000) bounds total candidate evaluations. *)

val run : ?count:int -> seed:int -> 'a arb -> ('a -> bool) -> 'a outcome
(** [run ~seed arb prop] checks [count] (default 100) generated cases
    and shrinks the first failure.  Deterministic in [seed]. *)

val check : ?count:int -> seed:int -> name:string -> 'a arb -> ('a -> bool) -> unit
(** Like {!run} but raises [Failure] with a rendered report on the
    first (shrunk) counterexample — the alcotest-friendly entry
    point. *)
