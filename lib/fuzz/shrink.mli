(** Litmus-test minimization.

    Collapses a failing test towards a herd-style minimal shape the
    way diy-derived tooling does: drop whole threads, drop
    instructions, replace dependency-carrying and atomic instructions
    with their plain equivalents, shrink store values, and merge
    locations — each candidate is re-checked against the failing
    property, so minimization never loses the failure.

    Every candidate strictly decreases {!size}, so minimization
    terminates; tests for which no candidate keeps failing are already
    minimal, and re-minimizing a minimum takes 0 steps. *)

val size : Ise_litmus.Lit_test.t -> int
(** Well-founded measure: instruction count dominates, then distinct
    locations, then thread count, then instruction complexity
    (deps/AMOs cost more than plain accesses) plus store-value
    magnitude.  Every candidate strictly decreases it. *)

val candidates : Ise_litmus.Lit_test.t -> Ise_litmus.Lit_test.t Seq.t
(** Strictly-smaller variants, most aggressive first (threads, then
    instructions, then instruction simplification, then location
    merging).  The test's name is preserved so the operational runner's
    perturbation seed — derived from the name — replays identically.
    Location merging is only proposed for tests with an empty
    condition (generated tests), since the condition names
    locations. *)

val minimize :
  ?max_evals:int -> keeps_failing:(Ise_litmus.Lit_test.t -> bool) ->
  Ise_litmus.Lit_test.t -> Ise_litmus.Lit_test.t * int
(** Greedy fixpoint over {!candidates}; returns the minimum and the
    number of accepted steps.  [keeps_failing t] is assumed for the
    input. *)
