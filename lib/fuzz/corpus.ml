open Ise_model
open Ise_litmus

type expect = Must_pass | Must_fail

type entry = {
  e_seed : int;
  e_variant : string;
  e_kind : string;
  e_detail : string;
  e_expect : expect;
  e_test : Lit_test.t;
}

(* ------------------------------------------------------------------ *)
(* writing                                                             *)

let loc_tok l = Types.loc_name l
let reg_tok r = Types.reg_name r

let instr_tok = function
  | Instr.Load (r, x) -> Printf.sprintf "R %s %s" (reg_tok r) (loc_tok x)
  | Instr.Load_dep (r, x, d) ->
    Printf.sprintf "Rd %s %s %s" (reg_tok r) (loc_tok x) (reg_tok d)
  | Instr.Store (x, v) -> Printf.sprintf "W %s %d" (loc_tok x) v
  | Instr.Store_reg (x, r) -> Printf.sprintf "Wr %s %s" (loc_tok x) (reg_tok r)
  | Instr.Store_dep (x, v, d) ->
    Printf.sprintf "Wd %s %d %s" (loc_tok x) v (reg_tok d)
  | Instr.Fence -> "F"
  | Instr.Ctrl r -> Printf.sprintf "C %s" (reg_tok r)
  | Instr.Amo (r, x, v) -> Printf.sprintf "A %s %s %d" (reg_tok r) (loc_tok x) v
  | Instr.Amo_add (r, x, v) ->
    Printf.sprintf "Aa %s %s %d" (reg_tok r) (loc_tok x) v

let atom_tok = function
  | Lit_test.Reg_is (tid, r, v) ->
    Printf.sprintf "R %d %s %d" tid (reg_tok r) v
  | Lit_test.Mem_is (l, v) -> Printf.sprintf "M %s %d" (loc_tok l) v

let to_string e =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "ise-fuzz v1";
  line "name %s" e.e_test.Lit_test.name;
  if e.e_test.Lit_test.doc <> "" then line "doc %s" e.e_test.Lit_test.doc;
  line "seed %d" e.e_seed;
  line "variant %s" e.e_variant;
  line "kind %s" e.e_kind;
  line "expect %s" (match e.e_expect with Must_pass -> "pass" | Must_fail -> "fail");
  if e.e_detail <> "" then line "detail %s" e.e_detail;
  Array.iter
    (fun instrs ->
      line "thread %s" (String.concat "; " (List.map instr_tok instrs)))
    e.e_test.Lit_test.threads;
  if e.e_test.Lit_test.cond <> [] then
    line "cond %s" (String.concat "; " (List.map atom_tok e.e_test.Lit_test.cond));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)

let parse_loc s =
  match s with
  | "x" -> Ok 0
  | "y" -> Ok 1
  | "z" -> Ok 2
  | "w" -> Ok 3
  | _ ->
    let num s = int_of_string_opt s in
    (match
       if String.length s > 1 && s.[0] = 'v' then
         num (String.sub s 1 (String.length s - 1))
       else num s
     with
     | Some l when l >= 0 -> Ok l
     | _ -> Error (Printf.sprintf "bad location %S" s))

let parse_reg s =
  match
    if String.length s > 1 && s.[0] = 'r' then
      int_of_string_opt (String.sub s 1 (String.length s - 1))
    else int_of_string_opt s
  with
  | Some r when r >= 0 -> Ok r
  | _ -> Error (Printf.sprintf "bad register %S" s)

let parse_value s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad value %S" s)

let ( let* ) = Result.bind

let parse_instr s =
  let toks =
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun t -> t <> "")
  in
  match toks with
  | [ "R"; r; x ] ->
    let* r = parse_reg r in
    let* x = parse_loc x in
    Ok (Instr.Load (r, x))
  | [ "Rd"; r; x; d ] ->
    let* r = parse_reg r in
    let* x = parse_loc x in
    let* d = parse_reg d in
    Ok (Instr.Load_dep (r, x, d))
  | [ "W"; x; v ] ->
    let* x = parse_loc x in
    let* v = parse_value v in
    Ok (Instr.Store (x, v))
  | [ "Wr"; x; r ] ->
    let* x = parse_loc x in
    let* r = parse_reg r in
    Ok (Instr.Store_reg (x, r))
  | [ "Wd"; x; v; d ] ->
    let* x = parse_loc x in
    let* v = parse_value v in
    let* d = parse_reg d in
    Ok (Instr.Store_dep (x, v, d))
  | [ "F" ] -> Ok Instr.Fence
  | [ "C"; r ] ->
    let* r = parse_reg r in
    Ok (Instr.Ctrl r)
  | [ "A"; r; x; v ] ->
    let* r = parse_reg r in
    let* x = parse_loc x in
    let* v = parse_value v in
    Ok (Instr.Amo (r, x, v))
  | [ "Aa"; r; x; v ] ->
    let* r = parse_reg r in
    let* x = parse_loc x in
    let* v = parse_value v in
    Ok (Instr.Amo_add (r, x, v))
  | _ -> Error (Printf.sprintf "bad instruction %S" s)

let parse_atom s =
  let toks =
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun t -> t <> "")
  in
  match toks with
  | [ "R"; tid; r; v ] ->
    let* tid = parse_value tid in
    let* r = parse_reg r in
    let* v = parse_value v in
    Ok (Lit_test.Reg_is (tid, r, v))
  | [ "M"; l; v ] ->
    let* l = parse_loc l in
    let* v = parse_value v in
    Ok (Lit_test.Mem_is (l, v))
  | _ -> Error (Printf.sprintf "bad condition atom %S" s)

let parse_seq parse s =
  let items = String.split_on_char ';' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
      let* v = parse item in
      go (v :: acc) rest
  in
  go [] (List.filter (fun i -> String.trim i <> "") items)

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let name = ref None and doc = ref "" and seed = ref None in
  let variant = ref None and kind = ref None and detail = ref "" in
  let expect = ref None and threads = ref [] and cond = ref [] in
  let rec go = function
    | [] -> Ok ()
    | line :: rest ->
      let key, rest_of_line =
        match String.index_opt line ' ' with
        | Some i ->
          ( String.sub line 0 i,
            String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
        | None -> (line, "")
      in
      let* () =
        match key with
        | "ise-fuzz" ->
          if rest_of_line = "v1" then Ok ()
          else Error (Printf.sprintf "unsupported version %S" rest_of_line)
        | "name" -> name := Some rest_of_line; Ok ()
        | "doc" -> doc := rest_of_line; Ok ()
        | "seed" ->
          let* v = parse_value rest_of_line in
          seed := Some v;
          Ok ()
        | "variant" -> variant := Some rest_of_line; Ok ()
        | "kind" -> kind := Some rest_of_line; Ok ()
        | "detail" -> detail := rest_of_line; Ok ()
        | "expect" -> (
          match rest_of_line with
          | "pass" -> expect := Some Must_pass; Ok ()
          | "fail" -> expect := Some Must_fail; Ok ()
          | e -> Error (Printf.sprintf "bad expect %S (pass|fail)" e))
        | "thread" ->
          let* instrs = parse_seq parse_instr rest_of_line in
          threads := instrs :: !threads;
          Ok ()
        | "cond" ->
          let* atoms = parse_seq parse_atom rest_of_line in
          cond := !cond @ atoms;
          Ok ()
        | k -> Error (Printf.sprintf "unknown key %S in line %S" k line)
      in
      go rest
  in
  let* () =
    match lines with
    | first :: _ when first = "ise-fuzz v1" -> go lines
    | _ -> Error "missing \"ise-fuzz v1\" header"
  in
  match (!name, !seed, !variant, !kind, !expect, List.rev !threads) with
  | Some name, Some seed, Some variant, Some kind, Some expect,
    (_ :: _ as threads) ->
    Ok
      {
        e_seed = seed;
        e_variant = variant;
        e_kind = kind;
        e_detail = !detail;
        e_expect = expect;
        e_test =
          Lit_test.make ~name ~doc:!doc (Array.of_list threads) !cond;
      }
  | None, _, _, _, _, _ -> Error "missing name"
  | _, None, _, _, _, _ -> Error "missing seed"
  | _, _, None, _, _, _ -> Error "missing variant"
  | _, _, _, None, _, _ -> Error "missing kind"
  | _, _, _, _, None, _ -> Error "missing expect"
  | _ -> Error "missing thread lines"

(* ------------------------------------------------------------------ *)
(* files                                                               *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '_')
    name

let save ~dir e =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (sanitize e.e_test.Lit_test.name ^ ".lit") in
  let oc = open_out path in
  output_string oc (to_string e);
  close_out oc;
  path

let load_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    (match of_string s with
     | Ok e -> Ok e
     | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let load_dir dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".lit")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load_file path))
