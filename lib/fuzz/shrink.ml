open Ise_model
open Ise_litmus

let instr_complexity = function
  | Instr.Load _ | Instr.Fence | Instr.Ctrl _ -> 1
  | Instr.Store _ -> 1
  | Instr.Load_dep _ | Instr.Amo _ | Instr.Amo_add _ -> 2
  | Instr.Store_reg _ | Instr.Store_dep _ -> 3

let instr_value = function
  | Instr.Store (_, v) | Instr.Store_dep (_, v, _)
  | Instr.Amo (_, _, v) | Instr.Amo_add (_, _, v) -> abs v
  | _ -> 0

let distinct_locs threads =
  let locs = Hashtbl.create 4 in
  Array.iter
    (List.iter (fun i ->
         match Instr.loc_of i with
         | Some l -> Hashtbl.replace locs l ()
         | None -> ()))
    threads;
  Hashtbl.length locs

let size (t : Lit_test.t) =
  let threads = t.Lit_test.threads in
  let ninstrs = Array.fold_left (fun a is -> a + List.length is) 0 threads in
  let complexity =
    Array.fold_left
      (List.fold_left (fun a i -> a + instr_complexity i + instr_value i))
      0 threads
  in
  (1000 * ninstrs) + (100 * distinct_locs threads)
  + (10 * Array.length threads) + complexity

let with_threads (t : Lit_test.t) threads = { t with Lit_test.threads }

(* drop thread [k] (only while ≥ 2 threads remain) *)
let drop_threads (t : Lit_test.t) =
  let n = Array.length t.Lit_test.threads in
  if n <= 1 then Seq.empty
  else
    Seq.init n (fun k ->
        with_threads t
          (Array.of_list
             (List.filteri (fun i _ -> i <> k)
                (Array.to_list t.Lit_test.threads))))

(* drop instruction [j] of thread [i] *)
let drop_instrs (t : Lit_test.t) =
  Seq.concat_map
    (fun i ->
      let instrs = t.Lit_test.threads.(i) in
      Seq.init (List.length instrs) (fun j ->
          let threads = Array.copy t.Lit_test.threads in
          threads.(i) <- List.filteri (fun k _ -> k <> j) instrs;
          with_threads t threads))
    (Seq.init (Array.length t.Lit_test.threads) (fun i -> i))

(* replace one instruction with a strictly simpler equivalent *)
let simplify_instr = function
  | Instr.Load_dep (r, x, _) -> Some (Instr.Load (r, x))
  | Instr.Store_reg (x, _) -> Some (Instr.Store (x, 1))
  | Instr.Store_dep (x, v, _) -> Some (Instr.Store (x, v))
  | Instr.Amo (_, x, v) -> Some (Instr.Store (x, v))
  | Instr.Amo_add (_, x, v) -> Some (Instr.Store (x, v))
  | Instr.Store (x, v) when abs v > 1 -> Some (Instr.Store (x, 1))
  | _ -> None

let simplify_instrs (t : Lit_test.t) =
  Seq.concat_map
    (fun i ->
      let instrs = t.Lit_test.threads.(i) in
      Seq.filter_map
        (fun j ->
          match simplify_instr (List.nth instrs j) with
          | None -> None
          | Some simpler ->
            let threads = Array.copy t.Lit_test.threads in
            threads.(i) <- List.mapi (fun k x -> if k = j then simpler else x) instrs;
            Some (with_threads t threads))
        (Seq.init (List.length instrs) (fun j -> j)))
    (Seq.init (Array.length t.Lit_test.threads) (fun i -> i))

let rename_loc instr ~from ~into =
  let swap l = if l = from then into else l in
  match instr with
  | Instr.Load (r, x) -> Instr.Load (r, swap x)
  | Instr.Load_dep (r, x, d) -> Instr.Load_dep (r, swap x, d)
  | Instr.Store (x, v) -> Instr.Store (swap x, v)
  | Instr.Store_reg (x, r) -> Instr.Store_reg (swap x, r)
  | Instr.Store_dep (x, v, d) -> Instr.Store_dep (swap x, v, d)
  | Instr.Amo (r, x, v) -> Instr.Amo (r, swap x, v)
  | Instr.Amo_add (r, x, v) -> Instr.Amo_add (r, swap x, v)
  | (Instr.Fence | Instr.Ctrl _) as i -> i

(* merge a higher location into a lower one; conditions name locations,
   so only tests with an empty condition are eligible *)
let merge_locs (t : Lit_test.t) =
  if t.Lit_test.cond <> [] then Seq.empty
  else begin
    let locs = Hashtbl.create 4 in
    Array.iter
      (List.iter (fun i ->
           match Instr.loc_of i with
           | Some l -> Hashtbl.replace locs l ()
           | None -> ()))
      t.Lit_test.threads;
    let sorted = List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) locs []) in
    match sorted with
    | [] | [ _ ] -> Seq.empty
    | lowest :: rest ->
      Seq.map
        (fun from ->
          with_threads t
            (Array.map
               (List.map (rename_loc ~from ~into:lowest))
               t.Lit_test.threads))
        (List.to_seq rest)
  end

let candidates t =
  Seq.concat
    (List.to_seq
       [ drop_threads t; drop_instrs t; simplify_instrs t; merge_locs t ])

let minimize ?max_evals ~keeps_failing t =
  Pbt.minimize ?max_evals candidates keeps_failing t
