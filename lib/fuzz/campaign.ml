open Ise_model
open Ise_litmus
open Ise_sim
open Ise_util

(* ------------------------------------------------------------------ *)
(* the lattice                                                         *)

type mem_variant = Mem_default | Mem_2x | Mem_skew4x

type variant = {
  v_model : Axiom.model;
  v_protocol : Ise_core.Protocol.mode;
  v_faults : bool;
  v_timer : bool;
  v_mem : mem_variant;
  v_ordered_drain : bool;
  v_chaos : string option;
}

let model_tag = function Axiom.Sc -> "sc" | Axiom.Pc -> "pc" | Axiom.Wc -> "wc"

let variant_name v =
  String.concat "+"
    ([
       model_tag v.v_model;
       (match v.v_protocol with
        | Ise_core.Protocol.Same_stream -> "same"
        | Ise_core.Protocol.Split_stream -> "split");
       (if v.v_faults then "faults" else "nofaults");
     ]
    @ (if v.v_timer then [ "timer" ] else [])
    @ (match v.v_mem with
       | Mem_default -> []
       | Mem_2x -> [ "mem2x" ]
       | Mem_skew4x -> [ "skew4x" ])
    @ (if v.v_ordered_drain then [ "ordered" ] else [])
    @ match v.v_chaos with None -> [] | Some p -> [ "chaos-" ^ p ])

let base_variant =
  {
    v_model = Axiom.Wc;
    v_protocol = Ise_core.Protocol.Same_stream;
    v_faults = true;
    v_timer = false;
    v_mem = Mem_default;
    v_ordered_drain = false;
    v_chaos = None;
  }

let all_variants =
  let acc = ref [] in
  List.iter
    (fun m ->
      (* split-stream without fault injection degenerates to same-stream *)
      List.iter
        (fun (proto, faults) ->
          List.iter
            (fun timer ->
              List.iter
                (fun ordered ->
                  (* PC's protocol already forces a single ordered drain *)
                  if not (m = Axiom.Pc && ordered) then
                    acc :=
                      { base_variant with v_model = m; v_protocol = proto;
                        v_faults = faults; v_timer = timer;
                        v_ordered_drain = ordered }
                      :: !acc)
                [ false; true ])
            [ false; true ])
        [
          (Ise_core.Protocol.Same_stream, true);
          (Ise_core.Protocol.Same_stream, false);
          (Ise_core.Protocol.Split_stream, true);
        ];
      List.iter
        (fun mem -> acc := { base_variant with v_model = m; v_mem = mem } :: !acc)
        [ Mem_2x; Mem_skew4x ])
    [ Axiom.Sc; Axiom.Pc; Axiom.Wc ];
  List.rev !acc

(* Chaos rides on the paper's default configuration: every
   outcome-transparent profile becomes one more lattice point whose
   check is the chaos-hardened litmus run (plane + watchdog).  The
   [fsb-degrade] profile is only outcome-transparent under WC (dropping
   a record to precise re-execution reorders the store FIFO that SC/PC
   expose), which the base variant already is. *)
let chaos_variants =
  List.filter_map
    (fun (p : Ise_chaos.Profile.t) ->
      if Ise_chaos.Profile.outcome_transparent p then
        Some { base_variant with v_chaos = Some p.Ise_chaos.Profile.name }
      else None)
    Ise_chaos.Profile.all

let variant_named name =
  List.find_opt
    (fun v -> variant_name v = name)
    (all_variants @ chaos_variants)

let cfg_of_variant v =
  let cfg = Config.with_consistency v.v_model Config.default in
  let cfg =
    match v.v_mem with
    | Mem_default -> cfg
    | Mem_2x -> Config.with_2x_memory cfg
    | Mem_skew4x -> Config.with_4x_store_skew cfg
  in
  let cfg = { cfg with Config.protocol_mode = v.v_protocol } in
  if v.v_ordered_drain then { cfg with Config.sb_max_inflight = 1 } else cfg

(* ------------------------------------------------------------------ *)
(* checks                                                              *)

type check_kind =
  | Differential
  | Contract
  | Model_mono
  | Same_stream_equiv
  | Split_subset
  | Watchdog

let kind_name = function
  | Differential -> "differential"
  | Contract -> "contract"
  | Model_mono -> "model-mono"
  | Same_stream_equiv -> "same-stream-equiv"
  | Split_subset -> "split-subset"
  | Watchdog -> "watchdog"

let kind_named = function
  | "differential" -> Some Differential
  | "contract" -> Some Contract
  | "model-mono" -> Some Model_mono
  | "same-stream-equiv" -> Some Same_stream_equiv
  | "split-subset" -> Some Split_subset
  | "watchdog" -> Some Watchdog
  | _ -> None

let render_extra observed allowed =
  let extra = Outcome.Set.diff observed allowed in
  let shown =
    Outcome.Set.fold
      (fun o acc ->
        if List.length acc < 3 then Format.asprintf "%a" Outcome.pp o :: acc
        else acc)
      extra []
  in
  Printf.sprintf "%d outcome(s) observed but not allowed, e.g. %s"
    (Outcome.Set.cardinal extra)
    (String.concat " | " (List.rev shown))

(* The operational (simulator) side: differential + Table 5 contract. *)
let operational ~seeds v t =
  let r =
    Lit_run.run ~seeds ~inject_faults:v.v_faults ~timer_interrupts:v.v_timer
      ~cfg:(cfg_of_variant v) t
  in
  let diff =
    if r.Lit_run.pass then None
    else Some (render_extra r.Lit_run.observed r.Lit_run.allowed)
  in
  let contract =
    if r.Lit_run.contract_ok then None
    else Some "interface trace violates a Table 5 rule"
  in
  (diff, contract)

(* Model-vs-model enumeration checks (§4.6). *)
let model_check kind v (t : Lit_test.t) =
  let threads = t.Lit_test.threads in
  let faulting = Lit_test.stores_of t in
  match kind with
  | Model_mono ->
    if not (Check.subset Axiom.sc Axiom.pc threads) then
      Some "allowed(SC) ⊄ allowed(PC)"
    else if not (Check.subset Axiom.pc Axiom.wc threads) then
      Some "allowed(PC) ⊄ allowed(WC)"
    else None
  | Same_stream_equiv ->
    let precise = { Axiom.model = v.v_model; faults = Axiom.Precise } in
    let same = { Axiom.model = v.v_model; faults = Axiom.Same_stream } in
    if Check.equivalent ~faulting precise same threads then None
    else Some (Printf.sprintf "same-stream changed allowed(%s)" (model_tag v.v_model))
  | Split_subset ->
    let precise = { Axiom.model = v.v_model; faults = Axiom.Precise } in
    let split = { Axiom.model = v.v_model; faults = Axiom.Split_stream } in
    if Check.subset ~faulting precise split threads then None
    else
      Some
        (Printf.sprintf "split-stream removed an outcome from allowed(%s)"
           (model_tag v.v_model))
  | Differential | Contract | Watchdog -> None

let model_kinds = [ Model_mono; Same_stream_equiv; Split_subset ]

(* The chaos check subsumes differential, contract, and the watchdog
   invariants — under a plane that perturbs every layer. *)
let chaos_check ~seeds v t =
  match v.v_chaos with
  | None -> None
  | Some pname -> (
    match Ise_chaos.Profile.named pname with
    | None -> Some ("unknown chaos profile " ^ pname)
    | Some profile ->
      Ise_chaos.Chaos_run.lit_check ~seeds ~cfg:(cfg_of_variant v) ~profile t)

let failing_check ?(seeds = 10) ?(model_checks = true) v t =
  match v.v_chaos with
  | Some _ -> Option.map (fun d -> (Watchdog, d)) (chaos_check ~seeds v t)
  | None -> (
    let diff, contract = operational ~seeds v t in
    match (diff, contract) with
    | Some d, _ -> Some (Differential, d)
    | None, Some d -> Some (Contract, d)
    | None, None ->
      if not model_checks then None
      else
        List.find_map
          (fun kind ->
            Option.map (fun d -> (kind, d)) (model_check kind v t))
          model_kinds)

(* Does exactly [kind] still fail on [t]?  Used as the shrinking
   property so minimization cannot drift to a different bug. *)
let kind_fails ~seeds v kind t =
  match kind with
  | Differential -> fst (operational ~seeds v t) <> None
  | Contract -> snd (operational ~seeds v t) <> None
  | Watchdog -> chaos_check ~seeds v t <> None
  | Model_mono | Same_stream_equiv | Split_subset ->
    model_check kind v t <> None

(* ------------------------------------------------------------------ *)
(* campaigns                                                           *)

type failure = {
  f_test : Lit_test.t;
  f_shrunk : Lit_test.t;
  f_variant : variant;
  f_kind : check_kind;
  f_detail : string;
  f_shrink_steps : int;
}

type report = {
  r_seed : int;
  r_tests : int;
  r_checks : int;
  r_failures : failure list;
  r_lost_tests : int;
}

(* ------------------------------------------------------------------ *)
(* specs: the shippable description of a campaign                      *)

type spec = {
  s_params : Gen.params;
  s_count : int;
  s_seeds_per_test : int;
  s_variants : variant list;
  s_variants_per_test : int;  (* clamped to |s_variants| at build time *)
  s_model_checks : bool;
  s_shrink_evals : int;
  s_seed : int;
}

let make_spec ~who ?(params = Gen.default_params) ?(count = 100)
    ?(seeds_per_test = 10) ?(variants = all_variants) ?(variants_per_test = 2)
    ?(model_checks = true) ?(shrink_evals = 400) ~seed () =
  (match Gen.validate params with
   | Ok () -> ()
   | Error msg -> invalid_arg (who ^ ": " ^ msg));
  if variants = [] then invalid_arg (who ^ ": empty variant list");
  {
    s_params = params;
    s_count = count;
    s_seeds_per_test = seeds_per_test;
    s_variants = variants;
    s_variants_per_test = min variants_per_test (List.length variants);
    s_model_checks = model_checks;
    s_shrink_evals = shrink_evals;
    s_seed = seed;
  }

let spec = make_spec ~who:"Campaign.spec"

(* Generation stays in test order, so the test stream is one pure
   function of [s_seed] whatever the worker (or machine) count. *)
let tests_of_spec s =
  let rng = Rng.create s.s_seed in
  Array.init s.s_count (fun _ -> Gen.generate (Rng.split rng) s.s_params)

type raw_failure = {
  rf_test : int;
  rf_slot : int;
  rf_kind : check_kind;
  rf_detail : string;
}

(* the variant schedule is a function of the global test index *)
let variant_of s =
  let varr = Array.of_list s.s_variants in
  let nv = Array.length varr in
  fun i j -> varr.(((i * s.s_variants_per_test) + j) mod nv)

(* The pure, shippable part of a check: no logging, no shrinking, no
   telemetry — exactly what a worker process (or remote worker) runs. *)
let check_test s vof i t =
  let acc = ref [] in
  for j = 0 to s.s_variants_per_test - 1 do
    (* model-vs-model checks don't depend on the simulator knobs,
       so run them only on the test's first variant *)
    match
      failing_check ~seeds:s.s_seeds_per_test
        ~model_checks:(s.s_model_checks && j = 0) (vof i j) t
    with
    | None -> ()
    | Some (kind, detail) ->
      acc :=
        { rf_test = i; rf_slot = j; rf_kind = kind; rf_detail = detail }
        :: !acc
  done;
  List.rev !acc

let check_range s ~tests ~lo ~hi =
  if lo < 0 || hi > Array.length tests || lo > hi then
    invalid_arg "Campaign.check_range: bad range";
  let vof = variant_of s in
  let acc = ref [] in
  for i = lo to hi - 1 do
    acc := List.rev_append (check_test s vof i tests.(i)) !acc
  done;
  List.rev !acc

(* Shrinking stays in the supervisor: it is where the failure is
   logged, minimized, and turned into a record, identically for the
   sequential, the parallel, and the fabric path. *)
let process_failure s ~log ~count_failure tests vof rf =
  let t = tests.(rf.rf_test) in
  let v = vof rf.rf_test rf.rf_slot in
  log
    (Printf.sprintf "FAIL %s under %s [%s]: %s" t.Lit_test.name
       (variant_name v) (kind_name rf.rf_kind) rf.rf_detail);
  Ise_obs.Recorder.note "fuzz/failure"
    ~args:
      [ ("test", Ise_telemetry.Json.String t.Lit_test.name);
        ("variant", Ise_telemetry.Json.String (variant_name v));
        ("kind", Ise_telemetry.Json.String (kind_name rf.rf_kind)) ];
  let shrunk, steps =
    Shrink.minimize ~max_evals:s.s_shrink_evals
      ~keeps_failing:(kind_fails ~seeds:s.s_seeds_per_test v rf.rf_kind)
      t
  in
  if steps > 0 then
    log
      (Printf.sprintf "  shrunk %s: %d -> %d instrs in %d steps"
         t.Lit_test.name
         (Array.fold_left (fun a is -> a + List.length is) 0
            t.Lit_test.threads)
         (Array.fold_left (fun a is -> a + List.length is) 0
            shrunk.Lit_test.threads)
         steps);
  count_failure steps;
  { f_test = t; f_shrunk = shrunk; f_variant = v; f_kind = rf.rf_kind;
    f_detail = rf.rf_detail; f_shrink_steps = steps }

let report_of_raw ?(log = fun (_ : string) -> ()) s ~tests ~lost raws =
  let vof = variant_of s in
  let failures =
    List.map (process_failure s ~log ~count_failure:ignore tests vof) raws
  in
  {
    r_seed = s.s_seed;
    r_tests = s.s_count - lost;
    r_checks = (s.s_count - lost) * s.s_variants_per_test;
    r_failures = failures;
    r_lost_tests = lost;
  }

let run ?params ?count ?seeds_per_test ?variants ?variants_per_test
    ?model_checks ?shrink_evals ?(jobs = 1) ?job_timeout
    ?(shard_sizing = `Formula) ?journal_dir ?telemetry
    ?(log = fun (_ : string) -> ()) ?range ~seed () =
  let s =
    make_spec ~who:"Campaign.run" ?params ?count ?seeds_per_test ?variants
      ?variants_per_test ?model_checks ?shrink_evals ~seed ()
  in
  let lo, hi =
    match range with
    | None -> (0, s.s_count)
    | Some (lo, hi) ->
      if lo < 0 || hi > s.s_count || lo > hi then
        invalid_arg "Campaign.run: range outside [0, count]";
      (lo, hi)
  in
  let n = hi - lo in
  let counters =
    Option.map
      (fun sink ->
        let reg = Ise_telemetry.Sink.registry sink in
        ( Ise_telemetry.Registry.counter reg "fuzz/tests",
          Ise_telemetry.Registry.counter reg "fuzz/checks",
          Ise_telemetry.Registry.counter reg "fuzz/failures",
          Ise_telemetry.Registry.counter reg "fuzz/shrink_steps" ))
      telemetry
  in
  let count_tests n =
    Option.iter (fun (t, _, _, _) -> Ise_telemetry.Registry.add t n) counters
  and count_checks n =
    Option.iter (fun (_, c, _, _) -> Ise_telemetry.Registry.add c n) counters
  and count_failure steps =
    Option.iter
      (fun (_, _, f, s) ->
        Ise_telemetry.Registry.incr f;
        Ise_telemetry.Registry.add s steps)
      counters
  in
  let trace = Option.map Ise_telemetry.Sink.trace telemetry in
  let tests = tests_of_spec s in
  let vof = variant_of s in
  let proc rf = process_failure s ~log ~count_failure tests vof rf in
  let failures = ref [] in
  let lost = ref 0 in
  if jobs <= 1 || not Ise_pool.Pool.fork_available || n = 0 then
    for i = lo to hi - 1 do
      let t = tests.(i) in
      count_tests 1;
      Option.iter
        (fun tr ->
          Ise_telemetry.Trace.span_begin tr ~cat:"fuzz"
            ~name:t.Lit_test.name ~tid:0 i)
        trace;
      count_checks s.s_variants_per_test;
      List.iter
        (fun rf -> failures := proc rf :: !failures)
        (check_test s vof i t);
      Option.iter
        (fun tr ->
          Ise_telemetry.Trace.span_end tr ~cat:"fuzz"
            ~name:t.Lit_test.name ~tid:0 (i + 1))
        trace
    done
  else begin
    (* contiguous shards keep each test's global index — the variant
       schedule depends on it — and results come back in shard order,
       so the failure stream is byte-identical to the sequential one *)
    let worker (base, ts) =
      let acc = ref [] in
      Array.iteri
        (fun k t -> acc := List.rev_append (check_test s vof (base + k) t) !acc)
        ts;
      List.rev !acc
    in
    (* a timed-out shard is bisected: one wedged test costs half a
       shard, and the offending half is pinpointed in the log *)
    let bisect (base, ts) =
      let len = Array.length ts in
      if len < 2 then None
      else
        let mid = len / 2 in
        Some
          ( (base, Array.sub ts 0 mid),
            (base + mid, Array.sub ts mid (len - mid)) )
    in
    (* Consumption asserts the deterministic-schedule contract: every
       sizing policy must hand results back contiguously in global
       test order, or the variant schedule (a function of the global
       index) would silently diverge from the sequential run. *)
    let next_base = ref lo in
    let rec consume sh (base, ts) outcome =
      match outcome with
      | Ise_pool.Pool.Done fs ->
        assert (base = !next_base);
        next_base := base + Array.length ts;
        count_tests (Array.length ts);
        count_checks (Array.length ts * s.s_variants_per_test);
        List.iter (fun rf -> failures := proc rf :: !failures) fs
      | Ise_pool.Pool.Failed err ->
        assert (base = !next_base);
        next_base := base + Array.length ts;
        lost := !lost + Array.length ts;
        log
          (Printf.sprintf "LOST shard %d (tests %d-%d): %s" sh base
             (base + Array.length ts - 1)
             (Ise_pool.Pool.error_to_string err))
      | Ise_pool.Pool.Split (lout, rout) ->
        (* halves mirror [bisect]'s split exactly *)
        let mid = Array.length ts / 2 in
        log
          (Printf.sprintf "SPLIT shard %d (tests %d-%d): timed out, bisected"
             sh base
             (base + Array.length ts - 1));
        consume sh (base, Array.sub ts 0 mid) lout;
        consume sh
          (base + mid, Array.sub ts mid (Array.length ts - mid))
          rout
    in
    (* one persistent pool for the whole campaign: the pilot and main
       batches reuse the same forked workers *)
    let pool =
      Ise_pool.Pool.create ~jobs ?job_timeout ?telemetry ?journal_dir worker
    in
    let run_shards shards =
      let outcomes, _stats = Ise_pool.Pool.run ~bisect pool shards in
      Array.iteri (fun sh outcome -> consume sh shards.(sh) outcome) outcomes
    in
    Fun.protect ~finally:(fun () -> Ise_pool.Pool.close pool) @@ fun () ->
    let formula_size = max 1 ((n + (jobs * 4) - 1) / (jobs * 4)) in
    (* `Auto: run a pilot of single-test shards through the pool with a
       private sink, then size the remaining shards from the measured
       per-test latency (pool/worker<k>/job_ms histograms) *)
    let pilot =
      match shard_sizing with `Auto -> min n (jobs * 2) | _ -> 0
    in
    let shard_size =
      if pilot = 0 then
        match shard_sizing with `Fixed sz -> max 1 sz | _ -> formula_size
      else begin
        let cal = Ise_telemetry.Sink.create () in
        let pshards =
          Array.init pilot (fun i -> (lo + i, Array.sub tests (lo + i) 1))
        in
        let outcomes, _stats =
          Ise_pool.Pool.run ~telemetry:cal ~bisect pool pshards
        in
        Array.iteri
          (fun sh outcome -> consume sh pshards.(sh) outcome)
          outcomes;
        let is_job_ms name =
          String.length name > 12
          && String.sub name 0 11 = "pool/worker"
          && String.sub name (String.length name - 7) 7 = "/job_ms"
        in
        let total_ms = ref 0.0 and samples = ref 0 in
        List.iter
          (fun (name, snap) ->
            match snap with
            | Ise_telemetry.Registry.Snap_histogram h when is_job_ms name ->
              total_ms := !total_ms +. (h.s_mean *. float_of_int h.s_count);
              samples := !samples + h.s_count
            | _ -> ())
          (Ise_telemetry.Registry.snapshot (Ise_telemetry.Sink.registry cal));
        if !samples = 0 then formula_size
        else begin
          let mean = Float.max 0.01 (!total_ms /. float_of_int !samples) in
          let target_ms = 250.0 in
          let by_latency =
            max 1 (int_of_float (Float.round (target_ms /. mean)))
          in
          (* keep at least two shards per worker so the tail balances *)
          let cap = max 1 ((n - pilot + (jobs * 2) - 1) / (jobs * 2)) in
          let chosen = min by_latency cap in
          log
            (Printf.sprintf
               "auto shard sizing: pilot %d tests, mean %.1f ms/test -> %d \
                tests/shard"
               pilot mean chosen);
          chosen
        end
      end
    in
    let remaining = n - pilot in
    let nshards = (remaining + shard_size - 1) / shard_size in
    let shards =
      Array.init nshards (fun sh ->
          let base = lo + pilot + (sh * shard_size) in
          (base, Array.sub tests base (min shard_size (hi - base))))
    in
    run_shards shards
  end;
  {
    r_seed = s.s_seed;
    r_tests = n - !lost;
    r_checks = (n - !lost) * s.s_variants_per_test;
    r_failures = List.rev !failures;
    r_lost_tests = !lost;
  }

(* ------------------------------------------------------------------ *)
(* corpus integration                                                  *)

let entry_of_failure ~seed f =
  {
    Corpus.e_seed = seed;
    e_variant = variant_name f.f_variant;
    e_kind = kind_name f.f_kind;
    e_detail = f.f_detail;
    e_expect = Corpus.Must_fail;
    e_test = f.f_shrunk;
  }

let seed_entries () =
  let used = ref [] in
  List.filter_map
    (fun cat ->
      let pick =
        List.find_opt
          (fun t ->
            (not (List.mem t.Lit_test.name !used))
            && List.mem cat (Classify.classify t))
          Library.all
      in
      match pick with
      | None -> None
      | Some t ->
        used := t.Lit_test.name :: !used;
        Some
          {
            Corpus.e_seed = 0;
            e_variant = variant_name base_variant;
            e_kind = "seed";
            e_detail = "seed corpus: " ^ Classify.name cat;
            e_expect = Corpus.Must_pass;
            e_test = t;
          })
    Classify.all_categories

let replay ?(seeds = 10) (e : Corpus.entry) =
  match variant_named e.Corpus.e_variant with
  | None ->
    Error (Printf.sprintf "unknown lattice variant %S" e.Corpus.e_variant)
  | Some v -> (
    let result = failing_check ~seeds v e.Corpus.e_test in
    match (e.Corpus.e_expect, result) with
    | Corpus.Must_pass, None -> Ok ()
    | Corpus.Must_pass, Some (kind, detail) ->
      Error
        (Printf.sprintf "expected pass, but %s failed: %s" (kind_name kind)
           detail)
    | Corpus.Must_fail, Some (kind, _) when kind_name kind = e.Corpus.e_kind ->
      Ok ()
    | Corpus.Must_fail, Some (kind, detail) ->
      Error
        (Printf.sprintf "expected a %s failure, but %s failed instead: %s"
           e.Corpus.e_kind (kind_name kind) detail)
    | Corpus.Must_fail, None ->
      Error
        (Printf.sprintf "expected a %s failure, but every check passed"
           e.Corpus.e_kind))
