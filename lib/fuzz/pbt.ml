open Ise_util

type 'a gen = Rng.t -> 'a
type 'a shrinker = 'a -> 'a Seq.t

type 'a arb = {
  gen : 'a gen;
  shrink : 'a shrinker;
  pp : Format.formatter -> 'a -> unit;
}

let shrink_nothing _ = Seq.empty

let opaque_pp ppf _ = Format.pp_print_string ppf "<opaque>"

let make ?(shrink = shrink_nothing) ?(pp = opaque_pp) gen = { gen; shrink; pp }

(* ------------------------------------------------------------------ *)
(* generators                                                          *)

let return v _rng = v
let map f g rng = f (g rng)

let int_range lo hi rng =
  if hi < lo then invalid_arg "Pbt.int_range: empty range";
  lo + Rng.int rng (hi - lo + 1)

let bool rng = Rng.bool rng

let oneof gens rng =
  match gens with
  | [] -> invalid_arg "Pbt.oneof: empty list"
  | _ -> (List.nth gens (Rng.int rng (List.length gens))) rng

let choose vs rng =
  match vs with
  | [] -> invalid_arg "Pbt.choose: empty list"
  | _ -> List.nth vs (Rng.int rng (List.length vs))

let frequency weighted rng =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Pbt.frequency: weights must be positive";
  let roll = Rng.int rng total in
  let rec pick acc = function
    | [] -> assert false
    | (w, g) :: rest -> if roll < acc + w then g rng else pick (acc + w) rest
  in
  pick 0 weighted

let pair ga gb rng =
  let a = ga rng in
  let b = gb rng in
  (a, b)

let list_of ?(min = 0) ~max g rng =
  let n = int_range min max rng in
  List.init n (fun _ -> g rng)

(* ------------------------------------------------------------------ *)
(* shrinkers                                                           *)

let shrink_int n =
  if n = 0 then Seq.empty
  else
    let candidates = ref [] in
    let push v = if v <> n then candidates := v :: !candidates in
    push 0;
    push (n / 2);
    push (n - (if n > 0 then 1 else -1));
    List.to_seq (List.rev !candidates)

(* Drop a contiguous chunk [i, i+len) from [l]. *)
let drop_chunk l i len =
  List.filteri (fun j _ -> j < i || j >= i + len) l

let shrink_list ?(elt = shrink_nothing) l =
  let n = List.length l in
  let drops =
    (* halves first, then singles: O(n log n) candidates total *)
    let rec sizes acc len = if len >= 1 then sizes (len :: acc) (len / 2) else acc in
    let chunk_sizes = if n = 0 then [] else sizes [] (n / 2) in
    let chunk_sizes = List.sort_uniq (fun a b -> compare b a) (1 :: chunk_sizes) in
    Seq.concat_map
      (fun len ->
        Seq.init
          (n - len + 1)
          (fun i -> drop_chunk l i len))
      (List.to_seq chunk_sizes)
  in
  let elements =
    Seq.concat_map
      (fun i ->
        Seq.map
          (fun v -> List.mapi (fun j x -> if i = j then v else x) l)
          (elt (List.nth l i)))
      (Seq.init n (fun i -> i))
  in
  Seq.append drops elements

let shrink_pair sa sb (a, b) =
  Seq.append
    (Seq.map (fun a' -> (a', b)) (sa a))
    (Seq.map (fun b' -> (a, b')) (sb b))

(* ------------------------------------------------------------------ *)
(* running                                                             *)

type 'a failure = {
  fail_seed : int;
  fail_index : int;
  fail_case : 'a;
  fail_shrunk : 'a;
  fail_shrink_steps : int;
  fail_error : string option;
}

type 'a outcome = Passed of int | Failed of 'a failure

let minimize ?(max_evals = 10_000) shrink still_fails x =
  let evals = ref 0 in
  let rec go x steps =
    let next =
      Seq.find
        (fun c ->
          incr evals;
          !evals <= max_evals && still_fails c)
        (shrink x)
    in
    match next with
    | Some c when !evals <= max_evals -> go c (steps + 1)
    | _ -> (x, steps)
  in
  go x 0

let prop_fails prop x =
  match prop x with
  | ok -> (not ok, None)
  | exception e -> (true, Some (Printexc.to_string e))

let run ?(count = 100) ~seed arb prop =
  let root = Rng.create seed in
  let rec go i =
    if i >= count then Passed count
    else begin
      let case = arb.gen (Rng.split root) in
      match prop_fails prop case with
      | false, _ -> go (i + 1)
      | true, error ->
        let shrunk, steps =
          minimize arb.shrink (fun c -> fst (prop_fails prop c)) case
        in
        (* report the error message of the *shrunk* case when it raises *)
        let error =
          match prop_fails prop shrunk with _, (Some _ as e) -> e | _ -> error
        in
        Failed
          {
            fail_seed = seed;
            fail_index = i;
            fail_case = case;
            fail_shrunk = shrunk;
            fail_shrink_steps = steps;
            fail_error = error;
          }
    end
  in
  go 0

let check ?count ~seed ~name arb prop =
  match run ?count ~seed arb prop with
  | Passed _ -> ()
  | Failed f ->
    let msg =
      Format.asprintf
        "@[<v>property %S failed (seed %d, case #%d, %d shrink steps)%a@,\
         counterexample: %a@]"
        name f.fail_seed f.fail_index f.fail_shrink_steps
        (fun ppf -> function
          | None -> ()
          | Some e -> Format.fprintf ppf "@,raised: %s" e)
        f.fail_error arb.pp f.fail_shrunk
    in
    failwith msg
