(** Differential fuzzing campaigns over the configuration lattice.

    A campaign generates random litmus programs ({!Ise_litmus.Gen}),
    runs each one under a deterministic selection of lattice variants,
    and checks, per §6.3:

    - {b differential}: every outcome the operational machine exhibits
      is allowed by the axiomatic model (observed ⊆ allowed);
    - {b contract}: every run's architectural-interface trace satisfies
      the Table 5 rules (checked inside {!Ise_litmus.Lit_run});
    - {b model-vs-model} (proofs-by-enumeration, §4.6): allowed(SC) ⊆
      allowed(PC) ⊆ allowed(WC); same-stream fault handling preserves
      the base model exactly; split-stream only ever {e adds}
      outcomes.

    Any failure is minimized with {!Shrink} — re-running the failed
    check on every candidate — and recorded as a {!Corpus} artifact, so
    it replays from the file alone.  The whole campaign is a pure
    function of its integer seed. *)

open Ise_model
open Ise_litmus

(** {1 The lattice} *)

type mem_variant = Mem_default | Mem_2x | Mem_skew4x

type variant = {
  v_model : Axiom.model;
  v_protocol : Ise_core.Protocol.mode;
  v_faults : bool;  (** mark every test page faulting (error injection) *)
  v_timer : bool;  (** periodic timer interrupts during runs (§5.3) *)
  v_mem : mem_variant;  (** Table 3 cache/NoC/memory latency variants *)
  v_ordered_drain : bool;
      (** force [sb_max_inflight = 1] (single ordered drain) instead of
          the wide ASO-checkpoint-style concurrent drain *)
  v_chaos : string option;
      (** when set, the variant's check is the chaos-hardened litmus
          run of {!Ise_chaos.Chaos_run.lit_check} under the named
          {!Ise_chaos.Profile}; [None] in every {!all_variants} point *)
}

val all_variants : variant list
(** The swept lattice: SC/PC/WC × same/split stream × fault injection ×
    timer interrupts × drain width, plus per-model memory-latency
    variants.  Meaningless corners (split-stream without fault
    injection; drain width under PC, whose protocol already forces a
    single drain) are pruned. *)

val variant_name : variant -> string
(** Canonical compact name, e.g. ["pc+same+faults"],
    ["wc+split+faults+timer+ordered"] — the [variant] field of corpus
    artifacts. *)

val chaos_variants : variant list
(** One lattice point per {!Ise_chaos.Profile.outcome_transparent}
    profile, on the paper's default (WC, same-stream) configuration.
    Kept out of {!all_variants} — chaos runs are an order of magnitude
    slower, so campaigns opt in ([ise chaos campaign],
    [ise fuzz run --chaos]). *)

val variant_named : string -> variant option
(** Searches {!all_variants} and {!chaos_variants}. *)

val base_variant : variant
(** [wc+same+faults] — the paper's default configuration. *)

val cfg_of_variant : variant -> Ise_sim.Config.t

(** {1 Checks} *)

type check_kind =
  | Differential  (** observed ⊄ allowed *)
  | Contract  (** Table 5 interface-order violation *)
  | Model_mono  (** allowed(SC) ⊆ allowed(PC) ⊆ allowed(WC) broken *)
  | Same_stream_equiv  (** same-stream changed the allowed set (§4.6) *)
  | Split_subset  (** split-stream removed an outcome *)
  | Watchdog
      (** chaos run failed: bad outcome, contract breach, or an
          invariant-watchdog violation under fault injection *)

val kind_name : check_kind -> string
val kind_named : string -> check_kind option

val failing_check :
  ?seeds:int -> ?model_checks:bool -> variant -> Lit_test.t ->
  (check_kind * string) option
(** First failing check of the test under the variant, with a one-line
    explanation; [None] when everything passes.  [seeds] (default 10)
    is the number of perturbed operational runs; [model_checks]
    (default true) enables the model-vs-model enumeration checks. *)

(** {1 Campaigns} *)

type failure = {
  f_test : Lit_test.t;  (** as generated *)
  f_shrunk : Lit_test.t;
  f_variant : variant;
  f_kind : check_kind;
  f_detail : string;
  f_shrink_steps : int;
}

type report = {
  r_seed : int;
  r_tests : int;  (** tests whose checks actually ran *)
  r_checks : int;  (** test×variant checks executed *)
  r_failures : failure list;  (** discovery order *)
  r_lost_tests : int;
      (** tests lost to a failed parallel shard (crash/timeout after
          retries); always 0 sequentially and on a healthy pool *)
}

(** {1 Specs: the shippable description of a campaign}

    A {!spec} is everything a worker — a forked pool process or a
    remote fabric worker — needs to re-derive the campaign's test
    stream and check schedule: plain data, [Marshal]-safe, no
    closures.  {!run} is [tests_of_spec] + {!check_range} over
    [0, count) + {!report_of_raw}; the fabric supervisor runs the same
    three stages with the middle one distributed, which is why its
    merged output is byte-identical by construction. *)

type spec = {
  s_params : Gen.params;
  s_count : int;
  s_seeds_per_test : int;
  s_variants : variant list;
  s_variants_per_test : int;  (** clamped to [|s_variants|] *)
  s_model_checks : bool;
  s_shrink_evals : int;
  s_seed : int;
}

val spec :
  ?params:Gen.params -> ?count:int -> ?seeds_per_test:int ->
  ?variants:variant list -> ?variants_per_test:int ->
  ?model_checks:bool -> ?shrink_evals:int ->
  seed:int -> unit -> spec
(** Same defaults and validation as {!run}.
    @raise Invalid_argument on bad generator parameters or an empty
    variant list. *)

val tests_of_spec : spec -> Lit_test.t array
(** The campaign's full test stream, in global test order — a pure
    function of [s_seed] and [s_params]. *)

type raw_failure = {
  rf_test : int;  (** global test index *)
  rf_slot : int;  (** variant slot [0 .. s_variants_per_test) *)
  rf_kind : check_kind;
  rf_detail : string;
}
(** The pure, shippable outcome of a failed check: enough to rebuild
    the full {!failure} record (test, variant, shrinking) on the
    supervisor side from the spec alone. *)

val check_range :
  spec -> tests:Lit_test.t array -> lo:int -> hi:int -> raw_failure list
(** Run every check of tests [lo .. hi-1] (global indices into
    [tests_of_spec]); failures come back in global check order.  Pure:
    no logging, shrinking, or telemetry.
    @raise Invalid_argument when the range falls outside [tests]. *)

val report_of_raw :
  ?log:(string -> unit) ->
  spec -> tests:Lit_test.t array -> lost:int -> raw_failure list -> report
(** Fold raw failures — concatenated in global check order — into a
    campaign report: logs each failure, records it with the flight
    recorder, shrinks it, exactly as {!run} does, so
    [report_of_raw s ~tests ~lost:0 (check_range s ~tests ~lo:0
    ~hi:s.s_count)] is byte-identical to [run ~seed ()].  [lost] is
    the number of tests whose shards never completed
    ([r_lost_tests]). *)

val run :
  ?params:Gen.params -> ?count:int -> ?seeds_per_test:int ->
  ?variants:variant list -> ?variants_per_test:int ->
  ?model_checks:bool -> ?shrink_evals:int ->
  ?jobs:int -> ?job_timeout:float ->
  ?shard_sizing:[ `Formula | `Fixed of int | `Auto ] ->
  ?journal_dir:string ->
  ?telemetry:Ise_telemetry.Sink.t -> ?log:(string -> unit) ->
  ?range:int * int ->
  seed:int -> unit -> report
(** Deterministic in [seed].  [count] (default 100) programs are
    generated; test [i] runs under [variants_per_test] (default 2)
    variants chosen round-robin from [variants] (default
    {!all_variants}).  Failures are shrunk with at most [shrink_evals]
    (default 400) candidate re-checks each.  When [telemetry] is given,
    the campaign maintains [fuzz/*] counters and emits one trace span
    per generated test (sequentially) or one [pool] span per shard.

    [jobs] (default 1) > 1 fans the test×variant checks out over an
    {!Ise_pool.Pool} of forked workers in contiguous shards; test
    generation, logging, shrinking, and artifact construction stay in
    the supervisor, and shard results are consumed in shard order, so
    the report — failures, shrunk tests, log stream — is byte-identical
    to a [jobs = 1] run of the same seed.  A shard whose worker dies
    even after retries is {e reported} ([r_lost_tests], a [LOST] log
    line) rather than aborting the campaign.  [job_timeout] bounds one
    shard's wall-clock seconds.

    [shard_sizing] picks the shard size of the parallel path:
    [`Formula] (default) is the historical [count / (jobs*4)];
    [`Fixed n] forces [n] tests per shard; [`Auto] first runs a small
    pilot — [min count (2*jobs)] tests as single-test shards — reads
    the pool's per-worker [pool/worker<k>/job_ms] latency histograms,
    and sizes the remaining shards so each targets ~250 ms of work
    (clamped to keep at least two shards per worker).  Every sizing
    policy preserves the deterministic schedule: shards stay
    contiguous in global test order and are consumed in order —
    asserted at consumption — so the report is byte-identical across
    policies and worker counts.

    [journal_dir] is passed to {!Ise_pool.Pool.map}: forked workers
    keep crash journals there, and each chaos-variant machine mirrors
    its lifecycle events into them.

    [range] (default [(0, count)]) restricts checking to global test
    indices [lo .. hi-1] — the [--shard k/N] entry point.  The {e
    full} test stream is still generated, so the checked tests and
    their variant schedule are exactly the slice the unsharded run
    would execute: concatenating the failure streams of a contiguous
    partition of [0, count) reproduces the unsharded run's stream.
    [r_tests]/[r_checks] count only the range. *)

(** {1 Corpus integration} *)

val entry_of_failure : seed:int -> failure -> Corpus.entry
(** A [Must_fail] artifact for a freshly-found failure (flip it to
    [Must_pass] once the bug it witnesses is fixed). *)

val seed_entries : unit -> Corpus.entry list
(** Hand-picked [Must_pass] entries, one distinct library test per
    Table 6 relation family, so replay coverage is non-empty from day
    one ([ise fuzz seed-corpus] writes them to disk). *)

val replay : ?seeds:int -> Corpus.entry -> (unit, string) result
(** Re-runs the entry's checks under its recorded variant and compares
    with its [expect] field: [Must_pass] entries must pass every
    check; [Must_fail] entries must fail their recorded [kind].
    Unknown variant names are an [Error]. *)
