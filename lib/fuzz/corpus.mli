(** Replayable regression corpus.

    Every failure the campaign finds — and every hand-picked seed
    test — is stored as one plain-text artifact: the (shrunk) program,
    the lattice variant it ran under, the campaign seed, and the
    verdict replay should produce today.  The format is line-oriented
    and diff-friendly so artifacts live in git under [corpus/] and a
    reviewer can read a counterexample without tooling.

    {v
    ise-fuzz v1
    name SB
    seed 42
    variant pc+same+faults
    kind differential
    expect pass
    detail store buffering must stay allowed under PC
    thread W x 1; R r0 y
    thread W y 1; R r1 x
    cond R 0 r0 0; R 1 r1 0
    v}

    Instruction tokens: [R r x] load, [Rd r x rdep] dependent load,
    [W x v] store, [Wr x r] store of register, [Wd x v rdep] dependent
    store, [F] fence, [C r] control dependency, [A r x v] AMO swap,
    [Aa r x v] AMO add.  Registers are [r<n>], locations [x y z w]
    then [l<n>]. *)

type expect = Must_pass | Must_fail

type entry = {
  e_seed : int;  (** campaign seed that produced the artifact *)
  e_variant : string;  (** lattice variant name (see {!Campaign}) *)
  e_kind : string;  (** which check failed ([seed] for seeded entries) *)
  e_detail : string;  (** one-line human explanation *)
  e_expect : expect;  (** verdict replay should produce now *)
  e_test : Ise_litmus.Lit_test.t;
}

val to_string : entry -> string
val of_string : string -> (entry, string) result
(** Errors carry the offending line. *)

val save : dir:string -> entry -> string
(** Writes [<dir>/<name>.lit] (creating [dir] if needed) and returns
    the path.  The file name is the test name sanitized to
    [[A-Za-z0-9._-]]. *)

val load_file : string -> (entry, string) result
val load_dir : string -> (string * (entry, string) result) list
(** All [*.lit] files, sorted by path for determinism. *)
