(** Machine-level invariant watchdog.

    Observes every interface operation as it happens (via
    {!Ise_sim.Machine.add_observer}) and maintains per-core
    bookkeeping of the episode protocol.  The invariants are the
    Table 5 contract restated as an {e online} monitor — they hold
    under any amount of chaos, which is precisely what makes them
    worth checking:

    - {b no lost store}: every PUT is retrieved (GET) and applied
      exactly once before the episode RESOLVEs;
    - {b no duplicated store}: an APPLY of a record never seen, or
      seen twice, is flagged;
    - {b interface order}: per-core PUT sequence numbers increase, and
      GETs return records in PUT order (relaxed for split-stream,
      where a late-faulting clean store may join the FSB out of
      order);
    - {b apply order}: APPLYs follow GET order when the consistency
      model demands it (SC/PC);
    - {b protocol shape}: RESUME only after RESOLVE; nothing after
      TERMINATE (per-core quiesce);
    - {b liveness}: the machine makes progress — retirement, interface
      events, or FSB traffic — every watchdog window, else the run is
      declared livelocked ({!Trip}) with a diagnostic snapshot.

    Violations are collected, not raised (a chaos run reports them
    all); only the liveness tripwire raises, because a livelocked run
    would otherwise never return. *)

type violation = {
  w_rule : string;
  w_cycle : int;
  w_detail : string;
}

exception Trip of string
(** Raised from the engine tick when no progress was observed for
    [max_stalled] consecutive windows.  The message embeds the
    snapshot. *)

type t

val create :
  ?ordered_interface:bool -> ?ordered_apply:bool -> ncores:int -> unit -> t
(** [ordered_interface] (default [true]) enforces PUT-seq order and
    GET=PUT order — pass [false] for split-stream machines.
    [ordered_apply] (default [true]) enforces APPLY-in-GET-order —
    pass [false] for WC. *)

val observe : t -> Ise_core.Contract.event -> unit
(** Feed one event.  Normally wired by {!attach}; exposed for unit
    tests on synthetic event lists. *)

val attach : ?window:int -> ?max_stalled:int -> t -> Ise_sim.Machine.t -> unit
(** Registers {!observe} as a machine observer and starts the
    bounded-progress tick: every [window] cycles (default 20,000) the
    progress signature (retired instructions, events observed, FSB
    append/drain totals) is sampled; [max_stalled] (default 10)
    unchanged samples while cores are still live raise {!Trip}. *)

val check_final : t -> unit
(** End-of-run residue: records still unretrieved or unapplied on a
    live core become [lost-store-at-exit] violations.  Call after the
    run completes (not after a {!Trip}). *)

val violations : t -> violation list
(** In observation order. *)

val events_observed : t -> int

val snapshot : t -> string
(** Human-readable per-core state: phase (when attached), pending
    PUT/GET counts, episode flags, and the last few events — the
    diagnostic dumped when the watchdog trips or a violation is
    reported. *)
