open Ise_util
open Ise_sim

type report = {
  r_seed : int;
  r_profile : string;
  r_cycles : int;
  r_events : int;
  r_counts : (string * int) list;
  r_violations : Watchdog.violation list;
  r_terminated : int;
  r_verified : int;
  r_mismatches : int;
  r_snapshot : string option;
  r_journal : string;
}

let ok r = r.r_violations = [] && r.r_mismatches = 0

let cfg_with_profile (p : Profile.t) (cfg : Config.t) =
  let cfg = { cfg with Config.fsb_overflow = p.Profile.fsb_overflow } in
  match p.Profile.fsb_entries with
  | None -> cfg
  | Some n -> { cfg with Config.fsb_entries = n }

(* distinct root streams for program generation and injection decisions *)
let plane_seed seed = Hashtbl.hash (seed, "plane")

let page_size = 4096
let pages_per_core = 4
let words_per_page = 16

(* ------------------------------------------------------------------ *)
(* Stress runs                                                         *)

(* Per-core program over a private address stripe, plus the last-writer
   model the final memory image is verified against. *)
let gen_program rng ~base ~stores =
  let model = Hashtbl.create 64 in
  let instrs = ref [] in
  let nslots = pages_per_core * words_per_page in
  for i = 1 to stores do
    let slot = Rng.int rng nslots in
    let page = slot / words_per_page and w = slot mod words_per_page in
    let addr = base + (page * page_size) + (w * 8) in
    let v = (i lsl 8) lor (slot land 0xFF) in
    Hashtbl.replace model (addr lsr 3) v;
    instrs :=
      Sim_instr.St { addr = Sim_instr.addr addr; data = Sim_instr.Imm v }
      :: !instrs;
    if Rng.int rng 100 < 30 then
      instrs :=
        Sim_instr.Ld { dst = 1 + Rng.int rng 8; addr = Sim_instr.addr addr }
        :: !instrs;
    if Rng.int rng 100 < 25 then
      instrs := Sim_instr.Nop (1 + Rng.int rng 20) :: !instrs
  done;
  (List.rev !instrs, model)

let run_stress ?(ncores = 4) ?(stores_per_core = 120) ?telemetry ~seed
    ~profile () =
  let cfg = cfg_with_profile profile Config.default in
  let stripe i = cfg.Config.einject_base + (i * pages_per_core * page_size) in
  let root = Rng.create seed in
  let progs_models =
    Array.init ncores (fun i ->
        let rng = Rng.split root in
        gen_program rng ~base:(stripe i) ~stores:stores_per_core)
  in
  let programs =
    Array.map (fun (is, _) -> Sim_instr.of_list is) progs_models
  in
  let machine = Machine.create ~cfg ~programs () in
  let plane = Plane.create ~seed:(plane_seed seed) ~profile in
  ignore
    (Ise_os.Handler.install
       ~max_apply_retries:profile.Profile.max_apply_retries
       ~apply_backoff:profile.Profile.apply_backoff
       ~on_apply_exhausted:profile.Profile.on_apply_exhausted
       ~chaos:(Plane.handler_chaos plane) machine);
  Plane.install plane machine;
  let wd =
    Watchdog.create
      ~ordered_interface:
        (cfg.Config.protocol_mode = Ise_core.Protocol.Same_stream)
      ~ordered_apply:(cfg.Config.consistency <> Ise_model.Axiom.Wc)
      ~ncores ()
  in
  Watchdog.attach wd machine;
  (* always-on flight recorder: same event stream the watchdog sees,
     dumped with the snapshot when something trips *)
  let recorder =
    Ise_obs.Recorder.create ~capacity:8192
      ~meta:
        (Ise_obs.Runinfo.stamp_meta ()
        @ [ ("kind", "chaos"); ("profile", profile.Profile.name);
            ("seed", string_of_int seed); ("ncores", string_of_int ncores);
            ( "ordered_interface",
              string_of_bool
                (cfg.Config.protocol_mode = Ise_core.Protocol.Same_stream) );
            ( "ordered_apply",
              string_of_bool (cfg.Config.consistency <> Ise_model.Axiom.Wc) )
          ])
      ()
  in
  Ise_obs.Recorder.observe_machine recorder machine;
  Ise_obs.Recorder.observe_machine_global machine;
  (match telemetry with
   | None -> ()
   | Some sink -> Machine.attach_telemetry machine sink);
  (* half of each stripe's pages start faulting: stores there take
     imprecise exceptions, stores to the other pages drain cleanly *)
  Array.iteri
    (fun i _ ->
      Einject.set_faulting (Machine.einject machine) (stripe i);
      Einject.set_faulting (Machine.einject machine)
        (stripe i + (2 * page_size)))
    progs_models;
  let crash = ref None in
  (try Machine.run ~max_cycles:20_000_000 machine with
   | Watchdog.Trip msg -> crash := Some ("livelock", msg)
   | Failure msg -> crash := Some ("machine-failure", msg));
  let completed = !crash = None in
  if completed then Watchdog.check_final wd;
  let extra =
    match !crash with
    | None -> []
    | Some (rule, msg) ->
      [ { Watchdog.w_rule = rule; w_cycle = Machine.cycles machine;
          w_detail = msg } ]
  in
  (* verify the final memory image of every live core against the
     last-writer model (terminated cores legitimately discard stores) *)
  let verified = ref 0 and mismatches = ref [] in
  let terminated = ref 0 in
  for i = 0 to ncores - 1 do
    if Core.is_terminated (Machine.core machine i) then incr terminated
    else if completed then begin
      let _, model = progs_models.(i) in
      let words =
        List.sort compare (Hashtbl.fold (fun w v acc -> (w, v) :: acc) model [])
      in
      List.iter
        (fun (w, v) ->
          incr verified;
          let got = Machine.read_word machine (w lsl 3) in
          if got <> v then
            mismatches :=
              { Watchdog.w_rule = "memory-mismatch";
                w_cycle = Machine.cycles machine;
                w_detail =
                  Printf.sprintf
                    "core %d addr 0x%x: expected %d, found %d" i (w lsl 3) v
                    got }
              :: !mismatches)
        words
    end
  done;
  let mismatches = List.rev !mismatches in
  let violations = Watchdog.violations wd @ extra @ mismatches in
  (match telemetry with
   | None -> ()
   | Some sink ->
     Plane.record_counts plane sink;
     if completed then Machine.record_final_stats machine);
  {
    r_seed = seed;
    r_profile = profile.Profile.name;
    r_cycles = Machine.cycles machine;
    r_events = Watchdog.events_observed wd;
    r_counts = Plane.counts plane;
    r_violations = violations;
    r_terminated = !terminated;
    r_verified = !verified;
    r_mismatches = List.length mismatches;
    r_snapshot =
      (if violations = [] then None
       else
         Some
           (Watchdog.snapshot wd
           ^ "--- flight recorder (journal tail) ---\n"
           ^ String.concat "\n" (Ise_obs.Recorder.tail_lines recorder)
           ^ "\n"));
    r_journal =
      (Ise_obs.Recorder.set_meta recorder "dropped"
         (string_of_int (Ise_obs.Recorder.dropped recorder));
       Ise_obs.Recorder.dump recorder);
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>profile=%s seed=%d cycles=%d events=%d terminated=%d verified=%d \
     mismatches=%d violations=%d"
    r.r_profile r.r_seed r.r_cycles r.r_events r.r_terminated r.r_verified
    r.r_mismatches
    (List.length r.r_violations);
  List.iter (fun (k, v) -> Format.fprintf ppf "@,  %s=%d" k v) r.r_counts;
  List.iter
    (fun (v : Watchdog.violation) ->
      Format.fprintf ppf "@,  VIOLATION [%s@%d] %s" v.Watchdog.w_rule
        v.Watchdog.w_cycle v.Watchdog.w_detail)
    r.r_violations;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Campaign specs: the spec/check_range split that lets stress trials
   dispatch across the fabric with a byte-identical merge              *)

type spec = {
  cs_seed : int;
  cs_trials : int;
  cs_cores : int;
  cs_stores : int;
  cs_profiles : string list;
}

let spec ?trials ?(cores = 4) ?(stores = 120) ~seed ~profiles () =
  if profiles = [] then invalid_arg "Chaos_run.spec: no profiles";
  let names = List.map (fun p -> p.Profile.name) profiles in
  let trials = match trials with Some t -> t | None -> List.length names in
  { cs_seed = seed; cs_trials = trials; cs_cores = cores;
    cs_stores = stores; cs_profiles = names }

let spec_profiles s =
  let rec resolve acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | n :: rest -> (
      match Profile.named n with
      | Some p -> resolve (p :: acc) rest
      | None -> Error n)
  in
  if s.cs_profiles = [] then Error "(empty profile list)"
  else resolve [] s.cs_profiles

(* Trial t of a spec: the profile rotates, the seed advances — fixed
   by the trial's *global* index, so any slicing of [0, cs_trials)
   reproduces exactly the trials a sequential run would execute. *)
let trial_of_spec s t =
  match spec_profiles s with
  | Error n -> invalid_arg ("Chaos_run.trial_of_spec: unknown profile " ^ n)
  | Ok parr -> (s.cs_seed + t, parr.(t mod Array.length parr))

let check_range s ~lo ~hi =
  if lo < 0 || hi > s.cs_trials || lo > hi then
    invalid_arg "Chaos_run.check_range: range out of bounds";
  match spec_profiles s with
  | Error n -> invalid_arg ("Chaos_run.check_range: unknown profile " ^ n)
  | Ok parr ->
    List.init (hi - lo) (fun i ->
        let t = lo + i in
        let profile = parr.(t mod Array.length parr) in
        run_stress ~ncores:s.cs_cores ~stores_per_core:s.cs_stores
          ~seed:(s.cs_seed + t) ~profile ())

(* ------------------------------------------------------------------ *)
(* Chaos-hardened litmus checking                                      *)

let chaos_seed (p : Profile.t) (t : Ise_litmus.Lit_test.t) =
  Hashtbl.hash
    (t.Ise_litmus.Lit_test.name, t.Ise_litmus.Lit_test.threads,
     p.Profile.name)

let loc_addr ~base l = base + (l * page_size)

let locs_of (t : Ise_litmus.Lit_test.t) =
  let locs = Hashtbl.create 4 in
  Array.iter
    (List.iter (fun i ->
         match Ise_model.Instr.loc_of i with
         | Some l -> Hashtbl.replace locs l ()
         | None -> ()))
    t.Ise_litmus.Lit_test.threads;
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) locs [])

let dest_regs (t : Ise_litmus.Lit_test.t) =
  let regs = ref [] in
  Array.iteri
    (fun tid instrs ->
      List.iter
        (fun i ->
          match Ise_model.Instr.defs i with
          | Some r ->
            if not (List.mem (tid, r) !regs) then regs := (tid, r) :: !regs
          | None -> ())
        instrs)
    t.Ise_litmus.Lit_test.threads;
  List.rev !regs

let model_config (cfg : Config.t) =
  let model = cfg.Config.consistency in
  match cfg.Config.protocol_mode with
  | Ise_core.Protocol.Same_stream ->
    { Ise_model.Axiom.model; faults = Ise_model.Axiom.Precise }
  | Ise_core.Protocol.Split_stream ->
    { Ise_model.Axiom.model; faults = Ise_model.Axiom.Split_stream }

let perturb rng instrs =
  let out = ref [] in
  if Rng.bool rng then out := [ Sim_instr.Nop (1 + Rng.int rng 60) ];
  List.iter
    (fun i ->
      out := i :: !out;
      if Rng.int rng 100 < 40 then
        out := Sim_instr.Nop (1 + Rng.int rng 25) :: !out)
    instrs;
  List.rev !out

let lit_check ?(seeds = 12) ~cfg ~profile (t : Ise_litmus.Lit_test.t) =
  let cfg = cfg_with_profile profile cfg in
  let base = cfg.Config.einject_base in
  let lowered = Ise_litmus.Lit_run.lower t ~base in
  let locs = locs_of t in
  let regs = dest_regs t in
  let faulting =
    match cfg.Config.protocol_mode with
    | Ise_core.Protocol.Split_stream -> Ise_litmus.Lit_test.stores_of t
    | _ -> []
  in
  let allowed =
    Ise_model.Check.allowed ~faulting (model_config cfg)
      t.Ise_litmus.Lit_test.threads
  in
  let root = Rng.create (chaos_seed profile t) in
  let ncores = Array.length lowered in
  let rec go run =
    if run > seeds then None
    else begin
      let rng = Rng.split root in
      let programs =
        Array.map (fun is -> Sim_instr.of_list (perturb rng is)) lowered
      in
      let machine = Machine.create ~cfg ~programs () in
      let plane =
        Plane.create
          ~seed:(Hashtbl.hash (chaos_seed profile t, run))
          ~profile
      in
      ignore
        (Ise_os.Handler.install
           ~max_apply_retries:profile.Profile.max_apply_retries
           ~apply_backoff:profile.Profile.apply_backoff
           ~on_apply_exhausted:profile.Profile.on_apply_exhausted
           ~chaos:(Plane.handler_chaos plane) machine);
      Plane.install plane machine;
      let wd =
        Watchdog.create
          ~ordered_interface:
            (cfg.Config.protocol_mode = Ise_core.Protocol.Same_stream)
          ~ordered_apply:(cfg.Config.consistency <> Ise_model.Axiom.Wc)
          ~ncores ()
      in
      Watchdog.attach wd machine;
      (* forked campaign workers may have a global (spilling) recorder:
         mirror the lifecycle stream so a crash leaves a journal tail *)
      Ise_obs.Recorder.observe_machine_global machine;
      List.iter
        (fun l ->
          Einject.set_faulting (Machine.einject machine) (loc_addr ~base l))
        locs;
      match Machine.run ~max_cycles:4_000_000 machine with
      | exception Watchdog.Trip _ ->
        Some (Printf.sprintf "run %d: watchdog tripped (livelock)" run)
      | exception Failure msg -> Some (Printf.sprintf "run %d: %s" run msg)
      | () -> (
        Watchdog.check_final wd;
        let outcome =
          Ise_model.Outcome.make
            ~regs:
              (List.map
                 (fun (tid, r) ->
                   ((tid, r), Core.reg (Machine.core machine tid) r))
                 regs)
            ~mem:
              (List.map
                 (fun l -> (l, Machine.read_word machine (loc_addr ~base l)))
                 locs)
        in
        if not (Ise_model.Outcome.Set.mem outcome allowed) then
          Some
            (Format.asprintf "run %d: outcome %a not allowed under chaos" run
               Ise_model.Outcome.pp outcome)
        else
          let contract_bad =
            match cfg.Config.protocol_mode with
            | Ise_core.Protocol.Same_stream ->
              Stdlib.Result.is_error (Machine.check_contract machine)
            | Ise_core.Protocol.Split_stream -> false
          in
          if contract_bad then
            Some (Printf.sprintf "run %d: interface contract violated" run)
          else
            match Watchdog.violations wd with
            | [] -> go (run + 1)
            | v :: _ ->
              Some
                (Printf.sprintf "run %d: watchdog [%s] %s" run
                   v.Watchdog.w_rule v.Watchdog.w_detail))
    end
  in
  go 1
