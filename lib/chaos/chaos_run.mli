(** Chaos executions: self-checking stress runs and chaos-hardened
    litmus checking.

    A stress run builds a multicore machine where every core writes a
    private address stripe (half its pages marked faulting in the
    EInject device), attaches the fault-injection {!Plane} and the
    invariant {!Watchdog}, runs to completion, and then verifies the
    final memory image word by word against the program's last-writer
    values.  Everything is a pure function of [(seed, profile)] — the
    same pair reproduces the same run byte for byte. *)

type report = {
  r_seed : int;
  r_profile : string;
  r_cycles : int;
  r_events : int;  (** interface operations the watchdog observed *)
  r_counts : (string * int) list;  (** {!Plane.counts} *)
  r_violations : Watchdog.violation list;
  r_terminated : int;  (** cores gracefully terminated *)
  r_verified : int;  (** words checked against the last-writer model *)
  r_mismatches : int;  (** words whose final value was wrong *)
  r_snapshot : string option;
      (** diagnostic dump when something failed, with the flight
          recorder's journal tail appended *)
  r_journal : string;
      (** full {!Ise_obs.Journal} text of the run's lifecycle events
          (bounded by the recorder ring) — feed to
          [Ise_obs.Episode.analyze] or [ise report] *)
}

val ok : report -> bool
(** No watchdog violations and no memory mismatches. *)

val run_stress :
  ?ncores:int -> ?stores_per_core:int -> ?telemetry:Ise_telemetry.Sink.t ->
  seed:int -> profile:Profile.t -> unit -> report
(** Defaults: 4 cores, 120 stores per core.  A {!Watchdog.Trip}
    (livelock) or machine [Failure] is converted into a violation with
    the diagnostic snapshot attached — the call itself never raises.
    With [telemetry], chaos counters and machine stats are mirrored
    into the sink (pass a fresh sink per run). *)

val pp_report : Format.formatter -> report -> unit
(** Deterministic single-line-per-field rendering, used by the CLI's
    byte-identical determinism contract. *)

(** {1 Campaign specs}

    The chaos counterpart of {!Ise_fuzz.Campaign.spec}/[check_range]:
    a plain-data description of a whole stress campaign, from which
    any process can recompute any contiguous trial range.  Trial [t]'s
    [(seed, profile)] pair is a function of its {e global} index
    ([cs_seed + t], profiles rotating), so concatenating disjoint
    ranges in order is byte-identical to running [0, cs_trials)
    sequentially — what lets [ise chaos run] dispatch over the fabric
    with a deterministic merge. *)

type spec = {
  cs_seed : int;
  cs_trials : int;
  cs_cores : int;  (** cores per stress machine *)
  cs_stores : int;  (** stores per core *)
  cs_profiles : string list;
      (** profile {e names} (plain marshalable data); resolved via
          {!Profile.named} at check time *)
}

val spec :
  ?trials:int -> ?cores:int -> ?stores:int -> seed:int ->
  profiles:Profile.t list -> unit -> spec
(** Defaults: one trial per profile, 4 cores, 120 stores.
    @raise Invalid_argument on an empty profile list. *)

val spec_profiles : spec -> (Profile.t array, string) result
(** Resolve the profile names; [Error name] on an unknown one — how a
    fabric worker validates a spec before accepting it. *)

val trial_of_spec : spec -> int -> int * Profile.t
(** [(seed, profile)] of global trial [t]. *)

val check_range : spec -> lo:int -> hi:int -> report list
(** Run trials [lo, hi)] in global order.  Like {!run_stress}, never
    raises on a chaotic machine — only on a malformed spec
    ([Invalid_argument]). *)

val cfg_with_profile : Profile.t -> Ise_sim.Config.t -> Ise_sim.Config.t
(** Applies the profile's FSB sizing/overflow-policy overrides. *)

val chaos_seed : Profile.t -> Ise_litmus.Lit_test.t -> int
(** Deterministic root seed for {!lit_check}, derived from the test's
    thread programs and the profile name — stable across
    find/shrink/save/replay, which all rebuild the test value. *)

val lit_check :
  ?seeds:int -> cfg:Ise_sim.Config.t -> profile:Profile.t ->
  Ise_litmus.Lit_test.t -> string option
(** Runs a litmus test [seeds] times (default 12) under the profile
    with plane + watchdog attached: fails ([Some detail]) when an
    outcome falls outside the model-allowed set, the Table 5 contract
    is violated, or the watchdog flags anything.  Only meaningful for
    {!Profile.outcome_transparent} profiles. *)
