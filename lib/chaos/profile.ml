type t = {
  name : string;
  doc : string;
  fsb_entries : int option;
  fsb_overflow : Ise_sim.Config.fsb_overflow;
  put_delay_pct : int;
  put_delay_max : int;
  backpressure_pct : int;
  backpressure_budget : int;
  noc_delay_pct : int;
  noc_delay_max : int;
  dup_pct : int;
  deny_pct : int;
  deny_budget : int;
  deny_fatal_pct : int;
  timer_period : int option;
  preempt_pct : int;
  preempt_cycles : int;
  max_apply_retries : int;
  apply_backoff : int;
  on_apply_exhausted : [ `Fail | `Terminate ];
}

let quiet =
  {
    name = "quiet";
    doc = "no injection at all (plumbing baseline)";
    fsb_entries = None;
    fsb_overflow = Ise_sim.Config.Fsb_fatal;
    put_delay_pct = 0;
    put_delay_max = 0;
    backpressure_pct = 0;
    backpressure_budget = 0;
    noc_delay_pct = 0;
    noc_delay_max = 0;
    dup_pct = 0;
    deny_pct = 0;
    deny_budget = 0;
    deny_fatal_pct = 0;
    timer_period = None;
    preempt_pct = 0;
    preempt_cycles = 0;
    max_apply_retries = 1;
    apply_backoff = 0;
    on_apply_exhausted = `Fail;
  }

let light =
  { quiet with
    name = "light";
    doc = "mild NoC delays";
    noc_delay_pct = 10;
    noc_delay_max = 8 }

let fsb_stall =
  { quiet with
    name = "fsb-stall";
    doc = "8-entry FSB, overflow stalls + early handler invocation";
    fsb_entries = Some 8;
    fsb_overflow = Ise_sim.Config.Fsb_stall;
    put_delay_pct = 30;
    put_delay_max = 12;
    backpressure_pct = 15;
    backpressure_budget = 3 }

let fsb_degrade =
  { quiet with
    name = "fsb-degrade";
    doc = "8-entry FSB, overflow drops to precise re-execution";
    fsb_entries = Some 8;
    fsb_overflow = Ise_sim.Config.Fsb_degrade;
    put_delay_pct = 20;
    put_delay_max = 8 }

let noc =
  { quiet with
    name = "noc";
    doc = "heavy mesh delays and duplicated store deliveries";
    noc_delay_pct = 40;
    noc_delay_max = 24;
    dup_pct = 10 }

let transient =
  { quiet with
    name = "transient";
    doc = "transient denials survived by bounded retry with backoff";
    deny_pct = 12;
    deny_budget = 2;
    max_apply_retries = 6;
    apply_backoff = 2;
    noc_delay_pct = 10;
    noc_delay_max = 6 }

let storm =
  {
    name = "storm";
    doc = "everything at once, including graceful termination";
    fsb_entries = Some 8;
    fsb_overflow = Ise_sim.Config.Fsb_stall;
    put_delay_pct = 30;
    put_delay_max = 12;
    backpressure_pct = 15;
    backpressure_budget = 3;
    noc_delay_pct = 30;
    noc_delay_max = 16;
    dup_pct = 8;
    deny_pct = 10;
    deny_budget = 2;
    deny_fatal_pct = 4;
    timer_period = Some 700;
    preempt_pct = 25;
    preempt_cycles = 40;
    max_apply_retries = 6;
    apply_backoff = 2;
    on_apply_exhausted = `Terminate;
  }

let all = [ light; fsb_stall; fsb_degrade; noc; transient; storm ]

let named name = List.find_opt (fun p -> p.name = name) all

let outcome_transparent p =
  p.deny_fatal_pct = 0 && p.on_apply_exhausted = `Fail
