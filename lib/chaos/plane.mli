(** The fault-injection plane: one seeded decision engine feeding
    every chaos hook point in the stack.

    Each decision category (FSBC append delay, append backpressure,
    NoC delay, message duplication, transient denial, handler
    preemption) draws from its own generator split from the root seed,
    so enabling one category never perturbs another's stream — a
    failure found under [storm] still reproduces when replayed with
    the same seed.

    Convergence guarantees the plane upholds by construction:
    - backpressure is bounded to [backpressure_budget] consecutive
      refusals, so a stalled append always eventually proceeds;
    - transient denials are capped per address at [deny_budget], so a
      denied access (and the handler's S_OS store) always succeeds
      within the handler's retry budget. *)

type t

val create : seed:int -> profile:Profile.t -> t
val profile : t -> Profile.t

(** {1 Hook points} *)

val perturb : t -> Ise_sim.Memsys.perturb
(** For {!Ise_sim.Memsys.set_perturb}. *)

val core_hooks : t -> Ise_sim.Core.chaos_hooks
(** For {!Ise_sim.Core.set_chaos}. *)

val handler_chaos : t -> Ise_os.Handler.chaos
(** For {!Ise_os.Handler.install}'s [?chaos]. *)

val install : t -> Ise_sim.Machine.t -> unit
(** Wires {!perturb} and {!core_hooks} into a machine (every core),
    and enables timer interrupts when the profile asks for them.  The
    handler hook must still be passed to
    {!Ise_os.Handler.install} — the plane cannot reach hooks installed
    after it. *)

(** {1 Injection counters} *)

val counts : t -> (string * int) list
(** [("chaos/put_delays", n); ...] — one entry per fault class, in a
    fixed order, including zero entries (so coverage checks can assert
    on the full vector). *)

val record_counts : t -> Ise_telemetry.Sink.t -> unit
(** Mirrors {!counts} into the sink's registry as absolute counters. *)
