open Ise_core

type violation = {
  w_rule : string;
  w_cycle : int;
  w_detail : string;
}

exception Trip of string

let ring_size = 8

type cstate = {
  mutable puts : Fault.record list;  (* pending GET, oldest first *)
  mutable gets : Fault.record list;  (* pending APPLY, in GET order *)
  mutable last_seq : int;
  mutable in_episode : bool;
  mutable resolved : bool;
  mutable terminated : bool;
  ring : string array;  (* last few events, for the snapshot *)
  mutable ring_n : int;
}

type t = {
  ordered_interface : bool;
  ordered_apply : bool;
  cores : cstate array;
  mutable viols : violation list;  (* newest first *)
  mutable events : int;
  mutable machine : Ise_sim.Machine.t option;
}

let create ?(ordered_interface = true) ?(ordered_apply = true) ~ncores () =
  {
    ordered_interface;
    ordered_apply;
    cores =
      Array.init ncores (fun _ ->
          { puts = []; gets = []; last_seq = -1; in_episode = false;
            resolved = false; terminated = false;
            ring = Array.make ring_size ""; ring_n = 0 });
    viols = [];
    events = 0;
    machine = None;
  }

let violations t = List.rev t.viols
let events_observed t = t.events

let flag t ~cycle rule detail =
  t.viols <- { w_rule = rule; w_cycle = cycle; w_detail = detail } :: t.viols

let pp_rec r =
  Format.asprintf "seq=%d addr=0x%x data=%d" r.Fault.seq r.Fault.addr
    r.Fault.data

(* Remove the first structurally-equal record; None if absent. *)
let remove_first r l =
  let rec go acc = function
    | [] -> None
    | x :: rest ->
      if x = r then Some (List.rev_append acc rest) else go (x :: acc) rest
  in
  go [] l

let observe t ev =
  t.events <- t.events + 1;
  let core_of = function
    | Contract.Detect { core; _ } | Contract.Put { core; _ }
    | Contract.Get { core; _ } | Contract.Apply { core; _ }
    | Contract.Resolve { core; _ } | Contract.Resume { core; _ }
    | Contract.Terminate { core; _ } -> core
  and cycle_of = function
    | Contract.Detect { cycle; _ } | Contract.Put { cycle; _ }
    | Contract.Get { cycle; _ } | Contract.Apply { cycle; _ }
    | Contract.Resolve { cycle; _ } | Contract.Resume { cycle; _ }
    | Contract.Terminate { cycle; _ } -> cycle
  in
  let core = core_of ev and cycle = cycle_of ev in
  if core < 0 || core >= Array.length t.cores then
    flag t ~cycle "bad-core" (Printf.sprintf "event on core %d" core)
  else begin
    let c = t.cores.(core) in
    c.ring.(c.ring_n mod ring_size) <- Format.asprintf "%a" Contract.pp_event ev;
    c.ring_n <- c.ring_n + 1;
    let flag = flag t ~cycle in
    match ev with
    | _ when c.terminated ->
      (* per-core quiesce: a terminated core is silent forever *)
      flag "after-terminate"
        (Format.asprintf "core %d emitted %a after TERMINATE" core
           Contract.pp_event ev)
    | Contract.Detect _ ->
      c.in_episode <- true;
      c.resolved <- false
    | Contract.Put { record; _ } ->
      if t.ordered_interface && record.Fault.seq <= c.last_seq then
        flag "put-order"
          (Printf.sprintf "core %d PUT seq %d after seq %d" core
             record.Fault.seq c.last_seq);
      c.last_seq <- max c.last_seq record.Fault.seq;
      c.puts <- c.puts @ [ record ]
    | Contract.Get { record; _ } -> (
      match c.puts with
      | first :: rest when t.ordered_interface ->
        if first = record then begin
          c.puts <- rest;
          c.gets <- c.gets @ [ record ]
        end
        else begin
          (* flag, then keep the monitor in sync as best we can *)
          match remove_first record c.puts with
          | Some rest' ->
            flag "get-order"
              (Printf.sprintf "core %d GET %s but oldest PUT is %s" core
                 (pp_rec record) (pp_rec first));
            c.puts <- rest';
            c.gets <- c.gets @ [ record ]
          | None ->
            flag "get-unknown"
              (Printf.sprintf "core %d GET %s never PUT" core (pp_rec record))
        end
      | _ -> (
        match remove_first record c.puts with
        | Some rest ->
          c.puts <- rest;
          c.gets <- c.gets @ [ record ]
        | None ->
          flag "get-unknown"
            (Printf.sprintf "core %d GET %s never PUT" core (pp_rec record))))
    | Contract.Apply { record; _ } -> (
      match c.gets with
      | first :: rest when t.ordered_apply ->
        if first = record then c.gets <- rest
        else begin
          match remove_first record c.gets with
          | Some rest' ->
            flag "apply-order"
              (Printf.sprintf "core %d APPLY %s but oldest GET is %s" core
                 (pp_rec record) (pp_rec first));
            c.gets <- rest'
          | None ->
            flag "apply-unknown"
              (Printf.sprintf
                 "core %d APPLY %s never retrieved (or applied twice)" core
                 (pp_rec record))
        end
      | _ -> (
        match remove_first record c.gets with
        | Some rest -> c.gets <- rest
        | None ->
          flag "apply-unknown"
            (Printf.sprintf
               "core %d APPLY %s never retrieved (or applied twice)" core
               (pp_rec record))))
    | Contract.Resolve _ ->
      if c.puts <> [] then
        flag "lost-store"
          (Printf.sprintf "core %d RESOLVE with %d stores never retrieved"
             core (List.length c.puts));
      if c.gets <> [] then
        flag "lost-store"
          (Printf.sprintf "core %d RESOLVE with %d stores never applied" core
             (List.length c.gets));
      c.resolved <- true
    | Contract.Resume _ ->
      if c.in_episode && not c.resolved then
        flag "resume-before-resolve"
          (Printf.sprintf "core %d RESUME without RESOLVE" core);
      c.in_episode <- false;
      c.resolved <- false
    | Contract.Terminate _ ->
      (* §4.1: retrieved-but-unapplied faulting stores are discarded *)
      c.terminated <- true;
      c.in_episode <- false;
      c.puts <- [];
      c.gets <- []
  end

let check_final t =
  Array.iteri
    (fun i c ->
      if not c.terminated then begin
        if c.puts <> [] then
          flag t ~cycle:(-1) "lost-store-at-exit"
            (Printf.sprintf "core %d ended with %d stores never retrieved" i
               (List.length c.puts));
        if c.gets <> [] then
          flag t ~cycle:(-1) "lost-store-at-exit"
            (Printf.sprintf "core %d ended with %d stores never applied" i
               (List.length c.gets))
      end)
    t.cores

let snapshot t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "watchdog: %d events observed, %d violations\n" t.events
       (List.length t.viols));
  Array.iteri
    (fun i c ->
      let phase =
        match t.machine with
        | None -> ""
        | Some m when i < Ise_sim.Machine.ncores m ->
          Printf.sprintf " phase=%s"
            (Ise_sim.Core.phase_name (Ise_sim.Machine.core m i))
        | Some _ -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf
           "core %d:%s pending_put=%d pending_apply=%d episode=%b \
            terminated=%b\n"
           i phase (List.length c.puts) (List.length c.gets) c.in_episode
           c.terminated);
      let n = min c.ring_n ring_size in
      for k = 0 to n - 1 do
        let idx = (c.ring_n - n + k) mod ring_size in
        Buffer.add_string buf (Printf.sprintf "    %s\n" c.ring.(idx))
      done)
    t.cores;
  List.iteri
    (fun i v ->
      if i < 16 then
        Buffer.add_string buf
          (Printf.sprintf "  [%s@%d] %s\n" v.w_rule v.w_cycle v.w_detail))
    (violations t);
  Buffer.contents buf

let attach ?(window = 20_000) ?(max_stalled = 10) t machine =
  t.machine <- Some machine;
  Ise_sim.Machine.add_observer machine (fun ev -> observe t ev);
  let engine = Ise_sim.Machine.engine machine in
  let all_done () =
    let done_ = ref true in
    for i = 0 to Ise_sim.Machine.ncores machine - 1 do
      if not (Ise_sim.Core.is_done (Ise_sim.Machine.core machine i)) then
        done_ := false
    done;
    !done_
  in
  let progress_sig () =
    let fsb_traffic = ref 0 in
    for i = 0 to Ise_sim.Machine.ncores machine - 1 do
      let fsb = Ise_sim.Core.fsb (Ise_sim.Machine.core machine i) in
      fsb_traffic :=
        !fsb_traffic + Ise_core.Fsb.total_appended fsb
        + Ise_core.Fsb.total_drained fsb
    done;
    (Ise_sim.Machine.total_retired machine, t.events, !fsb_traffic)
  in
  let last = ref (-1, -1, -1) in
  let stalled = ref 0 in
  let rec tick () =
    if not (all_done ()) then begin
      let s = progress_sig () in
      if s = !last then begin
        incr stalled;
        if !stalled >= max_stalled then
          raise
            (Trip
               (Printf.sprintf
                  "no progress for %d cycles (livelock)\n%s"
                  (window * max_stalled) (snapshot t)))
      end
      else begin
        last := s;
        stalled := 0
      end;
      Ise_sim.Engine.schedule_in engine window tick
    end
  in
  Ise_sim.Engine.schedule_in engine window tick
