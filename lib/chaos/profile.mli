(** Chaos profiles: named, fixed bundles of fault-injection rates.

    A profile says {e what} trouble the plane injects and how hard;
    the seed says {e where} it lands.  Keeping the rates in named
    profiles (rather than free-form knobs) makes every chaos failure
    replayable from a [(profile, seed)] pair and lets the fuzz
    campaign treat the profile as one more lattice dimension.

    All percentages are in [0, 100] and are sampled per decision from
    the plane's independent per-category streams. *)

type t = {
  name : string;
  doc : string;
  fsb_entries : int option;
      (** shrink the FSB (must be a power of two) so overflow actually
          happens; [None] keeps the configuration's size *)
  fsb_overflow : Ise_sim.Config.fsb_overflow;
  put_delay_pct : int;  (** FSBC appends hit by a slow drain slot *)
  put_delay_max : int;  (** extra cycles per delayed append, 1..max *)
  backpressure_pct : int;  (** appends refused by transient port pressure *)
  backpressure_budget : int;
      (** max consecutive forced refusals — bounds the stall so retry
          always converges *)
  noc_delay_pct : int;  (** memory transactions delayed in the mesh *)
  noc_delay_max : int;
  dup_pct : int;  (** plain stores delivered twice (idempotent) *)
  deny_pct : int;  (** transactions transiently denied at the LLC edge *)
  deny_budget : int;
      (** per-address cap on transient denials; the handler's retry
          budget must exceed it so bounded retry always succeeds *)
  deny_fatal_pct : int;
      (** fraction of transient denials that carry an irrecoverable
          code instead — exercises termination; keep 0 in profiles
          used for litmus outcome checking *)
  timer_period : int option;  (** periodic timer interrupts on all cores *)
  preempt_pct : int;  (** handler GET rounds preempted by a timer irq *)
  preempt_cycles : int;
  max_apply_retries : int;  (** handler S_OS retry budget (> deny_budget) *)
  apply_backoff : int;  (** base of the handler's exponential backoff *)
  on_apply_exhausted : [ `Fail | `Terminate ];
}

val light : t
(** Mild NoC delays only — chaos plumbing with near-seed behaviour. *)

val fsb_stall : t
(** 8-entry FSB under [Fsb_stall]: overflow backpressure with early
    handler invocation, plus slow drain slots. *)

val fsb_degrade : t
(** 8-entry FSB under [Fsb_degrade]: drop-to-precise re-execution. *)

val noc : t
(** Heavy mesh delays and duplicated store deliveries. *)

val transient : t
(** Transient denials everywhere, survived by bounded retry with
    backoff. *)

val storm : t
(** Everything at once, including rare irrecoverable denials
    (graceful termination) and handler preemption.  Not
    outcome-transparent — for stress runs, not litmus checking. *)

val all : t list
val named : string -> t option
(** Lookup by {!field-name}; [None] for unknown names. *)

val outcome_transparent : t -> bool
(** Whether the profile provably preserves program results (no
    irrecoverable injections, no termination policy) — the criterion
    for using it in litmus-outcome chaos variants. *)
