open Ise_util

type t = {
  pf : Profile.t;
  rng_put : Rng.t;
  rng_bp : Rng.t;
  rng_noc : Rng.t;
  rng_dup : Rng.t;
  rng_deny : Rng.t;
  rng_fatal : Rng.t;
  rng_preempt : Rng.t;
  deny_used : (int, int) Hashtbl.t;  (* address -> denials consumed *)
  mutable bp_run : int;  (* consecutive forced backpressures *)
  mutable put_delays : int;
  mutable backpressures : int;
  mutable noc_delays : int;
  mutable noc_dups : int;
  mutable transient_denials : int;
  mutable fatal_denials : int;
  mutable handler_preemptions : int;
}

let create ~seed ~profile =
  let root = Rng.create seed in
  {
    pf = profile;
    rng_put = Rng.split root;
    rng_bp = Rng.split root;
    rng_noc = Rng.split root;
    rng_dup = Rng.split root;
    rng_deny = Rng.split root;
    rng_fatal = Rng.split root;
    rng_preempt = Rng.split root;
    deny_used = Hashtbl.create 256;
    bp_run = 0;
    put_delays = 0;
    backpressures = 0;
    noc_delays = 0;
    noc_dups = 0;
    transient_denials = 0;
    fatal_denials = 0;
    handler_preemptions = 0;
  }

let profile t = t.pf

let hit rng pct = pct > 0 && Rng.int rng 100 < pct

(* --- Memsys perturbation ------------------------------------------ *)

let pb_delay t ~core:_ ~addr:_ ~write:_ =
  if hit t.rng_noc t.pf.Profile.noc_delay_pct then begin
    t.noc_delays <- t.noc_delays + 1;
    1 + Rng.int t.rng_noc (max 1 t.pf.Profile.noc_delay_max)
  end
  else 0

let pb_deny t ~core:_ ~addr ~write:_ =
  if not (hit t.rng_deny t.pf.Profile.deny_pct) then None
  else
    let used =
      match Hashtbl.find_opt t.deny_used addr with Some n -> n | None -> 0
    in
    if used >= t.pf.Profile.deny_budget then None
    else begin
      Hashtbl.replace t.deny_used addr (used + 1);
      if hit t.rng_fatal t.pf.Profile.deny_fatal_pct then begin
        t.fatal_denials <- t.fatal_denials + 1;
        Some Ise_core.Fault.Protection_fault
      end
      else begin
        t.transient_denials <- t.transient_denials + 1;
        Some Ise_core.Fault.Page_fault
      end
    end

let pb_duplicate t ~core:_ ~addr:_ =
  if hit t.rng_dup t.pf.Profile.dup_pct then begin
    t.noc_dups <- t.noc_dups + 1;
    true
  end
  else false

let perturb t =
  {
    Ise_sim.Memsys.pb_delay = pb_delay t;
    pb_deny = pb_deny t;
    pb_duplicate = pb_duplicate t;
  }

(* --- FSBC hooks ---------------------------------------------------- *)

let ch_put_delay t () =
  if hit t.rng_put t.pf.Profile.put_delay_pct then begin
    t.put_delays <- t.put_delays + 1;
    1 + Rng.int t.rng_put (max 1 t.pf.Profile.put_delay_max)
  end
  else 0

let ch_backpressure t () =
  if
    t.bp_run < t.pf.Profile.backpressure_budget
    && hit t.rng_bp t.pf.Profile.backpressure_pct
  then begin
    t.bp_run <- t.bp_run + 1;
    t.backpressures <- t.backpressures + 1;
    true
  end
  else begin
    t.bp_run <- 0;
    false
  end

let core_hooks t =
  {
    Ise_sim.Core.ch_put_delay = ch_put_delay t;
    ch_backpressure = ch_backpressure t;
  }

(* --- Handler hook -------------------------------------------------- *)

let hc_preempt t () =
  if hit t.rng_preempt t.pf.Profile.preempt_pct then begin
    t.handler_preemptions <- t.handler_preemptions + 1;
    t.pf.Profile.preempt_cycles
  end
  else 0

let handler_chaos t = { Ise_os.Handler.hc_preempt = hc_preempt t }

let install t machine =
  Ise_sim.Memsys.set_perturb (Ise_sim.Machine.mem machine) (Some (perturb t));
  for i = 0 to Ise_sim.Machine.ncores machine - 1 do
    Ise_sim.Core.set_chaos
      (Ise_sim.Machine.core machine i)
      (Some (core_hooks t))
  done;
  match t.pf.Profile.timer_period with
  | None -> ()
  | Some period ->
    Ise_sim.Machine.enable_timer_interrupts machine ~period ~handler_cycles:60

(* --- Counters ------------------------------------------------------ *)

let counts t =
  [
    ("chaos/put_delays", t.put_delays);
    ("chaos/backpressures", t.backpressures);
    ("chaos/noc_delays", t.noc_delays);
    ("chaos/noc_dups", t.noc_dups);
    ("chaos/transient_denials", t.transient_denials);
    ("chaos/fatal_denials", t.fatal_denials);
    ("chaos/handler_preemptions", t.handler_preemptions);
  ]

let record_counts t sink =
  let r = Ise_telemetry.Sink.registry sink in
  List.iter
    (fun (name, v) ->
      Ise_telemetry.Registry.(set_counter (counter r name) v))
    (counts t)
