type error =
  | Crashed of string
  | Timed_out of float
  | Exception of string
  | Cancelled

let error_to_string = function
  | Crashed s -> "worker crashed: " ^ s
  | Timed_out s -> Printf.sprintf "timed out after %.1f s" s
  | Exception s -> "raised: " ^ s
  | Cancelled -> "cancelled (drain)"

type 'r outcome =
  | Done of 'r
  | Failed of error
  | Split of 'r outcome * 'r outcome

type stats = {
  st_jobs : int;
  st_workers : int;
  st_dispatched : int;
  st_completed : int;
  st_retried : int;
  st_timed_out : int;
  st_crashes : int;
  st_cancelled : int;
  st_bisected : int;
  st_spawned : int;
  st_wall_s : float;
}

let zero_stats =
  {
    st_jobs = 0;
    st_workers = 0;
    st_dispatched = 0;
    st_completed = 0;
    st_retried = 0;
    st_timed_out = 0;
    st_crashes = 0;
    st_cancelled = 0;
    st_bisected = 0;
    st_spawned = 0;
    st_wall_s = 0.;
  }

let fork_available = Sys.unix

let nproc () =
  try
    let ic = Unix.open_process_in "nproc 2>/dev/null" in
    let n = try int_of_string (String.trim (input_line ic)) with _ -> 1 in
    ignore (Unix.close_process_in ic);
    max 1 n
  with _ -> 1

let default_jobs () =
  if not fork_available then 1
  else
    match Domain.recommended_domain_count () with
    | n when n >= 1 -> n
    | _ -> nproc ()
    | exception _ -> nproc ()

(* ------------------------------------------------------------------ *)
(* telemetry                                                           *)

type tele = {
  reg : Ise_telemetry.Registry.t;
  trace : Ise_telemetry.Trace.t;
  c_dispatched : Ise_telemetry.Registry.counter;
  c_completed : Ise_telemetry.Registry.counter;
  c_retried : Ise_telemetry.Registry.counter;
  c_timed_out : Ise_telemetry.Registry.counter;
  c_crashes : Ise_telemetry.Registry.counter;
  c_spawned : Ise_telemetry.Registry.counter;
  t_start : float;
}

let make_tele t_start sink =
  let reg = Ise_telemetry.Sink.registry sink in
  let c = Ise_telemetry.Registry.counter reg in
  {
    reg;
    trace = Ise_telemetry.Sink.trace sink;
    c_dispatched = c "pool/dispatched";
    c_completed = c "pool/completed";
    c_retried = c "pool/retried";
    c_timed_out = c "pool/timed_out";
    c_crashes = c "pool/crashes";
    c_spawned = c "pool/workers_spawned";
    t_start;
  }

let us t = int_of_float ((Unix.gettimeofday () -. t.t_start) *. 1e6)
let job_name idx = "job" ^ string_of_int idx

let span_begin tele ~slot idx =
  Option.iter
    (fun t ->
      Ise_telemetry.Trace.span_begin t.trace ~cat:"pool" ~name:(job_name idx)
        ~tid:slot (us t))
    tele

let span_end tele ~slot idx =
  Option.iter
    (fun t ->
      Ise_telemetry.Trace.span_end t.trace ~cat:"pool" ~name:(job_name idx)
        ~tid:slot (us t))
    tele

let worker_hist tele slot =
  Option.map
    (fun t ->
      Ise_telemetry.Registry.histogram t.reg
        (Printf.sprintf "pool/worker%d/job_ms" slot))
    tele

let count c tele = Option.iter (fun t -> Ise_telemetry.Registry.incr (c t)) tele

(* ------------------------------------------------------------------ *)
(* in-process path (-j 1, and platforms without fork)                  *)

let run_inline ~telemetry ~on_result f items =
  let t0 = Unix.gettimeofday () in
  let tele = Option.map (make_tele t0) telemetry in
  Option.iter
    (fun t ->
      Ise_telemetry.Registry.add
        (Ise_telemetry.Registry.counter t.reg "pool/jobs")
        (Array.length items))
    tele;
  let hist = worker_hist tele 0 in
  let completed = ref 0 in
  let results =
    Array.mapi
      (fun idx item ->
        count (fun t -> t.c_dispatched) tele;
        span_begin tele ~slot:0 idx;
        let started = Unix.gettimeofday () in
        let out =
          match f item with
          | r -> Done r
          | exception e -> Failed (Exception (Printexc.to_string e))
        in
        incr completed;
        count (fun t -> t.c_completed) tele;
        Option.iter
          (fun h ->
            Ise_util.Stats.add h ((Unix.gettimeofday () -. started) *. 1e3))
          hist;
        span_end tele ~slot:0 idx;
        (match on_result with Some cb -> cb idx out | None -> ());
        out)
      items
  in
  ( results,
    {
      zero_stats with
      st_jobs = Array.length items;
      st_workers = 1;
      st_dispatched = Array.length items;
      st_completed = !completed;
      st_wall_s = Unix.gettimeofday () -. t0;
    } )

(* ------------------------------------------------------------------ *)
(* forked pool                                                         *)

type running = {
  r_idx : int;
  r_started : float;
  r_deadline : float option;
  mutable r_term_at : float option;  (* SIGTERM sent *)
  mutable r_killed : bool;  (* SIGKILL sent *)
  mutable r_timed_out : bool;
}

type worker = {
  w_slot : int;
  mutable w_pid : int;
  mutable w_req : Unix.file_descr;  (* parent writes jobs *)
  mutable w_resp : Unix.file_descr;  (* parent reads results *)
  mutable w_buf : string;  (* bytes read but not yet framed *)
  mutable w_job : running option;
  mutable w_alive : bool;
}

(* A persistent pool handle: configuration plus the (lazily spawned)
   worker set.  Workers survive across [run] calls — fork cost is paid
   once per worker, not once per batch, which is what lets campaign
   fan-out and the serve daemon amortize process startup. *)
type ('a, 'r) t = {
  p_jobs : int;
  p_job_timeout : float option;
  p_kill_grace : float;
  p_max_retries : int;
  p_retry_backoff : float;
  p_telemetry : Ise_telemetry.Sink.t option;
  p_journal_dir : string option;
  p_f : 'a -> 'r;
  p_workers : worker array;  (* length p_jobs; spawned on demand *)
  mutable p_spawned : int;  (* total forks over the handle's lifetime *)
  mutable p_closed : bool;
}

(* Child side: one frame in, one frame out, forever.  The job function
   runs here; an exception it raises is a *result* (deterministic, so
   the supervisor must not retry it), while a crash of the process is
   detected by the supervisor as EOF.  SIGINT is ignored so a
   terminal's Ctrl-C (delivered to the whole foreground process group)
   leaves the drain decision to the supervisor.  Between batches a
   persistent worker simply blocks in [read_frame]. *)
let worker_loop req resp f =
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  let rec loop () =
    match Codec.read_frame req with
    | Error `Eof -> Unix._exit 0
    | Error (`Corrupt _) -> Unix._exit 102
    | Ok payload ->
      let idx, job = Codec.unmarshal payload in
      (* no-ops unless the supervisor enabled a journal for this child *)
      Ise_obs.Recorder.note "pool/job"
        ~args:[ ("idx", Ise_telemetry.Json.Int idx) ];
      let res =
        match f job with
        | r -> Ok r
        | exception e -> Error (Printexc.to_string e)
      in
      Ise_obs.Recorder.note "pool/job-end"
        ~args:[ ("idx", Ise_telemetry.Json.Int idx) ];
      (try Codec.write_frame resp (Codec.marshal (idx, res))
       with _ -> Unix._exit 103);
      loop ()
  in
  loop ()

(* Crash journals: with [journal_dir], every forked worker enables the
   process-global flight recorder with a per-(slot, pid) spill file in
   that directory; each journal line is flushed as it is written, so
   when a worker dies (crash, timeout SIGKILL) the supervisor finds a
   decodable journal tail on disk and names it in the error.  Journals
   of workers that shut down cleanly are removed. *)
let journal_file dir ~slot ~pid =
  Filename.concat dir (Printf.sprintf "worker%d-%d.jnl" slot pid)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let status_string = function
  | Unix.WEXITED n -> Printf.sprintf "exited with code %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

let spawn_worker p tele w =
  (* flush so forked children don't re-flush inherited buffers *)
  flush stdout;
  flush stderr;
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close req_w;
    Unix.close resp_r;
    (match p.p_journal_dir with
     | None -> ()
     | Some dir -> (
       try
         ignore
           (Ise_obs.Recorder.enable ~capacity:1024
              ~spill:(journal_file dir ~slot:w.w_slot ~pid:(Unix.getpid ()))
              ~meta:
                (Ise_obs.Runinfo.stamp_meta ()
                @ [ ("kind", "pool-worker");
                    ("slot", string_of_int w.w_slot) ])
              ())
       with Sys_error _ -> ()));
    (* drop the parent ends of every other live worker's pipes, so a
       crashed sibling's EOF is seen by the supervisor alone *)
    Array.iter
      (fun w' ->
        if w'.w_alive then begin
          (try Unix.close w'.w_req with Unix.Unix_error _ -> ());
          try Unix.close w'.w_resp with Unix.Unix_error _ -> ()
        end)
      p.p_workers;
    (try worker_loop req_r resp_w p.p_f with _ -> ());
    Unix._exit 104
  | pid ->
    Unix.close req_r;
    Unix.close resp_w;
    w.w_pid <- pid;
    w.w_req <- req_w;
    w.w_resp <- resp_r;
    w.w_buf <- "";
    w.w_job <- None;
    w.w_alive <- true;
    p.p_spawned <- p.p_spawned + 1;
    count (fun t -> t.c_spawned) tele

let shutdown_worker p w =
  (* orderly shutdown: EOF on the job pipe makes the worker exit 0 — a
     cleanly-exited worker's crash journal carries no information *)
  if w.w_alive then begin
    (try Unix.close w.w_req with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ());
    (try Unix.close w.w_resp with Unix.Unix_error _ -> ());
    (match p.p_journal_dir with
     | Some dir -> (
       try Sys.remove (journal_file dir ~slot:w.w_slot ~pid:w.w_pid)
       with Sys_error _ -> ())
     | None -> ());
    w.w_alive <- false
  end

let kill_worker w =
  if w.w_alive then begin
    (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ());
    (try Unix.close w.w_req with Unix.Unix_error _ -> ());
    (try Unix.close w.w_resp with Unix.Unix_error _ -> ());
    w.w_alive <- false
  end

(* One batch over the (persistent) worker set.  [persist] keeps the
   workers alive on normal return; an exception still tears them down. *)
let run_forked ~persist ~telemetry ~on_result ~bisect p items =
  let n = Array.length items in
  let t0 = Unix.gettimeofday () in
  let tele = Option.map (make_tele t0) telemetry in
  Option.iter
    (fun t ->
      Ise_telemetry.Registry.add
        (Ise_telemetry.Registry.counter t.reg "pool/jobs")
        n)
    tele;
  let spawned0 = p.p_spawned in
  (* use at most [n] workers this batch; extra persistent workers (from
     an earlier, larger batch) stay parked with no job *)
  let nw = min p.p_jobs n in
  let workers = Array.sub p.p_workers 0 nw in
  let hists = Array.init nw (fun slot -> worker_hist tele slot) in
  let job_timeout = p.p_job_timeout in
  let kill_grace = p.p_kill_grace in
  let max_retries = p.p_max_retries in
  let retry_backoff = p.p_retry_backoff in
  let dispatched = ref 0
  and completed = ref 0
  and retried = ref 0
  and timed_out = ref 0
  and crashes = ref 0
  and cancelled = ref 0
  and bisected = ref 0 in
  let results = Array.make n None in
  (* indices >= n are bisection halves of a timed-out job *)
  let extra = Hashtbl.create 8 in
  let next_extra = ref n in
  let children = Hashtbl.create 8 in (* parent -> (left, right) *)
  let parent_of = Hashtbl.create 8 in
  let child_out = Hashtbl.create 8 in
  let item_of idx = if idx < n then items.(idx) else Hashtbl.find extra idx in
  let attempts = Hashtbl.create (2 * n) in
  let get_attempts idx =
    Option.value ~default:0 (Hashtbl.find_opt attempts idx)
  in
  let bump_attempts idx = Hashtbl.replace attempts idx (get_attempts idx + 1) in
  let pending = Queue.create () in
  for i = 0 to n - 1 do
    Queue.add i pending
  done;
  let retries = ref [] in
  (* (eligible_time, idx), ascending *)
  let sigints = ref 0 in
  let interrupted () = !sigints > 0 in
  let drained = ref false in
  let filled = ref 0 in
  let emit = ref 0 in
  let complete idx out =
    if Option.is_none results.(idx) then begin
      results.(idx) <- Some out;
      incr filled;
      (match out with Failed Cancelled -> incr cancelled | _ -> ());
      match on_result with
      | None -> ()
      | Some cb ->
        while !emit < n && Option.is_some results.(!emit) do
          (match results.(!emit) with Some o -> cb !emit o | None -> ());
          incr emit
        done
    end
  in
  (* A half's outcome parks until its sibling lands, then the parent
     completes as [Split]; base indices complete directly. *)
  let complete_any idx out =
    match Hashtbl.find_opt parent_of idx with
    | None -> complete idx out
    | Some parent -> (
      Hashtbl.replace child_out idx out;
      match Hashtbl.find_opt children parent with
      | Some (li, ri) -> (
        match (Hashtbl.find_opt child_out li, Hashtbl.find_opt child_out ri)
        with
        | Some lo, Some ro -> complete parent (Split (lo, ro))
        | _ -> ())
      | None -> ())
  in
  (* Timeout-then-bisect: a timed-out job is split once — each half is
     a fresh job with its own timeout and retry budget, pinning the
     slow or wedged item to one half.  Halves are never re-split. *)
  let try_bisect idx =
    match bisect with
    | Some bs
      when (not (interrupted ()))
           && (not (Hashtbl.mem parent_of idx))
           && not (Hashtbl.mem children idx) -> (
      match bs (item_of idx) with
      | Some (a, b) ->
        let li = !next_extra in
        incr next_extra;
        let ri = !next_extra in
        incr next_extra;
        Hashtbl.replace extra li a;
        Hashtbl.replace extra ri b;
        Hashtbl.replace children idx (li, ri);
        Hashtbl.replace parent_of li idx;
        Hashtbl.replace parent_of ri idx;
        incr bisected;
        Queue.add li pending;
        Queue.add ri pending;
        true
      | None -> false)
    | _ -> false
  in
  let spawn w = spawn_worker p tele w in
  let work_queued () = (not (Queue.is_empty pending)) || !retries <> [] in
  let schedule_retry now idx =
    incr retried;
    count (fun t -> t.c_retried) tele;
    let delay = retry_backoff *. (2. ** float_of_int (get_attempts idx - 1)) in
    retries :=
      List.merge
        (fun (a, _) (b, _) -> compare a b)
        !retries
        [ (now +. delay, idx) ]
  in
  let handle_death w ~now reason =
    let journal =
      match p.p_journal_dir with
      | Some dir when Sys.file_exists (journal_file dir ~slot:w.w_slot ~pid:w.w_pid)
        -> Some (journal_file dir ~slot:w.w_slot ~pid:w.w_pid)
      | _ -> None
    in
    let status =
      match Unix.waitpid [] w.w_pid with
      | _, st -> status_string st
      | exception Unix.Unix_error _ -> "unreaped"
    in
    (try Unix.close w.w_req with Unix.Unix_error _ -> ());
    (try Unix.close w.w_resp with Unix.Unix_error _ -> ());
    w.w_alive <- false;
    w.w_buf <- "";
    (match w.w_job with
     | None -> ()
     | Some r ->
       w.w_job <- None;
       span_end tele ~slot:w.w_slot r.r_idx;
       if r.r_timed_out then begin
         incr timed_out;
         count (fun t -> t.c_timed_out) tele;
         if not (try_bisect r.r_idx) then
           if (not (interrupted ())) && get_attempts r.r_idx <= max_retries
           then schedule_retry now r.r_idx
           else complete_any r.r_idx (Failed (Timed_out (now -. r.r_started)))
       end
       else begin
         incr crashes;
         count (fun t -> t.c_crashes) tele;
         if (not (interrupted ())) && get_attempts r.r_idx <= max_retries then
           schedule_retry now r.r_idx
         else
           complete_any r.r_idx
             (Failed
                (Crashed
                   (Printf.sprintf "%s (%s)%s" reason status
                      (match journal with
                       | Some path -> "; journal: " ^ path
                       | None -> ""))))
       end);
    if (not (interrupted ())) && work_queued () then spawn w
  in
  let next_job now =
    if interrupted () then None
    else
      match !retries with
      | (t, idx) :: rest when t <= now ->
        retries := rest;
        Some idx
      | _ -> Queue.take_opt pending
  in
  let dispatch w ~now idx =
    bump_attempts idx;
    w.w_job <-
      Some
        {
          r_idx = idx;
          r_started = now;
          r_deadline = Option.map (fun t -> now +. t) job_timeout;
          r_term_at = None;
          r_killed = false;
          r_timed_out = false;
        };
    incr dispatched;
    count (fun t -> t.c_dispatched) tele;
    span_begin tele ~slot:w.w_slot idx;
    try Codec.write_frame w.w_req (Codec.marshal (idx, item_of idx))
    with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
      handle_death w ~now "dispatch write failed"
  in
  let handle_result w ~now payload =
    let idx, res = Codec.unmarshal payload in
    (match w.w_job with
     | Some r when r.r_idx = idx ->
       w.w_job <- None;
       Option.iter
         (fun h -> Ise_util.Stats.add h ((now -. r.r_started) *. 1e3))
         hists.(w.w_slot);
       span_end tele ~slot:w.w_slot idx
     | _ -> ());
    incr completed;
    count (fun t -> t.c_completed) tele;
    complete_any idx
      (match res with Ok r -> Done r | Error e -> Failed (Exception e))
  in
  let handle_readable w ~now =
    let chunk = Bytes.create 65536 in
    match Unix.read w.w_resp chunk 0 65536 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | 0 -> handle_death w ~now "EOF on result pipe"
    | k -> (
      let data = w.w_buf ^ Bytes.sub_string chunk 0 k in
      let total = String.length data in
      let bytes = Bytes.unsafe_of_string data in
      let pos = ref 0 in
      let corrupt = ref None in
      let parsing = ref true in
      while !parsing do
        match Codec.decode bytes ~pos:!pos ~len:(total - !pos) with
        | Codec.Frame { payload = frame; consumed = used; _ } ->
          handle_result w ~now frame;
          pos := !pos + used
        | Codec.Need_more -> parsing := false
        | Codec.Corrupt e ->
          corrupt := Some e;
          parsing := false
      done;
      match !corrupt with
      | Some e ->
        (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
        handle_death w ~now ("corrupt result frame: " ^ Codec.error_to_string e)
      | None -> w.w_buf <- String.sub data !pos (total - !pos))
  in
  let check_timeouts now =
    Array.iter
      (fun w ->
        if w.w_alive then
          match w.w_job with
          | Some ({ r_deadline = Some d; _ } as r) when now >= d ->
            if r.r_term_at = None then begin
              r.r_timed_out <- true;
              (try Unix.kill w.w_pid Sys.sigterm with Unix.Unix_error _ -> ());
              r.r_term_at <- Some now
            end
            else if
              (not r.r_killed)
              && now >= Option.get r.r_term_at +. kill_grace
            then begin
              (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
              r.r_killed <- true
            end
          | _ -> ())
      workers
  in
  let select_timeout now =
    let t = ref 0.25 in
    let upd x = if x < !t then t := max 0.005 x in
    Array.iter
      (fun w ->
        if w.w_alive then
          match w.w_job with
          | Some { r_deadline = Some d; r_term_at = None; _ } -> upd (d -. now)
          | Some { r_term_at = Some ta; r_killed = false; _ } ->
            upd (ta +. kill_grace -. now)
          | _ -> ())
      workers;
    (match !retries with (t', _) :: _ -> upd (t' -. now) | [] -> ());
    !t
  in
  let prev_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> incr sigints))
  in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore_signals () =
    Sys.set_signal Sys.sigint prev_int;
    Sys.set_signal Sys.sigpipe prev_pipe
  in
  let batch () =
    Array.iter (fun w -> if not w.w_alive then spawn w) workers;
    while !filled < n do
      let now = Unix.gettimeofday () in
      if interrupted () && not !drained then begin
        (* graceful drain: nothing new is dispatched, queued jobs are
           reported Cancelled, in-flight jobs are awaited below *)
        drained := true;
        let rec flush_pending () =
          match Queue.take_opt pending with
          | Some idx ->
            complete_any idx (Failed Cancelled);
            flush_pending ()
          | None -> ()
        in
        flush_pending ();
        List.iter (fun (_, idx) -> complete_any idx (Failed Cancelled)) !retries;
        retries := []
      end;
      if !sigints >= 2 then
        (* impatient drain: a second SIGINT abandons in-flight jobs *)
        Array.iter
          (fun w ->
            if w.w_alive && Option.is_some w.w_job then
              try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ())
          workers;
      check_timeouts now;
      Array.iter
        (fun w ->
          if w.w_alive && Option.is_none w.w_job then
            match next_job now with Some idx -> dispatch w ~now idx | None -> ())
        workers;
      if !filled < n then begin
        if
          (not (interrupted ()))
          && work_queued ()
          && not (Array.exists (fun w -> w.w_alive) workers)
        then spawn workers.(0);
        let fds =
          Array.fold_left
            (fun acc w -> if w.w_alive then w.w_resp :: acc else acc)
            [] workers
        in
        if fds = [] then Unix.sleepf 0.005
        else
          match Unix.select fds [] [] (select_timeout now) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | ready, _, _ ->
            let now = Unix.gettimeofday () in
            List.iter
              (fun fd ->
                match
                  Array.find_opt
                    (fun w -> w.w_alive && w.w_resp = fd)
                    workers
                with
                | Some w -> handle_readable w ~now
                | None -> ())
              ready
      end
    done;
    (* after SIGINT the workers have been drained; keeping them would
       leak a pool the caller is about to abandon *)
    if (not persist) || interrupted () then
      Array.iter (shutdown_worker p) workers
  in
  (match batch () with
   | () -> restore_signals ()
   | exception e ->
     Array.iter kill_worker p.p_workers;
     restore_signals ();
     raise e);
  ( Array.map (function Some o -> o | None -> Failed Cancelled) results,
    {
      st_jobs = n;
      st_workers = nw;
      st_dispatched = !dispatched;
      st_completed = !completed;
      st_retried = !retried;
      st_timed_out = !timed_out;
      st_crashes = !crashes;
      st_cancelled = !cancelled;
      st_bisected = !bisected;
      st_spawned = p.p_spawned - spawned0;
      st_wall_s = Unix.gettimeofday () -. t0;
    } )

(* ------------------------------------------------------------------ *)
(* persistent handles                                                  *)

let create ?jobs ?job_timeout ?(kill_grace = 0.5) ?(max_retries = 2)
    ?(retry_backoff = 0.05) ?telemetry ?journal_dir f =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  Option.iter mkdir_p journal_dir;
  {
    p_jobs = jobs;
    p_job_timeout = job_timeout;
    p_kill_grace = kill_grace;
    p_max_retries = max_retries;
    p_retry_backoff = retry_backoff;
    p_telemetry = telemetry;
    p_journal_dir = journal_dir;
    p_f = f;
    p_workers =
      Array.init jobs (fun slot ->
          {
            w_slot = slot;
            w_pid = -1;
            w_req = Unix.stdin;
            w_resp = Unix.stdin;
            w_buf = "";
            w_job = None;
            w_alive = false;
          });
    p_spawned = 0;
    p_closed = false;
  }

let close p =
  if not p.p_closed then begin
    Array.iter (shutdown_worker p) p.p_workers;
    p.p_closed <- true
  end

let prespawn p =
  if p.p_closed then invalid_arg "Pool.prespawn: closed pool";
  if p.p_jobs > 1 && fork_available then begin
    let tele = Option.map (make_tele (Unix.gettimeofday ())) p.p_telemetry in
    Array.iter
      (fun w -> if not w.w_alive then spawn_worker p tele w)
      p.p_workers
  end

let alive_workers p =
  Array.fold_left (fun acc w -> if w.w_alive then acc + 1 else acc) 0 p.p_workers

let run ?telemetry ?on_result ?bisect p items =
  if p.p_closed then invalid_arg "Pool.run: closed pool";
  let telemetry =
    match telemetry with Some _ as t -> t | None -> p.p_telemetry
  in
  if Array.length items = 0 then ([||], zero_stats)
  else if p.p_jobs <= 1 || not fork_available then
    run_inline ~telemetry ~on_result p.p_f items
  else run_forked ~persist:true ~telemetry ~on_result ~bisect p items

let with_pool ?jobs ?job_timeout ?kill_grace ?max_retries ?retry_backoff
    ?telemetry ?journal_dir f k =
  let p =
    create ?jobs ?job_timeout ?kill_grace ?max_retries ?retry_backoff
      ?telemetry ?journal_dir f
  in
  Fun.protect ~finally:(fun () -> close p) (fun () -> k p)

(* ------------------------------------------------------------------ *)
(* one-shot batches                                                    *)

let map ?jobs ?job_timeout ?kill_grace ?max_retries ?retry_backoff ?telemetry
    ?on_result ?bisect ?journal_dir f items =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  if Array.length items = 0 then ([||], zero_stats)
  else if jobs <= 1 || not fork_available then
    run_inline ~telemetry ~on_result f items
  else begin
    let p =
      create ~jobs ?job_timeout ?kill_grace ?max_retries ?retry_backoff
        ?telemetry ?journal_dir f
    in
    Fun.protect
      ~finally:(fun () -> close p)
      (fun () -> run_forked ~persist:false ~telemetry ~on_result ~bisect p items)
  end
