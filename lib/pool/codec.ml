let magic = "ISEP"
let version = 2
let min_version = 1
let header_bytes = 10
let header_bytes_v1 = 9
let default_max_payload = 64 * 1024 * 1024

type error =
  | Bad_magic
  | Unsupported_version of int
  | Oversized of int
  | Truncated

let error_to_string = function
  | Bad_magic -> "bad magic bytes (stream desynchronised?)"
  | Unsupported_version v ->
    Printf.sprintf
      "unsupported frame version %d (from a newer writer? this reader \
       handles %d..%d)"
      v min_version version
  | Oversized n -> Printf.sprintf "claimed payload of %d bytes exceeds the cap" n
  | Truncated -> "stream ended inside a frame"

(* v1 layout: magic(4) version(1) len(4); no protocol byte — decoded
   with proto = 0.  v2 layout: magic(4) version(1) proto(1) len(4).
   The version byte alone selects the layout, so a v1 reader facing a
   v2 frame rejects it at the version byte instead of mis-parsing the
   protocol byte as part of the length. *)

let encode ?(proto = 0) ?(version = version) payload =
  if proto < 0 || proto > 0xff then invalid_arg "Codec.encode: bad proto";
  let n = String.length payload in
  let put_len b off =
    Bytes.set b off (Char.chr ((n lsr 24) land 0xff));
    Bytes.set b (off + 1) (Char.chr ((n lsr 16) land 0xff));
    Bytes.set b (off + 2) (Char.chr ((n lsr 8) land 0xff));
    Bytes.set b (off + 3) (Char.chr (n land 0xff))
  in
  match version with
  | 1 ->
    if proto <> 0 then
      invalid_arg "Codec.encode: v1 frames cannot carry a protocol version";
    let b = Bytes.create (header_bytes_v1 + n) in
    Bytes.blit_string magic 0 b 0 4;
    Bytes.set b 4 '\001';
    put_len b 5;
    Bytes.blit_string payload 0 b header_bytes_v1 n;
    Bytes.unsafe_to_string b
  | 2 ->
    let b = Bytes.create (header_bytes + n) in
    Bytes.blit_string magic 0 b 0 4;
    Bytes.set b 4 '\002';
    Bytes.set b 5 (Char.chr proto);
    put_len b 6;
    Bytes.blit_string payload 0 b header_bytes n;
    Bytes.unsafe_to_string b
  | v -> invalid_arg (Printf.sprintf "Codec.encode: cannot write version %d" v)

type decoded =
  | Frame of { payload : string; proto : int; consumed : int }
  | Need_more
  | Corrupt of error

(* Validate as much of the header as is present, so corruption is
   reported from the first bad byte rather than after buffering a
   bogus multi-megabyte "payload". *)
let decode ?(max_payload = default_max_payload) buf ~pos ~len =
  let magic_len = min len 4 in
  let rec magic_ok i =
    i >= magic_len || (Bytes.get buf (pos + i) = magic.[i] && magic_ok (i + 1))
  in
  if not (magic_ok 0) then Corrupt Bad_magic
  else if len < 5 then Need_more
  else
    let byte i = Char.code (Bytes.get buf (pos + i)) in
    let v = byte 4 in
    if v < min_version || v > version then Corrupt (Unsupported_version v)
    else
      let hdr, proto_of = if v = 1 then (header_bytes_v1, fun () -> 0)
        else (header_bytes, fun () -> byte 5)
      in
      if len < hdr then Need_more
      else
        let l0 = hdr - 4 in
        let n =
          (byte l0 lsl 24) lor (byte (l0 + 1) lsl 16) lor (byte (l0 + 2) lsl 8)
          lor byte (l0 + 3)
        in
        if n > max_payload then Corrupt (Oversized n)
        else if len < hdr + n then Need_more
        else
          Frame
            { payload = Bytes.sub_string buf (pos + hdr) n;
              proto = proto_of ();
              consumed = hdr + n }

let write_frame ?proto fd payload =
  let msg = encode ?proto payload in
  let n = String.length msg in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write_substring fd msg !off (n - !off) in
    off := !off + w
  done

let read_exactly fd buf ~pos n =
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    match Unix.read fd buf (pos + !off) (n - !off) with
    | 0 -> eof := true
    | k -> off := !off + k
  done;
  !off

let read_frame_ext ?(max_payload = default_max_payload) fd =
  (* up to the version byte the two layouts agree; the version byte
     then says how much more header to fetch *)
  let hdr = Bytes.create header_bytes in
  match read_exactly fd hdr ~pos:0 5 with
  | 0 -> Error `Eof
  | k when k < 5 -> Error (`Corrupt Truncated)
  | _ ->
    let v = Char.code (Bytes.get hdr 4) in
    let full =
      if v >= min_version && v <= version then
        if v = 1 then header_bytes_v1 else header_bytes
      else 5 (* rejected below by decode on the prefix *)
    in
    if read_exactly fd hdr ~pos:5 (full - 5) < full - 5 then
      Error (`Corrupt Truncated)
    else (
      match decode ~max_payload hdr ~pos:0 ~len:full with
      | Corrupt e -> Error (`Corrupt e)
      | Frame { payload; proto; _ } ->
        Ok (proto, payload) (* only possible for empty payloads *)
      | Need_more ->
        let byte i = Char.code (Bytes.get hdr i) in
        let l0 = full - 4 in
        let n =
          (byte l0 lsl 24) lor (byte (l0 + 1) lsl 16) lor (byte (l0 + 2) lsl 8)
          lor byte (l0 + 3)
        in
        let payload = Bytes.create n in
        if read_exactly fd payload ~pos:0 n < n then Error (`Corrupt Truncated)
        else Ok ((if v = 1 then 0 else byte 5), Bytes.unsafe_to_string payload))

let read_frame ?max_payload fd =
  match read_frame_ext ?max_payload fd with
  | Ok (_proto, payload) -> Ok payload
  | Error _ as e -> e

let marshal v = Marshal.to_string v []
let unmarshal s = Marshal.from_string s 0

(* ------------------------------------------------------------------ *)
(* crash-safe unmarshal for untrusted payloads                         *)

(* [Marshal.from_string] trusts its input: a corrupted stream can make
   the runtime's intern loop overread the buffer, overflow the shared-
   object table, or build a type-confused value — all of which segfault
   rather than raise.  [valid_marshal] walks the compact extern format
   (see caml/intext.h) with every read bounds-checked and cross-checks
   the three header invariants intern relies on: the byte length of the
   data segment, the number of shared-table registrations, and the
   total 64-bit word size of the decoded heap graph.  A stream that
   passes cannot make intern read outside the buffer, index outside the
   object table, or allocate more than the header promised.  Type
   confusion within a structurally valid stream is still possible —
   integrity needs a checksum envelope on top (the fabric wire seals v2
   payloads) — but decode becomes total: corrupt bytes yield [None],
   never a crash.

   Opcodes never produced for this codec's payloads (closures, custom
   blocks, 64-bit length forms) are rejected outright. *)

let valid_marshal s =
  let len = String.length s in
  let byte i = Char.code (String.unsafe_get s i) in
  let u32 i = (byte i lsl 24) lor (byte (i + 1) lsl 16)
              lor (byte (i + 2) lsl 8) lor byte (i + 3) in
  if len < 20 || u32 0 <> 0x8495A6BE then false
  else begin
    let data_len = u32 4 and num_objects = u32 8 and words64 = u32 16 in
    if 20 + data_len <> len then false
    else begin
      let limit = len in
      let pos = ref 20 and needed = ref 1 and objs = ref 0 and words = ref 0 in
      let ok = ref true in
      let take n = (* consume n raw bytes, return offset or fail *)
        let p = !pos in
        if n < 0 || p + n > limit then (ok := false; p) else (pos := p + n; p)
      in
      let string_words n = (n / 8) + 2 in      (* data words + header, 64-bit *)
      let register () = incr objs in
      let block size =
        if size > 0 then begin register (); words := !words + size + 1 end;
        needed := !needed + size
      in
      while !ok && !needed > 0 do
        if !pos >= limit then ok := false
        else begin
          let c = byte !pos in
          incr pos;
          decr needed;
          if c >= 0x80 then block ((c lsr 4) land 0x7)          (* small block *)
          else if c >= 0x40 then ()                             (* small int *)
          else if c >= 0x20 then begin                          (* small string *)
            let n = c land 0x1F in
            ignore (take n);
            if !ok then begin register (); words := !words + string_words n end
          end
          else
            match c with
            | 0x0 -> ignore (take 1)                            (* INT8 *)
            | 0x1 -> ignore (take 2)                            (* INT16 *)
            | 0x2 -> ignore (take 4)                            (* INT32 *)
            | 0x3 -> ignore (take 8)                            (* INT64 *)
            | 0x4 | 0x5 | 0x6 ->                                (* SHAREDn *)
              let n = match c with 0x4 -> 1 | 0x5 -> 2 | _ -> 4 in
              let p = take n in
              if !ok then begin
                let d = ref 0 in
                for k = 0 to n - 1 do d := (!d lsl 8) lor byte (p + k) done;
                if !d < 1 || !d > !objs then ok := false
              end
            | 0x8 ->                                            (* BLOCK32 *)
              let p = take 4 in
              if !ok then begin
                let hd = u32 p in
                let size = hd lsr 10 in
                if size = 0 then ok := false else block size
              end
            | 0x9 | 0xA ->                                      (* STRING8/32 *)
              let p = take (if c = 0x9 then 1 else 4) in
              if !ok then begin
                let n = if c = 0x9 then byte p else u32 p in
                ignore (take n);
                if !ok then begin register (); words := !words + string_words n end
              end
            | 0xB | 0xC ->                                      (* DOUBLE *)
              ignore (take 8);
              if !ok then begin register (); words := !words + 2 end
            | 0xD | 0xE | 0x7 | 0xF ->                          (* DOUBLE_ARRAYn *)
              let p = take (if c = 0xD || c = 0xE then 1 else 4) in
              if !ok then begin
                let n = if c = 0xD || c = 0xE then byte p else u32 p in
                ignore (take (8 * n));
                if !ok then begin register (); words := !words + n + 1 end
              end
            | _ -> ok := false    (* closures, custom blocks, 64-bit forms *)
        end
      done;
      !ok && !pos = limit && !objs = num_objects && !words = words64
    end
  end

let unmarshal_opt s =
  if not (valid_marshal s) then None
  else match unmarshal s with v -> Some v | exception _ -> None
