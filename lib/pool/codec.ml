let magic = "ISEP"
let version = 1
let header_bytes = 9
let default_max_payload = 64 * 1024 * 1024

type error =
  | Bad_magic
  | Bad_version of int
  | Oversized of int
  | Truncated

let error_to_string = function
  | Bad_magic -> "bad magic bytes (stream desynchronised?)"
  | Bad_version v -> Printf.sprintf "unknown frame version %d" v
  | Oversized n -> Printf.sprintf "claimed payload of %d bytes exceeds the cap" n
  | Truncated -> "stream ended inside a frame"

let encode payload =
  let n = String.length payload in
  let b = Bytes.create (header_bytes + n) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr version);
  Bytes.set b 5 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 6 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 7 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 8 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b header_bytes n;
  Bytes.unsafe_to_string b

type decoded =
  | Frame of string * int
  | Need_more
  | Corrupt of error

(* Validate as much of the header as is present, so corruption is
   reported from the first bad byte rather than after buffering a
   bogus multi-megabyte "payload". *)
let decode ?(max_payload = default_max_payload) buf ~pos ~len =
  let magic_len = min len 4 in
  let rec magic_ok i =
    i >= magic_len || (Bytes.get buf (pos + i) = magic.[i] && magic_ok (i + 1))
  in
  if not (magic_ok 0) then Corrupt Bad_magic
  else if len < 5 then Need_more
  else
    let v = Char.code (Bytes.get buf (pos + 4)) in
    if v <> version then Corrupt (Bad_version v)
    else if len < header_bytes then Need_more
    else
      let byte i = Char.code (Bytes.get buf (pos + i)) in
      let n = (byte 5 lsl 24) lor (byte 6 lsl 16) lor (byte 7 lsl 8) lor byte 8 in
      if n > max_payload then Corrupt (Oversized n)
      else if len < header_bytes + n then Need_more
      else Frame (Bytes.sub_string buf (pos + header_bytes) n, header_bytes + n)

let write_frame fd payload =
  let msg = encode payload in
  let n = String.length msg in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write_substring fd msg !off (n - !off) in
    off := !off + w
  done

let read_exactly fd buf n =
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    match Unix.read fd buf !off (n - !off) with
    | 0 -> eof := true
    | k -> off := !off + k
  done;
  !off

let read_frame ?(max_payload = default_max_payload) fd =
  let hdr = Bytes.create header_bytes in
  match read_exactly fd hdr header_bytes with
  | 0 -> Error `Eof
  | k when k < header_bytes -> Error (`Corrupt Truncated)
  | _ -> (
    match decode ~max_payload hdr ~pos:0 ~len:header_bytes with
    | Corrupt e -> Error (`Corrupt e)
    | Frame (p, _) -> Ok p (* only possible for empty payloads *)
    | Need_more ->
      let byte i = Char.code (Bytes.get hdr i) in
      let n = (byte 5 lsl 24) lor (byte 6 lsl 16) lor (byte 7 lsl 8) lor byte 8 in
      let payload = Bytes.create n in
      if read_exactly fd payload n < n then Error (`Corrupt Truncated)
      else Ok (Bytes.unsafe_to_string payload))

let marshal v = Marshal.to_string v []
let unmarshal s = Marshal.from_string s 0
