(** Fork-based parallel execution engine.

    [map f items] runs [f] over [items] on a pool of worker processes
    ([Unix.fork] + pipe IPC, {!Codec} frames) and returns the outcomes
    {e in input order} — parallelism is an implementation detail, never
    a source of nondeterminism:

    - results are delivered to [on_result] strictly in index order
      (index [k] is reported only once [0..k-1] have been), so streamed
      output is byte-identical whatever the worker count or scheduling;
    - [jobs <= 1] bypasses forking entirely and runs [f] in-process, so
      single-process debugging (breakpoints, printf, backtraces) sees
      exactly the production code path minus the IPC.

    Robustness is built in, because a 500-shard campaign must not die
    at shard 347:

    - {b per-job timeout}: a worker exceeding [job_timeout] gets
      SIGTERM, then SIGKILL after [kill_grace] seconds;
    - {b timeout-then-bisect}: with [bisect], a timed-out job is split
      {e once} into two halves, each dispatched as a fresh job with its
      own timeout and retry budget — a batch with one pathological item
      loses half a batch, not the whole batch, and the offender is
      pinned to one half; the original index reports [Split];
    - {b crash detection and bounded retry}: a worker that dies
      mid-job (signal, [exit], OOM kill) is reaped and respawned, and
      the job is retried up to [max_retries] times with exponential
      backoff;
    - {b failure isolation}: a job that exhausts its retries — or
      whose [f] raises, which is deterministic and not retried — is
      reported as a [Failed] outcome; the rest of the batch completes;
    - {b graceful drain on SIGINT}: no new jobs are dispatched,
      in-flight jobs finish (still subject to their timeouts), queued
      jobs come back as [Failed Cancelled], and the partial outcome
      array is returned normally.

    Jobs and results cross the pipes via [Marshal], which is safe
    because workers are forks of the supervisor (same code image) —
    but it means ['a] and ['r] must not contain closures or custom
    blocks.  [f] itself never crosses a pipe: each worker inherits it
    at fork time.

    {b Persistent pools}: {!create} returns a handle whose workers
    survive across {!run} calls — each worker is forked once (lazily,
    at its first batch) and then blocks between batches waiting for
    the next job frame.  A server or campaign issuing many batches
    pays the fork cost once per worker instead of once per batch.
    {!map} is the one-shot composition [create → run → close]. *)

(** {1 Outcomes} *)

type error =
  | Crashed of string  (** worker died mid-job (description of how) *)
  | Timed_out of float  (** seconds the job had run when killed *)
  | Exception of string  (** [f] raised (deterministic; not retried) *)
  | Cancelled  (** never dispatched: SIGINT drain *)

val error_to_string : error -> string

type 'r outcome =
  | Done of 'r
  | Failed of error
  | Split of 'r outcome * 'r outcome
      (** the job timed out and was bisected: outcomes of the two
          halves, in input order (only with [map]'s [bisect]) *)

type stats = {
  st_jobs : int;  (** input size *)
  st_workers : int;  (** pool size actually used *)
  st_dispatched : int;  (** dispatches, including retries *)
  st_completed : int;  (** jobs that returned a result *)
  st_retried : int;
  st_timed_out : int;
  st_crashes : int;
  st_cancelled : int;
  st_bisected : int;  (** timed-out jobs split into two halves *)
  st_spawned : int;  (** workers forked during this batch (0 when the
                         pool's persistent workers were all alive) *)
  st_wall_s : float;
}

val zero_stats : stats

(** {1 Sizing} *)

val fork_available : bool
(** False on platforms without [Unix.fork] (Windows); [map] then always
    uses the in-process path. *)

val default_jobs : unit -> int
(** Detected core count ([Domain.recommended_domain_count], falling
    back to the [nproc] utility, falling back to 1). *)

(** {1 Persistent pools} *)

type ('a, 'r) t
(** A persistent pool of workers for jobs of type ['a] producing
    results of type ['r].  Workers are forked lazily at the first
    {!run} and kept alive between batches. *)

val create :
  ?jobs:int ->
  ?job_timeout:float ->
  ?kill_grace:float ->
  ?max_retries:int ->
  ?retry_backoff:float ->
  ?telemetry:Ise_telemetry.Sink.t ->
  ?journal_dir:string ->
  ('a -> 'r) ->
  ('a, 'r) t
(** Create a handle; no processes are forked until the first {!run}.
    Parameters are as for {!map} and apply to every batch.  [f] is
    fixed for the pool's lifetime — per-batch inputs must travel in
    the job values. *)

val run :
  ?telemetry:Ise_telemetry.Sink.t ->
  ?on_result:(int -> 'r outcome -> unit) ->
  ?bisect:('a -> ('a * 'a) option) ->
  ('a, 'r) t ->
  'a array ->
  'r outcome array * stats
(** Run one batch on the pool, reusing live workers and (re)forking
    only dead or not-yet-started ones ([stats.st_spawned] counts the
    forks this batch caused).  Semantics are exactly {!map}'s: results
    in input order, in-order [on_result] streaming, timeouts, retries,
    bisection, SIGINT drain.  [telemetry] overrides the pool's sink
    for this batch only — a calibration pilot can measure into a
    private registry.  A batch smaller than the pool uses only
    the first [length items] workers; extra live workers stay parked.
    After a SIGINT drain the workers are shut down (the caller is
    abandoning the pool).  Raises [Invalid_argument] on a closed
    pool. *)

val prespawn : ('a, 'r) t -> unit
(** Fork all workers now instead of at the first {!run} — a daemon
    calls this at startup so workers inherit a pristine address space
    (no client connections), and benchmarks call it to keep fork cost
    out of the measured region.  No-op on single-job pools, platforms
    without fork, and already-live workers. *)

val close : ('a, 'r) t -> unit
(** Shut the workers down (EOF on the job pipe, then reap) and remove
    their journals.  Idempotent. *)

val with_pool :
  ?jobs:int ->
  ?job_timeout:float ->
  ?kill_grace:float ->
  ?max_retries:int ->
  ?retry_backoff:float ->
  ?telemetry:Ise_telemetry.Sink.t ->
  ?journal_dir:string ->
  ('a -> 'r) ->
  (('a, 'r) t -> 'b) ->
  'b
(** [with_pool … f k] = [create … f] passed to [k], closed on the way
    out (also on exception). *)

val alive_workers : ('a, 'r) t -> int
(** Number of currently live (forked, not shut down) workers —
    observability for tests and telemetry. *)

(** {1 Running} *)

val map :
  ?jobs:int ->
  ?job_timeout:float ->
  ?kill_grace:float ->
  ?max_retries:int ->
  ?retry_backoff:float ->
  ?telemetry:Ise_telemetry.Sink.t ->
  ?on_result:(int -> 'r outcome -> unit) ->
  ?bisect:('a -> ('a * 'a) option) ->
  ?journal_dir:string ->
  ('a -> 'r) ->
  'a array ->
  'r outcome array * stats
(** [jobs] defaults to {!default_jobs}[ ()] (capped at the number of
    items); [job_timeout] in seconds, default none — the in-process
    path never enforces timeouts; [kill_grace] (default 0.5 s) is the
    SIGTERM→SIGKILL escalation delay; [max_retries] (default 2) bounds
    re-dispatches after crashes/timeouts, with delays of
    [retry_backoff] (default 0.05 s) doubling per attempt.

    [bisect item] returns the two halves of a splittable item ([None]
    for atoms).  It is consulted only when a job {e times out}; crash
    retries are unchanged.  Halves are never re-split, so one timeout
    costs at most two extra dispatches.

    With [telemetry], maintains [pool/*] counters (jobs, dispatched,
    completed, retried, timed_out, crashes, workers_spawned), a
    per-worker [pool/worker<k>/job_ms] latency histogram, and one
    [pool]-category trace span per dispatch (tid = worker slot,
    timestamps in µs since the call), visible in Perfetto.

    With [journal_dir] (forked path only), every worker enables the
    process-global {!Ise_obs.Recorder} with a line-flushed spill file
    [journal_dir/worker<slot>-<pid>.jnl]: job code that records into
    the global recorder (e.g. chaos runs mirroring their lifecycle
    events) leaves a decodable journal tail on disk even when the
    worker is killed mid-job.  A worker death that exhausts its
    retries names the journal path in the [Crashed] error; journals of
    cleanly-exited workers are removed. *)
