(** Versioned, length-prefixed message framing for pool pipe IPC.

    Every message exchanged between the pool supervisor and its forked
    workers is one {e frame}: a fixed 9-byte header — 4 magic bytes
    (["ISEP"]), 1 version byte, 4 big-endian payload-length bytes —
    followed by the payload.  The header makes stream desynchronisation
    (a worker writing garbage, a partial write cut off by a kill)
    detectable instead of silently corrupting the next message, and the
    version byte lets the wire format evolve without ambiguity.

    The payload is an opaque string; {!marshal}/{!unmarshal} are the
    convenience pair the pool uses to move OCaml values through it
    (safe here because supervisor and workers are the same executable
    image — workers are forks, never execs). *)

val version : int
(** Current wire-format version (written into every header). *)

val header_bytes : int
(** Size of the fixed frame header (9). *)

val default_max_payload : int
(** Default refusal threshold for claimed payload sizes (64 MiB); a
    length field above it is treated as corruption, not as a request to
    allocate. *)

(** {1 Errors} *)

type error =
  | Bad_magic  (** header does not start with the magic bytes *)
  | Bad_version of int  (** recognised magic, unknown version *)
  | Oversized of int  (** claimed payload length exceeds the cap *)
  | Truncated  (** stream ended inside a frame *)

val error_to_string : error -> string

(** {1 Encoding} *)

val encode : string -> string
(** [encode payload] is the framed message (header ^ payload). *)

(** {1 Streaming decode}

    For the supervisor's non-blocking reads: bytes accumulate in a
    buffer and frames are peeled off the front as they complete. *)

type decoded =
  | Frame of string * int
      (** payload and total bytes consumed (header + payload) *)
  | Need_more  (** a valid prefix, but the frame is incomplete *)
  | Corrupt of error

val decode : ?max_payload:int -> bytes -> pos:int -> len:int -> decoded
(** Examine [len] bytes starting at [pos].  Never raises; never
    consumes anything on [Need_more] or [Corrupt]. *)

(** {1 Blocking file-descriptor helpers}

    Used by workers, whose lives are simple: read one frame, compute,
    write one frame. *)

val write_frame : Unix.file_descr -> string -> unit
(** Writes the whole framed message, looping over partial writes.
    Raises [Unix.Unix_error] (e.g. [EPIPE]) if the peer is gone. *)

val read_frame :
  ?max_payload:int -> Unix.file_descr -> (string, [ `Eof | `Corrupt of error ]) result
(** Blocking read of exactly one frame.  [`Eof] only on a clean
    end-of-stream at a frame boundary; an EOF mid-frame is
    [`Corrupt Truncated]. *)

(** {1 Marshal convenience} *)

val marshal : 'a -> string
val unmarshal : string -> 'a
(** [unmarshal] trusts the payload — only use on frames produced by
    [marshal] in the same executable image. *)
