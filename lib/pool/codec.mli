(** Versioned, length-prefixed message framing for pipe and socket IPC.

    Every message exchanged between the pool supervisor and its forked
    workers — and between the {!Ise_serve} daemon and its clients — is
    one {e frame}: a fixed header — 4 magic bytes (["ISEP"]), 1
    frame-format version byte, 1 protocol byte (v2), 4 big-endian
    payload-length bytes — followed by the payload.  The header makes
    stream desynchronisation (a worker writing garbage, a partial
    write cut off by a kill) detectable instead of silently corrupting
    the next message; the format version byte lets the framing layout
    evolve without ambiguity, and the protocol byte carries the {e
    application} protocol version so endpoints can negotiate before
    interpreting payloads.

    Compatibility rules:

    - this reader accepts frames of every version in
      [{!min_version}..{!version}] — a v1 frame (9-byte header, no
      protocol byte) decodes with [proto = 0];
    - a frame from a {e newer} writer is rejected with
      [Unsupported_version], never mis-decoded: the version byte is
      validated before any layout-dependent field is read, so a v1
      reader facing a v2 frame fails at the version byte instead of
      parsing the protocol byte as payload length.

    The payload is an opaque string; {!marshal}/{!unmarshal} are the
    convenience pair the pool uses to move OCaml values through it
    (safe here because supervisor and workers are the same executable
    image — workers are forks, never execs). *)

val version : int
(** Current frame-format version (written into every header by
    default). *)

val min_version : int
(** Oldest frame-format version this reader still decodes. *)

val header_bytes : int
(** Size of the current fixed frame header (10). *)

val header_bytes_v1 : int
(** Size of the legacy v1 header (9), for compatibility tests. *)

val default_max_payload : int
(** Default refusal threshold for claimed payload sizes (64 MiB); a
    length field above it is treated as corruption, not as a request to
    allocate. *)

(** {1 Errors} *)

type error =
  | Bad_magic  (** header does not start with the magic bytes *)
  | Unsupported_version of int
      (** recognised magic, but a frame-format version outside
          [min_version..version] — typically a newer writer *)
  | Oversized of int  (** claimed payload length exceeds the cap *)
  | Truncated  (** stream ended inside a frame *)

val error_to_string : error -> string

(** {1 Encoding} *)

val encode : ?proto:int -> ?version:int -> string -> string
(** [encode payload] is the framed message (header ^ payload).
    [proto] (default 0, range 0..255) is the application-protocol byte
    carried by v2 frames.  [version] (default {!version}) selects the
    header layout for compatibility testing; writing a v1 frame with a
    non-zero [proto] is an [Invalid_argument]. *)

(** {1 Streaming decode}

    For the supervisor's non-blocking reads: bytes accumulate in a
    buffer and frames are peeled off the front as they complete. *)

type decoded =
  | Frame of { payload : string; proto : int; consumed : int }
      (** payload, application-protocol byte (0 for v1 frames), and
          total bytes consumed (header + payload) *)
  | Need_more  (** a valid prefix, but the frame is incomplete *)
  | Corrupt of error

val decode : ?max_payload:int -> bytes -> pos:int -> len:int -> decoded
(** Examine [len] bytes starting at [pos].  Never raises; never
    consumes anything on [Need_more] or [Corrupt]. *)

(** {1 Blocking file-descriptor helpers}

    Used by workers and by serve clients, whose lives are simple: read
    one frame, compute, write one frame. *)

val write_frame : ?proto:int -> Unix.file_descr -> string -> unit
(** Writes the whole framed message, looping over partial writes.
    Raises [Unix.Unix_error] (e.g. [EPIPE]) if the peer is gone. *)

val read_frame :
  ?max_payload:int -> Unix.file_descr -> (string, [ `Eof | `Corrupt of error ]) result
(** Blocking read of exactly one frame, discarding the protocol byte.
    [`Eof] only on a clean end-of-stream at a frame boundary; an EOF
    mid-frame is [`Corrupt Truncated]. *)

val read_frame_ext :
  ?max_payload:int ->
  Unix.file_descr ->
  (int * string, [ `Eof | `Corrupt of error ]) result
(** Like {!read_frame} but returns [(proto, payload)]. *)

(** {1 Marshal convenience} *)

val marshal : 'a -> string
val unmarshal : string -> 'a
(** [unmarshal] trusts the payload — only use on frames produced by
    [marshal] in the same executable image. *)

val valid_marshal : string -> bool
(** Structural validation of a marshal stream without decoding it.
    Walks the compact extern format with every read bounds-checked and
    cross-checks the header's data length, shared-object count, and
    64-bit word size — the three invariants the runtime's intern loop
    trusts blindly.  A stream that passes cannot crash
    [Marshal.from_string]; one that fails would (or uses opcodes this
    codec never produces, e.g. closures or custom blocks). *)

val unmarshal_opt : string -> 'a option
(** Crash-safe [unmarshal] for untrusted bytes: [None] unless the
    stream passes {!valid_marshal} and decodes cleanly.  Structural
    validity is not integrity — a corrupted stream can still decode to
    a wrong value of the right shape; layer a checksum on top when that
    matters (the fabric wire seals v2 payloads with an MD5 digest). *)
