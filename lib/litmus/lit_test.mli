(** Litmus tests: a small concurrent program, a condition on the final
    state, and the expected verdict under each memory model.

    Mirrors the structure of the litmus-tests-riscv suite the paper
    uses (§6.3): each test isolates one or a few ordering relations of
    Table 6, and the condition describes the single interesting
    outcome whose reachability distinguishes models. *)

open Ise_model
open Ise_model.Types

type atom =
  | Reg_is of tid * reg * value  (** [tid:reg = value] in the final state *)
  | Mem_is of loc * value  (** [*loc = value] in the final memory *)

type cond = atom list
(** Conjunction of atoms. *)

type expectation = Allowed | Forbidden

type t = {
  name : string;
  doc : string;  (** one-line description of what the test isolates *)
  threads : Instr.t list array;
  cond : cond;  (** the interesting outcome *)
  expect : (Axiom.model * expectation) list;
      (** hand-written verdicts for the classic tests; used to validate
          the axiomatisation itself *)
}

val make :
  name:string -> ?doc:string ->
  ?expect:(Axiom.model * expectation) list ->
  Instr.t list array -> cond -> t

val cond_holds : cond -> Outcome.t -> bool

val satisfiable : Axiom.config -> t -> bool
(** Whether any allowed outcome under the configuration satisfies the
    condition (i.e., the interesting outcome is reachable). *)

val verdict : Axiom.config -> t -> expectation
(** [Allowed] if the interesting outcome is model-reachable. *)

val check_expectations : t -> (Axiom.model * expectation * expectation) list
(** For each hand-written expectation, (model, expected, actual); the
    test suite asserts these agree. *)

val stores_of : t -> (tid * int) list
(** All stores of the program, as faulting-markings. *)

val canonical_form : t -> string
(** Canonical textual form of the program alone: registers renamed per
    thread and locations renamed globally to dense first-use indices,
    condition atoms sorted, name/doc/expect metadata dropped.  Two
    serializations of the same program (whitespace, comments, metadata
    ordering, register/location spellings) canonicalize identically;
    any semantic difference does not. *)

val fingerprint : t -> string
(** Content hash (hex digest) of {!canonical_form} — the test half of
    the {!Ise_serve} result-store key. *)

val pp : Format.formatter -> t -> unit
