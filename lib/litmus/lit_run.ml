open Ise_model
open Ise_sim
open Ise_util

type result = {
  test : Lit_test.t;
  allowed : Outcome.Set.t;
  observed : Outcome.Set.t;
  pass : bool;
  contract_ok : bool;
  interesting_observed : bool;
  runs : int;
  imprecise_exceptions : int;
  precise_exceptions : int;
}

let page_size = 4096

let loc_addr ~base l = base + (l * page_size)

let lower_instr ~base = function
  | Instr.Load (r, x) ->
    Sim_instr.Ld { dst = r; addr = Sim_instr.addr (loc_addr ~base x) }
  | Instr.Load_dep (r, x, rdep) ->
    Sim_instr.Ld { dst = r; addr = Sim_instr.addr ~dep:rdep (loc_addr ~base x) }
  | Instr.Store (x, v) ->
    Sim_instr.St { addr = Sim_instr.addr (loc_addr ~base x); data = Sim_instr.Imm v }
  | Instr.Store_reg (x, r) ->
    Sim_instr.St
      { addr = Sim_instr.addr (loc_addr ~base x); data = Sim_instr.From_reg r }
  | Instr.Store_dep (x, v, rdep) ->
    Sim_instr.St
      { addr = Sim_instr.addr ~dep:rdep (loc_addr ~base x);
        data = Sim_instr.Imm v }
  | Instr.Fence -> Sim_instr.Fence
  | Instr.Ctrl r -> Sim_instr.Ctrl r
  | Instr.Amo (r, x, v) ->
    Sim_instr.Amo
      { dst = r; addr = Sim_instr.addr (loc_addr ~base x); op = Memsys.Swap v }
  | Instr.Amo_add (r, x, v) ->
    Sim_instr.Amo
      { dst = r; addr = Sim_instr.addr (loc_addr ~base x); op = Memsys.Add v }

let lower (t : Lit_test.t) ~base =
  Array.map (List.map (lower_instr ~base)) t.Lit_test.threads

(* Random Nop padding between instructions so different seeds explore
   different interleavings on a deterministic machine. *)
let perturb rng instrs =
  let out = ref [] in
  if Rng.bool rng then out := [ Sim_instr.Nop (1 + Rng.int rng 60) ];
  List.iter
    (fun i ->
      out := i :: !out;
      if Rng.int rng 100 < 40 then
        out := Sim_instr.Nop (1 + Rng.int rng 25) :: !out)
    instrs;
  List.rev !out

let locs_of (t : Lit_test.t) =
  let locs = Hashtbl.create 4 in
  Array.iter
    (List.iter (fun i ->
         match Instr.loc_of i with
         | Some l -> Hashtbl.replace locs l ()
         | None -> ()))
    t.Lit_test.threads;
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) locs [])

let dest_regs (t : Lit_test.t) =
  let regs = ref [] in
  Array.iteri
    (fun tid instrs ->
      List.iter
        (fun i ->
          match Instr.defs i with
          | Some r -> if not (List.mem (tid, r) !regs) then regs := (tid, r) :: !regs
          | None -> ())
        instrs)
    t.Lit_test.threads;
  List.rev !regs

let model_config (cfg : Config.t) =
  let model = cfg.Config.consistency in
  match cfg.Config.protocol_mode with
  | Ise_core.Protocol.Same_stream -> { Axiom.model; faults = Axiom.Precise }
  | Ise_core.Protocol.Split_stream ->
    { Axiom.model; faults = Axiom.Split_stream }

let run ?(seeds = 20) ?(inject_faults = true) ?(timer_interrupts = false)
    ?(cfg = Config.default) (t : Lit_test.t) =
  let base = cfg.Config.einject_base in
  let lowered = lower t ~base in
  let locs = locs_of t in
  let regs = dest_regs t in
  (* allowed set: under split-stream checking, any store may fault *)
  let faulting =
    match cfg.Config.protocol_mode with
    | Ise_core.Protocol.Split_stream when inject_faults -> Lit_test.stores_of t
    | _ -> []
  in
  let allowed = Check.allowed ~faulting (model_config cfg) t.Lit_test.threads in
  let observed = ref Outcome.Set.empty in
  let contract_ok = ref true in
  let imprecise = ref 0 and precise = ref 0 in
  let root = Rng.create (Hashtbl.hash t.Lit_test.name) in
  for _run = 1 to seeds do
    let rng = Rng.split root in
    let programs =
      Array.map (fun is -> Sim_instr.of_list (perturb rng is)) lowered
    in
    let machine = Machine.create ~cfg ~programs () in
    let stats = Ise_os.Handler.install machine in
    if timer_interrupts then
      Machine.enable_timer_interrupts machine ~period:300 ~handler_cycles:60;
    if inject_faults then
      List.iter
        (fun l -> Einject.set_faulting (Machine.einject machine) (loc_addr ~base l))
        locs;
    Machine.run ~max_cycles:2_000_000 machine;
    let outcome =
      Outcome.make
        ~regs:
          (List.map
             (fun (tid, r) -> ((tid, r), Core.reg (Machine.core machine tid) r))
             regs)
        ~mem:(List.map (fun l -> (l, Machine.read_word machine (loc_addr ~base l))) locs)
    in
    observed := Outcome.Set.add outcome !observed;
    (match cfg.Config.protocol_mode with
     | Ise_core.Protocol.Same_stream ->
       if Stdlib.Result.is_error (Machine.check_contract machine) then
         contract_ok := false
     | Ise_core.Protocol.Split_stream ->
       (* split-stream deliberately breaks the interface-order rules;
          only the OS-side rules are meaningful, so skip the check *)
       ());
    let core_stats tid = Core.stats (Machine.core machine tid) in
    for tid = 0 to Array.length lowered - 1 do
      imprecise := !imprecise + (core_stats tid).Core.imprecise_exceptions
    done;
    precise := !precise + stats.Ise_os.Handler.precise_faults
  done;
  let pass = Outcome.Set.subset !observed allowed in
  {
    test = t;
    allowed;
    observed = !observed;
    pass;
    contract_ok = !contract_ok;
    interesting_observed =
      Outcome.Set.exists (Lit_test.cond_holds t.Lit_test.cond) !observed;
    runs = seeds;
    imprecise_exceptions = !imprecise;
    precise_exceptions = !precise;
  }

let run_suite ?seeds ?inject_faults ?timer_interrupts ?cfg tests =
  List.map (run ?seeds ?inject_faults ?timer_interrupts ?cfg) tests

let all_pass results = List.for_all (fun r -> r.pass && r.contract_ok) results

(* The one-line rendering `ise litmus` prints and the serve daemon
   caches; shared so a cache hit is byte-identical to a cold run by
   construction. *)
let summary_line r =
  Printf.sprintf
    "%-16s pass=%b contract=%b observed=%d/%d relaxed-outcome=%b \
     exceptions=%d+%d"
    r.test.Lit_test.name r.pass r.contract_ok
    (Outcome.Set.cardinal r.observed)
    (Outcome.Set.cardinal r.allowed)
    r.interesting_observed r.imprecise_exceptions r.precise_exceptions
