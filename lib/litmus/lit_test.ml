open Ise_model
open Ise_model.Types

type atom =
  | Reg_is of tid * reg * value
  | Mem_is of loc * value

type cond = atom list

type expectation = Allowed | Forbidden

type t = {
  name : string;
  doc : string;
  threads : Instr.t list array;
  cond : cond;
  expect : (Axiom.model * expectation) list;
}

let make ~name ?(doc = "") ?(expect = []) threads cond =
  { name; doc; threads; cond; expect }

let cond_holds cond outcome =
  List.for_all
    (function
      | Reg_is (tid, r, v) -> Outcome.reg outcome tid r = v
      | Mem_is (l, v) -> Outcome.mem_value outcome l = v)
    cond

let satisfiable cfg t =
  let allowed = Check.allowed cfg t.threads in
  Outcome.Set.exists (cond_holds t.cond) allowed

let verdict cfg t = if satisfiable cfg t then Allowed else Forbidden

let check_expectations t =
  List.map
    (fun (model, expected) ->
      let actual = verdict { Axiom.model; faults = Axiom.Precise } t in
      (model, expected, actual))
    t.expect

let stores_of t =
  let acc = ref [] in
  Array.iteri
    (fun tid instrs ->
      List.iteri
        (fun i instr ->
          match instr with
          | Instr.Store _ | Instr.Store_reg _ | Instr.Store_dep _ ->
            acc := (tid, i) :: !acc
          | _ -> ())
        instrs)
    t.threads;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* canonical fingerprint                                               *)

(* The canonical form renames registers (per thread) and locations
   (globally) to dense indices in first-use order, drops the name /
   doc / expect metadata, and sorts the condition atoms, so any two
   serializations of the same program — different whitespace,
   comments, metadata ordering, or register/location spellings — hash
   identically, while any semantic difference (an instruction, an
   operand, a value, thread order) changes the hash. *)
let canonical_form t =
  let locs = Hashtbl.create 8 in
  let nloc = ref 0 in
  let loc l =
    match Hashtbl.find_opt locs l with
    | Some i -> i
    | None ->
      let i = !nloc in
      incr nloc;
      Hashtbl.add locs l i;
      i
  in
  let ntids = Array.length t.threads in
  let reg_tbls = Array.init ntids (fun _ -> (Hashtbl.create 8, ref 0)) in
  let reg tid r =
    if tid < 0 || tid >= ntids then r (* malformed cond; keep raw *)
    else begin
      let tbl, n = reg_tbls.(tid) in
      match Hashtbl.find_opt tbl r with
      | Some i -> i
      | None ->
        let i = !n in
        incr n;
        Hashtbl.add tbl r i;
        i
    end
  in
  let itok tid = function
    | Instr.Load (r, x) -> Printf.sprintf "R%d,%d" (reg tid r) (loc x)
    | Instr.Load_dep (r, x, d) ->
      Printf.sprintf "Rd%d,%d,%d" (reg tid r) (loc x) (reg tid d)
    | Instr.Store (x, v) -> Printf.sprintf "W%d,%d" (loc x) v
    | Instr.Store_reg (x, r) -> Printf.sprintf "Wr%d,%d" (loc x) (reg tid r)
    | Instr.Store_dep (x, v, d) ->
      Printf.sprintf "Wd%d,%d,%d" (loc x) v (reg tid d)
    | Instr.Fence -> "F"
    | Instr.Ctrl r -> Printf.sprintf "C%d" (reg tid r)
    | Instr.Amo (r, x, v) -> Printf.sprintf "A%d,%d,%d" (reg tid r) (loc x) v
    | Instr.Amo_add (r, x, v) ->
      Printf.sprintf "Aa%d,%d,%d" (reg tid r) (loc x) v
  in
  let b = Buffer.create 128 in
  Array.iteri
    (fun tid instrs ->
      Buffer.add_string b (Printf.sprintf "t%d:" tid);
      List.iter (fun i -> Buffer.add_string b (itok tid i ^ ";")) instrs;
      Buffer.add_char b '\n')
    t.threads;
  let atoms =
    List.map
      (function
        | Reg_is (tid, r, v) -> Printf.sprintf "r%d:%d=%d" tid (reg tid r) v
        | Mem_is (l, v) -> Printf.sprintf "m%d=%d" (loc l) v)
      t.cond
  in
  Buffer.add_string b
    ("cond:" ^ String.concat ";" (List.sort compare atoms));
  Buffer.contents b

let fingerprint t = Digest.to_hex (Digest.string (canonical_form t))

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %s@," t.name t.doc;
  Array.iteri
    (fun tid instrs ->
      Format.fprintf ppf "  T%d:" tid;
      List.iter (fun i -> Format.fprintf ppf " %a;" Instr.pp i) instrs;
      Format.fprintf ppf "@,")
    t.threads;
  Format.fprintf ppf "@]"
