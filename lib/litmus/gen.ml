open Ise_model
open Ise_util

type params = {
  max_threads : int;
  max_instrs : int;
  max_locs : int;
  allow_amo : bool;
  allow_fence : bool;
  allow_deps : bool;
}

let default_params =
  { max_threads = 2; max_instrs = 4; max_locs = 3; allow_amo = true;
    allow_fence = true; allow_deps = true }

let validate p =
  if p.max_threads < 2 then
    Error
      (Printf.sprintf
         "Gen: max_threads = %d, but inter-thread communication needs at \
          least 2 threads"
         p.max_threads)
  else if p.max_threads > 8 then
    Error
      (Printf.sprintf
         "Gen: max_threads = %d makes model enumeration intractable (max 8)"
         p.max_threads)
  else if p.max_instrs < 1 then
    Error (Printf.sprintf "Gen: max_instrs = %d, need at least 1" p.max_instrs)
  else if p.max_instrs > 16 then
    Error
      (Printf.sprintf
         "Gen: max_instrs = %d makes model enumeration intractable (max 16)"
         p.max_instrs)
  else if p.max_locs < 1 then
    Error
      (Printf.sprintf
         "Gen: max_locs = %d, but communication needs at least one shared \
          location"
         p.max_locs)
  else if p.max_locs > 8 then
    Error
      (Printf.sprintf
         "Gen: max_locs = %d makes model enumeration intractable (max 8)"
         p.max_locs)
  else Ok ()

let gen_thread rng p ~writes_left =
  let n = 1 + Rng.int rng p.max_instrs in
  let next_reg = ref 0 in
  let defined = ref [] in
  let fresh_reg () =
    let r = !next_reg in
    incr next_reg;
    defined := r :: !defined;
    r
  in
  let loc () = Rng.int rng p.max_locs in
  let instrs = ref [] in
  for _ = 1 to n do
    let can_write = !writes_left > 0 in
    let roll = Rng.int rng 100 in
    let instr =
      if roll < 30 then
        (* plain load *)
        let r = fresh_reg () in
        Some (Instr.Load (r, loc ()))
      else if roll < 60 && can_write then Some (Instr.Store (loc (), 1 + Rng.int rng 2))
      else if roll < 70 && p.allow_fence then Some Instr.Fence
      else if roll < 80 && p.allow_deps && !defined <> [] then begin
        let dep = Rng.choose rng (Array.of_list !defined) in
        match Rng.int rng 3 with
        | 0 ->
          let r = fresh_reg () in
          Some (Instr.Load_dep (r, loc (), dep))
        | 1 when can_write -> Some (Instr.Store_reg (loc (), dep))
        | _ -> Some (Instr.Ctrl dep)
      end
      else if roll < 85 && p.allow_amo && can_write then
        let r = fresh_reg () in
        if Rng.bool rng then Some (Instr.Amo (r, loc (), 1 + Rng.int rng 2))
        else Some (Instr.Amo_add (r, loc (), 1))
      else if can_write then Some (Instr.Store (loc (), 1 + Rng.int rng 2))
      else
        let r = fresh_reg () in
        Some (Instr.Load (r, loc ()))
    in
    match instr with
    | Some i ->
      (match i with
       | Instr.Store _ | Instr.Store_reg _ | Instr.Store_dep _
       | Instr.Amo _ | Instr.Amo_add _ -> decr writes_left
       | _ -> ());
      instrs := i :: !instrs
    | None -> ()
  done;
  List.rev !instrs

let communicates threads =
  (* some location is written by one thread and accessed by another *)
  let accesses tid want_write =
    List.filter_map
      (fun i ->
        match Instr.loc_of i with
        | Some l ->
          let w =
            match i with
            | Instr.Store _ | Instr.Store_reg _ | Instr.Store_dep _
            | Instr.Amo _ | Instr.Amo_add _ -> true
            | _ -> false
          in
          if (not want_write) || w then Some (tid, l) else None
        | None -> None)
      threads.(tid)
  in
  let nt = Array.length threads in
  let found = ref false in
  for t1 = 0 to nt - 1 do
    for t2 = 0 to nt - 1 do
      if t1 <> t2 then
        List.iter
          (fun (_, l) ->
            if List.exists (fun (_, l') -> l = l') (accesses t2 false) then
              found := true)
          (accesses t1 true)
    done
  done;
  !found

(* keep the per-location write count small so co enumeration stays cheap *)
let writes_per_loc_ok threads max_per_loc =
  let counts = Hashtbl.create 4 in
  Array.iter
    (List.iter (fun i ->
         match i with
         | Instr.Store (l, _) | Instr.Store_reg (l, _) | Instr.Store_dep (l, _, _)
         | Instr.Amo (_, l, _) | Instr.Amo_add (_, l, _) ->
           Hashtbl.replace counts l
             (1 + (try Hashtbl.find counts l with Not_found -> 0))
         | _ -> ()))
    threads;
  Hashtbl.fold (fun _ c ok -> ok && c <= max_per_loc) counts true

(* diy-style critical-cycle skeleton: thread [i] accesses location
   [i] then location [i+1 mod n], so the per-thread program-order
   edges and the inter-thread communication edges close a cycle.
   These are exactly the shapes (SB, LB, MP, S, R, 2+2W and their
   fence/dependency variants) that distinguish SC from PC from WC —
   the purely random path below produces them too rarely for
   differential fuzzing to exercise the relaxed corners of the
   models. *)
let gen_cycle_threads rng p =
  let nthreads =
    let cap = min p.max_threads p.max_locs in
    2 + Rng.int rng (max 1 (min cap 3 - 1))
  in
  let next_val = ref 0 in
  let fresh_val () = incr next_val; !next_val in
  let any_write = ref false in
  let threads =
    Array.init nthreads (fun i ->
        let l_in = i and l_out = (i + 1) mod nthreads in
        let next_reg = ref 0 in
        let fresh_reg () =
          let r = !next_reg in
          incr next_reg;
          r
        in
        let mk write l =
          if write then begin
            any_write := true;
            Instr.Store (l, fresh_val ())
          end
          else Instr.Load (fresh_reg (), l)
        in
        let a = mk (Rng.bool rng) l_in in
        let b =
          let write = Rng.bool rng in
          match a with
          | Instr.Load (r, _) when p.allow_deps && Rng.int rng 100 < 30 ->
            if write then begin
              any_write := true;
              Instr.Store_reg (l_out, r)
            end
            else Instr.Load_dep (fresh_reg (), l_out, r)
          | _ -> mk write l_out
        in
        let fence =
          if p.allow_fence && Rng.int rng 100 < 25 then [ Instr.Fence ] else []
        in
        (a :: fence) @ [ b ])
  in
  (* a cycle with no write at all cannot communicate; force one *)
  if not !any_write then
    threads.(0) <-
      (match threads.(0) with _ :: rest -> Instr.Store (0, fresh_val ()) :: rest
                            | [] -> assert false);
  threads

let max_attempts = 200

let generate rng p =
  (match validate p with Ok () -> () | Error msg -> invalid_arg msg);
  let rec try_once attempt =
    if attempt >= max_attempts then
      failwith
        (Printf.sprintf
           "Gen.generate: no communicating test after %d attempts \
            (max_threads=%d max_instrs=%d max_locs=%d amo=%b fence=%b \
            deps=%b); loosen the parameters"
           max_attempts p.max_threads p.max_instrs p.max_locs p.allow_amo
           p.allow_fence p.allow_deps);
    let threads =
      if p.max_locs >= 2 && Rng.bool rng then gen_cycle_threads rng p
      else begin
        let nthreads = 2 + Rng.int rng (max 1 (p.max_threads - 1)) in
        (* independent per-thread budgets: a shared budget let the
           first thread starve the others of stores, killing most
           communication shapes *)
        Array.init nthreads (fun _ -> gen_thread rng p ~writes_left:(ref 3))
      end
    in
    if communicates threads && writes_per_loc_ok threads 3 then threads
    else try_once (attempt + 1)
  in
  let threads = try_once 0 in
  let id = Rng.int rng 1_000_000 in
  Lit_test.make ~name:(Printf.sprintf "gen-%06d" id)
    ~doc:"randomly generated test" threads []

let generate_suite ~seed ~count p =
  let rng = Rng.create seed in
  List.init count (fun _ -> generate (Rng.split rng) p)
