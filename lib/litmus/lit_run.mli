(** Operational litmus running (§6.3).

    Each test is lowered onto the simulated machine (one thread per
    core, every litmus location on its own EInject page) and run many
    times under randomly perturbed timing (seeded Nop padding and
    per-core start skew).  Optionally all test pages are marked
    faulting first, so every load takes a precise exception and every
    store an imprecise one, transparently handled by the OS — the
    paper's error-injection methodology.

    The pass criterion is the paper's: the hardware must not exhibit
    any outcome the memory model does not allow
    (observed ⊆ allowed), and every run's interface trace must satisfy
    the Table 5 contract. *)

open Ise_model

type result = {
  test : Lit_test.t;
  allowed : Outcome.Set.t;  (** model-allowed outcomes *)
  observed : Outcome.Set.t;  (** outcomes seen on the machine *)
  pass : bool;  (** observed ⊆ allowed *)
  contract_ok : bool;
  interesting_observed : bool;
      (** whether the test's condition outcome was ever observed *)
  runs : int;
  imprecise_exceptions : int;  (** total across runs *)
  precise_exceptions : int;
}

val lower : Lit_test.t -> base:int -> Ise_sim.Sim_instr.t list array
(** Pure lowering of litmus instructions to simulator instructions,
    without perturbation. *)

val run :
  ?seeds:int -> ?inject_faults:bool -> ?timer_interrupts:bool ->
  ?cfg:Ise_sim.Config.t -> Lit_test.t -> result
(** [seeds] (default 20) independent perturbed executions. With
    [inject_faults] (default true), all test pages start faulting.
    [timer_interrupts] additionally fires periodic interrupts during
    every run (§5.3's concurrency stressor). *)

val run_suite :
  ?seeds:int -> ?inject_faults:bool -> ?timer_interrupts:bool ->
  ?cfg:Ise_sim.Config.t -> Lit_test.t list -> result list

val all_pass : result list -> bool

val summary_line : result -> string
(** The canonical one-line result rendering — what [ise litmus]
    prints and what the {!Ise_serve} result store caches, shared so a
    cache hit is byte-identical to a cold run by construction. *)
