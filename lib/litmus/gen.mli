(** diy-style random litmus-test generation.

    The paper's suite covers each Table 6 relation with hundreds to
    thousands of tests; we reproduce that scale by generating random
    small programs (bounded threads, instructions, and locations, so
    exhaustive model enumeration stays cheap) and classifying them.
    Generated tests carry an empty condition: the harness's pass
    criterion for them is observed ⊆ allowed, exactly the
    "no behaviour the model does not allow" criterion of §6.3. *)

type params = {
  max_threads : int;  (** 2..4 *)
  max_instrs : int;  (** per thread, ≥1 *)
  max_locs : int;  (** 2..3 keeps enumeration cheap *)
  allow_amo : bool;
  allow_fence : bool;
  allow_deps : bool;
}

val default_params : params

val validate : params -> (unit, string) result
(** Rejects parameter combinations under which generation cannot make
    progress (fewer than 2 threads or no shared location: no
    inter-thread communication is expressible) or under which
    exhaustive model enumeration would blow up (threads, instructions,
    or locations far beyond litmus scale).  The error spells out the
    offending field. *)

val generate : Ise_util.Rng.t -> params -> Lit_test.t
(** One random test; retries internally (bounded) until the program
    has inter-thread communication.
    @raise Invalid_argument when {!validate} rejects the parameters.
    @raise Failure if no communicating program is found within the
    retry bound — the message names the parameters responsible. *)

val generate_suite : seed:int -> count:int -> params -> Lit_test.t list
(** @raise Invalid_argument when {!validate} rejects the parameters. *)
