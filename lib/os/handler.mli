(** The imprecise store-exception handler (§5.3, §6.2).

    The reference OS implementation wired into the machine's hooks:

    - {b imprecise}: after exception dispatch, GET every faulting
      store from the core's FSB, resolve each fault (clear the EInject
      bit, or perform demand paging with batched IO for major faults),
      apply the stores to memory in interface order as OS stores
      (S_OS), RESOLVE, and resume the core.  Irrecoverable faults
      terminate the core and discard its faulting stores.
    - {b precise}: loads (and SC-mode stores) fault precisely; the
      handler resolves the fault and retries the access.

    Cycle accounting matches Figure 5's breakdown: the
    microarchitectural part is measured by the core (drain + flush);
    this module accounts the OS "apply" and "other" parts. *)

type resolve_policy =
  | Clear_einject
      (** minimal handler: mark the page non-faulting via the EInject
          [clr] register *)
  | Demand_paging of { table : Page_table.t; io_latency : int }
      (** resolve through a page table; major faults issue IO
          requests, batched per invocation (overlapped latencies) *)
  | Midgard_paging of
      { midgard : Ise_sim.Midgard.t; major_pct : int; io_latency : int }
      (** resolve late Midgard→physical translation faults (§2.2,
          Example 2) by establishing the mapping; [major_pct]% of pages
          need an IO request (deterministic by page number) *)

type config = {
  costs : Ise_core.Batch.cost_model;
  policy : resolve_policy;
}

val default_config : config

type chaos = {
  hc_preempt : unit -> int;
      (** extra cycles a timer interrupt steals from the handler before
          a GET round ({!Ise_chaos} installs this; 0 = no preemption) *)
}

type stats = {
  mutable invocations : int;
  mutable stores_handled : int;
  mutable faulting_handled : int;  (** stores with a real exception code *)
  mutable apply_cycles : int;  (** resolving + applying faulting stores *)
  mutable other_cycles : int;  (** dispatch, context switch, misc, IO wait *)
  mutable io_requests : int;
  mutable precise_faults : int;
  mutable terminated_cores : int;
  mutable apply_retries : int;
      (** S_OS stores that were denied and re-sent after an inline
          re-resolve (the bounded nested invocation of §5.4) *)
  batch_sizes : Ise_util.Stats.t;
}

val bug_drop_get : bool ref
(** Fault-injection self-test (`ise chaos run --inject-bug`): while
    set, the handler silently drops the last record of every drained
    batch — a lost store the chaos watchdog must catch.  Global so
    forked campaign workers inherit it. *)

val install :
  ?config:config ->
  ?max_apply_retries:int ->
  ?apply_backoff:int ->
  ?on_apply_exhausted:[ `Fail | `Terminate ] ->
  ?chaos:chaos ->
  Ise_sim.Machine.t -> stats
(** Builds the hooks, installs them on the machine, and returns the
    statistics record that the handler updates during the run.

    A denied S_OS store is re-resolved inline and retried up to
    [max_apply_retries] times (default 1), each retry delayed by
    [apply_backoff]·2{^ attempts-1} extra cycles (default 0).  When
    retries are exhausted, [on_apply_exhausted] picks between the
    seed's [`Fail] (raise — S_OS must not fault when FSB pages are
    pinned) and [`Terminate] (graceful core termination, the
    double-fault policy chaos profiles exercise). *)
