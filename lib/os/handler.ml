open Ise_sim

type resolve_policy =
  | Clear_einject
  | Demand_paging of { table : Page_table.t; io_latency : int }
  | Midgard_paging of
      { midgard : Ise_sim.Midgard.t; major_pct : int; io_latency : int }

type config = {
  costs : Ise_core.Batch.cost_model;
  policy : resolve_policy;
}

let default_config =
  { costs = Ise_core.Batch.default_cost_model; policy = Clear_einject }

type chaos = { hc_preempt : unit -> int }

type stats = {
  mutable invocations : int;
  mutable stores_handled : int;
  mutable faulting_handled : int;
  mutable apply_cycles : int;
  mutable other_cycles : int;
  mutable io_requests : int;
  mutable precise_faults : int;
  mutable terminated_cores : int;
  mutable apply_retries : int;
  batch_sizes : Ise_util.Stats.t;
}

let fresh_stats () =
  { invocations = 0; stores_handled = 0; faulting_handled = 0; apply_cycles = 0;
    other_cycles = 0; io_requests = 0; precise_faults = 0; terminated_cores = 0;
    apply_retries = 0; batch_sizes = Ise_util.Stats.create () }

(* Injected bug for chaos self-tests (`ise chaos run --inject-bug`):
   the last record of each drained batch is dropped on the floor — the
   FSB head has already advanced past it, so the store is lost.  The
   watchdog must catch this. *)
let bug_drop_get = ref false

let is_faulting (r : Ise_core.Fault.record) =
  r.Ise_core.Fault.code <> Ise_core.Fault.No_exception

(* Resolve one fault; returns the cycle cost and the number of IO
   requests it contributed. *)
let resolve_one machine config (r : Ise_core.Fault.record) =
  let einj = Machine.einject machine in
  let addr = r.Ise_core.Fault.addr in
  match config.policy with
  | Clear_einject ->
    Einject.clear_faulting einj addr;
    (config.costs.Ise_core.Batch.resolve_per_store, 0)
  | Demand_paging { table; _ } ->
    Einject.clear_faulting einj addr;
    (match Page_table.resolve table addr with
     | `Was_present | `Minor ->
       (config.costs.Ise_core.Batch.resolve_per_store, 0)
     | `Major -> (config.costs.Ise_core.Batch.resolve_per_store, 1))
  | Midgard_paging { midgard; major_pct; _ } ->
    Einject.clear_faulting einj addr;
    let was_mapped = Midgard.is_mapped midgard addr in
    Midgard.map_page midgard addr;
    let major =
      (not was_mapped) && Hashtbl.hash (addr lsr 12) mod 100 < major_pct
    in
    (config.costs.Ise_core.Batch.resolve_per_store, if major then 1 else 0)

let install ?(config = default_config) ?(max_apply_retries = 1)
    ?(apply_backoff = 0) ?(on_apply_exhausted = `Fail) ?chaos machine =
  let stats = fresh_stats () in
  let engine = Machine.engine machine in
  let costs = config.costs in
  (* Telemetry may be attached to the machine after the handler is
     installed, so resolve the trace sink at emission time. *)
  let tel_trace () =
    match Machine.telemetry machine with
    | None -> None
    | Some sink -> Some (Ise_telemetry.Sink.trace sink)
  in
  let span_b name tid =
    match tel_trace () with
    | None -> ()
    | Some tr ->
      Ise_telemetry.Trace.span_begin tr ~cat:"os" ~name ~tid (Engine.now engine)
  in
  let span_e name tid =
    match tel_trace () with
    | None -> ()
    | Some tr ->
      Ise_telemetry.Trace.span_end tr ~cat:"os" ~name ~tid (Engine.now engine)
  in
  let inst ?args name tid =
    match tel_trace () with
    | None -> ()
    | Some tr ->
      Ise_telemetry.Trace.instant tr ~cat:"os" ?args ~name ~tid
        (Engine.now engine)
  in
  let on_imprecise core_id =
    stats.invocations <- stats.invocations + 1;
    let core = Machine.core machine core_id in
    let fsb = Ise_sim.Core.fsb core in
    let got = ref [] in
    let started = ref false in
    let preempt_cycles () =
      match chaos with Some c -> c.hc_preempt () | None -> 0
    in
    (* GET loop: retrieve every faulting store in interface order.
       Normally one round suffices (the FSB is fully populated before
       the handler runs); under FSB-overflow stall the handler is
       invoked early and polls while the stalled FSBC drain completes —
       each round's GETs free ring entries.  A chaos timer interrupt
       may preempt the handler between rounds (extra cycles). *)
    let rec poll () =
      Engine.schedule_in engine
        (costs.Ise_core.Batch.dispatch + preempt_cycles ())
        (fun () ->
          if Ise_sim.Core.is_terminated core then ()
          else begin
            if not !started then begin
              started := true;
              span_b "handler" core_id
            end;
            let drained = Ise_core.Fsb.os_drain_all fsb in
            let drained =
              if !bug_drop_get && drained <> [] then
                List.filteri (fun i _ -> i < List.length drained - 1) drained
              else drained
            in
            List.iter
              (fun record ->
                inst "GET" core_id
                  ~args:
                    [ ("seq", Ise_telemetry.Json.Int record.Ise_core.Fault.seq);
                      ("addr",
                       Ise_telemetry.Json.Int record.Ise_core.Fault.addr) ];
                Machine.trace_event machine
                  (Ise_core.Contract.Get
                     { core = core_id; cycle = Engine.now engine; record }))
              drained;
            got := List.rev_append drained !got;
            if Ise_sim.Core.in_exception_drain core
               || Ise_core.Fsb.pending fsb > 0
            then poll ()
            else proceed (List.rev !got)
          end)
    and proceed records =
        let n = List.length records in
        Ise_util.Stats.add_int stats.batch_sizes n;
        stats.stores_handled <- stats.stores_handled + n;
        let faulting = List.filter is_faulting records in
        stats.faulting_handled <- stats.faulting_handled + List.length faulting;
        let irrecoverable =
          List.exists
            (fun r ->
              Ise_core.Fault.severity_of r.Ise_core.Fault.code
              = Ise_core.Fault.Irrecoverable)
            faulting
        in
        if irrecoverable then begin
          (* terminate the application; the faulting stores are
             discarded (§4.1) *)
          stats.terminated_cores <- stats.terminated_cores + 1;
          span_e "handler" core_id;
          Ise_sim.Core.terminate core
        end
        else begin
          (* resolve all faults; major faults issue batched IO whose
             latencies overlap within the single invocation (§5.3) *)
          let resolve_cycles = ref 0 and ios = ref 0 in
          List.iter
            (fun r ->
              let c, io = resolve_one machine config r in
              resolve_cycles := !resolve_cycles + c;
              ios := !ios + io)
            faulting;
          stats.io_requests <- stats.io_requests + !ios;
          let io_wait =
            if !ios = 0 then 0
            else
              match config.policy with
              | Clear_einject -> 0
              | Demand_paging { io_latency; _ }
              | Midgard_paging { io_latency; _ } ->
                (* batched IO: one (overlapped) latency per invocation
                   plus a small per-request issue cost *)
                io_latency + (50 * !ios)
          in
          stats.apply_cycles <- stats.apply_cycles + !resolve_cycles;
          stats.other_cycles <-
            stats.other_cycles + costs.Ise_core.Batch.dispatch + io_wait;
          span_b "resolve" core_id;
          Engine.schedule_in engine
            (max 1 (!resolve_cycles + io_wait))
            (fun () ->
              span_e "resolve" core_id;
              span_b "apply" core_id;
              let apply_start = Engine.now engine in
              let finish () =
                if Ise_sim.Core.is_terminated core then ()
                else begin
                  stats.apply_cycles <-
                    stats.apply_cycles + (Engine.now engine - apply_start);
                  span_e "apply" core_id;
                  inst "RESOLVE" core_id;
                  Machine.trace_event machine
                    (Ise_core.Contract.Resolve
                       { core = core_id; cycle = Engine.now engine });
                  stats.other_cycles <-
                    stats.other_cycles + costs.Ise_core.Batch.os_other;
                  Engine.schedule_in engine costs.Ise_core.Batch.os_other
                    (fun () ->
                      span_e "handler" core_id;
                      Ise_sim.Core.resume core)
                end
              in
              (* A batched clean store may target a page that never
                 faulted before but is marked in the device: the
                 kernel's own store would take an imprecise exception.
                 Per §5.4 the OS contains this by resolving inline and
                 retrying once. *)
              let apply_one (r : Ise_core.Fault.record) k =
                let attempts = ref 0 in
                let rec send () =
                  incr attempts;
                  Memsys.request (Machine.mem machine) ~core:core_id
                    ~addr:r.Ise_core.Fault.addr
                    (Memsys.Write
                       { data = r.Ise_core.Fault.data;
                         mask = r.Ise_core.Fault.byte_mask })
                    (fun result ->
                      if Ise_sim.Core.is_terminated core then ()
                      else
                        match result with
                        | Memsys.Value _ ->
                          inst "APPLY" core_id
                            ~args:
                              [ ("seq",
                                 Ise_telemetry.Json.Int r.Ise_core.Fault.seq);
                                ("addr",
                                 Ise_telemetry.Json.Int r.Ise_core.Fault.addr) ];
                          Machine.trace_event machine
                            (Ise_core.Contract.Apply
                               { core = core_id; cycle = Engine.now engine;
                                 record = r });
                          k ()
                        | Memsys.Denied _ when !attempts <= max_apply_retries ->
                          (* the handler's own S_OS store faulted: resolve
                             inline and retry with (optional) exponential
                             backoff — a bounded nested invocation (§5.4) *)
                          stats.apply_retries <- stats.apply_retries + 1;
                          let c, io = resolve_one machine config r in
                          stats.apply_cycles <- stats.apply_cycles + c;
                          stats.io_requests <- stats.io_requests + io;
                          let backoff =
                            apply_backoff * (1 lsl min 16 (!attempts - 1))
                          in
                          Engine.schedule_in engine (max 1 (c + backoff)) send
                        | Memsys.Denied _ -> (
                          match on_apply_exhausted with
                          | `Fail ->
                            failwith
                              "Handler: S_OS denied twice — the FSB pages \
                               must be pinned (§5.4)"
                          | `Terminate ->
                            (* double fault with retries exhausted:
                               terminate the application gracefully *)
                            stats.terminated_cores <-
                              stats.terminated_cores + 1;
                            span_e "apply" core_id;
                            span_e "handler" core_id;
                            Ise_sim.Core.terminate core))
                in
                send ()
              in
              match (Machine.cfg machine).Ise_sim.Config.consistency with
              | Ise_model.Axiom.Wc ->
                (* WC does not mandate any order among the applied
                   stores (§4.4): overlap the S_OS transactions *)
                let remaining = ref (List.length records) in
                if !remaining = 0 then finish ()
                else
                  List.iter
                    (fun r ->
                      apply_one r (fun () ->
                          decr remaining;
                          if !remaining = 0 then finish ()))
                    records
              | Ise_model.Axiom.Sc | Ise_model.Axiom.Pc ->
                (* interface order: each S_OS completes before the
                   next is issued *)
                let rec apply_loop = function
                  | [] -> finish ()
                  | r :: rest -> apply_one r (fun () -> apply_loop rest)
                in
                apply_loop records)
        end
    in
    poll ()
  in
  let on_precise ~core ~addr ~code ~retry =
    ignore core;
    ignore code;
    stats.precise_faults <- stats.precise_faults + 1;
    let cost =
      costs.Ise_core.Batch.dispatch + costs.Ise_core.Batch.resolve_per_store
      + costs.Ise_core.Batch.os_other
    in
    Engine.schedule_in engine cost (fun () ->
        Einject.clear_faulting (Machine.einject machine) addr;
        (match config.policy with
         | Demand_paging { table; _ } -> ignore (Page_table.resolve table addr)
         | Midgard_paging { midgard; _ } -> Midgard.map_page midgard addr
         | Clear_einject -> ());
        retry ())
  in
  Machine.set_hooks machine { Machine.on_imprecise; on_precise };
  stats
