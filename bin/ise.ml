(* ise: command-line front end for the imprecise-store-exceptions
   library — run litmus tests, workloads, and microbenchmarks without
   writing OCaml. *)

open Cmdliner
open Ise_sim

let model_conv =
  let parse = function
    | "sc" -> Ok Ise_model.Axiom.Sc
    | "pc" | "tso" -> Ok Ise_model.Axiom.Pc
    | "wc" | "rvwmo" -> Ok Ise_model.Axiom.Wc
    | s -> Error (`Msg (Printf.sprintf "unknown model %S (sc|pc|wc)" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with
       | Ise_model.Axiom.Sc -> "sc"
       | Ise_model.Axiom.Pc -> "pc"
       | Ise_model.Axiom.Wc -> "wc")
  in
  Arg.conv (parse, print)

let model_arg =
  Arg.(value & opt model_conv Ise_model.Axiom.Wc
       & info [ "m"; "model" ] ~docv:"MODEL" ~doc:"Consistency model (sc|pc|wc).")

(* ------------------------------------------------------------------ *)
(* parallelism plumbing                                                *)

let jobs_arg =
  Arg.(value & opt int (Ise_pool.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Parallel worker processes (default: detected core count; 1 \
                 runs in-process with no fork).")

(* ------------------------------------------------------------------ *)
(* telemetry plumbing                                                  *)

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file (open in Perfetto or \
                 chrome://tracing).")

let telemetry_out_arg ~doc =
  Arg.(value & opt (some string) None
       & info [ "telemetry-out" ] ~docv:"FILE" ~doc)

let write_file path contents =
  match open_out path with
  | oc ->
    output_string oc contents;
    close_out oc
  | exception Sys_error msg ->
    Printf.eprintf "cannot write trace: %s\n" msg;
    exit 1

(* every JSON artifact carries the run_id/git_rev stamp so traces,
   telemetry dumps, and ledger entries from one run are joinable *)
let write_trace sink path =
  let json =
    Ise_telemetry.Trace.to_chrome_json
      ~meta:(Ise_obs.Runinfo.stamp ())
      (Ise_telemetry.Sink.trace sink)
  in
  write_file path (Ise_telemetry.Json.to_string json);
  Printf.eprintf "wrote trace to %s\n%!" path

let write_telemetry sink path =
  let json =
    Ise_telemetry.Json.Obj
      (Ise_obs.Runinfo.stamp ()
      @ [ ( "metrics",
            Ise_telemetry.Registry.to_json
              (Ise_telemetry.Sink.registry sink) ) ])
  in
  write_file path (Ise_telemetry.Json.to_string_pretty json);
  Printf.eprintf "wrote telemetry to %s\n%!" path

(* a sink is created when any output flag needs one *)
let sink_for = function
  | None, None -> None
  | _ -> Some (Ise_telemetry.Sink.create ())

let write_outputs sink ~trace_out ~telemetry_out =
  match sink with
  | None -> ()
  | Some sink ->
    Option.iter (write_trace sink) trace_out;
    Option.iter (write_telemetry sink) telemetry_out

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    exit 1

(* ------------------------------------------------------------------ *)
(* observability plumbing                                              *)

let journal_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "journal-dir" ] ~docv:"DIR"
           ~doc:"Keep per-worker flight-recorder crash journals in this \
                 directory (forked pool workers only; journals of \
                 cleanly-exited workers are removed).")

let ledger_arg =
  Arg.(value & opt (some string) None
       & info [ "ledger" ] ~docv:"FILE"
           ~doc:"Append a run record (metrics, git rev, seed) to this \
                 newline-JSON ledger, for later $(b,ise compare).")

let append_ledger ~path record =
  Ise_obs.Ledger.append ~path record;
  Printf.eprintf "appended %s/%s record to %s\n%!"
    record.Ise_obs.Ledger.l_kind record.Ise_obs.Ledger.l_label path

let meta_bool meta k default =
  match List.assoc_opt k meta with
  | Some "true" -> true
  | Some "false" -> false
  | _ -> default

(* Builds the machine for a GAP kernel run (shared by `gap` and
   `stats`). *)
let gap_machine kernel nodes degree inject =
  let rng = Ise_util.Rng.create 1 in
  let g = Ise_workload.Graph.power_law rng ~nodes ~avg_degree:degree in
  let base = Config.default.Config.einject_base in
  let tr =
    match kernel with
    | "bfs" -> Ise_workload.Gap.bfs g ~base ~src:0
    | "sssp" -> Ise_workload.Gap.sssp ~max_rounds:3 g ~base ~src:0
    | "bc" -> Ise_workload.Gap.bc g ~base ~sources:[ 0 ]
    | k ->
      Printf.eprintf "unknown kernel %S (bfs|sssp|bc)\n" k;
      exit 1
  in
  let m = Machine.create ~programs:[| Ise_workload.Gap.stream_of tr |] () in
  Machine.set_trace_enabled m false;
  let os = Ise_os.Handler.install m in
  if inject then Ise_workload.Gap.mark_faulting m tr;
  (g, tr, m, os)

(* ------------------------------------------------------------------ *)
(* litmus                                                              *)

let litmus_cmd =
  let run list_only name seeds model no_faults jobs trace_out telemetry_out =
    if list_only then begin
      List.iter
        (fun t ->
          Printf.printf "%-16s %s\n" t.Ise_litmus.Lit_test.name
            t.Ise_litmus.Lit_test.doc)
        Ise_litmus.Library.all;
      0
    end
    else begin
      let tests =
        match name with
        | Some n -> (
          match
            List.find_opt
              (fun t -> t.Ise_litmus.Lit_test.name = n)
              Ise_litmus.Library.all
          with
          | Some t -> [| t |]
          | None ->
            Printf.eprintf "unknown test %S (see --list)\n" n;
            exit 1)
        | None -> Array.of_list Ise_litmus.Library.all
      in
      let cfg = Config.with_consistency model Config.default in
      (* one job per test; the worker returns the fully-formatted line
         so -j N output is byte-identical to -j 1 *)
      let run_one t =
        let r =
          Ise_litmus.Lit_run.run ~seeds ~inject_faults:(not no_faults) ~cfg t
        in
        ( Ise_litmus.Lit_run.summary_line r,
          r.Ise_litmus.Lit_run.pass && r.Ise_litmus.Lit_run.contract_ok )
      in
      let ok = ref true in
      let sink = sink_for (trace_out, telemetry_out) in
      let _outcomes, _stats =
        Ise_pool.Pool.map ~jobs ?telemetry:sink
          ~on_result:(fun i outcome ->
            match outcome with
            | Ise_pool.Pool.Done (line, pass) ->
              print_endline line;
              if not pass then ok := false
            | Ise_pool.Pool.Failed err ->
              Printf.printf "%-16s POOL FAILURE: %s\n"
                tests.(i).Ise_litmus.Lit_test.name
                (Ise_pool.Pool.error_to_string err);
              ok := false
            | Ise_pool.Pool.Split _ ->
              (* no bisect function is passed here *)
              assert false)
          run_one tests
      in
      write_outputs sink ~trace_out ~telemetry_out;
      if !ok then 0 else 1
    end
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List available tests.")
  in
  let name_arg =
    Arg.(value & opt (some string) None
         & info [ "t"; "test" ] ~docv:"NAME" ~doc:"Run a single test.")
  in
  let seeds_arg =
    Arg.(value & opt int 20 & info [ "seeds" ] ~doc:"Perturbed runs per test.")
  in
  let nofaults_arg =
    Arg.(value & flag & info [ "no-faults" ] ~doc:"Disable error injection.")
  in
  Cmd.v
    (Cmd.info "litmus" ~doc:"Run litmus tests on the simulated machine (§6.3)")
    Term.(const run $ list_arg $ name_arg $ seeds_arg $ model_arg $ nofaults_arg
          $ jobs_arg $ trace_out_arg
          $ telemetry_out_arg
              ~doc:"Write the pool metrics registry (pool/* counters) as \
                    JSON.")

(* ------------------------------------------------------------------ *)
(* mbench                                                              *)

let mbench_cmd =
  let run stores batching =
    let r = Ise_workload.Mbench.run ~stores ~batching () in
    Printf.printf
      "stores=%d batching=%b\n\
       faulting stores handled: %d in %d invocations (avg batch %.1f)\n\
       cycles per faulting store: uarch=%.1f apply=%.1f other=%.1f total=%.1f\n"
      stores batching r.Ise_workload.Mbench.faulting_stores
      r.Ise_workload.Mbench.invocations r.Ise_workload.Mbench.avg_batch
      r.Ise_workload.Mbench.uarch_per_store r.Ise_workload.Mbench.apply_per_store
      r.Ise_workload.Mbench.other_per_store r.Ise_workload.Mbench.total_per_store;
    0
  in
  let stores_arg =
    Arg.(value & opt int 2000 & info [ "stores" ] ~doc:"Number of stores.")
  in
  let batching_arg =
    Arg.(value & flag & info [ "batching" ] ~doc:"Stream stores back-to-back.")
  in
  Cmd.v
    (Cmd.info "mbench" ~doc:"Figure 5 microbenchmark: per-store overhead")
    Term.(const run $ stores_arg $ batching_arg)

(* ------------------------------------------------------------------ *)
(* gap                                                                 *)

let gap_cmd =
  let run kernel nodes degree inject trace_out telemetry_out =
    let g, tr, m, os = gap_machine kernel nodes degree inject in
    let sink = sink_for (trace_out, telemetry_out) in
    Option.iter (Machine.attach_telemetry m) sink;
    Machine.run m;
    if sink <> None then Machine.record_final_stats m;
    write_outputs sink ~trace_out ~telemetry_out;
    let cs = Core.stats (Machine.core m 0) in
    Printf.printf
      "%s on %d nodes / %d edges: %d instrs in %d cycles (IPC %.2f)\n\
       exceptions: %d imprecise (%d faulting stores), %d precise\n\
       results verified: %b\n"
      tr.Ise_workload.Gap.name (Ise_workload.Graph.nodes g)
      (Ise_workload.Graph.nedges g) cs.Core.retired (Machine.cycles m)
      (float_of_int cs.Core.retired /. float_of_int (Machine.cycles m))
      cs.Core.imprecise_exceptions cs.Core.faulting_stores
      os.Ise_os.Handler.precise_faults
      (Ise_workload.Gap.verify m tr);
    0
  in
  let kernel_arg =
    Arg.(value & opt string "bfs"
         & info [ "k"; "kernel" ] ~docv:"KERNEL" ~doc:"bfs|sssp|bc")
  in
  let nodes_arg =
    Arg.(value & opt int 2000 & info [ "nodes" ] ~doc:"Graph nodes.")
  in
  let degree_arg =
    Arg.(value & opt int 8 & info [ "degree" ] ~doc:"Average degree.")
  in
  let inject_arg =
    Arg.(value & flag & info [ "inject" ] ~doc:"Mark all graph memory faulting.")
  in
  Cmd.v
    (Cmd.info "gap" ~doc:"Run a GAP kernel trace on the machine (§6.5)")
    Term.(const run $ kernel_arg $ nodes_arg $ degree_arg $ inject_arg
          $ trace_out_arg
          $ telemetry_out_arg
              ~doc:"Write the machine's metrics registry as JSON.")

(* ------------------------------------------------------------------ *)
(* stats                                                               *)

let stats_cmd =
  let run kernel nodes degree no_inject format prom trace_out telemetry_out
      sample_period =
    let format = if prom then "prom" else format in
    if sample_period <= 0 then begin
      Printf.eprintf "--sample-period must be positive\n";
      exit 1
    end;
    let _g, _tr, m, _os = gap_machine kernel nodes degree (not no_inject) in
    let sink = Ise_telemetry.Sink.create () in
    Machine.attach_telemetry ~sample_period m sink;
    Machine.run m;
    Machine.record_final_stats m;
    let reg = Ise_telemetry.Sink.registry sink in
    (match format with
     | "text" -> Format.printf "%a@." Ise_telemetry.Registry.pp_text reg
     | "csv" -> print_string (Ise_telemetry.Registry.to_csv reg)
     | "json" ->
       print_endline
         (Ise_telemetry.Json.to_string_pretty
            (Ise_telemetry.Registry.to_json reg))
     | "prom" -> print_string (Ise_telemetry.Registry.to_prometheus reg)
     | f ->
       Printf.eprintf "unknown format %S (text|csv|json|prom)\n" f;
       exit 1);
    (match trace_out with
     | Some path -> write_trace sink path
     | None -> ());
    (match telemetry_out with
     | Some path -> write_telemetry sink path
     | None -> ());
    0
  in
  let kernel_arg =
    Arg.(value & opt string "bfs"
         & info [ "k"; "kernel" ] ~docv:"KERNEL" ~doc:"bfs|sssp|bc")
  in
  let nodes_arg =
    Arg.(value & opt int 2000 & info [ "nodes" ] ~doc:"Graph nodes.")
  in
  let degree_arg =
    Arg.(value & opt int 8 & info [ "degree" ] ~doc:"Average degree.")
  in
  let noinject_arg =
    Arg.(value & flag
         & info [ "no-inject" ]
             ~doc:"Do not mark graph memory faulting (no exception episodes).")
  in
  let format_arg =
    Arg.(value & opt string "text"
         & info [ "f"; "format" ] ~docv:"FMT"
             ~doc:"text|csv|json|prom (prom = Prometheus text exposition)")
  in
  let period_arg =
    Arg.(value & opt int 200
         & info [ "sample-period" ] ~docv:"CYCLES"
             ~doc:"Probe sampling period in cycles.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a GAP kernel with full telemetry and dump the metrics \
             registry (optionally a Perfetto trace)")
    Term.(const run $ kernel_arg $ nodes_arg $ degree_arg $ noinject_arg
          $ format_arg
          $ Arg.(value & flag
                 & info [ "prom" ]
                     ~doc:"Shorthand for $(b,--format prom): Prometheus \
                           text exposition, scrapable as a node exporter \
                           dump.")
          $ trace_out_arg
          $ telemetry_out_arg
              ~doc:"Also write the (stamped) metrics registry as a JSON \
                    file, independent of --format."
          $ period_arg)

(* ------------------------------------------------------------------ *)
(* mix                                                                 *)

let mix_cmd =
  let run workload length cores model =
    let p =
      try Ise_workload.Mix.find workload
      with Not_found ->
        Printf.eprintf "unknown workload %S; available: %s\n" workload
          (String.concat ", "
             (List.map (fun p -> p.Ise_workload.Mix.name) Ise_workload.Mix.table3));
        exit 1
    in
    let mk () =
      Ise_workload.Mix.multicore_streams ~seed:5 ~length_per_core:length ~cores p
    in
    let cfg =
      match model with
      | Ise_model.Axiom.Sc ->
        { (Config.with_consistency model Config.default) with
          Config.sc_speculative_loads = true }
      | _ -> Config.with_consistency model Config.default
    in
    let r = Ise_aso.Aso_core.run ~cfg ~programs:mk () in
    Printf.printf
      "%s on %d cores x %d instrs under %s: %d cycles, IPC %.3f\n\
       SB occupancy watermark %d, outstanding-drain watermark %d\n"
      workload cores length
      (match model with
       | Ise_model.Axiom.Sc -> "SC"
       | Ise_model.Axiom.Pc -> "PC"
       | Ise_model.Axiom.Wc -> "WC")
      r.Ise_aso.Aso_core.cycles r.Ise_aso.Aso_core.ipc
      r.Ise_aso.Aso_core.sb_occupancy_watermark
      r.Ise_aso.Aso_core.sb_inflight_watermark;
    0
  in
  let workload_arg =
    Arg.(value & opt string "BFS" & info [ "w"; "workload" ] ~docv:"NAME"
         ~doc:"Table 3 workload name.")
  in
  let length_arg =
    Arg.(value & opt int 30_000 & info [ "length" ] ~doc:"Instructions per core.")
  in
  let cores_arg = Arg.(value & opt int 4 & info [ "cores" ] ~doc:"Cores.") in
  Cmd.v
    (Cmd.info "mix" ~doc:"Run a Table 3 instruction mix and report IPC")
    Term.(const run $ workload_arg $ length_arg $ cores_arg $ model_arg)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)

let explain_cmd =
  let run name model =
    let test =
      match
        List.find_opt (fun t -> t.Ise_litmus.Lit_test.name = name)
          Ise_litmus.Library.all
      with
      | Some t -> t
      | None ->
        Printf.eprintf "unknown test %S (see `ise litmus --list`)\n" name;
        exit 1
    in
    let cfg = { Ise_model.Axiom.model; faults = Ise_model.Axiom.Precise } in
    Format.printf "%a@." Ise_litmus.Lit_test.pp test;
    let allowed = Ise_model.Check.allowed cfg test.Ise_litmus.Lit_test.threads in
    Format.printf "allowed outcomes under %s:@." (Ise_model.Axiom.name cfg);
    Ise_model.Outcome.Set.iter
      (fun o -> Format.printf "  %a@." Ise_model.Outcome.pp o)
      allowed;
    (* explain the test's own condition outcome *)
    let sat =
      Ise_model.Outcome.Set.filter
        (Ise_litmus.Lit_test.cond_holds test.Ise_litmus.Lit_test.cond)
        allowed
    in
    if not (Ise_model.Outcome.Set.is_empty sat) then begin
      Format.printf "the test's interesting outcome is ALLOWED; a witness:@.";
      match
        Ise_model.Check.explain cfg test.Ise_litmus.Lit_test.threads
          (Ise_model.Outcome.Set.choose sat)
      with
      | Ise_model.Check.Allowed_by witness -> print_endline witness
      | _ -> ()
    end
    else begin
      (* reconstruct a concrete forbidden target from the condition by
         taking any unreachable-or-forbidden completion: try every
         outcome of the weakest model *)
      let wc_all =
        Ise_model.Check.allowed
          { Ise_model.Axiom.model = Ise_model.Axiom.Wc;
            faults = Ise_model.Axiom.Split_stream }
          test.Ise_litmus.Lit_test.threads
      in
      let candidates =
        Ise_model.Outcome.Set.filter
          (Ise_litmus.Lit_test.cond_holds test.Ise_litmus.Lit_test.cond)
          wc_all
      in
      if Ise_model.Outcome.Set.is_empty candidates then
        print_endline
          "the interesting outcome is FORBIDDEN (not producible by any \
           candidate execution)"
      else begin
        let target = Ise_model.Outcome.Set.choose candidates in
        Format.printf "the outcome %a is FORBIDDEN; the cycle:@."
          Ise_model.Outcome.pp target;
        match Ise_model.Check.explain cfg test.Ise_litmus.Lit_test.threads target with
        | Ise_model.Check.Forbidden_cycle cycle ->
          List.iter (fun e -> Printf.printf "  %s ->\n" e) cycle
        | Ise_model.Check.Unreachable -> print_endline "  (unreachable)"
        | Ise_model.Check.Allowed_by _ -> print_endline "  (allowed?!)"
      end
    end;
    0
  in
  let name_arg =
    Arg.(required & opt (some string) None
         & info [ "t"; "test" ] ~docv:"NAME" ~doc:"Litmus test to explain.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Why a litmus outcome is allowed or forbidden (herd-style cycles)")
    Term.(const run $ name_arg $ model_arg)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)

let corpus_arg =
  Arg.(value & opt string "corpus"
       & info [ "corpus" ] ~docv:"DIR" ~doc:"Regression-corpus directory.")

let fuzz_seeds_arg =
  Arg.(value & opt int 10
       & info [ "seeds-per-test" ] ~docv:"N"
           ~doc:"Perturbed operational runs per test and variant.")

let inject_bug_arg =
  Arg.(value & flag
       & info [ "inject-bug" ]
           ~doc:"Self-test: deliberately break the axiomatic oracle \
                 (strict ppo) before running, to prove the harness finds, \
                 shrinks, and records the resulting counterexamples.")

let with_injected_bug inject f =
  if inject then Ise_model.Axiom.fuzz_unsound_strict_ppo := true;
  Fun.protect
    ~finally:(fun () -> Ise_model.Axiom.fuzz_unsound_strict_ppo := false)
    f

let variants_of_spec spec =
  match spec with
  | "all" -> Ok Ise_fuzz.Campaign.all_variants
  | "base" -> Ok [ Ise_fuzz.Campaign.base_variant ]
  | "chaos" -> Ok Ise_fuzz.Campaign.chaos_variants
  | spec ->
    let names = String.split_on_char ',' spec in
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
        match Ise_fuzz.Campaign.variant_named (String.trim n) with
        | Some v -> resolve (v :: acc) rest
        | None -> Error n)
    in
    resolve [] names

let shard_sizing_conv =
  let parse = function
    | "auto" -> Ok `Auto
    | "formula" -> Ok `Formula
    | s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> Ok (`Fixed n)
      | _ ->
        Error (`Msg (Printf.sprintf "bad shard size %S (auto|formula|N)" s)))
  in
  let print ppf = function
    | `Auto -> Format.pp_print_string ppf "auto"
    | `Formula -> Format.pp_print_string ppf "formula"
    | `Fixed n -> Format.pp_print_int ppf n
  in
  Arg.conv (parse, print)

let shard_size_arg =
  Arg.(value & opt shard_sizing_conv `Formula
       & info [ "shard-size" ] ~docv:"SPEC"
           ~doc:"Tests per parallel shard: 'formula' (count/(jobs*4), the \
                 default), 'auto' (a pilot round calibrates shard size from \
                 the pool's per-worker latency histograms), or a fixed \
                 count.  All policies produce byte-identical reports.")

let shard_spec_conv =
  let parse s =
    match Ise_fabric.Plan.parse_shard s with
    | Ok kn -> Ok kn
    | Error msg -> Error (`Msg msg)
  in
  let print ppf (k, n) = Format.fprintf ppf "%d/%d" (k + 1) n in
  Arg.conv (parse, print)

let shard_arg ~what =
  Arg.(value & opt (some shard_spec_conv) None
       & info [ "shard" ] ~docv:"K/N"
           ~doc:
             (Printf.sprintf
                "Run only shard K of N (1-based, CI-matrix style): the \
                 contiguous %s range $(b,Ise_fabric.Plan.shard_range) \
                 assigns to shard K.  The union of all N shards of the same \
                 seed is exactly the unsharded run."
                what))

let fuzz_run_cmd =
  let run seed count seeds_per_test variants_spec corpus_dir no_save inject
      trace_out telemetry_out jobs shard_sizing journal_dir ledger shard =
    let variants =
      match variants_of_spec variants_spec with
      | Ok vs -> vs
      | Error n ->
        Printf.eprintf
          "unknown variant %S; valid names:\n  %s\n" n
          (String.concat "\n  "
             (List.map Ise_fuzz.Campaign.variant_name
                Ise_fuzz.Campaign.all_variants));
        exit 1
    in
    let sink = sink_for (trace_out, telemetry_out) in
    let range =
      Option.map
        (fun (k, n) -> Ise_fabric.Plan.shard_range ~count ~shards:n k)
        shard
    in
    let report =
      with_injected_bug inject (fun () ->
          Ise_fuzz.Campaign.run ~count ~seeds_per_test ~variants ~jobs
            ~shard_sizing ?journal_dir ?telemetry:sink ~log:prerr_endline
            ?range ~seed ())
    in
    write_outputs sink ~trace_out ~telemetry_out;
    (match ledger with
     | None -> ()
     | Some path ->
       append_ledger ~path
         (Ise_obs.Ledger.make ~kind:"fuzz" ~label:variants_spec ~seed
            ~config:
              (Printf.sprintf "count=%d seeds_per_test=%d jobs-independent"
                 count seeds_per_test)
            [ ("tests", float_of_int report.Ise_fuzz.Campaign.r_tests);
              ("checks", float_of_int report.Ise_fuzz.Campaign.r_checks);
              ( "failures",
                float_of_int
                  (List.length report.Ise_fuzz.Campaign.r_failures) );
              ( "lost_tests",
                float_of_int report.Ise_fuzz.Campaign.r_lost_tests )
            ]));
    Printf.printf "seed %d: %d tests, %d checks, %d failure(s)\n"
      report.Ise_fuzz.Campaign.r_seed report.Ise_fuzz.Campaign.r_tests
      report.Ise_fuzz.Campaign.r_checks
      (List.length report.Ise_fuzz.Campaign.r_failures);
    if report.Ise_fuzz.Campaign.r_lost_tests > 0 then
      Printf.eprintf "warning: %d test(s) lost to failed pool shards\n%!"
        report.Ise_fuzz.Campaign.r_lost_tests;
    List.iter
      (fun f ->
        Format.printf "@.%s under %s [%s]: %s@.%a@."
          f.Ise_fuzz.Campaign.f_test.Ise_litmus.Lit_test.name
          (Ise_fuzz.Campaign.variant_name f.Ise_fuzz.Campaign.f_variant)
          (Ise_fuzz.Campaign.kind_name f.Ise_fuzz.Campaign.f_kind)
          f.Ise_fuzz.Campaign.f_detail Ise_litmus.Lit_test.pp
          f.Ise_fuzz.Campaign.f_shrunk;
        if not no_save then begin
          let path =
            Ise_fuzz.Corpus.save ~dir:corpus_dir
              (Ise_fuzz.Campaign.entry_of_failure ~seed f)
          in
          Printf.printf "replay artifact: %s\n" path
        end)
      report.Ise_fuzz.Campaign.r_failures;
    if
      report.Ise_fuzz.Campaign.r_failures = []
      && report.Ise_fuzz.Campaign.r_lost_tests = 0
    then 0
    else 1
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")
  in
  let count_arg =
    Arg.(value & opt int 100
         & info [ "count" ] ~docv:"N" ~doc:"Generated tests.")
  in
  let variants_arg =
    Arg.(value & opt string "all"
         & info [ "variants" ] ~docv:"SPEC"
             ~doc:"Lattice variants to sweep: 'all', 'base', 'chaos' (the \
                   fault-injection points), or a comma-separated list of \
                   variant names.")
  in
  let nosave_arg =
    Arg.(value & flag
         & info [ "no-save" ] ~doc:"Do not write failure artifacts.")
  in
  let telemetry_out_arg =
    Arg.(value & opt (some string) None
         & info [ "telemetry-out" ] ~docv:"FILE"
             ~doc:"Write the final metrics registry (fuzz/* and pool/* \
                   counters) as JSON.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a differential fuzzing campaign over the config lattice")
    Term.(const run $ seed_arg $ count_arg $ fuzz_seeds_arg $ variants_arg
          $ corpus_arg $ nosave_arg $ inject_bug_arg $ trace_out_arg
          $ telemetry_out_arg $ jobs_arg $ shard_size_arg $ journal_dir_arg
          $ ledger_arg $ shard_arg ~what:"test")

let fuzz_replay_cmd =
  let run corpus_dir files seeds inject =
    let entries =
      match files with
      | [] -> Ise_fuzz.Corpus.load_dir corpus_dir
      | fs -> List.map (fun f -> (f, Ise_fuzz.Corpus.load_file f)) fs
    in
    if entries = [] then begin
      Printf.eprintf "no corpus entries under %s\n" corpus_dir;
      exit 1
    end;
    let failed = ref 0 in
    with_injected_bug inject (fun () ->
        List.iter
          (fun (path, entry) ->
            match entry with
            | Error msg ->
              incr failed;
              Printf.printf "%-40s PARSE ERROR: %s\n%!" path msg
            | Ok e -> (
              match Ise_fuzz.Campaign.replay ~seeds e with
              | Ok () -> Printf.printf "%-40s ok\n%!" path
              | Error msg ->
                incr failed;
                Printf.printf "%-40s FAIL: %s\n%!" path msg))
          entries);
    if !failed = 0 then 0 else 1
  in
  let files_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"FILE" ~doc:"Artifacts to replay (default: --corpus).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay corpus artifacts and compare with their expected verdicts")
    Term.(const run $ corpus_arg $ files_arg $ fuzz_seeds_arg $ inject_bug_arg)

let fuzz_shrink_cmd =
  let run file seeds inject =
    match Ise_fuzz.Corpus.load_file file with
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      1
    | Ok e -> (
      match Ise_fuzz.Campaign.variant_named e.Ise_fuzz.Corpus.e_variant with
      | None ->
        Printf.eprintf "unknown variant %S\n" e.Ise_fuzz.Corpus.e_variant;
        1
      | Some v ->
        with_injected_bug inject (fun () ->
            match
              Ise_fuzz.Campaign.failing_check ~seeds v
                e.Ise_fuzz.Corpus.e_test
            with
            | None ->
              Printf.printf "nothing to shrink: every check passes\n";
              0
            | Some (kind, detail) ->
              Printf.printf "shrinking %s failure (%s)...\n%!"
                (Ise_fuzz.Campaign.kind_name kind)
                detail;
              let shrunk, steps =
                Ise_fuzz.Shrink.minimize
                  ~keeps_failing:(fun t ->
                    match Ise_fuzz.Campaign.failing_check ~seeds v t with
                    | Some (k, _) -> k = kind
                    | None -> false)
                  e.Ise_fuzz.Corpus.e_test
              in
              Format.printf "%d shrink step(s):@.%a@." steps
                Ise_litmus.Lit_test.pp shrunk;
              print_string
                (Ise_fuzz.Corpus.to_string
                   { e with Ise_fuzz.Corpus.e_test = shrunk });
              0))
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Artifact to minimize.")
  in
  Cmd.v
    (Cmd.info "shrink" ~doc:"Re-minimize a corpus artifact in place")
    Term.(const run $ file_arg $ fuzz_seeds_arg $ inject_bug_arg)

let fuzz_corpus_status_cmd =
  let run corpus_dir seeds cached store_dir =
    let entries = Ise_fuzz.Corpus.load_dir corpus_dir in
    Printf.printf "%d entr%s under %s\n" (List.length entries)
      (if List.length entries = 1 then "y" else "ies")
      corpus_dir;
    (* with --cached, replays route through the result store: a hit
       reuses the stored verdict, a miss replays and writes through *)
    let store =
      if cached then Some (Ise_serve.Store.open_ ~dir:store_dir ()) else None
    in
    let hits = ref 0 and misses = ref 0 in
    let replay e =
      match store with
      | None -> Ise_fuzz.Campaign.replay ~seeds e
      | Some store -> (
        let key = Ise_serve.Proto.replay_key e ~seeds in
        match
          Option.bind
            (Ise_serve.Store.find store key)
            Ise_serve.Proto.replay_payload_of_string
        with
        | Some r ->
          incr hits;
          r
        | None ->
          incr misses;
          let r = Ise_fuzz.Campaign.replay ~seeds e in
          Ise_serve.Store.add store key
            (Ise_serve.Proto.replay_payload_to_string r);
          r)
    in
    let failed = ref 0 in
    let parsed =
      List.filter_map
        (fun (path, e) ->
          match e with
          | Ok e ->
            let verdict =
              match replay e with
              | Ok () -> "replay-ok"
              | Error msg ->
                incr failed;
                "REPLAY FAIL: " ^ msg
            in
            Printf.printf "  %-32s %-24s %-18s expect-%-4s %s\n"
              (Filename.basename path) e.Ise_fuzz.Corpus.e_variant
              e.Ise_fuzz.Corpus.e_kind
              (match e.Ise_fuzz.Corpus.e_expect with
               | Ise_fuzz.Corpus.Must_pass -> "pass"
               | Ise_fuzz.Corpus.Must_fail -> "fail")
              verdict;
            Some e.Ise_fuzz.Corpus.e_test
          | Error msg ->
            incr failed;
            Printf.printf "  %-32s PARSE ERROR: %s\n" (Filename.basename path)
              msg;
            None)
        entries
    in
    Printf.printf "\nTable 6 relation coverage of the corpus:\n";
    List.iter
      (fun (cat, n) ->
        Printf.printf "  %-36s %d\n" (Ise_litmus.Classify.name cat) n)
      (Ise_litmus.Classify.coverage parsed);
    if cached then
      Printf.printf "\nresult store: %d hit(s), %d miss(es)\n" !hits !misses;
    (* non-zero on any parse or replay failure, so CI can gate on it *)
    if !failed = 0 then 0
    else begin
      Printf.printf "\n%d corpus entr%s failed\n" !failed
        (if !failed = 1 then "y" else "ies");
      1
    end
  in
  let cached_arg =
    Arg.(value & flag
         & info [ "cached" ]
             ~doc:"Route replays through the content-addressed result store \
                   and report hit/miss counts.")
  in
  let store_arg =
    Arg.(value & opt string ".ise-store"
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Result store directory (with $(b,--cached)).")
  in
  Cmd.v
    (Cmd.info "corpus-status"
       ~doc:"List corpus entries (replaying each) and their Table 6 relation \
             coverage; non-zero exit if any entry fails to parse or replay")
    Term.(const run $ corpus_arg $ fuzz_seeds_arg $ cached_arg $ store_arg)

let fuzz_seed_corpus_cmd =
  let run corpus_dir =
    List.iter
      (fun e ->
        let path = Ise_fuzz.Corpus.save ~dir:corpus_dir e in
        Printf.printf "wrote %s (%s)\n" path e.Ise_fuzz.Corpus.e_detail)
      (Ise_fuzz.Campaign.seed_entries ());
    0
  in
  Cmd.v
    (Cmd.info "seed-corpus"
       ~doc:"Write the hand-picked Table 6 seed entries into the corpus")
    Term.(const run $ corpus_arg)

let fuzz_cmd =
  Cmd.group
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: campaigns, replay, shrinking, corpus \
             (§6.3's observed ⊆ allowed at scale)")
    [ fuzz_run_cmd; fuzz_replay_cmd; fuzz_shrink_cmd; fuzz_corpus_status_cmd;
      fuzz_seed_corpus_cmd ]

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)

let with_handler_bug inject f =
  if inject then Ise_os.Handler.bug_drop_get := true;
  Fun.protect
    ~finally:(fun () -> Ise_os.Handler.bug_drop_get := false)
    f

let profiles_of_spec spec =
  match spec with
  | "all" -> Ok Ise_chaos.Profile.all
  | spec ->
    let names = String.split_on_char ',' spec in
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
        match Ise_chaos.Profile.named (String.trim n) with
        | Some p -> resolve (p :: acc) rest
        | None -> Error n)
    in
    resolve [] names

let chaos_inject_bug_arg =
  Arg.(value & flag
       & info [ "inject-bug" ]
           ~doc:"Self-test: deliberately make the OS handler drop one \
                 retrieved record per batch, to prove the watchdog catches \
                 the lost store and the campaign shrinks it to a replayable \
                 artifact.")

let chaos_run_cmd =
  let run seed trials cores stores profiles_spec telemetry_out trace_out
      snapshot_out journal_out journal_dir ledger corpus_dir no_save inject
      jobs shard workers spawn spawn_jobs =
    let profiles =
      match profiles_of_spec profiles_spec with
      | Ok ps -> ps
      | Error n ->
        Printf.eprintf "unknown chaos profile %S; valid names:\n  %s\n" n
          (String.concat "\n  "
             (List.map
                (fun p -> p.Ise_chaos.Profile.name)
                Ise_chaos.Profile.all));
        exit 1
    in
    let trials =
      match trials with Some t -> t | None -> List.length profiles
    in
    let fabric = workers <> [] || spawn > 0 in
    if fabric && shard <> None then begin
      Printf.eprintf
        "--shard slices one host's trials; fabric dispatch already shards \
         — use one or the other\n";
      exit 1
    end;
    if spawn > 0 && not Ise_fabric.Sim.available then begin
      Printf.eprintf "--spawn needs fork(), unavailable on this platform\n";
      exit 1
    end;
    with_handler_bug inject @@ fun () ->
    let parr = Array.of_list profiles in
    let sink = sink_for (trace_out, telemetry_out) in
    (* trial t: profile rotates, seed advances — (seed, profile) fully
       determines the run, so the whole command is byte-identical for a
       fixed seed whatever the worker count *)
    let specs =
      Array.init trials (fun t ->
          (seed + t, parr.(t mod Array.length parr).Ise_chaos.Profile.name))
    in
    (* --shard slices the *global* trial stream: each trial's (seed,
       profile) is fixed by its global index before slicing, so the
       union of all shards is byte-for-byte the unsharded run *)
    let specs, trials =
      match shard with
      | None -> (specs, trials)
      | Some (k, n) ->
        let lo, hi = Ise_fabric.Plan.shard_range ~count:trials ~shards:n k in
        (Array.sub specs lo (hi - lo), hi - lo)
    in
    let run_one ?telemetry (s, pname) =
      let profile = Option.get (Ise_chaos.Profile.named pname) in
      Ise_chaos.Chaos_run.run_stress ?telemetry ~ncores:cores
        ~stores_per_core:stores ~seed:s ~profile ()
    in
    let reports =
      if fabric then begin
        (* dispatch the trial stream across fabric workers: the worker
           re-derives each trial's (seed, profile) from the spec and
           its global index, so the merged report stream is
           byte-identical to the local run above *)
        if sink <> None then
          Printf.eprintf
            "note: fabric dispatch records no per-trial telemetry; use \
             -j 1 without --workers/--spawn for complete traces\n%!";
        let cs =
          Ise_chaos.Chaos_run.spec ~trials ~cores ~stores ~seed ~profiles ()
        in
        let sim =
          if spawn = 0 then None
          else
            let dir =
              Filename.concat
                (Filename.get_temp_dir_name ())
                (Printf.sprintf "ise-chaos-fabric-%d" (Unix.getpid ()))
            in
            Some (Ise_fabric.Sim.start ~jobs:spawn_jobs ~dir ~n:spawn ())
        in
        let workers =
          workers
          @ (match sim with None -> [] | Some s -> Ise_fabric.Sim.sockets s)
        in
        let cfg = Ise_fabric.Supervisor.default_config ~workers in
        let ranges, outcomes, stats =
          Ise_fabric.Supervisor.run cfg (Ise_fabric.Wire.Chaos cs)
        in
        (match sim with None -> () | Some s -> Ise_fabric.Sim.stop s);
        let reps, lost =
          Ise_fabric.Merge.merge_chaos ~log:prerr_endline ~ranges ~outcomes ()
        in
        Printf.eprintf
          "[fabric] %d worker(s), %d shard(s): %d dispatched, %d inline, \
           %d worker loss(es), %d rejoin(s), %.2fs\n%!"
          stats.Ise_fabric.Supervisor.f_workers
          stats.Ise_fabric.Supervisor.f_shards
          stats.Ise_fabric.Supervisor.f_dispatched
          stats.Ise_fabric.Supervisor.f_inline
          stats.Ise_fabric.Supervisor.f_worker_losses
          stats.Ise_fabric.Supervisor.f_rejoins
          stats.Ise_fabric.Supervisor.f_wall_s;
        if lost > 0 then
          Printf.eprintf "warning: %d trial(s) lost to failed shards\n%!"
            lost;
        reps
      end
      else if jobs <= 1 || not Ise_pool.Pool.fork_available then
        Array.map (fun spec -> run_one ?telemetry:sink spec) specs
      else begin
        if sink <> None then
          Printf.eprintf
            "note: at -j > 1, --telemetry-out/--trace-out record pool \
             metrics but not per-trial chaos counters; use -j 1 for \
             complete traces\n%!";
        let outcomes, _stats =
          Ise_pool.Pool.map ~jobs ?telemetry:sink ?journal_dir run_one specs
        in
        Array.mapi
          (fun i outcome ->
            match outcome with
            | Ise_pool.Pool.Done r -> r
            | Ise_pool.Pool.Failed err ->
              (* a crashed worker is re-run in-process: the report must
                 not depend on pool health *)
              Printf.eprintf "trial %d lost (%s); re-running in-process\n%!"
                i
                (Ise_pool.Pool.error_to_string err);
              run_one specs.(i)
            | Ise_pool.Pool.Split _ -> assert false)
          outcomes
      end
    in
    Array.iter
      (fun r -> Format.printf "%a@." Ise_chaos.Chaos_run.pp_report r)
      reports;
    let totals = Hashtbl.create 8 in
    let order = ref [] in
    Array.iter
      (fun r ->
        List.iter
          (fun (k, v) ->
            if not (Hashtbl.mem totals k) then order := k :: !order;
            Hashtbl.replace totals k
              (v + Option.value ~default:0 (Hashtbl.find_opt totals k)))
          r.Ise_chaos.Chaos_run.r_counts)
      reports;
    Printf.printf "== totals over %d trial(s) ==\n" trials;
    List.iter
      (fun k -> Printf.printf "%s=%d\n" k (Hashtbl.find totals k))
      (List.rev !order);
    let violations =
      Array.fold_left
        (fun a r -> a + List.length r.Ise_chaos.Chaos_run.r_violations)
        0 reports
    in
    Printf.printf "violations=%d\n" violations;
    write_outputs sink ~trace_out ~telemetry_out;
    (match snapshot_out with
     | Some path when violations > 0 ->
       let buf = Buffer.create 1024 in
       Array.iter
         (fun r ->
           match r.Ise_chaos.Chaos_run.r_snapshot with
           | Some s ->
             Buffer.add_string buf
               (Printf.sprintf "=== seed=%d profile=%s ===\n%s\n"
                  r.Ise_chaos.Chaos_run.r_seed
                  r.Ise_chaos.Chaos_run.r_profile s)
           | None -> ())
         reports;
       write_file path (Buffer.contents buf);
       Printf.eprintf "wrote watchdog snapshots to %s\n%!" path
     | _ -> ());
    (* the flight-recorder journal of the first violating trial (else
       the last trial) — feed it to `ise report --journal` *)
    (match journal_out with
     | Some path when Array.length reports > 0 ->
       let pick =
         match
           Array.find_opt
             (fun r -> r.Ise_chaos.Chaos_run.r_violations <> [])
             reports
         with
         | Some r -> r
         | None -> reports.(Array.length reports - 1)
       in
       write_file path pick.Ise_chaos.Chaos_run.r_journal;
       Printf.eprintf "wrote flight-recorder journal (seed %d, %s) to %s\n%!"
         pick.Ise_chaos.Chaos_run.r_seed pick.Ise_chaos.Chaos_run.r_profile
         path
     | _ -> ());
    (match ledger with
     | None -> ()
     | Some path ->
       (* offline episode-latency aggregates from every trial journal *)
       let ep_totals = ref [] in
       let episodes = ref 0 in
       let offline_anomalies = ref 0 in
       Array.iter
         (fun r ->
           match Ise_obs.Journal.parse r.Ise_chaos.Chaos_run.r_journal with
           | Error _ -> ()
           | Ok p ->
             let a =
               Ise_obs.Episode.analyze
                 ~ordered_interface:
                   (meta_bool p.Ise_obs.Journal.j_meta "ordered_interface"
                      true)
                 ~ordered_apply:
                   (meta_bool p.Ise_obs.Journal.j_meta "ordered_apply" true)
                 (Ise_obs.Episode.of_journal p)
             in
             offline_anomalies :=
               !offline_anomalies
               + List.length a.Ise_obs.Episode.an_anomalies;
             List.iter
               (fun ep ->
                 incr episodes;
                 match
                   (Ise_obs.Episode.phases_of ep).Ise_obs.Episode.ph_total
                 with
                 | Some t -> ep_totals := float_of_int t :: !ep_totals
                 | None -> ())
               a.Ise_obs.Episode.an_episodes)
         reports;
       let ep_mean =
         match !ep_totals with
         | [] -> 0.
         | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
       in
       let metrics =
         List.map
           (fun k -> (k, float_of_int (Hashtbl.find totals k)))
           (List.rev !order)
         @ [ ("violations", float_of_int violations);
             ("episodes", float_of_int !episodes);
             ("episode_total_cycles_mean", ep_mean);
             ("offline_anomalies", float_of_int !offline_anomalies)
           ]
       in
       append_ledger ~path
         (Ise_obs.Ledger.make ~kind:"chaos" ~label:profiles_spec ~seed
            ~config:
              (Printf.sprintf "trials=%d cores=%d stores=%d" trials cores
                 stores)
            metrics));
    if not inject then if violations = 0 then 0 else 1
    else begin
      (* the canary must be *caught*: stress violations, plus a chaos
         campaign that finds, shrinks, and records the lost store *)
      let chaos_light =
        List.filter
          (fun v -> v.Ise_fuzz.Campaign.v_chaos = Some "light")
          Ise_fuzz.Campaign.chaos_variants
      in
      let report =
        Ise_fuzz.Campaign.run ~count:4 ~seeds_per_test:3 ~variants:chaos_light
          ~variants_per_test:1 ~model_checks:false ~log:prerr_endline ~seed ()
      in
      List.iter
        (fun f ->
          Format.printf "@.%s under %s [%s]: %s@.%a@."
            f.Ise_fuzz.Campaign.f_test.Ise_litmus.Lit_test.name
            (Ise_fuzz.Campaign.variant_name f.Ise_fuzz.Campaign.f_variant)
            (Ise_fuzz.Campaign.kind_name f.Ise_fuzz.Campaign.f_kind)
            f.Ise_fuzz.Campaign.f_detail Ise_litmus.Lit_test.pp
            f.Ise_fuzz.Campaign.f_shrunk;
          if not no_save then begin
            let path =
              Ise_fuzz.Corpus.save ~dir:corpus_dir
                (Ise_fuzz.Campaign.entry_of_failure ~seed f)
            in
            Printf.printf "replay artifact: %s\n" path
          end)
        report.Ise_fuzz.Campaign.r_failures;
      let watchdog_failures =
        List.filter
          (fun f -> f.Ise_fuzz.Campaign.f_kind = Ise_fuzz.Campaign.Watchdog)
          report.Ise_fuzz.Campaign.r_failures
      in
      if violations > 0 && watchdog_failures <> [] then begin
        Printf.printf
          "injected bug caught: %d stress violation(s), %d shrunk \
           campaign failure(s)\n"
          violations
          (List.length watchdog_failures);
        0
      end
      else begin
        Printf.printf "injected bug NOT caught\n";
        1
      end
    end
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Root seed.")
  in
  let trials_arg =
    Arg.(value & opt (some int) None
         & info [ "trials" ] ~docv:"N"
             ~doc:"Stress trials; profiles rotate across them (default: one \
                   per selected profile).")
  in
  let cores_arg =
    Arg.(value & opt int 4
         & info [ "cores" ] ~docv:"N" ~doc:"Cores per stress machine.")
  in
  let stores_arg =
    Arg.(value & opt int 120
         & info [ "stores" ] ~docv:"N" ~doc:"Stores per core.")
  in
  let profiles_arg =
    Arg.(value & opt string "all"
         & info [ "profiles" ] ~docv:"SPEC"
             ~doc:"Chaos profiles: 'all' or a comma-separated list of \
                   profile names.")
  in
  let telemetry_out_arg =
    Arg.(value & opt (some string) None
         & info [ "telemetry-out" ] ~docv:"FILE"
             ~doc:"Write the final metrics registry (chaos/* counters and \
                   machine stats) as JSON.")
  in
  let snapshot_out_arg =
    Arg.(value & opt (some string) None
         & info [ "snapshot-out" ] ~docv:"FILE"
             ~doc:"On violations, write the watchdog's diagnostic snapshots \
                   here (CI uploads this as an artifact).")
  in
  let journal_out_arg =
    Arg.(value & opt (some string) None
         & info [ "journal-out" ] ~docv:"FILE"
             ~doc:"Write the flight-recorder journal of the first violating \
                   trial (or the last trial when all pass) — analyze it with \
                   $(b,ise report --journal).")
  in
  let nosave_arg =
    Arg.(value & flag
         & info [ "no-save" ]
             ~doc:"With --inject-bug: do not write failure artifacts.")
  in
  let workers_arg =
    Arg.(value & opt (list string) []
         & info [ "workers" ] ~docv:"SOCK,..."
             ~doc:"Dispatch trials across fabric worker sockets (each an \
                   $(b,ise fabric worker)); the merged report stream is \
                   byte-identical to the local run.")
  in
  let spawn_arg =
    Arg.(value & opt int 0
         & info [ "spawn" ] ~docv:"N"
             ~doc:"Additionally fork N local fabric workers for the run's \
                   duration.")
  in
  let spawn_jobs_arg =
    Arg.(value & opt int 1
         & info [ "spawn-jobs" ] ~docv:"N"
             ~doc:"Pool fan-out inside each --spawn worker.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Seeded fault-injection stress runs with the invariant watchdog \
             attached")
    Term.(const run $ seed_arg $ trials_arg $ cores_arg $ stores_arg
          $ profiles_arg $ telemetry_out_arg $ trace_out_arg
          $ snapshot_out_arg $ journal_out_arg $ journal_dir_arg $ ledger_arg
          $ corpus_arg $ nosave_arg $ chaos_inject_bug_arg $ jobs_arg
          $ shard_arg ~what:"trial" $ workers_arg $ spawn_arg
          $ spawn_jobs_arg)

let chaos_replay_cmd =
  let run corpus_dir files seeds inject =
    let entries =
      match files with
      | [] -> Ise_fuzz.Corpus.load_dir corpus_dir
      | fs -> List.map (fun f -> (f, Ise_fuzz.Corpus.load_file f)) fs
    in
    if entries = [] then begin
      Printf.eprintf "no corpus entries under %s\n" corpus_dir;
      exit 1
    end;
    let failed = ref 0 in
    with_handler_bug inject (fun () ->
        List.iter
          (fun (path, entry) ->
            match entry with
            | Error msg ->
              incr failed;
              Printf.printf "%-40s PARSE ERROR: %s\n%!" path msg
            | Ok e -> (
              match Ise_fuzz.Campaign.replay ~seeds e with
              | Ok () -> Printf.printf "%-40s ok\n%!" path
              | Error msg ->
                incr failed;
                Printf.printf "%-40s FAIL: %s\n%!" path msg))
          entries);
    if !failed = 0 then 0 else 1
  in
  let files_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"FILE" ~doc:"Artifacts to replay (default: --corpus).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay chaos corpus artifacts (--inject-bug reproduces \
             handler-bug witnesses)")
    Term.(const run $ corpus_arg $ files_arg $ fuzz_seeds_arg
          $ chaos_inject_bug_arg)

let chaos_cmd =
  Cmd.group
    (Cmd.info "chaos"
       ~doc:"Deterministic fault injection: seeded stress runs, the \
             invariant watchdog, and chaos-hardened litmus replay")
    [ chaos_run_cmd; chaos_replay_cmd ]

(* ------------------------------------------------------------------ *)
(* report                                                              *)

let report_cmd =
  let run journal trace format top check ordered_interface ordered_apply
      retry_threshold =
    let events, meta =
      match (journal, trace) with
      | Some _, Some _ ->
        Printf.eprintf "--journal and --trace are mutually exclusive\n";
        exit 1
      | None, None ->
        Printf.eprintf "need --journal FILE or --trace FILE\n";
        exit 1
      | Some path, None -> (
        match Ise_obs.Journal.load path with
        | Error msg ->
          Printf.eprintf "%s\n" msg;
          exit 1
        | Ok p ->
          if p.Ise_obs.Journal.j_corrupt <> [] then
            Printf.eprintf
              "note: %d corrupt line(s) skipped (truncated tail?)\n%!"
              (List.length p.Ise_obs.Journal.j_corrupt);
          (match List.assoc_opt "dropped" p.Ise_obs.Journal.j_meta with
           | Some d when d <> "0" ->
             Printf.eprintf
               "note: the bounded ring dropped %s event(s); early episodes \
                may look truncated\n%!" d
           | _ -> ());
          (Ise_obs.Episode.of_journal p, p.Ise_obs.Journal.j_meta))
      | None, Some path -> (
        match Ise_telemetry.Json.of_string (read_file path) with
        | Error msg ->
          Printf.eprintf "cannot parse %s: %s\n" path msg;
          exit 1
        | Ok json -> (
          match Ise_obs.Episode.of_chrome_json json with
          | Error msg ->
            Printf.eprintf "cannot read trace %s: %s\n" path msg;
            exit 1
          | Ok evs -> (evs, [])))
    in
    (* contract-order flags: CLI override > journal metadata > Table 5
       defaults (same-stream, ordered applies) *)
    let ordered_interface =
      match ordered_interface with
      | Some b -> b
      | None -> meta_bool meta "ordered_interface" true
    in
    let ordered_apply =
      match ordered_apply with
      | Some b -> b
      | None -> meta_bool meta "ordered_apply" true
    in
    let analysis =
      Ise_obs.Episode.analyze ~ordered_interface ~ordered_apply
        ~retry_threshold events
    in
    (match format with
     | "text" -> print_string (Ise_obs.Episode.report_text ~top analysis)
     | "md" -> print_string (Ise_obs.Episode.report_md ~top analysis)
     | "json" ->
       print_endline
         (Ise_telemetry.Json.to_string_pretty
            (Ise_obs.Episode.report_json ~top analysis))
     | f ->
       Printf.eprintf "unknown format %S (text|md|json)\n" f;
       exit 1);
    if check && not (Ise_obs.Episode.clean analysis) then 1 else 0
  in
  let journal_arg =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Flight-recorder journal to analyze (from \
                   $(b,chaos run --journal-out) or a pool worker's \
                   crash journal).")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Chrome trace-event JSON to analyze (from --trace-out).")
  in
  let format_arg =
    Arg.(value & opt string "text"
         & info [ "f"; "format" ] ~docv:"FMT" ~doc:"text|md|json")
  in
  let top_arg =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N" ~doc:"Slowest episodes to list.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Exit non-zero when the offline analysis finds any \
                   contract anomaly.")
  in
  let oi_arg =
    Arg.(value & opt (some bool) None
         & info [ "ordered-interface" ] ~docv:"BOOL"
             ~doc:"Require GETs to replay PUT order (same-stream protocol); \
                   default: journal metadata, else true.")
  in
  let oa_arg =
    Arg.(value & opt (some bool) None
         & info [ "ordered-apply" ] ~docv:"BOOL"
             ~doc:"Require applies to follow GET order (PC); default: \
                   journal metadata, else true.")
  in
  let retry_arg =
    Arg.(value & opt int 4
         & info [ "retry-threshold" ] ~docv:"N"
             ~doc:"GET retries per store beyond which an episode is flagged \
                   as a retry storm.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Offline episode post-mortem: reconstruct per-fault episode \
             timelines from a journal or trace, re-validate the Table 5 \
             lifecycle, and break down per-phase latencies")
    Term.(const run $ journal_arg $ trace_arg $ format_arg $ top_arg
          $ check_arg $ oi_arg $ oa_arg $ retry_arg)

(* ------------------------------------------------------------------ *)
(* compare                                                             *)

let compare_cmd =
  let run base_file new_file against kind label threshold overrides format =
    let thresholds =
      List.map
        (fun spec ->
          match String.index_opt spec '=' with
          | Some i -> (
            let name = String.sub spec 0 i in
            let v =
              String.sub spec (i + 1) (String.length spec - i - 1)
            in
            match float_of_string_opt v with
            | Some f when f >= 0. -> (name, f)
            | _ ->
              Printf.eprintf "bad --metric-threshold %S (NAME=FLOAT)\n" spec;
              exit 1)
          | None ->
            Printf.eprintf "bad --metric-threshold %S (NAME=FLOAT)\n" spec;
            exit 1)
        overrides
    in
    let load path =
      match Ise_obs.Ledger.load ~path with
      | Ok records -> records
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    in
    let pick path records =
      match Ise_obs.Ledger.last ?kind ?label records with
      | Some r -> r
      | None ->
        Printf.eprintf "no matching run record in %s\n" path;
        exit 1
    in
    let base, cand =
      match (against, base_file, new_file) with
      | Some path, None, None -> (
        (* last two matching records of one ledger: did the newest run
           regress against its predecessor? *)
        let matching =
          List.filter
            (fun r ->
              (match kind with
               | None -> true
               | Some k -> r.Ise_obs.Ledger.l_kind = k)
              && match label with
                 | None -> true
                 | Some l -> r.Ise_obs.Ledger.l_label = l)
            (load path)
        in
        match List.rev matching with
        | cand :: base :: _ -> (base, cand)
        | _ ->
          Printf.eprintf "need two matching run records in %s\n" path;
          exit 1)
      | None, Some b, Some n -> (pick b (load b), pick n (load n))
      | _ ->
        Printf.eprintf
          "usage: ise compare BASE NEW | ise compare --against-ledger FILE\n";
        exit 1
    in
    let cmp =
      Ise_obs.Ledger.compare_records ~threshold ~thresholds ~base cand
    in
    (match format with
     | "text" -> print_string (Ise_obs.Ledger.comparison_text cmp)
     | "md" -> print_string (Ise_obs.Ledger.comparison_md cmp)
     | "json" ->
       print_endline
         (Ise_telemetry.Json.to_string_pretty
            (Ise_obs.Ledger.comparison_json cmp))
     | f ->
       Printf.eprintf "unknown format %S (text|md|json)\n" f;
       exit 1);
    if Ise_obs.Ledger.regressed cmp then 1 else 0
  in
  let base_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"BASE"
             ~doc:"Baseline ledger file (its last matching record is the \
                   baseline).")
  in
  let new_arg =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"NEW"
             ~doc:"Candidate ledger file (its last matching record is \
                   compared).")
  in
  let against_arg =
    Arg.(value & opt (some string) None
         & info [ "against-ledger" ] ~docv:"FILE"
             ~doc:"Compare the last two matching records of one ledger \
                   instead of two files.")
  in
  let kind_arg =
    Arg.(value & opt (some string) None
         & info [ "kind" ] ~docv:"KIND"
             ~doc:"Only consider records of this kind (bench|fuzz|chaos).")
  in
  let label_arg =
    Arg.(value & opt (some string) None
         & info [ "label" ] ~docv:"LABEL"
             ~doc:"Only consider records with this label.")
  in
  let threshold_arg =
    Arg.(value & opt float 0.02
         & info [ "threshold" ] ~docv:"FRAC"
             ~doc:"Default relative noise band; a gated metric regresses \
                   only strictly beyond it.")
  in
  let override_arg =
    Arg.(value & opt_all string []
         & info [ "metric-threshold" ] ~docv:"NAME=FRAC"
             ~doc:"Per-metric noise-band override (repeatable).")
  in
  let format_arg =
    Arg.(value & opt string "text"
         & info [ "f"; "format" ] ~docv:"FMT" ~doc:"text|md|json")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Diff two ledger run records metric-by-metric with noise \
             thresholds; exits non-zero on regression (the CI perf gate)")
    Term.(const run $ base_arg $ new_arg $ against_arg $ kind_arg $ label_arg
          $ threshold_arg $ override_arg $ format_arg)

(* ------------------------------------------------------------------ *)
(* serve / client / store                                              *)

let socket_arg =
  Arg.(value & opt string ".ise-serve.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix domain socket the daemon listens on.")

let serve_cmd =
  let run socket store jobs mem_entries quiet =
    let log =
      if quiet then ignore
      else fun msg -> Printf.eprintf "[ise-serve] %s\n%!" msg
    in
    let cfg =
      {
        (Ise_serve.Server.default_config ~socket_path:socket) with
        Ise_serve.Server.store_dir = store;
        jobs;
        mem_entries;
        log;
      }
    in
    Ise_serve.Server.run cfg;
    0
  in
  let store_arg =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Back the daemon with a content-addressed result store in \
                   this directory (omit to disable caching).")
  in
  let mem_arg =
    Arg.(value & opt int 512
         & info [ "mem-entries" ] ~docv:"N"
             ~doc:"In-memory LRU front of the result store.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No lifecycle logging.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the long-lived ISE service daemon: litmus, fuzz-replay, and \
             report requests over a Unix socket, backed by a \
             content-addressed result store")
    Term.(const run $ socket_arg $ store_arg $ jobs_arg $ mem_arg $ quiet_arg)

let connect_or_die socket =
  match Ise_serve.Client.connect ~retries:50 socket with
  | Ok c -> c
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 1

let client_litmus_cmd =
  let run socket name seeds model no_faults require_hits =
    let tests =
      match name with
      | Some n -> (
        match
          List.find_opt
            (fun t -> t.Ise_litmus.Lit_test.name = n)
            Ise_litmus.Library.all
        with
        | Some t -> [ t ]
        | None ->
          Printf.eprintf "unknown test %S (see ise litmus --list)\n" n;
          exit 1)
      | None -> Ise_litmus.Library.all
    in
    let params =
      {
        Ise_serve.Proto.seeds;
        inject_faults = not no_faults;
        timer_interrupts = false;
        model;
      }
    in
    let c = connect_or_die socket in
    match Ise_serve.Client.litmus c ~tests ~params with
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      Ise_serve.Client.close c;
      1
    | Ok replies ->
      Ise_serve.Client.close c;
      (* stdout is byte-identical to `ise litmus` on the same tests;
         cache accounting goes to stderr *)
      let ok = ref true and hits = ref 0 and misses = ref 0 in
      List.iter
        (fun r ->
          print_endline r.Ise_serve.Proto.r_line;
          if not r.Ise_serve.Proto.r_pass then ok := false;
          if r.Ise_serve.Proto.r_cached then incr hits else incr misses)
        replies;
      Printf.eprintf "result store: %d hit(s), %d miss(es)\n%!" !hits !misses;
      if require_hits && !misses > 0 then begin
        Printf.eprintf "--require-hits: %d response(s) were not cache hits\n"
          !misses;
        1
      end
      else if !ok then 0
      else 1
  in
  let name_arg =
    Arg.(value & opt (some string) None
         & info [ "t"; "test" ] ~docv:"NAME" ~doc:"Run a single test.")
  in
  let seeds_arg =
    Arg.(value & opt int 20 & info [ "seeds" ] ~doc:"Perturbed runs per test.")
  in
  let nofaults_arg =
    Arg.(value & flag & info [ "no-faults" ] ~doc:"Disable error injection.")
  in
  let require_hits_arg =
    Arg.(value & flag
         & info [ "require-hits" ]
             ~doc:"Exit non-zero unless every response was a cache hit (CI \
                   smoke assertion).")
  in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:"Run litmus tests through the daemon; output is byte-identical \
             to a local $(b,ise litmus) run")
    Term.(const run $ socket_arg $ name_arg $ seeds_arg $ model_arg
          $ nofaults_arg $ require_hits_arg)

let client_stats_cmd =
  let run socket =
    let c = connect_or_die socket in
    match Ise_serve.Client.server_stats c with
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      Ise_serve.Client.close c;
      1
    | Ok s ->
      Ise_serve.Client.close c;
      Printf.printf
        "daemon pid=%d git=%s uptime=%.1fs\n\
         connections=%d requests=%d errors=%d\n\
         cold litmus runs=%d cold replays=%d\n"
        s.Ise_serve.Proto.ss_pid s.Ise_serve.Proto.ss_git_rev
        s.Ise_serve.Proto.ss_uptime_s s.Ise_serve.Proto.ss_connections
        s.Ise_serve.Proto.ss_requests s.Ise_serve.Proto.ss_errors
        s.Ise_serve.Proto.ss_litmus_runs s.Ise_serve.Proto.ss_replays;
      (match s.Ise_serve.Proto.ss_store with
       | None -> Printf.printf "result store: disabled\n"
       | Some v ->
         Printf.printf
           "result store: mem-hits=%d disk-hits=%d misses=%d writes=%d \
            corrupt-skipped=%d mem-evictions=%d\n"
           v.Ise_serve.Proto.v_mem_hits v.Ise_serve.Proto.v_disk_hits
           v.Ise_serve.Proto.v_misses v.Ise_serve.Proto.v_writes
           v.Ise_serve.Proto.v_corrupt_skipped
           v.Ise_serve.Proto.v_mem_evictions);
      0
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print the daemon's lifetime counters")
    Term.(const run $ socket_arg)

let client_metrics_cmd =
  let run socket =
    let c = connect_or_die socket in
    match Ise_serve.Client.metrics c with
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      Ise_serve.Client.close c;
      1
    | Ok text ->
      Ise_serve.Client.close c;
      print_string text;
      0
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Dump the daemon's metrics in Prometheus text format (scrape \
             target for long-lived daemons)")
    Term.(const run $ socket_arg)

let client_shutdown_cmd =
  let run socket =
    let c = connect_or_die socket in
    let r = Ise_serve.Client.shutdown c in
    Ise_serve.Client.close c;
    match r with
    | Ok () ->
      Printf.printf "daemon draining\n";
      0
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Ask the daemon to drain and exit")
    Term.(const run $ socket_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client"
       ~doc:"Talk to a running $(b,ise serve) daemon over its Unix socket")
    [ client_litmus_cmd; client_stats_cmd; client_metrics_cmd;
      client_shutdown_cmd ]

let store_dir_pos_arg =
  Arg.(value & opt string ".ise-store"
       & info [ "store" ] ~docv:"DIR" ~doc:"Result store directory.")

let store_stats_cmd =
  let run dir =
    let s = Ise_serve.Store.scan dir in
    Printf.printf "%s: %d entr%s, %d bytes, %d corrupt\n" dir
      s.Ise_serve.Store.ds_entries
      (if s.Ise_serve.Store.ds_entries = 1 then "y" else "ies")
      s.Ise_serve.Store.ds_bytes s.Ise_serve.Store.ds_corrupt;
    0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Validate every entry of a result store and summarize it")
    Term.(const run $ store_dir_pos_arg)

let store_gc_cmd =
  let run dir max_entries max_bytes =
    let g = Ise_serve.Store.gc ?max_entries ?max_bytes dir in
    Printf.printf
      "%s: kept %d, deleted %d, removed %d corrupt, freed %d bytes\n" dir
      g.Ise_serve.Store.gc_kept g.Ise_serve.Store.gc_deleted
      g.Ise_serve.Store.gc_corrupt_deleted g.Ise_serve.Store.gc_bytes_freed;
    0
  in
  let max_entries_arg =
    Arg.(value & opt (some int) None
         & info [ "max-entries" ] ~docv:"N"
             ~doc:"Keep at most N newest valid entries.")
  in
  let max_bytes_arg =
    Arg.(value & opt (some int) None
         & info [ "max-bytes" ] ~docv:"B"
             ~doc:"Keep at most B bytes of valid entries.")
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:"Delete corrupt entries, then the oldest entries beyond the \
             bounds")
    Term.(const run $ store_dir_pos_arg $ max_entries_arg $ max_bytes_arg)

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect and bound the content-addressed result store")
    [ store_stats_cmd; store_gc_cmd ]

(* ------------------------------------------------------------------ *)
(* fabric: distributed campaigns                                       *)

let netchaos_profile_names () =
  String.concat "\n  "
    (List.map
       (fun p -> p.Ise_fabric.Netchaos.name)
       (Ise_fabric.Netchaos.calm :: Ise_fabric.Netchaos.all))

let fabric_worker_cmd =
  let run socket jobs proto quiet =
    let log =
      if quiet then ignore
      else fun msg -> Printf.eprintf "[ise-fabric-worker] %s\n%!" msg
    in
    Ise_fabric.Worker.run
      { (Ise_fabric.Worker.default_config ~socket_path:socket) with
        jobs;
        proto;
        log;
      };
    0
  in
  let socket_arg =
    Arg.(value & opt string ".ise-fabric-worker.sock"
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix domain socket this worker listens on.")
  in
  let proto_arg =
    Arg.(value & opt int Ise_fabric.Wire.version
         & info [ "proto" ] ~docv:"V"
             ~doc:"Highest fabric protocol version to speak (compatibility \
                   testing: 1 behaves like a pre-heartbeat worker).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No lifecycle logging.")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"Run a fabric worker daemon: executes campaign shard ranges for \
             a supervisor over a Unix socket, fanned out over a persistent \
             process pool")
    Term.(const run $ socket_arg $ jobs_arg $ proto_arg $ quiet_arg)

let fabric_chaos_proxy_cmd =
  let run listen upstream seed profile quiet =
    match Ise_fabric.Netchaos.named profile with
    | None ->
      Printf.eprintf "unknown netchaos profile %S; valid names:\n  %s\n"
        profile
        (netchaos_profile_names ());
      1
    | Some p ->
      let log =
        if quiet then None
        else Some (fun msg -> Printf.eprintf "[ise-netchaos] %s\n%!" msg)
      in
      let nc = Ise_fabric.Netchaos.create ~seed ~profile:p in
      let proxy =
        Ise_fabric.Netchaos.create_proxy ?log ~listen ~upstream nc
      in
      let stop (_ : int) = Ise_fabric.Netchaos.stop_proxy proxy in
      (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
       with Invalid_argument _ -> ());
      (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
       with Invalid_argument _ -> ());
      Ise_fabric.Netchaos.run_proxy proxy;
      if not quiet then
        List.iter
          (fun (k, v) -> Printf.eprintf "%s=%d\n%!" k v)
          (Ise_fabric.Netchaos.counts nc);
      0
  in
  let listen_arg =
    Arg.(value & opt string ".ise-netchaos.sock"
         & info [ "listen" ] ~docv:"PATH"
             ~doc:"Socket the supervisor connects to.")
  in
  let upstream_arg =
    Arg.(required & opt (some string) None
         & info [ "upstream" ] ~docv:"PATH"
             ~doc:"The real worker's socket.")
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N"
             ~doc:"Fault-schedule seed: (seed, profile) replays the same \
                   fault pattern against the same traffic.")
  in
  let profile_arg =
    Arg.(value & opt string "storm"
         & info [ "profile" ] ~docv:"NAME"
             ~doc:"Netchaos profile (calm, drop, delay, dup, reorder, \
                   corrupt, reset, stall, storm).")
  in
  let quiet_arg =
    Arg.(value & flag
         & info [ "q"; "quiet" ] ~doc:"No fault logging or final counters.")
  in
  Cmd.v
    (Cmd.info "chaos-proxy"
       ~doc:"Interpose a deterministic wire-fault injector between a fabric \
             supervisor and a worker: drops, delays, duplicates, reorders, \
             corrupts, resets, and stalls framed traffic on a seeded \
             schedule; SIGTERM stops it and prints injection counters")
    Term.(const run $ listen_arg $ upstream_arg $ seed_arg $ profile_arg
          $ quiet_arg)

(* One ise-fabric-status/v1 snapshot rendered as a terminal table.
   Shared by `ise top` and `fabric run --top`; writes to stderr so the
   campaign's stdout stays byte-identical to a local run. *)
let render_status ?(clear = true) doc =
  let module J = Ise_telemetry.Json in
  let i k o = Option.value (Option.bind (J.member k o) J.to_int) ~default:0 in
  let f k o =
    Option.value (Option.bind (J.member k o) J.to_float) ~default:0.
  in
  let s k o =
    Option.value (Option.bind (J.member k o) J.to_str) ~default:"?"
  in
  let buf = Buffer.create 1024 in
  if clear then Buffer.add_string buf "\027[H\027[2J";
  let eta = f "eta_s" doc in
  Buffer.add_string buf
    (Printf.sprintf
       "ise fabric  %d/%d shards  %.1f shards/s  wall %.1fs  %s\n"
       (i "done" doc) (i "shards" doc) (f "shards_per_s" doc)
       (f "wall_s" doc)
       (if eta < 0. then "eta --" else Printf.sprintf "eta %.0fs" eta));
  let c =
    match J.member "counters" doc with Some o -> o | None -> J.Obj []
  in
  Buffer.add_string buf
    (Printf.sprintf
       "dispatched %d (redispatch %d)  store hits %d  inline %d  losses %d \
        rejoins %d  pings %d  hb losses %d  telemetry %d\n\n"
       (i "dispatched" c) (i "redispatched" c) (i "store_hits" c)
       (i "inline" c) (i "worker_losses" c) (i "rejoins" c) (i "pings" c)
       (i "hb_losses" c) (i "telemetry_frames" c));
  Buffer.add_string buf
    (Printf.sprintf "%4s  %-8s  %5s  %8s  %6s  %5s  %s\n" "ID" "STATE"
       "PROTO" "INFLIGHT" "DONE" "TELE" "PATH");
  (match Option.bind (J.member "workers" doc) J.to_list with
   | None -> ()
   | Some ws ->
     List.iter
       (fun w ->
         Buffer.add_string buf
           (Printf.sprintf "%4d  %-8s  %5d  %8d  %6d  %5d  %s\n" (i "id" w)
              (String.uppercase_ascii (s "state" w))
              (i "proto" w) (i "inflight" w) (i "done" w)
              (i "telemetry_frames" w) (s "path" w)))
       ws);
  Buffer.add_string buf
    (Printf.sprintf "\newma %.0f ms   run %s\n" (f "ewma_ms" doc)
       (s "run_id" doc));
  prerr_string (Buffer.contents buf);
  flush stderr

let mkdir_p dir =
  try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let fabric_run_cmd =
  let run seed count seeds_per_test variants_spec workers spawn spawn_jobs
      shards window store_dir corpus_dir no_save ledger require_workers
      netchaos netchaos_seed soak_rejoin top status_out prom_out trace_dir
      quiet =
    let variants =
      match variants_of_spec variants_spec with
      | Ok vs -> vs
      | Error n ->
        Printf.eprintf "unknown variant %S\n" n;
        exit 1
    in
    if workers = [] && spawn = 0 then begin
      Printf.eprintf
        "need workers: --workers SOCK[,SOCK..] and/or --spawn N\n";
      exit 1
    end;
    if spawn > 0 && not Ise_fabric.Sim.available then begin
      Printf.eprintf "--spawn needs fork(), unavailable on this platform\n";
      exit 1
    end;
    let netchaos =
      match netchaos with
      | None -> None
      | Some name -> (
        match Ise_fabric.Netchaos.named name with
        | Some p -> Some (netchaos_seed, p)
        | None ->
          Printf.eprintf "unknown netchaos profile %S; valid names:\n  %s\n"
            name
            (netchaos_profile_names ());
          exit 1)
    in
    if netchaos <> None && spawn = 0 then begin
      Printf.eprintf
        "--netchaos proxies --spawn workers; for external --workers run \
         $(b,ise fabric chaos-proxy) in front of each\n";
      exit 1
    end;
    if soak_rejoin && spawn = 0 then begin
      Printf.eprintf "--soak-rejoin needs --spawn workers to kill\n";
      exit 1
    end;
    (* the observability plane: any of --top/--status-out/--prom-out/
       --trace-dir turns on v3 telemetry streaming.  --top owns the
       terminal, so it implies --quiet. *)
    let observing =
      top || status_out <> None || prom_out <> None || trace_dir <> None
    in
    let log =
      if quiet || top then ignore
      else fun msg -> Printf.eprintf "[ise-fabric] %s\n%!" msg
    in
    let obs_metrics =
      if observing then Some (Ise_telemetry.Registry.create ()) else None
    in
    let sup_trace =
      match trace_dir with
      | Some dir ->
        mkdir_p dir;
        Some (Ise_telemetry.Trace.create ())
      | None -> None
    in
    let observe =
      { Ise_fabric.Supervisor.default_observe with
        Ise_fabric.Supervisor.stream = observing;
        metrics = obs_metrics;
        trace = sup_trace;
        trace_id = Printf.sprintf "ise-%s" (Ise_obs.Runinfo.run_id ());
        status_out;
        on_status = (if top then render_status ~clear:true else ignore);
      }
    in
    let spec =
      Ise_fuzz.Campaign.spec ~count ~seeds_per_test ~variants ~seed ()
    in
    let sim =
      if spawn = 0 then None
      else begin
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "ise-fabric-%d" (Unix.getpid ()))
        in
        Some
          (Ise_fabric.Sim.start ~jobs:spawn_jobs ~log ?netchaos ?trace_dir
             ~dir ~n:spawn ())
      end
    in
    let workers =
      workers
      @ (match sim with None -> [] | Some s -> Ise_fabric.Sim.sockets s)
    in
    let store =
      Option.map
        (fun dir -> Ise_serve.Store.open_ ~dir ())
        store_dir
    in
    (* --soak-rejoin: on the first completed shard, SIGKILL spawned
       worker 0 and restart it — the registry must re-admit it while
       the campaign is still running *)
    let rejoin_fired = ref false in
    let on_shard_done (_ : int) =
      if soak_rejoin && not !rejoin_fired then begin
        rejoin_fired := true;
        match sim with
        | Some s ->
          log "soak: SIGKILL worker 0, restarting it";
          Ise_fabric.Sim.kill s 0;
          Ise_fabric.Sim.restart s 0
        | None -> ()
      end
    in
    let liveness =
      if soak_rejoin || netchaos <> None then
        (* probe eagerly so the killed worker is re-admitted fast, but
           bound each probe's handshake: under heavy wire faults a
           5 s timeout per blocking probe gives the soak a heavy wall-
           clock tail *)
        { Ise_fabric.Supervisor.default_liveness with
          rejoin_backoff_s = 0.5;
          handshake_timeout_s = 2.0;
          (* results get lost on a faulty wire far more often than on a
             healthy one — resend much sooner than the default 30 s *)
          dispatch_timeout_s = 5.0;
        }
      else Ise_fabric.Supervisor.default_liveness
    in
    let cfg =
      { (Ise_fabric.Supervisor.default_config ~workers) with
        Ise_fabric.Supervisor.window;
        shards;
        store;
        liveness;
        require_workers;
        await_rejoin_s = (if soak_rejoin then 30.0 else 0.0);
        observe;
        on_shard_done;
        log;
      }
    in
    let ranges, outcomes, stats =
      match Ise_fabric.Supervisor.run cfg (Ise_fabric.Wire.Fuzz spec) with
      | result -> result
      | exception Ise_fabric.Supervisor.Insufficient_workers { wanted; got }
        ->
        (match sim with None -> () | Some s -> Ise_fabric.Sim.stop s);
        Printf.eprintf
          "fabric: %d worker(s) required (--require-workers), only %d \
           completed the handshake; refusing to degrade to inline\n%!"
          wanted got;
        exit 3
    in
    (match sim with None -> () | Some s -> Ise_fabric.Sim.stop s);
    (* observability artifacts, written after the campaign drains *)
    (match trace_dir, sup_trace with
     | Some dir, Some tr ->
       let doc =
         Ise_telemetry.Trace.to_chrome_json
           ~meta:
             (("role", Ise_telemetry.Json.String "supervisor")
              :: ("pid", Ise_telemetry.Json.Int (Unix.getpid ()))
              :: Ise_obs.Runinfo.stamp ())
           tr
       in
       let path = Filename.concat dir "supervisor.trace.json" in
       write_file path (Ise_telemetry.Json.to_string doc);
       log (Printf.sprintf "wrote supervisor trace to %s" path)
     | _ -> ());
    (match prom_out, obs_metrics with
     | Some path, Some reg ->
       write_file path (Ise_telemetry.Registry.to_prometheus reg);
       log (Printf.sprintf "wrote prometheus snapshot to %s" path)
     | _ -> ());
    let merged =
      Ise_fabric.Merge.merge ~log:prerr_endline spec ~ranges ~outcomes
    in
    let report = merged.Ise_fabric.Merge.m_report in
    Printf.eprintf
      "[fabric] %d worker(s), %d shard(s): %d dispatched (%d re-dispatch), \
       %d store hit(s), %d inline, %d worker loss(es), %d rejoin(s), \
       %d ping(s), %d heartbeat loss(es), %.2fs\n%!"
      stats.Ise_fabric.Supervisor.f_workers
      stats.Ise_fabric.Supervisor.f_shards
      stats.Ise_fabric.Supervisor.f_dispatched
      stats.Ise_fabric.Supervisor.f_redispatched
      stats.Ise_fabric.Supervisor.f_store_hits
      stats.Ise_fabric.Supervisor.f_inline
      stats.Ise_fabric.Supervisor.f_worker_losses
      stats.Ise_fabric.Supervisor.f_rejoins
      stats.Ise_fabric.Supervisor.f_pings
      stats.Ise_fabric.Supervisor.f_hb_losses
      stats.Ise_fabric.Supervisor.f_wall_s;
    if soak_rejoin && stats.Ise_fabric.Supervisor.f_rejoins = 0 then begin
      Printf.eprintf
        "soak: worker 0 was killed and restarted but no rejoin was \
         observed within the 30s grace\n%!";
      exit 1
    end;
    (match ledger with
     | None -> ()
     | Some path ->
       append_ledger ~path
         (Ise_fabric.Merge.ledger_record ~label:variants_spec spec report));
    (* stdout below is byte-identical to `ise fuzz run` on the same
       seed — the point of the deterministic merge *)
    Printf.printf "seed %d: %d tests, %d checks, %d failure(s)\n"
      report.Ise_fuzz.Campaign.r_seed report.Ise_fuzz.Campaign.r_tests
      report.Ise_fuzz.Campaign.r_checks
      (List.length report.Ise_fuzz.Campaign.r_failures);
    if report.Ise_fuzz.Campaign.r_lost_tests > 0 then
      Printf.eprintf "warning: %d test(s) lost to failed fabric shards\n%!"
        report.Ise_fuzz.Campaign.r_lost_tests;
    List.iter2
      (fun f entry ->
        Format.printf "@.%s under %s [%s]: %s@.%a@."
          f.Ise_fuzz.Campaign.f_test.Ise_litmus.Lit_test.name
          (Ise_fuzz.Campaign.variant_name f.Ise_fuzz.Campaign.f_variant)
          (Ise_fuzz.Campaign.kind_name f.Ise_fuzz.Campaign.f_kind)
          f.Ise_fuzz.Campaign.f_detail Ise_litmus.Lit_test.pp
          f.Ise_fuzz.Campaign.f_shrunk;
        if not no_save then begin
          let path = Ise_fuzz.Corpus.save ~dir:corpus_dir entry in
          Printf.printf "replay artifact: %s\n" path
        end)
      report.Ise_fuzz.Campaign.r_failures merged.Ise_fabric.Merge.m_entries;
    if
      report.Ise_fuzz.Campaign.r_failures = []
      && report.Ise_fuzz.Campaign.r_lost_tests = 0
    then 0
    else 1
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")
  in
  let count_arg =
    Arg.(value & opt int 100
         & info [ "count" ] ~docv:"N" ~doc:"Generated tests.")
  in
  let variants_arg =
    Arg.(value & opt string "all"
         & info [ "variants" ] ~docv:"SPEC"
             ~doc:"Lattice variants: 'all', 'base', 'chaos', or names.")
  in
  let workers_arg =
    Arg.(value & opt (list string) []
         & info [ "workers" ] ~docv:"SOCK,..."
             ~doc:"Worker daemon sockets (each an $(b,ise fabric worker)).")
  in
  let spawn_arg =
    Arg.(value & opt int 0
         & info [ "spawn" ] ~docv:"N"
             ~doc:"Additionally fork N local worker daemons for the run's \
                   duration (single-host fabric).")
  in
  let spawn_jobs_arg =
    Arg.(value & opt int 1
         & info [ "spawn-jobs" ] ~docv:"N"
             ~doc:"Pool fan-out inside each --spawn worker.")
  in
  let shards_arg =
    Arg.(value & opt (some int) None
         & info [ "shards" ] ~docv:"N"
             ~doc:"Shard count (default: 4 per worker).")
  in
  let window_arg =
    Arg.(value & opt int 2
         & info [ "window" ] ~docv:"N"
             ~doc:"Max shards in flight per worker.")
  in
  let store_arg =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Cache shard results in a content-addressed store: a \
                   repeated campaign (same spec, same enumeration epoch) is \
                   answered without dispatching.")
  in
  let nosave_arg =
    Arg.(value & flag
         & info [ "no-save" ] ~doc:"Do not write failure artifacts.")
  in
  let require_workers_arg =
    Arg.(value & opt int 0
         & info [ "require-workers" ] ~docv:"N"
             ~doc:"Fail (exit 3) unless at least N workers complete the \
                   handshake, instead of silently degrading to an inline \
                   run.")
  in
  let netchaos_arg =
    Arg.(value & opt (some string) None
         & info [ "netchaos" ] ~docv:"PROFILE"
             ~doc:"Interpose a deterministic wire-fault proxy (drop, delay, \
                   duplicate, reorder, corrupt, reset, stall — or 'storm') \
                   in front of every --spawn worker; the merged report must \
                   still be byte-identical.")
  in
  let netchaos_seed_arg =
    Arg.(value & opt int 42
         & info [ "netchaos-seed" ] ~docv:"N"
             ~doc:"Fault-schedule seed for --netchaos.")
  in
  let soak_rejoin_arg =
    Arg.(value & flag
         & info [ "soak-rejoin" ]
             ~doc:"After the first shard completes, SIGKILL spawned worker \
                   0 and restart it; fail unless the supervisor re-admits \
                   it (the nightly soak's rejoin assertion).")
  in
  let top_arg =
    Arg.(value & flag
         & info [ "top" ]
             ~doc:"Live campaign dashboard on stderr (refreshing table of \
                   per-worker state, throughput, ETA); implies --quiet and \
                   v3 telemetry streaming.  Campaign stdout is unchanged.")
  in
  let status_out_arg =
    Arg.(value & opt (some string) None
         & info [ "status-out" ] ~docv:"FILE"
             ~doc:"Write an $(b,ise-fabric-status/v1) JSON snapshot to FILE \
                   (atomically, every 0.5s and once after the drain); \
                   $(b,ise top --status FILE) renders it from another \
                   terminal.")
  in
  let prom_out_arg =
    Arg.(value & opt (some string) None
         & info [ "prom-out" ] ~docv:"FILE"
             ~doc:"After the campaign drains, write the aggregated fleet \
                   metrics (worker deltas + supervisor counters) to FILE in \
                   Prometheus text format.")
  in
  let trace_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-dir" ] ~docv:"DIR"
             ~doc:"Collect per-process Chrome traces under DIR: the \
                   supervisor's dispatch spans and each --spawn worker's \
                   shard spans (context-linked); merge with $(b,ise trace \
                   stitch DIR/*.json).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No dispatch logging.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a fuzzing campaign across fabric workers; the merged \
             report is byte-identical to a single-host run of the same seed")
    Term.(const run $ seed_arg $ count_arg $ fuzz_seeds_arg $ variants_arg
          $ workers_arg $ spawn_arg $ spawn_jobs_arg $ shards_arg
          $ window_arg $ store_arg $ corpus_arg $ nosave_arg $ ledger_arg
          $ require_workers_arg $ netchaos_arg $ netchaos_seed_arg
          $ soak_rejoin_arg $ top_arg $ status_out_arg $ prom_out_arg
          $ trace_dir_arg $ quiet_arg)

let fabric_cmd =
  Cmd.group
    (Cmd.info "fabric"
       ~doc:"Distributed campaign fabric: shard-range workers, a \
             straggler-aware supervisor, deterministic wire-fault \
             injection, and a deterministic merge")
    [ fabric_worker_cmd; fabric_run_cmd; fabric_chaos_proxy_cmd ]

(* ------------------------------------------------------------------ *)
(* trace: cross-process trace tooling                                  *)

let trace_stitch_cmd =
  let run files out =
    match Ise_obs.Stitch.stitch_files files with
    | Error msg ->
      Printf.eprintf "stitch: %s\n" msg;
      1
    | Ok (doc, infos) ->
      let text = Ise_telemetry.Json.to_string doc in
      (match out with
       | None -> print_string text
       | Some path ->
         write_file path text;
         List.iter
           (fun fi ->
             Printf.eprintf
               "  pid %d  %-10s  offset %+d us  %4d event(s)  %s\n"
               fi.Ise_obs.Stitch.sf_pid fi.Ise_obs.Stitch.sf_role
               fi.Ise_obs.Stitch.sf_offset_us fi.Ise_obs.Stitch.sf_events
               fi.Ise_obs.Stitch.sf_file)
           infos;
         Printf.eprintf "wrote stitched trace to %s\n%!" path);
      0
  in
  let files_arg =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"TRACE.json"
             ~doc:"Per-process Chrome trace files (e.g. \
                   $(b,--trace-dir) output of a fabric run).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write the stitched document here instead of stdout.")
  in
  Cmd.v
    (Cmd.info "stitch"
       ~doc:"Merge per-process fabric trace files into one Perfetto \
             timeline: one lane per process, worker clocks normalized \
             against their dispatch anchors, orphan spans tagged. \
             Deterministic for fixed inputs.")
    Term.(const run $ files_arg $ out_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Distributed-trace tooling for fabric campaigns")
    [ trace_stitch_cmd ]

(* ------------------------------------------------------------------ *)
(* top: live campaign dashboard                                        *)

let top_cmd =
  let run status once period =
    let read () =
      match
        let ic = open_in_bin status in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      with
      | s -> (
        match Ise_telemetry.Json.of_string s with
        | Ok doc -> Some (s, doc)
        | Error _ -> None (* torn read of a non-atomic writer: retry *))
      | exception Sys_error _ -> None
    in
    if once then begin
      match read () with
      | Some (raw, _) ->
        print_string raw;
        if raw = "" || raw.[String.length raw - 1] <> '\n' then
          print_newline ();
        0
      | None ->
        Printf.eprintf "no status snapshot at %s\n" status;
        1
    end
    else begin
      (* follow the file until the campaign reports done = shards *)
      let module J = Ise_telemetry.Json in
      let finished = ref false in
      let missing_logged = ref false in
      while not !finished do
        (match read () with
         | Some (_, doc) ->
           missing_logged := false;
           render_status ~clear:true doc;
           let geti k =
             Option.value (Option.bind (J.member k doc) J.to_int) ~default:0
           in
           if geti "shards" > 0 && geti "done" >= geti "shards" then
             finished := true
         | None ->
           if not !missing_logged then begin
             Printf.eprintf "waiting for %s ...\n%!" status;
             missing_logged := true
           end);
        if not !finished then ignore (Unix.select [] [] [] period)
      done;
      0
    end
  in
  let status_arg =
    Arg.(value & opt string (Filename.concat ".ise" "fabric-status.json")
         & info [ "status" ] ~docv:"FILE"
             ~doc:"Status snapshot to follow (the $(b,--status-out) of a \
                   running $(b,ise fabric run)).")
  in
  let once_arg =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Print one machine-readable ise-fabric-status/v1 JSON \
                   snapshot to stdout and exit (CI smoke / scripting).")
  in
  let period_arg =
    Arg.(value & opt float 0.5
         & info [ "period" ] ~docv:"S" ~doc:"Refresh period in seconds.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live fabric campaign dashboard: render the supervisor's \
             status snapshots as a refreshing per-worker table until the \
             campaign drains")
    Term.(const run $ status_arg $ once_arg $ period_arg)

(* ------------------------------------------------------------------ *)

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  Printexc.record_backtrace true;
  (* process-global flight recorder: library code (campaign failures,
     chaos machines) records into it, and an uncaught exception dumps
     the ring so there is a post-mortem artifact even for CLI crashes *)
  ignore
    (Ise_obs.Recorder.enable ~capacity:2048
       ~meta:(Ise_obs.Runinfo.stamp_meta () @ [ ("kind", "cli") ])
       ());
  Ise_obs.Recorder.note "cli/start"
    ~args:
      [ ( "argv",
          Ise_telemetry.Json.String
            (String.concat " " (Array.to_list Sys.argv)) ) ];
  let info =
    Cmd.info "ise" ~version:"1.0"
      ~doc:"Imprecise Store Exceptions — litmus tests, workloads, benchmarks"
  in
  let code =
    try
      Cmd.eval' ~catch:false
        (Cmd.group ~default info
           [ litmus_cmd; mbench_cmd; gap_cmd; mix_cmd; explain_cmd; stats_cmd;
             chaos_cmd; fuzz_cmd; report_cmd; compare_cmd; serve_cmd;
             client_cmd; store_cmd; fabric_cmd; trace_cmd; top_cmd ])
    with e ->
      let bt = Printexc.get_backtrace () in
      let msg = Printexc.to_string e in
      Printf.eprintf "ise: uncaught exception: %s\n%s%!" msg bt;
      (match Ise_obs.Recorder.global () with
       | None -> ()
       | Some r ->
         Ise_obs.Recorder.note "cli/uncaught-exception"
           ~args:[ ("exn", Ise_telemetry.Json.String msg) ];
         (* per-run/per-pid journal names: concurrent crashing ise
            processes never clobber each other, and the oldest-first
            prune bounds the directory *)
         (match Ise_obs.Recorder.crash_dump r with
          | Some path ->
            Printf.eprintf "flight recorder dumped to %s\n%!" path
          | None -> ()));
      125
  in
  exit code
