(* ise: command-line front end for the imprecise-store-exceptions
   library — run litmus tests, workloads, and microbenchmarks without
   writing OCaml. *)

open Cmdliner
open Ise_sim

let model_conv =
  let parse = function
    | "sc" -> Ok Ise_model.Axiom.Sc
    | "pc" | "tso" -> Ok Ise_model.Axiom.Pc
    | "wc" | "rvwmo" -> Ok Ise_model.Axiom.Wc
    | s -> Error (`Msg (Printf.sprintf "unknown model %S (sc|pc|wc)" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with
       | Ise_model.Axiom.Sc -> "sc"
       | Ise_model.Axiom.Pc -> "pc"
       | Ise_model.Axiom.Wc -> "wc")
  in
  Arg.conv (parse, print)

let model_arg =
  Arg.(value & opt model_conv Ise_model.Axiom.Wc
       & info [ "m"; "model" ] ~docv:"MODEL" ~doc:"Consistency model (sc|pc|wc).")

(* ------------------------------------------------------------------ *)
(* telemetry plumbing                                                  *)

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file (open in Perfetto or \
                 chrome://tracing).")

let write_file path contents =
  match open_out path with
  | oc ->
    output_string oc contents;
    close_out oc
  | exception Sys_error msg ->
    Printf.eprintf "cannot write trace: %s\n" msg;
    exit 1

let write_trace sink path =
  let json =
    Ise_telemetry.Trace.to_chrome_json (Ise_telemetry.Sink.trace sink)
  in
  write_file path (Ise_telemetry.Json.to_string json);
  Printf.eprintf "wrote trace to %s\n%!" path

(* Builds the machine for a GAP kernel run (shared by `gap` and
   `stats`). *)
let gap_machine kernel nodes degree inject =
  let rng = Ise_util.Rng.create 1 in
  let g = Ise_workload.Graph.power_law rng ~nodes ~avg_degree:degree in
  let base = Config.default.Config.einject_base in
  let tr =
    match kernel with
    | "bfs" -> Ise_workload.Gap.bfs g ~base ~src:0
    | "sssp" -> Ise_workload.Gap.sssp ~max_rounds:3 g ~base ~src:0
    | "bc" -> Ise_workload.Gap.bc g ~base ~sources:[ 0 ]
    | k ->
      Printf.eprintf "unknown kernel %S (bfs|sssp|bc)\n" k;
      exit 1
  in
  let m = Machine.create ~programs:[| Ise_workload.Gap.stream_of tr |] () in
  Machine.set_trace_enabled m false;
  let os = Ise_os.Handler.install m in
  if inject then Ise_workload.Gap.mark_faulting m tr;
  (g, tr, m, os)

(* ------------------------------------------------------------------ *)
(* litmus                                                              *)

let litmus_cmd =
  let run list_only name seeds model no_faults =
    if list_only then begin
      List.iter
        (fun t ->
          Printf.printf "%-16s %s\n" t.Ise_litmus.Lit_test.name
            t.Ise_litmus.Lit_test.doc)
        Ise_litmus.Library.all;
      0
    end
    else begin
      let tests =
        match name with
        | Some n -> (
          match
            List.find_opt
              (fun t -> t.Ise_litmus.Lit_test.name = n)
              Ise_litmus.Library.all
          with
          | Some t -> [ t ]
          | None ->
            Printf.eprintf "unknown test %S (see --list)\n" n;
            exit 1)
        | None -> Ise_litmus.Library.all
      in
      let cfg = Config.with_consistency model Config.default in
      let results =
        Ise_litmus.Lit_run.run_suite ~seeds ~inject_faults:(not no_faults) ~cfg
          tests
      in
      List.iter
        (fun r ->
          Printf.printf
            "%-16s pass=%b contract=%b observed=%d/%d relaxed-outcome=%b \
             exceptions=%d+%d\n"
            r.Ise_litmus.Lit_run.test.Ise_litmus.Lit_test.name
            r.Ise_litmus.Lit_run.pass r.Ise_litmus.Lit_run.contract_ok
            (Ise_model.Outcome.Set.cardinal r.Ise_litmus.Lit_run.observed)
            (Ise_model.Outcome.Set.cardinal r.Ise_litmus.Lit_run.allowed)
            r.Ise_litmus.Lit_run.interesting_observed
            r.Ise_litmus.Lit_run.imprecise_exceptions
            r.Ise_litmus.Lit_run.precise_exceptions)
        results;
      if Ise_litmus.Lit_run.all_pass results then 0 else 1
    end
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List available tests.")
  in
  let name_arg =
    Arg.(value & opt (some string) None
         & info [ "t"; "test" ] ~docv:"NAME" ~doc:"Run a single test.")
  in
  let seeds_arg =
    Arg.(value & opt int 20 & info [ "seeds" ] ~doc:"Perturbed runs per test.")
  in
  let nofaults_arg =
    Arg.(value & flag & info [ "no-faults" ] ~doc:"Disable error injection.")
  in
  Cmd.v
    (Cmd.info "litmus" ~doc:"Run litmus tests on the simulated machine (§6.3)")
    Term.(const run $ list_arg $ name_arg $ seeds_arg $ model_arg $ nofaults_arg)

(* ------------------------------------------------------------------ *)
(* mbench                                                              *)

let mbench_cmd =
  let run stores batching =
    let r = Ise_workload.Mbench.run ~stores ~batching () in
    Printf.printf
      "stores=%d batching=%b\n\
       faulting stores handled: %d in %d invocations (avg batch %.1f)\n\
       cycles per faulting store: uarch=%.1f apply=%.1f other=%.1f total=%.1f\n"
      stores batching r.Ise_workload.Mbench.faulting_stores
      r.Ise_workload.Mbench.invocations r.Ise_workload.Mbench.avg_batch
      r.Ise_workload.Mbench.uarch_per_store r.Ise_workload.Mbench.apply_per_store
      r.Ise_workload.Mbench.other_per_store r.Ise_workload.Mbench.total_per_store;
    0
  in
  let stores_arg =
    Arg.(value & opt int 2000 & info [ "stores" ] ~doc:"Number of stores.")
  in
  let batching_arg =
    Arg.(value & flag & info [ "batching" ] ~doc:"Stream stores back-to-back.")
  in
  Cmd.v
    (Cmd.info "mbench" ~doc:"Figure 5 microbenchmark: per-store overhead")
    Term.(const run $ stores_arg $ batching_arg)

(* ------------------------------------------------------------------ *)
(* gap                                                                 *)

let gap_cmd =
  let run kernel nodes degree inject trace_out =
    let g, tr, m, os = gap_machine kernel nodes degree inject in
    let sink =
      match trace_out with
      | None -> None
      | Some _ ->
        let sink = Ise_telemetry.Sink.create () in
        Machine.attach_telemetry m sink;
        Some sink
    in
    Machine.run m;
    (match (sink, trace_out) with
     | Some sink, Some path ->
       Machine.record_final_stats m;
       write_trace sink path
     | _ -> ());
    let cs = Core.stats (Machine.core m 0) in
    Printf.printf
      "%s on %d nodes / %d edges: %d instrs in %d cycles (IPC %.2f)\n\
       exceptions: %d imprecise (%d faulting stores), %d precise\n\
       results verified: %b\n"
      tr.Ise_workload.Gap.name (Ise_workload.Graph.nodes g)
      (Ise_workload.Graph.nedges g) cs.Core.retired (Machine.cycles m)
      (float_of_int cs.Core.retired /. float_of_int (Machine.cycles m))
      cs.Core.imprecise_exceptions cs.Core.faulting_stores
      os.Ise_os.Handler.precise_faults
      (Ise_workload.Gap.verify m tr);
    0
  in
  let kernel_arg =
    Arg.(value & opt string "bfs"
         & info [ "k"; "kernel" ] ~docv:"KERNEL" ~doc:"bfs|sssp|bc")
  in
  let nodes_arg =
    Arg.(value & opt int 2000 & info [ "nodes" ] ~doc:"Graph nodes.")
  in
  let degree_arg =
    Arg.(value & opt int 8 & info [ "degree" ] ~doc:"Average degree.")
  in
  let inject_arg =
    Arg.(value & flag & info [ "inject" ] ~doc:"Mark all graph memory faulting.")
  in
  Cmd.v
    (Cmd.info "gap" ~doc:"Run a GAP kernel trace on the machine (§6.5)")
    Term.(const run $ kernel_arg $ nodes_arg $ degree_arg $ inject_arg
          $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* stats                                                               *)

let stats_cmd =
  let run kernel nodes degree no_inject format trace_out sample_period =
    if sample_period <= 0 then begin
      Printf.eprintf "--sample-period must be positive\n";
      exit 1
    end;
    let _g, _tr, m, _os = gap_machine kernel nodes degree (not no_inject) in
    let sink = Ise_telemetry.Sink.create () in
    Machine.attach_telemetry ~sample_period m sink;
    Machine.run m;
    Machine.record_final_stats m;
    let reg = Ise_telemetry.Sink.registry sink in
    (match format with
     | "text" -> Format.printf "%a@." Ise_telemetry.Registry.pp_text reg
     | "csv" -> print_string (Ise_telemetry.Registry.to_csv reg)
     | "json" ->
       print_endline
         (Ise_telemetry.Json.to_string_pretty
            (Ise_telemetry.Registry.to_json reg))
     | f ->
       Printf.eprintf "unknown format %S (text|csv|json)\n" f;
       exit 1);
    (match trace_out with
     | Some path -> write_trace sink path
     | None -> ());
    0
  in
  let kernel_arg =
    Arg.(value & opt string "bfs"
         & info [ "k"; "kernel" ] ~docv:"KERNEL" ~doc:"bfs|sssp|bc")
  in
  let nodes_arg =
    Arg.(value & opt int 2000 & info [ "nodes" ] ~doc:"Graph nodes.")
  in
  let degree_arg =
    Arg.(value & opt int 8 & info [ "degree" ] ~doc:"Average degree.")
  in
  let noinject_arg =
    Arg.(value & flag
         & info [ "no-inject" ]
             ~doc:"Do not mark graph memory faulting (no exception episodes).")
  in
  let format_arg =
    Arg.(value & opt string "text"
         & info [ "f"; "format" ] ~docv:"FMT" ~doc:"text|csv|json")
  in
  let period_arg =
    Arg.(value & opt int 200
         & info [ "sample-period" ] ~docv:"CYCLES"
             ~doc:"Probe sampling period in cycles.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a GAP kernel with full telemetry and dump the metrics \
             registry (optionally a Perfetto trace)")
    Term.(const run $ kernel_arg $ nodes_arg $ degree_arg $ noinject_arg
          $ format_arg $ trace_out_arg $ period_arg)

(* ------------------------------------------------------------------ *)
(* mix                                                                 *)

let mix_cmd =
  let run workload length cores model =
    let p =
      try Ise_workload.Mix.find workload
      with Not_found ->
        Printf.eprintf "unknown workload %S; available: %s\n" workload
          (String.concat ", "
             (List.map (fun p -> p.Ise_workload.Mix.name) Ise_workload.Mix.table3));
        exit 1
    in
    let mk () =
      Ise_workload.Mix.multicore_streams ~seed:5 ~length_per_core:length ~cores p
    in
    let cfg =
      match model with
      | Ise_model.Axiom.Sc ->
        { (Config.with_consistency model Config.default) with
          Config.sc_speculative_loads = true }
      | _ -> Config.with_consistency model Config.default
    in
    let r = Ise_aso.Aso_core.run ~cfg ~programs:mk () in
    Printf.printf
      "%s on %d cores x %d instrs under %s: %d cycles, IPC %.3f\n\
       SB occupancy watermark %d, outstanding-drain watermark %d\n"
      workload cores length
      (match model with
       | Ise_model.Axiom.Sc -> "SC"
       | Ise_model.Axiom.Pc -> "PC"
       | Ise_model.Axiom.Wc -> "WC")
      r.Ise_aso.Aso_core.cycles r.Ise_aso.Aso_core.ipc
      r.Ise_aso.Aso_core.sb_occupancy_watermark
      r.Ise_aso.Aso_core.sb_inflight_watermark;
    0
  in
  let workload_arg =
    Arg.(value & opt string "BFS" & info [ "w"; "workload" ] ~docv:"NAME"
         ~doc:"Table 3 workload name.")
  in
  let length_arg =
    Arg.(value & opt int 30_000 & info [ "length" ] ~doc:"Instructions per core.")
  in
  let cores_arg = Arg.(value & opt int 4 & info [ "cores" ] ~doc:"Cores.") in
  Cmd.v
    (Cmd.info "mix" ~doc:"Run a Table 3 instruction mix and report IPC")
    Term.(const run $ workload_arg $ length_arg $ cores_arg $ model_arg)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)

let explain_cmd =
  let run name model =
    let test =
      match
        List.find_opt (fun t -> t.Ise_litmus.Lit_test.name = name)
          Ise_litmus.Library.all
      with
      | Some t -> t
      | None ->
        Printf.eprintf "unknown test %S (see `ise litmus --list`)\n" name;
        exit 1
    in
    let cfg = { Ise_model.Axiom.model; faults = Ise_model.Axiom.Precise } in
    Format.printf "%a@." Ise_litmus.Lit_test.pp test;
    let allowed = Ise_model.Check.allowed cfg test.Ise_litmus.Lit_test.threads in
    Format.printf "allowed outcomes under %s:@." (Ise_model.Axiom.name cfg);
    Ise_model.Outcome.Set.iter
      (fun o -> Format.printf "  %a@." Ise_model.Outcome.pp o)
      allowed;
    (* explain the test's own condition outcome *)
    let sat =
      Ise_model.Outcome.Set.filter
        (Ise_litmus.Lit_test.cond_holds test.Ise_litmus.Lit_test.cond)
        allowed
    in
    if not (Ise_model.Outcome.Set.is_empty sat) then begin
      Format.printf "the test's interesting outcome is ALLOWED; a witness:@.";
      match
        Ise_model.Check.explain cfg test.Ise_litmus.Lit_test.threads
          (Ise_model.Outcome.Set.choose sat)
      with
      | Ise_model.Check.Allowed_by witness -> print_endline witness
      | _ -> ()
    end
    else begin
      (* reconstruct a concrete forbidden target from the condition by
         taking any unreachable-or-forbidden completion: try every
         outcome of the weakest model *)
      let wc_all =
        Ise_model.Check.allowed
          { Ise_model.Axiom.model = Ise_model.Axiom.Wc;
            faults = Ise_model.Axiom.Split_stream }
          test.Ise_litmus.Lit_test.threads
      in
      let candidates =
        Ise_model.Outcome.Set.filter
          (Ise_litmus.Lit_test.cond_holds test.Ise_litmus.Lit_test.cond)
          wc_all
      in
      if Ise_model.Outcome.Set.is_empty candidates then
        print_endline
          "the interesting outcome is FORBIDDEN (not producible by any \
           candidate execution)"
      else begin
        let target = Ise_model.Outcome.Set.choose candidates in
        Format.printf "the outcome %a is FORBIDDEN; the cycle:@."
          Ise_model.Outcome.pp target;
        match Ise_model.Check.explain cfg test.Ise_litmus.Lit_test.threads target with
        | Ise_model.Check.Forbidden_cycle cycle ->
          List.iter (fun e -> Printf.printf "  %s ->\n" e) cycle
        | Ise_model.Check.Unreachable -> print_endline "  (unreachable)"
        | Ise_model.Check.Allowed_by _ -> print_endline "  (allowed?!)"
      end
    end;
    0
  in
  let name_arg =
    Arg.(required & opt (some string) None
         & info [ "t"; "test" ] ~docv:"NAME" ~doc:"Litmus test to explain.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Why a litmus outcome is allowed or forbidden (herd-style cycles)")
    Term.(const run $ name_arg $ model_arg)

(* ------------------------------------------------------------------ *)

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "ise" ~version:"1.0"
      ~doc:"Imprecise Store Exceptions — litmus tests, workloads, benchmarks"
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [ litmus_cmd; mbench_cmd; gap_cmd; mix_cmd; explain_cmd; stats_cmd ]))
