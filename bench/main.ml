(* Benchmark harness: regenerates every table and figure of the paper.

   Usage:
     dune exec bench/main.exe              (everything)
     dune exec bench/main.exe -- table3    (one experiment)
     dune exec bench/main.exe -- -j 4      (sections in parallel)

   Sections: table1 table2 table3 table5 table6 fig1 fig2 fig5 fig6
             litmus ablation bechamel enum pool serve fabric

   With -j N (default: detected core count) sections run on an
   Ise_pool worker pool, each with stdout captured and re-emitted in
   section order, so the combined output is byte-identical to a
   sequential run; -j 1 runs everything in-process. *)

open Ise_util
open Ise_sim

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '#');
  flush stdout

(* Machine-readable results alongside the printed tables, one
   BENCH_<section>.json per section, so the numbers are trackable
   across revisions without scraping stdout.  Every file carries the
   run_id/git-rev stamp so it joins with ledger entries and traces. *)
let emit_bench name json =
  let stamped =
    match json with
    | Ise_telemetry.Json.Obj fields ->
      Ise_telemetry.Json.Obj (Ise_obs.Runinfo.stamp () @ fields)
    | other ->
      Ise_telemetry.Json.Obj (Ise_obs.Runinfo.stamp () @ [ ("rows", other) ])
  in
  let file = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out file in
  output_string oc (Ise_telemetry.Json.to_string_pretty stamped);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[bench] wrote %s\n%!" file

let base = Config.default.Config.einject_base

(* ------------------------------------------------------------------ *)
(* Table 1: classification of x86 exceptions                           *)

let table1 () =
  section "Table 1: Classification of x86 exceptions";
  let t = Table.create ~headers:[ "Class"; "Stage"; "Exceptions" ] in
  List.iter
    (fun e ->
      Table.add_row t
        [ Ise_core.Fault.x86_class_to_string e.Ise_core.Fault.cls;
          e.Ise_core.Fault.stage;
          String.concat ", " e.Ise_core.Fault.names ])
    Ise_core.Fault.x86_taxonomy;
  Table.print t;
  print_endline
    "Only machine checks originate in the cache/memory hierarchy — the\n\
     paper's starting observation (Section 2.2)."

(* ------------------------------------------------------------------ *)
(* Table 2: system parameters                                          *)

let table2 () =
  section "Table 2: Simulated system parameters";
  Format.printf "%a@." Config.pp Config.default

(* ------------------------------------------------------------------ *)
(* Table 3: WC speedup over SC and ASO speculation state               *)

let table3_length = 20_000
let table3_cores = 4

let table3 () =
  section "Table 3: Instruction mix, WC speedup, ASO speculation state (KB)";
  print_endline
    "(per-core speculation state required to reach 98% of WC IPC;\n\
     three systems: baseline, 2x memory latency, 4x store-to-load skew)\n";
  let t =
    Table.create
      ~headers:
        [ "Suite"; "Workload"; "St%"; "Ld%"; "Sync%"; "WC speedup";
          "KB base"; "KB 2xmem"; "KB 4xskew" ]
  in
  let rows = ref [] in
  List.iter
    (fun p ->
      let mk () =
        Ise_workload.Mix.multicore_streams ~seed:5
          ~length_per_core:table3_length ~cores:table3_cores p
      in
      let size cfg =
        Ise_aso.Aso_core.size_for_wc_performance ~cfg ~programs:mk ()
      in
      let s_base = size Config.default in
      let s_2x = size (Config.with_2x_memory Config.default) in
      let s_skew = size (Config.with_4x_store_skew Config.default) in
      Table.add_row t
        [ p.Ise_workload.Mix.suite; p.Ise_workload.Mix.name;
          Table.cell_i p.Ise_workload.Mix.store_pct;
          Table.cell_i p.Ise_workload.Mix.load_pct;
          Table.cell_i p.Ise_workload.Mix.sync_pct;
          Table.cell_f s_base.Ise_aso.Aso_core.wc_speedup;
          Table.cell_f ~decimals:1 s_base.Ise_aso.Aso_core.state_kb;
          Table.cell_f ~decimals:1 s_2x.Ise_aso.Aso_core.state_kb;
          Table.cell_f ~decimals:1 s_skew.Ise_aso.Aso_core.state_kb ];
      rows :=
        Ise_telemetry.Json.Obj
          [ ("suite", Ise_telemetry.Json.String p.Ise_workload.Mix.suite);
            ("workload", Ise_telemetry.Json.String p.Ise_workload.Mix.name);
            ("wc_speedup",
             Ise_telemetry.Json.Float s_base.Ise_aso.Aso_core.wc_speedup);
            ("kb_base",
             Ise_telemetry.Json.Float s_base.Ise_aso.Aso_core.state_kb);
            ("kb_2xmem",
             Ise_telemetry.Json.Float s_2x.Ise_aso.Aso_core.state_kb);
            ("kb_4xskew",
             Ise_telemetry.Json.Float s_skew.Ise_aso.Aso_core.state_kb) ]
        :: !rows;
      flush stdout)
    Ise_workload.Mix.table3;
  Table.print t;
  emit_bench "table3" (Ise_telemetry.Json.List (List.rev !rows));
  print_endline
    "\nShape checks (paper): 2x memory latency needs about the same state\n\
     as the baseline; 4x store-to-load skew needs considerably more;\n\
     the store-heavy BC gains the most from WC, SSSP the least."

(* ------------------------------------------------------------------ *)
(* Table 5: the contract, exercised                                    *)

let table5 () =
  section "Table 5: The cores/interface/OS contract (checked on a live run)";
  let prog =
    List.init 8 (fun i ->
        Sim_instr.St
          { addr = Sim_instr.addr (base + (i * 4096));
            data = Sim_instr.Imm (i + 1) })
  in
  let m = Machine.create ~programs:[| Sim_instr.of_list prog |] () in
  ignore (Ise_os.Handler.install m);
  for i = 0 to 7 do
    Einject.set_faulting (Machine.einject m) (base + (i * 4096))
  done;
  Machine.run m;
  let trace = Machine.trace m in
  Printf.printf "interface operations traced: %d\n" (List.length trace);
  List.iteri
    (fun i ev ->
      if i < 12 then Format.printf "  %a@." Ise_core.Contract.pp_event ev)
    trace;
  if List.length trace > 12 then Printf.printf "  ... (%d more)\n" (List.length trace - 12);
  (match Machine.check_contract m with
   | Ok () -> print_endline "contract: SATISFIED (all three rules)"
   | Error v ->
     Printf.printf "contract: VIOLATED [%s] %s\n" v.Ise_core.Contract.rule
       v.Ise_core.Contract.detail)

(* ------------------------------------------------------------------ *)
(* Table 6: litmus coverage of ordering relations                      *)

let table6 () =
  section "Table 6: Ordering relations covered by the litmus suite";
  let generated =
    Ise_litmus.Gen.generate_suite ~seed:2023 ~count:1574
      Ise_litmus.Gen.default_params
  in
  let suite = Ise_litmus.Library.all @ generated in
  Printf.printf "suite: %d hand-written + %d generated tests\n\n"
    (List.length Ise_litmus.Library.all)
    (List.length generated);
  let t =
    Table.create ~headers:[ "Ordering relation"; "Explanation"; "Cases covered" ]
  in
  List.iter
    (fun (cat, n) ->
      Table.add_row t
        [ Ise_litmus.Classify.name cat; Ise_litmus.Classify.description cat;
          Table.cell_i n ])
    (Ise_litmus.Classify.coverage suite);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figure 1: the message-passing litmus test                           *)

let fig1 () =
  section "Figure 1: Message-passing litmus test (fenced)";
  let test = Ise_litmus.Library.mp_fenced in
  Format.printf "%a@." Ise_litmus.Lit_test.pp test;
  let allowed = Ise_model.Check.allowed Ise_model.Axiom.wc test.Ise_litmus.Lit_test.threads in
  print_endline "model-allowed outcomes under WC (with fences):";
  Ise_model.Outcome.Set.iter
    (fun o -> Format.printf "  %a@." Ise_model.Outcome.pp o)
    allowed;
  print_endline "forbidden outcome: 1:r0=1 (L(B)=1) with 1:r1=0 (L(A)=0)";
  let violation =
    Ise_model.Outcome.make
      ~regs:[ ((1, 0), 1); ((1, 1), 0) ]
      ~mem:[ (0, 1); (1, 1) ]
  in
  (match
     Ise_model.Check.explain Ise_model.Axiom.wc test.Ise_litmus.Lit_test.threads
       violation
   with
   | Ise_model.Check.Forbidden_cycle cycle ->
     print_endline "the happens-before cycle that forbids it:";
     List.iter (fun e -> Printf.printf "    %s ->\n" e) cycle
   | _ -> print_endline "(unexpectedly not forbidden)");
  let r = Ise_litmus.Lit_run.run ~seeds:30 ~inject_faults:true test in
  Printf.printf
    "operational: %d runs with exceptions on every access — violation \
     observed: %b (pass=%b, contract=%b)\n"
    r.Ise_litmus.Lit_run.runs r.Ise_litmus.Lit_run.interesting_observed
    r.Ise_litmus.Lit_run.pass r.Ise_litmus.Lit_run.contract_ok

(* ------------------------------------------------------------------ *)
(* Figure 2: the PUT/GET race                                          *)

let fig2 () =
  section "Figure 2: PUT/GET race — split stream vs same stream";
  let show mode name =
    let outcomes = Ise_model.Imprecise.fig2_outcomes mode in
    Printf.printf "%s: reachable observer outcomes (L(B), L(A)):\n" name;
    List.iter
      (fun o ->
        let violation = o.Ise_model.Imprecise.l_b = 1 && o.Ise_model.Imprecise.l_a = 0 in
        Printf.printf "  L(B)=%d L(A)=%d%s\n" o.Ise_model.Imprecise.l_b
          o.Ise_model.Imprecise.l_a
          (if violation then "   <-- PC VIOLATION" else ""))
      outcomes;
    Printf.printf "  violates PC: %b\n" (Ise_model.Imprecise.fig2_violates_pc mode)
  in
  show Ise_model.Imprecise.Split "(a) split stream";
  show Ise_model.Imprecise.Same "(b) same stream";
  print_endline
    "\nConclusion (Section 4.5-4.6): the split-stream treatment requires a\n\
     hardware/software barrier; the same-stream treatment is race-free."

(* ------------------------------------------------------------------ *)
(* Figure 5: overhead breakdown with and without batching              *)

let fig5 () =
  section "Figure 5: Overhead breakdown of imprecise exceptions (cycles/store)";
  let unbatched = Ise_workload.Mbench.run ~stores:2000 ~batching:false () in
  let batched = Ise_workload.Mbench.run ~stores:2000 ~batching:true () in
  let t =
    Table.create
      ~headers:
        [ "Variant"; "uarch"; "apply"; "other OS"; "total"; "avg batch";
          "invocations" ]
  in
  let row name (r : Ise_workload.Mbench.result) =
    Table.add_row t
      [ name;
        Table.cell_f ~decimals:1 r.Ise_workload.Mbench.uarch_per_store;
        Table.cell_f ~decimals:1 r.Ise_workload.Mbench.apply_per_store;
        Table.cell_f ~decimals:1 r.Ise_workload.Mbench.other_per_store;
        Table.cell_f ~decimals:1 r.Ise_workload.Mbench.total_per_store;
        Table.cell_f ~decimals:1 r.Ise_workload.Mbench.avg_batch;
        Table.cell_i r.Ise_workload.Mbench.invocations ]
  in
  row "no batching" unbatched;
  row "batching" batched;
  Table.print t;
  let variant (r : Ise_workload.Mbench.result) =
    Ise_telemetry.Json.Obj
      [ ("uarch_per_store",
         Ise_telemetry.Json.Float r.Ise_workload.Mbench.uarch_per_store);
        ("apply_per_store",
         Ise_telemetry.Json.Float r.Ise_workload.Mbench.apply_per_store);
        ("other_per_store",
         Ise_telemetry.Json.Float r.Ise_workload.Mbench.other_per_store);
        ("total_per_store",
         Ise_telemetry.Json.Float r.Ise_workload.Mbench.total_per_store);
        ("avg_batch",
         Ise_telemetry.Json.Float r.Ise_workload.Mbench.avg_batch);
        ("invocations",
         Ise_telemetry.Json.Int r.Ise_workload.Mbench.invocations) ]
  in
  emit_bench "fig5"
    (Ise_telemetry.Json.Obj
       [ ("no_batching", variant unbatched); ("batching", variant batched);
         ("speedup",
          Ise_telemetry.Json.Float
            (Ise_workload.Mbench.speedup unbatched batched)) ]);
  Printf.printf
    "\nper-store speedup from batching: %.2fx\n\
     (paper: ~600 cycles per store unbatched, microarchitectural part a\n\
     tiny fraction, significant reduction with batching)\n"
    (Ise_workload.Mbench.speedup unbatched batched)

(* ------------------------------------------------------------------ *)
(* Figure 6: relative performance of GAP and Tailbench                 *)

let fig6 () =
  section "Figure 6: Relative performance with imprecise store exceptions";
  let t =
    Table.create
      ~headers:
        [ "Workload"; "Metric"; "Baseline"; "Imprecise"; "Relative";
          "Imprecise exns"; "Precise exns" ]
  in
  (* GAP kernels on a power-law graph, metric = execution time *)
  let rng = Rng.create 2023 in
  let g = Ise_workload.Graph.power_law rng ~nodes:3000 ~avg_degree:8 in
  Printf.printf "GAP graph: %d nodes, %d edges\n" (Ise_workload.Graph.nodes g)
    (Ise_workload.Graph.nedges g);
  let bench_rows = ref [] in
  let bench_row name metric ~baseline ~imprecise ~relative ~exns =
    bench_rows :=
      Ise_telemetry.Json.Obj
        [ ("workload", Ise_telemetry.Json.String name);
          ("metric", Ise_telemetry.Json.String metric);
          ("baseline", Ise_telemetry.Json.Float baseline);
          ("imprecise", Ise_telemetry.Json.Float imprecise);
          ("relative", Ise_telemetry.Json.Float relative);
          ("imprecise_exceptions", Ise_telemetry.Json.Int exns) ]
      :: !bench_rows
  in
  let gap_row name tr =
    let cmp =
      Ise_workload.Runner.compare_with_faults
        ~mk_programs:(fun () -> [| Ise_workload.Gap.stream_of tr |])
        ~mark:(fun m -> Ise_workload.Gap.mark_faulting m tr)
        ~verify:(fun m -> Ise_workload.Gap.verify m tr)
        ()
    in
    Table.add_row t
      [ name; "exec cycles";
        Table.cell_i cmp.Ise_workload.Runner.baseline.Ise_workload.Runner.cycles;
        Table.cell_i cmp.Ise_workload.Runner.imprecise.Ise_workload.Runner.cycles;
        Table.cell_f ~decimals:3 cmp.Ise_workload.Runner.relative_perf;
        Table.cell_i
          cmp.Ise_workload.Runner.imprecise.Ise_workload.Runner
            .imprecise_exceptions;
        Table.cell_i
          cmp.Ise_workload.Runner.imprecise.Ise_workload.Runner.precise_faults ];
    bench_row name "exec_cycles"
      ~baseline:
        (float_of_int
           cmp.Ise_workload.Runner.baseline.Ise_workload.Runner.cycles)
      ~imprecise:
        (float_of_int
           cmp.Ise_workload.Runner.imprecise.Ise_workload.Runner.cycles)
      ~relative:cmp.Ise_workload.Runner.relative_perf
      ~exns:
        cmp.Ise_workload.Runner.imprecise.Ise_workload.Runner
          .imprecise_exceptions;
    flush stdout
  in
  gap_row "BFS" (Ise_workload.Gap.bfs g ~base ~src:0);
  gap_row "SSSP" (Ise_workload.Gap.sssp ~max_rounds:3 g ~base ~src:0);
  gap_row "BC" (Ise_workload.Gap.bc g ~base ~sources:[ 0 ]);
  (* Tailbench request loops, metric = throughput *)
  let tail_row name (tr : Ise_workload.Tailbench.trace) =
    let run mark =
      let m =
        Machine.create ~programs:[| Ise_workload.Tailbench.stream_of tr |] ()
      in
      Machine.set_trace_enabled m false;
      let os = Ise_os.Handler.install m in
      if mark then Ise_workload.Tailbench.mark_faulting m tr;
      Machine.run m;
      let imprecise =
        (Core.stats (Machine.core m 0)).Core.imprecise_exceptions
      in
      (Ise_workload.Tailbench.throughput tr ~cycles:(Machine.cycles m),
       imprecise, os.Ise_os.Handler.precise_faults)
    in
    let tput_base, _, _ = run false in
    let tput_imp, imprecise, precise = run true in
    Table.add_row t
      [ name; "req/kcycle";
        Table.cell_f ~decimals:2 tput_base;
        Table.cell_f ~decimals:2 tput_imp;
        Table.cell_f ~decimals:3 (tput_imp /. tput_base);
        Table.cell_i imprecise; Table.cell_i precise ];
    bench_row name "req_per_kcycle" ~baseline:tput_base ~imprecise:tput_imp
      ~relative:(tput_imp /. tput_base) ~exns:imprecise;
    flush stdout
  in
  (* fixed data structures, so more requests amortise the one-time
     first-touch faults — the paper runs minutes of requests *)
  tail_row "Silo" (Ise_workload.Tailbench.silo ~requests:15_000 ~base ());
  tail_row "Masstree"
    (Ise_workload.Tailbench.masstree ~requests:50_000 ~base ());
  Table.print t;
  emit_bench "fig6" (Ise_telemetry.Json.List (List.rev !bench_rows));
  print_endline
    "\nAll workloads run start to finish with exceptions transparently\n\
     handled (results verified against fault-free runs).  The paper\n\
     reports >96.5% relative performance on GAP and <4% throughput loss\n\
     on Tailbench at a much lower exception-per-instruction rate (its\n\
     graphs are ~300x larger, so fixed handler costs amortise further)."

(* ------------------------------------------------------------------ *)
(* Litmus campaign (the §6.3 experiment)                               *)

let litmus () =
  section "Litmus campaign: observed ⊆ allowed under error injection (§6.3)";
  let t_start = Unix.gettimeofday () in
  let generated =
    Ise_litmus.Gen.generate_suite ~seed:7 ~count:40 Ise_litmus.Gen.default_params
  in
  let campaigns = ref [] in
  let campaign name cfg tests =
    let results =
      Ise_litmus.Lit_run.run_suite ~seeds:12 ~inject_faults:true ~cfg tests
    in
    let failed =
      List.filter
        (fun r -> not (r.Ise_litmus.Lit_run.pass && r.Ise_litmus.Lit_run.contract_ok))
        results
    in
    let imprecise =
      List.fold_left
        (fun acc r -> acc + r.Ise_litmus.Lit_run.imprecise_exceptions)
        0 results
    in
    let precise =
      List.fold_left
        (fun acc r -> acc + r.Ise_litmus.Lit_run.precise_exceptions)
        0 results
    in
    Printf.printf
      "%-4s %3d tests x 12 runs: %s (%d imprecise + %d precise exceptions \
       handled)\n"
      name (List.length tests)
      (if failed = [] then "NO VIOLATIONS"
       else Printf.sprintf "%d FAILURES" (List.length failed))
      imprecise precise;
    List.iter
      (fun r ->
        Printf.printf "  FAILED: %s\n" r.Ise_litmus.Lit_run.test.Ise_litmus.Lit_test.name)
      failed;
    campaigns :=
      Ise_telemetry.Json.Obj
        [ ("model", Ise_telemetry.Json.String name);
          ("tests", Ise_telemetry.Json.Int (List.length tests));
          ("failures", Ise_telemetry.Json.Int (List.length failed));
          ("imprecise_exceptions", Ise_telemetry.Json.Int imprecise);
          ("precise_exceptions", Ise_telemetry.Json.Int precise) ]
      :: !campaigns;
    flush stdout
  in
  campaign "WC" (Config.with_consistency Ise_model.Axiom.Wc Config.default)
    (Ise_litmus.Library.all @ generated);
  campaign "PC" (Config.with_consistency Ise_model.Axiom.Pc Config.default)
    Ise_litmus.Library.all;
  campaign "SC" (Config.with_consistency Ise_model.Axiom.Sc Config.default)
    Ise_litmus.Library.all;
  let wall = Unix.gettimeofday () -. t_start in
  Printf.printf "litmus section wall: %.3f s\n" wall;
  emit_bench "litmus"
    (Ise_telemetry.Json.Obj
       [ ("campaigns", Ise_telemetry.Json.List (List.rev !campaigns));
         (* wall_s tracks the §6.3 inner loop across commits; the
            model-side verdict work dominates it, so an enumerator
            regression shows up here first *)
         ("wall_s", Ise_telemetry.Json.Float wall) ])

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablation () =
  section "Ablation 1: batching sweep (analytic model, cycles per store)";
  let t = Table.create ~headers:[ "Batch size"; "uarch"; "apply"; "other"; "total" ] in
  List.iter
    (fun n ->
      let b =
        Ise_core.Batch.per_store_overhead Ise_core.Batch.default_cost_model
          ~batch_size:n
      in
      Table.add_row t
        [ Table.cell_i n;
          Table.cell_f ~decimals:1 b.Ise_core.Batch.uarch;
          Table.cell_f ~decimals:1 b.Ise_core.Batch.apply;
          Table.cell_f ~decimals:1 b.Ise_core.Batch.os_other_cycles;
          Table.cell_f ~decimals:1 (Ise_core.Batch.total b) ])
    [ 1; 2; 4; 8; 16; 32 ];
  Table.print t;

  section "Ablation 2: batching with major faults (IO overlap)";
  let t = Table.create ~headers:[ "Batch size"; "total cycles/store" ] in
  List.iter
    (fun n ->
      let b =
        Ise_core.Batch.per_store_overhead ~major_faults:true
          Ise_core.Batch.default_cost_model ~batch_size:n
      in
      Table.add_row t [ Table.cell_i n; Table.cell_f ~decimals:0 (Ise_core.Batch.total b) ])
    [ 1; 4; 16 ];
  Table.print t;

  section "Ablation 3: split stream vs same stream on the machine (MP under PC)";
  let run mode =
    let cfg =
      { (Config.with_consistency Ise_model.Axiom.Pc Config.default) with
        Config.protocol_mode = mode }
    in
    let r =
      Ise_litmus.Lit_run.run ~seeds:25 ~inject_faults:true ~cfg
        Ise_litmus.Library.mp
    in
    Printf.printf
      "%-12s observed %d outcomes, within its model: %b, MP violation seen: %b\n"
      (Ise_core.Protocol.mode_to_string mode)
      (Ise_model.Outcome.Set.cardinal r.Ise_litmus.Lit_run.observed)
      r.Ise_litmus.Lit_run.pass r.Ise_litmus.Lit_run.interesting_observed
  in
  run Ise_core.Protocol.Same_stream;
  run Ise_core.Protocol.Split_stream;
  print_endline
    "(the same-stream machine stays within PC; the split-stream machine is\n\
     checked against the weaker split-stream model — Section 4.5's point)";

  section "Ablation 4: FSB occupancy vs store-buffer size";
  let m =
    Machine.create
      ~programs:
        [| Sim_instr.of_list
             (List.init 24 (fun i ->
                  Sim_instr.St
                    { addr = Sim_instr.addr (base + (i * 4096));
                      data = Sim_instr.Imm 1 })) |]
      ()
  in
  ignore (Ise_os.Handler.install m);
  for i = 0 to 23 do
    Einject.set_faulting (Machine.einject m) (base + (i * 4096))
  done;
  Machine.run m;
  let fsb = Core.fsb (Machine.core m 0) in
  Printf.printf
    "FSB entries=%d, high watermark=%d, total appended=%d (the FSB sized to\n\
     the SB can never overflow: one handler invocation drains it fully)\n"
    (Ise_core.Fsb.entries fsb)
    (Ise_core.Fsb.high_watermark fsb)
    (Ise_core.Fsb.total_appended fsb);

  section "Ablation 5: Midgard-style late translation as the fault source";
  let midgard = Midgard.create ~walk_latency:24 () in
  let vma = base + 0x0800_0000 in
  Midgard.add_vma midgard ~base:vma ~bytes:(64 * 4096);
  let prog =
    List.concat
      (List.init 64 (fun i ->
           [ Sim_instr.St
               { addr = Sim_instr.addr (vma + (i * 4096));
                 data = Sim_instr.Imm (i + 1) };
             Sim_instr.Nop 4 ]))
  in
  let m = Machine.create ~programs:[| Sim_instr.of_list prog |] () in
  Memsys.add_interceptor (Machine.mem m) (Midgard.interceptor midgard);
  let config =
    { Ise_os.Handler.costs = Ise_core.Batch.default_cost_model;
      policy =
        Ise_os.Handler.Midgard_paging
          { midgard; major_pct = 0; io_latency = 0 } }
  in
  let os = Ise_os.Handler.install ~config m in
  Machine.run m;
  Printf.printf
    "64 stores into a demand-backed VMA: %d late-translation faults, %d\n\
     imprecise episodes (avg batch %.1f), %d page walks, all %d pages mapped\n\
     and stores applied: %b — the Midgard scenario of Section 2.2, Example 2\n"
    (Midgard.faults_taken midgard)
    (Core.stats (Machine.core m 0)).Core.imprecise_exceptions
    (Ise_util.Stats.mean os.Ise_os.Handler.batch_sizes)
    (Midgard.walks_performed midgard)
    (Midgard.pages_mapped midgard)
    (let ok = ref true in
     for i = 0 to 63 do
       if Machine.read_word m (vma + (i * 4096)) <> i + 1 then ok := false
     done;
     !ok)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let bechamel_section () =
  section "Bechamel micro-benchmarks (core primitives)";
  let open Bechamel in
  let open Toolkit in
  let fsb_roundtrip =
    Test.make ~name:"fsb-append-drain"
      (Staged.stage (fun () ->
           let fsb = Ise_core.Fsb.create ~entries:32 ~base:0 () in
           for i = 0 to 31 do
             ignore
               (Ise_core.Fsb.fsbc_append fsb
                  { Ise_core.Fault.core = 0; seq = i; addr = 8 * i; data = i;
                    byte_mask = 0xFF; code = Ise_core.Fault.Bus_error })
           done;
           ignore (Ise_core.Fsb.os_drain_all fsb)))
  in
  let mp_enumeration =
    let threads = Ise_litmus.Library.mp.Ise_litmus.Lit_test.threads in
    Test.make ~name:"model-enumerate-mp"
      (Staged.stage (fun () ->
           ignore (Ise_model.Check.allowed Ise_model.Axiom.wc threads)))
  in
  let machine_1k =
    Test.make ~name:"machine-1k-instrs"
      (Staged.stage (fun () ->
           let prog =
             List.init 1000 (fun i ->
                 if i mod 3 = 0 then
                   Sim_instr.St
                     { addr = Sim_instr.addr (0x8000_0000 + (8 * (i mod 128)));
                       data = Sim_instr.Imm i }
                 else Sim_instr.Nop 1)
           in
           let m = Machine.create ~programs:[| Sim_instr.of_list prog |] () in
           Machine.set_hooks m
             { Machine.on_imprecise = (fun _ -> ());
               on_precise = (fun ~core:_ ~addr:_ ~code:_ ~retry:_ -> ()) };
           Machine.run m))
  in
  let ring =
    Test.make ~name:"ring-buffer-push-pop"
      (Staged.stage (fun () ->
           let rb = Ring_buffer.create ~capacity:64 in
           for i = 0 to 63 do
             Ring_buffer.push rb i
           done;
           while not (Ring_buffer.is_empty rb) do
             ignore (Ring_buffer.pop rb)
           done))
  in
  let tests =
    Test.make_grouped ~name:"ise" [ ring; fsb_roundtrip; mp_enumeration; machine_1k ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "%-28s %14.1f ns/op\n" name est
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Pool: the parallel-execution engine, benchmarked on itself          *)

(* ------------------------------------------------------------------ *)
(* enum: reference enumerate-then-check vs pruned+symmetry engine      *)

let enum_bench () =
  section "Enum: reference enumerate-then-check vs pruned+symmetry engine";
  let module Lit_test = Ise_litmus.Lit_test in
  let module Axiom = Ise_model.Axiom in
  let module Enum = Ise_model.Enum in
  let module Check = Ise_model.Check in
  (* the litmus library plus generated programs at the top of the
     validated size envelope, where pruning and symmetry actually bite *)
  let big =
    { Ise_litmus.Gen.default_params with
      Ise_litmus.Gen.max_threads = 4; max_instrs = 5; max_locs = 3 }
  in
  let tests =
    List.map (fun t -> (t.Lit_test.name, t.Lit_test.threads))
      Ise_litmus.Library.all
    @ List.mapi
        (fun i t -> (Printf.sprintf "gen%02d" i, t.Lit_test.threads))
        (Ise_litmus.Gen.generate_suite ~seed:11 ~count:12 big)
  in
  let configs = [ Axiom.sc; Axiom.pc; Axiom.wc ] in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let ref_sets, ref_s =
    time (fun () ->
        List.concat_map
          (fun (_, threads) ->
            List.map (fun cfg -> Check.allowed_ref cfg threads) configs)
          tests)
  in
  let run_fast () =
    List.concat_map
      (fun (_, threads) ->
        List.map (fun cfg -> fst (Enum.search cfg threads)) configs)
      tests
  in
  let fast_sets, fast_s = time run_fast in
  let fast_sets2, _ = time run_fast in
  let equal_sets = List.for_all2 Ise_model.Outcome.Set.equal in
  let identical = equal_sets ref_sets fast_sets in
  let deterministic = equal_sets fast_sets fast_sets2 in
  let t = Table.create ~headers:[ "Engine"; "Wall (s)"; "Speedup" ] in
  Table.add_row t
    [ "reference"; Table.cell_f ~decimals:3 ref_s; Table.cell_f ~decimals:2 1. ];
  Table.add_row t
    [ "pruned+symmetry"; Table.cell_f ~decimals:3 fast_s;
      Table.cell_f ~decimals:2 (ref_s /. fast_s) ];
  Table.print t;
  Printf.printf
    "%d programs x %d models; outcome sets identical to reference: %b; \
     double-run deterministic: %b\n"
    (List.length tests) (List.length configs) identical deterministic;
  emit_bench "enum"
    (Ise_telemetry.Json.Obj
       [ ("programs", Ise_telemetry.Json.Int (List.length tests));
         ("ref_wall_s", Ise_telemetry.Json.Float ref_s);
         ("wall_s", Ise_telemetry.Json.Float fast_s);
         ("speedup_vs_ref", Ise_telemetry.Json.Float (ref_s /. fast_s));
         ("identical_to_reference", Ise_telemetry.Json.Bool identical);
         ("deterministic", Ise_telemetry.Json.Bool deterministic) ]);
  if not (identical && deterministic) then begin
    Printf.eprintf "[bench] enum: fast engine diverged from reference!\n%!";
    exit 1
  end

let pool_bench () =
  section "Pool: fixed-seed fuzz campaign, -j 1 vs -j 4";
  let jobs = 4 in
  let campaign j =
    let t0 = Unix.gettimeofday () in
    let r =
      Ise_fuzz.Campaign.run ~count:24 ~seeds_per_test:8 ~jobs:j ~seed:2023 ()
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let r1, t1 = campaign 1 in
  let rn, tn = campaign jobs in
  (* byte-level fingerprint: counts plus every failure rendered as the
     corpus artifact it would be saved as *)
  let fingerprint (r : Ise_fuzz.Campaign.report) =
    ( r.Ise_fuzz.Campaign.r_tests,
      r.Ise_fuzz.Campaign.r_checks,
      List.map
        (fun f ->
          Ise_fuzz.Corpus.to_string
            (Ise_fuzz.Campaign.entry_of_failure ~seed:2023 f))
        r.Ise_fuzz.Campaign.r_failures )
  in
  let identical = fingerprint r1 = fingerprint rn in
  let t = Table.create ~headers:[ "Jobs"; "Wall (s)"; "Speedup" ] in
  Table.add_row t [ "1"; Table.cell_f ~decimals:2 t1; Table.cell_f ~decimals:2 1. ];
  Table.add_row t
    [ string_of_int jobs; Table.cell_f ~decimals:2 tn;
      Table.cell_f ~decimals:2 (t1 /. tn) ];
  Table.print t;
  Printf.printf
    "results byte-identical across -j: %b (%d tests, %d checks, %d failures; \
     %d cores detected)\n"
    identical r1.Ise_fuzz.Campaign.r_tests r1.Ise_fuzz.Campaign.r_checks
    (List.length r1.Ise_fuzz.Campaign.r_failures)
    (Ise_pool.Pool.default_jobs ());
  (* fork amortization, isolated from core count: B batches of tiny
     jobs through fresh per-batch pools (the old behaviour — fork per
     batch) vs one persistent handle (fork once).  Visible even on a
     single-core runner, where the -j speedup above cannot exceed 1. *)
  let batches = 30 and batch_n = 8 in
  let items = Array.init batch_n (fun i -> i) in
  let job i = i * i in
  let t_fresh =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batches do
      ignore (Ise_pool.Pool.map ~jobs ~max_retries:0 job items)
    done;
    Unix.gettimeofday () -. t0
  in
  let t_persist =
    let t0 = Unix.gettimeofday () in
    Ise_pool.Pool.with_pool ~jobs ~max_retries:0 job (fun p ->
        Ise_pool.Pool.prespawn p;
        for _ = 1 to batches do
          ignore (Ise_pool.Pool.run p items)
        done);
    Unix.gettimeofday () -. t0
  in
  Printf.printf
    "fork amortization (%d batches x %d jobs at -j %d): per-batch pools \
     %.3f s, persistent pool %.3f s (%.2fx)\n"
    batches batch_n jobs t_fresh t_persist (t_fresh /. t_persist);
  emit_bench "pool"
    (Ise_telemetry.Json.Obj
       [ ("jobs", Ise_telemetry.Json.Int jobs);
         ("cores_detected", Ise_telemetry.Json.Int (Ise_pool.Pool.default_jobs ()));
         ("seq_wall_s", Ise_telemetry.Json.Float t1);
         ("par_wall_s", Ise_telemetry.Json.Float tn);
         ("speedup", Ise_telemetry.Json.Float (t1 /. tn));
         (* ledger key pool/speedup_j4: the -j 4 amortization metric
            the CI perf gate tracks across commits *)
         ("speedup_j4", Ise_telemetry.Json.Float (t1 /. tn));
         ("persistent_speedup", Ise_telemetry.Json.Float (t_fresh /. t_persist));
         ("identical_results", Ise_telemetry.Json.Bool identical) ]);
  if not identical then begin
    Printf.eprintf "[bench] pool: -j %d diverged from -j 1!\n%!" jobs;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* serve: daemon throughput, latency, and cache identity               *)

let serve_bench () =
  section "Serve: daemon requests/sec, p99 latency, cache identity";
  if not Ise_pool.Pool.fork_available then
    print_endline "fork unavailable on this platform; serve bench skipped"
  else begin
    let dir = Filename.temp_file "ise_serve_bench" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let socket = Filename.concat dir "d.sock" in
    let store_dir = Filename.concat dir "store" in
    let daemon =
      match Unix.fork () with
      | 0 ->
        (try
           Ise_serve.Server.run
             {
               (Ise_serve.Server.default_config ~socket_path:socket) with
               Ise_serve.Server.store_dir = Some store_dir;
             }
         with _ -> ());
        Unix._exit 0
      | pid -> pid
    in
    let connect () =
      match Ise_serve.Client.connect ~retries:100 socket with
      | Ok c -> c
      | Error msg ->
        Printf.eprintf "[bench] serve: %s\n%!" msg;
        exit 1
    in
    let params = { Ise_serve.Proto.default_params with Ise_serve.Proto.seeds = 5 } in
    let tests = Ise_litmus.Library.all in
    let c = connect () in
    let batch () =
      let t0 = Unix.gettimeofday () in
      match Ise_serve.Client.litmus c ~tests ~params with
      | Ok replies -> (replies, Unix.gettimeofday () -. t0)
      | Error msg ->
        Printf.eprintf "[bench] serve: %s\n%!" msg;
        exit 1
    in
    let cold, cold_s = batch () in
    let warm, warm_s = batch () in
    (* p99 request latency against the warm cache, one test per request *)
    let lat = Stats.create () in
    let narr = Array.of_list tests in
    let reqs = 200 in
    let t0 = Unix.gettimeofday () in
    for i = 0 to reqs - 1 do
      let r0 = Unix.gettimeofday () in
      (match
         Ise_serve.Client.litmus c
           ~tests:[ narr.(i mod Array.length narr) ]
           ~params
       with
      | Ok _ -> ()
      | Error msg ->
        Printf.eprintf "[bench] serve: %s\n%!" msg;
        exit 1);
      Stats.add lat ((Unix.gettimeofday () -. r0) *. 1000.)
    done;
    let loop_s = Unix.gettimeofday () -. t0 in
    (match Ise_serve.Client.shutdown c with Ok () | Error _ -> ());
    Ise_serve.Client.close c;
    ignore (Unix.waitpid [] daemon);
    (* acceptance: ≥90% hits on the repeated batch, responses
       byte-identical to the daemon's cold pass AND to a no-daemon
       -j 1 run of the same tests *)
    let lines rs = List.map (fun r -> r.Ise_serve.Proto.r_line) rs in
    let hits =
      List.length (List.filter (fun r -> r.Ise_serve.Proto.r_cached) warm)
    in
    let hit_rate = float_of_int hits /. float_of_int (List.length warm) in
    let local =
      List.map
        (fun t ->
          Ise_litmus.Lit_run.summary_line
            (Ise_litmus.Lit_run.run ~seeds:5 ~inject_faults:true
               ~cfg:(Ise_serve.Proto.cfg_of_params params) t))
        tests
    in
    let identical_warm = lines cold = lines warm in
    let identical_local = lines warm = local in
    let req_per_s = float_of_int reqs /. loop_s in
    let p50 = Stats.percentile lat 50. and p99 = Stats.percentile lat 99. in
    let t = Table.create ~headers:[ "Pass"; "Wall (s)"; "Hits" ] in
    Table.add_row t [ "cold batch"; Table.cell_f ~decimals:2 cold_s; "0" ];
    Table.add_row t
      [ "warm batch"; Table.cell_f ~decimals:2 warm_s; string_of_int hits ];
    Table.print t;
    Printf.printf
      "sustained: %.0f req/s over %d single-test requests (p50 %.2f ms, p99 \
       %.2f ms)\n\
       cache hit rate on repeat batch: %.0f%%; warm ≡ cold bytes: %b; \
       daemon ≡ no-daemon bytes: %b\n"
      req_per_s reqs p50 p99 (100. *. hit_rate) identical_warm identical_local;
    emit_bench "serve"
      (Ise_telemetry.Json.Obj
         [ ("tests", Ise_telemetry.Json.Int (List.length tests));
           ("requests", Ise_telemetry.Json.Int reqs);
           ("req_per_s", Ise_telemetry.Json.Float req_per_s);
           ("p50_ms", Ise_telemetry.Json.Float p50);
           ("p99_ms", Ise_telemetry.Json.Float p99);
           ("cold_wall_s", Ise_telemetry.Json.Float cold_s);
           ("warm_wall_s", Ise_telemetry.Json.Float warm_s);
           ("hit_rate", Ise_telemetry.Json.Float hit_rate);
           ("identical_cold_warm", Ise_telemetry.Json.Bool identical_warm);
           ("identical_no_daemon", Ise_telemetry.Json.Bool identical_local) ]);
    if hit_rate < 0.9 || not identical_warm || not identical_local then begin
      Printf.eprintf
        "[bench] serve: cache acceptance failed (hit rate %.2f, warm=cold \
         %b, daemon=local %b)!\n%!"
        hit_rate identical_warm identical_local;
      exit 1
    end
  end

(* ------------------------------------------------------------------ *)
(* fabric: distributed campaign vs single-host, byte-identity gate      *)

let fabric_bench () =
  section "Fabric: distributed campaign, 1 vs 4 simulated workers";
  if not Ise_fabric.Sim.available then
    print_endline "fork unavailable on this platform; fabric bench skipped"
  else begin
    let seed = 2023 in
    let spec =
      Ise_fuzz.Campaign.spec ~count:24 ~seeds_per_test:8 ~seed ()
    in
    let fingerprint (r : Ise_fuzz.Campaign.report) =
      ( r.Ise_fuzz.Campaign.r_tests,
        r.Ise_fuzz.Campaign.r_checks,
        r.Ise_fuzz.Campaign.r_lost_tests,
        List.map
          (fun f ->
            Ise_fuzz.Corpus.to_string
              (Ise_fuzz.Campaign.entry_of_failure ~seed f))
          r.Ise_fuzz.Campaign.r_failures )
    in
    let t0 = Unix.gettimeofday () in
    let reference =
      Ise_fuzz.Campaign.run ~count:24 ~seeds_per_test:8 ~seed ()
    in
    let t_ref = Unix.gettimeofday () -. t0 in
    let fabric_run ?netchaos ?(stream = false) n =
      let dir = Filename.temp_file "ise_fabric_bench" "" in
      Sys.remove dir;
      let sim = Ise_fabric.Sim.start ?netchaos ~dir ~n () in
      (* streaming on = the full observability plane: per-worker delta
         snapshots, dispatch spans, and status snapshots every 100 ms *)
      let observe =
        if stream then
          { Ise_fabric.Supervisor.default_observe with
            Ise_fabric.Supervisor.stream = true;
            metrics = Some (Ise_telemetry.Registry.create ());
            trace = Some (Ise_telemetry.Trace.create ());
            trace_id = "bench";
            status_period_s = 0.1;
          }
        else Ise_fabric.Supervisor.default_observe
      in
      let cfg =
        { (Ise_fabric.Supervisor.default_config
             ~workers:(Ise_fabric.Sim.sockets sim))
          with Ise_fabric.Supervisor.observe }
      in
      let t0 = Unix.gettimeofday () in
      let ranges, outcomes, stats =
        Ise_fabric.Supervisor.run cfg (Ise_fabric.Wire.Fuzz spec)
      in
      let wall = Unix.gettimeofday () -. t0 in
      Ise_fabric.Sim.stop sim;
      let merged = Ise_fabric.Merge.merge spec ~ranges ~outcomes in
      (merged.Ise_fabric.Merge.m_report, stats, wall)
    in
    let r1, s1, t1 = fabric_run 1 in
    let r4, s4, t4 = fabric_run 4 in
    (* streaming overhead: the same 4-worker campaign with the whole
       observability plane on; the delta must stay marginal *)
    let r4o, s4o, t4o = fabric_run ~stream:true 4 in
    (* the resilience gate: the same campaign through storm-profile
       wire-fault proxies must still merge byte-identically *)
    let rs, ss, ts =
      fabric_run ~netchaos:(seed, Ise_fabric.Netchaos.storm) 4
    in
    let id1 = fingerprint r1 = fingerprint reference in
    let id4 = fingerprint r4 = fingerprint reference in
    let ids = fingerprint rs = fingerprint reference in
    let ido = fingerprint r4o = fingerprint reference in
    let overhead_frac = (t4o -. t4) /. t4 in
    let t = Table.create ~headers:[ "Workers"; "Wall (s)"; "Speedup"; "Dispatched" ] in
    Table.add_row t
      [ "local"; Table.cell_f ~decimals:2 t_ref; Table.cell_f ~decimals:2 1.;
        "-" ];
    Table.add_row t
      [ "1"; Table.cell_f ~decimals:2 t1;
        Table.cell_f ~decimals:2 (t_ref /. t1);
        string_of_int s1.Ise_fabric.Supervisor.f_dispatched ];
    Table.add_row t
      [ "4"; Table.cell_f ~decimals:2 t4;
        Table.cell_f ~decimals:2 (t_ref /. t4);
        string_of_int s4.Ise_fabric.Supervisor.f_dispatched ];
    Table.add_row t
      [ "4+stream"; Table.cell_f ~decimals:2 t4o;
        Table.cell_f ~decimals:2 (t_ref /. t4o);
        string_of_int s4o.Ise_fabric.Supervisor.f_dispatched ];
    Table.add_row t
      [ "4+storm"; Table.cell_f ~decimals:2 ts;
        Table.cell_f ~decimals:2 (t_ref /. ts);
        string_of_int ss.Ise_fabric.Supervisor.f_dispatched ];
    Table.print t;
    Printf.printf
      "telemetry streaming: %d frame(s) absorbed, overhead %+.1f%% of the \
       quiet 4-worker run\n"
      s4o.Ise_fabric.Supervisor.f_telemetry_frames (100. *. overhead_frac);
    Printf.printf
      "merged reports byte-identical to single-host: 1 worker %b, 4 workers \
       %b, 4 workers under netchaos storm %b (%d tests, %d checks, %d \
       failures)\n"
      id1 id4 ids reference.Ise_fuzz.Campaign.r_tests
      reference.Ise_fuzz.Campaign.r_checks
      (List.length reference.Ise_fuzz.Campaign.r_failures);
    Printf.printf
      "storm run: %d dispatched (%d re-dispatch), %d worker loss(es), %d \
       rejoin(s), %d ping(s), %d heartbeat loss(es)\n"
      ss.Ise_fabric.Supervisor.f_dispatched
      ss.Ise_fabric.Supervisor.f_redispatched
      ss.Ise_fabric.Supervisor.f_worker_losses
      ss.Ise_fabric.Supervisor.f_rejoins
      ss.Ise_fabric.Supervisor.f_pings
      ss.Ise_fabric.Supervisor.f_hb_losses;
    emit_bench "fabric"
      (Ise_telemetry.Json.Obj
         [ ("shards", Ise_telemetry.Json.Int s4.Ise_fabric.Supervisor.f_shards);
           ("local_wall_s", Ise_telemetry.Json.Float t_ref);
           ("w1_wall_s", Ise_telemetry.Json.Float t1);
           ("w4_wall_s", Ise_telemetry.Json.Float t4);
           ("storm_wall_s", Ise_telemetry.Json.Float ts);
           ("speedup_w4", Ise_telemetry.Json.Float (t_ref /. t4));
           ( "w4_dispatched",
             Ise_telemetry.Json.Int s4.Ise_fabric.Supervisor.f_dispatched );
           ( "w4_redispatched",
             Ise_telemetry.Json.Int s4.Ise_fabric.Supervisor.f_redispatched );
           ( "w4_store_hits",
             Ise_telemetry.Json.Int s4.Ise_fabric.Supervisor.f_store_hits );
           ( "w4_worker_losses",
             Ise_telemetry.Json.Int s4.Ise_fabric.Supervisor.f_worker_losses );
           ( "storm_dispatched",
             Ise_telemetry.Json.Int ss.Ise_fabric.Supervisor.f_dispatched );
           ( "storm_redispatched",
             Ise_telemetry.Json.Int ss.Ise_fabric.Supervisor.f_redispatched );
           ( "storm_worker_losses",
             Ise_telemetry.Json.Int ss.Ise_fabric.Supervisor.f_worker_losses );
           ( "storm_rejoins",
             Ise_telemetry.Json.Int ss.Ise_fabric.Supervisor.f_rejoins );
           ( "storm_pings",
             Ise_telemetry.Json.Int ss.Ise_fabric.Supervisor.f_pings );
           ( "storm_hb_losses",
             Ise_telemetry.Json.Int ss.Ise_fabric.Supervisor.f_hb_losses );
           ("stream_wall_s", Ise_telemetry.Json.Float t4o);
           ("telemetry_overhead_frac", Ise_telemetry.Json.Float overhead_frac);
           ( "stream_telemetry_frames",
             Ise_telemetry.Json.Int
               s4o.Ise_fabric.Supervisor.f_telemetry_frames );
           ("identical_w1", Ise_telemetry.Json.Bool id1);
           ("identical_w4", Ise_telemetry.Json.Bool id4);
           ("identical_stream", Ise_telemetry.Json.Bool ido);
           ("identical_storm", Ise_telemetry.Json.Bool ids) ]);
    if not (id1 && id4 && ids && ido) then begin
      Printf.eprintf
        "[bench] fabric: merged report diverged from single-host (1 worker \
         %b, 4 workers %b, streaming %b, storm %b)!\n%!"
        id1 id4 ido ids;
      exit 1
    end;
    (* the streaming-overhead gate: < 5% of the quiet run, with an
       absolute floor so scheduler noise on a sub-second campaign
       cannot trip it *)
    if t4o -. t4 > Float.max (0.05 *. t4) 0.3 then begin
      Printf.eprintf
        "[bench] fabric: telemetry streaming overhead %.2fs (%.1f%%) \
         exceeds the 5%% gate!\n%!"
        (t4o -. t4) (100. *. overhead_frac);
      exit 1
    end
  end

(* ------------------------------------------------------------------ *)

let sections =
  [ ("table1", table1); ("table2", table2); ("table3", table3);
    ("table5", table5); ("table6", table6); ("fig1", fig1); ("fig2", fig2);
    ("fig5", fig5); ("fig6", fig6); ("litmus", litmus);
    ("ablation", ablation); ("bechamel", bechamel_section);
    ("enum", enum_bench); ("pool", pool_bench); ("serve", serve_bench);
    ("fabric", fabric_bench) ]

(* Run [f] with stdout redirected to a temp file; return what it
   printed.  Used by the parallel driver so each worker's section
   output can be re-emitted in section order. *)
let captured f =
  let tmp = Filename.temp_file "ise_bench" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f;
  let ic = open_in_bin tmp in
  let out = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  out

(* After the sections have run, read the BENCH_<section>.json files
   they emitted, flatten every numeric leaf, and append one run record
   to the ledger — works identically for sequential and forked runs,
   because forked workers write the files into the same cwd. *)
let append_ledger ~path picked =
  let metrics =
    List.concat_map
      (fun name ->
        let file = Printf.sprintf "BENCH_%s.json" name in
        if not (Sys.file_exists file) then []
        else begin
          let ic = open_in_bin file in
          let text = really_input_string ic (in_channel_length ic) in
          close_in ic;
          match Ise_telemetry.Json.of_string text with
          | Error _ -> []
          | Ok json -> Ise_obs.Ledger.flatten_json ~prefix:name json
        end)
      picked
  in
  if metrics = [] then
    Printf.eprintf
      "[bench] --ledger: no BENCH_*.json metrics among sections %s\n%!"
      (String.concat " " picked)
  else begin
    let label = String.concat "+" picked in
    Ise_obs.Ledger.append ~path
      (Ise_obs.Ledger.make ~kind:"bench" ~label ~seed:0
         ~config:("sections=" ^ label) metrics);
    Printf.eprintf "[bench] appended %d metrics to %s\n%!"
      (List.length metrics) path
  end

let () =
  let rec parse jobs ledger trace_out telemetry_out acc = function
    | [] -> (jobs, ledger, trace_out, telemetry_out, List.rev acc)
    | ("-j" | "--jobs") :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 -> parse (Some j) ledger trace_out telemetry_out acc rest
      | _ ->
        Printf.eprintf "-j needs a positive integer, got %S\n" n;
        exit 1)
    | "--ledger" :: path :: rest ->
      parse jobs (Some path) trace_out telemetry_out acc rest
    | "--trace-out" :: path :: rest ->
      parse jobs ledger (Some path) telemetry_out acc rest
    | "--telemetry-out" :: path :: rest ->
      parse jobs ledger trace_out (Some path) acc rest
    | [ ("-j" | "--jobs" | "--ledger" | "--trace-out" | "--telemetry-out") as a ] ->
      Printf.eprintf "%s needs a value\n" a;
      exit 1
    | a :: rest -> parse jobs ledger trace_out telemetry_out (a :: acc) rest
  in
  let jobs, ledger, trace_out, telemetry_out, picked =
    parse None None None None [] (List.tl (Array.to_list Sys.argv))
  in
  let jobs =
    match jobs with Some j -> j | None -> Ise_pool.Pool.default_jobs ()
  in
  let picked = if picked = [] then List.map fst sections else picked in
  List.iter
    (fun name ->
      if not (List.mem_assoc name sections) then begin
        Printf.eprintf "unknown section %S; available: %s\n" name
          (String.concat " " (List.map fst sections));
        exit 1
      end)
    picked;
  let sink =
    match (trace_out, telemetry_out) with
    | None, None -> None
    | _ -> Some (Ise_telemetry.Sink.create ())
  in
  if jobs <= 1 || List.length picked <= 1 then
    List.iter (fun name -> (List.assoc name sections) ()) picked
  else begin
    let names = Array.of_list picked in
    let ok = ref true in
    let _outcomes, _stats =
      Ise_pool.Pool.map ~jobs ?telemetry:sink
        ~on_result:(fun i outcome ->
          match outcome with
          | Ise_pool.Pool.Done out ->
            print_string out;
            flush stdout
          | Ise_pool.Pool.Failed err ->
            ok := false;
            Printf.eprintf "[bench] section %s failed: %s\n%!" names.(i)
              (Ise_pool.Pool.error_to_string err)
          | Ise_pool.Pool.Split _ ->
            (* no bisect function is passed here *)
            assert false)
        (fun name -> captured (List.assoc name sections))
        names
    in
    if not !ok then exit 1
  end;
  (match sink with
   | None -> ()
   | Some sink ->
     (match trace_out with
      | Some path ->
        let oc = open_out path in
        output_string oc
          (Ise_telemetry.Json.to_string
             (Ise_telemetry.Trace.to_chrome_json
                ~meta:(Ise_obs.Runinfo.stamp ())
                (Ise_telemetry.Sink.trace sink)));
        close_out oc;
        Printf.eprintf "[bench] wrote trace to %s\n%!" path
      | None -> ());
     (match telemetry_out with
      | Some path ->
        let oc = open_out path in
        output_string oc
          (Ise_telemetry.Json.to_string_pretty
             (Ise_telemetry.Json.Obj
                (Ise_obs.Runinfo.stamp ()
                @ [ ( "metrics",
                      Ise_telemetry.Registry.to_json
                        (Ise_telemetry.Sink.registry sink) ) ])));
        close_out oc;
        Printf.eprintf "[bench] wrote telemetry to %s\n%!" path
      | None -> ()));
  match ledger with
  | Some path -> append_ledger ~path picked
  | None -> ()
