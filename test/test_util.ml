open Ise_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let root = Rng.create 7 in
  let a = Rng.split root in
  let b = Rng.split root in
  check Alcotest.bool "split streams differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 2 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.0 in
    check Alcotest.bool "in range" true (v >= 0. && v < 3.0)
  done

let test_rng_copy () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5 in
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 20 (fun i -> i)) sorted

let test_rng_geometric_nonneg () =
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    check Alcotest.bool "non-negative" true (Rng.geometric rng 0.3 >= 0)
  done

(* ------------------------------------------------------------------ *)
(* Ring_buffer                                                         *)

let test_ring_fifo () =
  let rb = Ring_buffer.create ~capacity:8 in
  for i = 1 to 5 do
    Ring_buffer.push rb i
  done;
  let out = List.init 5 (fun _ -> Ring_buffer.pop rb) in
  check (Alcotest.list Alcotest.int) "fifo order" [ 1; 2; 3; 4; 5 ] out

let test_ring_full_raises () =
  let rb = Ring_buffer.create ~capacity:2 in
  Ring_buffer.push rb 1;
  Ring_buffer.push rb 2;
  check Alcotest.bool "full" true (Ring_buffer.is_full rb);
  Alcotest.check_raises "push full" (Failure "Ring_buffer.push: full") (fun () ->
      Ring_buffer.push rb 3)

let test_ring_empty_raises () =
  let rb : int Ring_buffer.t = Ring_buffer.create ~capacity:2 in
  Alcotest.check_raises "pop empty" (Failure "Ring_buffer.pop: empty") (fun () ->
      ignore (Ring_buffer.pop rb))

let test_ring_capacity_power_of_two () =
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Ring_buffer.create: capacity must be a positive power of two")
    (fun () -> ignore (Ring_buffer.create ~capacity:3 : int Ring_buffer.t))

let test_ring_positions_monotonic () =
  let rb = Ring_buffer.create ~capacity:4 in
  for round = 0 to 9 do
    Ring_buffer.push rb round;
    check Alcotest.int "tail grows" (round + 1) (Ring_buffer.tail rb);
    ignore (Ring_buffer.pop rb);
    check Alcotest.int "head follows" (round + 1) (Ring_buffer.head rb)
  done

let test_ring_peek_at () =
  let rb = Ring_buffer.create ~capacity:4 in
  Ring_buffer.push rb 10;
  Ring_buffer.push rb 20;
  ignore (Ring_buffer.pop rb);
  check (Alcotest.option Alcotest.int) "gone" None (Ring_buffer.peek_at rb 0);
  check (Alcotest.option Alcotest.int) "present" (Some 20) (Ring_buffer.peek_at rb 1)

let test_ring_find_last () =
  let rb = Ring_buffer.create ~capacity:8 in
  List.iter (Ring_buffer.push rb) [ (1, 'a'); (2, 'b'); (1, 'c') ];
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.char))
    "newest match"
    (Some (1, 'c'))
    (Ring_buffer.find_last (fun (k, _) -> k = 1) rb)

let test_ring_update_last () =
  let rb = Ring_buffer.create ~capacity:4 in
  Ring_buffer.push rb 1;
  Ring_buffer.push rb 2;
  let updated = Ring_buffer.update_last (fun v -> Some (v * 10)) rb in
  check Alcotest.bool "updated" true updated;
  check (Alcotest.list Alcotest.int) "coalesced" [ 1; 20 ] (Ring_buffer.to_list rb)

(* Wrap-around audit, as seeded properties on the repo's own Pbt core:
   drive a ring far past its capacity in positions (so the mask wraps
   many times) against a plain list model, across every capacity
   including 1, and check the read-side API agrees with the model at
   every step. *)
let test_ring_pbt_wraparound () =
  let arb =
    Ise_fuzz.Pbt.make
      ~shrink:(Ise_fuzz.Pbt.shrink_pair Ise_fuzz.Pbt.shrink_nothing
                 (Ise_fuzz.Pbt.shrink_list ~elt:Ise_fuzz.Pbt.shrink_int))
      (Ise_fuzz.Pbt.pair
         (Ise_fuzz.Pbt.choose [ 1; 2; 4; 8 ])
         (Ise_fuzz.Pbt.list_of ~max:200 (Ise_fuzz.Pbt.int_range 0 3)))
  in
  Ise_fuzz.Pbt.check ~count:200 ~seed:2023 ~name:"ring wrap-around vs model"
    arb
    (fun (capacity, ops) ->
      let rb = Ring_buffer.create ~capacity in
      let model = ref [] in
      let counter = ref 0 in
      let agrees () =
        Ring_buffer.to_list rb = !model
        && Ring_buffer.length rb = List.length !model
        && Ring_buffer.peek rb
           = (match !model with [] -> None | x :: _ -> Some x)
        && Ring_buffer.tail rb - Ring_buffer.head rb = List.length !model
        &&
        let seen = ref [] in
        Ring_buffer.iter (fun v -> seen := v :: !seen) rb;
        List.rev !seen = !model
      in
      List.for_all
        (fun op ->
          (match op with
           | 0 when not (Ring_buffer.is_full rb) ->
             incr counter;
             Ring_buffer.push rb !counter;
             model := !model @ [ !counter ]
           | 1 when not (Ring_buffer.is_empty rb) ->
             let v = Ring_buffer.pop rb in
             (match !model with
              | x :: rest when x = v -> model := rest
              | _ -> failwith "pop disagrees with model")
           | 2 -> ignore (Ring_buffer.find_last (fun v -> v land 1 = 0) rb)
           | _ ->
             ignore
               (Ring_buffer.update_last
                  (fun v -> if v land 1 = 0 then Some (v + 1000) else None)
                  rb);
             (model :=
                match List.rev !model with
                | x :: rest when x land 1 = 0 ->
                  List.rev ((x + 1000) :: rest)
                | _ -> !model));
          agrees ())
        ops)

let test_ring_pbt_peek_at_window () =
  let arb =
    Ise_fuzz.Pbt.make
      (Ise_fuzz.Pbt.pair
         (Ise_fuzz.Pbt.int_range 0 40)
         (Ise_fuzz.Pbt.int_range 0 50))
  in
  Ise_fuzz.Pbt.check ~count:200 ~seed:7 ~name:"peek_at only inside [head,tail)"
    arb
    (fun (pops, probe) ->
      let rb = Ring_buffer.create ~capacity:8 in
      (* interleave pushes and pops so head advances [pops] times while
         the ring stays legal *)
      let pushed = ref 0 in
      let popped = ref 0 in
      while !popped < pops do
        if Ring_buffer.is_empty rb || (!pushed - !popped < 5 && !pushed < pops + 5)
        then begin
          Ring_buffer.push rb !pushed;
          incr pushed
        end
        else begin
          ignore (Ring_buffer.pop rb);
          incr popped
        end
      done;
      let inside =
        probe >= Ring_buffer.head rb && probe < Ring_buffer.tail rb
      in
      match Ring_buffer.peek_at rb probe with
      | Some v -> inside && v = probe
      | None -> not inside)

let test_ring_create_edges () =
  (* capacity 1 is a legal (degenerate) ring *)
  let rb = Ring_buffer.create ~capacity:1 in
  Ring_buffer.push rb 42;
  check Alcotest.bool "cap-1 full" true (Ring_buffer.is_full rb);
  check Alcotest.int "cap-1 pop" 42 (Ring_buffer.pop rb);
  Ring_buffer.push rb 43;
  check Alcotest.int "cap-1 wraps" 43 (Ring_buffer.pop rb);
  List.iter
    (fun capacity ->
      Alcotest.check_raises
        (Printf.sprintf "capacity %d rejected" capacity)
        (Invalid_argument
           "Ring_buffer.create: capacity must be a positive power of two")
        (fun () -> ignore (Ring_buffer.create ~capacity : int Ring_buffer.t)))
    [ 0; -1; 3; 6; 12 ]

let prop_ring_model =
  QCheck.Test.make ~name:"ring buffer behaves like a FIFO queue" ~count:300
    QCheck.(list (int_range 0 2))
    (fun ops ->
      (* op 0 = push fresh value, 1 = pop, 2 = peek *)
      let rb = Ring_buffer.create ~capacity:16 in
      let model = Queue.create () in
      let counter = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
            if Ring_buffer.is_full rb then true
            else begin
              incr counter;
              Ring_buffer.push rb !counter;
              Queue.add !counter model;
              true
            end
          | 1 ->
            if Ring_buffer.is_empty rb then Queue.is_empty model
            else Ring_buffer.pop rb = Queue.pop model
          | _ ->
            (match (Ring_buffer.peek rb, Queue.peek_opt model) with
             | Some a, Some b -> a = b
             | None, None -> true
             | _ -> false))
        ops)

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Bitset.set b 0;
  Bitset.set b 99;
  Bitset.set b 37;
  check Alcotest.bool "mem 37" true (Bitset.mem b 37);
  check Alcotest.bool "not mem 38" false (Bitset.mem b 38);
  check Alcotest.int "cardinal" 3 (Bitset.cardinal b);
  Bitset.clear b 37;
  check Alcotest.bool "cleared" false (Bitset.mem b 37);
  check (Alcotest.list Alcotest.int) "to_list" [ 0; 99 ] (Bitset.to_list b)

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.set b 8)

let test_bitset_copy_independent () =
  let a = Bitset.create 16 in
  Bitset.set a 3;
  let b = Bitset.copy a in
  Bitset.set b 4;
  check Alcotest.bool "a unchanged" false (Bitset.mem a 4);
  check Alcotest.bool "b has both" true (Bitset.mem b 3 && Bitset.mem b 4)

let prop_bitset_set_clear =
  QCheck.Test.make ~name:"bitset set/clear roundtrip" ~count:200
    QCheck.(small_list (int_range 0 63))
    (fun idxs ->
      let b = Bitset.create 64 in
      List.iter (Bitset.set b) idxs;
      List.for_all (Bitset.mem b) idxs
      && begin
        List.iter (Bitset.clear b) idxs;
        Bitset.is_empty b
      end)

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q p v) [ (5, "e"); (1, "a"); (3, "c") ];
  let pops = List.init 3 (fun _ -> Option.get (Pqueue.pop q)) in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "min order"
    [ (1, "a"); (3, "c"); (5, "e") ]
    pops

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q 7 v) [ "first"; "second"; "third" ];
  let pops = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  check (Alcotest.list Alcotest.string) "insertion order among ties"
    [ "first"; "second"; "third" ] pops

let test_pqueue_empty () =
  let q : unit Pqueue.t = Pqueue.create () in
  check Alcotest.bool "empty pop" true (Pqueue.pop q = None)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing priority" ~count:200
    QCheck.(list small_nat)
    (fun prios ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q p p) prios;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain min_int)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_stats_mean () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.; 2.; 3.; 4. ];
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean s);
  check Alcotest.int "count" 4 (Stats.count s);
  check (Alcotest.float 1e-9) "min" 1. (Stats.min_value s);
  check (Alcotest.float 1e-9) "max" 4. (Stats.max_value s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add_int s i
  done;
  (* interpolated: rank p/100 * (n-1) over samples 1..100 *)
  check (Alcotest.float 1e-9) "p50" 50.5 (Stats.percentile s 50.);
  check (Alcotest.float 1e-9) "p99" 99.01 (Stats.percentile s 99.);
  check (Alcotest.float 1e-9) "p100" 100. (Stats.percentile s 100.);
  check (Alcotest.float 1e-9) "p0" 1. (Stats.percentile s 0.);
  (* queries interleaved with adds: the sorted cache must invalidate *)
  Stats.add_int s 1000;
  check (Alcotest.float 1e-9) "p100 after add" 1000. (Stats.percentile s 100.)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a 1.;
  Stats.add b 3.;
  let m = Stats.merge a b in
  check (Alcotest.float 1e-9) "merged mean" 2. (Stats.mean m)

let test_stats_variance () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check (Alcotest.float 1e-6) "sample variance" 4.571428571 (Stats.variance s)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let test_table_render () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  check Alcotest.bool "contains header" true
    (String.length s > 0
    && String.sub s 0 4 = "name");
  (* all lines of a rendered table are aligned on the first column *)
  let lines = String.split_on_char '\n' s in
  check Alcotest.bool "rows present" true
    (List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "alpha") lines)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng float bounds", `Quick, test_rng_float_bounds);
    ("rng copy", `Quick, test_rng_copy);
    ("rng shuffle is a permutation", `Quick, test_rng_shuffle_permutation);
    ("rng geometric non-negative", `Quick, test_rng_geometric_nonneg);
    ("ring fifo", `Quick, test_ring_fifo);
    ("ring full raises", `Quick, test_ring_full_raises);
    ("ring empty raises", `Quick, test_ring_empty_raises);
    ("ring capacity validation", `Quick, test_ring_capacity_power_of_two);
    ("ring positions monotonic", `Quick, test_ring_positions_monotonic);
    ("ring peek_at", `Quick, test_ring_peek_at);
    ("ring find_last", `Quick, test_ring_find_last);
    ("ring update_last", `Quick, test_ring_update_last);
    ("ring pbt wrap-around model", `Quick, test_ring_pbt_wraparound);
    ("ring pbt peek_at window", `Quick, test_ring_pbt_peek_at_window);
    ("ring create edge cases", `Quick, test_ring_create_edges);
    qtest prop_ring_model;
    ("bitset basic", `Quick, test_bitset_basic);
    ("bitset bounds", `Quick, test_bitset_bounds);
    ("bitset copy independent", `Quick, test_bitset_copy_independent);
    qtest prop_bitset_set_clear;
    ("pqueue ordering", `Quick, test_pqueue_ordering);
    ("pqueue fifo ties", `Quick, test_pqueue_fifo_ties);
    ("pqueue empty", `Quick, test_pqueue_empty);
    qtest prop_pqueue_sorted;
    ("stats mean", `Quick, test_stats_mean);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats merge", `Quick, test_stats_merge);
    ("stats variance", `Quick, test_stats_variance);
    ("table render", `Quick, test_table_render);
  ]
