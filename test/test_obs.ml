(* Tests for Ise_obs: journal codec, flight recorder, offline episode
   analyzer (cross-checked against the online watchdog), and the
   regression ledger. *)

open Ise_obs

let trace_event ?(cat = "ise") ?(args = []) ?(ph = Ise_telemetry.Trace.Instant)
    ~name ~tid ts =
  { Ise_telemetry.Trace.ev_name = name; ev_cat = cat; ev_ph = ph;
    ev_ts = ts; ev_tid = tid; ev_args = args }

(* ------------------------------------------------------------------ *)
(* journal codec                                                       *)

let test_journal_roundtrip () =
  let nasty = "a b=c%d\te\nf\rg" in
  let events =
    [ trace_event ~name:"PUT" ~tid:1 10
        ~args:
          [ ("seq", Ise_telemetry.Json.Int 3);
            ("addr", Ise_telemetry.Json.Int 0x4000);
            ("note", Ise_telemetry.Json.String nasty);
            ("frac", Ise_telemetry.Json.Float 0.25);
            ("flag", Ise_telemetry.Json.Bool true);
            ("nil", Ise_telemetry.Json.Null);
            ( "nested",
              Ise_telemetry.Json.Obj
                [ ("k", Ise_telemetry.Json.List [ Ise_telemetry.Json.Int 1 ])
                ] ) ];
      trace_event ~ph:Ise_telemetry.Trace.Span_begin ~name:nasty ~cat:nasty
        ~tid:0 11;
      trace_event ~ph:Ise_telemetry.Trace.Span_end ~name:nasty ~cat:nasty
        ~tid:0 12;
      trace_event ~ph:Ise_telemetry.Trace.Counter_sample ~name:"occ" ~tid:2
        ~args:[ ("value", Ise_telemetry.Json.Float 7.5) ]
        13 ]
  in
  let meta = [ ("run_id", "abc123"); ("profile", "with space=and%pct") ] in
  let text = Journal.render meta events in
  match Journal.parse text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok p ->
    Alcotest.(check (list (pair string string)))
      "meta round-trips" meta p.Journal.j_meta;
    Alcotest.(check int) "no corrupt lines" 0 (List.length p.Journal.j_corrupt);
    Alcotest.(check bool) "events round-trip" true (p.Journal.j_events = events)

let test_journal_truncated_tail () =
  let events =
    List.init 5 (fun i ->
        trace_event ~name:"PUT" ~tid:0 (i * 10)
          ~args:[ ("seq", Ise_telemetry.Json.Int i) ])
  in
  let text = Journal.render [ ("k", "v") ] events in
  (* tear the last line mid-argument ("seq=i4" -> "seq="), as a
     SIGKILL mid-write would *)
  let cut = String.length text - 3 in
  let truncated = String.sub text 0 cut in
  match Journal.parse truncated with
  | Error msg -> Alcotest.failf "truncated parse failed: %s" msg
  | Ok p ->
    Alcotest.(check int) "first 4 events survive" 4
      (List.length p.Journal.j_events);
    Alcotest.(check int) "the torn line is corrupt, not fatal" 1
      (List.length p.Journal.j_corrupt)

let test_journal_bad_header () =
  (match Journal.parse "not a journal\n1 0 i ise DETECT\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad header must be an error");
  match Journal.parse "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty text must be an error"

(* ------------------------------------------------------------------ *)
(* recorder                                                            *)

let test_recorder_ring_and_dump () =
  let r = Recorder.create ~capacity:8 ~meta:[ ("kind", "test") ] () in
  for i = 0 to 19 do
    Recorder.instant r ~name:"PUT" ~tid:0 i
      ~args:[ ("seq", Ise_telemetry.Json.Int i) ]
  done;
  Alcotest.(check int) "recorded counts everything" 20 (Recorder.recorded r);
  Alcotest.(check int) "ring keeps the newest 8" 8
    (List.length (Recorder.events r));
  Alcotest.(check int) "dropped the rest" 12 (Recorder.dropped r);
  match Journal.parse (Recorder.dump r) with
  | Error msg -> Alcotest.failf "dump must parse: %s" msg
  | Ok p ->
    Alcotest.(check (option string))
      "meta survives" (Some "test")
      (List.assoc_opt "kind" p.Journal.j_meta);
    let seqs =
      List.filter_map
        (fun (e : Ise_telemetry.Trace.event) ->
          match List.assoc_opt "seq" e.Ise_telemetry.Trace.ev_args with
          | Some (Ise_telemetry.Json.Int i) -> Some i
          | _ -> None)
        p.Journal.j_events
    in
    Alcotest.(check (list int)) "oldest-first tail" [ 12; 13; 14; 15; 16; 17; 18; 19 ] seqs

let test_recorder_spill_survives () =
  let path = Filename.temp_file "ise_obs" ".jnl" in
  let r = Recorder.create ~capacity:4 ~spill:path ~meta:[ ("k", "v") ] () in
  for i = 0 to 9 do
    Recorder.instant r ~name:"GET" ~tid:1 i
  done;
  (* no close: the spill is flushed per line, like a killed worker *)
  match Journal.load path with
  | Error msg -> Alcotest.failf "spill must load: %s" msg
  | Ok p ->
    (* the spill keeps everything, not just the ring tail *)
    Alcotest.(check int) "all 10 events spilled" 10
      (List.length p.Journal.j_events);
    Recorder.close r;
    Sys.remove path

(* ------------------------------------------------------------------ *)
(* episode analyzer: synthetic streams                                 *)

let ev kind core cycle seq =
  { Episode.e_kind = kind; e_core = core; e_cycle = cycle;
    e_seq = Some seq; e_addr = Some (0x1000 + (seq * 8));
    e_data = Some seq }

let bare kind core cycle =
  { Episode.e_kind = kind; e_core = core; e_cycle = cycle; e_seq = None;
    e_addr = None; e_data = None }

let clean_episode core t0 =
  [ bare Episode.Detect core t0;
    ev Episode.Put core (t0 + 5) 0;
    ev Episode.Put core (t0 + 6) 1;
    ev Episode.Get core (t0 + 10) 0;
    ev Episode.Get core (t0 + 11) 1;
    ev Episode.Apply core (t0 + 20) 0;
    ev Episode.Apply core (t0 + 21) 1;
    bare Episode.Resolve core (t0 + 30);
    bare Episode.Resume core (t0 + 40) ]

let test_analyzer_clean () =
  let evs = clean_episode 0 100 @ clean_episode 1 200 in
  let a = Episode.analyze evs in
  Alcotest.(check bool) "clean" true (Episode.clean a);
  Alcotest.(check int) "two episodes" 2 (List.length a.Episode.an_episodes);
  let e = List.hd a.Episode.an_episodes in
  let ph = Episode.phases_of e in
  Alcotest.(check (option int)) "detect->drain" (Some 5)
    ph.Episode.ph_detect_to_drain;
  Alcotest.(check (option int)) "drain" (Some 1) ph.Episode.ph_drain;
  Alcotest.(check (option int)) "get loop" (Some 1) ph.Episode.ph_get_loop;
  Alcotest.(check (option int)) "apply" (Some 1) ph.Episode.ph_apply;
  Alcotest.(check (option int)) "resume" (Some 10) ph.Episode.ph_resume;
  Alcotest.(check (option int)) "total" (Some 40) ph.Episode.ph_total

let check_rules name expected evs =
  let a = Episode.analyze evs in
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (Printf.sprintf "%s flags %s" name rule)
        true
        (List.mem rule (Episode.rules a)))
    expected

let test_analyzer_lost_store () =
  check_rules "lost store" [ "lost-store"; "lost-store-at-exit" ]
    [ bare Episode.Detect 0 10;
      ev Episode.Put 0 12 0;
      ev Episode.Put 0 13 1;
      ev Episode.Get 0 20 0;
      ev Episode.Apply 0 25 0;
      (* seq 1 never retrieved *)
      bare Episode.Resolve 0 30;
      bare Episode.Resume 0 40 ]

let test_analyzer_get_order () =
  check_rules "out-of-order GET" [ "get-order" ]
    [ bare Episode.Detect 0 10;
      ev Episode.Put 0 12 0;
      ev Episode.Put 0 13 1;
      ev Episode.Get 0 20 1;
      (* replays PUT order backwards *)
      ev Episode.Get 0 21 0 ]

let test_analyzer_get_order_ok_when_unordered () =
  let evs =
    [ bare Episode.Detect 0 10;
      ev Episode.Put 0 12 0;
      ev Episode.Put 0 13 1;
      ev Episode.Get 0 20 1;
      ev Episode.Get 0 21 0;
      ev Episode.Apply 0 25 1;
      ev Episode.Apply 0 26 0;
      bare Episode.Resolve 0 30;
      bare Episode.Resume 0 40 ]
  in
  let a = Episode.analyze ~ordered_interface:false ~ordered_apply:false evs in
  Alcotest.(check bool) "split-stream/WC order is fine" true (Episode.clean a)

let test_analyzer_resume_before_resolve () =
  check_rules "resume before resolve" [ "resume-before-resolve" ]
    [ bare Episode.Detect 0 10; bare Episode.Resume 0 20 ]

let test_analyzer_after_terminate () =
  check_rules "activity after terminate" [ "after-terminate" ]
    [ bare Episode.Detect 0 10;
      ev Episode.Put 0 12 0;
      bare Episode.Terminate 0 20;
      ev Episode.Get 0 25 0 ]

let test_analyzer_stuck_episode () =
  let a =
    Episode.analyze
      [ bare Episode.Detect 0 10; ev Episode.Put 0 12 0; ev Episode.Get 0 14 0;
        ev Episode.Apply 0 16 0 ]
  in
  Alcotest.(check bool) "stuck flagged" true
    (List.mem "stuck-episode" (Episode.rules a));
  match a.Episode.an_episodes with
  | [ e ] -> Alcotest.(check (option int)) "no end cycle" None e.Episode.ep_end
  | _ -> Alcotest.fail "expected one episode"

let test_analyzer_retry_storm () =
  let gets = List.init 6 (fun i -> ev Episode.Get 0 (20 + i) 0) in
  let evs =
    (bare Episode.Detect 0 10 :: ev Episode.Put 0 12 0 :: gets)
    @ [ ev Episode.Apply 0 40 0; bare Episode.Resolve 0 50;
        bare Episode.Resume 0 60 ]
  in
  let a = Episode.analyze ~retry_threshold:4 evs in
  Alcotest.(check bool) "retry storm flagged" true
    (List.mem "retry-storm" (Episode.rules a))

(* ------------------------------------------------------------------ *)
(* offline analyzer ≡ online watchdog on real runs                     *)

let analyze_report (r : Ise_chaos.Chaos_run.report) =
  match Journal.parse r.Ise_chaos.Chaos_run.r_journal with
  | Error msg -> Alcotest.failf "report journal must parse: %s" msg
  | Ok p ->
    let flag k d =
      match List.assoc_opt k p.Journal.j_meta with
      | Some "true" -> true
      | Some "false" -> false
      | _ -> d
    in
    Episode.analyze
      ~ordered_interface:(flag "ordered_interface" true)
      ~ordered_apply:(flag "ordered_apply" true)
      (Episode.of_journal p)

let test_offline_matches_online_clean () =
  List.iter
    (fun profile ->
      let r =
        Ise_chaos.Chaos_run.run_stress ~ncores:2 ~stores_per_core:60 ~seed:7
          ~profile ()
      in
      Alcotest.(check bool)
        ("online clean under " ^ profile.Ise_chaos.Profile.name)
        true
        (r.Ise_chaos.Chaos_run.r_violations = []);
      let a = analyze_report r in
      Alcotest.(check (list string))
        ("offline clean under " ^ profile.Ise_chaos.Profile.name)
        [] (Episode.rules a);
      Alcotest.(check bool)
        ("episodes reconstructed under " ^ profile.Ise_chaos.Profile.name)
        true
        (a.Episode.an_episodes <> []))
    (List.filter Ise_chaos.Profile.outcome_transparent Ise_chaos.Profile.all)

let test_offline_matches_online_dropped_get () =
  (* the --inject-bug canary: the handler drops one retrieved record
     per batch; both implementations must call it a lost store *)
  Ise_os.Handler.bug_drop_get := true;
  Fun.protect
    ~finally:(fun () -> Ise_os.Handler.bug_drop_get := false)
    (fun () ->
      let profile = Option.get (Ise_chaos.Profile.named "light") in
      let r =
        Ise_chaos.Chaos_run.run_stress ~ncores:2 ~stores_per_core:60 ~seed:7
          ~profile ()
      in
      let online_rules =
        List.sort_uniq compare
          (List.map
             (fun v -> v.Ise_chaos.Watchdog.w_rule)
             r.Ise_chaos.Chaos_run.r_violations)
      in
      Alcotest.(check bool) "online watchdog trips" true (online_rules <> []);
      Alcotest.(check bool) "online names lost-store" true
        (List.mem "lost-store" online_rules);
      let a = analyze_report r in
      Alcotest.(check bool) "offline names lost-store" true
        (List.mem "lost-store" (Episode.rules a));
      (* every online lost-store rule the watchdog found is also found
         offline (the offline pass may add its own exit-time rules) *)
      List.iter
        (fun rule ->
          if rule = "lost-store" || rule = "lost-store-at-exit" then
            Alcotest.(check bool)
              ("offline also flags " ^ rule)
              true
              (List.mem rule (Episode.rules a)))
        online_rules)

(* ------------------------------------------------------------------ *)
(* ledger                                                              *)

let mk_record ?(kind = "bench") ?(label = "x") ?(rev = "r1") metrics =
  Ledger.make ~run_id:"rid" ~git_rev:rev ~config:"cfg" ~time:0. ~kind ~label
    ~seed:1 metrics

let test_ledger_roundtrip () =
  let dir = Filename.temp_file "ise_ledger" "" in
  Sys.remove dir;
  let path = Filename.concat dir "ledger.jsonl" in
  let r1 = mk_record [ ("cycles", 100.); ("ipc", 1.5) ] in
  let r2 = mk_record ~rev:"r2" [ ("cycles", 90.); ("ipc", 1.6) ] in
  Ledger.append ~path r1;
  Ledger.append ~path r2;
  (match Ledger.load ~path with
   | Error msg -> Alcotest.failf "load failed: %s" msg
   | Ok records ->
     Alcotest.(check int) "two records" 2 (List.length records);
     Alcotest.(check bool) "round-trips" true (records = [ r1; r2 ]);
     (match Ledger.last ~kind:"bench" records with
      | Some r ->
        Alcotest.(check string) "last is newest" "r2" r.Ledger.l_git_rev
      | None -> Alcotest.fail "last must find a record");
     Alcotest.(check bool) "last with absent kind" true
       (Ledger.last ~kind:"zzz" records = None));
  (* corrupt line: load is an error, naming the line *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{not json\n";
  close_out oc;
  (match Ledger.load ~path with
   | Error msg ->
     Alcotest.(check bool) "error names line 3" true
       (let rec contains i =
          i + 2 <= String.length msg
          && (String.sub msg i 2 = ":3" || contains (i + 1))
        in
        contains 0)
   | Ok _ -> Alcotest.fail "corrupt line must be an error");
  Sys.remove path;
  Unix.rmdir dir

let delta_of cmp name =
  List.find (fun d -> d.Ledger.d_name = name) cmp.Ledger.c_deltas

let test_compare_boundaries () =
  let base =
    mk_record
      [ ("cycles", 100.); ("only_base", 1.); ("zero", 0.); ("nan", Float.nan);
        ("zero_to_some", 0.); ("wall_s", 10.) ]
  in
  let cand =
    mk_record ~rev:"r2"
      [ ("cycles", 102.); ("only_new", 1.); ("zero", 0.); ("nan", 1.);
        ("zero_to_some", 5.); ("wall_s", 50.) ]
  in
  let cmp = Ledger.compare_records ~threshold:0.02 ~base cand in
  (* exactly at the threshold: +2% on a 2% band is neutral *)
  Alcotest.(check bool) "at-threshold is neutral" true
    ((delta_of cmp "cycles").Ledger.d_verdict = Ledger.Neutral);
  Alcotest.(check bool) "missing from new" true
    ((delta_of cmp "only_base").Ledger.d_verdict = Ledger.Missing_new);
  Alcotest.(check bool) "missing from base" true
    ((delta_of cmp "only_new").Ledger.d_verdict = Ledger.Missing_base);
  Alcotest.(check bool) "zero = zero is neutral" true
    ((delta_of cmp "zero").Ledger.d_verdict = Ledger.Neutral);
  Alcotest.(check bool) "NaN is incomparable" true
    ((delta_of cmp "nan").Ledger.d_verdict = Ledger.Incomparable);
  Alcotest.(check bool) "zero base, nonzero new is incomparable" true
    ((delta_of cmp "zero_to_some").Ledger.d_verdict = Ledger.Incomparable);
  (* wall-clock moved 5x but is informational: never gates *)
  Alcotest.(check bool) "wall clock never regresses" true
    ((delta_of cmp "wall_s").Ledger.d_verdict <> Ledger.Regressed);
  Alcotest.(check bool) "nothing above gates" false (Ledger.regressed cmp);
  (* strictly beyond the threshold does gate *)
  let cmp2 =
    Ledger.compare_records ~threshold:0.02 ~base
      (mk_record ~rev:"r2" [ ("cycles", 103.) ])
  in
  Alcotest.(check bool) "beyond threshold regresses" true
    (Ledger.regressed cmp2);
  (* per-metric override loosens it back to neutral *)
  let cmp3 =
    Ledger.compare_records ~threshold:0.02 ~thresholds:[ ("cycles", 0.05) ]
      ~base
      (mk_record ~rev:"r2" [ ("cycles", 103.) ])
  in
  Alcotest.(check bool) "override wins" false (Ledger.regressed cmp3);
  (* higher-better metrics regress downwards *)
  let b = mk_record [ ("ipc", 2.0) ] in
  let cmp4 =
    Ledger.compare_records ~threshold:0.02 ~base:b
      (mk_record ~rev:"r2" [ ("ipc", 1.8) ])
  in
  Alcotest.(check bool) "ipc drop regresses" true (Ledger.regressed cmp4)

let test_flatten_json () =
  let json =
    Ise_telemetry.Json.Obj
      [ ("run_id", Ise_telemetry.Json.String "skip me");
        ( "fig5",
          Ise_telemetry.Json.Obj
            [ ("total", Ise_telemetry.Json.Float 3.5);
              ("ok", Ise_telemetry.Json.Bool true) ] );
        ("rows", Ise_telemetry.Json.List [ Ise_telemetry.Json.Int 7 ]) ]
  in
  Alcotest.(check (list (pair string (float 0.))))
    "flatten paths"
    [ ("b/fig5/total", 3.5); ("b/fig5/ok", 1.0); ("b/rows/0", 7.0) ]
    (Ledger.flatten_json ~prefix:"b" json)

(* ------------------------------------------------------------------ *)
(* pool crash journals                                                 *)

let test_pool_crash_journal () =
  if not Ise_pool.Pool.fork_available then ()
  else begin
    let dir = Filename.temp_file "ise_jnl" "" in
    Sys.remove dir;
    (* the poison job notes into the global recorder (spilling, because
       the pool enabled it) and then dies without warning *)
    let job i =
      if i = 1 then begin
        Recorder.note "about-to-die" ~args:[ ("i", Ise_telemetry.Json.Int i) ];
        Unix.kill (Unix.getpid ()) Sys.sigkill
      end;
      i * 2
    in
    let outcomes, _ =
      Ise_pool.Pool.map ~jobs:2 ~max_retries:0 ~journal_dir:dir job
        [| 0; 1; 2 |]
    in
    (match outcomes.(1) with
     | Ise_pool.Pool.Failed (Ise_pool.Pool.Crashed reason) ->
       let marker = "journal: " in
       let at =
         let rec find i =
           if i + String.length marker > String.length reason then None
           else if String.sub reason i (String.length marker) = marker then
             Some (i + String.length marker)
           else find (i + 1)
         in
         find 0
       in
       (match at with
        | None -> Alcotest.failf "no journal path in %S" reason
        | Some start ->
          let path = String.sub reason start (String.length reason - start) in
          (match Journal.load path with
           | Error msg -> Alcotest.failf "crash journal unreadable: %s" msg
           | Ok p ->
             Alcotest.(check bool) "journal has the dying worker's note" true
               (List.exists
                  (fun (e : Ise_telemetry.Trace.event) ->
                    e.Ise_telemetry.Trace.ev_name = "about-to-die")
                  p.Journal.j_events)))
     | o ->
       Alcotest.failf "expected a crash, got %s"
         (match o with
          | Ise_pool.Pool.Done _ -> "Done"
          | Ise_pool.Pool.Split _ -> "Split"
          | Ise_pool.Pool.Failed e -> Ise_pool.Pool.error_to_string e));
    (* healthy results are unaffected *)
    Alcotest.(check bool) "other jobs fine" true
      (outcomes.(0) = Ise_pool.Pool.Done 0
      && outcomes.(2) = Ise_pool.Pool.Done 4);
    (* clean workers' journals were removed; the crash journal stays *)
    let left = Sys.readdir dir in
    Alcotest.(check bool) "only crash journals remain" true
      (Array.length left >= 1);
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) left;
    Unix.rmdir dir
  end

(* ------------------------------------------------------------------ *)
(* adaptive shard sizing stays deterministic                           *)

let campaign_fingerprint (r : Ise_fuzz.Campaign.report) =
  ( r.Ise_fuzz.Campaign.r_tests,
    r.Ise_fuzz.Campaign.r_checks,
    r.Ise_fuzz.Campaign.r_lost_tests,
    List.map
      (fun f ->
        ( f.Ise_fuzz.Campaign.f_test.Ise_litmus.Lit_test.name,
          Ise_fuzz.Campaign.variant_name f.Ise_fuzz.Campaign.f_variant,
          Ise_fuzz.Campaign.kind_name f.Ise_fuzz.Campaign.f_kind,
          f.Ise_fuzz.Campaign.f_detail ))
      r.Ise_fuzz.Campaign.r_failures )

let test_auto_shard_sizing_deterministic () =
  if not Ise_pool.Pool.fork_available then ()
  else begin
    let run sizing =
      Ise_fuzz.Campaign.run ~count:12 ~seeds_per_test:4 ~jobs:2
        ~shard_sizing:sizing ~seed:11 ()
    in
    let formula = campaign_fingerprint (run `Formula) in
    let auto = campaign_fingerprint (run `Auto) in
    let fixed = campaign_fingerprint (run (`Fixed 5)) in
    Alcotest.(check bool) "auto == formula" true (auto = formula);
    Alcotest.(check bool) "fixed == formula" true (fixed = formula)
  end

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* trace stitching                                                     *)

module Json = Ise_telemetry.Json

(* hand-built Chrome trace-event objects, so each test controls the
   clock domains exactly *)
let chrome_ev ?(ph = "i") ?(tid = 0) ?(args = []) ~name ts =
  Json.Obj
    [ ("name", Json.String name); ("cat", Json.String "fabric");
      ("ph", Json.String ph); ("ts", Json.Int ts); ("pid", Json.Int 0);
      ("tid", Json.Int tid); ("args", Json.Obj args) ]

let ctx_args ?parent span =
  (Ise_telemetry.Trace.ctx_key_span, Json.String span)
  :: (match parent with
      | Some p -> [ (Ise_telemetry.Trace.ctx_key_parent, Json.String p) ]
      | None -> [])

let doc ?role events =
  Json.Obj
    ((match role with
      | Some r -> [ ("role", Json.String r) ]
      | None -> [])
    @ [ ("traceEvents", Json.List events) ])

let sup_input =
  { Ise_obs.Stitch.in_file = "supervisor.trace.json";
    in_doc =
      doc ~role:"supervisor"
        [ chrome_ev ~ph:"B" ~name:"dispatch shard 0"
            ~args:(ctx_args "d-0") 1000;
          chrome_ev ~ph:"E" ~name:"dispatch shard 0"
            ~args:(ctx_args "d-0") 1900;
          chrome_ev ~ph:"B" ~name:"dispatch shard 1"
            ~args:(ctx_args "d-1") 2000;
          chrome_ev ~ph:"E" ~name:"dispatch shard 1"
            ~args:(ctx_args "d-1") 2900 ] }

(* this worker's clock runs 7000 us ahead; its fastest observed
   dispatch (d-1, 50 us latency) bounds the skew at 7050 *)
let worker_input =
  { Ise_obs.Stitch.in_file = "worker0.trace.json";
    in_doc =
      doc ~role:"worker"
        [ chrome_ev ~name:"receive" ~args:(ctx_args ~parent:"d-0" "w-r0")
            8100;
          chrome_ev ~ph:"B" ~name:"shard 0"
            ~args:(ctx_args ~parent:"d-0" "w-s0") 8200;
          chrome_ev ~ph:"E" ~name:"shard 0"
            ~args:(ctx_args ~parent:"d-0" "w-s0") 8500;
          chrome_ev ~name:"receive" ~args:(ctx_args ~parent:"d-1" "w-r1")
            9050 ] }

let ts_of ev = Option.bind (Json.member "ts" ev) Json.to_int
let name_of ev = Option.bind (Json.member "name" ev) Json.to_str

let stitched_events d =
  match Option.bind (Json.member "traceEvents" d) Json.to_list with
  | Some evs -> evs
  | None -> Alcotest.fail "stitched doc has no traceEvents"

let test_stitch_skew_normalization () =
  let d, infos = Ise_obs.Stitch.stitch [ worker_input; sup_input ] in
  (* supervisor first regardless of argument order, pid 0 / offset 0 *)
  (match infos with
   | [ s; w ] ->
     Alcotest.(check string) "sup role" "supervisor" s.Ise_obs.Stitch.sf_role;
     Alcotest.(check int) "sup pid" 0 s.Ise_obs.Stitch.sf_pid;
     Alcotest.(check int) "sup offset" 0 s.Ise_obs.Stitch.sf_offset_us;
     Alcotest.(check int) "worker pid" 1 w.Ise_obs.Stitch.sf_pid;
     (* min(8100-1000, 9050-2000): the tightest anchor wins *)
     Alcotest.(check int) "worker offset" 7050 w.Ise_obs.Stitch.sf_offset_us
   | _ -> Alcotest.fail "expected two file infos");
  let evs = stitched_events d in
  (* the anchoring receive lands exactly on its dispatch begin, and
     every worker event is causally after its dispatch *)
  let receive1 =
    List.find
      (fun ev ->
        name_of ev = Some "receive"
        && Option.bind (Json.member "args" ev) (fun a ->
               Option.bind
                 (Json.member Ise_telemetry.Trace.ctx_key_parent a)
                 Json.to_str)
           = Some "d-1")
      evs
  in
  Alcotest.(check (option int)) "anchor on dispatch" (Some 2000)
    (ts_of receive1);
  List.iter
    (fun ev ->
      if name_of ev = Some "shard 0" then
        match ts_of ev with
        | Some ts ->
          Alcotest.(check bool) "shard after dispatch" true (ts >= 1000)
        | None -> ())
    evs

let test_stitch_deterministic () =
  let d1, _ = Ise_obs.Stitch.stitch [ sup_input; worker_input ] in
  let d2, _ = Ise_obs.Stitch.stitch [ worker_input; sup_input ] in
  Alcotest.(check string) "byte-identical output"
    (Json.to_string d1) (Json.to_string d2)

let test_stitch_orphans () =
  let lost =
    { Ise_obs.Stitch.in_file = "worker1.trace.json";
      in_doc =
        doc ~role:"worker"
          [ chrome_ev ~ph:"B" ~name:"shard 9"
              ~args:(ctx_args ~parent:"d-gone" "w1-s9") 500 ] }
  in
  let d, _ = Ise_obs.Stitch.stitch [ sup_input; worker_input; lost ] in
  let orphan_of ev =
    Option.bind (Json.member "args" ev) (Json.member "orphan")
  in
  List.iter
    (fun ev ->
      match name_of ev with
      | Some "shard 9" ->
        (* the parent died with its process: tagged, not dropped *)
        Alcotest.(check bool) "orphan tagged" true
          (orphan_of ev = Some (Json.Bool true))
      | Some "shard 0" ->
        Alcotest.(check bool) "resolved parent untouched" true
          (orphan_of ev = None)
      | _ -> ())
    (stitched_events d)

let test_stitch_mixed_versions () =
  (* a v1/v2 worker streams nothing and writes no ctx: its file (if
     any) has no receive anchor and no parents — it must merge with
     offset 0 and no orphan tags *)
  let v1 =
    { Ise_obs.Stitch.in_file = "worker-old.trace.json";
      in_doc = doc [ chrome_ev ~ph:"B" ~name:"shard 3" 400 ] }
  in
  let d, infos = Ise_obs.Stitch.stitch [ sup_input; v1; worker_input ] in
  let old = List.find (fun f -> f.Ise_obs.Stitch.sf_file
                                = "worker-old.trace.json") infos in
  Alcotest.(check int) "no anchor, no shift" 0 old.Ise_obs.Stitch.sf_offset_us;
  List.iter
    (fun ev ->
      if name_of ev = Some "shard 3" then begin
        Alcotest.(check (option int)) "ts unshifted" (Some 400) (ts_of ev);
        Alcotest.(check bool) "no orphan tag" true
          (Option.bind (Json.member "args" ev) (Json.member "orphan") = None)
      end)
    (stitched_events d)

(* ------------------------------------------------------------------ *)
(* crash journals                                                      *)

let test_crash_dump_bounded () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ise-crash-test-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
  (* pre-existing journals from older crashed runs, oldest first *)
  let plant name age =
    let p = Filename.concat dir name in
    let oc = open_out p in
    output_string oc "stale\n";
    close_out oc;
    let t = Unix.gettimeofday () -. age in
    Unix.utimes p t t
  in
  plant "crash-old1-1.jnl" 300.;
  plant "crash-old2-2.jnl" 200.;
  plant "crash-old3-3.jnl" 100.;
  let r = Recorder.create ~meta:[ ("kind", "test") ] () in
  Recorder.instant r ~name:"boom" ~tid:0 1;
  (match Recorder.crash_dump ~dir ~keep:2 r with
   | None -> Alcotest.fail "crash_dump failed"
   | Some path ->
     Alcotest.(check bool) "dump exists" true (Sys.file_exists path);
     (* the fresh dump decodes as a journal *)
     let ic = open_in_bin path in
     let text = really_input_string ic (in_channel_length ic) in
     close_in ic;
     (match Journal.parse text with
      | Ok p ->
        Alcotest.(check int) "one event" 1 (List.length p.Journal.j_events)
      | Error e -> Alcotest.fail ("crash journal does not parse: " ^ e));
     let left =
       Sys.readdir dir |> Array.to_list
       |> List.filter (fun f -> Filename.check_suffix f ".jnl")
       |> List.sort compare
     in
     (* pruned oldest-first down to keep=2, never the fresh dump *)
     Alcotest.(check int) "bounded count" 2 (List.length left);
     Alcotest.(check bool) "fresh dump kept" true
       (List.mem (Filename.basename path) left);
     Alcotest.(check bool) "oldest pruned" false
       (List.mem "crash-old1-1.jnl" left))

let suite =
  [ Alcotest.test_case "journal round-trip with escaping" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "journal tolerates a truncated tail" `Quick
      test_journal_truncated_tail;
    Alcotest.test_case "journal rejects a bad header" `Quick
      test_journal_bad_header;
    Alcotest.test_case "recorder ring bound and dump" `Quick
      test_recorder_ring_and_dump;
    Alcotest.test_case "recorder spill survives without close" `Quick
      test_recorder_spill_survives;
    Alcotest.test_case "analyzer: clean lifecycle and phase math" `Quick
      test_analyzer_clean;
    Alcotest.test_case "analyzer: lost store" `Quick test_analyzer_lost_store;
    Alcotest.test_case "analyzer: out-of-order GET" `Quick
      test_analyzer_get_order;
    Alcotest.test_case "analyzer: unordered modes accept reordering" `Quick
      test_analyzer_get_order_ok_when_unordered;
    Alcotest.test_case "analyzer: resume before resolve" `Quick
      test_analyzer_resume_before_resolve;
    Alcotest.test_case "analyzer: activity after terminate" `Quick
      test_analyzer_after_terminate;
    Alcotest.test_case "analyzer: stuck episode" `Quick
      test_analyzer_stuck_episode;
    Alcotest.test_case "analyzer: retry storm" `Quick
      test_analyzer_retry_storm;
    Alcotest.test_case "offline == online on clean runs" `Slow
      test_offline_matches_online_clean;
    Alcotest.test_case "offline == online on the dropped-GET canary" `Quick
      test_offline_matches_online_dropped_get;
    Alcotest.test_case "ledger append/load round-trip" `Quick
      test_ledger_roundtrip;
    Alcotest.test_case "compare: threshold and boundary cases" `Quick
      test_compare_boundaries;
    Alcotest.test_case "flatten_json paths" `Quick test_flatten_json;
    Alcotest.test_case "pool crash leaves a decodable journal" `Quick
      test_pool_crash_journal;
    Alcotest.test_case "auto shard sizing is schedule-deterministic" `Quick
      test_auto_shard_sizing_deterministic;
    Alcotest.test_case "stitch: clock-skew normalization" `Quick
      test_stitch_skew_normalization;
    Alcotest.test_case "stitch: deterministic output" `Quick
      test_stitch_deterministic;
    Alcotest.test_case "stitch: orphan spans tagged" `Quick
      test_stitch_orphans;
    Alcotest.test_case "stitch: v1 files merge untouched" `Quick
      test_stitch_mixed_versions;
    Alcotest.test_case "crash journals are bounded" `Quick
      test_crash_dump_bounded ]
