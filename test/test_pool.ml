(* Tests for Ise_pool: the framing codec (round-trip, streaming decode,
   corruption detection) and the fork-based supervisor (ordering,
   failure isolation, crash retry, timeout kill, SIGINT drain, and the
   headline property: a fixed-seed campaign is byte-identical at -j 4
   and -j 1).  Fork-dependent cases are skipped on platforms without
   [Unix.fork]. *)

module Codec = Ise_pool.Codec
module Pool = Ise_pool.Pool
module Campaign = Ise_fuzz.Campaign
module Corpus = Ise_fuzz.Corpus

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* codec                                                               *)

let frame_of payload = Bytes.of_string (Codec.encode payload)

let decode_all ?max_payload buf =
  Codec.decode ?max_payload buf ~pos:0 ~len:(Bytes.length buf)

let test_codec_roundtrip () =
  let payloads =
    [ ""; "x"; "hello pool"; String.init 1000 (fun i -> Char.chr (i land 0xff)) ]
  in
  List.iter
    (fun p ->
      let framed = Codec.encode p in
      checki "frame length" (Codec.header_bytes + String.length p)
        (String.length framed);
      match decode_all (Bytes.of_string framed) with
      | Codec.Frame { payload = got; consumed; _ } ->
        checks "payload" p got;
        checki "consumed" (String.length framed) consumed
      | Codec.Need_more -> Alcotest.fail "complete frame decoded as Need_more"
      | Codec.Corrupt e -> Alcotest.failf "corrupt: %s" (Codec.error_to_string e))
    payloads

let test_codec_streaming_prefixes () =
  (* every strict prefix of a valid frame is Need_more, never Corrupt:
     the supervisor must be able to buffer partial reads *)
  let framed = frame_of "incremental payload" in
  for len = 0 to Bytes.length framed - 1 do
    match Codec.decode framed ~pos:0 ~len with
    | Codec.Need_more -> ()
    | Codec.Frame _ -> Alcotest.failf "prefix of %d bytes decoded a frame" len
    | Codec.Corrupt e ->
      Alcotest.failf "prefix of %d bytes corrupt: %s" len
        (Codec.error_to_string e)
  done

let test_codec_corruption () =
  let framed = frame_of "payload" in
  (* flip a magic byte *)
  let bad = Bytes.copy framed in
  Bytes.set bad 0 'X';
  (match decode_all bad with
  | Codec.Corrupt Codec.Bad_magic -> ()
  | _ -> Alcotest.fail "bad magic not detected");
  (* unknown version byte *)
  let bad = Bytes.copy framed in
  Bytes.set bad 4 (Char.chr 99);
  (match decode_all bad with
  | Codec.Corrupt (Codec.Unsupported_version 99) -> ()
  | _ -> Alcotest.fail "bad version not detected");
  (* a length field above the cap is corruption, not an allocation *)
  (match decode_all ~max_payload:4 (frame_of "way past the cap") with
  | Codec.Corrupt (Codec.Oversized n) ->
    checki "claimed size" (String.length "way past the cap") n
  | _ -> Alcotest.fail "oversized frame not refused");
  (* garbage mid-buffer offsets honour pos *)
  let buf = Bytes.cat (Bytes.of_string "junk") framed in
  match Codec.decode buf ~pos:4 ~len:(Bytes.length framed) with
  | Codec.Frame { payload = p; _ } -> checks "offset decode" "payload" p
  | _ -> Alcotest.fail "decode at offset failed"

let test_codec_marshal_roundtrip () =
  let v = (42, "text", [ Some 1; None; Some 3 ]) in
  let v' = Codec.unmarshal (Codec.marshal v) in
  checkb "marshal round-trip" true (v = v')

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let test_codec_fd_roundtrip () =
  with_pipe (fun r w ->
      Codec.write_frame w "over the pipe";
      (match Codec.read_frame r with
      | Ok p -> checks "fd payload" "over the pipe" p
      | Error _ -> Alcotest.fail "fd round-trip failed");
      (* clean EOF at a frame boundary *)
      Unix.close w;
      match Codec.read_frame r with
      | Error `Eof -> ()
      | Ok _ -> Alcotest.fail "read past EOF"
      | Error (`Corrupt e) ->
        Alcotest.failf "clean EOF reported corrupt: %s" (Codec.error_to_string e))

let test_codec_fd_truncated () =
  (* a stream cut mid-frame (worker killed mid-write) is Corrupt
     Truncated, never a silent Eof *)
  with_pipe (fun r w ->
      let framed = Codec.encode "cut short" in
      let half = String.length framed / 2 in
      let n = Unix.write_substring w framed 0 half in
      checki "partial write" half n;
      Unix.close w;
      match Codec.read_frame r with
      | Error (`Corrupt Codec.Truncated) -> ()
      | Error `Eof -> Alcotest.fail "mid-frame EOF reported as clean Eof"
      | Error (`Corrupt e) ->
        Alcotest.failf "wrong corruption: %s" (Codec.error_to_string e)
      | Ok _ -> Alcotest.fail "truncated frame decoded")

(* ------------------------------------------------------------------ *)
(* pool                                                                *)

let requires_fork () = Pool.fork_available

let rec render_outcome = function
  | Pool.Done r -> Printf.sprintf "done:%d" r
  | Pool.Failed e -> "failed:" ^ Pool.error_to_string e
  | Pool.Split (l, r) ->
    Printf.sprintf "split:(%s|%s)" (render_outcome l) (render_outcome r)

let test_pool_inline_matches_forked () =
  (* same inputs, same outcome array, whether forked or in-process;
     exceptions in f are deterministic Failed results in both paths *)
  let f i = if i mod 3 = 2 then failwith (Printf.sprintf "boom %d" i) else i * i in
  let items = Array.init 10 (fun i -> i) in
  let render (outs, _) =
    String.concat "," (Array.to_list (Array.map render_outcome outs))
  in
  let seq = render (Pool.map ~jobs:1 f items) in
  checkb "inline failures isolated" true
    (String.length seq > 0 && String.contains seq 'b' (* "boom" *));
  if requires_fork () then
    checks "forked = inline" seq (render (Pool.map ~jobs:3 f items))

let test_pool_results_in_order () =
  if not (requires_fork ()) then ()
  else begin
    (* later jobs finish first (earlier ones sleep longer), but
       on_result must still fire strictly in index order *)
    let n = 8 in
    let f i =
      Unix.sleepf (float_of_int (n - 1 - i) *. 0.02);
      i
    in
    let seen = ref [] in
    let outs, stats =
      Pool.map ~jobs:4
        ~on_result:(fun idx _ -> seen := idx :: !seen)
        f
        (Array.init n (fun i -> i))
    in
    checkb "emitted in index order" true
      (List.rev !seen = List.init n (fun i -> i));
    Array.iteri
      (fun i o -> checkb "identity result" true (o = Pool.Done i))
      outs;
    checki "all completed" n stats.Pool.st_completed;
    checkb "multiple workers" true (stats.Pool.st_workers > 1)
  end

let test_pool_crash_retry () =
  if not (requires_fork ()) then ()
  else begin
    (* job 0 SIGKILLs its own worker on first dispatch, then succeeds
       on retry (the flag file survives the crash); the batch completes *)
    let flag = Filename.temp_file "ise_pool_crash" ".flag" in
    Sys.remove flag;
    Fun.protect ~finally:(fun () -> if Sys.file_exists flag then Sys.remove flag)
    @@ fun () ->
    let f i =
      if i = 0 && not (Sys.file_exists flag) then begin
        Out_channel.with_open_bin flag (fun _ -> ());
        Unix.kill (Unix.getpid ()) Sys.sigkill
      end;
      i + 100
    in
    let outs, stats =
      Pool.map ~jobs:2 ~max_retries:2 ~retry_backoff:0.01 f [| 0; 1 |]
    in
    checkb "crashed job retried to success" true (outs.(0) = Pool.Done 100);
    checkb "sibling job unaffected" true (outs.(1) = Pool.Done 101);
    checkb "crash counted" true (stats.Pool.st_crashes >= 1);
    checkb "retry counted" true (stats.Pool.st_retried >= 1)
  end

let test_pool_crash_exhausts_retries () =
  if not (requires_fork ()) then ()
  else begin
    (* a job that always kills its worker is isolated as Failed
       (Crashed _) once retries run out; the rest of the batch is fine *)
    let f i =
      if i = 0 then Unix.kill (Unix.getpid ()) Sys.sigkill;
      i
    in
    let outs, stats =
      Pool.map ~jobs:2 ~max_retries:1 ~retry_backoff:0.01 f [| 0; 1 |]
    in
    (match outs.(0) with
    | Pool.Failed (Pool.Crashed _) -> ()
    | o -> Alcotest.failf "expected Crashed, got %s" (render_outcome o));
    checkb "other job done" true (outs.(1) = Pool.Done 1);
    checki "retries bounded" 1 stats.Pool.st_retried
  end

let test_pool_timeout_kill () =
  if not (requires_fork ()) then ()
  else begin
    let t0 = Unix.gettimeofday () in
    let f i = if i = 0 then Unix.sleepf 30. ; i in
    let outs, stats =
      Pool.map ~jobs:2 ~job_timeout:0.3 ~kill_grace:0.2 ~max_retries:0 f
        [| 0; 1 |]
    in
    (match outs.(0) with
    | Pool.Failed (Pool.Timed_out s) -> checkb "ran ~timeout" true (s >= 0.25)
    | o -> Alcotest.failf "expected Timed_out, got %s" (render_outcome o));
    checkb "fast job unaffected" true (outs.(1) = Pool.Done 1);
    checki "timeout counted" 1 stats.Pool.st_timed_out;
    (* the 30 s sleeper was actually killed, not waited out *)
    checkb "killed promptly" true (Unix.gettimeofday () -. t0 < 10.)
  end

let test_pool_timeout_bisect () =
  if not (requires_fork ()) then ()
  else begin
    (* batch 0 contains one wedged item: the timed-out batch is split
       once, the clean half completes, the wedged half times out for
       good (halves are never re-split) *)
    let f batch =
      List.iter (fun i -> if i = 13 then Unix.sleepf 30.) batch;
      List.fold_left ( + ) 0 batch
    in
    let bisect = function
      | ([] | [ _ ]) -> None
      | batch ->
        let mid = List.length batch / 2 in
        Some (List.filteri (fun i _ -> i < mid) batch,
              List.filteri (fun i _ -> i >= mid) batch)
    in
    let outs, stats =
      Pool.map ~jobs:2 ~job_timeout:0.4 ~kill_grace:0.1 ~max_retries:0 ~bisect
        f
        [| [ 1; 2; 13; 4 ]; [ 5; 6 ] |]
    in
    (match outs.(0) with
    | Pool.Split (Pool.Done 3, Pool.Failed (Pool.Timed_out _)) -> ()
    | o -> Alcotest.failf "expected Split(done 3, timeout), got %s"
             (render_outcome o));
    checkb "clean batch unaffected" true (outs.(1) = Pool.Done 11);
    checki "one bisection" 1 stats.Pool.st_bisected;
    (* whole batch + wedged half both timed out *)
    checki "timeouts counted" 2 stats.Pool.st_timed_out
  end

let test_pool_sigint_drain () =
  if not (requires_fork ()) then ()
  else begin
    (* job 0 interrupts the supervisor; in-flight jobs finish, queued
       jobs come back Failed Cancelled, and map returns normally *)
    let f i =
      if i = 0 then begin
        Unix.kill (Unix.getppid ()) Sys.sigint;
        Unix.sleepf 0.2
      end
      else Unix.sleepf 0.4;
      i
    in
    let outs, stats = Pool.map ~jobs:2 ~max_retries:0 f [| 0; 1; 2; 3; 4 |] in
    checkb "in-flight job finished" true (outs.(0) = Pool.Done 0);
    checkb "queued jobs cancelled" true (stats.Pool.st_cancelled >= 1);
    checkb "tail job cancelled" true (outs.(4) = Pool.Failed Pool.Cancelled)
  end

(* ------------------------------------------------------------------ *)
(* determinism: -j 4 ≡ -j 1 on a fixed-seed campaign                   *)

let with_injected_bug f =
  Ise_model.Axiom.fuzz_unsound_strict_ppo := true;
  Fun.protect
    ~finally:(fun () -> Ise_model.Axiom.fuzz_unsound_strict_ppo := false)
    f

let report_fingerprint ~seed (r : Campaign.report) =
  let failures =
    List.map
      (fun f -> Corpus.to_string (Campaign.entry_of_failure ~seed f))
      r.Campaign.r_failures
  in
  String.concat "\n"
    (Printf.sprintf "tests=%d checks=%d lost=%d" r.Campaign.r_tests
       r.Campaign.r_checks r.Campaign.r_lost_tests
    :: failures)

let campaign_fingerprint ~jobs ~seed =
  let log_buf = Buffer.create 256 in
  let report =
    Campaign.run ~count:20 ~seeds_per_test:8 ~jobs
      ~log:(fun s -> Buffer.add_string log_buf (s ^ "\n"))
      ~seed ()
  in
  (report_fingerprint ~seed report, Buffer.contents log_buf)

let test_campaign_j4_equals_j1 () =
  if not (requires_fork ()) then ()
  else begin
    (* the acceptance criterion: same failures, same shrunk artifacts,
       same log stream, whatever the worker count — exercised with an
       injected model bug so the equality covers the failure path too *)
    with_injected_bug (fun () ->
        let fp1, log1 = campaign_fingerprint ~jobs:1 ~seed:7 in
        let fp4, log4 = campaign_fingerprint ~jobs:4 ~seed:7 in
        checks "report fingerprint -j4 = -j1" fp1 fp4;
        checks "log stream -j4 = -j1" log1 log4);
    (* and on the sound model (clean run, different seed) *)
    let fp1, log1 = campaign_fingerprint ~jobs:1 ~seed:11 in
    let fp4, log4 = campaign_fingerprint ~jobs:4 ~seed:11 in
    checks "clean fingerprint -j4 = -j1" fp1 fp4;
    checks "clean log -j4 = -j1" log1 log4
  end

(* ------------------------------------------------------------------ *)
(* persistent pools                                                    *)

let test_pool_persistent_reuse () =
  if not (requires_fork ()) then ()
  else begin
    (* three batches on one handle: workers fork once, then are reused
       — and every batch is byte-identical to the -j 1 inline run *)
    let f i = if i mod 5 = 3 then failwith "det boom" else i * 7 in
    let p = Pool.create ~jobs:3 f in
    Fun.protect ~finally:(fun () -> Pool.close p) @@ fun () ->
    let render (outs, _) =
      String.concat "," (Array.to_list (Array.map render_outcome outs))
    in
    let batches = [ Array.init 9 (fun i -> i);
                    Array.init 6 (fun i -> i + 100);
                    Array.init 9 (fun i -> 2 * i) ] in
    let spawned =
      List.map
        (fun items ->
          let (_, stats) as out = Pool.run p items in
          checks "persistent = inline bytes"
            (render (Pool.map ~jobs:1 f items))
            (render out);
          stats.Pool.st_spawned)
        batches
    in
    (match spawned with
     | first :: rest ->
       checki "first batch forks the workers" 3 first;
       List.iter (checki "later batches fork nothing" 0) rest
     | [] -> assert false);
    checki "workers alive between batches" 3 (Pool.alive_workers p);
    Pool.close p;
    checki "close reaps all workers" 0 (Pool.alive_workers p)
  end

let test_pool_persistent_streams_in_order () =
  if not (requires_fork ()) then ()
  else begin
    (* in-order on_result emission holds on the reused-worker path too *)
    let n = 8 in
    let f i = Unix.sleepf (float_of_int (n - 1 - i) *. 0.01); i in
    Pool.with_pool ~jobs:4 f @@ fun p ->
    ignore (Pool.run p (Array.init n (fun i -> i)));
    let seen = ref [] in
    let _ =
      Pool.run ~on_result:(fun idx _ -> seen := idx :: !seen) p
        (Array.init n (fun i -> i))
    in
    checkb "second batch emits in index order" true
      (List.rev !seen = List.init n (fun i -> i))
  end

let test_pool_persistent_survives_crash () =
  if not (requires_fork ()) then ()
  else begin
    (* a worker dying mid-stream fails its job (retries off) but the
       handle keeps working: the next batch transparently respawns *)
    let f i = if i = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill; i in
    let p = Pool.create ~jobs:2 ~max_retries:0 f in
    Fun.protect ~finally:(fun () -> Pool.close p) @@ fun () ->
    let outs, stats = Pool.run p [| 0; 1; 2; 3 |] in
    checkb "crash recorded" true (stats.Pool.st_crashes >= 1);
    (match outs.(1) with
     | Pool.Failed (Pool.Crashed _) -> ()
     | o -> Alcotest.failf "expected Crashed, got %s" (render_outcome o));
    checkb "other jobs completed" true
      (outs.(0) = Pool.Done 0 && outs.(2) = Pool.Done 2
       && outs.(3) = Pool.Done 3);
    (* same handle, clean batch — any dead worker is re-forked *)
    let g = Array.init 5 (fun i -> i + 10) in
    let outs2, stats2 = Pool.run p g in
    Array.iteri
      (fun i o -> checkb "post-crash batch ok" true (o = Pool.Done (i + 10)))
      outs2;
    checki "no crashes in clean batch" 0 stats2.Pool.st_crashes
  end

let test_pool_prespawn () =
  if not (requires_fork ()) then ()
  else begin
    let p = Pool.create ~jobs:2 (fun i -> i + 1) in
    Fun.protect ~finally:(fun () -> Pool.close p) @@ fun () ->
    checki "no workers before prespawn" 0 (Pool.alive_workers p);
    Pool.prespawn p;
    checki "prespawn forks all workers" 2 (Pool.alive_workers p);
    let outs, stats = Pool.run p [| 1; 2; 3 |] in
    checki "prespawned batch forks nothing" 0 stats.Pool.st_spawned;
    Array.iteri
      (fun i o -> checkb "result" true (o = Pool.Done (i + 2)))
      outs
  end

let suite =
  [
    Alcotest.test_case "codec: round-trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec: streaming prefixes" `Quick
      test_codec_streaming_prefixes;
    Alcotest.test_case "codec: corruption detected" `Quick test_codec_corruption;
    Alcotest.test_case "codec: marshal round-trip" `Quick
      test_codec_marshal_roundtrip;
    Alcotest.test_case "codec: fd round-trip and EOF" `Quick
      test_codec_fd_roundtrip;
    Alcotest.test_case "codec: truncated stream" `Quick test_codec_fd_truncated;
    Alcotest.test_case "pool: forked = inline" `Quick
      test_pool_inline_matches_forked;
    Alcotest.test_case "pool: results in order" `Quick test_pool_results_in_order;
    Alcotest.test_case "pool: crash retried" `Quick test_pool_crash_retry;
    Alcotest.test_case "pool: crash isolated after retries" `Quick
      test_pool_crash_exhausts_retries;
    Alcotest.test_case "pool: timeout killed" `Quick test_pool_timeout_kill;
    Alcotest.test_case "pool: timeout bisected" `Quick
      test_pool_timeout_bisect;
    Alcotest.test_case "pool: SIGINT drains" `Quick test_pool_sigint_drain;
    Alcotest.test_case "pool: persistent workers reused" `Quick
      test_pool_persistent_reuse;
    Alcotest.test_case "pool: persistent streams in order" `Quick
      test_pool_persistent_streams_in_order;
    Alcotest.test_case "pool: persistent survives worker crash" `Quick
      test_pool_persistent_survives_crash;
    Alcotest.test_case "pool: prespawn" `Quick test_pool_prespawn;
    Alcotest.test_case "pool: campaign -j4 = -j1" `Slow
      test_campaign_j4_equals_j1;
  ]
