(* Tests for Ise_chaos: deterministic replay (same seed, same bytes),
   zero watchdog violations on every built-in profile, nonzero
   injection counters for every fault class, the watchdog's synthetic
   rule checks, and the seeded-bug canary (a handler that drops a GET
   must be caught). *)

module Profile = Ise_chaos.Profile
module Plane = Ise_chaos.Plane
module Watchdog = Ise_chaos.Watchdog
module Chaos_run = Ise_chaos.Chaos_run
module Contract = Ise_core.Contract
module Fault = Ise_core.Fault

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let report_string r = Format.asprintf "%a" Chaos_run.pp_report r

let run ?ncores ?stores_per_core ~seed profile =
  Chaos_run.run_stress ?ncores ?stores_per_core ~seed ~profile ()

(* ------------------------------------------------------------------ *)
(* profiles                                                            *)

let test_profiles_well_formed () =
  List.iter
    (fun (p : Profile.t) ->
      checkb (p.Profile.name ^ " named") true
        (Profile.named p.Profile.name = Some p);
      (match p.Profile.fsb_entries with
       | Some n -> checkb (p.Profile.name ^ " fsb pow2") true (n land (n - 1) = 0)
       | None -> ());
      (* bounded-retry convergence: the handler must out-retry the
         per-address denial budget *)
      if p.Profile.deny_pct > 0 then
        checkb
          (p.Profile.name ^ " retries > deny budget")
          true
          (p.Profile.max_apply_retries > p.Profile.deny_budget))
    Profile.all

let test_outcome_transparent () =
  checkb "light transparent" true (Profile.outcome_transparent Profile.light);
  checkb "storm not transparent" false
    (Profile.outcome_transparent Profile.storm)

(* ------------------------------------------------------------------ *)
(* determinism                                                         *)

let test_same_seed_same_bytes () =
  List.iter
    (fun p ->
      let a = report_string (run ~seed:42 p) in
      let b = report_string (run ~seed:42 p) in
      checks (p.Profile.name ^ " byte-identical") a b)
    [ Profile.light; Profile.fsb_stall; Profile.storm ]

let test_different_seed_different_run () =
  let a = run ~seed:1 Profile.noc and b = run ~seed:2 Profile.noc in
  checkb "seeds diverge" false
    (report_string a = report_string b)

(* ------------------------------------------------------------------ *)
(* clean runs: every profile, no violations                            *)

let test_profile_clean p () =
  let r = run ~seed:42 p in
  (match r.Chaos_run.r_violations with
   | [] -> ()
   | v :: _ ->
     Alcotest.failf "%s: %d violations, first [%s] %s%s" p.Profile.name
       (List.length r.Chaos_run.r_violations) v.Watchdog.w_rule
       v.Watchdog.w_detail
       (match r.Chaos_run.r_snapshot with
        | Some s -> "\n" ^ s
        | None -> ""));
  checki (p.Profile.name ^ " mismatches") 0 r.Chaos_run.r_mismatches;
  checkb (p.Profile.name ^ " ok") true (Chaos_run.ok r);
  checkb (p.Profile.name ^ " verified words") true
    (r.Chaos_run.r_verified > 0 || r.Chaos_run.r_terminated = 4)

(* ------------------------------------------------------------------ *)
(* coverage: across profiles and a few seeds, every fault class fires  *)

let test_all_classes_fire () =
  let totals = Hashtbl.create 8 in
  List.iter
    (fun p ->
      List.iter
        (fun seed ->
          let r = run ~seed p in
          List.iter
            (fun (k, v) ->
              Hashtbl.replace totals k
                (v + Option.value ~default:0 (Hashtbl.find_opt totals k)))
            r.Chaos_run.r_counts)
        [ 1; 2; 3 ])
    Profile.all;
  List.iter
    (fun cls ->
      let n = Option.value ~default:0 (Hashtbl.find_opt totals cls) in
      checkb (cls ^ " fired") true (n > 0))
    [ "chaos/put_delays"; "chaos/backpressures"; "chaos/noc_delays";
      "chaos/noc_dups"; "chaos/transient_denials"; "chaos/fatal_denials";
      "chaos/handler_preemptions" ]

let test_overflow_policies_exercised () =
  (* the shrunken-FSB profiles must actually overflow *)
  let stall = run ~seed:7 Profile.fsb_stall in
  let t = Ise_telemetry.Sink.create () in
  let degrade =
    Chaos_run.run_stress ~telemetry:t ~seed:7 ~profile:Profile.fsb_degrade ()
  in
  checkb "stall run ok" true (Chaos_run.ok stall);
  checkb "degrade run ok" true (Chaos_run.ok degrade);
  let stat name =
    List.fold_left
      (fun acc (k, s) ->
        match s with
        | Ise_telemetry.Registry.Snap_counter v
          when String.length k >= String.length name
               && String.sub k
                    (String.length k - String.length name)
                    (String.length name)
                  = name ->
          acc + v
        | _ -> acc)
      0
      (Ise_telemetry.Registry.snapshot (Ise_telemetry.Sink.registry t))
  in
  checkb "degrade drops counted" true (stat "fsb/overflow_drops" > 0)

(* ------------------------------------------------------------------ *)
(* seeded bug: a handler that drops one GET per batch must be caught   *)

let test_inject_bug_caught () =
  Ise_os.Handler.bug_drop_get := true;
  Fun.protect
    ~finally:(fun () -> Ise_os.Handler.bug_drop_get := false)
    (fun () ->
      let r = run ~seed:42 Profile.light in
      checkb "bug caught" false (Chaos_run.ok r);
      checkb "lost store flagged" true
        (List.exists
           (fun v ->
             v.Watchdog.w_rule = "lost-store"
             || v.Watchdog.w_rule = "lost-store-at-exit"
             || v.Watchdog.w_rule = "livelock"
             || v.Watchdog.w_rule = "memory-mismatch")
           r.Chaos_run.r_violations);
      match r.Chaos_run.r_snapshot with
      | Some s -> checkb "snapshot nonempty" true (String.length s > 0)
      | None -> Alcotest.fail "no snapshot on a failing run")

(* ------------------------------------------------------------------ *)
(* watchdog unit rules on synthetic event streams                      *)

let rec_ ?(seq = 0) ?(addr = 0x1000) ?(data = 7) core =
  ignore core;
  { Fault.core; seq; addr; data; byte_mask = 0xFF; code = Fault.Page_fault }

let wd_rules events =
  let wd = Watchdog.create ~ncores:1 () in
  List.iter (Watchdog.observe wd) events;
  List.map (fun v -> v.Watchdog.w_rule) (Watchdog.violations wd)

let test_watchdog_clean_episode () =
  let r = rec_ 0 in
  let evs =
    [ Contract.Detect { core = 0; cycle = 1 };
      Contract.Put { core = 0; cycle = 2; record = r };
      Contract.Get { core = 0; cycle = 3; record = r };
      Contract.Apply { core = 0; cycle = 4; record = r };
      Contract.Resolve { core = 0; cycle = 5 };
      Contract.Resume { core = 0; cycle = 6 } ]
  in
  checki "clean episode" 0 (List.length (wd_rules evs))

let test_watchdog_lost_store () =
  let r = rec_ 0 in
  let evs =
    [ Contract.Detect { core = 0; cycle = 1 };
      Contract.Put { core = 0; cycle = 2; record = r };
      Contract.Resolve { core = 0; cycle = 5 } ]
  in
  checkb "lost store" true (List.mem "lost-store" (wd_rules evs))

let test_watchdog_double_apply () =
  let r = rec_ 0 in
  let evs =
    [ Contract.Put { core = 0; cycle = 2; record = r };
      Contract.Get { core = 0; cycle = 3; record = r };
      Contract.Apply { core = 0; cycle = 4; record = r };
      Contract.Apply { core = 0; cycle = 5; record = r } ]
  in
  checkb "double apply" true (List.mem "apply-unknown" (wd_rules evs))

let test_watchdog_put_order () =
  let r0 = rec_ ~seq:5 0 and r1 = rec_ ~seq:3 ~addr:0x2000 0 in
  let evs =
    [ Contract.Put { core = 0; cycle = 2; record = r0 };
      Contract.Put { core = 0; cycle = 3; record = r1 } ]
  in
  checkb "put order" true (List.mem "put-order" (wd_rules evs))

let test_watchdog_get_order () =
  let r0 = rec_ ~seq:0 0 and r1 = rec_ ~seq:1 ~addr:0x2000 0 in
  let evs =
    [ Contract.Put { core = 0; cycle = 2; record = r0 };
      Contract.Put { core = 0; cycle = 3; record = r1 };
      Contract.Get { core = 0; cycle = 4; record = r1 } ]
  in
  checkb "get order" true (List.mem "get-order" (wd_rules evs));
  (* unordered interface accepts the same stream *)
  let wd = Watchdog.create ~ordered_interface:false ~ncores:1 () in
  List.iter (Watchdog.observe wd) evs;
  checki "split-stream tolerant" 0 (List.length (Watchdog.violations wd))

let test_watchdog_resume_before_resolve () =
  let evs =
    [ Contract.Detect { core = 0; cycle = 1 };
      Contract.Resume { core = 0; cycle = 2 } ]
  in
  checkb "resume before resolve" true
    (List.mem "resume-before-resolve" (wd_rules evs))

let test_watchdog_quiesce_after_terminate () =
  let r = rec_ 0 in
  let evs =
    [ Contract.Put { core = 0; cycle = 2; record = r };
      Contract.Terminate { core = 0; cycle = 3 };
      Contract.Put { core = 0; cycle = 4; record = r } ]
  in
  checkb "after terminate" true (List.mem "after-terminate" (wd_rules evs))

let test_watchdog_final_residue () =
  let r = rec_ 0 in
  let wd = Watchdog.create ~ncores:1 () in
  Watchdog.observe wd (Contract.Put { core = 0; cycle = 2; record = r });
  Watchdog.check_final wd;
  checkb "residue at exit" true
    (List.exists
       (fun v -> v.Watchdog.w_rule = "lost-store-at-exit")
       (Watchdog.violations wd))

(* ------------------------------------------------------------------ *)
(* chaos-hardened litmus                                               *)

let test_lit_check_passes () =
  let cfg = Ise_sim.Config.default in
  List.iter
    (fun p ->
      match
        Chaos_run.lit_check ~seeds:4 ~cfg ~profile:p Ise_litmus.Library.mp
      with
      | None -> ()
      | Some d -> Alcotest.failf "%s: %s" p.Profile.name d)
    [ Profile.light; Profile.transient ]

let test_chaos_seed_stable () =
  let t = Ise_litmus.Library.sb in
  checki "stable" (Chaos_run.chaos_seed Profile.light t)
    (Chaos_run.chaos_seed Profile.light t);
  checkb "profile-dependent" true
    (Chaos_run.chaos_seed Profile.light t
     <> Chaos_run.chaos_seed Profile.noc t)

let suite =
  [
    Alcotest.test_case "profiles well-formed" `Quick test_profiles_well_formed;
    Alcotest.test_case "outcome transparency" `Quick test_outcome_transparent;
    Alcotest.test_case "same seed, same bytes" `Quick test_same_seed_same_bytes;
    Alcotest.test_case "different seeds diverge" `Quick
      test_different_seed_different_run;
  ]
  @ List.map
      (fun p ->
        Alcotest.test_case
          (Printf.sprintf "clean run: %s" p.Profile.name)
          `Quick (test_profile_clean p))
      Profile.all
  @ [
      Alcotest.test_case "every fault class fires" `Slow test_all_classes_fire;
      Alcotest.test_case "overflow policies exercised" `Quick
        test_overflow_policies_exercised;
      Alcotest.test_case "injected bug is caught" `Quick test_inject_bug_caught;
      Alcotest.test_case "watchdog: clean episode" `Quick
        test_watchdog_clean_episode;
      Alcotest.test_case "watchdog: lost store" `Quick test_watchdog_lost_store;
      Alcotest.test_case "watchdog: double apply" `Quick
        test_watchdog_double_apply;
      Alcotest.test_case "watchdog: put order" `Quick test_watchdog_put_order;
      Alcotest.test_case "watchdog: get order" `Quick test_watchdog_get_order;
      Alcotest.test_case "watchdog: resume before resolve" `Quick
        test_watchdog_resume_before_resolve;
      Alcotest.test_case "watchdog: quiesce after terminate" `Quick
        test_watchdog_quiesce_after_terminate;
      Alcotest.test_case "watchdog: residue at exit" `Quick
        test_watchdog_final_residue;
      Alcotest.test_case "litmus under chaos" `Slow test_lit_check_passes;
      Alcotest.test_case "chaos seed stable" `Quick test_chaos_seed_stable;
    ]
