(* Tests for Ise_fabric: partition/EWMA plans, shard cache keys, the
   --shard range-union property, worker protocol discipline under
   malformed and hostile traffic, the resilience plane (netchaos
   wire-fault injection, heartbeats, rejoin, stale-socket hygiene,
   v1 compatibility), chaos campaigns over the fabric, and the
   headline guarantee — a campaign run across simulated workers
   (killed, restarted, proxied through deterministic wire faults, or
   answered entirely by the result store) merges to output
   byte-identical to a single-host run.  Fabric cases fork worker
   daemons and are skipped on platforms without [Unix.fork]. *)

module Codec = Ise_pool.Codec
module Framed = Ise_serve.Framed
module Store = Ise_serve.Store
module Campaign = Ise_fuzz.Campaign
module Corpus = Ise_fuzz.Corpus
module Plan = Ise_fabric.Plan
module Wire = Ise_fabric.Wire
module Netchaos = Ise_fabric.Netchaos
module Supervisor = Ise_fabric.Supervisor
module Merge = Ise_fabric.Merge
module Sim = Ise_fabric.Sim
module Chaos_run = Ise_chaos.Chaos_run
module Profile = Ise_chaos.Profile

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let tmp_dir () =
  let d = Filename.temp_file "ise-fabric" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let requires_fork () = Sim.available

let with_injected_bug f =
  Ise_model.Axiom.fuzz_unsound_strict_ppo := true;
  Fun.protect
    ~finally:(fun () -> Ise_model.Axiom.fuzz_unsound_strict_ppo := false)
    f

(* byte-level fingerprint of a report: counts plus every failure
   rendered as the corpus artifact it would be saved as *)
let fingerprint ~seed (r : Campaign.report) =
  ( r.Campaign.r_tests,
    r.Campaign.r_checks,
    r.Campaign.r_lost_tests,
    List.map
      (fun f -> Corpus.to_string (Campaign.entry_of_failure ~seed f))
      r.Campaign.r_failures )

(* short everything: tests poke at loss, not patience *)
let test_liveness =
  { Supervisor.default_liveness with
    handshake_timeout_s = 2.0;
    dispatch_timeout_s = 1.0;
    heartbeat_s = 0.2;
    rejoin_backoff_s = 0.1;
  }

(* ------------------------------------------------------------------ *)
(* plan                                                                *)

let test_plan_partition () =
  List.iter
    (fun (count, shards) ->
      let ranges = Plan.partition ~count ~shards in
      checkb "no empty shard" true
        (Array.for_all (fun (lo, hi) -> hi > lo) ranges);
      (* tiles [0, count) contiguously in order *)
      let expected_lo = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          checki "contiguous" !expected_lo lo;
          expected_lo := hi)
        ranges;
      checki "covers count" count !expected_lo;
      (* balanced: sizes differ by at most one *)
      let sizes = Array.map (fun (lo, hi) -> hi - lo) ranges in
      let mn = Array.fold_left min max_int sizes in
      let mx = Array.fold_left max 0 sizes in
      checkb "balanced" true (mx - mn <= 1))
    [ (10, 3); (3, 10); (16, 4); (1, 1); (7, 7); (100, 9) ];
  checki "count=0 is empty" 0
    (Array.length (Plan.partition ~count:0 ~shards:4))

let test_plan_parse () =
  (match Plan.parse_shard "2/5" with
   | Ok (k, n) ->
     checki "k is 0-based" 1 k;
     checki "n" 5 n
   | Error msg -> Alcotest.failf "2/5 rejected: %s" msg);
  List.iter
    (fun s ->
      match Plan.parse_shard s with
      | Ok _ -> Alcotest.failf "%S accepted" s
      | Error _ -> ())
    [ ""; "0/5"; "6/5"; "1/0"; "a/b"; "1"; "1/2/3"; "-1/4" ]

let test_plan_ewma () =
  let e = Plan.ewma_create () in
  checkb "deadline infinite before first sample" true
    (Plan.deadline e = infinity);
  Plan.observe e 1.0;
  checkb "first sample sets the mean" true (Plan.mean e = 1.0);
  checkb "deadline = factor * mean" true
    (Plan.deadline ~factor:4.0 ~floor:0.1 e = 4.0);
  Plan.observe e 3.0;
  checkb "ewma moved toward the new sample" true
    (Plan.mean e > 1.0 && Plan.mean e < 3.0);
  checki "samples counted" 2 (Plan.samples e);
  let tiny = Plan.ewma_create () in
  Plan.observe tiny 0.001;
  checkb "floor bounds the deadline" true
    (Plan.deadline ~floor:0.5 tiny = 0.5)

(* ------------------------------------------------------------------ *)
(* shard cache keys                                                    *)

let test_shard_keys () =
  let spec = Campaign.spec ~count:10 ~seed:1 () in
  let key s = Wire.shard_key (Wire.Fuzz s) in
  let k = key spec ~lo:0 ~hi:5 in
  checks "key is deterministic" k (key spec ~lo:0 ~hi:5);
  checkb "range changes the key" true (k <> key spec ~lo:5 ~hi:10);
  let spec' = Campaign.spec ~count:10 ~seed:2 () in
  checkb "seed changes the key" true (k <> key spec' ~lo:0 ~hi:5);
  let spec'' = Campaign.spec ~count:10 ~seeds_per_test:3 ~seed:1 () in
  checkb "config changes the key" true (k <> key spec'' ~lo:0 ~hi:5);
  (* chaos campaigns live in their own key domain *)
  let cs = Chaos_run.spec ~trials:10 ~seed:1 ~profiles:Profile.all () in
  checkb "chaos and fuzz keys are domain-separated" true
    (k <> Wire.shard_key (Wire.Chaos cs) ~lo:0 ~hi:5);
  (* the fuzz-shard domain rides the shared key helper, so an
     enumeration-engine epoch bump invalidates shard results exactly
     like litmus and replay results *)
  let fp e =
    Ise_serve.Cache.config_fp ~enum_epoch:e ~domain:"fuzz-shard" [ "x" ]
  in
  checkb "epoch bump invalidates" true (fp 1 <> fp 2)

(* ------------------------------------------------------------------ *)
(* --shard: the union property                                         *)

let test_range_union () =
  with_injected_bug (fun () ->
      let variant =
        match Campaign.variant_named "wc+same+nofaults" with
        | Some v -> v
        | None -> Alcotest.fail "variant wc+same+nofaults missing"
      in
      let count = 12 in
      let run ?range () =
        Campaign.run ~count ~seeds_per_test:8 ~variants:[ variant ] ?range
          ~seed:5 ()
      in
      let full = run () in
      checkb "campaign finds the injected bug" true
        (full.Campaign.r_failures <> []);
      let parts =
        List.map
          (fun k -> run ~range:(Plan.shard_range ~count ~shards:3 k) ())
          [ 0; 1; 2 ]
      in
      checki "tests sum to the full run" full.Campaign.r_tests
        (List.fold_left (fun a r -> a + r.Campaign.r_tests) 0 parts);
      checki "checks sum to the full run" full.Campaign.r_checks
        (List.fold_left (fun a r -> a + r.Campaign.r_checks) 0 parts);
      let arts r =
        List.map
          (fun f -> Corpus.to_string (Campaign.entry_of_failure ~seed:5 f))
          r.Campaign.r_failures
      in
      checkb "failure artifacts concatenate to the full run" true
        (List.concat_map arts parts = arts full))

(* ------------------------------------------------------------------ *)
(* netchaos: the injector itself                                       *)

let sample_frames =
  List.init 120 (fun i ->
      Codec.encode ~proto:Wire.version
        (String.make (8 + (i mod 40)) (Char.chr (65 + (i mod 26)))))

let test_netchaos_deterministic () =
  let run () =
    let nc = Netchaos.create ~seed:7 ~profile:Netchaos.storm in
    let acts = List.map (Netchaos.frame_action nc) sample_frames in
    let stalls = List.init 20 (fun _ -> Netchaos.conn_stall nc) in
    (acts, stalls, Netchaos.counts nc)
  in
  let a1, s1, c1 = run () in
  let a2, s2, c2 = run () in
  checkb "same fault schedule for the same seed" true (a1 = a2 && s1 = s2);
  checkb "same counters" true (c1 = c2);
  let nc' = Netchaos.create ~seed:8 ~profile:Netchaos.storm in
  let a3 = List.map (Netchaos.frame_action nc') sample_frames in
  checkb "seed changes the schedule" true (a1 <> a3);
  (* calm is transparent *)
  let calm = Netchaos.create ~seed:7 ~profile:Netchaos.calm in
  checkb "calm passes everything" true
    (List.for_all
       (fun f -> Netchaos.frame_action calm f = Netchaos.Pass)
       sample_frames
    && Netchaos.conn_stall calm = None);
  (* every named profile resolves, and names round-trip *)
  List.iter
    (fun p ->
      match Netchaos.named p.Netchaos.name with
      | Some p' -> checks "named round-trips" p.Netchaos.name p'.Netchaos.name
      | None -> Alcotest.failf "profile %s not named" p.Netchaos.name)
    (Netchaos.calm :: Netchaos.all)

let test_wire_hostility_decode () =
  let base =
    Codec.encode ~proto:Wire.version
      (Wire.encode_payload ~proto:Wire.version
         (Wire.Run (Wire.plain_job ~shard:1 ~lo:2 ~hi:9)))
  in
  (* any mutation — truncation, bit flips, version/proto skew, absurd
     length claims — must yield a typed decode result, never an
     exception *)
  for seed = 0 to 499 do
    let rng = Ise_util.Rng.create seed in
    let m = Netchaos.Mutate.mutate rng base in
    let buf = Bytes.of_string m in
    match Codec.decode ~max_payload:(1 lsl 20) buf ~pos:0 ~len:(Bytes.length buf) with
    | Codec.Need_more | Codec.Corrupt _ -> ()
    | Codec.Frame { payload; proto; _ } -> (
      match (Wire.decode_payload ~proto payload : Wire.request option) with
      | Some _ | None -> ())
    | exception e ->
      Alcotest.failf "decode raised on mutation seed %d: %s" seed
        (Printexc.to_string e)
  done;
  (* the v2 digest envelope *guarantees* payload corruption surfaces
     as a typed decode failure, never a plausible wrong value *)
  for seed = 0 to 199 do
    let rng = Ise_util.Rng.create (1000 + seed) in
    let m = Netchaos.Mutate.corrupt_payload rng ~max_bytes:4 base in
    match
      Codec.decode ~max_payload:(1 lsl 20) (Bytes.of_string m) ~pos:0
        ~len:(String.length m)
    with
    | Codec.Frame { payload; proto; _ } -> (
      match (Wire.decode_payload ~proto payload : Wire.request option) with
      | None -> ()
      | Some _ -> Alcotest.failf "corrupted payload decoded (seed %d)" seed)
    | Codec.Need_more | Codec.Corrupt _ ->
      Alcotest.fail "corrupt_payload damaged the framing"
  done;
  (* v1 payloads have no digest — the structural marshal validator must
     make decode *total* there too.  A corrupted bare-marshal stream
     fed straight to [Marshal.from_string] can segfault the runtime's
     intern loop (e.g. a one-byte flip turning "block of size 1" into
     "block of size 7" makes it overread), so simply running this loop
     without crashing is the assertion. *)
  let v1_bases =
    [ Codec.marshal (Wire.Hello_ok { proto = 2; git_rev = "cafe"; pid = 42 });
      Codec.marshal (Wire.Hello { proto = 2; git_rev = "cafe" });
      Codec.marshal Wire.Spec_ok;
      Codec.marshal
        (Wire.Shard_done
           { sr_shard = 0; sr_lo = 0; sr_hi = 4; sr_payload = Wire.Fuzz_raw [] });
    ]
  in
  List.iter
    (fun payload ->
      Alcotest.(check bool)
        "validator accepts real v1 payload" true
        (Codec.valid_marshal payload);
      for seed = 0 to 499 do
        let rng = Ise_util.Rng.create (2000 + seed) in
        let b = Bytes.of_string payload in
        let n = Bytes.length b in
        for _ = 0 to Ise_util.Rng.int rng 4 do
          Bytes.set b (Ise_util.Rng.int rng n)
            (Char.chr (Ise_util.Rng.int rng 256))
        done;
        let s =
          if Ise_util.Rng.int rng 4 = 0 && n > 1 then
            Bytes.sub_string b 0 (1 + Ise_util.Rng.int rng (n - 1))
          else Bytes.to_string b
        in
        match (Wire.decode_payload ~proto:1 s : Wire.response option) with
        | Some _ | None -> ()
        | exception e ->
          Alcotest.failf "v1 decode raised on corruption seed %d: %s" seed
            (Printexc.to_string e)
      done)
    v1_bases

(* ------------------------------------------------------------------ *)
(* worker protocol discipline                                          *)

let raw_connect socket =
  let rec attempt n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception Unix.Unix_error _ when n > 0 ->
      Unix.close fd;
      ignore (Unix.select [] [] [] 0.05);
      attempt (n - 1)
    | exception e ->
      Unix.close fd;
      raise e
  in
  attempt 100

let expect_err fd kind =
  match Wire.read_response fd with
  | Ok (Wire.Error (k, _)) ->
    checks "typed error frame" (Framed.err_name kind) (Framed.err_name k)
  | Ok _ -> Alcotest.fail "expected a typed error frame"
  | Error msg -> Alcotest.failf "no error frame: %s" msg

let hello fd =
  Wire.write_request ~proto:Wire.hello_proto fd
    (Wire.Hello { proto = Wire.version; git_rev = "test" });
  match Wire.read_response fd with
  | Ok (Wire.Hello_ok _) -> ()
  | Ok _ -> Alcotest.fail "expected Hello_ok"
  | Error msg -> Alcotest.failf "hello failed: %s" msg

let with_sim ?(n = 1) ?jobs ?proto ?netchaos ?trace_dir f =
  let dir = tmp_dir () in
  let sim = Sim.start ?jobs ?proto ?netchaos ?trace_dir ~dir ~n () in
  Fun.protect ~finally:(fun () -> Sim.stop sim) (fun () -> f sim)

let test_worker_hello_discipline () =
  if not (requires_fork ()) then ()
  else
    with_sim (fun sim ->
        let socket = List.hd (Sim.sockets sim) in
        (* any request before Hello is refused *)
        let fd = raw_connect socket in
        Wire.write_request fd Wire.Worker_stats_req;
        expect_err fd Framed.Bad_request;
        Unix.close fd;
        (* a future peer version negotiates down, not away *)
        let fd = raw_connect socket in
        Wire.write_request ~proto:Wire.hello_proto fd
          (Wire.Hello { proto = Wire.version + 1; git_rev = "test" });
        (match Wire.read_response fd with
         | Ok (Wire.Hello_ok { proto; _ }) ->
           checki "negotiated down to ours" Wire.version proto
         | Ok _ -> Alcotest.fail "expected Hello_ok"
         | Error msg -> Alcotest.failf "future-version Hello: %s" msg);
        Unix.close fd;
        (* a version below min_version is refused by name *)
        let fd = raw_connect socket in
        Wire.write_request ~proto:Wire.hello_proto fd
          (Wire.Hello { proto = 0; git_rev = "test" });
        expect_err fd Framed.Unsupported_proto;
        Unix.close fd;
        (* Run before Set_spec is a Bad_request, not a crash *)
        let fd = raw_connect socket in
        hello fd;
        Wire.write_request fd (Wire.Run (Wire.plain_job ~shard:0 ~lo:0 ~hi:1));
        expect_err fd Framed.Bad_request;
        Unix.close fd)

let test_worker_malformed_traffic () =
  if not (requires_fork ()) then ()
  else
    with_sim (fun sim ->
        let socket = List.hd (Sim.sockets sim) in
        (* garbage bytes → typed Malformed_frame error *)
        let fd = raw_connect socket in
        let garbage = "this is not a frame at all.............." in
        ignore (Unix.write_substring fd garbage 0 (String.length garbage));
        expect_err fd Framed.Malformed_frame;
        Unix.close fd;
        (* a version-skewed frame (wrong protocol byte) is refused *)
        let fd = raw_connect socket in
        let skewed =
          Codec.encode ~proto:(Wire.version + 9) (Codec.marshal Wire.Shutdown)
        in
        ignore (Unix.write_substring fd skewed 0 (String.length skewed));
        expect_err fd Framed.Unsupported_proto;
        Unix.close fd;
        (* an honest header claiming an absurd payload is refused from
           the header alone *)
        let fd = raw_connect socket in
        let header =
          String.sub
            (Codec.encode ~proto:Wire.version (String.make 256 'x'))
            0 Codec.header_bytes
        in
        let header =
          (* rewrite the BE32 length to 256 MiB, beyond max_payload *)
          let b = Bytes.of_string header in
          Bytes.set_int32_be b
            (Codec.header_bytes - 4)
            (Int32.of_int (256 * 1024 * 1024));
          Bytes.to_string b
        in
        ignore (Unix.write_substring fd header 0 (String.length header));
        expect_err fd Framed.Frame_too_large;
        Unix.close fd;
        (* a truncated frame followed by a hangup is just a dropped
           connection; the worker survives and serves the next one *)
        let fd = raw_connect socket in
        let frame =
          Codec.encode ~proto:Wire.version
            (Codec.marshal Wire.Worker_stats_req)
        in
        ignore (Unix.write_substring fd frame 0 (String.length frame / 2));
        Unix.close fd;
        let fd = raw_connect socket in
        hello fd;
        let spec = Campaign.spec ~count:2 ~seeds_per_test:2 ~seed:1 () in
        Wire.write_request fd (Wire.Set_spec (Wire.Fuzz spec));
        (match Wire.read_response fd with
         | Ok Wire.Spec_ok -> ()
         | Ok _ | Error _ -> Alcotest.fail "Set_spec refused");
        Wire.write_request fd (Wire.Run (Wire.plain_job ~shard:0 ~lo:0 ~hi:2));
        (match Wire.read_response fd with
         | Ok (Wire.Shard_done sr) ->
           checki "echoes the shard id" 0 sr.Wire.sr_shard
         | Ok _ | Error _ -> Alcotest.fail "worker did not survive abuse");
        (* a Run range outside the spec is a Bad_request *)
        Wire.write_request fd (Wire.Run (Wire.plain_job ~shard:1 ~lo:0 ~hi:99));
        expect_err fd Framed.Bad_request;
        Unix.close fd)

let test_worker_wire_hostility () =
  if not (requires_fork ()) then ()
  else
    with_sim (fun sim ->
        let socket = List.hd (Sim.sockets sim) in
        let bases =
          [| Codec.encode ~proto:Wire.version
               (Wire.encode_payload ~proto:Wire.version
                  (Wire.Hello { proto = Wire.version; git_rev = "t" }));
             Codec.encode ~proto:Wire.version
               (Wire.encode_payload ~proto:Wire.version
                  (Wire.Run (Wire.plain_job ~shard:0 ~lo:0 ~hi:1)));
             Codec.encode ~proto:1
               (Wire.encode_payload ~proto:1 Wire.Worker_stats_req)
          |]
        in
        let rng = Ise_util.Rng.create 99 in
        for _ = 1 to 40 do
          let m = Netchaos.Mutate.mutate rng (Ise_util.Rng.choose rng bases) in
          let fd = raw_connect socket in
          (* a mutation can leave a frame the worker must wait on
             (truncation): bound our read instead of hanging the test *)
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.3;
          (try ignore (Unix.write_substring fd m 0 (String.length m))
           with Unix.Unix_error _ -> ());
          (match Wire.read_response fd with
           | Ok _ -> ()  (* typed error frame, or still a valid frame *)
           | Error _ -> ()  (* clean close / corrupt reply detected *)
           | exception
               Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
             ()  (* the worker is (correctly) waiting for more bytes *));
          Unix.close fd
        done;
        (* after 40 hostile connections the worker still works *)
        let fd = raw_connect socket in
        hello fd;
        let spec = Campaign.spec ~count:2 ~seeds_per_test:2 ~seed:1 () in
        Wire.write_request fd (Wire.Set_spec (Wire.Fuzz spec));
        (match Wire.read_response fd with
         | Ok Wire.Spec_ok -> ()
         | Ok _ | Error _ -> Alcotest.fail "worker wedged by hostile wire");
        Unix.close fd)

(* ------------------------------------------------------------------ *)
(* stale-socket hygiene                                                *)

let test_stale_socket_hygiene () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "stale.sock" in
  (* a SIGKILLed predecessor: the file exists, nobody listens *)
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX path);
  Unix.close dead;
  checkb "stale file exists" true (Sys.file_exists path);
  let _t = Framed.create ~socket_path:path () in
  checkb "stale socket replaced" true (Sys.file_exists path);
  (* a live owner is never stolen *)
  (match Framed.create ~socket_path:path () with
   | _ -> Alcotest.fail "stole a live daemon's socket"
   | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ());
  (* SIGTERM drains and unlinks: no stale file left behind *)
  if requires_fork () then begin
    let dir2 = tmp_dir () in
    let sim = Sim.start ~dir:dir2 ~n:1 () in
    let sock = List.hd (Sim.sockets sim) in
    let fd = raw_connect sock in
    Unix.close fd;
    (match Sim.pids sim with
     | [ pid ] ->
       Unix.kill pid Sys.sigterm;
       let deadline = Unix.gettimeofday () +. 5.0 in
       while Sys.file_exists sock && Unix.gettimeofday () < deadline do
         ignore (Unix.select [] [] [] 0.05)
       done;
       checkb "SIGTERM unlinked the socket" true (not (Sys.file_exists sock))
     | _ -> Alcotest.fail "expected one worker");
    Sim.stop sim
  end

(* ------------------------------------------------------------------ *)
(* the fabric: byte-identity with a single-host run                    *)

let failing_spec () =
  let variant =
    match Campaign.variant_named "wc+same+nofaults" with
    | Some v -> v
    | None -> Alcotest.fail "variant wc+same+nofaults missing"
  in
  Campaign.spec ~count:12 ~seeds_per_test:8 ~variants:[ variant ] ~seed:5 ()

let reference_run (s : Campaign.spec) ~log =
  Campaign.run ~count:s.Campaign.s_count
    ~seeds_per_test:s.Campaign.s_seeds_per_test
    ~variants:s.Campaign.s_variants
    ~variants_per_test:s.Campaign.s_variants_per_test
    ~model_checks:s.Campaign.s_model_checks
    ~shrink_evals:s.Campaign.s_shrink_evals ~log ~seed:s.Campaign.s_seed ()

let test_fabric_identity () =
  if not (requires_fork ()) then ()
  else
    with_injected_bug (fun () ->
        let spec = failing_spec () in
        let ref_log = ref [] in
        let reference =
          reference_run spec ~log:(fun l -> ref_log := l :: !ref_log)
        in
        checkb "campaign finds the injected bug" true
          (reference.Campaign.r_failures <> []);
        with_sim ~n:4 (fun sim ->
            let cfg =
              Supervisor.default_config ~workers:(Sim.sockets sim)
            in
            let ranges, outcomes, stats =
              Supervisor.run cfg (Wire.Fuzz spec)
            in
            checki "all four workers connected" 4 stats.Supervisor.f_workers;
            checki "nothing ran inline" 0 stats.Supervisor.f_inline;
            let fab_log = ref [] in
            let merged =
              Merge.merge
                ~log:(fun l -> fab_log := l :: !fab_log)
                spec ~ranges ~outcomes
            in
            checkb "merged report is byte-identical" true
              (fingerprint ~seed:5 merged.Merge.m_report
              = fingerprint ~seed:5 reference);
            checkb "log stream is identical" true (!fab_log = !ref_log);
            (* corpus artifacts the CLI would save are the same bytes *)
            checkb "corpus entries identical" true
              (List.map Corpus.to_string merged.Merge.m_entries
              = List.map
                  (fun f ->
                    Corpus.to_string (Campaign.entry_of_failure ~seed:5 f))
                  reference.Campaign.r_failures);
            (* with run_id/time pinned, the ledger record a fabric run
               appends equals the single-host `ise fuzz run` record *)
            let pinned r =
              Merge.ledger_record ~run_id:"rid" ~git_rev:"rev" ~time:0. spec
                r
            in
            checkb "ledger record identical" true
              (pinned merged.Merge.m_report = pinned reference)))

let test_fabric_kill_mid_campaign () =
  if not (requires_fork ()) then ()
  else
    let spec = Campaign.spec ~count:16 ~seeds_per_test:4 ~seed:11 () in
    let reference = reference_run spec ~log:ignore in
    with_sim ~n:4 (fun sim ->
        let killed = ref false in
        let cfg =
          {
            (Supervisor.default_config ~workers:(Sim.sockets sim)) with
            Supervisor.shards = Some 16;
            on_shard_done =
              (fun _ ->
                (* SIGKILL a worker as soon as the first shard lands:
                   its in-flight shards must be re-dispatched to the
                   survivors without changing the merged output *)
                if not !killed then begin
                  killed := true;
                  Sim.kill sim 3
                end);
          }
        in
        let ranges, outcomes, stats = Supervisor.run cfg (Wire.Fuzz spec) in
        checkb "the loss was detected" true
          (stats.Supervisor.f_worker_losses >= 1);
        checkb "every shard completed" true
          (Array.for_all
             (function Supervisor.Shard_ok _ -> true | _ -> false)
             outcomes);
        let merged = Merge.merge spec ~ranges ~outcomes in
        checkb "killed-worker run is byte-identical" true
          (fingerprint ~seed:11 merged.Merge.m_report
          = fingerprint ~seed:11 reference))

let test_fabric_rejoin () =
  if not (requires_fork ()) then ()
  else
    (* heavy enough that the campaign outlives the rejoin probe: each
       of the 16 shards takes ~20ms, serialized by window = 1 *)
    let spec = Campaign.spec ~count:16 ~seeds_per_test:64 ~seed:11 () in
    let reference = reference_run spec ~log:ignore in
    with_sim ~n:2 (fun sim ->
        let fired = ref false in
        let cfg =
          {
            (Supervisor.default_config ~workers:(Sim.sockets sim)) with
            Supervisor.shards = Some 16;
            window = 1;
            liveness = { test_liveness with rejoin_backoff_s = 0.01 };
            on_shard_done =
              (fun _ ->
                (* kill worker 0 after the first shard, then restart
                   it: the registry must re-admit it mid-campaign *)
                if not !fired then begin
                  fired := true;
                  Sim.kill sim 0;
                  Sim.restart sim 0
                end);
          }
        in
        let ranges, outcomes, stats = Supervisor.run cfg (Wire.Fuzz spec) in
        checkb "the loss was detected" true
          (stats.Supervisor.f_worker_losses >= 1);
        checkb "the restarted worker rejoined" true
          (stats.Supervisor.f_rejoins >= 1);
        checkb "every shard completed" true
          (Array.for_all
             (function Supervisor.Shard_ok _ -> true | _ -> false)
             outcomes);
        let merged = Merge.merge spec ~ranges ~outcomes in
        checkb "rejoin run is byte-identical" true
          (fingerprint ~seed:11 merged.Merge.m_report
          = fingerprint ~seed:11 reference))

(* a worker that completes the handshake and then never answers
   anything again — the heartbeat's prey *)
let spawn_silent_worker path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  match Unix.fork () with
  | 0 ->
    (try
       let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       Unix.bind srv (Unix.ADDR_UNIX path);
       Unix.listen srv 8;
       while true do
         let fd, _ = Unix.accept srv in
         (try
            (match Codec.read_frame_ext fd with
             | Ok _ ->
               Wire.write_response ~proto:Wire.hello_proto fd
                 (Wire.Hello_ok
                    { proto = Wire.version; git_rev = "silent";
                      pid = Unix.getpid () });
               (match Codec.read_frame_ext fd with
                | Ok _ -> Wire.write_response fd Wire.Spec_ok
                | Error _ -> ())
             | Error _ -> ());
            (* swallow everything (pings included), answer nothing *)
            let buf = Bytes.create 4096 in
            let rec drain () =
              match Unix.read fd buf 0 4096 with 0 -> () | _ -> drain ()
            in
            drain ()
          with _ -> ());
         try Unix.close fd with Unix.Unix_error _ -> ()
       done
     with _ -> ());
    Unix._exit 0
  | pid -> pid

let test_fabric_heartbeat_loss () =
  if not (requires_fork ()) then ()
  else
    (* the single shard must outlast miss_budget+1 heartbeat rounds of
       the 50ms supervisor loop (~0.15s): ~0.5s of fuzzing *)
    let spec = Campaign.spec ~count:16 ~seeds_per_test:96 ~seed:21 () in
    let reference = reference_run spec ~log:ignore in
    with_sim ~n:1 (fun sim ->
        let dir = tmp_dir () in
        let silent_sock = Filename.concat dir "silent.sock" in
        let silent_pid = spawn_silent_worker silent_sock in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.kill silent_pid Sys.sigkill
             with Unix.Unix_error _ -> ());
            try ignore (Unix.waitpid [] silent_pid)
            with Unix.Unix_error _ -> ())
          (fun () ->
            let workers = Sim.sockets sim @ [ silent_sock ] in
            let cfg =
              { (Supervisor.default_config ~workers) with
                (* one shard: the real worker crunches it while the
                   silent one sits idle — exactly the state heartbeats
                   police *)
                Supervisor.shards = Some 1;
                liveness =
                  { Supervisor.default_liveness with
                    heartbeat_s = 0.03;
                    miss_budget = 1;
                    (* no re-admission: the loss must come from
                       heartbeats and stay *)
                    rejoin_backoff_s = 1e9;
                  };
              }
            in
            let ranges, outcomes, stats =
              Supervisor.run cfg (Wire.Fuzz spec)
            in
            checkb "pings were sent" true (stats.Supervisor.f_pings >= 2);
            checkb "the silent worker was lost via heartbeat" true
              (stats.Supervisor.f_hb_losses >= 1);
            let merged = Merge.merge spec ~ranges ~outcomes in
            checkb "report unharmed by the silent worker" true
              (fingerprint ~seed:21 merged.Merge.m_report
              = fingerprint ~seed:21 reference)))

let test_netchaos_fault_identity () =
  if not (requires_fork ()) then ()
  else
    with_injected_bug (fun () ->
        let spec = failing_spec () in
        let reference = reference_run spec ~log:ignore in
        checkb "campaign finds the injected bug" true
          (reference.Campaign.r_failures <> []);
        let pinned r =
          Merge.ledger_record ~run_id:"rid" ~git_rev:"rev" ~time:0. spec r
        in
        (* every fault category (and all at once): the merged report,
           its corpus artifacts, and its ledger record are
           byte-identical to the clean single-host run *)
        List.iter
          (fun profile ->
            with_sim ~n:2 ~netchaos:(33, profile) (fun sim ->
                let cfg =
                  { (Supervisor.default_config ~workers:(Sim.sockets sim)) with
                    Supervisor.liveness = test_liveness;
                    straggler_floor = 0.3;
                  }
                in
                let ranges, outcomes, _stats =
                  Supervisor.run cfg (Wire.Fuzz spec)
                in
                let merged = Merge.merge spec ~ranges ~outcomes in
                checkb
                  (Printf.sprintf "netchaos %s: report byte-identical"
                     profile.Netchaos.name)
                  true
                  (fingerprint ~seed:5 merged.Merge.m_report
                  = fingerprint ~seed:5 reference);
                checkb
                  (Printf.sprintf "netchaos %s: ledger record identical"
                     profile.Netchaos.name)
                  true
                  (pinned merged.Merge.m_report = pinned reference)))
          (Netchaos.calm :: Netchaos.all))

let test_fabric_v1_compat () =
  if not (requires_fork ()) then ()
  else
    let spec = Campaign.spec ~count:8 ~seeds_per_test:4 ~seed:13 () in
    let reference = reference_run spec ~log:ignore in
    with_sim ~n:2 ~proto:1 (fun sim ->
        (* the v1 worker negotiates the connection down and refuses
           v2-only requests by name *)
        let socket = List.hd (Sim.sockets sim) in
        let fd = raw_connect socket in
        Wire.write_request ~proto:Wire.hello_proto fd
          (Wire.Hello { proto = Wire.version; git_rev = "test" });
        (match Wire.read_response fd with
         | Ok (Wire.Hello_ok { proto; _ }) ->
           checki "negotiated down to v1" 1 proto
         | Ok _ -> Alcotest.fail "expected Hello_ok"
         | Error msg -> Alcotest.failf "hello failed: %s" msg);
        Wire.write_request ~proto:1 fd (Wire.Ping 7);
        expect_err fd Framed.Bad_request;
        Unix.close fd;
        (* a v2 supervisor still runs a campaign over a v1 fleet —
           silently skipping heartbeats on those connections *)
        let cfg = Supervisor.default_config ~workers:(Sim.sockets sim) in
        let ranges, outcomes, stats = Supervisor.run cfg (Wire.Fuzz spec) in
        checki "no pings to v1 workers" 0 stats.Supervisor.f_pings;
        checki "nothing ran inline" 0 stats.Supervisor.f_inline;
        let merged = Merge.merge spec ~ranges ~outcomes in
        checkb "v1 fleet is byte-identical" true
          (fingerprint ~seed:13 merged.Merge.m_report
          = fingerprint ~seed:13 reference))

(* ------------------------------------------------------------------ *)
(* observability plane                                                 *)

module Json = Ise_telemetry.Json
module Registry_t = Ise_telemetry.Registry
module Trace_t = Ise_telemetry.Trace

let test_fabric_streaming_observability () =
  if not (requires_fork ()) then ()
  else
    let spec = Campaign.spec ~count:24 ~seeds_per_test:4 ~seed:11 () in
    let reference = reference_run spec ~log:ignore in
    let trace_dir = tmp_dir () in
    with_sim ~n:4 ~trace_dir (fun sim ->
        let reg = Registry_t.create () in
        let tr = Trace_t.create () in
        let status_path = Filename.concat trace_dir "status.json" in
        let statuses = ref 0 in
        let observe =
          { Supervisor.stream = true;
            metrics = Some reg;
            trace = Some tr;
            trace_id = "t-obs";
            status_out = Some status_path;
            status_period_s = 0.02;
            on_status = (fun _ -> incr statuses);
          }
        in
        let cfg =
          { (Supervisor.default_config ~workers:(Sim.sockets sim)) with
            Supervisor.shards = Some 16;
            observe;
          }
        in
        let ranges, outcomes, stats = Supervisor.run cfg (Wire.Fuzz spec) in
        (* the headline property: telemetry is never on the result
           path — full streaming changes nothing in the merge *)
        let merged = Merge.merge spec ~ranges ~outcomes in
        checkb "byte-identical with streaming on" true
          (fingerprint ~seed:11 merged.Merge.m_report
          = fingerprint ~seed:11 reference);
        checkb "telemetry frames absorbed" true
          (stats.Supervisor.f_telemetry_frames > 0);
        checkb "status callback fired" true (!statuses >= 1);
        (* worker delta-snapshots accumulated into the live aggregate *)
        checkb "fleet shard completions" true
          (Registry_t.value
             (Registry_t.counter reg "fabric/worker/shards_done")
           >= 16);
        (match Registry_t.find_histogram reg "fabric/worker/shard_ms" with
         | None -> Alcotest.fail "no aggregated shard-latency histogram"
         | Some st ->
           checkb "latency samples streamed" true
             (Ise_util.Stats.count st >= 16);
           (* raw samples travel, so fleet-wide tail quantiles exist *)
           checkb "p999 computable" true
             (Ise_util.Stats.percentile st 99.9 >= 0.));
        (* the final snapshot validates against ise-fabric-status/v1 *)
        let ic = open_in_bin status_path in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let doc =
          match Json.of_string text with
          | Ok d -> d
          | Error e -> Alcotest.failf "status does not parse: %s" e
        in
        let geti k =
          Option.value (Option.bind (Json.member k doc) Json.to_int)
            ~default:(-1)
        in
        checks "status schema"  "ise-fabric-status/v1"
          (Option.value ~default:"?"
             (Option.bind (Json.member "schema" doc) Json.to_str));
        checki "status shards" 16 (geti "shards");
        checki "status drained" 16 (geti "done");
        (match Option.bind (Json.member "workers" doc) Json.to_list with
         | Some ws -> checki "status workers" 4 (List.length ws)
         | None -> Alcotest.fail "status has no workers table");
        checkb "status counters present" true
          (Json.member "counters" doc <> None))

let test_fabric_trace_parenting () =
  if not (requires_fork ()) then ()
  else
    let spec = Campaign.spec ~count:16 ~seeds_per_test:4 ~seed:17 () in
    let trace_dir = tmp_dir () in
    with_sim ~n:4 ~trace_dir (fun sim ->
        let tr = Trace_t.create () in
        let observe =
          { Supervisor.default_observe with
            Supervisor.stream = true;
            trace = Some tr;
            trace_id = "t-stitch";
          }
        in
        let cfg =
          { (Supervisor.default_config ~workers:(Sim.sockets sim)) with
            Supervisor.shards = Some 8;
            observe;
          }
        in
        let _, outcomes, _ = Supervisor.run cfg (Wire.Fuzz spec) in
        checkb "every shard completed" true
          (Array.for_all
             (function Supervisor.Shard_ok _ -> true | _ -> false)
             outcomes);
        (* write the supervisor's trace next to the workers' and
           stitch the directory, exactly as the CLI does *)
        let sup_path = Filename.concat trace_dir "supervisor.trace.json" in
        let oc = open_out_bin sup_path in
        output_string oc
          (Json.to_string
             (Trace_t.to_chrome_json
                ~meta:[ ("role", Json.String "supervisor") ]
                tr));
        close_out oc;
        let files =
          Sys.readdir trace_dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".json")
          |> List.sort compare
          |> List.map (Filename.concat trace_dir)
        in
        checkb "supervisor + 4 workers traced" true (List.length files = 5);
        let doc, infos =
          match Ise_obs.Stitch.stitch_files files with
          | Ok r -> r
          | Error e -> Alcotest.failf "stitch failed: %s" e
        in
        List.iter
          (fun fi ->
            if fi.Ise_obs.Stitch.sf_role = "worker" then
              checkb "offset is causal" true
                (fi.Ise_obs.Stitch.sf_offset_us >= 0))
          infos;
        let evs =
          match Option.bind (Json.member "traceEvents" doc) Json.to_list with
          | Some e -> e
          | None -> Alcotest.fail "no traceEvents"
        in
        let sfield k ev = Option.bind (Json.member k ev) Json.to_str in
        let arg k ev =
          Option.bind (Json.member "args" ev) (fun a ->
              Option.bind (Json.member k a) Json.to_str)
        in
        let dispatch_spans =
          List.filter_map
            (fun ev ->
              match
                (Option.bind (Json.member "pid" ev) Json.to_int,
                 sfield "ph" ev)
              with
              | Some 0, Some "B" -> arg Trace_t.ctx_key_span ev
              | _ -> None)
            evs
        in
        (* the acceptance bar: every worker shard span parents under a
           supervisor dispatch span, and nothing is orphaned *)
        let shard_spans = ref 0 in
        List.iter
          (fun ev ->
            match
              (Option.bind (Json.member "pid" ev) Json.to_int,
               sfield "ph" ev, sfield "name" ev)
            with
            | Some pid, Some "B", Some name
              when pid > 0
                   && String.length name >= 6
                   && String.sub name 0 6 = "shard " ->
              incr shard_spans;
              (match arg Trace_t.ctx_key_parent ev with
               | Some parent ->
                 checkb "parent is a dispatch span" true
                   (List.mem parent dispatch_spans)
               | None -> Alcotest.fail "worker shard span has no parent");
              checkb "not orphaned" true
                (Option.bind (Json.member "args" ev) (Json.member "orphan")
                 = None)
            | _ -> ())
          evs;
        checkb "worker shard spans present" true (!shard_spans >= 8))

let test_fabric_streaming_v1_degrades () =
  if not (requires_fork ()) then ()
  else
    (* observability requested against a v1 fleet: the supervisor must
       not ship ctx or stream flags those workers cannot decode, and
       the campaign must be unaffected *)
    let spec = Campaign.spec ~count:8 ~seeds_per_test:4 ~seed:13 () in
    let reference = reference_run spec ~log:ignore in
    with_sim ~n:2 ~proto:1 (fun sim ->
        let reg = Registry_t.create () in
        let observe =
          { Supervisor.default_observe with
            Supervisor.stream = true;
            metrics = Some reg;
            trace = Some (Trace_t.create ());
            trace_id = "t-v1";
          }
        in
        let cfg =
          { (Supervisor.default_config ~workers:(Sim.sockets sim)) with
            Supervisor.observe = observe;
          }
        in
        let ranges, outcomes, stats = Supervisor.run cfg (Wire.Fuzz spec) in
        checki "v1 workers stream nothing" 0
          stats.Supervisor.f_telemetry_frames;
        checki "nothing ran inline" 0 stats.Supervisor.f_inline;
        let merged = Merge.merge spec ~ranges ~outcomes in
        checkb "v1 fleet byte-identical under observe" true
          (fingerprint ~seed:13 merged.Merge.m_report
          = fingerprint ~seed:13 reference))

let test_fabric_store_cache () =
  if not (requires_fork ()) then ()
  else
    let spec = Campaign.spec ~count:8 ~seeds_per_test:4 ~seed:3 () in
    let dir = tmp_dir () in
    let once ~workers =
      let store = Store.open_ ~dir:(Filename.concat dir "store") () in
      let cfg =
        { (Supervisor.default_config ~workers) with
          Supervisor.store = Some store;
          (* pinned: the default scales with the worker count, and the
             two runs of this test use different fabrics *)
          shards = Some 8;
        }
      in
      Supervisor.run cfg (Wire.Fuzz spec)
    in
    let r1, o1, s1 =
      with_sim ~n:2 (fun sim -> once ~workers:(Sim.sockets sim))
    in
    checki "cold run hits nothing" 0 s1.Supervisor.f_store_hits;
    (* the second campaign is answered entirely by the store: no
       workers are even needed *)
    let r2, o2, s2 = once ~workers:[] in
    checki "warm run is all hits" s2.Supervisor.f_shards
      s2.Supervisor.f_store_hits;
    checki "nothing dispatched" 0 s2.Supervisor.f_dispatched;
    let m1 = Merge.merge spec ~ranges:r1 ~outcomes:o1 in
    let m2 = Merge.merge spec ~ranges:r2 ~outcomes:o2 in
    checkb "store round-trip preserves the report" true
      (fingerprint ~seed:3 m1.Merge.m_report
      = fingerprint ~seed:3 m2.Merge.m_report)

let test_fabric_inline_fallback () =
  (* no fork needed: every worker is unreachable, so the supervisor
     degrades to computing each shard inline — the campaign still
     completes, byte-identical *)
  let spec = Campaign.spec ~count:6 ~seeds_per_test:3 ~seed:9 () in
  let reference = reference_run spec ~log:ignore in
  let cfg =
    {
      (Supervisor.default_config ~workers:[ "/nonexistent/fabric.sock" ]) with
      Supervisor.liveness =
        { Supervisor.default_liveness with connect_retries = 0 };
    }
  in
  let ranges, outcomes, stats = Supervisor.run cfg (Wire.Fuzz spec) in
  checki "no worker connected" 0 stats.Supervisor.f_workers;
  checki "every shard ran inline" stats.Supervisor.f_shards
    stats.Supervisor.f_inline;
  let merged = Merge.merge spec ~ranges ~outcomes in
  checkb "inline fallback is byte-identical" true
    (fingerprint ~seed:9 merged.Merge.m_report = fingerprint ~seed:9 reference)

let test_fabric_require_workers () =
  let spec = Campaign.spec ~count:4 ~seeds_per_test:2 ~seed:2 () in
  let cfg =
    {
      (Supervisor.default_config ~workers:[ "/nonexistent/fabric.sock" ]) with
      Supervisor.require_workers = 1;
      liveness = { Supervisor.default_liveness with connect_retries = 0 };
    }
  in
  (match Supervisor.run cfg (Wire.Fuzz spec) with
   | _ -> Alcotest.fail "expected Insufficient_workers"
   | exception Supervisor.Insufficient_workers { wanted; got } ->
     checki "wanted" 1 wanted;
     checki "got" 0 got);
  (* without the floor the same dead fabric degrades to inline *)
  let cfg = { cfg with Supervisor.require_workers = 0 } in
  let _ranges, _outcomes, stats = Supervisor.run cfg (Wire.Fuzz spec) in
  checki "degrades without the floor" stats.Supervisor.f_shards
    stats.Supervisor.f_inline

(* ------------------------------------------------------------------ *)
(* chaos campaigns over the fabric                                     *)

let test_chaos_spec_mapping () =
  let profiles = Profile.all in
  let cs = Chaos_run.spec ~trials:7 ~seed:100 ~profiles () in
  for t = 0 to 6 do
    let s, p = Chaos_run.trial_of_spec cs t in
    checki "seed advances per trial" (100 + t) s;
    checks "profile rotates"
      (List.nth profiles (t mod List.length profiles)).Profile.name
      p.Profile.name
  done;
  (match
     Chaos_run.spec_profiles
       { cs with Chaos_run.cs_profiles = [ "no-such-profile" ] }
   with
   | Error n -> checks "unknown profile is reported by name" "no-such-profile" n
   | Ok _ -> Alcotest.fail "bogus profile accepted");
  match Chaos_run.spec ~seed:1 ~profiles:[] () with
  | _ -> Alcotest.fail "empty profile list accepted"
  | exception Invalid_argument _ -> ()

let test_chaos_fabric_identity () =
  if not (requires_fork ()) then ()
  else begin
    let profiles =
      match Profile.all with a :: b :: _ -> [ a; b ] | _ -> Profile.all
    in
    let cs = Chaos_run.spec ~trials:4 ~cores:2 ~stores:40 ~seed:77 ~profiles () in
    (* local = the sequential trial stream `ise chaos run -j 1` prints *)
    let local = Chaos_run.check_range cs ~lo:0 ~hi:4 in
    let render r = Format.asprintf "%a" Chaos_run.pp_report r in
    with_sim ~n:3 (fun sim ->
        let cfg =
          { (Supervisor.default_config ~workers:(Sim.sockets sim)) with
            Supervisor.shards = Some 4;
          }
        in
        let ranges, outcomes, stats = Supervisor.run cfg (Wire.Chaos cs) in
        checki "nothing ran inline" 0 stats.Supervisor.f_inline;
        let reports, lost = Merge.merge_chaos ~ranges ~outcomes () in
        checki "no lost trials" 0 lost;
        checki "all trials came back" 4 (Array.length reports);
        (* journals carry process-local run ids, so identity is judged
           on the rendered reports — what the CLI prints — and the
           watchdog/chaos counters *)
        checkb "fabric chaos reports identical to local" true
          (Array.to_list (Array.map render reports) = List.map render local))
  end

let suite =
  [
    Alcotest.test_case "plan: partition tiles and balances" `Quick
      test_plan_partition;
    Alcotest.test_case "plan: k/N parsing" `Quick test_plan_parse;
    Alcotest.test_case "plan: ewma straggler deadline" `Quick test_plan_ewma;
    Alcotest.test_case "wire: shard keys invalidate" `Quick test_shard_keys;
    Alcotest.test_case "campaign: shard ranges union to the full run" `Slow
      test_range_union;
    Alcotest.test_case "netchaos: seeded schedules are deterministic" `Quick
      test_netchaos_deterministic;
    Alcotest.test_case "wire: hostile frames decode to typed errors" `Quick
      test_wire_hostility_decode;
    Alcotest.test_case "worker: hello and spec discipline" `Quick
      test_worker_hello_discipline;
    Alcotest.test_case "worker: malformed traffic, typed errors" `Quick
      test_worker_malformed_traffic;
    Alcotest.test_case "worker: survives mutated-frame hostility" `Quick
      test_worker_wire_hostility;
    Alcotest.test_case "framed: stale-socket hygiene" `Quick
      test_stale_socket_hygiene;
    Alcotest.test_case "fabric: 4 workers = single host, byte-identical"
      `Slow test_fabric_identity;
    Alcotest.test_case "fabric: worker killed mid-campaign" `Slow
      test_fabric_kill_mid_campaign;
    Alcotest.test_case "fabric: killed worker restarts and rejoins" `Slow
      test_fabric_rejoin;
    Alcotest.test_case "fabric: silent worker lost via heartbeat" `Slow
      test_fabric_heartbeat_loss;
    Alcotest.test_case "fabric: byte-identity under every netchaos fault"
      `Slow test_netchaos_fault_identity;
    Alcotest.test_case "fabric: streaming telemetry, identity preserved"
      `Slow test_fabric_streaming_observability;
    Alcotest.test_case "fabric: stitched trace parents shard spans" `Slow
      test_fabric_trace_parenting;
    Alcotest.test_case "fabric: observe degrades on a v1 fleet" `Slow
      test_fabric_streaming_v1_degrades;
    Alcotest.test_case "fabric: v1 workers still speak" `Slow
      test_fabric_v1_compat;
    Alcotest.test_case "fabric: store answers a repeated campaign" `Quick
      test_fabric_store_cache;
    Alcotest.test_case "fabric: dead fabric degrades to inline" `Quick
      test_fabric_inline_fallback;
    Alcotest.test_case "fabric: --require-workers fails fast" `Quick
      test_fabric_require_workers;
    Alcotest.test_case "chaos: spec maps trials like the CLI" `Quick
      test_chaos_spec_mapping;
    Alcotest.test_case "chaos: fabric dispatch = local trial stream" `Slow
      test_chaos_fabric_identity;
  ]
