(* Tests for Ise_fabric: partition/EWMA plans, shard cache keys, the
   --shard range-union property, worker protocol discipline under
   malformed traffic, and the headline guarantee — a campaign run
   across 4 simulated workers (including one killed mid-campaign, and
   one answered entirely by the result store) merges to output
   byte-identical to a single-host run.  Fabric cases fork worker
   daemons and are skipped on platforms without [Unix.fork]. *)

module Codec = Ise_pool.Codec
module Framed = Ise_serve.Framed
module Store = Ise_serve.Store
module Campaign = Ise_fuzz.Campaign
module Corpus = Ise_fuzz.Corpus
module Plan = Ise_fabric.Plan
module Wire = Ise_fabric.Wire
module Supervisor = Ise_fabric.Supervisor
module Merge = Ise_fabric.Merge
module Sim = Ise_fabric.Sim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let tmp_dir () =
  let d = Filename.temp_file "ise-fabric" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let requires_fork () = Sim.available

let with_injected_bug f =
  Ise_model.Axiom.fuzz_unsound_strict_ppo := true;
  Fun.protect
    ~finally:(fun () -> Ise_model.Axiom.fuzz_unsound_strict_ppo := false)
    f

(* byte-level fingerprint of a report: counts plus every failure
   rendered as the corpus artifact it would be saved as *)
let fingerprint ~seed (r : Campaign.report) =
  ( r.Campaign.r_tests,
    r.Campaign.r_checks,
    r.Campaign.r_lost_tests,
    List.map
      (fun f -> Corpus.to_string (Campaign.entry_of_failure ~seed f))
      r.Campaign.r_failures )

(* ------------------------------------------------------------------ *)
(* plan                                                                *)

let test_plan_partition () =
  List.iter
    (fun (count, shards) ->
      let ranges = Plan.partition ~count ~shards in
      checkb "no empty shard" true
        (Array.for_all (fun (lo, hi) -> hi > lo) ranges);
      (* tiles [0, count) contiguously in order *)
      let expected_lo = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          checki "contiguous" !expected_lo lo;
          expected_lo := hi)
        ranges;
      checki "covers count" count !expected_lo;
      (* balanced: sizes differ by at most one *)
      let sizes = Array.map (fun (lo, hi) -> hi - lo) ranges in
      let mn = Array.fold_left min max_int sizes in
      let mx = Array.fold_left max 0 sizes in
      checkb "balanced" true (mx - mn <= 1))
    [ (10, 3); (3, 10); (16, 4); (1, 1); (7, 7); (100, 9) ];
  checki "count=0 is empty" 0
    (Array.length (Plan.partition ~count:0 ~shards:4))

let test_plan_parse () =
  (match Plan.parse_shard "2/5" with
   | Ok (k, n) ->
     checki "k is 0-based" 1 k;
     checki "n" 5 n
   | Error msg -> Alcotest.failf "2/5 rejected: %s" msg);
  List.iter
    (fun s ->
      match Plan.parse_shard s with
      | Ok _ -> Alcotest.failf "%S accepted" s
      | Error _ -> ())
    [ ""; "0/5"; "6/5"; "1/0"; "a/b"; "1"; "1/2/3"; "-1/4" ]

let test_plan_ewma () =
  let e = Plan.ewma_create () in
  checkb "deadline infinite before first sample" true
    (Plan.deadline e = infinity);
  Plan.observe e 1.0;
  checkb "first sample sets the mean" true (Plan.mean e = 1.0);
  checkb "deadline = factor * mean" true
    (Plan.deadline ~factor:4.0 ~floor:0.1 e = 4.0);
  Plan.observe e 3.0;
  checkb "ewma moved toward the new sample" true
    (Plan.mean e > 1.0 && Plan.mean e < 3.0);
  checki "samples counted" 2 (Plan.samples e);
  let tiny = Plan.ewma_create () in
  Plan.observe tiny 0.001;
  checkb "floor bounds the deadline" true
    (Plan.deadline ~floor:0.5 tiny = 0.5)

(* ------------------------------------------------------------------ *)
(* shard cache keys                                                    *)

let test_shard_keys () =
  let spec = Campaign.spec ~count:10 ~seed:1 () in
  let k = Wire.shard_key spec ~lo:0 ~hi:5 in
  checks "key is deterministic" k (Wire.shard_key spec ~lo:0 ~hi:5);
  checkb "range changes the key" true (k <> Wire.shard_key spec ~lo:5 ~hi:10);
  let spec' = Campaign.spec ~count:10 ~seed:2 () in
  checkb "seed changes the key" true (k <> Wire.shard_key spec' ~lo:0 ~hi:5);
  let spec'' = Campaign.spec ~count:10 ~seeds_per_test:3 ~seed:1 () in
  checkb "config changes the key" true
    (k <> Wire.shard_key spec'' ~lo:0 ~hi:5);
  (* the fuzz-shard domain rides the shared key helper, so an
     enumeration-engine epoch bump invalidates shard results exactly
     like litmus and replay results *)
  let fp e =
    Ise_serve.Cache.config_fp ~enum_epoch:e ~domain:"fuzz-shard" [ "x" ]
  in
  checkb "epoch bump invalidates" true (fp 1 <> fp 2)

(* ------------------------------------------------------------------ *)
(* --shard: the union property                                         *)

let test_range_union () =
  with_injected_bug (fun () ->
      let variant =
        match Campaign.variant_named "wc+same+nofaults" with
        | Some v -> v
        | None -> Alcotest.fail "variant wc+same+nofaults missing"
      in
      let count = 12 in
      let run ?range () =
        Campaign.run ~count ~seeds_per_test:8 ~variants:[ variant ] ?range
          ~seed:5 ()
      in
      let full = run () in
      checkb "campaign finds the injected bug" true
        (full.Campaign.r_failures <> []);
      let parts =
        List.map
          (fun k -> run ~range:(Plan.shard_range ~count ~shards:3 k) ())
          [ 0; 1; 2 ]
      in
      checki "tests sum to the full run" full.Campaign.r_tests
        (List.fold_left (fun a r -> a + r.Campaign.r_tests) 0 parts);
      checki "checks sum to the full run" full.Campaign.r_checks
        (List.fold_left (fun a r -> a + r.Campaign.r_checks) 0 parts);
      let arts r =
        List.map
          (fun f -> Corpus.to_string (Campaign.entry_of_failure ~seed:5 f))
          r.Campaign.r_failures
      in
      checkb "failure artifacts concatenate to the full run" true
        (List.concat_map arts parts = arts full))

(* ------------------------------------------------------------------ *)
(* worker protocol discipline                                          *)

let raw_connect socket =
  let rec attempt n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception Unix.Unix_error _ when n > 0 ->
      Unix.close fd;
      ignore (Unix.select [] [] [] 0.05);
      attempt (n - 1)
    | exception e ->
      Unix.close fd;
      raise e
  in
  attempt 100

let expect_err fd kind =
  match Wire.read_response fd with
  | Ok (Wire.Error (k, _)) ->
    checks "typed error frame" (Framed.err_name kind) (Framed.err_name k)
  | Ok _ -> Alcotest.fail "expected a typed error frame"
  | Error msg -> Alcotest.failf "no error frame: %s" msg

let hello fd =
  Wire.write_request fd
    (Wire.Hello { proto = Wire.version; git_rev = "test" });
  match Wire.read_response fd with
  | Ok (Wire.Hello_ok _) -> ()
  | Ok _ -> Alcotest.fail "expected Hello_ok"
  | Error msg -> Alcotest.failf "hello failed: %s" msg

let with_sim ?(n = 1) ?jobs f =
  let dir = tmp_dir () in
  let sim = Sim.start ?jobs ~dir ~n () in
  Fun.protect ~finally:(fun () -> Sim.stop sim) (fun () -> f sim)

let test_worker_hello_discipline () =
  if not (requires_fork ()) then ()
  else
    with_sim (fun sim ->
        let socket = List.hd (Sim.sockets sim) in
        (* any request before Hello is refused *)
        let fd = raw_connect socket in
        Wire.write_request fd Wire.Worker_stats_req;
        expect_err fd Framed.Bad_request;
        Unix.close fd;
        (* a future protocol version is refused by name *)
        let fd = raw_connect socket in
        Wire.write_request fd
          (Wire.Hello { proto = Wire.version + 1; git_rev = "test" });
        expect_err fd Framed.Unsupported_proto;
        Unix.close fd;
        (* Run before Set_spec is a Bad_request, not a crash *)
        let fd = raw_connect socket in
        hello fd;
        Wire.write_request fd (Wire.Run { j_shard = 0; j_lo = 0; j_hi = 1 });
        expect_err fd Framed.Bad_request;
        Unix.close fd)

let test_worker_malformed_traffic () =
  if not (requires_fork ()) then ()
  else
    with_sim (fun sim ->
        let socket = List.hd (Sim.sockets sim) in
        (* garbage bytes → typed Malformed_frame error *)
        let fd = raw_connect socket in
        let garbage = "this is not a frame at all.............." in
        ignore (Unix.write_substring fd garbage 0 (String.length garbage));
        expect_err fd Framed.Malformed_frame;
        Unix.close fd;
        (* a version-skewed frame (wrong protocol byte) is refused *)
        let fd = raw_connect socket in
        let skewed =
          Codec.encode ~proto:(Wire.version + 9) (Codec.marshal Wire.Shutdown)
        in
        ignore (Unix.write_substring fd skewed 0 (String.length skewed));
        expect_err fd Framed.Unsupported_proto;
        Unix.close fd;
        (* an honest header claiming an absurd payload is refused from
           the header alone *)
        let fd = raw_connect socket in
        let header =
          String.sub
            (Codec.encode ~proto:Wire.version (String.make 256 'x'))
            0 Codec.header_bytes
        in
        let header =
          (* rewrite the BE32 length to 256 MiB, beyond max_payload *)
          let b = Bytes.of_string header in
          Bytes.set_int32_be b
            (Codec.header_bytes - 4)
            (Int32.of_int (256 * 1024 * 1024));
          Bytes.to_string b
        in
        ignore (Unix.write_substring fd header 0 (String.length header));
        expect_err fd Framed.Frame_too_large;
        Unix.close fd;
        (* a truncated frame followed by a hangup is just a dropped
           connection; the worker survives and serves the next one *)
        let fd = raw_connect socket in
        let frame =
          Codec.encode ~proto:Wire.version
            (Codec.marshal Wire.Worker_stats_req)
        in
        ignore (Unix.write_substring fd frame 0 (String.length frame / 2));
        Unix.close fd;
        let fd = raw_connect socket in
        hello fd;
        let spec = Campaign.spec ~count:2 ~seeds_per_test:2 ~seed:1 () in
        Wire.write_request fd (Wire.Set_spec spec);
        (match Wire.read_response fd with
         | Ok Wire.Spec_ok -> ()
         | Ok _ | Error _ -> Alcotest.fail "Set_spec refused");
        Wire.write_request fd (Wire.Run { j_shard = 0; j_lo = 0; j_hi = 2 });
        (match Wire.read_response fd with
         | Ok (Wire.Shard_done sr) ->
           checki "echoes the shard id" 0 sr.Wire.sr_shard
         | Ok _ | Error _ -> Alcotest.fail "worker did not survive abuse");
        (* a Run range outside the spec is a Bad_request *)
        Wire.write_request fd (Wire.Run { j_shard = 1; j_lo = 0; j_hi = 99 });
        expect_err fd Framed.Bad_request;
        Unix.close fd)

(* ------------------------------------------------------------------ *)
(* the fabric: byte-identity with a single-host run                    *)

let failing_spec () =
  let variant =
    match Campaign.variant_named "wc+same+nofaults" with
    | Some v -> v
    | None -> Alcotest.fail "variant wc+same+nofaults missing"
  in
  Campaign.spec ~count:12 ~seeds_per_test:8 ~variants:[ variant ] ~seed:5 ()

let reference_run (s : Campaign.spec) ~log =
  Campaign.run ~count:s.Campaign.s_count
    ~seeds_per_test:s.Campaign.s_seeds_per_test
    ~variants:s.Campaign.s_variants
    ~variants_per_test:s.Campaign.s_variants_per_test
    ~model_checks:s.Campaign.s_model_checks
    ~shrink_evals:s.Campaign.s_shrink_evals ~log ~seed:s.Campaign.s_seed ()

let test_fabric_identity () =
  if not (requires_fork ()) then ()
  else
    with_injected_bug (fun () ->
        let spec = failing_spec () in
        let ref_log = ref [] in
        let reference =
          reference_run spec ~log:(fun l -> ref_log := l :: !ref_log)
        in
        checkb "campaign finds the injected bug" true
          (reference.Campaign.r_failures <> []);
        with_sim ~n:4 (fun sim ->
            let cfg =
              Supervisor.default_config ~workers:(Sim.sockets sim)
            in
            let ranges, outcomes, stats = Supervisor.run cfg spec in
            checki "all four workers connected" 4 stats.Supervisor.f_workers;
            checki "nothing ran inline" 0 stats.Supervisor.f_inline;
            let fab_log = ref [] in
            let merged =
              Merge.merge
                ~log:(fun l -> fab_log := l :: !fab_log)
                spec ~ranges ~outcomes
            in
            checkb "merged report is byte-identical" true
              (fingerprint ~seed:5 merged.Merge.m_report
              = fingerprint ~seed:5 reference);
            checkb "log stream is identical" true (!fab_log = !ref_log);
            (* corpus artifacts the CLI would save are the same bytes *)
            checkb "corpus entries identical" true
              (List.map Corpus.to_string merged.Merge.m_entries
              = List.map
                  (fun f ->
                    Corpus.to_string (Campaign.entry_of_failure ~seed:5 f))
                  reference.Campaign.r_failures);
            (* with run_id/time pinned, the ledger record a fabric run
               appends equals the single-host `ise fuzz run` record *)
            let pinned r =
              Merge.ledger_record ~run_id:"rid" ~git_rev:"rev" ~time:0. spec
                r
            in
            checkb "ledger record identical" true
              (pinned merged.Merge.m_report = pinned reference)))

let test_fabric_kill_mid_campaign () =
  if not (requires_fork ()) then ()
  else
    let spec = Campaign.spec ~count:16 ~seeds_per_test:4 ~seed:11 () in
    let reference = reference_run spec ~log:ignore in
    with_sim ~n:4 (fun sim ->
        let killed = ref false in
        let cfg =
          {
            (Supervisor.default_config ~workers:(Sim.sockets sim)) with
            Supervisor.shards = Some 16;
            on_shard_done =
              (fun _ ->
                (* SIGKILL a worker as soon as the first shard lands:
                   its in-flight shards must be re-dispatched to the
                   survivors without changing the merged output *)
                if not !killed then begin
                  killed := true;
                  Sim.kill sim 3
                end);
          }
        in
        let ranges, outcomes, stats = Supervisor.run cfg spec in
        checkb "the loss was detected" true
          (stats.Supervisor.f_worker_losses >= 1);
        checkb "every shard completed" true
          (Array.for_all
             (function Supervisor.Shard_ok _ -> true | _ -> false)
             outcomes);
        let merged = Merge.merge spec ~ranges ~outcomes in
        checkb "killed-worker run is byte-identical" true
          (fingerprint ~seed:11 merged.Merge.m_report
          = fingerprint ~seed:11 reference))

let test_fabric_store_cache () =
  if not (requires_fork ()) then ()
  else
    let spec = Campaign.spec ~count:8 ~seeds_per_test:4 ~seed:3 () in
    let dir = tmp_dir () in
    let once ~workers =
      let store = Store.open_ ~dir:(Filename.concat dir "store") () in
      let cfg =
        { (Supervisor.default_config ~workers) with
          Supervisor.store = Some store;
          (* pinned: the default scales with the worker count, and the
             two runs of this test use different fabrics *)
          shards = Some 8;
        }
      in
      Supervisor.run cfg spec
    in
    let r1, o1, s1 =
      with_sim ~n:2 (fun sim -> once ~workers:(Sim.sockets sim))
    in
    checki "cold run hits nothing" 0 s1.Supervisor.f_store_hits;
    (* the second campaign is answered entirely by the store: no
       workers are even needed *)
    let r2, o2, s2 = once ~workers:[] in
    checki "warm run is all hits" s2.Supervisor.f_shards
      s2.Supervisor.f_store_hits;
    checki "nothing dispatched" 0 s2.Supervisor.f_dispatched;
    let m1 = Merge.merge spec ~ranges:r1 ~outcomes:o1 in
    let m2 = Merge.merge spec ~ranges:r2 ~outcomes:o2 in
    checkb "store round-trip preserves the report" true
      (fingerprint ~seed:3 m1.Merge.m_report
      = fingerprint ~seed:3 m2.Merge.m_report)

let test_fabric_inline_fallback () =
  (* no fork needed: every worker is unreachable, so the supervisor
     degrades to computing each shard inline — the campaign still
     completes, byte-identical *)
  let spec = Campaign.spec ~count:6 ~seeds_per_test:3 ~seed:9 () in
  let reference = reference_run spec ~log:ignore in
  let cfg =
    {
      (Supervisor.default_config ~workers:[ "/nonexistent/fabric.sock" ]) with
      Supervisor.connect_retries = 0;
    }
  in
  let ranges, outcomes, stats = Supervisor.run cfg spec in
  checki "no worker connected" 0 stats.Supervisor.f_workers;
  checki "every shard ran inline" stats.Supervisor.f_shards
    stats.Supervisor.f_inline;
  let merged = Merge.merge spec ~ranges ~outcomes in
  checkb "inline fallback is byte-identical" true
    (fingerprint ~seed:9 merged.Merge.m_report = fingerprint ~seed:9 reference)

let suite =
  [
    Alcotest.test_case "plan: partition tiles and balances" `Quick
      test_plan_partition;
    Alcotest.test_case "plan: k/N parsing" `Quick test_plan_parse;
    Alcotest.test_case "plan: ewma straggler deadline" `Quick test_plan_ewma;
    Alcotest.test_case "wire: shard keys invalidate" `Quick test_shard_keys;
    Alcotest.test_case "campaign: shard ranges union to the full run" `Slow
      test_range_union;
    Alcotest.test_case "worker: hello and spec discipline" `Quick
      test_worker_hello_discipline;
    Alcotest.test_case "worker: malformed traffic, typed errors" `Quick
      test_worker_malformed_traffic;
    Alcotest.test_case "fabric: 4 workers = single host, byte-identical"
      `Slow test_fabric_identity;
    Alcotest.test_case "fabric: worker killed mid-campaign" `Slow
      test_fabric_kill_mid_campaign;
    Alcotest.test_case "fabric: store answers a repeated campaign" `Quick
      test_fabric_store_cache;
    Alcotest.test_case "fabric: dead fabric degrades to inline" `Quick
      test_fabric_inline_fallback;
  ]
