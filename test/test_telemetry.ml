(* The ise_telemetry subsystem: registry semantics, trace recording and
   Chrome-trace export, and the cycle-equivalence guarantee (telemetry
   must observe the simulation without perturbing it). *)

open Ise_telemetry
open Ise_sim

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let test_registry_basics () =
  let r = Registry.create () in
  let c = Registry.counter r "core0/fsb/appended" in
  Registry.incr c;
  Registry.add c 4;
  check Alcotest.int "counter" 5 (Registry.value c);
  let g = Registry.gauge r "mem/l1/miss_rate" in
  Registry.set g 0.25;
  check (Alcotest.float 1e-9) "gauge" 0.25 (Registry.get g);
  (* registration is idempotent: same name, same cell *)
  let c' = Registry.counter r "core0/fsb/appended" in
  Registry.incr c';
  check Alcotest.int "shared handle" 6 (Registry.value c)

let test_registry_collision () =
  let r = Registry.create () in
  ignore (Registry.counter r "core0/x");
  Alcotest.check_raises "counter vs gauge"
    (Invalid_argument
       "Registry: \"core0/x\" already registered as a counter, wanted a gauge")
    (fun () -> ignore (Registry.gauge r "core0/x"));
  ignore (Registry.histogram r "core0/h");
  Alcotest.check_raises "histogram vs counter"
    (Invalid_argument
       "Registry: \"core0/h\" already registered as a histogram, wanted a \
        counter")
    (fun () -> ignore (Registry.counter r "core0/h"))

let test_histogram_snapshot_merge () =
  let r = Registry.create () in
  let h = Registry.histogram r "core0/sb/occupancy" in
  for i = 1 to 100 do
    Ise_util.Stats.add_int h i
  done;
  (match List.assoc "core0/sb/occupancy" (Registry.snapshot r) with
   | Registry.Snap_histogram s ->
     check Alcotest.int "count" 100 s.Registry.s_count;
     check (Alcotest.float 1e-9) "mean" 50.5 s.Registry.s_mean;
     check (Alcotest.float 1e-9) "p50" 50.5 s.Registry.s_p50;
     check (Alcotest.float 1e-9) "p99" 99.01 s.Registry.s_p99;
     check (Alcotest.float 1e-9) "max" 100. s.Registry.s_max
   | _ -> Alcotest.fail "expected a histogram snapshot");
  (* merging two histograms behaves like one that saw both streams *)
  let a = Ise_util.Stats.create () and b = Ise_util.Stats.create () in
  for i = 1 to 50 do
    Ise_util.Stats.add_int a i
  done;
  for i = 51 to 100 do
    Ise_util.Stats.add_int b i
  done;
  let m = Ise_util.Stats.merge a b in
  check Alcotest.int "merged count" 100 (Ise_util.Stats.count m);
  check (Alcotest.float 1e-9) "merged mean" 50.5 (Ise_util.Stats.mean m);
  check (Alcotest.float 1e-9) "merged p50" 50.5
    (Ise_util.Stats.percentile m 50.);
  (* reset keeps handles alive *)
  Registry.reset r;
  check Alcotest.int "cleared" 0 (Ise_util.Stats.count h)

let test_registry_emitters () =
  let r = Registry.create () in
  Registry.set_counter (Registry.counter r "a/count") 7;
  Registry.set (Registry.gauge r "b/rate") 0.5;
  Ise_util.Stats.add (Registry.histogram r "c/hist") 3.;
  let csv = Registry.to_csv r in
  check Alcotest.bool "csv header" true
    (String.length csv > 0
     && String.sub csv 0 (String.index csv '\n')
        = "name,kind,value,count,mean,min,p50,p90,p99,max");
  (* the JSON emitter round-trips through our own parser *)
  match Json.of_string (Json.to_string (Registry.to_json r)) with
  | Error e -> Alcotest.fail e
  | Ok j ->
    check (Alcotest.option Alcotest.int) "counter value" (Some 7)
      (Json.member "a/count" j |> Option.get |> Json.to_int);
    check (Alcotest.option (Alcotest.float 1e-9)) "gauge value" (Some 0.5)
      (Json.member "b/rate" j |> Option.get |> Json.to_float);
    check (Alcotest.option Alcotest.int) "histogram count" (Some 1)
      (Json.member "c/hist" j |> Option.get |> Json.member "count" |> Option.get
       |> Json.to_int)

(* ------------------------------------------------------------------ *)
(* Trace recorder                                                      *)

let test_trace_ring_eviction () =
  let tr = Trace.create ~ring_capacity:4 () in
  for i = 0 to 9 do
    Trace.instant tr ~name:(Printf.sprintf "ev%d" i) ~tid:0 i
  done;
  check Alcotest.int "length" 4 (Trace.length tr);
  check Alcotest.int "recorded" 10 (Trace.recorded tr);
  check Alcotest.int "dropped" 6 (Trace.dropped tr);
  check
    (Alcotest.list Alcotest.string)
    "newest survive"
    [ "ev6"; "ev7"; "ev8"; "ev9" ]
    (List.map (fun e -> e.Trace.ev_name) (Trace.events tr));
  Trace.clear tr;
  check Alcotest.int "cleared" 0 (Trace.length tr)

let test_chrome_json_roundtrip () =
  let tr = Trace.create () in
  Trace.span_begin tr ~cat:"os" ~name:"handler" ~tid:1 100;
  Trace.instant tr ~cat:"ise" ~name:"PUT"
    ~args:[ ("addr", Json.Int 0xdead) ]
    ~tid:1 110;
  Trace.counter tr ~name:"core1/sb/occupancy" ~value:12. 120;
  Trace.span_end tr ~cat:"os" ~name:"handler" ~tid:1 130;
  let rendered = Json.to_string (Trace.to_chrome_json tr) in
  match Json.of_string rendered with
  | Error e -> Alcotest.fail ("unparsable trace JSON: " ^ e)
  | Ok j ->
    let events =
      Json.member "traceEvents" j |> Option.get |> Json.to_list |> Option.get
    in
    check Alcotest.int "event count" 4 (List.length events);
    let field name ev = Json.member name ev |> Option.get in
    let phases =
      List.map (fun e -> field "ph" e |> Json.to_str |> Option.get) events
    in
    check
      (Alcotest.list Alcotest.string)
      "phases" [ "B"; "i"; "C"; "E" ] phases;
    let put = List.nth events 1 in
    check (Alcotest.option Alcotest.string) "instant scope" (Some "t")
      (Json.member "s" put |> Option.map (fun s -> Json.to_str s |> Option.get));
    check (Alcotest.option Alcotest.int) "instant arg" (Some 0xdead)
      (field "args" put |> Json.member "addr" |> Option.get |> Json.to_int);
    check (Alcotest.option Alcotest.int) "ts" (Some 110)
      (field "ts" put |> Json.to_int);
    let ctr = List.nth events 2 in
    check (Alcotest.option (Alcotest.float 1e-9)) "counter value" (Some 12.)
      (field "args" ctr |> Json.member "value" |> Option.get |> Json.to_float)

(* ------------------------------------------------------------------ *)
(* Cycle equivalence and end-to-end episode capture                    *)

let faulting_program base =
  Sim_instr.of_list
    (List.concat
       (List.init 8 (fun i ->
            [ Sim_instr.St
                { addr = Sim_instr.addr (base + (i * 4096));
                  data = Sim_instr.Imm (i + 1) };
              Sim_instr.Nop 2 ])))

let run_machine ~telemetry =
  let base = Config.default.Config.einject_base in
  let m = Machine.create ~programs:[| faulting_program base |] () in
  ignore (Ise_os.Handler.install m);
  let sink =
    if telemetry then begin
      let sink = Sink.create () in
      (* a deliberately odd period, so sampling wake-ups land on cycles
         the uninstrumented run never visits *)
      Machine.attach_telemetry ~sample_period:7 m sink;
      Some sink
    end
    else None
  in
  for i = 0 to 7 do
    Einject.set_faulting (Machine.einject m) (base + (i * 4096))
  done;
  Machine.run m;
  Machine.record_final_stats m;
  (Machine.cycles m, Machine.total_retired m, sink)

let test_cycle_equivalence () =
  let cycles_off, retired_off, _ = run_machine ~telemetry:false in
  let cycles_on, retired_on, sink = run_machine ~telemetry:true in
  check Alcotest.int "cycles identical" cycles_off cycles_on;
  check Alcotest.int "retired identical" retired_off retired_on;
  (* and the instrumented run actually observed something *)
  let sink = Option.get sink in
  let names =
    List.map (fun e -> e.Trace.ev_name) (Trace.events (Sink.trace sink))
  in
  List.iter
    (fun n ->
      check Alcotest.bool (n ^ " recorded") true (List.mem n names))
    [ "DETECT"; "PUT"; "GET"; "APPLY"; "RESOLVE"; "RESUME" ]

let test_episode_sequence () =
  let _, _, sink = run_machine ~telemetry:true in
  let events = Trace.events (Sink.trace (Option.get sink)) in
  (* the Table 5 interface ops of one episode appear in order *)
  let order = [ "DETECT"; "PUT"; "GET"; "APPLY"; "RESOLVE"; "RESUME" ] in
  let rec advance expected = function
    | [] -> expected
    | e :: rest ->
      (match expected with
       | next :: more when e.Trace.ev_name = next -> advance more rest
       | _ -> advance expected rest)
  in
  check
    (Alcotest.list Alcotest.string)
    "full DETECT..RESUME sequence" [] (advance order events);
  (* spans are balanced: every begin has a matching end *)
  let depth = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let key = (e.Trace.ev_name, e.Trace.ev_tid) in
      let d = try Hashtbl.find depth key with Not_found -> 0 in
      match e.Trace.ev_ph with
      | Trace.Span_begin -> Hashtbl.replace depth key (d + 1)
      | Trace.Span_end ->
        check Alcotest.bool "end without begin" true (d > 0);
        Hashtbl.replace depth key (d - 1)
      | Trace.Instant | Trace.Counter_sample -> ())
    events;
  Hashtbl.iter
    (fun (name, _) d ->
      check Alcotest.int (name ^ " balanced") 0 d)
    depth

(* ------------------------------------------------------------------ *)
(* Delta snapshots (v3 telemetry streaming) and Prometheus export      *)

let test_drain_absorb () =
  let w = Registry.create () in
  Registry.add (Registry.counter w "fabric/worker/shards_done") 3;
  Registry.set (Registry.gauge w "mem/l1/miss_rate") 0.5;
  let h = Registry.histogram w "fabric/worker/shard_ms" in
  List.iter (Ise_util.Stats.add h) [ 1.0; 2.0; 3.0 ];
  Registry.counter w "fabric/worker/zero" |> ignore;
  let d = Registry.drain w in
  (* zero counters are omitted; names are sorted *)
  check
    (Alcotest.list Alcotest.string)
    "drained names"
    [ "fabric/worker/shard_ms"; "fabric/worker/shards_done";
      "mem/l1/miss_rate" ]
    (List.map fst d);
  (* drain resets counters and histograms: a second drain only carries
     the gauge (absolute, re-sent every time) *)
  check
    (Alcotest.list Alcotest.string)
    "second drain" [ "mem/l1/miss_rate" ]
    (List.map fst (Registry.drain w));
  (* deltas accumulate on the absorbing side *)
  let s = Registry.create () in
  Registry.absorb s d;
  Registry.absorb s
    [ ("fabric/worker/shards_done", Registry.D_counter 2);
      ("fabric/worker/shard_ms", Registry.D_histogram [| 4.0 |]) ];
  check Alcotest.int "absorbed counter" 5
    (Registry.value (Registry.counter s "fabric/worker/shards_done"));
  (match Registry.find_histogram s "fabric/worker/shard_ms" with
   | None -> Alcotest.fail "expected absorbed histogram"
   | Some st ->
     check Alcotest.int "absorbed samples" 4 (Ise_util.Stats.count st);
     (* raw samples travel, so supervisor-side percentiles are exact *)
     check (Alcotest.float 1e-9) "exact max" 4.0 (Ise_util.Stats.max_value st));
  check (Alcotest.float 1e-9) "absorbed gauge" 0.5
    (Registry.get (Registry.gauge s "mem/l1/miss_rate"))

let test_prometheus_export () =
  let r = Registry.create () in
  Registry.add (Registry.counter r "fabric/done") 7;
  Registry.set (Registry.gauge r "fabric/shards_per_s") 2.5;
  let h = Registry.histogram r "pool/job_ms" in
  for i = 1 to 100 do
    Ise_util.Stats.add_int h i
  done;
  let text = Registry.to_prometheus r in
  let has needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "counter line" true
    (has "# TYPE ise_fabric_done counter" && has "ise_fabric_done 7");
  check Alcotest.bool "gauge line" true (has "ise_fabric_shards_per_s 2.5");
  check Alcotest.bool "summary quantiles" true
    (has "ise_pool_job_ms{quantile=\"0.999\"}"
     && has "ise_pool_job_ms_count 100");
  (* every name is sanitized into the Prometheus charset *)
  String.iter
    (fun c ->
      if c = '/' then Alcotest.fail "unsanitized metric name")
    text

let test_trace_ctx_roundtrip () =
  let ctx =
    { Trace.trace_id = "t-1"; span_id = "s-9"; parent_span_id = Some "d-3" }
  in
  let tr = Trace.create () in
  Trace.span_begin tr ~name:"shard 9" ~tid:0 ~ctx 100;
  Trace.instant tr ~name:"receive" ~tid:0
    ~ctx:{ ctx with Trace.parent_span_id = Some "d-3" } 101;
  (match Trace.events tr with
   | [ b; _ ] ->
     (match Trace.ctx_of_event b with
      | Some c ->
        check Alcotest.string "trace id" "t-1" c.Trace.trace_id;
        check Alcotest.string "span id" "s-9" c.Trace.span_id;
        check
          (Alcotest.option Alcotest.string)
          "parent" (Some "d-3") c.Trace.parent_span_id
      | None -> Alcotest.fail "ctx lost in ev_args")
   | _ -> Alcotest.fail "expected two events");
  (* the ctx survives Chrome JSON: args round-trip generically *)
  let doc = Trace.to_chrome_json ~pid:4 tr in
  let ev =
    match Json.member "traceEvents" doc with
    | Some (Json.List (e :: _)) -> e
    | _ -> Alcotest.fail "no traceEvents"
  in
  check
    (Alcotest.option Alcotest.int)
    "pid override" (Some 4)
    (Option.bind (Json.member "pid" ev) Json.to_int);
  let arg k =
    Option.bind (Json.member "args" ev) (fun a ->
        Option.bind (Json.member k a) Json.to_str)
  in
  check
    (Alcotest.option Alcotest.string)
    "json trace id" (Some "t-1") (arg Trace.ctx_key_trace);
  check
    (Alcotest.option Alcotest.string)
    "json parent" (Some "d-3") (arg Trace.ctx_key_parent)

let suite =
  [
    ("registry basics", `Quick, test_registry_basics);
    ("registry collision", `Quick, test_registry_collision);
    ("histogram snapshot/merge", `Quick, test_histogram_snapshot_merge);
    ("registry emitters", `Quick, test_registry_emitters);
    ("trace ring eviction", `Quick, test_trace_ring_eviction);
    ("chrome json roundtrip", `Quick, test_chrome_json_roundtrip);
    ("cycle equivalence", `Quick, test_cycle_equivalence);
    ("episode sequence", `Quick, test_episode_sequence);
    ("drain/absorb delta snapshots", `Quick, test_drain_absorb);
    ("prometheus export", `Quick, test_prometheus_export);
    ("trace ctx roundtrip", `Quick, test_trace_ctx_roundtrip);
  ]
